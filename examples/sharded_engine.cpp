// Sharded serving demo (DESIGN.md §14): a ShardRouter partitions one graph
// across several shard engines and serves a mixed query/update stream over
// the union. Shows the planner's three outcomes — O(1) unsatisfiable
// rejection from the exact distance fields, whole-query delegation to one
// shard when no cut edge is feasible, and stitched cross-shard execution
// with partial paths shipped between shards as delta-encoded PathBlocks —
// plus update routing (each delta op lands in the shard owning its edge's
// tail, which publishes its own snapshot epoch) and the per-shard metrics
// the registry exports.
//
// Build: cmake --build build --target sharded_engine && ./build/sharded_engine
#include <cstdio>
#include <string>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "shard/router.h"

using namespace pathenum;

namespace {

const char* StateName(QueryState s) {
  switch (s) {
    case QueryState::kOk: return "ok";
    case QueryState::kTruncated: return "truncated";
    case QueryState::kUnsatisfiable: return "unsatisfiable";
    case QueryState::kRejected: return "rejected";
    default: return "other";
  }
}

void ServeOne(ShardRouter& router, const Query& q, uint64_t limit) {
  CountingSink sink;
  EnumOptions opts;
  opts.result_limit = limit;
  const RouterResult r = router.Run(q, sink, opts);
  std::printf("  q(%u, %u, %u): %llu paths, %s, %s", q.source, q.target,
              q.hops,
              static_cast<unsigned long long>(r.stats.counters.num_results),
              StateName(r.state),
              r.state == QueryState::kUnsatisfiable ? "planner rejection"
              : r.delegated                         ? "delegated"
                                                    : "stitched");
  if (r.delegated) {
    std::printf(" to shard %u", r.delegate_shard);
  } else if (r.state != QueryState::kUnsatisfiable) {
    std::printf(" across %llu feasible cut edges",
                static_cast<unsigned long long>(r.feasible_cut_edges));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A preferential-attachment graph: dense hubs make cross-shard cut edges
  // unavoidable, so both delegation and stitching show up.
  const Graph g = BarabasiAlbert(/*num_vertices=*/400, /*edges_per_vertex=*/3,
                                 /*back_prob=*/0.5, /*seed=*/7);

  RouterOptions opts;
  opts.partition.num_shards = 4;
  ShardRouter router(g, opts);
  std::printf("partitioned %u vertices across %u shards, %zu cut edges\n",
              router.num_vertices(), router.num_shards(), router.cut_size());
  for (uint32_t s = 0; s < router.num_shards(); ++s) {
    std::printf("  shard %u: cache salt %#llx\n", s,
                static_cast<unsigned long long>(
                    router.shard(s).cache_key_salt()));
  }

  std::printf("\nquery stream (epoch 0):\n");
  ServeOne(router, Query{1, 9, 4}, 100);
  ServeOne(router, Query{5, 2, 3}, 100);
  ServeOne(router, Query{0, 399, 2}, 100);  // likely beyond 2 hops: rejected
  ServeOne(router, Query{3, 7, 5}, 8);      // tight limit: exact truncation

  // Updates route through the partition map: each op is applied by the
  // shard owning its tail, which publishes its own snapshot epoch; the
  // router's cut list advances atomically with the publishes.
  std::printf("\napplying update: +(1 -> 399), +(399 -> 9), -(1 -> 2)\n");
  const Status st = router.SubmitUpdate(
      GraphDelta{}.Insert(1, 399).Insert(399, 9).Delete(1, 2));
  std::printf("  update %s; shard versions now:", st.ok() ? "ok" : "failed");
  for (uint32_t s = 0; s < router.num_shards(); ++s) {
    std::printf(" %llu",
                static_cast<unsigned long long>(router.shard(s).version()));
  }
  std::printf("\n\nquery stream (after update):\n");
  ServeOne(router, Query{1, 9, 4}, 100);
  ServeOne(router, Query{0, 399, 2}, 100);  // the new edges may open this up

  std::printf("\nper-shard work:\n");
  for (uint32_t s = 0; s < router.num_shards(); ++s) {
    const ShardEngine::Stats ss = router.shard(s).stats();
    std::printf("  shard %u: %llu local queries, %llu frames, %llu "
                "continuations out, %llu paths emitted, %llu updates\n",
                s, static_cast<unsigned long long>(ss.local_queries),
                static_cast<unsigned long long>(ss.frames_processed),
                static_cast<unsigned long long>(ss.continuations_out),
                static_cast<unsigned long long>(ss.paths_emitted),
                static_cast<unsigned long long>(ss.updates));
  }
  const ShardRouter::Stats rs = router.stats();
  std::printf("router: %llu queries (%llu delegated, %llu stitched, %llu "
              "unsatisfiable), %llu updates, %llu frames / %llu "
              "continuations shipped\n",
              static_cast<unsigned long long>(rs.queries),
              static_cast<unsigned long long>(rs.delegated),
              static_cast<unsigned long long>(rs.stitched),
              static_cast<unsigned long long>(rs.unsatisfiable),
              static_cast<unsigned long long>(rs.updates),
              static_cast<unsigned long long>(rs.frames_sent),
              static_cast<unsigned long long>(rs.continuations_sent));

  // Everything above is also exported through the metric registry (the
  // §12 exposition the service scrapes); show the shard/router families.
  const std::string metrics = obs::DumpMetricsText();
  std::printf("\nregistry (shard/router families):\n");
  size_t pos = 0;
  while (pos < metrics.size()) {
    size_t eol = metrics.find('\n', pos);
    if (eol == std::string::npos) eol = metrics.size();
    const std::string line = metrics.substr(pos, eol - pos);
    if (line.find("pathenum_shard_") != std::string::npos ||
        line.find("pathenum_router_") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
    pos = eol + 1;
  }
  return 0;
}
