// E-commerce merchant fraud detection (paper motivation #2, after Qiu et
// al.'s real-time constrained cycle detection): sellers inflating their
// popularity create transaction cycles. We replay a stream of transactions
// on a synthetic marketplace; each new edge e(v, v') triggers the cycle
// query q(v', v, k-1) — every result plus the new edge is a cycle of at
// most k hops. An edge predicate restricts the search to "payment"
// transactions, the paper's per-edge-attribute extension.
#include <iostream>
#include <map>
#include <vector>

#include "core/cycles.h"
#include "core/path_enum.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

using namespace pathenum;

namespace {
// Transaction types (edge labels).
constexpr uint32_t kPayment = 0;
constexpr uint32_t kShipment = 1;
}  // namespace

int main() {
  constexpr VertexId kUsers = 4000;
  constexpr uint32_t kHops = 6;  // the paper's fraud setting uses k = 6
  Rng rng(7);

  // Bootstrap marketplace: mostly organic payments/shipments...
  GraphBuilder builder(kUsers);
  const Graph organic = RMat(12, 20000, 99);
  for (VertexId u = 0; u < organic.num_vertices() && u < kUsers; ++u) {
    for (const VertexId v : organic.OutNeighbors(u)) {
      if (v < kUsers) {
        builder.AddEdge(u, v, 1.0, rng.NextBool(0.7) ? kPayment : kShipment);
      }
    }
  }
  // ... plus a planted fraud ring: a small clique of colluding accounts
  // paying each other in circles.
  std::vector<VertexId> ring;
  for (int i = 0; i < 6; ++i) ring.push_back(100 + 7 * i);
  for (size_t i = 0; i < ring.size(); ++i) {
    builder.AddEdge(ring[i], ring[(i + 1) % ring.size()], 1.0, kPayment);
    builder.AddEdge(ring[i], ring[(i + 2) % ring.size()], 1.0, kPayment);
  }
  Graph graph = builder.Build();
  std::cout << "Marketplace: " << graph.num_vertices() << " users, "
            << graph.num_edges() << " transactions\n";

  // Incoming transaction stream: some organic, some inside the ring.
  std::vector<std::pair<VertexId, VertexId>> stream;
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 0) {
      const VertexId a = ring[rng.NextBounded(ring.size())];
      VertexId b = ring[rng.NextBounded(ring.size())];
      while (b == a) b = ring[rng.NextBounded(ring.size())];
      stream.push_back({a, b});
    } else {
      const VertexId a = static_cast<VertexId>(rng.NextBounded(kUsers));
      VertexId b = static_cast<VertexId>(rng.NextBounded(kUsers));
      while (b == a) b = static_cast<VertexId>(rng.NextBounded(kUsers));
      stream.push_back({a, b});
    }
  }

  // Only payment edges can form a fraud cycle.
  const EdgeFilter payments_only = [&](VertexId, VertexId, EdgeId e) {
    return graph.EdgeLabel(e) == kPayment;
  };

  std::map<VertexId, uint64_t> suspicion;  // user -> cycles participated in
  uint64_t total_cycles = 0;
  for (const auto& [from, to] : stream) {
    // Cycles the new payment (from -> to) would close, over payment edges
    // only. EnumerateTriggeredCycles wraps the paper's reduction
    // q(to, from, k-1); the predicate goes through RunConstrained.
    PathEnumerator enumerator(graph);
    PathConstraints constraints;
    constraints.edge_filter = &payments_only;
    CollectingSink sink(10000);
    EnumOptions opts;
    opts.time_limit_ms = 100.0;  // the application is real-time
    if (from != to) {
      enumerator.RunConstrained({to, from, kHops - 1}, constraints, sink,
                                opts);
    }
    if (!sink.paths().empty()) {
      total_cycles += sink.paths().size();
      std::cout << "ALERT new edge " << from << " -> " << to << " closes "
                << sink.paths().size() << " payment cycles (<= " << kHops
                << " hops)\n";
      for (const auto& p : sink.paths()) {
        for (const VertexId u : p) suspicion[u]++;
      }
    }
    // Apply the update (batch rebuild is the supported dynamic pattern;
    // the per-query index needs no maintenance).
    GraphBuilder next(graph.num_vertices());
    next.AddGraph(graph);
    next.AddEdge(from, to, 1.0, kPayment);
    graph = next.Build();
  }

  std::cout << "\nStream done: " << total_cycles
            << " cycles flagged. Most suspicious accounts:\n";
  std::vector<std::pair<uint64_t, VertexId>> ranked;
  for (const auto& [user, cycles] : suspicion) ranked.push_back({cycles, user});
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < ranked.size() && i < 8; ++i) {
    const bool planted =
        std::find(ring.begin(), ring.end(), ranked[i].second) != ring.end();
    std::cout << "  user " << ranked[i].second << ": " << ranked[i].first
              << " cycles" << (planted ? "   <- planted fraud ring" : "")
              << "\n";
  }
  return 0;
}
