// Knowledge-graph completion support (paper motivation #3): entities
// connected by many short paths tend to be related, and applications
// constrain the admissible paths to specific action sequences — here the
// paper's own "write -> mention" example. We enumerate hop-constrained
// paths whose edge-label sequence drives a finite automaton (Algorithm 8)
// and use the path count as a relatedness score.
#include <iostream>
#include <vector>

#include "core/path_enum.h"
#include "graph/builder.h"
#include "util/rng.h"

using namespace pathenum;

namespace {
// Relation labels of the toy KG.
constexpr uint32_t kWrite = 0;    // author --write--> article
constexpr uint32_t kMention = 1;  // article --mention--> entity
constexpr uint32_t kCite = 2;     // article --cite--> article
constexpr uint32_t kKnow = 3;     // author --know--> author
const char* kLabelNames[] = {"write", "mention", "cite", "know"};
}  // namespace

int main() {
  // Entity layout: authors [0,100), articles [100,600), entities [600,700).
  constexpr VertexId kAuthors = 100, kArticles = 500, kEntities = 100;
  constexpr VertexId kN = kAuthors + kArticles + kEntities;
  auto article = [](VertexId i) { return kAuthors + i; };
  auto entity = [](VertexId i) { return kAuthors + kArticles + i; };

  Rng rng(5);
  GraphBuilder builder(kN);
  for (VertexId a = 0; a < kAuthors; ++a) {
    for (int j = 0; j < 6; ++j) {
      builder.AddEdge(a, article(static_cast<VertexId>(
                             rng.NextBounded(kArticles))),
                      1.0, kWrite);
    }
    builder.AddEdge(a, static_cast<VertexId>(rng.NextBounded(kAuthors)),
                    1.0, kKnow);
  }
  for (VertexId p = 0; p < kArticles; ++p) {
    for (int j = 0; j < 3; ++j) {
      builder.AddEdge(article(p),
                      entity(static_cast<VertexId>(
                          rng.NextBounded(kEntities))),
                      1.0, kMention);
    }
    builder.AddEdge(article(p),
                    article(static_cast<VertexId>(rng.NextBounded(kArticles))),
                    1.0, kCite);
  }
  const Graph graph = builder.Build();
  std::cout << "Toy scholarly KG: " << graph.num_vertices() << " nodes, "
            << graph.num_edges() << " typed edges\n";

  // The paper's constraint: the label sequence must be exactly
  // "write -> mention" (author writes an article that mentions the
  // entity). A second automaton allows one citation hop in between:
  // "write -> cite -> mention".
  const std::vector<uint32_t> direct{kWrite, kMention};
  const std::vector<uint32_t> via_citation{kWrite, kCite, kMention};
  const LabelAutomaton direct_a =
      LabelAutomaton::ExactSequence(direct, graph.num_labels());
  const LabelAutomaton cite_a =
      LabelAutomaton::ExactSequence(via_citation, graph.num_labels());

  PathEnumerator enumerator(graph);
  const VertexId author = 7;
  std::cout << "\nRelatedness evidence for author " << author
            << " vs entities (path counts under the action constraints):\n";
  std::cout << "  pattern A: write->mention;  pattern B: write->cite->mention\n\n";

  struct Row {
    VertexId entity;
    uint64_t direct_paths;
    uint64_t cite_paths;
  };
  std::vector<Row> rows;
  for (VertexId e = 0; e < kEntities; ++e) {
    Row row{entity(e), 0, 0};
    for (int which = 0; which < 2; ++which) {
      PathConstraints constraints;
      constraints.automaton = which == 0 ? &direct_a : &cite_a;
      CountingSink sink;
      enumerator.RunConstrained({author, row.entity, 3}, constraints, sink);
      (which == 0 ? row.direct_paths : row.cite_paths) = sink.count();
    }
    if (row.direct_paths + row.cite_paths > 0) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return 2 * a.direct_paths + a.cite_paths >
           2 * b.direct_paths + b.cite_paths;
  });
  for (size_t i = 0; i < rows.size() && i < 10; ++i) {
    std::cout << "  entity " << rows[i].entity << ": "
              << rows[i].direct_paths << " direct, " << rows[i].cite_paths
              << " via citation\n";
  }
  std::cout << "\n(labels: ";
  for (int l = 0; l < 4; ++l) {
    std::cout << l << "=" << kLabelNames[l] << (l < 3 ? ", " : ")\n");
  }
  std::cout << "Top entities are completion candidates for a "
               "(author)-[related-to]->(entity) link.\n";
  return 0;
}
