// Command-line front end for the library — the shape a downstream user
// scripts against.
//
//   pathenum_cli query <edge-list> <s> <t> <k> [options]
//       --method=auto|dfs|join   strategy (default auto)
//       --limit=N                stop after N results
//       --time-ms=T              per-query time budget
//       --print=N                print the first N paths (default 5)
//       --threads=N              use the parallel enumerator with N threads
//   pathenum_cli generate <dataset> <scale> <out-file>
//       instantiate a catalog dataset (up, db, gg, ..., tm) as an edge list
//   pathenum_cli stats <edge-list>
//       print graph statistics and degree percentiles
#include <cstring>
#include <iostream>
#include <string>

#include "core/parallel_dfs.h"
#include "core/path_enum.h"
#include "graph/io.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/datasets.h"

using namespace pathenum;

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
      << "  pathenum_cli query <edge-list> <s> <t> <k> [--method=auto|dfs|"
         "join] [--limit=N] [--time-ms=T] [--print=N] [--threads=N]\n"
      << "  pathenum_cli generate <dataset> <scale> <out-file>\n"
      << "  pathenum_cli stats <edge-list>\n";
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int RunQuery(int argc, char** argv) {
  if (argc < 6) return Usage();
  const Graph graph = LoadEdgeList(argv[2]);
  Query query;
  query.source = static_cast<VertexId>(std::stoul(argv[3]));
  query.target = static_cast<VertexId>(std::stoul(argv[4]));
  query.hops = static_cast<uint32_t>(std::stoul(argv[5]));

  EnumOptions opts;
  size_t print_count = 5;
  uint32_t threads = 0;
  for (int i = 6; i < argc; ++i) {
    std::string value;
    const std::string arg = argv[i];
    if (ParseFlag(arg, "method", &value)) {
      if (value == "dfs") {
        opts.method = Method::kDfs;
      } else if (value == "join") {
        opts.method = Method::kJoin;
      } else if (value != "auto") {
        std::cerr << "unknown method: " << value << "\n";
        return 2;
      }
    } else if (ParseFlag(arg, "limit", &value)) {
      opts.result_limit = std::stoull(value);
    } else if (ParseFlag(arg, "time-ms", &value)) {
      opts.time_limit_ms = std::stod(value);
    } else if (ParseFlag(arg, "print", &value)) {
      print_count = std::stoull(value);
    } else if (ParseFlag(arg, "threads", &value)) {
      threads = static_cast<uint32_t>(std::stoul(value));
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  PathEnumerator enumerator(graph);
  CollectingSink sink(std::max<size_t>(print_count, 1));

  if (threads > 0) {
    // Parallel counting path: per-thread sinks; keep the first few paths
    // from one shard for display.
    IndexBuilder builder;
    const LightweightIndex index = builder.Build(graph, query);
    ParallelDfsEnumerator parallel(index, threads);
    const ParallelEnumResult result = parallel.CountAll(opts);
    std::cout << result.counters.num_results << " paths ("
              << result.threads_used << " threads, " << result.wall_ms
              << " ms)\n";
    return 0;
  }

  uint64_t total = 0;
  CallbackSink counting([&](std::span<const VertexId> p) {
    if (total++ < print_count) {
      for (size_t j = 0; j < p.size(); ++j) {
        std::cout << (j > 0 ? " -> " : "") << p[j];
      }
      std::cout << "\n";
    }
    return true;
  });
  const QueryStats stats = enumerator.Run(query, counting, opts);
  std::cout << stats.counters.num_results << " paths in " << stats.total_ms
            << " ms (" << MethodName(stats.method)
            << "; index " << stats.index_ms << " ms, optimize "
            << stats.optimize_ms << " ms, enumerate " << stats.enumerate_ms
            << " ms)\n";
  if (stats.counters.timed_out) std::cout << "(stopped at time limit)\n";
  if (stats.counters.hit_result_limit) {
    std::cout << "(stopped at result limit)\n";
  }
  return 0;
}

int RunGenerate(int argc, char** argv) {
  if (argc != 5) return Usage();
  const Graph g = MakeDataset(argv[2], std::stod(argv[3]));
  SaveEdgeList(g, argv[4]);
  std::cout << "wrote " << argv[4] << ": " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";
  return 0;
}

int RunStats(int argc, char** argv) {
  if (argc != 3) return Usage();
  const Graph g = LoadEdgeList(argv[2]);
  std::vector<double> degrees;
  degrees.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees.push_back(static_cast<double>(g.Degree(v)));
  }
  TablePrinter table({"metric", "value"});
  table.AddRow({"vertices", std::to_string(g.num_vertices())});
  table.AddRow({"edges", std::to_string(g.num_edges())});
  table.AddRow({"avg degree", FormatFixed(Summarize(degrees).mean, 2)});
  table.AddRow({"p50 degree", FormatFixed(PercentileInPlace(degrees, 50), 0)});
  table.AddRow({"p90 degree", FormatFixed(PercentileInPlace(degrees, 90), 0)});
  table.AddRow({"p99 degree", FormatFixed(PercentileInPlace(degrees, 99), 0)});
  table.AddRow({"max degree", FormatFixed(Summarize(degrees).max, 0)});
  table.AddRow({"memory (MB)",
                FormatFixed(static_cast<double>(g.MemoryBytes()) / 1048576.0,
                            2)});
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  try {
    if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
    if (std::strcmp(argv[1], "generate") == 0) return RunGenerate(argc, argv);
    if (std::strcmp(argv[1], "stats") == 0) return RunStats(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
