// Money-laundering detection (paper motivation #1, after the FATF red-flag
// indicators): illegal funds move from a source account to a destination
// through short chains of intermediaries. Each transaction carries a risk
// factor; a single factor is not conclusive, so we flag flows whose
// *accumulated* risk along the path exceeds a threshold — the paper's
// accumulative-value extension (Algorithm 7), with monotone pruning.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/path_enum.h"
#include "graph/builder.h"
#include "util/rng.h"

using namespace pathenum;

int main() {
  constexpr VertexId kAccounts = 3000;
  constexpr uint32_t kHops = 4;  // launderers prefer short chains
  constexpr double kRiskThreshold = 2.0;
  Rng rng(11);

  // Transaction network: random low-risk transfers...
  GraphBuilder builder(kAccounts);
  for (int i = 0; i < 18000; ++i) {
    const VertexId a = static_cast<VertexId>(rng.NextBounded(kAccounts));
    const VertexId b = static_cast<VertexId>(rng.NextBounded(kAccounts));
    if (a == b) continue;
    builder.AddEdge(a, b, /*risk=*/0.05 + 0.2 * rng.NextDouble());
  }
  // ... plus a laundering chain through shell companies with risky
  // transactions (foreign capital, cash-intensive businesses, ...).
  const VertexId source_account = 42;
  const VertexId mule1 = 777, mule2 = 1234, dest_account = 2048;
  builder.AddEdge(source_account, mule1, /*risk=*/0.9);
  builder.AddEdge(mule1, mule2, /*risk=*/0.8);
  builder.AddEdge(mule2, dest_account, /*risk=*/0.95);
  const Graph graph = builder.Build();
  std::cout << "Transaction network: " << graph.num_vertices()
            << " accounts, " << graph.num_edges() << " transfers\n"
            << "Investigating flows " << source_account << " -> "
            << dest_account << " within " << kHops
            << " hops, accumulated risk >= " << kRiskThreshold << "\n\n";

  // Accumulative constraint: sum of per-edge risk must reach the
  // threshold. Risk is nonnegative, so there is no monotone upper-bound
  // prune for a ">=" test — but hop-budget pruning still applies via the
  // index. (For a "<=" budget test, `prune` would cut partial sums early;
  // see tests/constraints_test.cpp.)
  AccumulativeConstraint risk;
  risk.init = 0.0;
  risk.combine = [](double acc, double edge_risk) { return acc + edge_risk; };
  risk.accept = [&](double total) { return total >= kRiskThreshold; };

  PathConstraints constraints;
  constraints.accumulative = &risk;

  PathEnumerator enumerator(graph);
  CollectingSink sink(1000);
  const QueryStats stats = enumerator.RunConstrained(
      {source_account, dest_account, kHops}, constraints, sink);

  std::cout << "Flagged " << sink.paths().size()
            << " high-risk flows (of " << stats.counters.partials
            << " partial chains explored, " << stats.total_ms << " ms):\n";
  for (const auto& p : sink.paths()) {
    double total = 0;
    std::cout << "  ";
    for (size_t j = 0; j < p.size(); ++j) {
      if (j > 0) {
        total += graph.EdgeWeight(graph.FindEdge(p[j - 1], p[j]));
        std::cout << " -> ";
      }
      std::cout << p[j];
    }
    std::cout << "   (total risk " << total << ")";
    if (p.size() == 4 && p[1] == mule1 && p[2] == mule2) {
      std::cout << "   <- planted laundering chain";
    }
    std::cout << "\n";
  }
  if (sink.paths().empty()) {
    std::cout << "  (none — try lowering the threshold)\n";
  }
  return 0;
}
