// Quickstart: build a graph, run one hop-constrained s-t path query with
// the full PathEnum pipeline, and inspect the per-query statistics.
//
//   ./quickstart                # demo graph
//   ./quickstart edges.txt s t k   # your own SNAP-style edge list
#include <iostream>
#include <string>

#include "core/path_enum.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/io.h"

using namespace pathenum;

int main(int argc, char** argv) {
  Graph graph;
  Query query;
  if (argc == 5) {
    graph = LoadEdgeList(argv[1]);
    query.source = static_cast<VertexId>(std::stoul(argv[2]));
    query.target = static_cast<VertexId>(std::stoul(argv[3]));
    query.hops = static_cast<uint32_t>(std::stoul(argv[4]));
  } else {
    // A small R-MAT graph: 1024 vertices with a skewed degree profile.
    graph = RMat(/*scale=*/10, /*num_edges=*/6000, /*seed=*/42);
    query = {0, 5, 4};
    // Pick endpoints that are actually connected within the budget.
    for (VertexId t = 1; t < graph.num_vertices(); ++t) {
      if (t != query.source && WithinDistance(graph, query.source, t, 2)) {
        query.target = t;
        break;
      }
    }
    std::cout << "Demo graph: " << graph.num_vertices() << " vertices, "
              << graph.num_edges() << " edges\n";
  }
  std::cout << "Query: all paths " << query.source << " -> " << query.target
            << " with at most " << query.hops << " hops\n\n";

  // One PathEnumerator per graph; it reuses its BFS buffers across queries.
  PathEnumerator enumerator(graph);

  // Stream results through a sink. CollectingSink stores them; a custom
  // CallbackSink could process them on the fly instead.
  CollectingSink sink(/*max_paths=*/1000000);
  EnumOptions options;  // defaults: no limits, cost-based strategy choice
  const QueryStats stats = enumerator.Run(query, sink, options);

  std::cout << "Found " << stats.counters.num_results << " paths using "
            << MethodName(stats.method) << "\n";
  for (size_t i = 0; i < sink.paths().size() && i < 10; ++i) {
    const auto& p = sink.paths()[i];
    std::cout << "  ";
    for (size_t j = 0; j < p.size(); ++j) {
      std::cout << (j > 0 ? " -> " : "") << p[j];
    }
    std::cout << "\n";
  }
  if (sink.paths().size() > 10) {
    std::cout << "  ... and " << sink.paths().size() - 10 << " more\n";
  }

  std::cout << "\nBreakdown:\n"
            << "  index construction : " << stats.index_ms << " ms ("
            << stats.index_vertices << " vertices, " << stats.index_edges
            << " edges in the index)\n"
            << "  join-order optimize: " << stats.optimize_ms << " ms\n"
            << "  enumeration        : " << stats.enumerate_ms << " ms\n"
            << "  total              : " << stats.total_ms << " ms\n"
            << "  throughput         : " << stats.ThroughputPerSec()
            << " results/s\n";
  return 0;
}
