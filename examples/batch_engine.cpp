// Batch QueryEngine walkthrough: serve a workload of hop-constrained
// queries through the pooled engine instead of one-at-a-time
// PathEnumerator::Run calls.
//
//   ./batch_engine [num_workers]   # default: hardware concurrency
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "workload/query_gen.h"

using namespace pathenum;

int main(int argc, char** argv) {
  // Non-numeric or non-positive input falls back to 0 = hardware pick.
  const int requested = argc > 1 ? std::atoi(argv[1]) : 0;
  const uint32_t workers =
      requested > 0 ? static_cast<uint32_t>(requested) : 0;

  // A scale-free graph and a paper-style query set (s, t in the top degree
  // decile, dist(s, t) <= 3).
  const Graph graph = BarabasiAlbert(20000, 8, /*seed=*/42);
  QueryGenOptions gen;
  gen.count = 64;
  gen.hops = 5;
  const std::vector<Query> queries = GenerateQueries(graph, gen);
  std::cout << "workload: " << queries.size() << " queries over "
            << graph.num_vertices() << " vertices\n";

  QueryEngine engine(graph, {.num_workers = workers});
  std::cout << "engine: " << engine.num_workers() << " pooled workers\n";

  BatchOptions opts;
  opts.query.result_limit = 10000;  // cap heavy hubs per query

  // First batch pays the warm-up (scratch growth); repeat batches reuse
  // every buffer.
  for (int round = 0; round < 2; ++round) {
    const BatchResult result = engine.CountBatch(queries, opts);
    std::cout << (round == 0 ? "cold" : "warm") << " batch: "
              << result.TotalResults() << " paths in " << result.wall_ms
              << " ms (" << result.QueriesPerSec() << " queries/s)\n";
  }

  const auto stats = engine.Stats();
  std::cout << "served " << stats.queries_run << " queries across "
            << stats.batches_run << " batches; steady-state scratch "
            << stats.scratch_bytes / 1024.0 << " KiB\n";

  // Few heavy queries? Let each query fan its DFS branches across the
  // whole pool instead (forces IDX-DFS).
  BatchOptions split = opts;
  split.split_branches = true;
  const std::vector<Query> heavy(queries.begin(),
                                 queries.begin() +
                                     std::min<size_t>(4, queries.size()));
  const BatchResult result = engine.CountBatch(heavy, split);
  std::cout << "split-branch batch: " << result.TotalResults()
            << " paths in " << result.wall_ms << " ms\n";

  // Everything above also landed in the process-wide metric registry
  // (DESIGN.md §12) — the same exposition a scrape endpoint would serve.
  // Empty when built with -DPATHENUM_OBS=OFF.
  const std::string metrics = obs::DumpMetricsText();
  if (!metrics.empty()) {
    std::cout << "\n-- metrics (DumpMetricsText) --\n" << metrics;
  }
  return 0;
}
