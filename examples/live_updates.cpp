// Live-graph demo (DESIGN.md §7): an AsyncEngine serving streaming
// hop-constrained path queries while edge updates land between them.
// Shows MVCC snapshot isolation (a query in flight across an update keeps
// its own version), streaming delivery through the sink contract, and the
// cache surviving updates that happen far from the hot query.
//
// Build: cmake --build build --target live_updates && ./build/live_updates
#include <cstdio>
#include <vector>

#include "graph/builder.h"
#include "live/async_engine.h"

using namespace pathenum;

namespace {

/// Streams each path to stdout as it is found (the sink runs on a worker
/// thread; this demo only reads from the main thread after Wait()).
class PrintingSink : public PathSink {
 public:
  explicit PrintingSink(const char* tag) : tag_(tag) {}

  bool OnPath(std::span<const VertexId> path) override {
    std::printf("  [%s] path:", tag_);
    for (const VertexId v : path) std::printf(" %u", v);
    std::printf("\n");
    return true;
  }

 private:
  const char* tag_;
};

}  // namespace

int main() {
  // A small two-community graph: the hot query lives in vertices 0..9,
  // the churn happens in 10..19.
  GraphBuilder b(20);
  for (VertexId v = 0; v < 9; ++v) b.AddEdge(v, v + 1);
  b.AddEdge(0, 2);
  b.AddEdge(2, 5);
  b.AddEdge(5, 9);
  for (VertexId v = 10; v < 19; ++v) b.AddEdge(v, v + 1);

  AsyncEngineOptions opts;
  opts.num_workers = 2;
  AsyncEngine engine(b.Build(), opts);
  const Query hot{0, 9, 5};

  std::printf("version %llu: querying q(0, 9, 5)\n",
              static_cast<unsigned long long>(engine.version()));
  PrintingSink sink_v0("v0");
  engine.Submit(hot, sink_v0).Wait();

  // An update inside the hot neighborhood: a shortcut 2 -> 9 opens new
  // paths; the affected cache entries are evicted, far-away ones survive.
  std::printf("\napplying update: +(2 -> 9), +(12 -> 15), -(0 -> 2)\n");
  engine.SubmitUpdate(
      GraphDelta{}.Insert(2, 9).Insert(12, 15).Delete(0, 2));

  std::printf("version %llu: same query, new snapshot\n",
              static_cast<unsigned long long>(engine.version()));
  PrintingSink sink_v1("v1");
  const QueryTicket t1 = engine.Submit(hot, sink_v1);
  t1.Wait();
  std::printf("  -> %llu paths at version %llu\n",
              static_cast<unsigned long long>(
                  t1.Wait().counters.num_results),
              static_cast<unsigned long long>(t1.snapshot_version()));

  // Interleaved: queries submitted before an update keep their snapshot.
  std::vector<CountingSink> counts(4);
  std::vector<QueryTicket> tickets;
  tickets.push_back(engine.Submit(hot, counts[0]));
  tickets.push_back(engine.Submit(hot, counts[1]));
  engine.SubmitUpdate(GraphDelta{}.Insert(0, 2));  // restore the shortcut
  tickets.push_back(engine.Submit(hot, counts[2]));
  tickets.push_back(engine.Submit(hot, counts[3]));

  std::printf("\ninterleaved submissions straddling an update:\n");
  for (size_t i = 0; i < tickets.size(); ++i) {
    tickets[i].Wait();
    std::printf("  query %zu: version %llu, %llu paths\n", i,
                static_cast<unsigned long long>(tickets[i].snapshot_version()),
                static_cast<unsigned long long>(counts[i].count()));
  }

  const AsyncEngine::Stats stats = engine.stats();
  std::printf(
      "\nengine: %llu queries, %llu updates, cache %llu hits / %llu misses "
      "(%llu evicted incrementally)\n",
      static_cast<unsigned long long>(stats.executed),
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.cache.result_hits +
                                      stats.cache.index_hits),
      static_cast<unsigned long long>(stats.cache.index_misses),
      static_cast<unsigned long long>(stats.cache.invalidation_evictions));
  return 0;
}
