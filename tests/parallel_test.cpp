// Tests for the parallel IDX-DFS enumerator and the triggered-cycle API.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/cycles.h"
#include "core/dfs_enumerator.h"
#include "core/parallel_dfs.h"
#include "core/path_enum.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

/// Runs the parallel enumerator with per-thread collecting sinks merged
/// into one set.
PathSet ParallelCollect(const LightweightIndex& idx, uint32_t threads,
                        ParallelEnumResult* out_result = nullptr,
                        const EnumOptions& opts = {}) {
  ParallelDfsEnumerator parallel(idx, threads);
  std::mutex mutex;
  std::vector<std::vector<std::vector<VertexId>>> shards;
  shards.reserve(64);  // stable addresses: one shard per worker at most
  const ParallelEnumResult result = parallel.Run(
      [&]() -> std::unique_ptr<PathSink> {
        const std::lock_guard<std::mutex> lock(mutex);
        shards.emplace_back();
        auto* shard = &shards.back();
        return std::make_unique<CallbackSink>(
            [shard](std::span<const VertexId> p) {
              shard->emplace_back(p.begin(), p.end());
              return true;
            });
      },
      opts);
  if (out_result != nullptr) *out_result = result;
  PathSet merged;
  size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
    for (const auto& p : shard) merged.insert(p);
  }
  EXPECT_EQ(total, merged.size()) << "shards must be disjoint";
  return merged;
}

class ParallelDfsTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelDfsTest, MatchesSequentialOnExample) {
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  const PathSet expected = ToSet(BruteForcePaths(g, q));
  EXPECT_EQ(ParallelCollect(idx, GetParam()), expected);
}

TEST_P(ParallelDfsTest, MatchesSequentialOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = RMat(6, 300, seed * 7);
    const Query q{static_cast<VertexId>(seed % 64),
                  static_cast<VertexId>((seed * 37 + 5) % 64), 5};
    if (q.source == q.target) continue;
    IndexBuilder builder;
    const LightweightIndex idx = builder.Build(g, q);
    DfsEnumerator sequential(idx);
    CollectingSink seq_sink;
    sequential.Run(seq_sink, {});
    EXPECT_EQ(ParallelCollect(idx, GetParam()), ToSet(seq_sink.paths()))
        << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelDfsTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelDfsTest, CountAllAgreesWithSequentialCounters) {
  const Graph g = CompleteDigraph(10);
  const Query q{0, 9, 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  DfsEnumerator sequential(idx);
  CountingSink seq_sink;
  const EnumCounters seq = sequential.Run(seq_sink, {});
  ParallelDfsEnumerator parallel(idx, 4);
  const ParallelEnumResult par = parallel.CountAll();
  EXPECT_EQ(par.counters.num_results, seq.num_results);
  EXPECT_EQ(par.counters.partials, seq.partials);
  EXPECT_EQ(par.counters.edges_accessed, seq.edges_accessed);
  EXPECT_EQ(par.threads_used, 4u);
}

TEST(ParallelDfsTest, ResultLimitIsExactAcrossThreads) {
  const Graph g = LayeredGraph(3, 5);  // 125 paths
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  EnumOptions opts;
  opts.result_limit = 40;
  ParallelEnumResult result;
  const PathSet got = ParallelCollect(idx, 4, &result, opts);
  EXPECT_EQ(got.size(), 40u);
  EXPECT_TRUE(result.counters.hit_result_limit);
}

TEST(ParallelDfsTest, ExactLimitBoundaryNeverOvershoots) {
  // The merge-barrier regression: at limits exactly at / one under the
  // full result count, delivered must equal the limit — never limit + 1 —
  // and the truncation flags must match the sequential enumerator's.
  const Graph g = LayeredGraph(3, 5);  // 125 paths
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  for (const uint64_t limit : {125u, 124u, 1u}) {
    EnumOptions opts;
    opts.result_limit = limit;
    DfsEnumerator sequential(idx);
    CountingSink seq_sink;
    const EnumCounters seq = sequential.Run(seq_sink, opts);
    ParallelEnumResult result;
    const PathSet got = ParallelCollect(idx, 4, &result, opts);
    EXPECT_EQ(got.size(), limit) << "limit=" << limit;
    EXPECT_EQ(result.counters.num_results, seq.num_results);
    EXPECT_EQ(result.counters.hit_result_limit, seq.hit_result_limit)
        << "limit=" << limit;
    EXPECT_EQ(result.counters.stopped_by_sink, seq.stopped_by_sink)
        << "limit=" << limit;
  }
}

TEST(ParallelDfsTest, OneSinkRefusingStopsOnlyItsOwnWorker) {
  // Per-worker fan-in contract: a private sink returning false stops that
  // worker alone. With 2 workers on 5 first-level branches (25 paths
  // each), the refusing worker abandons at most its single claimed branch
  // — the steady worker must still drain the remaining >= 4 branches.
  const Graph g = LayeredGraph(3, 5);  // 5 branches x 25 paths
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  ParallelDfsEnumerator parallel(idx, 2);
  std::atomic<uint64_t> steady_total{0};
  std::atomic<int> nth{0};
  const ParallelEnumResult result = parallel.Run([&] {
    const bool refuser = nth.fetch_add(1) == 0;
    return std::make_unique<CallbackSink>(
        [&steady_total, refuser](std::span<const VertexId>) {
          if (refuser) return false;
          steady_total.fetch_add(1);
          return true;
        });
  });
  // In every interleaving the refuser consumes at most one branch (its
  // first emission aborts it), so the steady worker's share is >= 4
  // branches; whether the refuser got to refuse at all is scheduling-
  // dependent, so only the lower bound is asserted.
  EXPECT_GE(steady_total.load(), 100u)
      << "a refusing sink must not halt the other worker's claiming";
  EXPECT_LE(result.counters.num_results, 125u);
}

TEST(ParallelDfsTest, SharedPoolFormReusesTheCallersPool) {
  // Post-migration contract: no private threads — several enumerations can
  // ride one pool, and results stay exact.
  const Graph g = RMat(6, 300, 17);
  ThreadPool pool(4);
  for (const Query q : {Query{0, 30, 5}, Query{2, 40, 4}}) {
    IndexBuilder builder;
    const LightweightIndex idx = builder.Build(g, q);
    DfsEnumerator sequential(idx);
    CollectingSink seq_sink;
    sequential.Run(seq_sink, {});
    ParallelDfsEnumerator parallel(idx, pool);
    std::mutex mutex;
    std::vector<std::vector<std::vector<VertexId>>> shards;
    shards.reserve(8);
    parallel.Run([&]() -> std::unique_ptr<PathSink> {
      const std::lock_guard<std::mutex> lock(mutex);
      shards.emplace_back();
      auto* shard = &shards.back();
      return std::make_unique<CallbackSink>(
          [shard](std::span<const VertexId> p) {
            shard->emplace_back(p.begin(), p.end());
            return true;
          });
    });
    PathSet merged;
    for (const auto& shard : shards) {
      for (const auto& p : shard) merged.insert(p);
    }
    EXPECT_EQ(merged, ToSet(seq_sink.paths()));
  }
}

TEST(ParallelDfsTest, ResponseTargetRecordedOnce) {
  const Graph g = LayeredGraph(3, 5);
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  EnumOptions opts;
  opts.response_target = 50;
  ParallelDfsEnumerator parallel(idx, 4);
  const ParallelEnumResult result = parallel.CountAll(opts);
  EXPECT_EQ(result.counters.num_results, 125u);
  EXPECT_GE(result.counters.response_ms, 0.0);
}

TEST(ParallelDfsTest, EmptyIndexYieldsNothing) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 3, 4});
  ParallelDfsEnumerator parallel(idx, 4);
  const ParallelEnumResult result = parallel.CountAll();
  EXPECT_EQ(result.counters.num_results, 0u);
  EXPECT_EQ(result.threads_used, 0u);
}

TEST(ParallelDfsTest, DirectEdgeBranchHandled) {
  // t itself is a first-level branch when the edge (s, t) exists.
  const Graph g = Graph::FromEdges(3, {{0, 2}, {0, 1}, {1, 2}});
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 2, 2});
  EXPECT_EQ(ParallelCollect(idx, 2), (PathSet{{0, 2}, {0, 1, 2}}));
}

// --- Triggered cycles ---------------------------------------------------------

TEST(CycleApiTest, ClosesThePaperExamplePaths) {
  // Cycles through a hypothetical edge (t, s): each s-t path plus that
  // edge, emitted as (t, s, ..., t).
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CollectingSink sink;
  EnumerateTriggeredCycles(pe, testing::kT, testing::kS, 5, sink);
  ASSERT_EQ(sink.paths().size(), 5u);
  for (const auto& c : sink.paths()) {
    EXPECT_EQ(c.front(), testing::kT);
    EXPECT_EQ(c.back(), testing::kT);
    EXPECT_EQ(c[1], testing::kS);
    EXPECT_LE(c.size(), 6u + 1u);
    std::set<VertexId> interior(c.begin() + 1, c.end() - 1);
    EXPECT_EQ(interior.size(), c.size() - 2) << "cycle must be simple";
  }
}

TEST(CycleApiTest, MatchesManualReduction) {
  const Graph g = RMat(5, 150, 44);
  PathEnumerator pe(g);
  for (VertexId u = 0; u < 8; ++u) {
    for (const VertexId v : g.OutNeighbors(u)) {
      CountingSink cycles;
      EnumerateTriggeredCycles(pe, u, v, 5, cycles);
      EXPECT_EQ(cycles.count(), CountPathsBruteForce(g, {v, u, 4}))
          << u << "->" << v;
      break;  // one edge per source suffices
    }
  }
}

TEST(CycleApiTest, SelfLoopYieldsNothing) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CountingSink sink;
  const QueryStats stats = EnumerateTriggeredCycles(pe, 3, 3, 6, sink);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(stats.counters.num_results, 0u);
}

TEST(CycleApiTest, HopBoundRespected) {
  const Graph g = CycleGraph(6);
  PathEnumerator pe(g);
  // The ring is one 6-cycle; asking through edge (0,1) with max 6 finds
  // it, with max 5 does not.
  CountingSink found;
  EnumerateTriggeredCycles(pe, 0, 1, 6, found);
  EXPECT_EQ(found.count(), 1u);
  CountingSink missed;
  EnumerateTriggeredCycles(pe, 0, 1, 5, missed);
  EXPECT_EQ(missed.count(), 0u);
  EXPECT_THROW(EnumerateTriggeredCycles(pe, 0, 1, 1, missed),
               std::logic_error);
}

}  // namespace
}  // namespace pathenum
