// Unit tests for the util subsystem: stats, RNG, timer, table formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <span>
#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace pathenum {
namespace {

// --- Summarize -------------------------------------------------------------

TEST(SummarizeTest, EmptyInput) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const Summary s = Summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(SummarizeTest, KnownSample) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(SummarizeTest, NegativeValues) {
  const Summary s = Summarize({-3.0, -1.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
}

// --- Percentile ------------------------------------------------------------

TEST(PercentileTest, Empty) { EXPECT_EQ(Percentile({}, 50.0), 0.0); }

TEST(PercentileTest, Median) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileTest, MinAndMax) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 9.0);
}

TEST(PercentileTest, NearestRankTail) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(i);
  // 99.9% of 1000 samples: nearest rank 999.
  EXPECT_DOUBLE_EQ(Percentile(v, 99.9), 999.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 99.0), 990.0);
}

TEST(PercentileTest, RejectsOutOfRange) {
  EXPECT_THROW(Percentile({1.0}, -1.0), std::logic_error);
  EXPECT_THROW(Percentile({1.0}, 101.0), std::logic_error);
}

TEST(PercentileTest, InPlaceMatchesCopyingVariant) {
  const std::vector<double> sample{7.0, 2.0, 9.0, 4.0, 1.0, 8.0};
  for (const double p : {0.0, 25.0, 50.0, 90.0, 100.0}) {
    std::vector<double> scratch = sample;
    EXPECT_DOUBLE_EQ(PercentileInPlace(scratch, p), Percentile(sample, p));
  }
}

TEST(PercentileTest, InPlaceSortsTheSample) {
  std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(PercentileInPlace(v, 50.0), 2.0);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  // Repeated ranks on the now-sorted sample agree with the copying API.
  EXPECT_DOUBLE_EQ(PercentileInPlace(v, 100.0), 3.0);
}

TEST(PercentileTest, InPlaceEmpty) {
  EXPECT_EQ(PercentileInPlace(std::span<double>{}, 50.0), 0.0);
}

// --- EmpiricalCdf ----------------------------------------------------------

TEST(CdfTest, CoversFullRange) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const auto cdf = EmpiricalCdf(v, 10);
  ASSERT_EQ(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.back().value, 100.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(CdfTest, FewerSamplesThanPoints) {
  const auto cdf = EmpiricalCdf({2.0, 1.0}, 64);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
}

// --- FitLine ---------------------------------------------------------------

TEST(FitLineTest, PerfectLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r, 1.0, 1e-12);
}

TEST(FitLineTest, AntiCorrelated) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{3, 2, 1, 0};
  EXPECT_NEAR(FitLine(xs, ys).r, -1.0, 1e-12);
}

TEST(FitLineTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}, {}).count, 0u);
  EXPECT_EQ(FitLine({1.0}, {2.0}).count, 1u);
  // Vertical line: zero x-variance yields a zero fit rather than NaN.
  const LinearFit fit = FitLine({2.0, 2.0}, {1.0, 5.0});
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(SafeLog10Test, SaturatesNonPositive) {
  EXPECT_DOUBLE_EQ(SafeLog10(0.0), -6.0);
  EXPECT_DOUBLE_EQ(SafeLog10(-5.0), -6.0);
  EXPECT_DOUBLE_EQ(SafeLog10(100.0), 2.0);
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(7);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedHitsAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

// --- Timer / Deadline ------------------------------------------------------

TEST(TimerTest, ElapsedIsMonotone) {
  Timer t;
  const double a = t.ElapsedMs();
  const double b = t.ElapsedMs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  EXPECT_FALSE(Deadline::Unlimited().Expired());
  EXPECT_FALSE(Deadline::Unlimited().limited());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::AfterMs(0.0);
  EXPECT_TRUE(d.limited());
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, InfiniteBudgetIsUnlimited) {
  const Deadline d =
      Deadline::AfterMs(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(d.limited());
}

// --- Table formatting --------------------------------------------------------

TEST(FormatSciTest, MatchesPaperStyle) {
  EXPECT_EQ(FormatSci(5.75), "5.75e+0");
  EXPECT_EQ(FormatSci(1460.0), "1.46e+3");
  EXPECT_EQ(FormatSci(0.275), "2.75e-1");
  EXPECT_EQ(FormatSci(0.0), "0.00e+0");
}

TEST(FormatSciTest, NegativeAndNonFinite) {
  EXPECT_EQ(FormatSci(-250.0), "-2.50e+2");
  EXPECT_EQ(FormatSci(std::numeric_limits<double>::infinity()), "inf");
}

TEST(FormatFixedTest, Digits) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::logic_error);
}

}  // namespace
}  // namespace pathenum
