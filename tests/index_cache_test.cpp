// Tests for the cross-query cache subsystem (DESIGN.md §6): cached-vs-fresh
// result equivalence (bit-identical paths), LRU eviction under a byte
// budget, cross-thread single-flight builds on concurrent identical
// queries, invalidation on graph rebind, the never-cache-truncated-results
// rule, batch dedup fanout, and the active-worker clamp.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/path_enum.h"
#include "engine/index_cache.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

std::vector<Query> SmallMixedQueries(const Graph& g) {
  std::vector<Query> queries;
  for (VertexId s = 0; s < 6; ++s) {
    for (uint32_t k = 2; k <= 5; ++k) {
      const VertexId t = (s + 17 + k) % g.num_vertices();
      if (s == t) continue;
      queries.push_back({s, t, k});
    }
  }
  return queries;
}

EngineOptions CachedEngineOptions(uint32_t workers) {
  EngineOptions opts;
  opts.num_workers = workers;
  opts.enable_cache = true;
  return opts;
}

// ---------------------------------------------------------------------------
// IndexCache primitive behavior
// ---------------------------------------------------------------------------

TEST(IndexCacheTest, ConcurrentIdenticalQueriesBuildOnce) {
  const Graph g = ErdosRenyi(60, 600, 4);
  const Query q{0, 10, 4};
  IndexCacheOptions opts;
  opts.shards = 4;
  IndexCache cache(opts);
  const CacheKey key{q.source, q.target, q.hops, 0};

  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const LightweightIndex>> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[i] = cache.GetOrBuild(key, [&] {
        builds.fetch_add(1);
        IndexBuilder builder;
        return builder.Build(g, q);
      });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1) << "thundering herd: the key was built twice";
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i].get(), results[0].get());
  }
  const IndexCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.index_misses, 1u);
  EXPECT_EQ(stats.index_hits + stats.coalesced_builds,
            static_cast<uint64_t>(kThreads - 1));
  EXPECT_GT(stats.index_bytes, 0u);
}

TEST(IndexCacheTest, EvictsLeastRecentlyUsedUnderTightByteBudget) {
  const Graph g = ErdosRenyi(60, 600, 4);
  const Query q{0, 10, 4};
  IndexBuilder builder;
  const size_t one_index_bytes = builder.Build(g, q).MemoryBytes();

  // Room for two entries (plus bookkeeping overhead), single shard so the
  // budget is not split.
  IndexCacheOptions opts;
  opts.shards = 1;
  opts.max_index_bytes = 2 * (one_index_bytes + 1024);
  IndexCache cache(opts);

  // Same query under distinct fingerprints: three equally-sized entries.
  const auto build = [&] {
    IndexBuilder b;
    return b.Build(g, q);
  };
  for (uint64_t fp = 0; fp < 3; ++fp) {
    cache.GetOrBuild({q.source, q.target, q.hops, fp}, build);
  }

  const IndexCacheStats stats = cache.Stats();
  EXPECT_GE(stats.index_evictions, 1u);
  EXPECT_LE(stats.index_bytes, opts.max_index_bytes);
  EXPECT_EQ(cache.PeekIndex({q.source, q.target, q.hops, 0}), nullptr)
      << "oldest entry should have been evicted";
  EXPECT_NE(cache.PeekIndex({q.source, q.target, q.hops, 2}), nullptr)
      << "newest entry must be retained";
}

TEST(IndexCacheTest, ClearDuringInflightBuildIsNotJoinedAndNotPublished) {
  const Graph g = ErdosRenyi(40, 300, 9);
  const Query q{0, 10, 3};
  IndexCache cache;
  const CacheKey key{q.source, q.target, q.hops, 0};

  std::promise<void> registered;
  std::promise<void> release;
  std::shared_future<void> release_f = release.get_future().share();
  std::thread stale([&] {
    cache.GetOrBuild(key, [&] {
      registered.set_value();  // the in-flight latch is now visible
      release_f.wait();        // ...and held until the end of the test
      IndexBuilder b;
      return b.Build(g, q);
    });
  });
  registered.get_future().wait();

  // The rebind path: everything cached (and in flight) is now stale.
  cache.Clear();

  // A post-Clear lookup of the same key must NOT wait for the stale build;
  // it builds fresh and completes while the stale build is still stuck.
  bool hit = true;
  const auto fresh = cache.GetOrBuild(
      key,
      [&] {
        IndexBuilder b;
        return b.Build(g, q);
      },
      &hit);
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(hit);

  release.set_value();
  stale.join();
  // The stale build finished for its caller but was not published over the
  // fresh entry.
  EXPECT_EQ(cache.PeekIndex(key).get(), fresh.get());
  EXPECT_EQ(cache.Stats().coalesced_builds, 0u);
}

TEST(IndexCacheTest, BuildFailurePropagatesAndDoesNotPoisonTheKey) {
  IndexCache cache;
  const CacheKey key{1, 2, 3, 0};
  EXPECT_THROW(cache.GetOrBuild(
                   key, []() -> LightweightIndex {
                     throw std::runtime_error("build exploded");
                   }),
               std::runtime_error);
  // The key is buildable again afterwards.
  const Graph g = ErdosRenyi(40, 300, 9);
  bool hit = true;
  const auto index = cache.GetOrBuild(
      {0, 10, 3, 0},
      [&] {
        IndexBuilder b;
        return b.Build(g, {0, 10, 3});
      },
      &hit);
  EXPECT_NE(index, nullptr);
  EXPECT_FALSE(hit);
}

// ---------------------------------------------------------------------------
// Engine integration: equivalence
// ---------------------------------------------------------------------------

TEST(EngineCacheTest, CachedResultsBitIdenticalToFresh) {
  const Graph g = ErdosRenyi(60, 600, 4);
  const std::vector<Query> queries = SmallMixedQueries(g);

  // Fresh sequential reference, same options.
  PathEnumerator fresh(g);
  std::vector<std::vector<std::vector<VertexId>>> expected;
  for (const Query& q : queries) {
    CollectingSink sink;
    fresh.Run(q, sink);
    expected.push_back(sink.paths());
  }

  QueryEngine engine(g, CachedEngineOptions(1));
  for (int round = 0; round < 3; ++round) {
    std::vector<CollectingSink> collected(queries.size());
    std::vector<PathSink*> sinks;
    for (auto& c : collected) sinks.push_back(&c);
    const BatchResult result = engine.RunBatch(queries, sinks);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      // Bit-identical including order, not just set-equal.
      EXPECT_EQ(collected[i].paths(), expected[i])
          << "query " << i << " round " << round;
    }
    if (round > 0) {
      // Steady state: every query replays from the result cache.
      EXPECT_EQ(result.cache.result_hits, queries.size());
      uint64_t replayed = 0;
      for (const QueryStats& s : result.stats) {
        replayed += s.result_cache_hit ? 1 : 0;
      }
      EXPECT_EQ(replayed, queries.size());
    }
  }
}

TEST(EngineCacheTest, IndexOnlyCacheMatchesFreshCounts) {
  const Graph g = BarabasiAlbert(100, 4, 9);
  const std::vector<Query> queries = SmallMixedQueries(g);

  EngineOptions opts = CachedEngineOptions(2);
  opts.cache.max_result_bytes = 0;  // exercise the index-hit path alone
  QueryEngine engine(g, opts);

  const BatchResult first = engine.CountBatch(queries);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.cache.index_misses, 0u);
  EXPECT_EQ(first.cache.result_hits, 0u);

  const BatchResult second = engine.CountBatch(queries);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.cache.index_hits, 0u);
  EXPECT_EQ(second.cache.index_misses, 0u);

  PathEnumerator fresh(g);
  for (size_t i = 0; i < queries.size(); ++i) {
    CountingSink sink;
    fresh.Run(queries[i], sink);
    EXPECT_EQ(second.stats[i].counters.num_results, sink.count());
    EXPECT_TRUE(second.stats[i].index_cache_hit);
    EXPECT_FALSE(second.stats[i].result_cache_hit);
  }
}

// ---------------------------------------------------------------------------
// Truncated runs never enter the result cache
// ---------------------------------------------------------------------------

TEST(EngineCacheTest, TruncatedRunsNeverEnterResultCache) {
  const Graph g = ErdosRenyi(60, 700, 21);
  const Query heavy{0, 30, 6};

  CountingSink ref;
  PathEnumerator(g).Run(heavy, ref);
  ASSERT_GT(ref.count(), 5u) << "need a query with more results than the limit";

  QueryEngine engine(g, CachedEngineOptions(1));
  BatchOptions opts;
  opts.query.result_limit = 5;
  const std::vector<Query> queries = {heavy};

  for (int round = 0; round < 3; ++round) {
    const BatchResult r = engine.CountBatch(queries, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.stats[0].counters.num_results, 5u);
    EXPECT_TRUE(r.stats[0].counters.hit_result_limit);
    EXPECT_FALSE(r.stats[0].result_cache_hit);
    EXPECT_EQ(r.cache.result_inserts, 0u)
        << "a limit-truncated run was recorded";
  }

  // An untruncated batch on the same key does get cached — and replay under
  // a tighter limit re-applies that limit.
  const BatchResult full = engine.CountBatch(queries);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.stats[0].counters.num_results, ref.count());
  EXPECT_EQ(full.cache.result_inserts, 1u);
  const BatchResult replay_limited = engine.CountBatch(queries, opts);
  ASSERT_TRUE(replay_limited.ok());
  EXPECT_EQ(replay_limited.stats[0].counters.num_results, 5u);
  EXPECT_TRUE(replay_limited.stats[0].counters.hit_result_limit);
  EXPECT_TRUE(replay_limited.stats[0].result_cache_hit);
}

TEST(EngineCacheTest, SinkStoppedRunsNeverEnterResultCache) {
  const Graph g = ErdosRenyi(60, 700, 21);
  const Query heavy{0, 30, 6};
  QueryEngine engine(g, CachedEngineOptions(1));

  class Quitting : public PathSink {
   public:
    bool OnPath(std::span<const VertexId>) override { return ++n_ < 3; }
    uint64_t n_ = 0;
  };
  Quitting sink;
  PathSink* sinks[] = {&sink};
  const std::vector<Query> queries = {heavy};
  const BatchResult r = engine.RunBatch(queries, sinks);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.stats[0].counters.stopped_by_sink);
  EXPECT_EQ(r.cache.result_inserts, 0u);
  EXPECT_EQ(engine.cache()->Stats().result_inserts, 0u);
}

// ---------------------------------------------------------------------------
// Invalidation on graph rebind
// ---------------------------------------------------------------------------

TEST(EngineCacheTest, RebindToNewGraphInvalidatesCaches) {
  const Graph a = ErdosRenyi(50, 400, 1);
  const Graph b = ErdosRenyi(50, 550, 2);
  const std::vector<Query> queries = SmallMixedQueries(a);

  QueryEngine engine(a, CachedEngineOptions(2));
  const BatchResult on_a = engine.CountBatch(queries);
  ASSERT_TRUE(on_a.ok());
  ASSERT_GT(engine.cache()->Stats().index_bytes, 0u);

  engine.RebindGraph(b);
  EXPECT_EQ(engine.cache()->Stats().index_bytes, 0u);
  EXPECT_EQ(engine.cache()->Stats().result_bytes, 0u);
  EXPECT_EQ(&engine.graph(), &b);

  const BatchResult on_b = engine.CountBatch(queries);
  ASSERT_TRUE(on_b.ok());
  PathEnumerator fresh(b);
  for (size_t i = 0; i < queries.size(); ++i) {
    CountingSink sink;
    fresh.Run(queries[i], sink);
    ASSERT_EQ(on_b.stats[i].counters.num_results, sink.count())
        << "stale cached answer served after rebind (query " << i << ")";
  }
}

// ---------------------------------------------------------------------------
// Batch dedup and worker clamping
// ---------------------------------------------------------------------------

TEST(EngineCacheTest, DuplicateQueriesInBatchFanOutToEverySink) {
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  const std::vector<Query> queries = {q, q, q};

  CollectingSink expected;
  PathEnumerator(g).Run(q, expected);

  for (const bool with_cache : {false, true}) {
    EngineOptions eopts;
    eopts.num_workers = 2;
    eopts.enable_cache = with_cache;
    QueryEngine engine(g, eopts);
    std::vector<CollectingSink> collected(queries.size());
    std::vector<PathSink*> sinks;
    for (auto& c : collected) sinks.push_back(&c);
    const BatchResult result = engine.RunBatch(queries, sinks);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(collected[i].paths(), expected.paths())
          << "duplicate " << i << " (cache=" << with_cache << ")";
      EXPECT_EQ(result.stats[i].counters.num_results, expected.paths().size());
    }
    // All three queries count as served even though the group ran once.
    EXPECT_EQ(engine.Stats().queries_run, queries.size());
  }
}

TEST(EngineCacheTest, DedupRespectsPerSinkStopContract) {
  const Graph g = ErdosRenyi(60, 700, 33);
  const Query heavy{0, 30, 6};
  const std::vector<Query> queries = {heavy, heavy};

  class Quitting : public PathSink {
   public:
    bool OnPath(std::span<const VertexId>) override {
      EXPECT_FALSE(stopped_) << "OnPath called after it returned false";
      if (++n_ >= 3) {
        stopped_ = true;
        return false;
      }
      return true;
    }
    uint64_t n_ = 0;
    bool stopped_ = false;
  };

  CountingSink keeps_going;
  Quitting quits;
  std::vector<PathSink*> sinks = {&keeps_going, &quits};
  QueryEngine engine(g, {.num_workers = 1});
  const BatchResult result = engine.RunBatch(queries, sinks);
  ASSERT_TRUE(result.ok());

  CountingSink ref;
  PathEnumerator(g).Run(heavy, ref);
  EXPECT_EQ(keeps_going.count(), ref.count())
      << "one duplicate quitting must not stop the others";
  EXPECT_EQ(quits.n_, 3u);
  EXPECT_TRUE(result.stats[1].counters.stopped_by_sink);
  EXPECT_EQ(result.stats[1].counters.num_results, 3u);
  EXPECT_FALSE(result.stats[0].counters.stopped_by_sink);
  EXPECT_EQ(result.stats[0].counters.num_results, ref.count());
}

TEST(EngineCacheTest, ActiveWorkersClampedToBatchAndHardware) {
  const Graph g = ErdosRenyi(40, 300, 5);
  QueryEngine engine(g, {.num_workers = 8});

  const std::vector<Query> two = {{0, 10, 3}, {1, 20, 3}};
  const BatchResult small = engine.CountBatch(two);
  ASSERT_TRUE(small.ok());
  EXPECT_LE(small.workers, 2u) << "more active workers than queries";
  EXPECT_GE(small.workers, 1u);

  const std::vector<Query> many = SmallMixedQueries(g);
  const BatchResult big = engine.CountBatch(many);
  ASSERT_TRUE(big.ok());
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 8;
  EXPECT_LE(big.workers, std::min(8u, hw));
}

}  // namespace
}  // namespace pathenum
