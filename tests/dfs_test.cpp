// Tests for IDX-DFS (paper Algorithm 4): correctness against brute force,
// result-shape invariants, limits and counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dfs_enumerator.h"
#include "core/index.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::kS;
using testing::kT;
using testing::kV0;
using testing::kV1;
using testing::kV2;
using testing::kV3;
using testing::kV4;
using testing::kV5;
using testing::PathSet;
using testing::ToSet;

PathSet RunDfs(const Graph& g, const Query& q, EnumCounters* counters = nullptr,
               const EnumOptions& opts = {}) {
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  DfsEnumerator dfs(idx);
  CollectingSink sink;
  const EnumCounters c = dfs.Run(sink, opts);
  if (counters != nullptr) *counters = c;
  return ToSet(sink.paths());
}

TEST(DfsEnumeratorTest, PaperExampleFindsTheFivePaths) {
  const PathSet expected = {
      {kS, kV0, kT},
      {kS, kV1, kV2, kT},
      {kS, kV0, kV1, kV2, kT},
      {kS, kV1, kV2, kV0, kT},
      {kS, kV3, kV4, kV5, kT},
  };
  EXPECT_EQ(RunDfs(testing::PaperExampleGraph(), testing::PaperExampleQuery()),
            expected);
}

TEST(DfsEnumeratorTest, MatchesBruteForceOnExampleForAllK) {
  const Graph g = testing::PaperExampleGraph();
  for (uint32_t k = 1; k <= 8; ++k) {
    const Query q{kS, kT, k};
    EXPECT_EQ(RunDfs(g, q), ToSet(BruteForcePaths(g, q))) << "k=" << k;
  }
}

TEST(DfsEnumeratorTest, WalkIsNotReportedAsPath) {
  // (s, v0, v6, v0, t) is a walk of the example, never a result.
  const PathSet paths =
      RunDfs(testing::PaperExampleGraph(), testing::PaperExampleQuery());
  for (const auto& p : paths) {
    std::set<VertexId> unique(p.begin(), p.end());
    EXPECT_EQ(unique.size(), p.size()) << "duplicate vertex in result";
  }
}

TEST(DfsEnumeratorTest, ResultShapeInvariants) {
  const Graph g = ErdosRenyi(50, 350, 21);
  const Query q{3, 17, 4};
  for (const auto& p : RunDfs(g, q)) {
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), q.source);
    EXPECT_EQ(p.back(), q.target);
    EXPECT_LE(p.size(), q.hops + 1);
    for (size_t i = 1; i < p.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(p[i - 1], p[i]))
          << p[i - 1] << "->" << p[i] << " is not an edge";
    }
    // Internal vertices avoid both endpoints (Definition 2.1).
    for (size_t i = 1; i + 1 < p.size(); ++i) {
      EXPECT_NE(p[i], q.source);
      EXPECT_NE(p[i], q.target);
    }
  }
}

TEST(DfsEnumeratorTest, UnreachableTargetYieldsNothing) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  EnumCounters c;
  EXPECT_TRUE(RunDfs(g, {0, 3, 6}, &c).empty());
  EXPECT_EQ(c.num_results, 0u);
  EXPECT_EQ(c.edges_accessed, 0u);
}

TEST(DfsEnumeratorTest, DirectEdgeOnlyAtKEqualsOne) {
  const Graph g = testing::PaperExampleGraph();
  const PathSet paths = RunDfs(g, {kS, kT, 1});
  EXPECT_TRUE(paths.empty());  // no direct edge s -> t in the example
  const Graph g2 = Graph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(RunDfs(g2, {0, 2, 1}), (PathSet{{0, 2}}));
}

TEST(DfsEnumeratorTest, ResultLimitStopsEnumeration) {
  const Graph g = LayeredGraph(3, 4);  // 64 paths
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  EnumOptions opts;
  opts.result_limit = 10;
  EnumCounters c;
  const PathSet paths = RunDfs(g, q, &c, opts);
  EXPECT_EQ(paths.size(), 10u);
  EXPECT_TRUE(c.hit_result_limit);
  EXPECT_FALSE(c.completed());
}

TEST(DfsEnumeratorTest, SinkCanAbort) {
  const Graph g = LayeredGraph(3, 4);
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  DfsEnumerator dfs(idx);
  uint64_t seen = 0;
  CallbackSink sink([&](std::span<const VertexId>) { return ++seen < 5; });
  const EnumCounters c = dfs.Run(sink);
  EXPECT_EQ(c.num_results, 5u);
  EXPECT_TRUE(c.stopped_by_sink);
}

TEST(DfsEnumeratorTest, ZeroTimeBudgetTimesOutOnBigSearch) {
  const Graph g = CompleteDigraph(30);
  const Query q{0, 29, 6};
  EnumOptions opts;
  opts.time_limit_ms = 0.0;
  EnumCounters c;
  RunDfs(g, q, &c, opts);
  EXPECT_TRUE(c.timed_out);
}

TEST(DfsEnumeratorTest, ResponseTimeRecordedAtTarget) {
  const Graph g = LayeredGraph(3, 4);  // 64 paths
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  EnumOptions opts;
  opts.response_target = 32;
  EnumCounters c;
  RunDfs(g, q, &c, opts);
  EXPECT_EQ(c.num_results, 64u);
  EXPECT_GE(c.response_ms, 0.0) << "target was reached, must be recorded";
  EnumOptions opts2;
  opts2.response_target = 1000;  // more than exist
  RunDfs(g, q, &c, opts2);
  EXPECT_LT(c.response_ms, 0.0) << "target never reached";
}

TEST(DfsEnumeratorTest, CountersOnExample) {
  EnumCounters c;
  RunDfs(testing::PaperExampleGraph(), testing::PaperExampleQuery(), &c);
  EXPECT_EQ(c.num_results, 5u);
  EXPECT_GT(c.partials, 5u);  // at least the root and internal nodes
  EXPECT_GT(c.edges_accessed, 0u);
  EXPECT_TRUE(c.completed());
  // Invalid partials on the example: (s,v0,v6) and (s,v0,v6,v0) lead to no
  // path (only to the walk), (s,v1,v3) and (s,v1,v3,v4) die, (s,v3,v4)
  // survives... recount: every partial not on a result path.
  EXPECT_GT(c.invalid_partials, 0u);
}

TEST(DfsEnumeratorTest, InvalidPartialsZeroWhenAllWalksArePaths) {
  // Layered diamond: every branch leads to a result.
  const Graph g = LayeredGraph(3, 3);
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  EnumCounters c;
  RunDfs(g, q, &c);
  EXPECT_EQ(c.num_results, 27u);
  EXPECT_EQ(c.invalid_partials, 0u);
}

TEST(DfsEnumeratorTest, EmitsEachPathExactlyOnce) {
  const Graph g = ErdosRenyi(40, 300, 33);
  const Query q{1, 2, 5};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  DfsEnumerator dfs(idx);
  std::vector<std::vector<VertexId>> all;
  CallbackSink sink([&](std::span<const VertexId> p) {
    all.emplace_back(p.begin(), p.end());
    return true;
  });
  dfs.Run(sink);
  const PathSet unique = ToSet(all);
  EXPECT_EQ(unique.size(), all.size()) << "duplicate emission";
}

class DfsRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DfsRandomTest, MatchesBruteForce) {
  const uint64_t seed = GetParam();
  const Graph g = RMat(6, 220, seed);  // 64 vertices, skewed
  for (uint32_t k = 2; k <= 6; k += 2) {
    const Query q{static_cast<VertexId>(seed % 64),
                  static_cast<VertexId>((seed * 31 + 7) % 64), k};
    if (q.source == q.target) continue;
    EXPECT_EQ(RunDfs(g, q), ToSet(BruteForcePaths(g, q)))
        << "seed=" << seed << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsRandomTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace pathenum
