// Tests for the PathSink implementations and the unified branch fan-out
// gate/adapter (DESIGN.md §8), including the exact-at-the-limit regression:
// delivered() must pin to the limit, never limit + 1, under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sink.h"
#include "util/timer.h"

namespace pathenum {
namespace {

std::vector<VertexId> P(std::initializer_list<VertexId> v) { return v; }

TEST(CountingSinkTest, CountsAndSumsLengths) {
  CountingSink sink;
  EXPECT_TRUE(sink.OnPath(P({0, 1})));
  EXPECT_TRUE(sink.OnPath(P({0, 2, 1})));
  EXPECT_TRUE(sink.OnPath(P({0, 3, 4, 1})));
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.total_length(), 1u + 2u + 3u);
}

TEST(CollectingSinkTest, StoresCopies) {
  CollectingSink sink;
  std::vector<VertexId> buf{5, 6, 7};
  sink.OnPath(buf);
  buf[0] = 99;  // the sink must have copied, not referenced
  ASSERT_EQ(sink.paths().size(), 1u);
  EXPECT_EQ(sink.paths()[0][0], 5u);
  EXPECT_FALSE(sink.truncated());
}

TEST(CollectingSinkTest, CapStopsEnumeration) {
  CollectingSink sink(2);
  EXPECT_TRUE(sink.OnPath(P({0, 1})));
  EXPECT_FALSE(sink.OnPath(P({0, 2, 1}))) << "cap reached: signal stop";
  EXPECT_FALSE(sink.OnPath(P({0, 3, 1})));
  EXPECT_EQ(sink.paths().size(), 2u);
  EXPECT_TRUE(sink.truncated());
}

TEST(CollectingSinkTest, CapZeroAcceptsNothing) {
  CollectingSink sink(0);
  EXPECT_FALSE(sink.OnPath(P({0, 1})));
  EXPECT_TRUE(sink.paths().empty());
  EXPECT_TRUE(sink.truncated());
}

TEST(CallbackSinkTest, ForwardsReturnValue) {
  int calls = 0;
  CallbackSink sink([&](std::span<const VertexId> p) {
    ++calls;
    return p.size() < 3;
  });
  EXPECT_TRUE(sink.OnPath(P({0, 1})));
  EXPECT_FALSE(sink.OnPath(P({0, 2, 1})));
  EXPECT_EQ(calls, 2);
}

// --- BranchGate / BranchSink (the unified fan-out adapter) -------------------

TEST(BranchSinkTest, SerializedModeStopsAtTheLimitExactly) {
  Timer timer;
  BranchGate gate(/*result_limit=*/3, /*response_target=*/2, timer);
  CountingSink inner;
  BranchSink sink(gate, inner, BranchSink::Mode::kSerialized);
  const auto path = P({0, 1});
  EXPECT_TRUE(sink.OnPath(path));
  EXPECT_TRUE(sink.OnPath(path));
  EXPECT_FALSE(sink.OnPath(path)) << "the limit-th delivery signals stop";
  EXPECT_FALSE(sink.OnPath(path)) << "beyond the limit nothing is delivered";
  EXPECT_EQ(gate.delivered(), 3u);
  EXPECT_EQ(inner.count(), 3u);
  EXPECT_GE(gate.response_ms(), 0.0) << "response target 2 was reached";
  EXPECT_FALSE(gate.stopped()) << "limit refusals are not the sink latch";
}

TEST(BranchSinkTest, SerializedModeLatchesOnInnerRefusal) {
  Timer timer;
  BranchGate gate(/*result_limit=*/100, /*response_target=*/0, timer);
  CollectingSink inner(2);
  BranchSink sink(gate, inner, BranchSink::Mode::kSerialized);
  EXPECT_TRUE(sink.OnPath(P({0, 1})));
  EXPECT_FALSE(sink.OnPath(P({0, 2, 1})));
  EXPECT_TRUE(gate.stopped());
  EXPECT_FALSE(sink.OnPath(P({0, 3, 1})))
      << "the latch must keep the inner sink from ever being called again";
  EXPECT_EQ(inner.paths().size(), 2u);
  EXPECT_EQ(gate.delivered(), 2u);
}

TEST(BranchSinkTest, ExternalStopCutsDeliveryInBothModes) {
  for (const auto mode :
       {BranchSink::Mode::kPerWorker, BranchSink::Mode::kSerialized}) {
    Timer timer;
    BranchGate gate(100, 0, timer);
    CountingSink inner;
    BranchSink sink(gate, inner, mode);
    EXPECT_TRUE(sink.OnPath(P({0, 1})));
    gate.Stop();
    EXPECT_FALSE(sink.OnPath(P({0, 1})));
    EXPECT_EQ(inner.count(), 1u);
  }
}

TEST(BranchSinkTest, PerWorkerInnerRefusalStopsOnlyThatWorker) {
  Timer timer;
  BranchGate gate(100, 0, timer);
  CollectingSink quitter(1);
  CountingSink steady;
  BranchSink a(gate, quitter, BranchSink::Mode::kPerWorker);
  BranchSink b(gate, steady, BranchSink::Mode::kPerWorker);
  EXPECT_FALSE(a.OnPath(P({0, 1}))) << "worker a's private sink is full";
  EXPECT_TRUE(b.OnPath(P({0, 2, 1}))) << "worker b keeps going";
  EXPECT_FALSE(gate.stopped());
  EXPECT_EQ(gate.delivered(), 2u);
}

/// The merge-barrier double-count regression: many threads hammer one gate
/// (per-worker and serialized), and delivered() must equal the limit
/// exactly — never limit + 1, which the pre-unification accounting could
/// report when a branch hit the limit exactly at a merge barrier (the raw
/// reservation counter overshoots by up to the number of workers).
TEST(BranchSinkTest, ConcurrentDeliveryPinsDeliveredToLimitExactly) {
  for (const auto mode :
       {BranchSink::Mode::kPerWorker, BranchSink::Mode::kSerialized}) {
    constexpr uint64_t kLimit = 1000;
    constexpr int kThreads = 8;
    Timer timer;
    BranchGate gate(kLimit, 0, timer);
    CountingSink shared_inner;
    BranchSink shared_sink(gate, shared_inner,
                           BranchSink::Mode::kSerialized);
    std::vector<CountingSink> inners(kThreads);
    std::atomic<uint64_t> private_total{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
      threads.emplace_back([&, w] {
        const auto path = P({0, 1});
        if (mode == BranchSink::Mode::kSerialized) {
          while (shared_sink.OnPath(path)) {
          }
        } else {
          BranchSink mine(gate, inners[w], BranchSink::Mode::kPerWorker);
          while (mine.OnPath(path)) {
          }
          private_total.fetch_add(inners[w].count());
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(gate.delivered(), kLimit) << "never limit + 1";
    const uint64_t inner_total = mode == BranchSink::Mode::kSerialized
                                     ? shared_inner.count()
                                     : private_total.load();
    EXPECT_EQ(inner_total, kLimit);
  }
}

}  // namespace
}  // namespace pathenum
