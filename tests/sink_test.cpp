// Tests for the PathSink implementations.
#include <gtest/gtest.h>

#include <vector>

#include "core/sink.h"

namespace pathenum {
namespace {

std::vector<VertexId> P(std::initializer_list<VertexId> v) { return v; }

TEST(CountingSinkTest, CountsAndSumsLengths) {
  CountingSink sink;
  EXPECT_TRUE(sink.OnPath(P({0, 1})));
  EXPECT_TRUE(sink.OnPath(P({0, 2, 1})));
  EXPECT_TRUE(sink.OnPath(P({0, 3, 4, 1})));
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.total_length(), 1u + 2u + 3u);
}

TEST(CollectingSinkTest, StoresCopies) {
  CollectingSink sink;
  std::vector<VertexId> buf{5, 6, 7};
  sink.OnPath(buf);
  buf[0] = 99;  // the sink must have copied, not referenced
  ASSERT_EQ(sink.paths().size(), 1u);
  EXPECT_EQ(sink.paths()[0][0], 5u);
  EXPECT_FALSE(sink.truncated());
}

TEST(CollectingSinkTest, CapStopsEnumeration) {
  CollectingSink sink(2);
  EXPECT_TRUE(sink.OnPath(P({0, 1})));
  EXPECT_FALSE(sink.OnPath(P({0, 2, 1}))) << "cap reached: signal stop";
  EXPECT_FALSE(sink.OnPath(P({0, 3, 1})));
  EXPECT_EQ(sink.paths().size(), 2u);
  EXPECT_TRUE(sink.truncated());
}

TEST(CollectingSinkTest, CapZeroAcceptsNothing) {
  CollectingSink sink(0);
  EXPECT_FALSE(sink.OnPath(P({0, 1})));
  EXPECT_TRUE(sink.paths().empty());
  EXPECT_TRUE(sink.truncated());
}

TEST(CallbackSinkTest, ForwardsReturnValue) {
  int calls = 0;
  CallbackSink sink([&](std::span<const VertexId> p) {
    ++calls;
    return p.size() < 3;
  });
  EXPECT_TRUE(sink.OnPath(P({0, 1})));
  EXPECT_FALSE(sink.OnPath(P({0, 2, 1})));
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace pathenum
