// Tests for the Appendix-E constraint extensions: edge predicates,
// accumulative values (Alg. 7) and label-sequence automata (Alg. 8),
// validated against filtered brute force.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/path_enum.h"
#include "core/reference.h"
#include "graph/builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

/// A weighted+labeled diamond-ish fixture:
///   0 -> 1 (w=1, risky) -> 3 (w=1, safe)
///   0 -> 2 (w=5, safe)  -> 3 (w=5, risky)
///   1 -> 2 (w=1, risky), 0 -> 3 (w=10, safe)
/// labels: 0 = safe, 1 = risky.
Graph MoneyGraph() {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0, 1);
  b.AddEdge(1, 3, 1.0, 0);
  b.AddEdge(0, 2, 5.0, 0);
  b.AddEdge(2, 3, 5.0, 1);
  b.AddEdge(1, 2, 1.0, 1);
  b.AddEdge(0, 3, 10.0, 0);
  return b.Build();
}

double PathWeight(const Graph& g, const std::vector<VertexId>& p) {
  double w = 0;
  for (size_t i = 1; i < p.size(); ++i) {
    w += g.EdgeWeight(g.FindEdge(p[i - 1], p[i]));
  }
  return w;
}

TEST(EdgePredicateTest, FiltersDuringIndexBuild) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  // Keep only edges with weight < 4: kills 0->2, 2->3, 0->3.
  const EdgeFilter filter = [&](VertexId, VertexId, EdgeId e) {
    return g.EdgeWeight(e) < 4.0;
  };
  PathConstraints constraints;
  constraints.edge_filter = &filter;
  CollectingSink sink;
  pe.RunConstrained({0, 3, 3}, constraints, sink);
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 1, 3}}));
}

TEST(EdgePredicateTest, NoFilterEqualsPlainRun) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  PathConstraints none;
  CollectingSink a, b;
  pe.RunConstrained({0, 3, 3}, none, a);
  pe.Run({0, 3, 3}, b);
  EXPECT_EQ(ToSet(a.paths()), ToSet(b.paths()));
  EXPECT_EQ(a.paths().size(), 4u);  // 0-3, 0-1-3, 0-2-3, 0-1-2-3
}

TEST(AccumulativeTest, SumAboveThreshold) {
  // The money-laundering motivation: total risk (weight) >= 6.
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  AccumulativeConstraint acc;
  acc.init = 0.0;
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [](double v) { return v >= 6.0; };
  PathConstraints constraints;
  constraints.accumulative = &acc;
  CollectingSink sink;
  pe.RunConstrained({0, 3, 3}, constraints, sink);
  for (const auto& p : sink.paths()) {
    EXPECT_GE(PathWeight(g, p), 6.0);
  }
  // 0-3 (10), 0-2-3 (10), 0-1-2-3 (7) pass; 0-1-3 (2) fails.
  EXPECT_EQ(sink.paths().size(), 3u);
}

TEST(AccumulativeTest, SumBelowThresholdWithMonotonePruning) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  AccumulativeConstraint acc;
  acc.init = 0.0;
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [](double v) { return v <= 4.0; };
  // Nonnegative weights: a partial sum already above the bound can never
  // recover — Alg. 7's pruning discussion.
  acc.prune = [](double v) { return v > 4.0; };
  PathConstraints constraints;
  constraints.accumulative = &acc;
  CollectingSink sink;
  const QueryStats stats = pe.RunConstrained({0, 3, 3}, constraints, sink);
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 1, 3}}));
  // Pruning must cut the search below the unconstrained partial count.
  CollectingSink unpruned;
  PathConstraints none;
  const QueryStats base = pe.RunConstrained({0, 3, 3}, none, unpruned);
  EXPECT_LT(stats.counters.partials, base.counters.partials);
}

TEST(AccumulativeTest, MultiplicativeCombine) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  AccumulativeConstraint acc;
  acc.init = 1.0;
  acc.combine = [](double a, double b) { return a * b; };
  acc.accept = [](double v) { return v >= 25.0; };
  PathConstraints constraints;
  constraints.accumulative = &acc;
  CollectingSink sink;
  pe.RunConstrained({0, 3, 3}, constraints, sink);
  // Products: 0-3: 10; 0-1-3: 1; 0-2-3: 25; 0-1-2-3: 5.
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 2, 3}}));
}

TEST(AccumulativeTest, RequiresWeights) {
  const Graph g = testing::PaperExampleGraph();  // unweighted
  PathEnumerator pe(g);
  AccumulativeConstraint acc;
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [](double) { return true; };
  PathConstraints constraints;
  constraints.accumulative = &acc;
  CollectingSink sink;
  EXPECT_THROW(
      pe.RunConstrained(testing::PaperExampleQuery(), constraints, sink),
      std::logic_error);
}

// --- Label automata ---------------------------------------------------------

TEST(LabelAutomatonTest, ExactSequence) {
  const std::vector<uint32_t> seq{1, 0};
  const LabelAutomaton a = LabelAutomaton::ExactSequence(seq, 2);
  EXPECT_EQ(a.num_states(), 3u);
  EXPECT_EQ(a.start_state(), 0u);
  uint32_t state = a.start_state();
  state = a.Next(state, 1);
  ASSERT_NE(state, LabelAutomaton::kDead);
  EXPECT_FALSE(a.IsAccepting(state));
  state = a.Next(state, 0);
  ASSERT_NE(state, LabelAutomaton::kDead);
  EXPECT_TRUE(a.IsAccepting(state));
  EXPECT_EQ(a.Next(state, 0), LabelAutomaton::kDead);
  EXPECT_EQ(a.Next(a.start_state(), 0), LabelAutomaton::kDead);
}

TEST(LabelAutomatonTest, AtLeastCountSaturates) {
  const LabelAutomaton a = LabelAutomaton::AtLeastCount(1, 2, 3);
  uint32_t state = a.start_state();
  EXPECT_FALSE(a.IsAccepting(state));
  state = a.Next(state, 1);
  EXPECT_FALSE(a.IsAccepting(state));
  state = a.Next(state, 0);  // other labels self-loop
  EXPECT_FALSE(a.IsAccepting(state));
  state = a.Next(state, 1);
  EXPECT_TRUE(a.IsAccepting(state));
  state = a.Next(state, 1);  // saturation
  EXPECT_TRUE(a.IsAccepting(state));
}

TEST(LabelAutomatonTest, SequenceConstraintOnPaths) {
  // Paths whose label sequence is exactly (risky, safe): only 0-1-3.
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  const std::vector<uint32_t> seq{1, 0};
  const LabelAutomaton a = LabelAutomaton::ExactSequence(seq, 2);
  PathConstraints constraints;
  constraints.automaton = &a;
  CollectingSink sink;
  pe.RunConstrained({0, 3, 3}, constraints, sink);
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 1, 3}}));
}

TEST(LabelAutomatonTest, AtLeastCountConstraintOnPaths) {
  // Paths with at least two risky edges: 0-1-2-3 (risky,risky,risky... the
  // labels are 1,1,1) and 0-2-3 has exactly one risky edge -> excluded.
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  const LabelAutomaton a = LabelAutomaton::AtLeastCount(1, 2, 2);
  PathConstraints constraints;
  constraints.automaton = &a;
  CollectingSink sink;
  pe.RunConstrained({0, 3, 3}, constraints, sink);
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 1, 2, 3}}));
}

TEST(LabelAutomatonTest, DeadStatePrunesSearch) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  // Sequence (safe, safe): no path matches (0-3 is length 1: sequence
  // (safe) only; 0-2-3 is (safe, risky)).
  const std::vector<uint32_t> seq{0, 0};
  const LabelAutomaton a = LabelAutomaton::ExactSequence(seq, 2);
  PathConstraints constraints;
  constraints.automaton = &a;
  CollectingSink sink;
  pe.RunConstrained({0, 3, 3}, constraints, sink);
  EXPECT_TRUE(sink.paths().empty());
}

TEST(LabelAutomatonTest, RequiresLabels) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  const LabelAutomaton a = LabelAutomaton::AtLeastCount(0, 1, 1);
  PathConstraints constraints;
  constraints.automaton = &a;
  CollectingSink sink;
  EXPECT_THROW(
      pe.RunConstrained(testing::PaperExampleQuery(), constraints, sink),
      std::logic_error);
}

TEST(CombinedConstraintsTest, PredicatePlusAccumulativePlusAutomaton) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  const EdgeFilter filter = [&](VertexId, VertexId, EdgeId e) {
    return g.EdgeWeight(e) < 8.0;  // kills the direct 0->3
  };
  AccumulativeConstraint acc;
  acc.init = 0.0;
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [](double v) { return v >= 5.0; };
  const LabelAutomaton a = LabelAutomaton::AtLeastCount(1, 1, 2);
  PathConstraints constraints;
  constraints.edge_filter = &filter;
  constraints.accumulative = &acc;
  constraints.automaton = &a;
  CollectingSink sink;
  pe.RunConstrained({0, 3, 3}, constraints, sink);
  // Survivors of all three: 0-2-3 (w=10, risky edge) and 0-1-2-3 (w=7,
  // risky edges).
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 2, 3}, {0, 1, 2, 3}}));
}

TEST(ConstrainedCountersTest, ResponseAndLimits) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  PathConstraints none;
  EnumOptions opts;
  opts.result_limit = 2;
  CollectingSink sink;
  const QueryStats stats = pe.RunConstrained({0, 3, 3}, none, sink, opts);
  EXPECT_EQ(stats.counters.num_results, 2u);
  EXPECT_TRUE(stats.counters.hit_result_limit);
}

// --- Randomized equivalence against filtered brute force --------------------

/// Random weighted + labeled graph: weights in (0, 1], labels in {0, 1, 2}.
Graph RandomAttributedGraph(uint64_t seed, VertexId n, uint64_t m) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (uint64_t i = 0; i < m; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    b.AddEdge(u, v, 0.05 + rng.NextDouble(),
              static_cast<uint32_t>(rng.NextBounded(3)));
  }
  return b.Build();
}

double SumWeights(const Graph& g, const std::vector<VertexId>& p) {
  double w = 0;
  for (size_t i = 1; i < p.size(); ++i) {
    w += g.EdgeWeight(g.FindEdge(p[i - 1], p[i]));
  }
  return w;
}

uint32_t CountLabel(const Graph& g, const std::vector<VertexId>& p,
                    uint32_t label) {
  uint32_t c = 0;
  for (size_t i = 1; i < p.size(); ++i) {
    if (g.EdgeLabel(g.FindEdge(p[i - 1], p[i])) == label) ++c;
  }
  return c;
}

class ConstraintRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstraintRandomTest, PredicateEqualsFilteredBruteForce) {
  const uint64_t seed = GetParam();
  const Graph g = RandomAttributedGraph(seed, 30, 170);
  const Query q{static_cast<VertexId>(seed % 30),
                static_cast<VertexId>((seed * 7 + 11) % 30), 4};
  if (q.source == q.target) return;
  // Predicate: drop heavy edges.
  const EdgeFilter filter = [&](VertexId, VertexId, EdgeId e) {
    return g.EdgeWeight(e) <= 0.6;
  };
  PathEnumerator pe(g);
  PathConstraints constraints;
  constraints.edge_filter = &filter;
  CollectingSink sink;
  pe.RunConstrained(q, constraints, sink);
  PathSet expected;
  for (const auto& p : BruteForcePaths(g, q)) {
    bool ok = true;
    for (size_t i = 1; i < p.size() && ok; ++i) {
      ok = g.EdgeWeight(g.FindEdge(p[i - 1], p[i])) <= 0.6;
    }
    if (ok) expected.insert(p);
  }
  EXPECT_EQ(ToSet(sink.paths()), expected) << "seed=" << seed;
}

TEST_P(ConstraintRandomTest, AccumulativeEqualsFilteredBruteForce) {
  const uint64_t seed = GetParam();
  const Graph g = RandomAttributedGraph(seed, 28, 150);
  const Query q{static_cast<VertexId>((seed * 3) % 28),
                static_cast<VertexId>((seed * 13 + 5) % 28), 5};
  if (q.source == q.target) return;
  const double threshold = 1.2;
  AccumulativeConstraint acc;
  acc.init = 0.0;
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [&](double v) { return v <= threshold; };
  acc.prune = [&](double v) { return v > threshold; };  // nonneg weights
  PathEnumerator pe(g);
  PathConstraints constraints;
  constraints.accumulative = &acc;
  CollectingSink sink;
  pe.RunConstrained(q, constraints, sink);
  PathSet expected;
  for (const auto& p : BruteForcePaths(g, q)) {
    if (SumWeights(g, p) <= threshold) expected.insert(p);
  }
  EXPECT_EQ(ToSet(sink.paths()), expected) << "seed=" << seed;
}

TEST_P(ConstraintRandomTest, AutomatonEqualsFilteredBruteForce) {
  const uint64_t seed = GetParam();
  const Graph g = RandomAttributedGraph(seed, 26, 140);
  const Query q{static_cast<VertexId>((seed * 5) % 26),
                static_cast<VertexId>((seed * 17 + 3) % 26), 5};
  if (q.source == q.target) return;
  const LabelAutomaton a = LabelAutomaton::AtLeastCount(1, 2, 3);
  PathEnumerator pe(g);
  PathConstraints constraints;
  constraints.automaton = &a;
  CollectingSink sink;
  pe.RunConstrained(q, constraints, sink);
  PathSet expected;
  for (const auto& p : BruteForcePaths(g, q)) {
    if (CountLabel(g, p, 1) >= 2) expected.insert(p);
  }
  EXPECT_EQ(ToSet(sink.paths()), expected) << "seed=" << seed;
}

TEST_P(ConstraintRandomTest, AllThreeCombinedEqualsFilteredBruteForce) {
  const uint64_t seed = GetParam();
  const Graph g = RandomAttributedGraph(seed, 24, 130);
  const Query q{static_cast<VertexId>((seed * 11) % 24),
                static_cast<VertexId>((seed * 19 + 7) % 24), 4};
  if (q.source == q.target) return;
  const EdgeFilter filter = [&](VertexId, VertexId, EdgeId e) {
    return g.EdgeWeight(e) <= 0.9;
  };
  AccumulativeConstraint acc;
  acc.init = 0.0;
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [](double v) { return v >= 0.3; };
  const LabelAutomaton a = LabelAutomaton::AtLeastCount(2, 1, 3);
  PathEnumerator pe(g);
  PathConstraints constraints;
  constraints.edge_filter = &filter;
  constraints.accumulative = &acc;
  constraints.automaton = &a;
  CollectingSink sink;
  pe.RunConstrained(q, constraints, sink);
  PathSet expected;
  for (const auto& p : BruteForcePaths(g, q)) {
    bool light = true;
    for (size_t i = 1; i < p.size() && light; ++i) {
      light = g.EdgeWeight(g.FindEdge(p[i - 1], p[i])) <= 0.9;
    }
    if (light && SumWeights(g, p) >= 0.3 && CountLabel(g, p, 2) >= 1) {
      expected.insert(p);
    }
  }
  EXPECT_EQ(ToSet(sink.paths()), expected) << "seed=" << seed;
}

TEST_P(ConstraintRandomTest, JoinSideExtensionMatchesDfsAtEveryCut) {
  // Appendix E's join-side evaluation: accumulative values merged across
  // halves, automaton replayed post-join. Must equal the constrained DFS.
  const uint64_t seed = GetParam();
  const Graph g = RandomAttributedGraph(seed, 26, 150);
  const Query q{static_cast<VertexId>((seed * 9) % 26),
                static_cast<VertexId>((seed * 23 + 1) % 26), 5};
  if (q.source == q.target) return;
  AccumulativeConstraint acc;
  acc.init = 0.0;  // identity of + : required by the join-side fold
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [](double v) { return v >= 0.8; };
  const LabelAutomaton a = LabelAutomaton::AtLeastCount(0, 1, 3);
  PathConstraints constraints;
  constraints.accumulative = &acc;
  constraints.automaton = &a;

  IndexBuilder builder;
  IndexBuildOptions build_opts;  // join needs the in-direction default
  const LightweightIndex idx = builder.Build(g, q, build_opts);
  ConstrainedDfsEnumerator dfs(g, idx, constraints);
  CollectingSink dfs_sink;
  dfs.Run(dfs_sink, {});
  const PathSet expected = ToSet(dfs_sink.paths());

  for (uint32_t cut = 1; cut < q.hops; ++cut) {
    ConstrainedJoinEnumerator join(g, idx, constraints);
    CollectingSink join_sink;
    join.Run(cut, join_sink, {});
    EXPECT_EQ(ToSet(join_sink.paths()), expected)
        << "seed=" << seed << " cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintRandomTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ConstrainedJoinTest, DriverHonorsForcedJoin) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  AccumulativeConstraint acc;
  acc.init = 0.0;
  acc.combine = [](double a, double b) { return a + b; };
  acc.accept = [](double v) { return v >= 6.0; };
  PathConstraints constraints;
  constraints.accumulative = &acc;
  CollectingSink dfs_sink, join_sink;
  pe.RunConstrained({0, 3, 3}, constraints, dfs_sink);
  EnumOptions join_opts;
  join_opts.method = Method::kJoin;
  const QueryStats stats =
      pe.RunConstrained({0, 3, 3}, constraints, join_sink, join_opts);
  EXPECT_EQ(stats.method, Method::kJoin);
  EXPECT_GE(stats.cut_position, 1u);
  EXPECT_EQ(ToSet(join_sink.paths()), ToSet(dfs_sink.paths()));
}

TEST(ConstrainedJoinTest, PredicatePushdownWorksThroughJoin) {
  const Graph g = MoneyGraph();
  PathEnumerator pe(g);
  const EdgeFilter filter = [&](VertexId, VertexId, EdgeId e) {
    return g.EdgeWeight(e) < 8.0;
  };
  PathConstraints constraints;
  constraints.edge_filter = &filter;
  CollectingSink sink;
  EnumOptions opts;
  opts.method = Method::kJoin;
  pe.RunConstrained({0, 3, 3}, constraints, sink, opts);
  EXPECT_EQ(ToSet(sink.paths()),
            (PathSet{{0, 1, 3}, {0, 2, 3}, {0, 1, 2, 3}}));
}

}  // namespace
}  // namespace pathenum
