// Tests for the pruned-landmark distance oracle (the §7.5 global index).
#include <gtest/gtest.h>

#include "core/path_enum.h"
#include "graph/bfs.h"
#include "graph/distance_oracle.h"
#include "graph/generators.h"
#include "test_util.h"
#include "workload/query_gen.h"

namespace pathenum {
namespace {

TEST(DistanceOracleTest, PathGraphDistances) {
  const Graph g = PathGraph(8);
  const auto pll = PrunedLandmarkIndex::Build(g);
  for (VertexId s = 0; s < 8; ++s) {
    for (VertexId t = 0; t < 8; ++t) {
      const uint32_t expected = t >= s ? t - s : kInfDistance;
      EXPECT_EQ(pll.Distance(s, t), expected) << s << "->" << t;
    }
  }
}

TEST(DistanceOracleTest, DirectionalityRespected) {
  // 0 -> 1 -> 2, plus 2 -> 0 closing a cycle: asymmetric distances.
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  const auto pll = PrunedLandmarkIndex::Build(g);
  EXPECT_EQ(pll.Distance(0, 2), 2u);
  EXPECT_EQ(pll.Distance(2, 0), 1u);
  EXPECT_EQ(pll.Distance(1, 0), 2u);
}

TEST(DistanceOracleTest, UnreachableIsInfinite) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const auto pll = PrunedLandmarkIndex::Build(g);
  EXPECT_EQ(pll.Distance(0, 3), kInfDistance);
  EXPECT_FALSE(pll.Within(0, 3, 1000));
  EXPECT_TRUE(pll.Within(0, 1, 1));
  EXPECT_TRUE(pll.Within(2, 2, 0));
}

TEST(DistanceOracleTest, PaperExampleDistances) {
  const Graph g = testing::PaperExampleGraph();
  const auto pll = PrunedLandmarkIndex::Build(g);
  EXPECT_EQ(pll.Distance(testing::kS, testing::kT), 2u);
  EXPECT_EQ(pll.Distance(testing::kV3, testing::kT), 3u);
  EXPECT_EQ(pll.Distance(testing::kV7, testing::kT), kInfDistance);
}

class OracleRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleRandomTest, AgreesWithBfsEverywhere) {
  const uint64_t seed = GetParam();
  const Graph g = seed % 2 == 0 ? ErdosRenyi(120, 700, seed)
                                : RMat(7, 600, seed);
  const auto pll = PrunedLandmarkIndex::Build(g);
  DistanceField bfs;
  // Exhaustive from a handful of sources.
  for (VertexId s = 0; s < g.num_vertices(); s += 17) {
    bfs.Compute(g, Direction::kForward, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(pll.Distance(s, t), bfs.Distance(t))
          << "seed=" << seed << " " << s << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleRandomTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DistanceOracleTest, BuildStatsPopulated) {
  const Graph g = ErdosRenyi(200, 1200, 3);
  const auto pll = PrunedLandmarkIndex::Build(g);
  EXPECT_GT(pll.build_stats().avg_label_entries, 0.0);
  EXPECT_GT(pll.MemoryBytes(), 0u);
  EXPECT_EQ(pll.num_vertices(), 200u);
}

TEST(DistanceOracleTest, RejectsOutOfRangeQuery) {
  const Graph g = PathGraph(3);
  const auto pll = PrunedLandmarkIndex::Build(g);
  EXPECT_THROW(pll.Distance(0, 5), std::logic_error);
}

// --- Integration with the enumerator and the workload generator ------------

TEST(OracleIntegrationTest, FastRejectMatchesFullRun) {
  const Graph g = RMat(7, 500, 99);
  const auto pll = PrunedLandmarkIndex::Build(g);
  PathEnumerator plain(g);
  PathEnumerator with_oracle(g, &pll);
  int rejected = 0;
  for (VertexId t = 1; t < 40; ++t) {
    const Query q{0, t, 4};
    CountingSink a, b;
    plain.Run(q, a);
    const QueryStats s = with_oracle.Run(q, b);
    EXPECT_EQ(a.count(), b.count()) << "t=" << t;
    if (a.count() == 0 && s.index_vertices == 0) ++rejected;
  }
  EXPECT_GT(rejected, 0) << "expected at least one oracle-rejected query";
}

TEST(OracleIntegrationTest, QueryGenWithOracleMatchesBfsProbe) {
  const Graph g = ErdosRenyi(300, 2400, 8);
  const auto pll = PrunedLandmarkIndex::Build(g);
  QueryGenOptions opts;
  opts.count = 12;
  opts.hops = 5;
  opts.seed = 4;
  const auto plain = GenerateQueries(g, opts);
  opts.oracle = &pll;
  const auto oracled = GenerateQueries(g, opts);
  // Identical RNG stream + identical accept/reject decisions => identical
  // query sets.
  ASSERT_EQ(plain.size(), oracled.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].source, oracled[i].source);
    EXPECT_EQ(plain[i].target, oracled[i].target);
  }
}

TEST(OracleIntegrationTest, ConstrainedRunAlsoFastRejects) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const auto pll = PrunedLandmarkIndex::Build(g);
  PathEnumerator pe(g, &pll);
  PathConstraints none;
  CountingSink sink;
  const QueryStats stats = pe.RunConstrained({0, 3, 6}, none, sink);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(stats.index_vertices, 0u);
}

}  // namespace
}  // namespace pathenum
