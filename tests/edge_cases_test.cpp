// Boundary-condition tests across the public API: extreme hop budgets,
// degenerate topologies, and repeated-use object lifecycles.
#include <gtest/gtest.h>

#include "baselines/algorithm.h"
#include "core/estimator.h"
#include "core/path_enum.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

TEST(EdgeCaseTest, MaxHopBudgetOnLongPath) {
  // A path of exactly kMaxHops edges, queried at the budget ceiling.
  const Graph g = PathGraph(kMaxHops + 1);
  PathEnumerator pe(g);
  CollectingSink sink;
  const QueryStats stats =
      pe.Run({0, static_cast<VertexId>(kMaxHops), kMaxHops}, sink);
  EXPECT_EQ(sink.paths().size(), 1u);
  EXPECT_EQ(sink.paths()[0].size(), kMaxHops + 1);
  EXPECT_TRUE(stats.counters.completed());
}

TEST(EdgeCaseTest, BudgetOneBelowPathLengthFindsNothing) {
  const Graph g = PathGraph(12);
  PathEnumerator pe(g);
  CountingSink sink;
  pe.Run({0, 11, 10}, sink);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(EdgeCaseTest, TwoVertexGraph) {
  const Graph g = Graph::FromEdges(2, {{0, 1}, {1, 0}});
  PathEnumerator pe(g);
  CollectingSink sink;
  pe.Run({0, 1, 5}, sink);
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 1}}));
}

TEST(EdgeCaseTest, SourceWithNoOutEdges) {
  const Graph g = Graph::FromEdges(3, {{1, 0}, {1, 2}});
  PathEnumerator pe(g);
  CountingSink sink;
  const QueryStats stats = pe.Run({0, 2, 5}, sink);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(stats.index_vertices, 0u);
}

TEST(EdgeCaseTest, TargetWithNoInEdges) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {2, 1}});
  PathEnumerator pe(g);
  CountingSink sink;
  pe.Run({0, 2, 5}, sink);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(EdgeCaseTest, HubAsSourceOnStar) {
  // From the hub, every spoke is one hop; spokes only connect back through
  // the hub, which is already on the path — exactly one path per spoke
  // pair... i.e. a single path (0, spoke).
  const Graph g = StarGraph(6);
  PathEnumerator pe(g);
  for (VertexId t = 1; t < 6; ++t) {
    CollectingSink sink;
    pe.Run({0, t, 6}, sink);
    EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, t}})) << "t=" << t;
  }
}

TEST(EdgeCaseTest, DenseBipartiteAllMethodsAgree) {
  // Complete bipartite-ish: s -> L -> t with back edges L <- t; walks
  // revisit heavily, exercising the padding machinery.
  GraphBuilder b(8);
  const VertexId s = 0, t = 7;
  for (VertexId m = 1; m <= 6; ++m) {
    b.AddEdge(s, m);
    b.AddEdge(m, t);
    b.AddEdge(t, m);
  }
  const Graph g = b.Build();
  const Query q{s, t, 6};
  const PathSet expected = ToSet(BruteForcePaths(g, q));
  EXPECT_EQ(expected.size(), 6u);
  for (const std::string name : AllAlgorithmNames()) {
    const auto algo = MakeAlgorithm(name, g);
    EXPECT_EQ(testing::CollectPaths(*algo, q), expected) << name;
  }
}

TEST(EdgeCaseTest, RepeatedRunsOnOneEnumeratorAreIndependent) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  for (int i = 0; i < 5; ++i) {
    CountingSink sink;
    const QueryStats stats = pe.Run(testing::PaperExampleQuery(), sink);
    EXPECT_EQ(sink.count(), 5u) << "iteration " << i;
    EXPECT_TRUE(stats.counters.completed());
  }
  // Interleave a different query and re-verify.
  CountingSink other;
  pe.Run({testing::kS, testing::kV5, 3}, other);
  CountingSink again;
  pe.Run(testing::PaperExampleQuery(), again);
  EXPECT_EQ(again.count(), 5u);
}

TEST(EdgeCaseTest, MutualEdgesTinyCycles) {
  // Every pair connected both ways: heavy walk-vs-path divergence.
  const Graph g = CompleteDigraph(5);
  const Query q{0, 4, 4};
  const PathSet expected = ToSet(BruteForcePaths(g, q));
  PathEnumerator pe(g);
  CollectingSink dfs_sink, join_sink;
  EnumOptions dfs_opts;
  dfs_opts.method = Method::kDfs;
  pe.Run(q, dfs_sink, dfs_opts);
  EnumOptions join_opts;
  join_opts.method = Method::kJoin;
  pe.Run(q, join_sink, join_opts);
  EXPECT_EQ(ToSet(dfs_sink.paths()), expected);
  EXPECT_EQ(ToSet(join_sink.paths()), expected);
}

TEST(EdgeCaseTest, EstimatorOnBudgetEqualsDistance) {
  // dist(s,t) == k: only shortest paths fit; every level has exactly the
  // BFS-layer vertices.
  const Graph g = GridGraph(4, 4);
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 15, 6});
  const JoinPlan plan = OptimizeJoinOrder(idx);
  EXPECT_DOUBLE_EQ(plan.TotalWalks(), 20.0);  // C(6,3): grid is a DAG
  EXPECT_DOUBLE_EQ(plan.forward_sizes.back(), 20.0);
}

TEST(EdgeCaseTest, IsolatedVerticesDoNotEnterTheIndex) {
  GraphBuilder b(100);  // vertices 10.. are isolated
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 2, 4});
  EXPECT_EQ(idx.num_vertices(), 3u);
}

TEST(EdgeCaseTest, QueryEndpointsSwappedAreIndependent) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CountingSink forward, backward;
  pe.Run({testing::kS, testing::kT, 4}, forward);
  pe.Run({testing::kT, testing::kS, 4}, backward);
  EXPECT_EQ(forward.count(), 5u);
  EXPECT_EQ(backward.count(), 0u);  // no edges back to s
}

}  // namespace
}  // namespace pathenum
