// Tests for the live-graph subsystem (DESIGN.md §7): GraphDelta/GraphView
// overlays, SnapshotManager versioning and compaction, UpdateImpact
// soundness, snapshot-versioned incremental cache invalidation, and the
// AsyncEngine's epoch-ordering guarantees — including updates racing
// in-flight queries.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/path_enum.h"
#include "core/reference.h"
#include "engine/query_engine.h"
#include "graph/bfs.h"
#include "graph/distance_oracle.h"
#include "graph/generators.h"
#include "graph/view.h"
#include "live/async_engine.h"
#include "live/impact.h"
#include "live/live_oracle.h"
#include "live/snapshot.h"
#include "test_util.h"
#include "util/rng.h"

namespace pathenum {
namespace {

using testing::PaperExampleGraph;
using testing::PaperExampleQuery;
using testing::PathSet;
using testing::ToSet;

PathSet EnumerateOnView(const GraphView& view, const Query& q) {
  PathEnumerator pe(view);
  CollectingSink sink;
  pe.Run(q, sink);
  return ToSet(sink.paths());
}

PathSet Reference(const Graph& g, const Query& q) {
  return ToSet(BruteForcePaths(g, q));
}

// ---------------------------------------------------------------------------
// GraphView / GraphDelta
// ---------------------------------------------------------------------------

TEST(GraphViewTest, BorrowingViewMatchesGraph) {
  const Graph g = PaperExampleGraph();
  const GraphView view(g);
  EXPECT_EQ(view.num_vertices(), g.num_vertices());
  EXPECT_EQ(view.num_edges(), g.num_edges());
  EXPECT_EQ(view.version(), 0u);
  EXPECT_FALSE(view.has_overlay());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.OutNeighbors(v);
    const auto b = view.OutNeighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    const auto ai = g.InNeighbors(v);
    const auto bi = view.InNeighbors(v);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()));
  }
}

TEST(GraphViewTest, InsertAndDeleteKeepSortedContract) {
  const Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {0, 4}});
  GraphDelta delta;
  delta.Insert(1, 5).Insert(1, 0).Delete(0, 4);
  const GraphView v1 = GraphView(g).Apply(delta, 1);

  EXPECT_EQ(v1.version(), 1u);
  EXPECT_TRUE(v1.has_overlay());
  EXPECT_EQ(v1.num_edges(), g.num_edges() + 2 - 1);
  EXPECT_TRUE(v1.HasEdge(1, 5));
  EXPECT_TRUE(v1.HasEdge(1, 0));
  EXPECT_FALSE(v1.HasEdge(0, 4));
  // Sorted ascending even after overlay edits, out and in.
  const auto out1 = v1.OutNeighbors(1);
  ASSERT_TRUE(std::is_sorted(out1.begin(), out1.end()));
  EXPECT_EQ(std::vector<VertexId>(out1.begin(), out1.end()),
            (std::vector<VertexId>{0, 2, 5}));
  const auto in0 = v1.InNeighbors(0);
  EXPECT_EQ(std::vector<VertexId>(in0.begin(), in0.end()),
            (std::vector<VertexId>{1}));
  // The base graph and the version-0 view are untouched (MVCC).
  EXPECT_TRUE(g.HasEdge(0, 4));
  EXPECT_FALSE(g.HasEdge(1, 5));
}

TEST(GraphViewTest, NoOpAndDuplicateDeltasAreIgnored) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}});
  GraphDelta delta;
  delta.Insert(0, 1);  // already present
  delta.Insert(2, 2);  // self-loop
  delta.Insert(3, 1).Insert(3, 1);  // duplicate insert
  delta.Delete(0, 3);  // absent
  const GraphView v1 = GraphView(g).Apply(delta, 1);
  EXPECT_EQ(v1.num_edges(), g.num_edges() + 1);
  EXPECT_TRUE(v1.HasEdge(3, 1));
}

TEST(GraphViewTest, DeltaIsASetDeletionsWin) {
  // Within one delta, order of Insert/Delete calls is irrelevant:
  // insertions apply first, deletions win on conflicts (documented batch
  // semantics; order-dependent streams split across epochs).
  const Graph g = Graph::FromEdges(3, {{0, 1}});
  const GraphView a =
      GraphView(g).Apply(GraphDelta{}.Delete(1, 2).Insert(1, 2), 1);
  const GraphView b =
      GraphView(g).Apply(GraphDelta{}.Insert(1, 2).Delete(1, 2), 1);
  EXPECT_FALSE(a.HasEdge(1, 2));
  EXPECT_FALSE(b.HasEdge(1, 2));
}

TEST(GraphViewTest, MaterializePreservesEdgeAttributes) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 2.5, 7);
  b.AddEdge(1, 2, 0.5, 3);
  b.AddEdge(2, 3, 4.0, 1);
  const Graph g = b.Build();

  // Touch vertex 1's adjacency and insert a fresh edge; survivors keep
  // their weight/label, the inserted edge gets the defaults.
  const GraphView v1 =
      GraphView(g).Apply(GraphDelta{}.Insert(1, 3).Delete(2, 3), 1);
  const Graph folded = v1.Materialize();
  ASSERT_TRUE(folded.has_weights());
  ASSERT_TRUE(folded.has_labels());
  const EdgeId e01 = folded.FindEdge(0, 1);
  const EdgeId e12 = folded.FindEdge(1, 2);
  const EdgeId e13 = folded.FindEdge(1, 3);
  ASSERT_NE(e01, kInvalidEdge);
  ASSERT_NE(e12, kInvalidEdge);
  ASSERT_NE(e13, kInvalidEdge);
  EXPECT_EQ(folded.FindEdge(2, 3), kInvalidEdge);
  EXPECT_DOUBLE_EQ(folded.EdgeWeight(e01), 2.5);
  EXPECT_EQ(folded.EdgeLabel(e01), 7u);
  EXPECT_DOUBLE_EQ(folded.EdgeWeight(e12), 0.5);
  EXPECT_EQ(folded.EdgeLabel(e12), 3u);
  EXPECT_DOUBLE_EQ(folded.EdgeWeight(e13), 1.0);  // inserted: defaults
  EXPECT_EQ(folded.EdgeLabel(e13), 0u);
}

TEST(EngineViewTest, OracleDroppedOnRebindToDifferentBase) {
  // An engine bound with an oracle must not consult it after rebinding to
  // a snapshot with a different base (e.g. a compacted live snapshot):
  // a stale oracle would silently reject newly connected pairs.
  const Graph g1 = Graph::FromEdges(4, {{0, 1}, {2, 3}});  // 0 /-> 3
  const PrunedLandmarkIndex oracle = PrunedLandmarkIndex::Build(g1);
  QueryEngine engine(g1, {.num_workers = 1}, &oracle);

  // New base where 0 -> 3 is connected (as a compaction would produce).
  const Graph g2 =
      GraphView(g1).Apply(GraphDelta{}.Insert(1, 2), 1).Materialize();
  const GraphView compacted(std::make_shared<const Graph>(g2), nullptr, 1);

  const std::vector<Query> queries{Query{0, 3, 3}};
  std::vector<CountingSink> sinks(1);
  std::vector<PathSink*> sink_ptrs{&sinks[0]};
  BatchOptions split;
  split.split_branches = true;  // the split path consults the engine oracle
  const BatchResult r = engine.RunBatch(compacted, queries, sink_ptrs, split);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.stats[0].counters.num_results, 1u);
}

TEST(GraphViewTest, OverlaysComposeAcrossEpochs) {
  const Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const GraphView v0(g);
  const GraphView v1 = v0.Apply(GraphDelta{}.Insert(0, 2), 1);
  const GraphView v2 = v1.Apply(GraphDelta{}.Insert(2, 4).Delete(0, 1), 2);

  // Each snapshot sees exactly its own epoch's state.
  EXPECT_FALSE(v0.HasEdge(0, 2));
  EXPECT_TRUE(v1.HasEdge(0, 2));
  EXPECT_TRUE(v1.HasEdge(0, 1));
  EXPECT_FALSE(v1.HasEdge(2, 4));
  EXPECT_TRUE(v2.HasEdge(0, 2));
  EXPECT_FALSE(v2.HasEdge(0, 1));
  EXPECT_TRUE(v2.HasEdge(2, 4));
  EXPECT_EQ(v2.num_edges(), 4u + 2u - 1u);
}

TEST(GraphViewTest, MaterializeFoldsOverlayExactly) {
  Rng rng(42);
  const Graph g = ErdosRenyi(40, 160, /*seed=*/7);
  GraphView view(g);
  GraphDelta delta;
  for (int i = 0; i < 30; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(40));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(40));
    if (i % 3 == 0) {
      delta.Delete(u, v);
    } else {
      delta.Insert(u, v);
    }
  }
  const GraphView v1 = view.Apply(delta, 1);
  const Graph folded = v1.Materialize();
  ASSERT_EQ(folded.num_vertices(), v1.num_vertices());
  ASSERT_EQ(folded.num_edges(), v1.num_edges());
  for (VertexId v = 0; v < folded.num_vertices(); ++v) {
    const auto a = folded.OutNeighbors(v);
    const auto b = v1.OutNeighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "out-adjacency mismatch at " << v;
    const auto ai = folded.InNeighbors(v);
    const auto bi = v1.InNeighbors(v);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()))
        << "in-adjacency mismatch at " << v;
  }
}

TEST(GraphViewTest, OutOfRangeEndpointThrows) {
  const Graph g = Graph::FromEdges(3, {{0, 1}});
  EXPECT_THROW(GraphView(g).Apply(GraphDelta{}.Insert(0, 3), 1),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Enumeration on views
// ---------------------------------------------------------------------------

TEST(LiveEnumerationTest, PaperExampleGainsAndLosesPaths) {
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  const GraphView v0(g);
  const PathSet base_paths = EnumerateOnView(v0, q);
  EXPECT_EQ(base_paths, Reference(g, q));

  // Inserting s -> v5 opens new paths through v5; deleting v0 -> t closes
  // every path using that edge.
  const GraphView v1 = v0.Apply(
      GraphDelta{}.Insert(testing::kS, testing::kV5).Delete(testing::kV0,
                                                            testing::kT),
      1);
  const PathSet updated_paths = EnumerateOnView(v1, q);
  EXPECT_EQ(updated_paths, Reference(v1.Materialize(), q));
  EXPECT_NE(updated_paths, base_paths);
}

TEST(LiveEnumerationTest, RandomizedViewMatchesMaterialized) {
  Rng rng(1234);
  for (int round = 0; round < 12; ++round) {
    const VertexId n = 24;
    const Graph g = ErdosRenyi(n, 72, /*seed=*/100 + round);
    GraphView view(g);
    // Several epochs of random churn, enumerating after each.
    for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
      GraphDelta delta;
      for (int i = 0; i < 10; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (rng.NextBounded(2) == 0) {
          delta.Insert(u, v);
        } else {
          delta.Delete(u, v);
        }
      }
      view = view.Apply(delta, epoch);
      const Graph folded = view.Materialize();
      const Query q{0, n - 1, 5};
      ASSERT_EQ(EnumerateOnView(view, q), Reference(folded, q))
          << "round " << round << " epoch " << epoch;
    }
  }
}

// ---------------------------------------------------------------------------
// SnapshotManager
// ---------------------------------------------------------------------------

TEST(SnapshotManagerTest, VersionsAdvanceAndOldSnapshotsSurvive) {
  SnapshotManager mgr(PaperExampleGraph());
  const auto s0 = mgr.Current();
  EXPECT_EQ(s0->version(), 0u);

  const auto epoch = mgr.Apply(GraphDelta{}.Insert(testing::kV7, testing::kT));
  EXPECT_EQ(epoch.snapshot->version(), 1u);
  EXPECT_EQ(mgr.version(), 1u);
  EXPECT_TRUE(mgr.Current()->HasEdge(testing::kV7, testing::kT));
  // The retired snapshot still answers for its own version.
  EXPECT_FALSE(s0->HasEdge(testing::kV7, testing::kT));
  EXPECT_EQ(mgr.stats().updates, 1u);
}

TEST(SnapshotManagerTest, CompactionFoldsOverlayAtBudget) {
  SnapshotOptions opts;
  opts.compact_min_touched = 4;
  opts.compact_touched_fraction = 0.0;
  SnapshotManager mgr(PathGraph(64), opts);

  GraphDelta big;
  for (VertexId v = 0; v + 8 < 64; v += 8) big.Insert(v, v + 8);
  const auto epoch = mgr.Apply(big);
  EXPECT_TRUE(epoch.compacted);
  EXPECT_FALSE(epoch.snapshot->has_overlay());
  EXPECT_EQ(epoch.snapshot->version(), 1u);
  EXPECT_TRUE(epoch.snapshot->HasEdge(0, 8));
  EXPECT_EQ(mgr.stats().compactions, 1u);

  // A tiny follow-up epoch stays an overlay.
  const auto epoch2 = mgr.Apply(GraphDelta{}.Insert(1, 3));
  EXPECT_FALSE(epoch2.compacted);
  EXPECT_TRUE(epoch2.snapshot->has_overlay());
}

TEST(SnapshotManagerTest, PrepareDoesNotPublish) {
  SnapshotManager mgr(PaperExampleGraph());
  const auto epoch = mgr.Prepare(GraphDelta{}.Insert(testing::kV7, testing::kT));
  EXPECT_EQ(mgr.version(), 0u);  // still the old snapshot
  mgr.Publish(epoch);
  EXPECT_EQ(mgr.version(), 1u);
}

// ---------------------------------------------------------------------------
// UpdateImpact
// ---------------------------------------------------------------------------

TEST(UpdateImpactTest, FarAwayUpdateDoesNotAffectLocalQuery) {
  // Two disconnected path components: updates in one cannot affect
  // queries inside the other.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 9; ++v) edges.push_back({v, v + 1});
  for (VertexId v = 10; v < 19; ++v) edges.push_back({v, v + 1});
  const Graph g = Graph::FromEdges(20, edges);
  const GraphView before(g);
  const GraphDelta delta = GraphDelta{}.Insert(12, 14);
  const GraphView after = before.Apply(delta, 1);
  const UpdateImpact impact = UpdateImpact::Compute(before, after, delta, 8);

  EXPECT_FALSE(impact.AffectsQuery(0, 5, 5));
  EXPECT_TRUE(impact.AffectsQuery(10, 15, 5));
  // Beyond the certified radius everything reports affected (conservative).
  EXPECT_TRUE(impact.AffectsQuery(0, 5, 30));
}

TEST(UpdateImpactTest, InsertionCreatingFirstPathIsDetected) {
  // s -> a -> u   and   v -> b -> t are disconnected until (u, v) appears;
  // neither endpoint of the new edge lies in the old (empty) index X set,
  // so a naive X-intersection rule would miss this — the endpoint-ball rule
  // must not.
  const Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const GraphView before(g);
  const GraphDelta delta = GraphDelta{}.Insert(2, 3);
  const GraphView after = before.Apply(delta, 1);
  const UpdateImpact impact = UpdateImpact::Compute(before, after, delta, 8);
  EXPECT_TRUE(impact.AffectsQuery(0, 5, 5));
}

TEST(UpdateImpactTest, RandomizedSoundness) {
  // Whenever an epoch changes a query's result set, AffectsQuery must say
  // so. (The converse — precision — is not required.)
  Rng rng(777);
  int changed_and_flagged = 0;
  for (int round = 0; round < 20; ++round) {
    const VertexId n = 18;
    const Graph g = ErdosRenyi(n, 45, /*seed=*/500 + round);
    const GraphView before(g);
    GraphDelta delta;
    for (int i = 0; i < 4; ++i) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (rng.NextBounded(2) == 0) {
        delta.Insert(u, v);
      } else {
        delta.Delete(u, v);
      }
    }
    const GraphView after = before.Apply(delta, 1);
    const Graph after_g = after.Materialize();
    const UpdateImpact impact =
        UpdateImpact::Compute(before, after, delta, /*max_hops=*/6);
    for (VertexId s = 0; s < n; ++s) {
      for (VertexId t = 0; t < n; ++t) {
        if (s == t) continue;
        const Query q{s, t, 4};
        const PathSet old_paths = Reference(g, q);
        const PathSet new_paths = Reference(after_g, q);
        if (old_paths != new_paths) {
          ASSERT_TRUE(impact.AffectsQuery(s, t, q.hops))
              << "round " << round << " unsound for q(" << s << ", " << t
              << ", " << q.hops << ")";
          ++changed_and_flagged;
        }
      }
    }
  }
  // The check must have exercised real changes to mean anything.
  EXPECT_GT(changed_and_flagged, 50);
}

// ---------------------------------------------------------------------------
// Snapshot-versioned cache
// ---------------------------------------------------------------------------

CacheKey KeyFor(const Query& q) {
  return CacheKey{q.source, q.target, q.hops, 0};
}

LightweightIndex BuildFor(const GraphView& view, const Query& q) {
  IndexBuilder builder;
  return builder.Build(view, q, {});
}

TEST(CacheEpochTest, BeginEpochEvictsSelectively) {
  const Graph g = PathGraph(40);
  const GraphView v0(g);
  IndexCache cache{IndexCacheOptions{}};
  const Query near{0, 4, 6};    // close to the update below
  const Query far{30, 36, 6};   // far from it
  cache.GetOrBuild(KeyFor(near), [&] { return BuildFor(v0, near); });
  cache.GetOrBuild(KeyFor(far), [&] { return BuildFor(v0, far); });

  const GraphDelta delta = GraphDelta{}.Insert(2, 4);
  const GraphView v1 = v0.Apply(delta, 1);
  const UpdateImpact impact = UpdateImpact::Compute(v0, v1, delta, 8);
  const size_t evicted =
      cache.BeginEpoch(1, [&](VertexId s, VertexId t, uint32_t k) {
        return impact.AffectsQuery(s, t, k);
      });
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(cache.version(), 1u);

  // The far entry survived and serves the new version; the near one is gone.
  EXPECT_NE(cache.PeekIndex(KeyFor(far), 1), nullptr);
  EXPECT_EQ(cache.PeekIndex(KeyFor(near), 1), nullptr);
  EXPECT_EQ(cache.Stats().invalidation_evictions, 1u);
}

TEST(CacheEpochTest, OldSnapshotNeverSeesNewerEntries) {
  const Graph g = PathGraph(10);
  const GraphView v0(g);
  IndexCache cache{IndexCacheOptions{}};
  cache.BeginEpoch(1, [](VertexId, VertexId, uint32_t) { return true; });

  // Published at version 1.
  const Query q{0, 5, 6};
  const GraphView v1 = v0.Apply(GraphDelta{}, 1);
  cache.GetOrBuild(KeyFor(q), [&] { return BuildFor(v1, q); }, nullptr, 1);
  EXPECT_NE(cache.PeekIndex(KeyFor(q), 1), nullptr);

  // A version-0 straggler must miss it (the entry may describe topology
  // the old snapshot does not have) and must not publish its own build.
  bool hit = true;
  const auto idx = cache.GetOrBuild(
      KeyFor(q), [&] { return BuildFor(v0, q); }, &hit, 0);
  EXPECT_FALSE(hit);
  ASSERT_NE(idx, nullptr);
  // The version-1 entry is still the published one.
  EXPECT_NE(cache.PeekIndex(KeyFor(q), 1), nullptr);
}

TEST(CacheEpochTest, StaleResultPublicationRejected) {
  IndexCache cache{IndexCacheOptions{}};
  auto result = std::make_shared<CachedResultSet>();
  result->offsets.push_back(0);
  cache.BeginEpoch(3, [](VertexId, VertexId, uint32_t) { return false; });
  // A run that enumerated version 2 finishes after the epoch: rejected.
  EXPECT_FALSE(cache.PutResult(CacheKey{0, 1, 2, 0}, result, 2));
  EXPECT_TRUE(cache.PutResult(CacheKey{0, 1, 2, 0}, result, 3));
  EXPECT_NE(cache.GetResult(CacheKey{0, 1, 2, 0}, 3), nullptr);
  // And an older-version reader does not see the version-3 result.
  EXPECT_EQ(cache.GetResult(CacheKey{0, 1, 2, 0}, 2), nullptr);
}

TEST(CacheEpochTest, ClearAfterEpochRealignsVersionSoPublicationResumes) {
  // Regression: a full Clear() (RebindGraph) after BeginEpoch(N) must reset
  // the cache's version, or every later version-0 publication is rejected
  // as stale and the cache silently never fills again.
  const Graph g = PathGraph(10);
  const GraphView v0(g);
  IndexCache cache{IndexCacheOptions{}};
  cache.BeginEpoch(5, [](VertexId, VertexId, uint32_t) { return true; });
  cache.Clear();  // back to a freshly bound graph at version 0
  const Query q{0, 5, 6};
  bool hit = true;
  cache.GetOrBuild(KeyFor(q), [&] { return BuildFor(v0, q); }, &hit, 0);
  EXPECT_FALSE(hit);
  cache.GetOrBuild(KeyFor(q), [&] { return BuildFor(v0, q); }, &hit, 0);
  EXPECT_TRUE(hit);  // the first build published despite the earlier epoch

  // The live-engine form: InvalidateCaches keeps the current view version.
  QueryEngine engine(v0, {.num_workers = 1, .enable_cache = true});
  engine.cache()->BeginEpoch(7,
                             [](VertexId, VertexId, uint32_t) { return true; });
  const GraphView v7 = v0.Apply(GraphDelta{}, 7);
  const std::vector<Query> queries{q};
  std::vector<CountingSink> sinks(1);
  std::vector<PathSink*> sink_ptrs{&sinks[0]};
  engine.RunBatch(v7, queries, sink_ptrs, {});
  engine.InvalidateCaches();  // Clear at view version 7, not 0
  const IndexCacheStats before = engine.cache()->Stats();
  std::vector<CountingSink> sinks2(1);
  std::vector<PathSink*> sink_ptrs2{&sinks2[0]};
  engine.RunBatch(v7, queries, sink_ptrs2, {});  // publishes at version 7
  std::vector<CountingSink> sinks3(1);
  std::vector<PathSink*> sink_ptrs3{&sinks3[0]};
  engine.RunBatch(v7, queries, sink_ptrs3, {});
  const IndexCacheStats delta = engine.cache()->Stats() - before;
  EXPECT_GE(delta.result_hits + delta.index_hits, 1u);
}

TEST(CacheAdmissionTest, OneShotKeysBypassUntilSecondUse) {
  const Graph g = PathGraph(12);
  const GraphView v0(g);
  IndexCacheOptions opts;
  opts.admission_min_uses = 2;
  IndexCache cache(opts);
  const Query q{0, 6, 6};
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return BuildFor(v0, q);
  };

  bool hit = true;
  cache.GetOrBuild(KeyFor(q), build, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.Stats().admission_bypasses, 1u);
  EXPECT_EQ(cache.PeekIndex(KeyFor(q)), nullptr);  // not published

  cache.GetOrBuild(KeyFor(q), build, &hit);  // second use: admitted
  EXPECT_FALSE(hit);
  EXPECT_NE(cache.PeekIndex(KeyFor(q)), nullptr);

  cache.GetOrBuild(KeyFor(q), build, &hit);  // third use: a hit
  EXPECT_TRUE(hit);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.Stats().index_hits, 1u);
}

TEST(CacheTtlTest, ResultEntriesExpire) {
  IndexCacheOptions opts;
  opts.result_ttl_ms = 1.0;  // expire almost immediately
  IndexCache cache(opts);
  auto result = std::make_shared<CachedResultSet>();
  result->offsets.push_back(0);
  const CacheKey key{0, 1, 2, 0};
  ASSERT_TRUE(cache.PutResult(key, result));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(cache.HasResult(key));
  EXPECT_EQ(cache.GetResult(key), nullptr);
  EXPECT_EQ(cache.Stats().result_ttl_evictions, 1u);
}

// ---------------------------------------------------------------------------
// Engine on views + invalidation racing RunBatch
// ---------------------------------------------------------------------------

TEST(EngineViewTest, RunBatchOnViewObservesExactlyThatSnapshot) {
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  QueryEngine engine(g, {.num_workers = 2, .enable_cache = true});

  const GraphView v0(g);
  const std::vector<Query> queries{q};
  const BatchResult r0 = engine.CountBatch(queries, {});
  const uint64_t base_count = r0.stats[0].counters.num_results;

  const GraphView v1 =
      v0.Apply(GraphDelta{}.Delete(testing::kV0, testing::kT), 1);
  engine.cache()->BeginEpoch(1,
                             [](VertexId, VertexId, uint32_t) { return true; });
  std::vector<CountingSink> sinks1(1);
  std::vector<PathSink*> sink_ptrs1{&sinks1[0]};
  const BatchResult r1 = engine.RunBatch(v1, queries, sink_ptrs1, {});
  EXPECT_EQ(r1.stats[0].counters.num_results,
            BruteForcePaths(v1.Materialize(), q).size());
  EXPECT_LT(r1.stats[0].counters.num_results, base_count);

  // Running the old snapshot again returns the old answer (its cache
  // entries are gone, but correctness never depended on them).
  std::vector<CountingSink> sinks0(1);
  std::vector<PathSink*> sink_ptrs0{&sinks0[0]};
  const BatchResult r2 = engine.RunBatch(v0, queries, sink_ptrs0, {});
  EXPECT_EQ(r2.stats[0].counters.num_results, base_count);
}

TEST(EngineViewTest, EpochUnawareViewAdvanceNeverReplaysStaleResults) {
  // A caller that advances the snapshot WITHOUT running BeginEpoch must
  // not be served stale cached results: the engine degrades to a versioned
  // full clear when the view's version is ahead of the cache's.
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  QueryEngine engine(g, {.num_workers = 1, .enable_cache = true});
  const std::vector<Query> queries{q};
  engine.CountBatch(queries, {});  // warms the result cache at version 0

  const GraphView v1 =
      GraphView(g).Apply(GraphDelta{}.Delete(testing::kV0, testing::kT), 1);
  std::vector<CountingSink> sinks(1);
  std::vector<PathSink*> sink_ptrs{&sinks[0]};
  // No BeginEpoch on purpose.
  const BatchResult r = engine.RunBatch(v1, queries, sink_ptrs, {});
  EXPECT_EQ(r.stats[0].counters.num_results,
            BruteForcePaths(v1.Materialize(), q).size());
  EXPECT_FALSE(r.stats[0].result_cache_hit);
}

TEST(EngineViewTest, InvalidationRacingRunBatchKeepsAnswersExact) {
  // One thread hammers batches on a fixed snapshot while another clears and
  // epoch-invalidates the shared cache: every batch must report exactly the
  // snapshot's answer — a stale snapshot finishes on its own version, never
  // a mix. (Run under TSan in CI.)
  const Graph g = ErdosRenyi(60, 300, /*seed=*/9);
  const GraphView v0(g);
  QueryEngine engine(v0, {.num_workers = 2, .enable_cache = true});
  const Query q{0, 59, 4};
  const uint64_t expected = BruteForcePaths(g, q).size();
  const std::vector<Query> queries{q, q, q, q};

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    uint64_t version = 0;
    while (!stop.load()) {
      engine.cache()->Clear();
      engine.cache()->BeginEpoch(
          ++version, [](VertexId, VertexId, uint32_t) { return true; });
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 50; ++round) {
    const BatchResult r = engine.CountBatch(queries, {});
    ASSERT_TRUE(r.ok());
    for (const QueryStats& s : r.stats) {
      ASSERT_EQ(s.counters.num_results, expected) << "round " << round;
    }
  }
  stop.store(true);
  invalidator.join();
}

// ---------------------------------------------------------------------------
// LiveDistanceOracle (DESIGN.md §13)
// ---------------------------------------------------------------------------

LiveOracleOptions SyncOracleOptions() {
  LiveOracleOptions opts;
  opts.background_relabel = false;  // deterministic: re-labels inline
  return opts;
}

TEST(LiveOracleTest, BaseEpochClaimsMatchExactDistances) {
  // Two disconnected path components: 0..4 and 5..9.
  const Graph g = Graph::FromEdges(
      10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}, {6, 7}, {7, 8}, {8, 9}});
  LiveDistanceOracle oracle(g, SyncOracleOptions());
  const LiveDistanceOracle::EpochRef ref = oracle.Current();
  ASSERT_TRUE(ref.valid());
  EXPECT_EQ(ref.version(), 0u);
  EXPECT_TRUE(ref.ValidFor(GraphView(g)));

  EXPECT_TRUE(ref.Rejects(0, 9, 8));    // cross-component: unreachable
  EXPECT_TRUE(ref.Rejects(0, 4, 3));    // dist 4 > 3
  EXPECT_FALSE(ref.Rejects(0, 4, 4));   // satisfiable: never rejected
  EXPECT_EQ(ref.LowerBound(0, 4), 4u);
  EXPECT_EQ(ref.LowerBound(0, 9), kInfDistance);
  EXPECT_EQ(ref.UpperBound(0, 4), 4u);  // no deletions yet: exact

  // Out-of-range endpoints and empty refs claim nothing.
  EXPECT_FALSE(ref.Rejects(0, 100, 3));
  EXPECT_EQ(ref.LowerBound(0, 100), 0u);
  EXPECT_FALSE(LiveDistanceOracle::EpochRef().Rejects(0, 9, 1));
  EXPECT_EQ(LiveDistanceOracle::EpochRef().UpperBound(0, 9), kInfDistance);
}

TEST(LiveOracleTest, ChainedInsertsNeverWronglyReject) {
  // Three disconnected segments; the bridges arrive in two separate
  // epochs, so a sound rejection must chain corrections (a single-edge
  // 2-hop fixup would wrongly reject q(0, 5, 5)).
  const Graph g = Graph::FromEdges(6, {{0, 1}, {2, 3}, {4, 5}});
  SnapshotManager mgr(g);
  LiveDistanceOracle oracle(mgr.Current()->base(), SyncOracleOptions());
  mgr.AttachOracle(&oracle);
  mgr.Apply(GraphDelta{}.Insert(1, 2));
  mgr.Apply(GraphDelta{}.Insert(3, 4));

  const SnapshotManager::Published pub = mgr.CurrentPublished();
  ASSERT_TRUE(pub.oracle.valid());
  ASSERT_TRUE(pub.oracle.ValidFor(*pub.snapshot));
  EXPECT_EQ(pub.oracle.LowerBound(0, 5), 5u);  // 0-1 →ins 2-3 →ins 4-5
  EXPECT_FALSE(pub.oracle.Rejects(0, 5, 5));
  EXPECT_TRUE(pub.oracle.Rejects(0, 5, 4));    // still sound and sharp
  EXPECT_TRUE(pub.oracle.Rejects(5, 0, 8));    // reverse never connected
  EXPECT_EQ(oracle.stats().corrections, 2u);
}

TEST(LiveOracleTest, DeletionsDegradeUpperBoundsButNeverReject) {
  const Graph g = PathGraph(20);
  SnapshotManager mgr(g);
  LiveDistanceOracle oracle(mgr.Current()->base(), SyncOracleOptions());
  mgr.AttachOracle(&oracle);
  EXPECT_EQ(oracle.Current().UpperBound(0, 12), 12u);

  mgr.Apply(GraphDelta{}.Delete(10, 11));
  const SnapshotManager::Published pub = mgr.CurrentPublished();
  // True dist(0, 19) is now infinite, but the oracle must only claim what
  // its LB graph (which still has the edge) supports: no rejection, the
  // old distance as a lower bound, and NO upper-bound claim across the
  // deletion region.
  EXPECT_FALSE(pub.oracle.Rejects(0, 19, 19));
  EXPECT_EQ(pub.oracle.LowerBound(0, 19), 19u);
  EXPECT_EQ(pub.oracle.UpperBound(0, 12), kInfDistance);
  // Far from the deleted edge's impact ball the upper bound survives.
  EXPECT_EQ(pub.oracle.UpperBound(0, 3), 3u);
  EXPECT_EQ(oracle.stats().delete_regions, 1u);
}

TEST(LiveOracleTest, VersionGatingAnswersOnlyForMatchingSnapshots) {
  const Graph g = PathGraph(6);
  SnapshotManager mgr(g);
  LiveDistanceOracle oracle(mgr.Current()->base(), SyncOracleOptions());
  mgr.AttachOracle(&oracle);

  std::vector<std::shared_ptr<const GraphView>> snaps{mgr.Current()};
  for (int e = 1; e <= 4; ++e) {
    mgr.Apply(GraphDelta{}.Insert(0, static_cast<VertexId>(e + 1)));
    snaps.push_back(mgr.Current());
  }
  for (uint64_t v = 0; v <= 4; ++v) {
    const LiveDistanceOracle::EpochRef ref = oracle.ForVersion(v);
    ASSERT_TRUE(ref.valid()) << "version " << v;
    EXPECT_EQ(ref.version(), v);
    EXPECT_TRUE(ref.ValidFor(*snaps[v]));
    EXPECT_FALSE(ref.ValidFor(*snaps[(v + 1) % snaps.size()]));
  }
  EXPECT_FALSE(oracle.ForVersion(99).valid());
  // A same-version view over a DIFFERENT base graph is refused: version
  // numbers alone do not identify a topology.
  const Graph other = PathGraph(6);
  EXPECT_FALSE(oracle.ForVersion(0).ValidFor(GraphView(other)));
}

TEST(LiveOracleTest, SynchronousRelabelFoldsCorrectionsAtBudget) {
  LiveOracleOptions opts = SyncOracleOptions();
  opts.relabel_budget = 2;
  const Graph g = Graph::FromEdges(8, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  SnapshotManager mgr(g);
  LiveDistanceOracle oracle(mgr.Current()->base(), opts);
  mgr.AttachOracle(&oracle);
  mgr.Apply(GraphDelta{}.Insert(1, 2));
  mgr.Apply(GraphDelta{}.Insert(3, 4));
  mgr.Apply(GraphDelta{}.Insert(5, 6));  // |C| = 3 > budget: re-label runs
  EXPECT_EQ(oracle.stats().corrections, 3u);  // ...but folds at the NEXT epoch

  mgr.Apply(GraphDelta{});  // empty epoch folds the staged labels
  const LiveDistanceOracle::Stats st = oracle.stats();
  EXPECT_EQ(st.relabels, 1u);
  EXPECT_EQ(st.corrections, 0u);
  EXPECT_EQ(st.label_version, 3u);
  // Claims after the fold are exact labels again.
  const SnapshotManager::Published pub = mgr.CurrentPublished();
  EXPECT_EQ(pub.oracle.LowerBound(0, 7), 7u);
  EXPECT_FALSE(pub.oracle.Rejects(0, 7, 7));
  EXPECT_TRUE(pub.oracle.Rejects(0, 7, 6));
  EXPECT_TRUE(pub.oracle.Rejects(7, 0, 8));
}

TEST(LiveOracleTest, CorrectionOverflowDegradesToNoClaimUntilRelabel) {
  LiveOracleOptions opts = SyncOracleOptions();
  opts.relabel_budget = 1;
  opts.max_corrections = 2;  // effective cap: max(1, 2) = 2
  const Graph g = Graph::FromEdges(10, {{0, 1}});
  SnapshotManager mgr(g);
  LiveDistanceOracle oracle(mgr.Current()->base(), opts);
  mgr.AttachOracle(&oracle);

  // Three fresh inserts in one epoch: the third overflows the cap, so the
  // epoch can no longer prove any pair unreachable — every claim must
  // degrade to "no claim" (a dropped edge could connect anything).
  mgr.Apply(GraphDelta{}.Insert(2, 3).Insert(4, 5).Insert(6, 7));
  EXPECT_TRUE(oracle.stats().rejection_degraded);
  const SnapshotManager::Published degraded = mgr.CurrentPublished();
  EXPECT_FALSE(degraded.oracle.Rejects(8, 9, 8));  // truly disconnected
  EXPECT_EQ(degraded.oracle.LowerBound(8, 9), 0u);

  // The overflow triggered the (synchronous) re-label; the next epoch
  // folds it and sound rejection comes back.
  mgr.Apply(GraphDelta{});
  EXPECT_FALSE(oracle.stats().rejection_degraded);
  EXPECT_TRUE(mgr.CurrentPublished().oracle.Rejects(8, 9, 8));
}

TEST(LiveOracleTest, RandomizedChurnNeverWronglyRejects) {
  // The core soundness contract, checked differentially against brute
  // force over a 12-epoch churn stream (inserts + deletes, folds included):
  // every Rejects() == true must correspond to a truly empty result set,
  // every LowerBound must lower-bound the true BFS distance, and every
  // finite UpperBound must upper-bound it.
  Rng rng(4242);
  const VertexId n = 20;
  const Graph g = ErdosRenyi(n, 30, /*seed=*/11);
  SnapshotManager mgr(g);
  LiveOracleOptions opts = SyncOracleOptions();
  opts.relabel_budget = 8;  // exercise folds mid-stream
  LiveDistanceOracle oracle(mgr.Current()->base(), opts);
  mgr.AttachOracle(&oracle);

  uint64_t rejects = 0;
  for (uint64_t epoch = 1; epoch <= 12; ++epoch) {
    GraphDelta delta;
    for (int i = 0; i < 5; ++i) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (rng.NextBounded(3) == 0) {
        delta.Delete(u, v);
      } else {
        delta.Insert(u, v);
      }
    }
    mgr.Apply(delta);
    const SnapshotManager::Published pub = mgr.CurrentPublished();
    ASSERT_TRUE(pub.oracle.ValidFor(*pub.snapshot));
    const Graph folded = pub.snapshot->Materialize();
    for (VertexId s = 0; s < n; ++s) {
      DistanceField df;
      df.Compute(folded, Direction::kForward, s, {});
      for (VertexId t = 0; t < n; ++t) {
        if (s == t) continue;
        const uint32_t true_dist = df.Distance(t);
        ASSERT_LE(pub.oracle.LowerBound(s, t), true_dist)
            << "epoch " << epoch << " lb(" << s << ", " << t << ")";
        ASSERT_GE(pub.oracle.UpperBound(s, t), true_dist)
            << "epoch " << epoch << " ub(" << s << ", " << t << ")";
        for (const uint32_t k : {2u, 4u}) {
          if (pub.oracle.Rejects(s, t, k)) {
            ++rejects;
            ASSERT_TRUE(BruteForcePaths(folded, Query{s, t, k}).empty())
                << "epoch " << epoch << " wrongly rejected q(" << s << ", "
                << t << ", " << k << ")";
          }
        }
      }
    }
  }
  EXPECT_GT(rejects, 0u);  // the stream must have exercised real claims
  EXPECT_GT(oracle.stats().relabels, 0u);
}

TEST(LiveOracleTest, StaticOracleOnOverlayViewDegradesGracefully) {
  // Regression: constructing a PathEnumerator with a base-graph oracle on
  // an overlay view used to abort via PATHENUM_CHECK. It must instead drop
  // the oracle (whose claims the overlay invalidates) and run normally.
  const Graph g = PathGraph(8);
  const PrunedLandmarkIndex labels = PrunedLandmarkIndex::Build(g);
  const GraphView v1 = GraphView(g).Apply(GraphDelta{}.Insert(0, 7), 1);
#if PATHENUM_OBS
  const uint64_t dropped_before = obs::MetricRegistry::Global()
                                      .GetCounter("pathenum_oracle_dropped_total")
                                      ->Value();
#endif
  PathEnumerator pe(v1, &labels);
  CollectingSink sink;
  const QueryStats stats = pe.Run(Query{0, 7, 1}, sink);
  // The stale labels say dist(0, 7) = 7 > 1; keeping them would wrongly
  // reject the one-hop path the overlay just inserted.
  EXPECT_EQ(sink.paths().size(), 1u);
  EXPECT_FALSE(stats.counters.oracle_rejected);
#if PATHENUM_OBS
  EXPECT_GT(obs::MetricRegistry::Global()
                .GetCounter("pathenum_oracle_dropped_total")
                ->Value(),
            dropped_before);
#endif
}

// ---------------------------------------------------------------------------
// AsyncEngine
// ---------------------------------------------------------------------------

TEST(AsyncEngineTest, SubmitStreamsAndTicketsComplete) {
  AsyncEngineOptions opts;
  opts.num_workers = 2;
  AsyncEngine engine(PaperExampleGraph(), opts);
  const Query q = PaperExampleQuery();
  const uint64_t expected = BruteForcePaths(PaperExampleGraph(), q).size();

  std::vector<CountingSink> sinks(8);
  std::vector<QueryTicket> tickets;
  for (auto& sink : sinks) tickets.push_back(engine.Submit(q, sink));
  for (size_t i = 0; i < tickets.size(); ++i) {
    const QueryStats& stats = tickets[i].Wait();
    EXPECT_TRUE(tickets[i].ok()) << tickets[i].error();
    EXPECT_EQ(stats.counters.num_results, expected);
    EXPECT_EQ(sinks[i].count(), expected);
    EXPECT_EQ(tickets[i].snapshot_version(), 0u);
  }
  engine.Drain();  // ticket completion precedes the executed_ bookkeeping
  EXPECT_EQ(engine.stats().executed, 8u);
}

TEST(AsyncEngineTest, InvalidQueryYieldsErroredTicket) {
  AsyncEngine engine(PaperExampleGraph(), {.num_workers = 1});
  CountingSink sink;
  QueryTicket ticket = engine.Submit(Query{0, 0, 3}, sink);  // s == t
  ticket.Wait();
  EXPECT_FALSE(ticket.ok());
  EXPECT_FALSE(ticket.error().empty());
}

TEST(AsyncEngineTest, SinkStopEndsStreamEarly) {
  AsyncEngine engine(PaperExampleGraph(), {.num_workers = 1});
  CollectingSink sink(/*max_paths=*/2);
  QueryTicket ticket = engine.Submit(PaperExampleQuery(), sink);
  ticket.Wait();
  EXPECT_TRUE(ticket.ok());
  EXPECT_EQ(sink.paths().size(), 2u);
  EXPECT_TRUE(ticket.Wait().counters.stopped_by_sink);
}

TEST(AsyncEngineTest, QueriesStraddlingUpdateObserveExactlyOneSnapshot) {
  const Graph base = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  AsyncEngineOptions opts;
  opts.num_workers = 2;
  AsyncEngine engine(base, opts);

  // Expected answer per version, computed on materialized snapshots.
  const uint64_t count_v0 = BruteForcePaths(base, q).size();
  const GraphDelta delta =
      GraphDelta{}.Insert(testing::kV7, testing::kT);  // opens new paths
  const uint64_t count_v1 =
      BruteForcePaths(GraphView(base).Apply(delta, 1).Materialize(), q).size();
  ASSERT_NE(count_v0, count_v1);

  std::vector<CountingSink> sinks(32);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 16; ++i) tickets.push_back(engine.Submit(q, sinks[i]));
  const uint64_t v1 = engine.SubmitUpdate(delta);
  EXPECT_EQ(v1, 1u);
  for (int i = 16; i < 32; ++i) tickets.push_back(engine.Submit(q, sinks[i]));

  for (QueryTicket& t : tickets) {
    const QueryStats& stats = t.Wait();
    ASSERT_TRUE(t.ok()) << t.error();
    const uint64_t expected =
        t.snapshot_version() == 0 ? count_v0 : count_v1;
    ASSERT_EQ(stats.counters.num_results, expected)
        << "ticket on version " << t.snapshot_version()
        << " returned a result set of another version";
  }
  // Everything submitted after the update observed the new version.
  for (size_t i = 16; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].snapshot_version(), 1u);
  }
}

TEST(AsyncEngineTest, UpdateStormRacingQueriesStaysConsistent) {
  // Concurrent submitters and an updater thread: every ticket's result must
  // match the brute-force answer for exactly its snapshot version. This is
  // the live-graph analogue of "RebindGraph racing RunBatch" — snapshots
  // make the race benign. (Run under TSan in CI.)
  const VertexId n = 30;
  const Graph base = ErdosRenyi(n, 110, /*seed=*/31);
  const Query q{0, n - 1, 4};
  AsyncEngineOptions opts;
  opts.num_workers = 3;
  AsyncEngine engine(base, opts);

  // Deterministic delta chain; expected counts per version precomputed.
  constexpr int kEpochs = 10;
  std::vector<GraphDelta> deltas;
  std::vector<uint64_t> expected;  // expected[v] = answer at version v
  {
    Rng rng(55);
    GraphView view(base);
    expected.push_back(BruteForcePaths(base, q).size());
    for (int e = 0; e < kEpochs; ++e) {
      GraphDelta d;
      for (int i = 0; i < 6; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (rng.NextBounded(2) == 0) {
          d.Insert(u, v);
        } else {
          d.Delete(u, v);
        }
      }
      deltas.push_back(d);
      view = view.Apply(d, e + 1);
      expected.push_back(BruteForcePaths(view.Materialize(), q).size());
    }
  }

  std::vector<CountingSink> sinks(200);
  std::vector<QueryTicket> tickets(sinks.size());
  std::atomic<size_t> next{0};
  std::thread submitter([&] {
    for (size_t i = 0; i < sinks.size() / 2; ++i) {
      const size_t slot = next.fetch_add(1);
      tickets[slot] = engine.Submit(q, sinks[slot]);
    }
  });
  for (const GraphDelta& d : deltas) {
    for (int i = 0; i < 10; ++i) {
      const size_t slot = next.fetch_add(1);
      tickets[slot] = engine.Submit(q, sinks[slot]);
    }
    engine.SubmitUpdate(d);
  }
  submitter.join();

  const size_t used = next.load();
  for (size_t i = 0; i < used; ++i) {
    const QueryStats& stats = tickets[i].Wait();
    ASSERT_TRUE(tickets[i].ok()) << tickets[i].error();
    const uint64_t version = tickets[i].snapshot_version();
    ASSERT_LT(version, expected.size());
    ASSERT_EQ(stats.counters.num_results, expected[version])
        << "ticket " << i << " on version " << version;
  }
  EXPECT_EQ(engine.stats().updates, static_cast<uint64_t>(kEpochs));
}

TEST(AsyncEngineTest, BoundedQueueRejectsTrySubmitWhenFull) {
  // A sink that blocks its worker until released, so the queue backs up
  // deterministically.
  class GateSink : public PathSink {
   public:
    bool OnPath(std::span<const VertexId>) override {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return open; });
      return true;
    }
    void Open() {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        open = true;
      }
      cv.notify_all();
    }
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
  };

  AsyncEngineOptions opts;
  opts.num_workers = 1;
  opts.max_queue = 2;
  AsyncEngine engine(PaperExampleGraph(), opts);

  GateSink gate;
  QueryTicket running = engine.Submit(PaperExampleQuery(), gate);
  // Wait until the worker actually claimed it (queue empties).
  while (engine.stats().queue_depth > 0) std::this_thread::yield();

  CountingSink s1, s2, s3;
  const QueryTicket q1 = engine.TrySubmit(PaperExampleQuery(), s1);
  const QueryTicket q2 = engine.TrySubmit(PaperExampleQuery(), s2);
  ASSERT_TRUE(q1.valid());
  ASSERT_TRUE(q2.valid());
  const QueryTicket q3 = engine.TrySubmit(PaperExampleQuery(), s3);
  EXPECT_FALSE(q3.valid());  // queue full
  EXPECT_EQ(engine.stats().queue_rejects, 1u);

  gate.Open();
  running.Wait();
  q1.Wait();
  q2.Wait();
  engine.Drain();
}

TEST(AsyncEngineTest, SplitSubmitMatchesSerialAnswer) {
  // A split ticket must deliver exactly the serial result set's count, with
  // sink calls serialized (a plain CollectingSink is safe), across worker
  // counts including the degenerate single-worker pool (leader-only).
  const VertexId n = 40;
  const Graph base = ErdosRenyi(n, 260, /*seed=*/9);
  const Query heavy{0, n - 1, 5};
  const PathSet expected = Reference(base, heavy);
  for (const uint32_t workers : {1u, 3u}) {
    AsyncEngineOptions opts;
    opts.num_workers = workers;
    AsyncEngine engine(base, opts);
    CollectingSink sink;
    QueryTicket ticket =
        engine.Submit(heavy, sink, SubmitOptions{.split_branches = true});
    const QueryStats& stats = ticket.Wait();
    ASSERT_TRUE(ticket.ok()) << ticket.error();
    EXPECT_EQ(ToSet(sink.paths()), expected) << workers << " workers";
    EXPECT_EQ(stats.counters.num_results, expected.size());
    EXPECT_EQ(stats.method, Method::kDfs);
  }
}

TEST(AsyncEngineTest, SplitTicketExactLimitNeverDeliversLimitPlusOne) {
  // The per-ticket stop latch at the merge barrier: delivered == limit,
  // never limit + 1, and the flags match the serial path's semantics.
  const VertexId n = 40;
  const Graph base = ErdosRenyi(n, 260, /*seed=*/9);
  const Query heavy{0, n - 1, 5};
  const uint64_t full = Reference(base, heavy).size();
  ASSERT_GT(full, 2u);
  AsyncEngineOptions opts;
  opts.num_workers = 3;
  AsyncEngine engine(base, opts);
  for (const uint64_t limit : {full, full - 1, uint64_t{1}}) {
    CountingSink sink;
    EnumOptions query_opts;
    query_opts.result_limit = limit;
    QueryTicket ticket = engine.Submit(
        heavy, sink,
        SubmitOptions{.query = query_opts, .split_branches = true});
    const QueryStats& stats = ticket.Wait();
    ASSERT_TRUE(ticket.ok()) << ticket.error();
    EXPECT_EQ(sink.count(), limit) << "limit=" << limit;
    EXPECT_EQ(stats.counters.num_results, limit);
    EXPECT_TRUE(stats.counters.hit_result_limit);
    EXPECT_FALSE(stats.counters.stopped_by_sink);
  }
  // And the sink-stop side of the latch: a quitting sink ends the whole
  // fan-out without further deliveries.
  CollectingSink quitter(/*max_paths=*/2);
  QueryTicket ticket =
      engine.Submit(heavy, quitter, SubmitOptions{.split_branches = true});
  const QueryStats& stats = ticket.Wait();
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(quitter.paths().size(), 2u);
  EXPECT_TRUE(stats.counters.stopped_by_sink);
}

TEST(AsyncEngineTest, HeavySplitQueryRacingUpdateStormStaysConsistent) {
  // One heavy split ticket races an update storm: every branch unit must
  // observe exactly one snapshot version — the ticket's — so the delivered
  // count must equal the serial answer of exactly that version. The
  // versions are built so that each one has a distinct answer; a fan-out
  // mixing two snapshots would produce a count belonging to no version.
  // (Runs under TSan in CI via the `parallel` ctest label.)
  const VertexId n = 26;
  const Graph base = ErdosRenyi(n, 120, /*seed=*/41);
  const Query heavy{0, n - 1, 5};

  constexpr int kEpochs = 8;
  std::vector<GraphDelta> deltas;
  std::vector<uint64_t> expected;  // expected[v] = serial answer at version v
  {
    GraphView view(base);
    expected.push_back(BruteForcePaths(base, heavy).size());
    Rng rng(77);
    for (int e = 0; e < kEpochs; ++e) {
      GraphDelta d;
      // Insert-only churn biased toward the query's neighborhood keeps the
      // per-version answers strictly increasing => pairwise distinct.
      for (int i = 0; i < 3; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        d.Insert(u, v);
      }
      d.Insert(static_cast<VertexId>(rng.NextBounded(n)), n - 1);
      deltas.push_back(d);
      view = view.Apply(d, e + 1);
      expected.push_back(BruteForcePaths(view.Materialize(), heavy).size());
    }
  }

  AsyncEngineOptions opts;
  opts.num_workers = 3;
  AsyncEngine engine(base, opts);

  std::vector<CountingSink> sinks(kEpochs + 1);
  std::vector<QueryTicket> tickets;
  tickets.push_back(engine.Submit(
      heavy, sinks[0], SubmitOptions{.split_branches = true}));
  for (int e = 0; e < kEpochs; ++e) {
    engine.SubmitUpdate(deltas[e]);
    tickets.push_back(engine.Submit(
        heavy, sinks[e + 1], SubmitOptions{.split_branches = true}));
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    const QueryStats& stats = tickets[i].Wait();
    ASSERT_TRUE(tickets[i].ok()) << tickets[i].error();
    const uint64_t version = tickets[i].snapshot_version();
    ASSERT_LT(version, expected.size());
    ASSERT_EQ(stats.counters.num_results, expected[version])
        << "split ticket " << i << " mixed snapshots (version " << version
        << ")";
    ASSERT_EQ(sinks[i].count(), expected[version]);
  }
  EXPECT_EQ(engine.stats().updates, static_cast<uint64_t>(kEpochs));
}

TEST(AsyncEngineTest, ThrowingSinkFailsSplitTicketWithoutKillingWorkers) {
  // A sink throwing mid-fan-out must fail just that ticket (like the plain
  // path does), leave no helper stranded at the merge barrier, and keep
  // every pool worker alive for later traffic.
  class ThrowingSink : public PathSink {
   public:
    bool OnPath(std::span<const VertexId>) override {
      throw std::runtime_error("sink exploded");
    }
  };
  const VertexId n = 30;
  const Graph base = ErdosRenyi(n, 160, /*seed=*/3);
  const Query heavy{0, n - 1, 5};
  const uint64_t expected = BruteForcePaths(base, heavy).size();
  ASSERT_GT(expected, 0u);

  AsyncEngineOptions opts;
  opts.num_workers = 3;
  AsyncEngine engine(base, opts);
  for (int round = 0; round < 3; ++round) {
    ThrowingSink bad;
    QueryTicket broken =
        engine.Submit(heavy, bad, SubmitOptions{.split_branches = true});
    broken.Wait();
    EXPECT_FALSE(broken.ok());
    EXPECT_NE(broken.error().find("sink exploded"), std::string::npos);
    // The engine must still serve split and plain tickets afterwards.
    CountingSink good_split, good_plain;
    QueryTicket t1 =
        engine.Submit(heavy, good_split, SubmitOptions{.split_branches = true});
    QueryTicket t2 = engine.Submit(heavy, good_plain);
    EXPECT_EQ(t1.Wait().counters.num_results, expected);
    EXPECT_EQ(t2.Wait().counters.num_results, expected);
  }
  engine.Drain();
}

TEST(AsyncEngineTest, SplitAndPlainTicketsInterleaveSafely) {
  // Split tickets recruiting idle workers must not wedge or corrupt the
  // plain traffic sharing the queue.
  const VertexId n = 30;
  const Graph base = ErdosRenyi(n, 140, /*seed=*/23);
  const Query heavy{0, n - 1, 5};
  const Query light{1, n - 2, 3};
  const uint64_t heavy_expected = BruteForcePaths(base, heavy).size();
  const uint64_t light_expected = BruteForcePaths(base, light).size();

  AsyncEngineOptions opts;
  opts.num_workers = 3;
  AsyncEngine engine(base, opts);
  std::vector<CountingSink> sinks(24);
  std::vector<QueryTicket> tickets;
  for (size_t i = 0; i < sinks.size(); ++i) {
    const bool split = i % 3 == 0;
    tickets.push_back(engine.Submit(
        split ? heavy : light, sinks[i],
        SubmitOptions{.split_branches = split}));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const QueryStats& stats = tickets[i].Wait();
    ASSERT_TRUE(tickets[i].ok()) << tickets[i].error();
    EXPECT_EQ(stats.counters.num_results,
              i % 3 == 0 ? heavy_expected : light_expected)
        << "ticket " << i;
  }
  engine.Drain();
  EXPECT_EQ(engine.stats().executed, tickets.size());
}

TEST(AsyncEngineTest, UnaffectedKeysKeepCacheHitsAcrossUpdates) {
  // Hot query far from the churn: after warming, updates elsewhere must not
  // cost its cached index (the whole point of incremental invalidation).
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 19; ++v) edges.push_back({v, v + 1});
  for (VertexId v = 20; v < 39; ++v) edges.push_back({v, v + 1});
  Graph g = Graph::FromEdges(40, edges);

  AsyncEngineOptions opts;
  opts.num_workers = 1;
  AsyncEngine engine(std::move(g), opts);
  const Query hot{0, 6, 6};  // in the first component

  CountingSink warm1, warm2;
  engine.Submit(hot, warm1).Wait();
  engine.Submit(hot, warm2).Wait();  // now cached (admission default is 1)

  for (int e = 0; e < 5; ++e) {
    // Churn strictly inside the second component.
    engine.SubmitUpdate(GraphDelta{}
                            .Insert(25, static_cast<VertexId>(30 + e))
                            .Delete(24, 25));
    CountingSink sink;
    const QueryTicket t = engine.Submit(hot, sink);
    t.Wait();
    ASSERT_TRUE(t.ok());
  }
  const IndexCacheStats cache = engine.stats().cache;
  // Every post-warm-up query of the hot key replayed from cache.
  EXPECT_GE(cache.result_hits + cache.index_hits, 5u);
  EXPECT_EQ(cache.invalidation_evictions, 0u);
}

TEST(AsyncEngineTest, OracleCertifiedUnsatisfiableNeverQueues) {
  // Two disconnected path components.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 9; ++v) edges.push_back({v, v + 1});
  for (VertexId v = 10; v < 19; ++v) edges.push_back({v, v + 1});
  AsyncEngineOptions opts;
  opts.num_workers = 1;
  opts.enable_oracle = true;
  opts.oracle.background_relabel = false;
  AsyncEngine engine(Graph::FromEdges(20, edges), opts);
  ASSERT_NE(engine.oracle(), nullptr);

  CountingSink unsat_sink;
  QueryTicket unsat = engine.Submit(Query{0, 15, 6}, unsat_sink);
  const QueryStats& stats = unsat.Wait();
  EXPECT_TRUE(unsat.ok()) << unsat.error();
  EXPECT_EQ(unsat.state(), QueryState::kUnsatisfiable);
  EXPECT_TRUE(stats.counters.oracle_rejected);
  EXPECT_EQ(stats.counters.num_results, 0u);
  EXPECT_EQ(unsat_sink.count(), 0u);
  EXPECT_EQ(unsat.snapshot_version(), 0u);
  EXPECT_EQ(engine.stats().oracle_rejects, 1u);
  EXPECT_EQ(engine.stats().submitted, 1u);
  EXPECT_EQ(engine.stats().executed, 0u);  // never queued, never ran
#if PATHENUM_OBS
  // The observability contract holds for the shed: a finished span with
  // the terminal state, not a silent drop.
  EXPECT_EQ(unsat.span().state, QueryState::kUnsatisfiable);
#endif

  // Satisfiable queries pass the same gate untouched.
  CountingSink ok_sink;
  QueryTicket fine = engine.Submit(Query{0, 5, 6}, ok_sink);
  fine.Wait();
  EXPECT_EQ(fine.state(), QueryState::kOk);
  EXPECT_EQ(ok_sink.count(), 1u);

  // TrySubmit sheds through the same gate with a valid ticket.
  CountingSink try_sink;
  QueryTicket tried = engine.TrySubmit(Query{0, 15, 6}, try_sink);
  ASSERT_TRUE(tried.valid());
  tried.Wait();
  EXPECT_EQ(tried.state(), QueryState::kUnsatisfiable);
  EXPECT_EQ(engine.stats().oracle_rejects, 2u);

  // An update connecting the pair lifts the rejection in the same epoch:
  // the oracle rides SubmitUpdate, so the query must now run and find its
  // new path — the never-wrongly-reject contract across updates.
  engine.SubmitUpdate(GraphDelta{}.Insert(5, 15));
  CountingSink bridged;
  QueryTicket after = engine.Submit(Query{0, 15, 6}, bridged);
  after.Wait();
  EXPECT_EQ(after.state(), QueryState::kOk);
  EXPECT_EQ(bridged.count(), 1u);  // 0-1-2-3-4-5-15
  EXPECT_EQ(engine.stats().oracle_rejects, 2u);  // no new rejection
}

TEST(AsyncEngineTest, OracleUnderUpdateStormMatchesPerVersionTruth) {
  // The oracle-on engine under a concurrent update storm: every ticket —
  // shed or executed — must report exactly its snapshot version's true
  // count, and a kUnsatisfiable ticket's version must truly have zero
  // results. (Run under TSan in CI via the `parallel` ctest label.)
  const VertexId n = 24;
  const Graph base = ErdosRenyi(n, 40, /*seed=*/61);  // sparse: many unsat
  const Query qa{0, n - 2, 4};
  const Query qb{1, n - 1, 4};

  constexpr int kEpochs = 10;
  std::vector<GraphDelta> deltas;
  std::vector<uint64_t> expected_a, expected_b;
  {
    Rng rng(99);
    GraphView view(base);
    expected_a.push_back(BruteForcePaths(base, qa).size());
    expected_b.push_back(BruteForcePaths(base, qb).size());
    for (int e = 0; e < kEpochs; ++e) {
      GraphDelta d;
      for (int i = 0; i < 5; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (rng.NextBounded(3) == 0) {
          d.Delete(u, v);
        } else {
          d.Insert(u, v);
        }
      }
      deltas.push_back(d);
      view = view.Apply(d, e + 1);
      expected_a.push_back(BruteForcePaths(view.Materialize(), qa).size());
      expected_b.push_back(BruteForcePaths(view.Materialize(), qb).size());
    }
  }

  AsyncEngineOptions opts;
  opts.num_workers = 3;
  opts.enable_oracle = true;
  opts.oracle.background_relabel = false;
  opts.oracle.relabel_budget = 8;  // fold labels mid-storm
  AsyncEngine engine(base, opts);

  std::vector<CountingSink> sinks(160);
  std::vector<QueryTicket> tickets(sinks.size());
  std::atomic<size_t> next{0};
  std::thread submitter([&] {
    for (size_t i = 0; i < sinks.size() / 2; ++i) {
      const size_t slot = next.fetch_add(1);
      tickets[slot] = engine.Submit(slot % 2 == 0 ? qa : qb, sinks[slot]);
    }
  });
  for (const GraphDelta& d : deltas) {
    for (int i = 0; i < 8; ++i) {
      const size_t slot = next.fetch_add(1);
      tickets[slot] = engine.Submit(slot % 2 == 0 ? qa : qb, sinks[slot]);
    }
    engine.SubmitUpdate(d);
  }
  submitter.join();

  const size_t used = next.load();
  for (size_t i = 0; i < used; ++i) {
    const QueryStats& stats = tickets[i].Wait();
    ASSERT_TRUE(tickets[i].ok()) << tickets[i].error();
    const uint64_t version = tickets[i].snapshot_version();
    const std::vector<uint64_t>& expected =
        i % 2 == 0 ? expected_a : expected_b;
    ASSERT_LT(version, expected.size());
    ASSERT_EQ(stats.counters.num_results, expected[version])
        << "ticket " << i << " on version " << version;
    if (tickets[i].state() == QueryState::kUnsatisfiable) {
      ASSERT_EQ(expected[version], 0u)
          << "ticket " << i << " wrongly rejected at version " << version;
    }
  }
  EXPECT_GT(engine.stats().oracle_rejects, 0u);  // the gate actually fired
}

}  // namespace
}  // namespace pathenum
