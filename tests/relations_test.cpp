// Tests for the join-model relations and the full reducer (paper Alg. 2),
// including the paper's propositions: Prop. 4.2 (reduced relations are
// dangling-free) and Appendix B (the light-weight index prunes exactly as
// well as the full reducer).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/index.h"
#include "core/reference.h"
#include "core/relations.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::kS;
using testing::kT;
using testing::kV0;
using testing::kV1;
using testing::kV2;
using testing::kV3;
using testing::kV4;
using testing::kV5;
using testing::kV6;

using TupleSet = std::set<std::pair<VertexId, VertexId>>;

TupleSet ToTupleSet(const Relation& r) { return TupleSet(r.begin(), r.end()); }

/// Pads every Definition-2.1 walk to k+1 vertices with trailing t's — the
/// tuples of Q per Lemmas A.1/A.2.
std::vector<std::vector<VertexId>> PaddedWalks(const Graph& g,
                                               const Query& q) {
  auto walks = BruteForceWalks(g, q);
  for (auto& w : walks) w.resize(q.hops + 1, q.target);
  return walks;
}

TEST(RelationsTest, InitialRelationsMatchFigure3a) {
  const Graph g = testing::PaperExampleGraph();
  const RelationSet rs = BuildRelations(g, testing::PaperExampleQuery());
  ASSERT_EQ(rs.relations.size(), 4u);
  EXPECT_EQ(ToTupleSet(rs.relations[0]),
            (TupleSet{{kS, kV0}, {kS, kV1}, {kS, kV3}}));
  // R2 = R3: all edges of G - {s} with source != t, plus (t,t). The example
  // graph additionally contains (v6, v7), absent from Figure 3a's table
  // because the figure's graph drawing omits v7's edge list; the full
  // reducer removes it immediately.
  const TupleSet middle = ToTupleSet(rs.relations[1]);
  EXPECT_EQ(middle, ToTupleSet(rs.relations[2]));
  EXPECT_TRUE(middle.count({kV0, kV1}));
  EXPECT_TRUE(middle.count({kV5, kT}));
  EXPECT_TRUE(middle.count({kT, kT}));
  EXPECT_FALSE(middle.count({kS, kV0})) << "no edges out of s in the middle";
  EXPECT_EQ(ToTupleSet(rs.relations[3]),
            (TupleSet{{kV0, kT}, {kV2, kT}, {kV5, kT}, {kT, kT}}));
}

TEST(RelationsTest, FullReduceMatchesFigure3c) {
  const Graph g = testing::PaperExampleGraph();
  RelationSet rs = BuildRelations(g, testing::PaperExampleQuery());
  FullReduce(rs);
  // Figure 3c's final relations.
  EXPECT_EQ(ToTupleSet(rs.relations[0]),
            (TupleSet{{kS, kV0}, {kS, kV1}, {kS, kV3}}));
  // Note R2 loses its (t,t) tuple: with no edge (s,t) in R1, no walk can sit
  // at t in position 1, so the padding tuple itself is dangling there.
  EXPECT_EQ(ToTupleSet(rs.relations[1]),
            (TupleSet{{kV0, kV1}, {kV0, kV6}, {kV0, kT}, {kV1, kV2},
                      {kV3, kV4}}));
  EXPECT_EQ(ToTupleSet(rs.relations[2]),
            (TupleSet{{kV1, kV2}, {kV2, kV0}, {kV2, kT}, {kV4, kV5},
                      {kV6, kV0}, {kT, kT}}));
  EXPECT_EQ(ToTupleSet(rs.relations[3]),
            (TupleSet{{kV0, kT}, {kV2, kT}, {kV5, kT}, {kT, kT}}));
}

TEST(RelationsTest, Example41PrunedTuples) {
  // Example 4.1 names two pruned tuples: (v4, v5) leaves R2 in the forward
  // sweep and (v1, v3) leaves R3 in the backward sweep.
  const Graph g = testing::PaperExampleGraph();
  RelationSet rs = BuildRelations(g, testing::PaperExampleQuery());
  ASSERT_TRUE(ToTupleSet(rs.relations[1]).count({kV4, kV5}));
  ASSERT_TRUE(ToTupleSet(rs.relations[2]).count({kV1, kV3}));
  FullReduce(rs);
  EXPECT_FALSE(ToTupleSet(rs.relations[1]).count({kV4, kV5}));
  EXPECT_FALSE(ToTupleSet(rs.relations[2]).count({kV1, kV3}));
}

TEST(RelationsTest, KEqualsOneIsJustR1) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}});
  const RelationSet rs = BuildReducedRelations(g, {0, 2, 1});
  ASSERT_EQ(rs.relations.size(), 1u);
  EXPECT_EQ(ToTupleSet(rs.relations[0]), (TupleSet{{0, 1}, {0, 2}}));
}

TEST(RelationsTest, TotalTuplesCounts) {
  const Graph g = testing::PaperExampleGraph();
  RelationSet rs = BuildRelations(g, testing::PaperExampleQuery());
  const uint64_t before = rs.TotalTuples();
  FullReduce(rs);
  EXPECT_LT(rs.TotalTuples(), before);
  EXPECT_GT(rs.TotalTuples(), 0u);
}

// Prop. 4.2: after full reduction, every tuple of R_i appears in at least
// one padded walk of Q at positions (i-1, i) — and conversely.
class RelationsDanglingFreeTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RelationsDanglingFreeTest, ReducedTuplesExactlyCoverWalks) {
  const uint64_t seed = GetParam();
  const Graph g = ErdosRenyi(24, 110, seed);
  const Query q{static_cast<VertexId>(seed % 24),
                static_cast<VertexId>((seed * 13 + 5) % 24),
                3 + static_cast<uint32_t>(seed % 3)};
  if (q.source == q.target) return;
  RelationSet rs = BuildReducedRelations(g, q);
  const auto walks = PaddedWalks(g, q);

  // Tuples used by walks, per relation position.
  std::vector<TupleSet> used(q.hops);
  for (const auto& w : walks) {
    for (uint32_t i = 1; i <= q.hops; ++i) {
      used[i - 1].insert({w[i - 1], w[i]});
    }
  }
  for (uint32_t i = 0; i < q.hops; ++i) {
    EXPECT_EQ(ToTupleSet(rs.relations[i]), used[i])
        << "relation R_" << (i + 1) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationsDanglingFreeTest,
                         ::testing::Range<uint64_t>(1, 13));

// Appendix B: for every v in the sources of reduced R_i (v != t),
// R_i(v) == I_t(v, k - i).
class PruningPowerTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PruningPowerTest, IndexEqualsFullReducer) {
  const uint64_t seed = GetParam();
  const Graph g = RMat(5, 140, seed);  // 32 vertices
  const Query q{static_cast<VertexId>(seed % 32),
                static_cast<VertexId>((seed * 7 + 9) % 32),
                3 + static_cast<uint32_t>(seed % 4)};
  if (q.source == q.target) return;
  const RelationSet rs = BuildReducedRelations(g, q);
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);

  for (uint32_t i = 1; i <= q.hops; ++i) {
    // Group R_i by source.
    std::map<VertexId, std::multiset<VertexId>> by_source;
    for (const auto& [u, v] : rs.relations[i - 1]) {
      by_source[u].insert(v);
    }
    for (const auto& [v, dests] : by_source) {
      if (v == q.target) continue;  // the (t,t) padding row
      const auto got = idx.OutVerticesWithin(v, q.hops - i);
      EXPECT_EQ(std::multiset<VertexId>(got.begin(), got.end()), dests)
          << "R_" << i << " source " << v << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningPowerTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(RelationsTest, SharedSemijoinScratchMatchesLocal) {
  // The reducer's epoch-stamped scratch must behave identically whether it
  // is call-local or reused (a worker context reducing many queries) — and
  // the stamp array must stop growing once it covers the graph.
  SemijoinScratch scratch;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = ErdosRenyi(40, 250, seed);
    for (uint32_t k = 2; k <= 5; ++k) {
      const Query q{0, 1 + static_cast<VertexId>(seed), k};
      RelationSet with_scratch = BuildRelations(g, q);
      FullReduce(with_scratch, &scratch);
      const RelationSet reference = BuildReducedRelations(g, q);
      ASSERT_EQ(with_scratch.relations.size(), reference.relations.size());
      for (size_t i = 0; i < reference.relations.size(); ++i) {
        EXPECT_EQ(ToTupleSet(with_scratch.relations[i]),
                  ToTupleSet(reference.relations[i]))
            << "R_" << i + 1 << " seed=" << seed << " k=" << k;
      }
    }
  }
  EXPECT_EQ(scratch.stamp.size(), 40u);
  EXPECT_GT(scratch.epoch, 0u);
}

TEST(PruningPowerTest, PaperExampleExplicit) {
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  const RelationSet rs = BuildReducedRelations(g, q);
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  // R_2 sources after reduction: v0, v1, v3 (and the t pad row).
  const auto v0_r2 = idx.OutVerticesWithin(kV0, 2);
  EXPECT_EQ(std::set<VertexId>(v0_r2.begin(), v0_r2.end()),
            (std::set<VertexId>{kV1, kV6, kT}));
  // Theorem 3.1 end-to-end: walks of Q == padded brute-force walks.
  const auto walks = PaddedWalks(g, q);
  EXPECT_EQ(walks.size(), 6u);
  (void)rs;
}

}  // namespace
}  // namespace pathenum
