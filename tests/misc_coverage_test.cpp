// Remaining small-surface coverage: memory helpers, deadline boundaries,
// stats counters of each baseline, GenericDFS/BC-DFS field population, and
// regression guards for subtle invariants found during development.
#include <gtest/gtest.h>

#include <limits>

#include "baselines/algorithm.h"
#include "core/estimator.h"
#include "core/path_enum.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/memory.h"
#include "util/timer.h"

namespace pathenum {
namespace {

TEST(MemoryHelpersTest, VectorBytesUsesCapacity) {
  std::vector<uint32_t> v;
  v.reserve(100);
  v.push_back(1);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(uint32_t));
  EXPECT_DOUBLE_EQ(BytesToMiB(1024 * 1024), 1.0);
  EXPECT_DOUBLE_EQ(BytesToMiB(0), 0.0);
}

TEST(DeadlineBoundaryTest, NegativeBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::AfterMs(-5.0).Expired());
}

TEST(DeadlineBoundaryTest, GenerousBudgetDoesNotExpire) {
  EXPECT_FALSE(Deadline::AfterMs(1e9).Expired());
}

TEST(QueryValidationTest, EveryFailureMode) {
  const Graph g = PathGraph(4);
  EXPECT_NO_THROW(ValidateQuery(g, {0, 3, 3}));
  EXPECT_THROW(ValidateQuery(g, {4, 0, 3}), std::logic_error);
  EXPECT_THROW(ValidateQuery(g, {0, 4, 3}), std::logic_error);
  EXPECT_THROW(ValidateQuery(g, {2, 2, 3}), std::logic_error);
  EXPECT_THROW(ValidateQuery(g, {0, 3, 0}), std::logic_error);
  EXPECT_THROW(ValidateQuery(g, {0, 3, kMaxHops + 1}), std::logic_error);
}

TEST(BaselineStatsTest, EveryAlgorithmPopulatesCoreFields) {
  const Graph g = testing::PaperExampleGraph();
  for (const std::string name : AllAlgorithmNames()) {
    const auto algo = MakeAlgorithm(name, g);
    CountingSink sink;
    const QueryStats stats =
        algo->Run(testing::PaperExampleQuery(), sink, EnumOptions{});
    EXPECT_EQ(stats.counters.num_results, 5u) << name;
    EXPECT_GT(stats.total_ms, 0.0) << name;
    EXPECT_GT(stats.counters.edges_accessed, 0u) << name;
    EXPECT_TRUE(stats.counters.completed()) << name;
    EXPECT_GT(stats.ThroughputPerSec(), 0.0) << name;
  }
}

TEST(BaselineStatsTest, MethodTagsAreTruthful) {
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  CountingSink sink;
  EXPECT_EQ(MakeAlgorithm("BC-JOIN", g)->Run(q, sink, EnumOptions{}).method,
            Method::kJoin);
  EXPECT_EQ(MakeAlgorithm("IDX-JOIN", g)->Run(q, sink, EnumOptions{}).method,
            Method::kJoin);
  EXPECT_EQ(MakeAlgorithm("BC-DFS", g)->Run(q, sink, EnumOptions{}).method,
            Method::kDfs);
}

TEST(MethodNameTest, StableStrings) {
  EXPECT_EQ(MethodName(Method::kAuto), "Auto");
  EXPECT_EQ(MethodName(Method::kDfs), "IDX-DFS");
  EXPECT_EQ(MethodName(Method::kJoin), "IDX-JOIN");
}

TEST(GenericDfsRegressionTest, StaticPruningEqualsPaperAlgorithmOne) {
  // Alg. 1's static check must prune the v7 dangling branch of the
  // example without ever visiting it: v7 has no path to t.
  const Graph g = testing::PaperExampleGraph();
  const auto algo = MakeAlgorithm("GenericDFS", g);
  CollectingSink sink;
  const QueryStats stats =
      algo->Run(testing::PaperExampleQuery(), sink, EnumOptions{});
  for (const auto& p : sink.paths()) {
    for (const VertexId v : p) EXPECT_NE(v, testing::kV7);
  }
  EXPECT_GT(stats.counters.invalid_partials, 0u)
      << "the walk-only branch (s,v0,v6,...) must register as invalid";
}

TEST(ThroughputAccountingTest, TimedOutQueriesStillReportThroughput) {
  // The paper computes throughput from results found at termination.
  const Graph g = CompleteDigraph(24);
  const auto algo = MakeAlgorithm("IDX-DFS", g);
  CountingSink sink;
  EnumOptions opts;
  opts.time_limit_ms = 20.0;
  const QueryStats stats = algo->Run({0, 23, 8}, sink, opts);
  EXPECT_TRUE(stats.counters.timed_out);
  EXPECT_GT(stats.counters.num_results, 0u);
  EXPECT_GT(stats.ThroughputPerSec(), 0.0);
}

TEST(PlanConsistencyTest, JoinCostNeverBelowTotalWalks) {
  // T_JOIN includes |Q| as its first term, so it lower-bounds at delta_W.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = ErdosRenyi(40, 260, seed);
    const Query q{static_cast<VertexId>(seed % 40),
                  static_cast<VertexId>((seed * 29 + 3) % 40), 5};
    if (q.source == q.target) continue;
    IndexBuilder builder;
    const LightweightIndex idx = builder.Build(g, q);
    const JoinPlan plan = OptimizeJoinOrder(idx);
    EXPECT_GE(plan.t_join, plan.TotalWalks()) << seed;
    if (plan.TotalWalks() > 0) {
      EXPECT_GT(plan.t_dfs, 0.0) << seed;
    }
  }
}

TEST(IndexStatsTest, BuildStatsNestProperly) {
  const Graph g = ErdosRenyi(500, 4000, 2);
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 1, 5});
  EXPECT_GE(idx.build_stats().total_ms, idx.build_stats().bfs_ms);
}

TEST(CollectingSinkLifecycleTest, ReusableAcrossQueries) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CollectingSink sink;  // unbounded
  pe.Run({testing::kS, testing::kT, 2}, sink);
  const size_t after_first = sink.paths().size();
  pe.Run({testing::kS, testing::kT, 4}, sink);
  EXPECT_GT(sink.paths().size(), after_first)
      << "sink accumulates across runs by design";
}

TEST(WalkPathGapTest, Figure5ShapesAsDescribed) {
  // Example 5.2's two regimes: G0-like (all walks are paths) vs G1 (few).
  const Graph g0 = LayeredGraph(3, 2);
  const Query q0{0, static_cast<VertexId>(g0.num_vertices() - 1), 4};
  EXPECT_DOUBLE_EQ(CountWalksDp(g0, q0),
                   static_cast<double>(CountPathsBruteForce(g0, q0)));
  const Graph g1 = testing::Figure5G1();
  const Query q1{0, 7, 4};
  EXPECT_GT(CountWalksDp(g1, q1),
            static_cast<double>(CountPathsBruteForce(g1, q1)) * 5);
}

}  // namespace
}  // namespace pathenum
