// End-to-end integration tests: catalog datasets driven through the full
// PathEnum pipeline and the baselines, the dynamic-graph (cycle detection)
// scenario of Fig. 8, and consistency across repeated sessions.
#include <gtest/gtest.h>

#include <set>

#include "baselines/algorithm.h"
#include "core/path_enum.h"
#include "graph/builder.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/datasets.h"
#include "workload/query_gen.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

/// Shared scaled-down dataset for the heavier tests.
const Graph& EpGraph() {
  static const Graph* g = new Graph(MakeDataset("ep", 0.1));
  return *g;
}

TEST(IntegrationTest, EpWorkloadAllAlgorithmsAgree) {
  const Graph& g = EpGraph();
  QueryGenOptions qopts;
  qopts.count = 6;
  qopts.hops = 4;
  qopts.seed = 5;
  const auto queries = GenerateQueries(g, qopts);
  ASSERT_GT(queries.size(), 0u);
  EnumOptions opts;
  opts.result_limit = 200000;
  for (const Query& q : queries) {
    PathSet reference;
    bool first = true;
    // Fast algorithms only (T-DFS/Yen are checked on small graphs).
    for (const std::string name :
         {"GenericDFS", "BC-DFS", "BC-JOIN", "IDX-DFS", "IDX-JOIN",
          "PathEnum"}) {
      const auto algo = MakeAlgorithm(name, g);
      CollectingSink sink;
      const QueryStats stats = algo->Run(q, sink, opts);
      if (stats.counters.hit_result_limit) return;  // too dense to compare
      const PathSet got = ToSet(sink.paths());
      if (first) {
        reference = got;
        first = false;
      } else {
        EXPECT_EQ(got.size(), reference.size()) << name;
        EXPECT_EQ(got, reference) << name;
      }
    }
  }
}

TEST(IntegrationTest, SessionReuseIsConsistent) {
  const Graph& g = EpGraph();
  PathEnumerator pe(g);
  QueryGenOptions qopts;
  qopts.count = 10;
  qopts.hops = 4;
  qopts.seed = 21;
  const auto queries = GenerateQueries(g, qopts);
  EnumOptions opts;
  opts.result_limit = 50000;
  // Interleave the same queries twice through one session: counts match.
  std::vector<uint64_t> first_counts;
  for (const Query& q : queries) {
    CountingSink sink;
    pe.Run(q, sink, opts);
    first_counts.push_back(sink.count());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    CountingSink sink;
    pe.Run(queries[i], sink, opts);
    EXPECT_EQ(sink.count(), first_counts[i]) << "query " << i;
  }
}

TEST(IntegrationTest, ThroughputAndResponseMetricsPopulated) {
  const Graph& g = EpGraph();
  PathEnumerator pe(g);
  QueryGenOptions qopts;
  qopts.count = 3;
  qopts.hops = 5;
  qopts.seed = 8;
  EnumOptions opts;
  opts.time_limit_ms = 2000.0;
  for (const Query& q : GenerateQueries(g, qopts)) {
    CountingSink sink;
    const QueryStats stats = pe.Run(q, sink, opts);
    if (stats.counters.num_results > 0) {
      EXPECT_GT(stats.ThroughputPerSec(), 0.0);
    }
    EXPECT_GT(stats.total_ms, 0.0);
  }
}

// The Fig. 8 scenario: remove 10% of edges as "updates"; for each update
// edge (v, v'), enumerate the cycles it would close via q(v', v, k-1) on
// the current graph, then apply the update by rebuilding.
TEST(IntegrationTest, DynamicCycleDetectionScenario) {
  const Graph full = MakeDataset("tw", 0.05);
  Rng rng(31);
  // Collect and split the edge set.
  std::vector<std::pair<VertexId, VertexId>> updates;
  GraphBuilder base(full.num_vertices());
  for (VertexId u = 0; u < full.num_vertices(); ++u) {
    for (const VertexId v : full.OutNeighbors(u)) {
      if (updates.size() < 20 && rng.NextBool(0.1)) {
        updates.push_back({u, v});
      } else {
        base.AddEdge(u, v);
      }
    }
  }
  ASSERT_GT(updates.size(), 5u);
  Graph current = base.Build();
  EnumOptions opts;
  opts.result_limit = 10000;
  uint64_t total_cycles = 0;
  for (const auto& [u, v] : updates) {
    // Cycles closed by inserting (u, v): paths v -> u of length <= k-1.
    PathEnumerator pe(current);
    CollectingSink sink;
    if (u != v) {
      pe.Run({v, u, 5}, sink, opts);
      for (const auto& p : sink.paths()) {
        EXPECT_EQ(p.front(), v);
        EXPECT_EQ(p.back(), u);
        EXPECT_LE(p.size(), 6u);
      }
      total_cycles += sink.paths().size();
    }
    // Apply the update (batch rebuild — the supported dynamic pattern).
    GraphBuilder next(current.num_vertices());
    next.AddGraph(current);
    next.AddEdge(u, v);
    current = next.Build();
  }
  EXPECT_EQ(current.num_edges(), full.num_edges());
  (void)total_cycles;  // workload-dependent; zero is legitimate
}

TEST(IntegrationTest, CatalogSmokeAllSmallDatasets) {
  // Every catalog graph (at a small scale) runs one PathEnum query
  // end-to-end without error.
  for (const DatasetSpec& spec : PaperCatalog()) {
    if (spec.name == "tm") continue;  // the scalability graph is big
    const Graph g = MakeDataset(spec, 0.02);
    if (g.num_vertices() < 10) continue;
    QueryGenOptions qopts;
    qopts.count = 1;
    qopts.hops = 4;
    qopts.seed = 13;
    const auto queries = GenerateQueries(g, qopts);
    if (queries.empty()) continue;
    PathEnumerator pe(g);
    CountingSink sink;
    EnumOptions opts;
    opts.time_limit_ms = 2000.0;
    const QueryStats stats = pe.Run(queries[0], sink, opts);
    EXPECT_GE(stats.counters.num_results, 1u)
        << spec.name << ": dist(s,t) <= 3 guarantees a result";
  }
}

TEST(IntegrationTest, HardQueryRespectsTimeLimitAcrossAlgorithms) {
  const Graph g = MakeDataset("ye", 0.05);
  QueryGenOptions qopts;
  qopts.count = 1;
  qopts.hops = 8;
  qopts.seed = 2;
  const auto queries = GenerateQueries(g, qopts);
  if (queries.empty()) GTEST_SKIP() << "no query found";
  EnumOptions opts;
  opts.time_limit_ms = 100.0;
  for (const std::string& name : Table3AlgorithmNames()) {
    const auto algo = MakeAlgorithm(name, g);
    CountingSink sink;
    const QueryStats stats = algo->Run(queries[0], sink, opts);
    EXPECT_LT(stats.total_ms, 5000.0) << name << " ignored the time limit";
  }
}

}  // namespace
}  // namespace pathenum
