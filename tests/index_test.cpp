// Unit tests for the light-weight index (paper Algorithm 3), checked
// against the paper's running example (Figures 1/4) and naive
// recomputation on random graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/index.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "test_util.h"
#include "workload/query_gen.h"

namespace pathenum {
namespace {

using testing::kS;
using testing::kT;
using testing::kV0;
using testing::kV1;
using testing::kV2;
using testing::kV3;
using testing::kV4;
using testing::kV5;
using testing::kV6;
using testing::kV7;

LightweightIndex BuildPaperIndex() {
  IndexBuilder builder;
  return builder.Build(testing::PaperExampleGraph(),
                       testing::PaperExampleQuery());
}

TEST(IndexTest, MembershipMatchesFigure4a) {
  const LightweightIndex idx = BuildPaperIndex();
  // X contains every vertex except v7 (v7 cannot reach t).
  EXPECT_EQ(idx.num_vertices(), 9u);
  for (const VertexId v : {kS, kV0, kV1, kV2, kV3, kV4, kV5, kV6, kT}) {
    EXPECT_TRUE(idx.Contains(v)) << "vertex " << v;
  }
  EXPECT_FALSE(idx.Contains(kV7));
}

TEST(IndexTest, CellX22HoldsV4AndV6) {
  // Example 4.4: X[2,2] = {v4, v6}.
  const LightweightIndex idx = BuildPaperIndex();
  const auto [first, last] = idx.CellSlots(2, 2);
  std::set<VertexId> cell;
  for (uint32_t slot = first; slot < last; ++slot) {
    cell.insert(idx.VertexAt(slot));
  }
  EXPECT_EQ(cell, (std::set<VertexId>{kV4, kV6}));
}

TEST(IndexTest, SlotRoundTripAndDistances) {
  const LightweightIndex idx = BuildPaperIndex();
  for (uint32_t slot = 0; slot < idx.num_vertices(); ++slot) {
    const VertexId v = idx.VertexAt(slot);
    EXPECT_EQ(idx.SlotOf(v), slot);
    EXPECT_LE(idx.DistFromSource(slot) + idx.DistToTarget(slot), 4u);
  }
  EXPECT_EQ(idx.SlotOf(kV7), kInvalidSlot);
  EXPECT_EQ(idx.VertexAt(idx.source_slot()), kS);
  EXPECT_EQ(idx.VertexAt(idx.target_slot()), kT);
}

TEST(IndexTest, Example44NeighborLookup) {
  // I_t(v0, 2) = {t, v1, v6}; I_t(v0, 0) = {t}.
  const LightweightIndex idx = BuildPaperIndex();
  const auto all = idx.OutVerticesWithin(kV0, 2);
  EXPECT_EQ(std::set<VertexId>(all.begin(), all.end()),
            (std::set<VertexId>{kT, kV1, kV6}));
  EXPECT_EQ(idx.OutVerticesWithin(kV0, 0), std::vector<VertexId>{kT});
  EXPECT_EQ(idx.OutVerticesWithin(kV0, 1), std::vector<VertexId>{kT});
}

TEST(IndexTest, OutNeighborsSortedByDistanceToTarget) {
  const LightweightIndex idx = BuildPaperIndex();
  for (uint32_t slot = 0; slot < idx.num_vertices(); ++slot) {
    const auto nbrs = idx.OutSlotsWithin(slot, 4);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LE(idx.DistToTarget(nbrs[i - 1]), idx.DistToTarget(nbrs[i]));
    }
  }
}

TEST(IndexTest, InNeighborsSortedByDistanceFromSource) {
  const LightweightIndex idx = BuildPaperIndex();
  for (uint32_t slot = 0; slot < idx.num_vertices(); ++slot) {
    const auto nbrs = idx.InSlotsWithin(slot, 4);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LE(idx.DistFromSource(nbrs[i - 1]),
                idx.DistFromSource(nbrs[i]));
    }
  }
}

TEST(IndexTest, TargetHasPaddingSelfEntry) {
  const LightweightIndex idx = BuildPaperIndex();
  for (uint32_t b = 0; b <= 4; ++b) {
    EXPECT_EQ(idx.OutVerticesWithin(kT, b), std::vector<VertexId>{kT});
  }
  // The padding entry carries no graph edge.
  const auto edge_ids = idx.OutEdgeIdsWithin(idx.target_slot(), 4);
  ASSERT_EQ(edge_ids.size(), 1u);
  EXPECT_EQ(edge_ids[0], kInvalidEdge);
}

TEST(IndexTest, SourceInListIsEmptyAndTargetInListHasPad) {
  const LightweightIndex idx = BuildPaperIndex();
  EXPECT_TRUE(idx.InVerticesWithin(kS, 4).empty());
  const auto t_in = idx.InVerticesWithin(kT, 4);
  // In-neighbors of t within the index: v0, v2, v5, plus the pad entry t.
  EXPECT_EQ(std::set<VertexId>(t_in.begin(), t_in.end()),
            (std::set<VertexId>{kV0, kV2, kV5, kT}));
  EXPECT_EQ(idx.InVerticesWithin(kT, 1), std::vector<VertexId>{kV0});
}

TEST(IndexTest, SourceNeverAppearsAsOutDestination) {
  // Triangle s <-> a, a -> t: the index must not offer s as an extension.
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {1, 2}});
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 2, 3});
  EXPECT_EQ(idx.OutVerticesWithin(1, 3), std::vector<VertexId>{2});
}

TEST(IndexTest, TargetNeverAppearsAsInSource) {
  // s->1, 1->t, s->2, 2->t, t->2: the in-list of 2 holds s but not t.
  const Graph g =
      Graph::FromEdges(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {3, 2}});
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 3, 3});
  const auto in2 = idx.InVerticesWithin(2, 3);
  EXPECT_EQ(std::set<VertexId>(in2.begin(), in2.end()),
            (std::set<VertexId>{0}));
}

TEST(IndexTest, EdgeCountExcludesPadding) {
  // Hand-counted over the example: 13 admissible out-entries (s:3, v0:3,
  // v1:1, v2:2, v3:1, v4:1, v5:1, v6:1).
  const LightweightIndex idx = BuildPaperIndex();
  EXPECT_EQ(idx.num_edges(), 13u);
}

TEST(IndexTest, StoredConditionIsTight) {
  // v1 -> v3 violates v.s + v'.t + 1 <= k (1 + 3 + 1 > 4) and must be
  // dropped even though both endpoints are in X; v1 -> v2 (1 + 1 + 1)
  // stays. Likewise v5 -> v2 (3 + 1 + 1 > 4) is dropped.
  const LightweightIndex idx = BuildPaperIndex();
  EXPECT_EQ(idx.OutVerticesWithin(kV1, 4), std::vector<VertexId>{kV2});
  EXPECT_EQ(idx.OutVerticesWithin(kV5, 4), std::vector<VertexId>{kT});
}

TEST(IndexTest, OutEdgeIdsMatchGraphEdges) {
  const Graph g = testing::PaperExampleGraph();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, testing::PaperExampleQuery());
  for (uint32_t slot = 0; slot < idx.num_vertices(); ++slot) {
    if (slot == idx.target_slot()) continue;
    const VertexId v = idx.VertexAt(slot);
    const auto nbrs = idx.OutSlotsWithin(slot, 4);
    const auto edges = idx.OutEdgeIdsWithin(slot, 4);
    ASSERT_EQ(nbrs.size(), edges.size());
    for (size_t j = 0; j < nbrs.size(); ++j) {
      EXPECT_EQ(edges[j], g.FindEdge(v, idx.VertexAt(nbrs[j])));
    }
  }
}

TEST(IndexTest, LevelIterationMatchesDefinition) {
  const LightweightIndex idx = BuildPaperIndex();
  const uint32_t k = 4;
  for (uint32_t i = 0; i <= k; ++i) {
    std::set<VertexId> via_levels;
    idx.ForEachSlotInLevel(
        i, [&](uint32_t slot) { via_levels.insert(idx.VertexAt(slot)); });
    std::set<VertexId> expected;
    for (uint32_t slot = 0; slot < idx.num_vertices(); ++slot) {
      if (idx.DistFromSource(slot) <= i && idx.DistToTarget(slot) <= k - i) {
        expected.insert(idx.VertexAt(slot));
      }
    }
    EXPECT_EQ(via_levels, expected) << "level " << i;
    EXPECT_EQ(idx.LevelSize(i), expected.size());
  }
}

TEST(IndexTest, LevelZeroIsSourceOnly) {
  const LightweightIndex idx = BuildPaperIndex();
  EXPECT_EQ(idx.LevelSize(0), 1u);
  idx.ForEachSlotInLevel(0, [&](uint32_t slot) {
    EXPECT_EQ(idx.VertexAt(slot), kS);
  });
  EXPECT_EQ(idx.LevelSize(4), 1u);  // level k is {t}
}

TEST(IndexTest, LevelStatsMatchManualRecount) {
  const LightweightIndex idx = BuildPaperIndex();
  const uint32_t k = 4;
  for (uint32_t j = 0; j < k; ++j) {
    uint64_t count = 0;
    double sum = 0;
    idx.ForEachSlotInLevel(j, [&](uint32_t slot) {
      count++;
      sum += static_cast<double>(idx.OutSlotsWithin(slot, k - j - 1).size());
    });
    EXPECT_EQ(idx.LevelCount(j), count) << "level " << j;
    EXPECT_DOUBLE_EQ(idx.LevelItSum(j), sum) << "level " << j;
  }
}

TEST(IndexTest, UnreachableQueryYieldsEmptyIndex) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 3, 5});
  EXPECT_EQ(idx.num_vertices(), 0u);
  EXPECT_EQ(idx.source_slot(), kInvalidSlot);
  EXPECT_EQ(idx.num_edges(), 0u);
}

TEST(IndexTest, HopBudgetTooSmallYieldsEmptyIndex) {
  const Graph g = PathGraph(6);
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 5, 3});  // dist is 5
  EXPECT_EQ(idx.num_vertices(), 0u);
}

TEST(IndexTest, EdgeFilterShrinksIndex) {
  const Graph g = testing::PaperExampleGraph();
  // Remove v0 -> t: the only length-2 path disappears and distances shift.
  const EdgeFilter filter = [](VertexId u, VertexId v, EdgeId) {
    return !(u == kV0 && v == kT);
  };
  IndexBuilder builder;
  IndexBuildOptions opts;
  opts.filter = &filter;
  const LightweightIndex idx = builder.Build(g, testing::PaperExampleQuery(),
                                             opts);
  const LightweightIndex unfiltered =
      builder.Build(g, testing::PaperExampleQuery());
  EXPECT_LT(idx.num_edges(), unfiltered.num_edges());
  const auto v0_nbrs = idx.OutVerticesWithin(kV0, 4);
  EXPECT_TRUE(std::find(v0_nbrs.begin(), v0_nbrs.end(), kT) ==
              v0_nbrs.end());
}

TEST(IndexTest, MemoryAccountingPositiveAndOrdered) {
  const LightweightIndex idx = BuildPaperIndex();
  EXPECT_GT(idx.MemoryBytes(), 0u);
  EXPECT_GE(idx.build_stats().total_ms, idx.build_stats().bfs_ms);
}

TEST(IndexTest, BuilderReuseAcrossQueries) {
  const Graph g = testing::PaperExampleGraph();
  IndexBuilder builder;
  const LightweightIndex a = builder.Build(g, {kS, kT, 4});
  const LightweightIndex b = builder.Build(g, {kS, kV5, 3});
  const LightweightIndex c = builder.Build(g, {kS, kT, 4});
  EXPECT_EQ(a.num_vertices(), c.num_vertices());
  EXPECT_EQ(a.num_edges(), c.num_edges());
  EXPECT_NE(a.num_vertices(), b.num_vertices());
}

// Randomized consistency: every index invariant recomputed naively.
class IndexRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexRandomTest, MatchesNaiveConstruction) {
  const uint64_t seed = GetParam();
  const Graph g = ErdosRenyi(60, 400, seed);
  const uint32_t k = 3 + static_cast<uint32_t>(seed % 4);
  const Query q{static_cast<VertexId>(seed % 60),
                static_cast<VertexId>((seed * 7 + 13) % 60), k};
  if (q.source == q.target) return;

  DistanceField fs, ft;
  BfsOptions fwd;
  fwd.blocked = q.target;
  fwd.max_depth = k;
  fs.Compute(g, Direction::kForward, q.source, fwd);
  BfsOptions bwd;
  bwd.blocked = q.source;
  bwd.max_depth = k;
  ft.Compute(g, Direction::kBackward, q.target, bwd);

  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);

  // Membership.
  uint32_t expected_members = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const uint32_t ds = fs.Distance(v);
    const uint32_t dt = ft.Distance(v);
    const bool in_x =
        ds != kInfDistance && dt != kInfDistance && ds + dt <= k;
    EXPECT_EQ(idx.Contains(v), in_x) << "vertex " << v;
    if (in_x) expected_members++;
  }
  ASSERT_EQ(idx.num_vertices(), expected_members);

  // Adjacency, for every vertex and bound.
  for (uint32_t slot = 0; slot < idx.num_vertices(); ++slot) {
    const VertexId v = idx.VertexAt(slot);
    EXPECT_EQ(idx.DistFromSource(slot), fs.Distance(v));
    EXPECT_EQ(idx.DistToTarget(slot), ft.Distance(v));
    for (uint32_t b = 0; b <= k; ++b) {
      std::multiset<VertexId> expected;
      if (v == q.target) {
        expected.insert(q.target);  // the padding self-entry
      } else {
        for (const VertexId w : g.OutNeighbors(v)) {
          if (w == q.source) continue;
          const uint32_t dt_w = ft.Distance(w);
          if (dt_w == kInfDistance || dt_w > b) continue;
          if (fs.Distance(v) + dt_w + 1 > k) continue;
          expected.insert(w);
        }
      }
      const auto got_v = idx.OutVerticesWithin(v, b);
      EXPECT_EQ(std::multiset<VertexId>(got_v.begin(), got_v.end()), expected)
          << "v=" << v << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexRandomTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace pathenum
