// The sharded serving tier (DESIGN.md §14): partition invariants, the
// per-shard cache-key salt, and randomized sharded-vs-unsharded
// differentials — static and under update churn — asserting identical
// result sets and exact limit accounting at the router's merge barrier.
#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/reference.h"
#include "engine/index_cache.h"
#include "graph/generators.h"
#include "graph/view.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/shard_engine.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

PathSet RouterCollect(ShardRouter& router, const Query& q,
                      const EnumOptions& opts = {},
                      RouterResult* result_out = nullptr) {
  CollectingSink sink;
  RouterResult r = router.Run(q, sink, opts);
  if (result_out != nullptr) *result_out = r;
  return ToSet(sink.paths());
}

// ---------------------------------------------------------------------------
// Partition invariants
// ---------------------------------------------------------------------------

TEST(GraphPartition, EveryEdgeExactlyOnceInTailShard) {
  const Graph g = ErdosRenyi(120, 700, /*seed=*/7);
  for (const uint32_t shards : {2u, 4u, 8u}) {
    PartitionOptions opts;
    opts.num_shards = shards;
    GraphPartition part = GraphPartitioner::Partition(g, opts);
    ASSERT_EQ(part.num_shards(), shards);
    ASSERT_EQ(part.num_vertices(), g.num_vertices());

    uint64_t total_edges = 0;
    uint64_t cut = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const uint32_t owner = part.ShardOf(u);
      ASSERT_LT(owner, shards);
      for (const VertexId v : g.OutNeighbors(u)) {
        // Tail ownership: (u, v) lives in owner(u)'s subgraph and nowhere
        // else; every shard graph spans the full vertex space.
        for (uint32_t s = 0; s < shards; ++s) {
          ASSERT_EQ(part.ShardGraph(s).num_vertices(), g.num_vertices());
          EXPECT_EQ(part.ShardGraph(s).HasEdge(u, v), s == owner)
              << "edge (" << u << "," << v << ") shard " << s;
        }
        ++total_edges;
        if (part.ShardOf(v) != owner) ++cut;
      }
    }
    uint64_t shard_edge_sum = 0;
    for (uint32_t s = 0; s < shards; ++s) shard_edge_sum += part.EdgesInShard(s);
    EXPECT_EQ(shard_edge_sum, total_edges);
    EXPECT_EQ(part.cut_edges().size(), cut);
  }
}

TEST(GraphPartition, CutListMatchesMapAndIsSorted) {
  const Graph g = BarabasiAlbert(150, 4, /*back_prob=*/0.3, /*seed=*/11);
  PartitionOptions opts;
  opts.num_shards = 4;
  GraphPartition part = GraphPartitioner::Partition(g, opts);
  const auto cut = part.cut_edges();
  for (size_t i = 0; i < cut.size(); ++i) {
    EXPECT_NE(cut[i].tail_shard, cut[i].head_shard);
    EXPECT_EQ(cut[i].tail_shard, part.ShardOf(cut[i].tail));
    EXPECT_EQ(cut[i].head_shard, part.ShardOf(cut[i].head));
    EXPECT_TRUE(g.HasEdge(cut[i].tail, cut[i].head));
    if (i > 0) {
      EXPECT_TRUE(cut[i - 1].tail < cut[i].tail ||
                  (cut[i - 1].tail == cut[i].tail &&
                   cut[i - 1].head < cut[i].head));
    }
  }
}

TEST(GraphPartition, RespectsBalanceCapacity) {
  const Graph g = ErdosRenyi(400, 2400, /*seed=*/3);
  PartitionOptions opts;
  opts.num_shards = 4;
  opts.balance_slack = 1.05;
  GraphPartition part = GraphPartitioner::Partition(g, opts);
  const VertexId cap = static_cast<VertexId>(
      opts.balance_slack * g.num_vertices() / opts.num_shards + 1);
  for (uint32_t s = 0; s < part.num_shards(); ++s) {
    EXPECT_LE(part.VerticesInShard(s), cap);
  }
}

TEST(GraphPartition, SingleShardHasEmptyCut) {
  const Graph g = ErdosRenyi(50, 200, /*seed=*/5);
  PartitionOptions opts;
  opts.num_shards = 1;
  GraphPartition part = GraphPartitioner::Partition(g, opts);
  EXPECT_TRUE(part.cut_edges().empty());
  EXPECT_EQ(part.num_boundary_vertices(), 0u);
  EXPECT_EQ(part.EdgesInShard(0), g.num_edges());
}

// ---------------------------------------------------------------------------
// Cache-key salting (satellite: no (s,t,k,options) aliasing across shards)
// ---------------------------------------------------------------------------

TEST(ShardCacheSalt, NonZeroAndInjective) {
  std::set<uint64_t> seen;
  for (uint64_t gen = 1; gen <= 4; ++gen) {
    for (uint32_t shard = 0; shard < 16; ++shard) {
      const uint64_t salt = ShardCacheSalt(shard, gen);
      EXPECT_NE(salt, 0u);
      EXPECT_TRUE(seen.insert(salt).second)
          << "salt collision at shard " << shard << " gen " << gen;
    }
  }
}

TEST(ShardCacheSalt, SaltedKeyInjectiveAcrossSalts) {
  CacheKey key{/*source=*/3, /*target=*/9, /*hops=*/5, /*fingerprint=*/42};
  // Salt 0 is the identity (unsharded engines are untouched).
  EXPECT_EQ(IndexCache::SaltedKey(key, 0), key);
  const CacheKey a = IndexCache::SaltedKey(key, ShardCacheSalt(0, 1));
  const CacheKey b = IndexCache::SaltedKey(key, ShardCacheSalt(1, 1));
  const CacheKey c = IndexCache::SaltedKey(key, ShardCacheSalt(0, 2));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // s/t/k survive (epoch invalidation predicates match on them).
  EXPECT_EQ(a.source, key.source);
  EXPECT_EQ(a.target, key.target);
  EXPECT_EQ(a.hops, key.hops);
}

TEST(ShardRouter, ShardsGetDistinctSaltsAcrossGenerations) {
  const Graph g = ErdosRenyi(60, 240, /*seed=*/1);
  RouterOptions opts;
  opts.partition.num_shards = 4;
  ShardRouter r1(g, opts);
  ShardRouter r2(g, opts);
  EXPECT_NE(r1.generation(), r2.generation());
  std::set<uint64_t> salts;
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(salts.insert(r1.shard(s).cache_key_salt()).second);
    EXPECT_TRUE(salts.insert(r2.shard(s).cache_key_salt()).second);
  }
}

// ---------------------------------------------------------------------------
// Sharded-vs-unsharded differentials
// ---------------------------------------------------------------------------

TEST(ShardRouter, MatchesBruteForceOnPaperExample) {
  const Graph g = testing::PaperExampleGraph();
  for (const uint32_t shards : {2u, 4u}) {
    RouterOptions opts;
    opts.partition.num_shards = shards;
    ShardRouter router(g, opts);
    RouterResult r;
    const PathSet got = RouterCollect(router, testing::PaperExampleQuery(),
                                      {}, &r);
    EXPECT_EQ(r.state, QueryState::kOk);
    EXPECT_EQ(got, ToSet(BruteForcePaths(g, testing::PaperExampleQuery())));
  }
}

TEST(ShardRouter, RandomizedStaticDifferential) {
  std::mt19937_64 rng(2024);
  const Graph graphs[] = {
      ErdosRenyi(80, 480, /*seed=*/13),
      BarabasiAlbert(90, 3, /*back_prob=*/0.4, /*seed=*/17),
      LayeredGraph(/*layers=*/3, /*width=*/4),
  };
  for (const Graph& g : graphs) {
    for (const uint32_t shards : {2u, 4u, 8u}) {
      RouterOptions opts;
      opts.partition.num_shards = shards;
      ShardRouter router(g, opts);
      std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
      for (int i = 0; i < 12; ++i) {
        Query q{pick(rng), pick(rng), static_cast<uint32_t>(3 + i % 4)};
        if (q.source == q.target) continue;
        RouterResult r;
        const PathSet got = RouterCollect(router, q, {}, &r);
        const PathSet want = ToSet(BruteForcePaths(g, q));
        EXPECT_EQ(got, want) << "q(" << q.source << "," << q.target << ","
                             << q.hops << ") shards=" << shards;
        if (r.state == QueryState::kUnsatisfiable) {
          EXPECT_TRUE(want.empty());
          EXPECT_TRUE(r.stats.counters.oracle_rejected);
        } else {
          EXPECT_EQ(r.state, QueryState::kOk);
        }
        EXPECT_EQ(r.stats.counters.num_results, want.size());
      }
    }
  }
}

TEST(ShardRouter, UpdateChurnDifferential) {
  std::mt19937_64 rng(555);
  const Graph base = ErdosRenyi(70, 380, /*seed=*/23);
  for (const uint32_t shards : {2u, 4u}) {
    RouterOptions opts;
    opts.partition.num_shards = shards;
    ShardRouter router(base, opts);
    GraphView reference(base);
    uint64_t version = 0;
    std::uniform_int_distribution<VertexId> pick(0, base.num_vertices() - 1);
    for (int round = 0; round < 8; ++round) {
      GraphDelta delta;
      for (int i = 0; i < 10; ++i) {
        const VertexId u = pick(rng);
        const VertexId v = pick(rng);
        if (u == v) continue;
        if (rng() % 2 == 0) {
          delta.Insert(u, v);
        } else {
          delta.Delete(u, v);
        }
      }
      ASSERT_TRUE(router.SubmitUpdate(delta).ok());
      reference = reference.Apply(delta, ++version);
      const Graph snapshot = reference.Materialize();
      for (int i = 0; i < 4; ++i) {
        Query q{pick(rng), pick(rng), static_cast<uint32_t>(3 + i)};
        if (q.source == q.target) continue;
        const PathSet got = RouterCollect(router, q);
        EXPECT_EQ(got, ToSet(BruteForcePaths(snapshot, q)))
            << "round " << round << " shards " << shards << " q("
            << q.source << "," << q.target << "," << q.hops << ")";
      }
    }
    EXPECT_EQ(router.stats().updates, 8u);
  }
}

TEST(ShardRouter, DeliveredEqualsLimitAtMergeBarrier) {
  // 4^4 = 256 paths of 5 edges each; the limit must be met exactly —
  // delivered() == limit, never limit +/- 1 — whether the query was
  // delegated or stitched.
  const Graph g = LayeredGraph(/*layers=*/4, /*width=*/4);
  const Query q{0, g.num_vertices() - 1, 5};
  for (const uint32_t shards : {2u, 4u, 8u}) {
    RouterOptions opts;
    opts.partition.num_shards = shards;
    ShardRouter router(g, opts);
    for (const uint64_t limit : {1u, 7u, 100u, 255u}) {
      EnumOptions eopts;
      eopts.result_limit = limit;
      RouterResult r;
      const PathSet got = RouterCollect(router, q, eopts, &r);
      EXPECT_EQ(got.size(), limit) << "shards=" << shards;
      EXPECT_EQ(r.stats.counters.num_results, limit);
      EXPECT_EQ(r.state, QueryState::kTruncated);
      EXPECT_TRUE(r.stats.counters.hit_result_limit);
    }
    // With headroom above the exact path count the run completes.
    EnumOptions eopts;
    eopts.result_limit = 300;
    RouterResult r;
    const PathSet got = RouterCollect(router, q, eopts, &r);
    EXPECT_EQ(got.size(), 256u);
    EXPECT_EQ(r.state, QueryState::kOk);
  }
}

TEST(ShardRouter, UnsatisfiableAndRejectedQueries) {
  // Two disconnected halves: any cross-half query is unsatisfiable.
  GraphBuilder b(20);
  for (VertexId v = 0; v + 1 < 10; ++v) b.AddEdge(v, v + 1);
  for (VertexId v = 10; v + 1 < 20; ++v) b.AddEdge(v, v + 1);
  const Graph g = b.Build();
  RouterOptions opts;
  opts.partition.num_shards = 2;
  ShardRouter router(g, opts);

  CollectingSink sink;
  RouterResult r = router.Run(Query{0, 15, 8}, sink);
  EXPECT_EQ(r.state, QueryState::kUnsatisfiable);
  EXPECT_TRUE(r.stats.counters.oracle_rejected);
  EXPECT_TRUE(sink.paths().empty());

  r = router.Run(Query{3, 3, 4}, sink);
  EXPECT_EQ(r.state, QueryState::kRejected);
  EXPECT_FALSE(r.error.empty());

  r = router.Run(Query{0, g.num_vertices(), 4}, sink);
  EXPECT_EQ(r.state, QueryState::kRejected);
  EXPECT_EQ(router.stats().rejected, 2u);
}

TEST(ShardRouter, PreCancelledStitchedQueryReportsCancelled) {
  const Graph g = ErdosRenyi(100, 900, /*seed=*/31);
  RouterOptions opts;
  opts.partition.num_shards = 4;
  ShardRouter router(g, opts);
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
  for (int i = 0; i < 20; ++i) {
    const Query q{pick(rng), pick(rng), 6};
    if (q.source == q.target) continue;
    CancelToken token = CancelToken::Cancellable();
    token.Cancel();
    EnumOptions eopts;
    eopts.cancel = token;
    CollectingSink sink;
    const RouterResult r = router.Run(q, sink, eopts);
    if (!r.delegated && r.state != QueryState::kUnsatisfiable) {
      EXPECT_EQ(r.state, QueryState::kCancelled);
      EXPECT_TRUE(sink.paths().empty());
    }
  }
}

TEST(ShardRouter, StitchedWorkShowsUpInShardAndRouterStats) {
  const Graph g = ErdosRenyi(120, 1100, /*seed=*/41);
  RouterOptions opts;
  opts.partition.num_shards = 4;
  ShardRouter router(g, opts);
  EXPECT_GT(router.cut_size(), 0u);
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<VertexId> pick(0, g.num_vertices() - 1);
  uint64_t delivered = 0;
  for (int i = 0; i < 25; ++i) {
    const Query q{pick(rng), pick(rng), 5};
    if (q.source == q.target) continue;
    CountingSink sink;
    const RouterResult r = router.Run(q, sink);
    delivered += sink.count();
    EXPECT_EQ(sink.count(), r.stats.counters.num_results);
  }
  const ShardRouter::Stats rs = router.stats();
  EXPECT_GT(rs.queries, 0u);
  EXPECT_EQ(rs.queries, rs.delegated + rs.stitched + rs.unsatisfiable);
  if (rs.stitched > 0) {
    EXPECT_GT(rs.frames_sent, 0u);
    uint64_t emitted = 0;
    uint64_t frames = 0;
    for (uint32_t s = 0; s < router.num_shards(); ++s) {
      emitted += router.shard(s).stats().paths_emitted;
      frames += router.shard(s).stats().frames_processed;
    }
    EXPECT_GT(frames, 0u);
    EXPECT_LE(emitted, delivered);
  }
}

// ---------------------------------------------------------------------------
// Transport frame codec
// ---------------------------------------------------------------------------

TEST(ShardTransport, FrameCodecRoundTrips) {
  PathBlock block;
  const uint32_t p1[] = {0, 3, 7, 9};
  const uint32_t p2[] = {0, 3, 8};
  const uint32_t p3[] = {1, 2};
  block.Append(p1);
  block.Append(p2);
  block.Append(p3);
  const std::vector<uint8_t> frame =
      EncodeFrame(/*query_id=*/99, /*src_shard=*/2, PathBlockView(block));

  FrameHeader header;
  std::vector<PathBlock::Entry> entries;
  std::vector<VertexId> verts;
  ASSERT_TRUE(DecodeFrame(frame, header, entries, verts));
  EXPECT_EQ(header.query_id, 99u);
  EXPECT_EQ(header.src_shard, 2u);
  EXPECT_EQ(header.num_paths, 3u);

  std::vector<std::vector<VertexId>> decoded;
  ForEachPathInBlock(
      PathBlockView(entries.data(), verts.data(), header.num_paths,
                    header.total_path_verts),
      [&](std::span<const VertexId> p) {
        decoded.emplace_back(p.begin(), p.end());
        return true;
      });
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], (std::vector<VertexId>{0, 3, 7, 9}));
  EXPECT_EQ(decoded[1], (std::vector<VertexId>{0, 3, 8}));
  EXPECT_EQ(decoded[2], (std::vector<VertexId>{1, 2}));

  // Truncated frames are rejected, not misread.
  std::vector<uint8_t> cut(frame.begin(), frame.end() - 1);
  EXPECT_FALSE(DecodeFrame(cut, header, entries, verts));
}

}  // namespace
}  // namespace pathenum
