// Tests for the preliminary estimator (Eq. 5) and the full-fledged
// join-order optimizer (Alg. 5). Key property: the "full-fledged estimator"
// is *exact* walk counting over the index, so |Q| must equal delta_W.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "core/index.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

JoinPlan PlanFor(const Graph& g, const Query& q) {
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  return OptimizeJoinOrder(idx);
}

TEST(FullEstimatorTest, PaperExampleWalkCount) {
  // Hand count on Figure 1a with q(s,t,4): the 5 paths plus the walk
  // (s, v0, v6, v0, t) of Example 3.2 — delta_W = 6.
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  const JoinPlan plan = PlanFor(g, q);
  EXPECT_DOUBLE_EQ(plan.TotalWalks(), 6.0);
  EXPECT_DOUBLE_EQ(CountWalksDp(g, q), 6.0);
  EXPECT_EQ(BruteForceWalks(g, q).size(), 6u);
}

TEST(FullEstimatorTest, Figure5G1WalkGap) {
  // Example 5.2's G1: delta_W = 6 but delta_P = 1.
  const Graph g = testing::Figure5G1();
  const Query q{0, 7, 4};
  EXPECT_DOUBLE_EQ(PlanFor(g, q).TotalWalks(), 6.0);
  EXPECT_DOUBLE_EQ(CountWalksDp(g, q), 6.0);
  EXPECT_EQ(CountPathsBruteForce(g, q), 1u);
}

TEST(FullEstimatorTest, LayeredGraphExactCounts) {
  // In a layered diamond every walk is a path: width^layers of them.
  const Graph g = LayeredGraph(3, 3);
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  const JoinPlan plan = PlanFor(g, q);
  EXPECT_DOUBLE_EQ(plan.TotalWalks(), 27.0);
}

TEST(FullEstimatorTest, ForwardBackwardConsistency) {
  // |Q[0:k]| computed forward must equal |Q[0:k]| computed backward.
  const Graph g = testing::PaperExampleGraph();
  const JoinPlan plan = PlanFor(g, testing::PaperExampleQuery());
  ASSERT_EQ(plan.forward_sizes.size(), 5u);
  EXPECT_DOUBLE_EQ(plan.forward_sizes.back(), plan.backward_sizes.front());
  EXPECT_DOUBLE_EQ(plan.forward_sizes.front(), 1.0);  // |Q[0:0]| = |{(s)}|
}

TEST(FullEstimatorTest, CutMinimizesLevelSum) {
  const Graph g = testing::PaperExampleGraph();
  const JoinPlan plan = PlanFor(g, testing::PaperExampleQuery());
  ASSERT_GE(plan.cut, 1u);
  ASSERT_LE(plan.cut, 3u);
  const double chosen =
      plan.forward_sizes[plan.cut] + plan.backward_sizes[plan.cut];
  for (uint32_t i = 1; i < 4; ++i) {
    EXPECT_LE(chosen, plan.forward_sizes[i] + plan.backward_sizes[i]);
  }
}

TEST(FullEstimatorTest, CostFormulas) {
  const Graph g = testing::PaperExampleGraph();
  const JoinPlan plan = PlanFor(g, testing::PaperExampleQuery());
  double t_dfs = 0;
  for (uint32_t i = 1; i <= 4; ++i) t_dfs += plan.forward_sizes[i];
  EXPECT_DOUBLE_EQ(plan.t_dfs, t_dfs);
  double t_join = plan.backward_sizes[0];
  for (uint32_t i = 1; i <= plan.cut; ++i) t_join += plan.forward_sizes[i];
  for (uint32_t i = plan.cut; i <= 4; ++i) t_join += plan.backward_sizes[i];
  EXPECT_DOUBLE_EQ(plan.t_join, t_join);
}

TEST(FullEstimatorTest, EmptyIndexYieldsZeroPlan) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const JoinPlan plan = PlanFor(g, {0, 3, 4});
  EXPECT_EQ(plan.cut, 0u);
  EXPECT_DOUBLE_EQ(plan.TotalWalks(), 0.0);
  EXPECT_FALSE(plan.PreferJoin());
}

class EstimatorRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EstimatorRandomTest, ExactlyCountsWalks) {
  const uint64_t seed = GetParam();
  const Graph g = ErdosRenyi(40, 200, seed);
  for (uint32_t k = 2; k <= 6; ++k) {
    const Query q{static_cast<VertexId>(seed % 40),
                  static_cast<VertexId>((seed * 11 + 3) % 40), k};
    if (q.source == q.target) continue;
    const JoinPlan plan = PlanFor(g, q);
    const double expected = CountWalksDp(g, q);
    EXPECT_DOUBLE_EQ(plan.TotalWalks(), expected)
        << "seed=" << seed << " k=" << k;
    EXPECT_DOUBLE_EQ(plan.forward_sizes.back(), plan.backward_sizes.front());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorRandomTest,
                         ::testing::Range<uint64_t>(1, 16));

// --- Preliminary estimator ---------------------------------------------------

TEST(PreliminaryEstimatorTest, ZeroWhenIndexEmpty) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 3, 4});
  EXPECT_DOUBLE_EQ(EstimateSearchSpace(idx), 0.0);
}

TEST(PreliminaryEstimatorTest, ExactOnUniformFanout) {
  // Layered diamond: every level has identical fan-out, so the average-based
  // estimate is exact: sum_i width^i ... with the final hop to the sink.
  const Graph g = LayeredGraph(2, 3);
  IndexBuilder builder;
  const LightweightIndex idx =
      builder.Build(g, {0, static_cast<VertexId>(g.num_vertices() - 1), 3});
  // Levels: |M1| = 3 (first layer), |M2| = 9, |M3| = 9 (all reach t).
  EXPECT_DOUBLE_EQ(EstimateSearchSpace(idx), 3 + 9 + 9);
}

TEST(PreliminaryEstimatorTest, PositiveAndFiniteOnExample) {
  const Graph g = testing::PaperExampleGraph();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, testing::PaperExampleQuery());
  const double t_hat = EstimateSearchSpace(idx);
  EXPECT_GT(t_hat, 0.0);
  EXPECT_TRUE(std::isfinite(t_hat));
  // A crude sanity bound: the estimate is within two orders of magnitude of
  // the true search-space size (sum over levels of |~M_i| <= k * delta_W).
  EXPECT_LT(t_hat, 100.0 * 4 * 6);
}

TEST(PreliminaryEstimatorTest, GrowsWithHopBudget) {
  const Graph g = ErdosRenyi(200, 3000, 5);
  IndexBuilder builder;
  double prev = 0.0;
  for (uint32_t k = 3; k <= 6; ++k) {
    const LightweightIndex idx = builder.Build(g, {0, 100, k});
    const double t_hat = EstimateSearchSpace(idx);
    EXPECT_GE(t_hat, prev * 0.5) << "estimate should broadly grow with k";
    prev = t_hat;
  }
}

}  // namespace
}  // namespace pathenum
