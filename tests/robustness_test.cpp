// Query-lifecycle robustness tests (DESIGN.md §10): cooperative
// cancellation and deadlines across the serial, split and async front-ends,
// work budgets, terminal-state reporting, overload shedding, Status-based
// ingestion of untrusted graphs/deltas, ThreadPool teardown under load, and
// the deterministic fault-injection harness that drives the failure
// scenarios (slow index builds, allocation failures, mid-block trips).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/control.h"
#include "core/path_enum.h"
#include "core/reference.h"
#include "core/thread_pool.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/view.h"
#include "live/async_engine.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace pathenum {
namespace {

using testing::PaperExampleGraph;
using testing::PaperExampleQuery;
using testing::ToSet;

// Every test must leave the global fault registry clean, or an armed hook
// would leak into unrelated tests sharing the binary.
class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

/// Every delivered path must be a well-formed answer to `q` — the partial-
/// result guarantee: a cancelled/expired run may return fewer paths, never
/// wrong ones and never duplicates.
void ExpectValidPaths(const Graph& g,
                      const std::vector<std::vector<VertexId>>& paths,
                      const Query& q) {
  std::set<std::vector<VertexId>> seen;
  for (const auto& p : paths) {
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), q.source);
    EXPECT_EQ(p.back(), q.target);
    EXPECT_LE(p.size() - 1, q.hops);
    const std::set<VertexId> distinct(p.begin(), p.end());
    EXPECT_EQ(distinct.size(), p.size()) << "path is not simple";
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(p[i], p[i + 1]));
    }
    EXPECT_TRUE(seen.insert(p).second) << "duplicate path delivered";
  }
}

/// Records paths and fires a cancel token once `after` of them arrived,
/// while continuing to accept — cancellation, not a sink stop, must end the
/// run. Split tickets serialize sink calls, so no locking needed.
class CancelAfterSink : public PathSink {
 public:
  CancelAfterSink(CancelToken token, uint64_t after)
      : token_(std::move(token)), after_(after) {}

  bool OnPath(std::span<const VertexId> path) override {
    paths_.emplace_back(path.begin(), path.end());
    if (paths_.size() >= after_) token_.Cancel();
    return true;
  }

  const std::vector<std::vector<VertexId>>& paths() const { return paths_; }

 private:
  CancelToken token_;
  uint64_t after_;
  std::vector<std::vector<VertexId>> paths_;
};

/// Blocks inside OnPath until released — parks an AsyncEngine worker at a
/// deterministic point so tests can fill the admission queue behind it.
class GateSink : public PathSink {
 public:
  bool OnPath(std::span<const VertexId>) override {
    std::unique_lock<std::mutex> lock(mutex_);
    started_ = true;
    started_cv_.notify_all();
    release_cv_.wait(lock, [this] { return released_; });
    return false;  // one path is enough; wind the query down
  }

  void WaitStarted() {
    std::unique_lock<std::mutex> lock(mutex_);
    started_cv_.wait(lock, [this] { return started_; });
  }

  void Release() {
    const std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable started_cv_;
  std::condition_variable release_cv_;
  bool started_ = false;
  bool released_ = false;
};

// ---------------------------------------------------------------------------
// Control primitives
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, NullCancelTokenNeverFires) {
  const CancelToken token;
  EXPECT_FALSE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());
  token.Cancel();  // no-op, not a crash
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.flag(), nullptr);
}

TEST_F(RobustnessTest, CancellableTokenSharesFlagAcrossCopies) {
  const CancelToken token = CancelToken::Cancellable();
  const CancelToken copy = token;
  EXPECT_TRUE(token.can_cancel());
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST_F(RobustnessTest, QueryControlTripPrecedence) {
  QueryControl control;
  EXPECT_EQ(control.Check(0), QueryControl::Trip::kNone);
  control.work_budget_edges = 10;
  EXPECT_EQ(control.Check(10), QueryControl::Trip::kWorkBudget);
  control.deadline = Deadline::AfterMs(0.0);
  EXPECT_EQ(control.Check(10), QueryControl::Trip::kDeadline);
  control.cancel = CancelToken::Cancellable();
  control.cancel.Cancel();
  EXPECT_EQ(control.Check(10), QueryControl::Trip::kCancelled);
}

TEST_F(RobustnessTest, FaultHooksSkipAndCount) {
  int fired = 0;
  fault::Arm(fault::Site::kIoRead, [&fired] { ++fired; },
             /*skip_hits=*/2);
  fault::Hit(fault::Site::kIoRead);
  fault::Hit(fault::Site::kIoRead);
  EXPECT_EQ(fired, 0);  // first two hits pass through
  fault::Hit(fault::Site::kIoRead);
  fault::Hit(fault::Site::kIoRead);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fault::HitCount(fault::Site::kIoRead), 4u);
  fault::Disarm(fault::Site::kIoRead);
  fault::Hit(fault::Site::kIoRead);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fault::HitCount(fault::Site::kIoRead), 0u);
}

// ---------------------------------------------------------------------------
// Serial enumeration: cancellation, deadlines, work budget
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, CancelMidEnumerationDeliversValidPartialResult) {
  const Graph g = LayeredGraph(6, 8);  // 8^6 = 262144 paths
  const Query q{0, g.num_vertices() - 1, 7};
  const CancelToken token = CancelToken::Cancellable();
  CancelAfterSink sink(token, 100);
  EnumOptions opts;
  opts.cancel = token;

  PathEnumerator pe(g);
  const QueryStats stats = pe.Run(q, sink, opts);

  EXPECT_TRUE(stats.counters.cancelled);
  EXPECT_EQ(stats.counters.TerminalState(), QueryState::kCancelled);
  EXPECT_GE(sink.paths().size(), 100u);
  EXPECT_LT(sink.paths().size(), 262144u);
  ExpectValidPaths(g, sink.paths(), q);
}

TEST_F(RobustnessTest, WorkBudgetTruncatesDeterministically) {
  // Polls are countdown-gated (~8192 search steps), so the budget needs a
  // run long enough to reach a poll with the budget already blown.
  const Graph g = LayeredGraph(6, 8);  // 262144 paths
  const Query q{0, g.num_vertices() - 1, 7};
  EnumOptions opts;
  opts.work_budget_edges = 5000;

  PathEnumerator pe(g);
  CollectingSink sink;
  const QueryStats stats = pe.Run(q, sink, opts);

  EXPECT_TRUE(stats.counters.work_exceeded);
  EXPECT_EQ(stats.counters.TerminalState(), QueryState::kTruncated);
  EXPECT_LT(sink.paths().size(), 262144u);
  ExpectValidPaths(g, sink.paths(), q);

  // Clock-free budget: the same query stops at the same point every time.
  PathEnumerator pe2(g);
  CollectingSink sink2;
  const QueryStats stats2 = pe2.Run(q, sink2, opts);
  EXPECT_EQ(stats2.counters.edges_accessed, stats.counters.edges_accessed);
  EXPECT_EQ(sink2.paths().size(), sink.paths().size());
}

TEST_F(RobustnessTest, DeadlineDuringIndexBuildReturnsEmptyWellFormed) {
  // A slow BFS wave (fault hook) against a 1 ms budget: the build itself
  // must trip, returning an empty-but-well-formed result, not enumerate on
  // a half-built index.
  const fault::ScopedFault slow(fault::Site::kIndexBuildWave, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  const Graph g = PaperExampleGraph();
  EnumOptions opts;
  opts.time_limit_ms = 1.0;

  PathEnumerator pe(g);
  CollectingSink sink;
  const QueryStats stats = pe.Run(PaperExampleQuery(), sink, opts);

  EXPECT_TRUE(stats.counters.timed_out);
  EXPECT_EQ(stats.counters.TerminalState(), QueryState::kDeadlineExceeded);
  EXPECT_TRUE(sink.paths().empty());
  EXPECT_EQ(stats.counters.num_results, 0u);
}

TEST_F(RobustnessTest, CancelDuringIndexBuildReportsCancelled) {
  const CancelToken token = CancelToken::Cancellable();
  const fault::ScopedFault trip(fault::Site::kIndexBuildWave,
                                [token] { token.Cancel(); });
  const Graph g = PaperExampleGraph();
  EnumOptions opts;
  opts.cancel = token;

  PathEnumerator pe(g);
  CollectingSink sink;
  const QueryStats stats = pe.Run(PaperExampleQuery(), sink, opts);

  EXPECT_TRUE(stats.counters.cancelled);
  EXPECT_EQ(stats.counters.TerminalState(), QueryState::kCancelled);
  EXPECT_TRUE(sink.paths().empty());
}

TEST_F(RobustnessTest, DeadlineMidJoinMaterializationDeliversValidPrefix) {
  // Force IDX-JOIN and stall tuple materialization: the deadline must trip
  // inside the join, and whatever reached the sink must be real paths.
  const fault::ScopedFault slow(fault::Site::kJoinMaterialize, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  const Graph g = LayeredGraph(4, 6);
  const Query q{0, g.num_vertices() - 1, 5};
  EnumOptions opts;
  opts.method = Method::kJoin;
  opts.time_limit_ms = 1.0;

  PathEnumerator pe(g);
  CollectingSink sink;
  const QueryStats stats = pe.Run(q, sink, opts);

  EXPECT_TRUE(stats.counters.timed_out);
  EXPECT_EQ(stats.counters.TerminalState(), QueryState::kDeadlineExceeded);
  EXPECT_LT(sink.paths().size(), 1296u);
  ExpectValidPaths(g, sink.paths(), q);
}

// ---------------------------------------------------------------------------
// Batch engine: terminal states, rejected queries, split-mode cancellation
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, BatchReportsPerQueryTerminalStates) {
  const Graph g = PaperExampleGraph();
  QueryEngine engine(g, {.num_workers = 2});

  const Query good = PaperExampleQuery();
  const Query bad{g.num_vertices() + 7, 1, 4};  // source out of range
  const Query self{1, 1, 4};                    // source == target
  std::vector<Query> queries = {good, bad, self, good};
  std::vector<CollectingSink> sinks(queries.size());
  std::vector<PathSink*> sink_ptrs;
  for (auto& s : sinks) sink_ptrs.push_back(&s);

  BatchOptions opts;
  opts.query.result_limit = 2;  // the last duplicate: truncated, not kOk
  opts.dedup_identical = false;
  const BatchResult result = engine.RunBatch(queries, sink_ptrs, opts);

  ASSERT_EQ(result.states.size(), queries.size());
  EXPECT_EQ(result.states[0], QueryState::kTruncated);
  EXPECT_EQ(result.states[1], QueryState::kRejected);
  EXPECT_EQ(result.states[2], QueryState::kRejected);
  EXPECT_EQ(result.states[3], QueryState::kTruncated);
  EXPECT_FALSE(result.errors[1].empty());
  EXPECT_FALSE(result.errors[2].empty());
  EXPECT_TRUE(result.errors[0].empty());
  // The rejected queries never ran and did not disturb their neighbors.
  EXPECT_EQ(result.stats[1].counters.num_results, 0u);
  EXPECT_EQ(sinks[0].paths().size(), 2u);
  EXPECT_EQ(sinks[3].paths().size(), 2u);

  BatchOptions full;
  full.dedup_identical = false;
  const BatchResult ok = engine.RunBatch(
      std::vector<Query>{good}, std::vector<PathSink*>{&sinks[1]}, full);
  EXPECT_EQ(ok.states[0], QueryState::kOk);
}

TEST_F(RobustnessTest, CancelRacesSplitFanout) {
  const Graph g = LayeredGraph(6, 8);
  const Query q{0, g.num_vertices() - 1, 7};
  const CancelToken token = CancelToken::Cancellable();
  CancelAfterSink sink(token, 100);

  QueryEngine engine(g, {.num_workers = 4});
  BatchOptions opts;
  opts.query.cancel = token;
  opts.split_branches = true;
  std::vector<Query> queries = {q};
  std::vector<PathSink*> sinks = {&sink};
  const BatchResult result = engine.RunBatch(queries, sinks, opts);

  ASSERT_EQ(result.states.size(), 1u);
  EXPECT_EQ(result.states[0], QueryState::kCancelled);
  EXPECT_TRUE(result.stats[0].counters.cancelled);
  EXPECT_GE(sink.paths().size(), 100u);
  EXPECT_LT(sink.paths().size(), 262144u);
  ExpectValidPaths(g, sink.paths(), q);
}

TEST_F(RobustnessTest, SplitDeadlineDuringBuildShortCircuits) {
  const fault::ScopedFault slow(fault::Site::kIndexBuildWave, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  const Graph g = PaperExampleGraph();
  QueryEngine engine(g, {.num_workers = 2});
  BatchOptions opts;
  opts.query.time_limit_ms = 1.0;
  opts.split_branches = true;
  CollectingSink sink;
  std::vector<Query> queries = {PaperExampleQuery()};
  std::vector<PathSink*> sinks = {&sink};
  const BatchResult result = engine.RunBatch(queries, sinks, opts);

  EXPECT_EQ(result.states[0], QueryState::kDeadlineExceeded);
  EXPECT_TRUE(sink.paths().empty());
}

TEST_F(RobustnessTest, CacheBuildFailureFailsOverAndRecovers) {
  // An "allocation failure" inside the cached build: every query of the
  // batch gets kError (no deadlock — the single-flight latch must be
  // released on the failure path), and once the fault clears the same
  // engine serves the query normally.
  const Graph g = PaperExampleGraph();
  QueryEngine engine(g, {.num_workers = 2, .enable_cache = true});
  const Query q = PaperExampleQuery();
  std::vector<Query> queries = {q, q};
  std::vector<CollectingSink> sinks(2);
  std::vector<PathSink*> sink_ptrs = {&sinks[0], &sinks[1]};
  BatchOptions opts;
  opts.dedup_identical = false;  // both workers race the same cache key

  {
    const fault::ScopedFault boom(fault::Site::kCacheBuild, [] {
      throw std::runtime_error("injected: index allocation failed");
    });
    const BatchResult result = engine.RunBatch(queries, sink_ptrs, opts);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(result.states[i], QueryState::kError);
      EXPECT_FALSE(result.errors[i].empty());
    }
  }

  const BatchResult result = engine.RunBatch(queries, sink_ptrs, opts);
  EXPECT_EQ(result.states[0], QueryState::kOk);
  EXPECT_EQ(result.states[1], QueryState::kOk);
  EXPECT_EQ(ToSet(sinks[0].paths()), ToSet(BruteForcePaths(g, q)));
}

TEST_F(RobustnessTest, InterruptedCachedBuildIsNotPublished) {
  // A deadline-interrupted build must fail over like a throwing one: the
  // query reports kDeadlineExceeded, the stub is never cached, and the next
  // run (fault cleared, no deadline) gets the full result set.
  const Graph g = PaperExampleGraph();
  QueryEngine engine(g, {.num_workers = 1, .enable_cache = true});
  const Query q = PaperExampleQuery();
  std::vector<Query> queries = {q};
  CollectingSink first;
  std::vector<PathSink*> sinks = {&first};

  {
    const fault::ScopedFault slow(fault::Site::kIndexBuildWave, [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    BatchOptions opts;
    opts.query.time_limit_ms = 1.0;
    const BatchResult result = engine.RunBatch(queries, sinks, opts);
    EXPECT_EQ(result.states[0], QueryState::kDeadlineExceeded);
    EXPECT_TRUE(first.paths().empty());
  }

  CollectingSink second;
  sinks[0] = &second;
  const BatchResult result = engine.RunBatch(queries, sinks, {});
  EXPECT_EQ(result.states[0], QueryState::kOk);
  EXPECT_EQ(ToSet(second.paths()), ToSet(BruteForcePaths(g, q)));
}

// ---------------------------------------------------------------------------
// AsyncEngine: per-ticket cancel, shed policies, teardown under load
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, TicketCancelWhileQueuedSkipsExecution) {
  AsyncEngine engine(PaperExampleGraph(),
                     {.num_workers = 1, .max_queue = 8});
  GateSink gate;
  const QueryTicket t1 = engine.Submit(PaperExampleQuery(), gate);
  gate.WaitStarted();  // the only worker is now parked inside q1's sink

  CountingSink counter;
  const QueryTicket t2 = engine.Submit(PaperExampleQuery(), counter);
  t2.Cancel();
  gate.Release();

  t2.Wait();
  EXPECT_EQ(t2.state(), QueryState::kCancelled);
  EXPECT_TRUE(t2.ok());
  EXPECT_EQ(counter.count(), 0u);  // never ran, sink untouched
  EXPECT_TRUE(DeliveredResults(t2.state()));

  t1.Wait();
  EXPECT_EQ(t1.state(), QueryState::kTruncated);  // sink stop
  EXPECT_EQ(engine.stats().cancelled_before_run, 1u);
}

TEST_F(RobustnessTest, TicketCancelWhileRunningWindsDown) {
  const Graph g = LayeredGraph(6, 8);
  AsyncEngine engine(g, {.num_workers = 2});
  const Query q{0, g.num_vertices() - 1, 7};
  const CancelToken token = CancelToken::Cancellable();
  CancelAfterSink sink(token, 100);
  EnumOptions opts;
  opts.cancel = token;  // the ticket shares this token

  const QueryTicket t = engine.Submit(q, sink, opts);
  const QueryStats& stats = t.Wait();

  EXPECT_EQ(t.state(), QueryState::kCancelled);
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(stats.counters.cancelled);
  EXPECT_GE(sink.paths().size(), 100u);
  EXPECT_LT(sink.paths().size(), 262144u);
  ExpectValidPaths(g, sink.paths(), q);
}

TEST_F(RobustnessTest, SplitTicketCancelTerminatesAllUnits) {
  const Graph g = LayeredGraph(6, 8);
  AsyncEngine engine(g, {.num_workers = 4});
  const Query q{0, g.num_vertices() - 1, 7};
  const CancelToken token = CancelToken::Cancellable();
  CancelAfterSink sink(token, 100);
  SubmitOptions opts;
  opts.query.cancel = token;
  opts.split_branches = true;

  const QueryTicket t = engine.Submit(q, sink, opts);
  t.Wait();

  EXPECT_EQ(t.state(), QueryState::kCancelled);
  EXPECT_TRUE(t.ok());
  EXPECT_LT(sink.paths().size(), 262144u);
  ExpectValidPaths(g, sink.paths(), q);
  engine.Drain();  // no stuck units: drain returns
}

TEST_F(RobustnessTest, RejectNewestShedReturnsRetryAfterHint) {
  AsyncEngine engine(PaperExampleGraph(),
                     {.num_workers = 1, .max_queue = 1});
  GateSink gate;
  const QueryTicket t1 = engine.Submit(PaperExampleQuery(), gate);
  gate.WaitStarted();
  CountingSink c2;
  const QueryTicket t2 = engine.Submit(PaperExampleQuery(), c2);  // fills q

  CountingSink c3;
  double retry_after_ms = -1.0;
  const QueryTicket t3 =
      engine.TrySubmit(PaperExampleQuery(), c3, SubmitOptions{},
                       &retry_after_ms);
  EXPECT_FALSE(t3.valid());
  EXPECT_GT(retry_after_ms, 0.0);
  EXPECT_GE(engine.stats().queue_rejects, 1u);

  gate.Release();
  t1.Wait();
  t2.Wait();
  EXPECT_EQ(t2.state(), QueryState::kOk);
}

TEST_F(RobustnessTest, CancelOldestShedEvictsQueuedTicket) {
  AsyncEngineOptions eopts;
  eopts.num_workers = 1;
  eopts.max_queue = 1;
  eopts.shed_policy = AsyncEngineOptions::ShedPolicy::kCancelOldest;
  AsyncEngine engine(PaperExampleGraph(), eopts);

  GateSink gate;
  const QueryTicket t1 = engine.Submit(PaperExampleQuery(), gate);
  gate.WaitStarted();
  CountingSink c2, c3;
  const QueryTicket t2 = engine.Submit(PaperExampleQuery(), c2);  // queued
  const QueryTicket t3 = engine.Submit(PaperExampleQuery(), c3);  // sheds t2

  t2.Wait();  // completed synchronously by the shed, before gate release
  EXPECT_EQ(t2.state(), QueryState::kCancelled);
  EXPECT_EQ(c2.count(), 0u);

  gate.Release();
  t3.Wait();
  EXPECT_EQ(t3.state(), QueryState::kOk);
  EXPECT_GT(c3.count(), 0u);
  EXPECT_EQ(engine.stats().sheds, 1u);
}

TEST_F(RobustnessTest, ShutdownCancelPendingCompletesQueuedAsCancelled) {
  auto engine = std::make_unique<AsyncEngine>(
      PaperExampleGraph(), AsyncEngineOptions{.num_workers = 1,
                                              .max_queue = 8});
  GateSink gate;
  const QueryTicket t1 = engine->Submit(PaperExampleQuery(), gate);
  gate.WaitStarted();
  CountingSink c2, c3;
  const QueryTicket t2 = engine->Submit(PaperExampleQuery(), c2);
  const QueryTicket t3 = engine->Submit(PaperExampleQuery(), c3);

  std::thread shutdown([&engine] { engine->Shutdown(true); });
  // Shutdown(cancel_pending) completes the queued tickets immediately, even
  // while the in-flight query still holds the worker.
  t2.Wait();
  t3.Wait();
  EXPECT_EQ(t2.state(), QueryState::kCancelled);
  EXPECT_EQ(t3.state(), QueryState::kCancelled);
  EXPECT_EQ(c2.count(), 0u);
  EXPECT_EQ(c3.count(), 0u);

  gate.Release();  // let the in-flight query finish; Shutdown can join
  shutdown.join();
  t1.Wait();
  EXPECT_TRUE(DeliveredResults(t1.state()));

  CountingSink c4;
  const QueryTicket t4 = engine->Submit(PaperExampleQuery(), c4);
  t4.Wait();
  EXPECT_EQ(t4.state(), QueryState::kRejected);
  EXPECT_FALSE(t4.ok());
}

TEST_F(RobustnessTest, TrySubmitUpdateValidatesDelta) {
  AsyncEngine engine(PaperExampleGraph(), {.num_workers = 1});
  const uint64_t v0 = engine.version();

  GraphDelta bad;
  bad.Insert(0, 10'000);  // outside the 10-vertex base space
  const Status rejected = engine.TrySubmitUpdate(bad);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.version(), v0);  // nothing applied

  GraphDelta good;
  good.Insert(testing::kV7, testing::kT);
  uint64_t new_version = 0;
  const Status applied = engine.TrySubmitUpdate(good, &new_version);
  EXPECT_TRUE(applied.ok());
  EXPECT_GT(new_version, v0);

  engine.Shutdown();
  const Status after = engine.TrySubmitUpdate(good);
  EXPECT_EQ(after.code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// ThreadPool teardown
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, ThreadPoolShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op, destructor another
}

TEST_F(RobustnessTest, ThreadPoolShutdownUnderLoadRunsPendingGeneration) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  std::thread caller([&] {
    pool.RunOnAllWorkers([&](uint32_t) {
      started.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      finished.fetch_add(1);
    });
  });
  while (started.load() == 0) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  pool.Shutdown();  // races the in-flight generation
  caller.join();    // must unblock normally, all invocations complete
  EXPECT_EQ(finished.load(), 4);
}

// ---------------------------------------------------------------------------
// Untrusted graph ingestion (Status-based I/O)
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, EdgeListMalformedLineReportsLineNumber) {
  std::istringstream in("0 1\nbogus line\n1 2\n");
  const StatusOr<Graph> g = TryReadEdgeList(in);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST_F(RobustnessTest, EdgeListVertexIdOutOfRangeRejected) {
  std::istringstream in("0 4294967295\n");
  const StatusOr<Graph> g = TryReadEdgeList(in);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RobustnessTest, EdgeListMissingWeightColumnRejected) {
  std::istringstream in("0 1 0.5\n1 2\n");
  const StatusOr<Graph> g =
      TryReadEdgeList(in, {.format = EdgeListFormat::kWeighted});
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST_F(RobustnessTest, StrictModeRejectsDuplicatesAndSelfLoops) {
  {
    std::istringstream in("0 1\n0 1\n");
    const StatusOr<Graph> g = TryReadEdgeList(in, {.strict = true});
    ASSERT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("duplicate"), std::string::npos);
  }
  {
    std::istringstream in("1 1\n");
    const StatusOr<Graph> g = TryReadEdgeList(in, {.strict = true});
    ASSERT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("self-loop"), std::string::npos);
  }
  {
    // The same inputs are tolerated (and deduplicated) without strict.
    std::istringstream in("0 1\n0 1\n1 1\n");
    const StatusOr<Graph> g = TryReadEdgeList(in);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().num_edges(), 1u);
  }
}

TEST_F(RobustnessTest, MissingFilesReportNotFound) {
  EXPECT_EQ(TryLoadEdgeList("/nonexistent/graph.txt").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(TryLoadBinary("/nonexistent/graph.bin").status().code(),
            StatusCode::kNotFound);
}

TEST_F(RobustnessTest, ThrowingWrappersStillThrow) {
  std::istringstream in("not a graph\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
  EXPECT_THROW(LoadBinary("/nonexistent/graph.bin"), std::runtime_error);
}

TEST_F(RobustnessTest, BinaryRoundTripThroughStatusApi) {
  const Graph g = PaperExampleGraph();
  const std::string path =
      ::testing::TempDir() + "pathenum_robust_roundtrip.bin";
  SaveBinary(g, path);
  const StatusOr<Graph> loaded = TryLoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.value().num_edges(), g.num_edges());
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, TruncatedBinaryReportsDataLoss) {
  const Graph g = PaperExampleGraph();
  const std::string path =
      ::testing::TempDir() + "pathenum_robust_truncated.bin";
  SaveBinary(g, path);
  std::filesystem::resize_file(path, 12);  // cut inside the header
  const StatusOr<Graph> loaded = TryLoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, ForeignMagicReportsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "pathenum_robust_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[32] = "definitely not a pathenum graph";
    out.write(junk, sizeof(junk));
  }
  const StatusOr<Graph> loaded = TryLoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, CorruptLengthFieldFailsCleanlyInsteadOfAllocating) {
  const Graph g = PaperExampleGraph();
  const std::string path =
      ::testing::TempDir() + "pathenum_robust_badlen.bin";
  SaveBinary(g, path);
  {
    // The sources-array length sits right after magic(8) + vertices(8) +
    // flags(1). Claim ~10^18 edges: the loader must refuse, not allocate.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(17);
    const uint64_t absurd = uint64_t{1} << 60;
    f.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  }
  const StatusOr<Graph> loaded = TryLoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, CheckDeltaRejectsOutOfRangeEndpoints) {
  GraphDelta delta;
  delta.Insert(2, 3).Delete(1, 99);
  EXPECT_TRUE(CheckDelta(delta, 100).ok());
  EXPECT_EQ(CheckDelta(delta, 50).code(), StatusCode::kInvalidArgument);
  delta = GraphDelta{};
  delta.Insert(200, 0);
  EXPECT_EQ(CheckDelta(delta, 100).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Standing live oracle under adverse conditions (DESIGN.md §13)
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, OracleShedStaysSoundUnderFaultsAndCancel) {
  // The oracle's never-wrongly-reject contract must survive the worst of
  // the lifecycle machinery at once: slow faulted index builds, tickets
  // cancelled at random, and an update stream racing the submissions.
  // Every kUnsatisfiable ticket must belong to a version whose true answer
  // is empty; every kOk ticket must report exactly its version's truth;
  // cancelled tickets may deliver any prefix. (Runs under TSan in CI.)
  const VertexId n = 22;
  const Graph base = ErdosRenyi(n, 33, /*seed=*/73);  // sparse: many unsat
  const Query q{0, n - 1, 4};

  constexpr int kEpochs = 8;
  std::vector<GraphDelta> deltas;
  std::vector<uint64_t> expected;
  {
    Rng rng(19);
    GraphView view(base);
    expected.push_back(BruteForcePaths(base, q).size());
    for (int e = 0; e < kEpochs; ++e) {
      GraphDelta d;
      for (int i = 0; i < 4; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (e < kEpochs / 2 && rng.NextBounded(3) == 0) {
          d.Delete(u, v);
        } else {
          d.Insert(u, v);
        }
      }
      // Halfway through, a bridge makes q satisfiable (and the later
      // insert-only epochs keep it so): the stream deterministically
      // exercises both sides of the admission gate.
      if (e == kEpochs / 2) d.Insert(0, 10).Insert(10, n - 1);
      deltas.push_back(d);
      view = view.Apply(d, e + 1);
      expected.push_back(BruteForcePaths(view.Materialize(), q).size());
    }
    ASSERT_EQ(expected.front(), 0u);  // version 0: oracle-rejectable
    ASSERT_GT(expected.back(), 0u);   // final versions: must execute
  }

  const fault::ScopedFault slow(fault::Site::kIndexBuildWave, [] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  AsyncEngineOptions opts;
  opts.num_workers = 2;
  opts.enable_oracle = true;
  opts.oracle.background_relabel = false;
  opts.oracle.relabel_budget = 6;
  AsyncEngine engine(base, opts);

  std::vector<CountingSink> sinks(kEpochs * 6);
  std::vector<QueryTicket> tickets;
  size_t slot = 0;
  for (int e = 0; e < kEpochs; ++e) {
    for (int i = 0; i < 6; ++i, ++slot) {
      tickets.push_back(engine.Submit(q, sinks[slot]));
      if (slot % 3 == 2) tickets.back().Cancel();
    }
    engine.SubmitUpdate(deltas[e]);
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    const QueryStats& stats = tickets[i].Wait();
    ASSERT_TRUE(tickets[i].ok()) << tickets[i].error();
    const uint64_t version = tickets[i].snapshot_version();
    ASSERT_LT(version, expected.size());
    switch (tickets[i].state()) {
      case QueryState::kUnsatisfiable:
        ASSERT_EQ(expected[version], 0u)
            << "ticket " << i << " wrongly rejected at version " << version;
        ASSERT_EQ(stats.counters.num_results, 0u);
        break;
      case QueryState::kOk:
        ASSERT_EQ(stats.counters.num_results, expected[version])
            << "ticket " << i << " on version " << version;
        break;
      case QueryState::kCancelled:
        ASSERT_LE(stats.counters.num_results, expected[version]);
        break;
      default:
        FAIL() << "unexpected terminal state "
               << QueryStateName(tickets[i].state()) << " for ticket " << i;
    }
  }
  // The run must have exercised both sides of the gate.
  engine.Drain();  // ticket completion precedes the executed_ bookkeeping
  const AsyncEngine::Stats st = engine.stats();
  EXPECT_GT(st.oracle_rejects, 0u);
  EXPECT_GT(st.executed, 0u);
}

}  // namespace
}  // namespace pathenum
