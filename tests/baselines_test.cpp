// Tests for every baseline algorithm: GenericDFS, BC-DFS, BC-JOIN, T-DFS,
// Yen — each checked against brute force, plus algorithm-specific
// behaviours (barrier bookkeeping, ascending-length order for Yen, ...).
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/algorithm.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::CollectPaths;
using testing::kS;
using testing::kT;
using testing::PathSet;
using testing::ToSet;

TEST(AlgorithmFactoryTest, KnowsEveryName) {
  const Graph g = testing::PaperExampleGraph();
  for (const std::string& name : AllAlgorithmNames()) {
    const auto algo = MakeAlgorithm(name, g);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), name);
  }
  EXPECT_THROW(MakeAlgorithm("NoSuchAlgorithm", g), std::invalid_argument);
}

TEST(AlgorithmFactoryTest, Table3NamesAreTheFivePaperRows) {
  const auto& names = Table3AlgorithmNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "BC-DFS");
  EXPECT_EQ(names[4], "PathEnum");
}

class BaselineOnExampleTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineOnExampleTest, FindsTheFiveExamplePaths) {
  const Graph g = testing::PaperExampleGraph();
  const auto algo = MakeAlgorithm(GetParam(), g);
  const PathSet expected =
      ToSet(BruteForcePaths(g, testing::PaperExampleQuery()));
  EXPECT_EQ(expected.size(), 5u);
  EXPECT_EQ(CollectPaths(*algo, testing::PaperExampleQuery()), expected);
}

TEST_P(BaselineOnExampleTest, AllKValuesMatchBruteForce) {
  const Graph g = testing::PaperExampleGraph();
  const auto algo = MakeAlgorithm(GetParam(), g);
  for (uint32_t k = 1; k <= 7; ++k) {
    const Query q{kS, kT, k};
    EXPECT_EQ(CollectPaths(*algo, q), ToSet(BruteForcePaths(g, q)))
        << GetParam() << " k=" << k;
  }
}

TEST_P(BaselineOnExampleTest, UnreachableTargetIsEmpty) {
  const Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}});
  const auto algo = MakeAlgorithm(GetParam(), g);
  EXPECT_TRUE(CollectPaths(*algo, {0, 4, 6}).empty());
}

TEST_P(BaselineOnExampleTest, ReportsTimings) {
  const Graph g = testing::PaperExampleGraph();
  const auto algo = MakeAlgorithm(GetParam(), g);
  CountingSink sink;
  const QueryStats stats =
      algo->Run(testing::PaperExampleQuery(), sink, EnumOptions{});
  EXPECT_EQ(stats.counters.num_results, 5u);
  EXPECT_GE(stats.total_ms, 0.0);
  EXPECT_GE(stats.total_ms, stats.enumerate_ms);
  EXPECT_GE(stats.response_ms, 0.0);
  EXPECT_LE(stats.response_ms, stats.total_ms + 1e-9);
  EXPECT_GT(stats.ThroughputPerSec(), 0.0);
}

TEST_P(BaselineOnExampleTest, ResultLimitHonored) {
  const Graph g = LayeredGraph(3, 4);  // 64 paths
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  const auto algo = MakeAlgorithm(GetParam(), g);
  EnumOptions opts;
  opts.result_limit = 5;
  CountingSink sink;
  const QueryStats stats = algo->Run(q, sink, opts);
  EXPECT_EQ(stats.counters.num_results, 5u);
  EXPECT_TRUE(stats.counters.hit_result_limit);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BaselineOnExampleTest,
    ::testing::Values("GenericDFS", "BC-DFS", "BC-JOIN", "T-DFS", "Yen",
                      "IDX-DFS", "IDX-JOIN", "PathEnum"),
    [](const auto& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- Algorithm-specific behaviour -----------------------------------------

TEST(BcDfsTest, BarriersPruneMoreThanStaticDistance) {
  // A trap subgraph: many branches lead into a region that can only exit
  // through a vertex already on the path. BC-DFS must access no more edges
  // than GenericDFS on the same query.
  const Graph g = RMat(6, 250, 12345);
  const Query q{1, 2, 6};
  const auto generic = MakeAlgorithm("GenericDFS", g);
  const auto bc = MakeAlgorithm("BC-DFS", g);
  CountingSink s1, s2;
  const QueryStats gs = generic->Run(q, s1, EnumOptions{});
  const QueryStats bs = bc->Run(q, s2, EnumOptions{});
  EXPECT_EQ(s1.count(), s2.count());
  EXPECT_LE(bs.counters.partials, gs.counters.partials)
      << "barriers must not enlarge the search tree";
}

TEST(BcDfsTest, RepeatedQueriesAreConsistent) {
  // Barrier undo must restore state: the same query run twice through one
  // bound instance returns identical results.
  const Graph g = RMat(6, 300, 7);
  const auto bc = MakeAlgorithm("BC-DFS", g);
  const Query q{3, 5, 5};
  const PathSet first = CollectPaths(*bc, q);
  const PathSet second = CollectPaths(*bc, q);
  EXPECT_EQ(first, second);
}

TEST(BcJoinTest, CutAtMiddlePosition) {
  const Graph g = testing::PaperExampleGraph();
  const auto bc = MakeAlgorithm("BC-JOIN", g);
  CountingSink sink;
  const QueryStats stats =
      bc->Run(testing::PaperExampleQuery(), sink, EnumOptions{});
  EXPECT_EQ(stats.cut_position, 2u);  // ceil(4/2)
  EXPECT_EQ(stats.method, Method::kJoin);
}

TEST(BcJoinTest, DirectEdgeAtKEqualsOne) {
  const Graph g = Graph::FromEdges(3, {{0, 2}, {0, 1}, {1, 2}});
  const auto bc = MakeAlgorithm("BC-JOIN", g);
  EXPECT_EQ(CollectPaths(*bc, {0, 2, 1}), (PathSet{{0, 2}}));
}

TEST(TDfsTest, EveryBranchLeadsToAResult) {
  // T-DFS certifies branches, so no partial result is invalid (beyond the
  // cut-off bookkeeping of the root).
  const Graph g = testing::PaperExampleGraph();
  const auto tdfs = MakeAlgorithm("T-DFS", g);
  CountingSink sink;
  const QueryStats stats =
      tdfs->Run(testing::PaperExampleQuery(), sink, EnumOptions{});
  EXPECT_EQ(stats.counters.num_results, 5u);
  EXPECT_EQ(stats.counters.invalid_partials, 0u)
      << "polynomial delay requires zero dead branches";
}

TEST(YenTest, EmitsInAscendingLengthOrder) {
  const Graph g = testing::PaperExampleGraph();
  const auto yen = MakeAlgorithm("Yen", g);
  std::vector<size_t> lengths;
  CallbackSink sink([&](std::span<const VertexId> p) {
    lengths.push_back(p.size() - 1);
    return true;
  });
  yen->Run(testing::PaperExampleQuery(), sink, EnumOptions{});
  ASSERT_EQ(lengths.size(), 5u);
  EXPECT_TRUE(std::is_sorted(lengths.begin(), lengths.end()))
      << "top-K shortest paths arrive by ascending length";
  EXPECT_EQ(lengths.front(), 2u);
}

TEST(YenTest, StopsAtHopConstraint) {
  // A 6-cycle with a chord gives paths longer than k that must be cut off.
  const Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 3}});
  const auto yen = MakeAlgorithm("Yen", g);
  EXPECT_EQ(CollectPaths(*yen, {0, 5, 3}), (PathSet{{0, 3, 4, 5}}));
}

class BaselineRandomTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(BaselineRandomTest, MatchesBruteForce) {
  const auto& [name, seed] = GetParam();
  const Graph g = ErdosRenyi(32, 180, seed);
  const auto algo = MakeAlgorithm(name, g);
  for (uint32_t k = 2; k <= 5; ++k) {
    const Query q{static_cast<VertexId>(seed % 32),
                  static_cast<VertexId>((seed * 19 + 3) % 32), k};
    if (q.source == q.target) continue;
    EXPECT_EQ(CollectPaths(*algo, q), ToSet(BruteForcePaths(g, q)))
        << name << " seed=" << seed << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BaselineRandomTest,
    ::testing::Combine(::testing::Values("GenericDFS", "BC-DFS", "BC-JOIN",
                                         "T-DFS", "Yen"),
                       ::testing::Range<uint64_t>(1, 8)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pathenum
