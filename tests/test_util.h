// Shared fixtures and helpers for the PathEnum test suite.
#ifndef PATHENUM_TESTS_TEST_UTIL_H_
#define PATHENUM_TESTS_TEST_UTIL_H_

#include <set>
#include <string>
#include <vector>

#include "baselines/algorithm.h"
#include "core/query.h"
#include "core/sink.h"
#include "graph/builder.h"
#include "graph/graph.h"

namespace pathenum::testing {

/// Canonical representation of a result set: paths as sorted set.
using PathSet = std::set<std::vector<VertexId>>;

inline PathSet ToSet(const std::vector<std::vector<VertexId>>& paths) {
  return PathSet(paths.begin(), paths.end());
}

/// Runs `algorithm` on q and returns the result set.
inline PathSet CollectPaths(BoundAlgorithm& algorithm, const Query& q,
                            const EnumOptions& opts = {}) {
  CollectingSink sink;
  algorithm.Run(q, sink, opts);
  return ToSet(sink.paths());
}

// ---------------------------------------------------------------------------
// The paper's running example (Figure 1a). Vertex numbering:
//   s = 0, v0..v7 = 1..8, t = 9.
// Edges reconstructed from the relations in Figure 3a; v7 dangles off v6
// (it is the vertex every pruning technique must exclude, Example D.1).
// ---------------------------------------------------------------------------
inline constexpr VertexId kS = 0;
inline constexpr VertexId kT = 9;
inline constexpr VertexId kV0 = 1, kV1 = 2, kV2 = 3, kV3 = 4, kV4 = 5,
                          kV5 = 6, kV6 = 7, kV7 = 8;

inline Graph PaperExampleGraph() {
  GraphBuilder b(10);
  // R1 of Figure 3a: out-edges of s.
  b.AddEdge(kS, kV0);
  b.AddEdge(kS, kV1);
  b.AddEdge(kS, kV3);
  // Middle edges (E(G - {s}) with source != t).
  b.AddEdge(kV0, kV1);
  b.AddEdge(kV0, kV6);
  b.AddEdge(kV0, kT);
  b.AddEdge(kV1, kV2);
  b.AddEdge(kV1, kV3);
  b.AddEdge(kV2, kV0);
  b.AddEdge(kV2, kT);
  b.AddEdge(kV3, kV4);
  b.AddEdge(kV4, kV5);
  b.AddEdge(kV5, kV2);
  b.AddEdge(kV5, kT);
  b.AddEdge(kV6, kV0);
  // v7: reachable from v6 but with no way back to t.
  b.AddEdge(kV6, kV7);
  return b.Build();
}

/// The paper's default query on the example graph: q(s, t, 4).
inline Query PaperExampleQuery() { return Query{kS, kT, 4}; }

// ---------------------------------------------------------------------------
// Figure 5's G0/G1: the walk-vs-path extremes of Example 5.2.
// ---------------------------------------------------------------------------

/// G1: one real path (s, v0, t) plus 5 ping-pong detours v0 <-> vi, giving
/// delta_W = 6 and delta_P = 1 at k = 4. s = 0, v0 = 1, detours 2..6, t = 7.
inline Graph Figure5G1() {
  GraphBuilder b(8);
  b.AddEdge(0, 1);
  b.AddEdge(1, 7);
  for (VertexId i = 2; i <= 6; ++i) {
    b.AddEdge(1, i);
    b.AddEdge(i, 1);
  }
  return b.Build();
}

}  // namespace pathenum::testing

#endif  // PATHENUM_TESTS_TEST_UTIL_H_
