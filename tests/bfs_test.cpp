// Unit tests for the DistanceField BFS substrate, in particular the
// blocked-endpoint semantics the light-weight index depends on.
#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::kS;
using testing::kT;
using testing::kV0;
using testing::kV1;
using testing::kV2;
using testing::kV3;
using testing::kV4;
using testing::kV5;
using testing::kV6;
using testing::kV7;

TEST(DistanceFieldTest, ForwardDistancesOnPath) {
  const Graph g = PathGraph(5);
  DistanceField f;
  f.Compute(g, Direction::kForward, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(f.Distance(v), v);
}

TEST(DistanceFieldTest, BackwardDistancesOnPath) {
  const Graph g = PathGraph(5);
  DistanceField f;
  f.Compute(g, Direction::kBackward, 4);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(f.Distance(v), 4 - v);
}

TEST(DistanceFieldTest, UnreachableIsInfinite) {
  const Graph g = Graph::FromEdges(3, {{0, 1}});
  DistanceField f;
  f.Compute(g, Direction::kForward, 0);
  EXPECT_EQ(f.Distance(2), kInfDistance);
}

TEST(DistanceFieldTest, MaxDepthCapsExpansion) {
  const Graph g = PathGraph(10);
  DistanceField f;
  BfsOptions opts;
  opts.max_depth = 3;
  f.Compute(g, Direction::kForward, 0, opts);
  EXPECT_EQ(f.Distance(3), 3u);
  EXPECT_EQ(f.Distance(4), kInfDistance);
}

TEST(DistanceFieldTest, BlockedVertexIsReachedButNotExpanded) {
  // 0 -> 1 -> 2 -> 3; block 1: distance of 1 is assigned, 2/3 unreachable.
  const Graph g = PathGraph(4);
  DistanceField f;
  BfsOptions opts;
  opts.blocked = 1;
  f.Compute(g, Direction::kForward, 0, opts);
  EXPECT_EQ(f.Distance(1), 1u);
  EXPECT_EQ(f.Distance(2), kInfDistance);
}

TEST(DistanceFieldTest, BlockedForcesDetour) {
  // Two routes 0->3: direct via 1 (length 2) and long via 4,5 (length 3).
  const Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 3}, {0, 4}, {4, 5}, {5, 3}});
  DistanceField f;
  BfsOptions opts;
  opts.blocked = 1;
  f.Compute(g, Direction::kForward, 0, opts);
  EXPECT_EQ(f.Distance(3), 3u) << "must route around the blocked vertex";
}

TEST(DistanceFieldTest, BlockedSourceStillExpands) {
  // Blocking the source itself must not stop the traversal (the index
  // blocks t in the forward BFS; s == blocked never happens, but the
  // guard's `u != source` branch is load-bearing).
  const Graph g = PathGraph(3);
  DistanceField f;
  BfsOptions opts;
  opts.blocked = 0;
  f.Compute(g, Direction::kForward, 0, opts);
  EXPECT_EQ(f.Distance(2), 2u);
}

TEST(DistanceFieldTest, StopAtEndsEarly) {
  const Graph g = PathGraph(10);
  DistanceField f;
  BfsOptions opts;
  opts.stop_at = 4;
  f.Compute(g, Direction::kForward, 0, opts);
  EXPECT_EQ(f.Distance(4), 4u);
  EXPECT_EQ(f.Distance(9), kInfDistance) << "traversal should have stopped";
}

TEST(DistanceFieldTest, ReachedListMatchesFiniteDistances) {
  const Graph g = testing::PaperExampleGraph();
  DistanceField f;
  f.Compute(g, Direction::kForward, kS);
  for (const VertexId v : f.Reached()) {
    EXPECT_NE(f.Distance(v), kInfDistance);
  }
  EXPECT_EQ(f.Reached().front(), kS);
  // BFS order: distances along Reached() are non-decreasing.
  for (size_t i = 1; i < f.Reached().size(); ++i) {
    EXPECT_LE(f.Distance(f.Reached()[i - 1]), f.Distance(f.Reached()[i]));
  }
}

TEST(DistanceFieldTest, ReuseAcrossQueriesResetsState) {
  const Graph g = PathGraph(6);
  DistanceField f;
  f.Compute(g, Direction::kForward, 0);
  EXPECT_EQ(f.Distance(5), 5u);
  f.Compute(g, Direction::kForward, 3);
  EXPECT_EQ(f.Distance(5), 2u);
  EXPECT_EQ(f.Distance(0), kInfDistance) << "stale distances must vanish";
}

TEST(DistanceFieldTest, EdgeFilterHidesEdges) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  // Hide the edge (1,3); the only route to 3 is through 2.
  const EdgeFilter filter = [](VertexId u, VertexId v, EdgeId) {
    return !(u == 1 && v == 3);
  };
  DistanceField f;
  BfsOptions opts;
  opts.filter = &filter;
  f.Compute(g, Direction::kForward, 0, opts);
  EXPECT_EQ(f.Distance(3), 2u);
  // Backward direction must present edges in graph orientation.
  f.Compute(g, Direction::kBackward, 3, opts);
  EXPECT_EQ(f.Distance(1), kInfDistance);
  EXPECT_EQ(f.Distance(2), 1u);
  EXPECT_EQ(f.Distance(0), 2u);
}

TEST(DistanceFieldTest, PaperExampleDistances) {
  // The v.s / v.t values behind Figure 4a.
  const Graph g = testing::PaperExampleGraph();
  DistanceField fs;
  BfsOptions fwd;
  fwd.blocked = kT;
  fs.Compute(g, Direction::kForward, kS, fwd);
  EXPECT_EQ(fs.Distance(kS), 0u);
  EXPECT_EQ(fs.Distance(kV0), 1u);
  EXPECT_EQ(fs.Distance(kV1), 1u);
  EXPECT_EQ(fs.Distance(kV3), 1u);
  EXPECT_EQ(fs.Distance(kV2), 2u);
  EXPECT_EQ(fs.Distance(kV4), 2u);
  EXPECT_EQ(fs.Distance(kV6), 2u);
  EXPECT_EQ(fs.Distance(kV5), 3u);
  EXPECT_EQ(fs.Distance(kV7), 3u);
  EXPECT_EQ(fs.Distance(kT), 2u);

  DistanceField ft;
  BfsOptions bwd;
  bwd.blocked = kS;
  ft.Compute(g, Direction::kBackward, kT, bwd);
  EXPECT_EQ(ft.Distance(kT), 0u);
  EXPECT_EQ(ft.Distance(kV0), 1u);
  EXPECT_EQ(ft.Distance(kV2), 1u);
  EXPECT_EQ(ft.Distance(kV5), 1u);
  EXPECT_EQ(ft.Distance(kV1), 2u);
  EXPECT_EQ(ft.Distance(kV4), 2u);
  EXPECT_EQ(ft.Distance(kV6), 2u);
  EXPECT_EQ(ft.Distance(kV3), 3u);
  EXPECT_EQ(ft.Distance(kV7), kInfDistance);
  // s is reached (as an endpoint) but never expanded: s.t = S(s,t) = 2.
  EXPECT_EQ(ft.Distance(kS), 2u);
}

TEST(WithinDistanceTest, Basic) {
  const Graph g = PathGraph(5);
  EXPECT_TRUE(WithinDistance(g, 0, 3, 3));
  EXPECT_FALSE(WithinDistance(g, 0, 4, 3));
  EXPECT_TRUE(WithinDistance(g, 2, 2, 0));  // trivially within
  EXPECT_FALSE(WithinDistance(g, 4, 0, 10));
}

TEST(DistanceFieldTest, LargeGraphSmoke) {
  const Graph g = ErdosRenyi(20000, 100000, 99);
  DistanceField f;
  BfsOptions opts;
  opts.max_depth = 6;
  f.Compute(g, Direction::kForward, 0, opts);
  size_t reached = f.Reached().size();
  EXPECT_GT(reached, 1u);
  for (const VertexId v : f.Reached()) EXPECT_LE(f.Distance(v), 6u);
}

}  // namespace
}  // namespace pathenum
