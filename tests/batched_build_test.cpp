// Differential tests for the batched multi-source build path (DESIGN.md
// §11): BatchedDistanceField vs K solo ComputeWith runs, BuildBatch vs K
// solo Builds, and the engine-level batched prebuild vs the unbatched
// engine. The batched path must be invisible except in the counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/control.h"
#include "core/index.h"
#include "core/path_enum.h"
#include "core/sink.h"
#include "engine/query_engine.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "test_util.h"
#include "workload/query_gen.h"

namespace pathenum {
namespace {

using testing::ToSet;

// Asserts every member of the fused sweep reproduces its solo run exactly:
// identical distances on every vertex (kInfDistance included), the same
// reached count, and the solo run's edge-touch count as covered_edges.
void ExpectBatchMatchesSolo(
    const Graph& g, Direction dir,
    const std::vector<BatchedDistanceField::Member>& members) {
  BatchedDistanceField batch;
  batch.Compute(g, dir, members);
  for (uint32_t m = 0; m < members.size(); ++m) {
    DistanceField solo;
    BfsOptions opts;
    opts.blocked = members[m].blocked;
    opts.max_depth = members[m].max_depth;
    solo.Compute(g, dir, members[m].source, opts);
    ASSERT_EQ(batch.interrupted(m), DistanceField::Interrupt::kNone);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(batch.Distance(m, v), solo.Distance(v))
          << "member " << m << " vertex " << v;
    }
    EXPECT_EQ(batch.Reached(m).size(), solo.Reached().size());
    EXPECT_EQ(batch.covered_edges(m), solo.edges_scanned())
        << "member " << m << " solo-equivalent edge count drifted";
  }
}

std::vector<BatchedDistanceField::Member> SpreadSources(const Graph& g,
                                                        uint32_t k,
                                                        uint64_t salt) {
  std::vector<BatchedDistanceField::Member> members(k);
  const VertexId n = g.num_vertices();
  for (uint32_t m = 0; m < k; ++m) {
    members[m].source = static_cast<VertexId>((m * 37 + salt * 13) % n);
  }
  return members;
}

TEST(BatchedDistanceFieldTest, MatchesSoloOnRandomGraphs) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Graph er = ErdosRenyi(300, 2400, seed);
    const Graph ba = BarabasiAlbert(300, 3, seed, 0.3);
    for (const Graph* g : {&er, &ba}) {
      for (const Direction dir : {Direction::kForward, Direction::kBackward}) {
        auto members = SpreadSources(*g, 12, seed);
        for (uint32_t m = 0; m < members.size(); ++m) {
          // Mixed per-member hop caps, including unlimited.
          members[m].max_depth = m % 3 == 0 ? kInfDistance : 2 + m % 4;
          // Some members carry a blocked endpoint (never their own source).
          if (m % 2 == 0) {
            members[m].blocked =
                static_cast<VertexId>((members[m].source + 7) % g->num_vertices());
          }
        }
        ExpectBatchMatchesSolo(*g, dir, members);
      }
    }
  }
}

TEST(BatchedDistanceFieldTest, UnreachableMembersMatchSolo) {
  // 0->1->2 and the isolated 3,4: members seeded at 2 (dead end), 3 and 4
  // (isolated) reach nothing beyond their sources, exactly like solo.
  const Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}});
  std::vector<BatchedDistanceField::Member> members(4);
  members[0].source = 0;
  members[1].source = 2;
  members[2].source = 3;
  members[3].source = 4;
  ExpectBatchMatchesSolo(g, Direction::kForward, members);

  BatchedDistanceField batch;
  batch.Compute(g, Direction::kForward, members);
  EXPECT_EQ(batch.Distance(1, 0), kInfDistance);
  EXPECT_EQ(batch.Reached(2).size(), 1u);  // just its own source
  EXPECT_EQ(batch.covered_edges(3), 0u);
}

TEST(BatchedDistanceFieldTest, ReusedFieldMatchesAcrossComputes) {
  // One field object across graphs, directions and member counts: the
  // epoch/token stamping must fully isolate successive sweeps.
  const Graph a = ErdosRenyi(200, 1200, 9);
  const Graph b = GridGraph(10, 10);
  BatchedDistanceField batch;
  for (int round = 0; round < 3; ++round) {
    for (const Graph* g : {&a, &b}) {
      auto members = SpreadSources(*g, round % 2 == 0 ? 5 : 17,
                                   static_cast<uint64_t>(round));
      batch.Compute(*g, Direction::kForward, members);
      for (uint32_t m = 0; m < members.size(); ++m) {
        DistanceField solo;
        solo.Compute(*g, Direction::kForward, members[m].source);
        for (VertexId v = 0; v < g->num_vertices(); ++v) {
          ASSERT_EQ(batch.Distance(m, v), solo.Distance(v));
        }
      }
    }
  }
}

TEST(BatchedDistanceFieldTest, CancelledMemberDropsOutWithoutDisturbingOthers) {
  const Graph g = ErdosRenyi(300, 2400, 4);
  auto members = SpreadSources(g, 8, 4);
  const CancelToken cancelled = CancelToken::Cancellable();
  cancelled.Cancel();
  members[3].cancel = cancelled.flag();

  BatchedDistanceField batch;
  batch.Compute(g, Direction::kForward, members);
  EXPECT_EQ(batch.interrupted(3), DistanceField::Interrupt::kCancelled);
  for (uint32_t m = 0; m < members.size(); ++m) {
    if (m == 3) continue;
    ASSERT_EQ(batch.interrupted(m), DistanceField::Interrupt::kNone);
    DistanceField solo;
    solo.Compute(g, Direction::kForward, members[m].source);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(batch.Distance(m, v), solo.Distance(v))
          << "survivor " << m << " perturbed by the cancelled member";
    }
  }
}

TEST(BatchedDistanceFieldTest, ExpiredDeadlineMemberDropsOutAlone) {
  const Graph g = ErdosRenyi(300, 2400, 5);
  auto members = SpreadSources(g, 6, 5);
  members[0].deadline = Deadline::AfterMs(0.0);  // already expired

  BatchedDistanceField batch;
  batch.Compute(g, Direction::kForward, members);
  EXPECT_EQ(batch.interrupted(0), DistanceField::Interrupt::kDeadline);
  for (uint32_t m = 1; m < members.size(); ++m) {
    ASSERT_EQ(batch.interrupted(m), DistanceField::Interrupt::kNone);
    DistanceField solo;
    solo.Compute(g, Direction::kForward, members[m].source);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(batch.Distance(m, v), solo.Distance(v));
    }
  }
}

TEST(BatchedDistanceFieldTest, SharedSweepScansEachListOnce) {
  // On a connected graph the member frontiers overlap after a wave or two,
  // so the shared scan count must be strictly below the solo-equivalent
  // sum — that inequality IS the optimization.
  const Graph g = ErdosRenyi(400, 3600, 6);
  const auto members = SpreadSources(g, 16, 6);
  BatchedDistanceField batch;
  batch.Compute(g, Direction::kForward, members);
  uint64_t solo_sum = 0;
  for (uint32_t m = 0; m < members.size(); ++m) {
    solo_sum += batch.covered_edges(m);
  }
  EXPECT_LT(batch.edges_scanned(), solo_sum);
  EXPECT_GT(batch.edges_scanned(), 0u);
}

// ---------------------------------------------------------------------------
// IndexBuilder::BuildBatch vs solo Build.
// ---------------------------------------------------------------------------

/// Enumerates q's paths over g through a prebuilt index.
std::set<std::vector<VertexId>> PathsVia(const Graph& g,
                                         const LightweightIndex& idx) {
  PathEnumerator enumerator{GraphView(g)};
  CollectingSink sink;
  enumerator.RunWithIndex(idx, sink);
  return ToSet(sink.paths());
}

TEST(BuildBatchTest, MatchesSoloBuilds) {
  const Graph g = ErdosRenyi(200, 1600, 7);
  QueryGenOptions qopts;
  qopts.count = 8;
  qopts.hops = 4;
  qopts.seed = 7;
  const std::vector<Query> queries = GenerateQueries(g, qopts);
  ASSERT_GE(queries.size(), 4u);

  std::vector<BatchBuildRequest> reqs;
  for (const Query& q : queries) reqs.push_back({q});
  IndexBuilder batch_builder;
  const std::vector<LightweightIndex> built =
      batch_builder.BuildBatch(g, reqs);
  ASSERT_EQ(built.size(), queries.size());

  uint64_t solo_sum = 0;
  IndexBuilder solo_builder;
  for (size_t i = 0; i < queries.size(); ++i) {
    const LightweightIndex solo = solo_builder.Build(g, queries[i]);
    ASSERT_FALSE(built[i].build_stats().interrupted);
    EXPECT_TRUE(built[i].build_stats().batched);
    EXPECT_FALSE(solo.build_stats().batched);
    // Identical structure and identical enumeration output.
    EXPECT_EQ(built[i].num_vertices(), solo.num_vertices());
    EXPECT_EQ(built[i].num_edges(), solo.num_edges());
    EXPECT_EQ(PathsVia(g, built[i]), PathsVia(g, solo));
    // The member's solo-equivalent edge count is exactly what its own two
    // BFS passes cost; the shared count is the same on every member.
    EXPECT_EQ(built[i].build_stats().edges_scanned,
              solo.build_stats().edges_scanned);
    EXPECT_EQ(built[i].build_stats().batch_edges_scanned,
              built[0].build_stats().batch_edges_scanned);
    solo_sum += solo.build_stats().edges_scanned;
  }
  // Acceptance criterion: fused sweeps touch strictly fewer adjacency
  // entries than the same builds run solo.
  EXPECT_LT(built[0].build_stats().batch_edges_scanned, solo_sum);
}

TEST(BuildBatchTest, UnreachablePairYieldsSameEmptyIndex) {
  // v7 has no out-edges in the paper graph: q(v7, t, 4) has no results.
  const Graph g = testing::PaperExampleGraph();
  std::vector<BatchBuildRequest> reqs;
  reqs.push_back({testing::PaperExampleQuery()});
  reqs.push_back({Query{testing::kV7, testing::kT, 4}});
  IndexBuilder builder;
  const auto built = builder.BuildBatch(g, reqs);
  const LightweightIndex solo0 = builder.Build(g, reqs[0].query);
  const LightweightIndex solo1 = builder.Build(g, reqs[1].query);
  EXPECT_EQ(PathsVia(g, built[0]), PathsVia(g, solo0));
  EXPECT_EQ(built[1].num_edges(), solo1.num_edges());
  EXPECT_TRUE(PathsVia(g, built[1]).empty());
}

TEST(BuildBatchTest, CancelledMemberGetsInterruptedStubOnly) {
  const Graph g = ErdosRenyi(200, 1600, 8);
  QueryGenOptions qopts;
  qopts.count = 4;
  qopts.hops = 4;
  qopts.seed = 8;
  const std::vector<Query> queries = GenerateQueries(g, qopts);
  ASSERT_GE(queries.size(), 2u);

  const CancelToken cancelled = CancelToken::Cancellable();
  cancelled.Cancel();
  std::vector<BatchBuildRequest> reqs;
  reqs.push_back({queries[0]});
  reqs.push_back({queries[1], cancelled.flag()});
  IndexBuilder builder;
  const auto built = builder.BuildBatch(g, reqs);

  EXPECT_TRUE(built[1].build_stats().interrupted);
  EXPECT_TRUE(built[1].build_stats().interrupted_by_cancel);
  EXPECT_EQ(built[1].num_vertices(), 0u);  // empty but well-formed
  ASSERT_FALSE(built[0].build_stats().interrupted);
  const LightweightIndex solo = builder.Build(g, queries[0]);
  EXPECT_EQ(PathsVia(g, built[0]), PathsVia(g, solo));
}

// ---------------------------------------------------------------------------
// Engine-level batched prebuild.
// ---------------------------------------------------------------------------

TEST(EngineBatchedPrebuildTest, MatchesUnbatchedEngine) {
  const Graph g = ErdosRenyi(300, 2400, 11);
  QueryGenOptions qopts;
  qopts.count = 24;
  qopts.hops = 4;
  qopts.seed = 11;
  std::vector<Query> queries = GenerateQueries(g, qopts);
  // Distinct keys only: the prebuild groups by key, duplicates dedup away.
  std::sort(queries.begin(), queries.end(), [](const Query& a, const Query& b) {
    return std::tie(a.source, a.target) < std::tie(b.source, b.target);
  });
  queries.erase(std::unique(queries.begin(), queries.end(),
                            [](const Query& a, const Query& b) {
                              return a.source == b.source &&
                                     a.target == b.target;
                            }),
                queries.end());
  ASSERT_GE(queries.size(), 4u);

  EngineOptions on;
  on.num_workers = 4;
  on.enable_cache = true;
  on.batch_build_min = 4;
  EngineOptions off = on;
  off.batch_build_min = 0;
  QueryEngine engine_on(g, on);
  QueryEngine engine_off(g, off);
  const BatchResult r_on = engine_on.CountBatch(queries);
  const BatchResult r_off = engine_off.CountBatch(queries);
  ASSERT_TRUE(r_on.ok());
  ASSERT_TRUE(r_off.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r_on.stats[i].counters.num_results,
              r_off.stats[i].counters.num_results)
        << "query " << i;
  }
  // A cold cache with >= batch_build_min distinct missing keys must batch.
  EXPECT_GT(r_on.batched_builds, 0u);
  EXPECT_EQ(r_off.batched_builds, 0u);
  EXPECT_LT(r_on.batched_edges_scanned, r_on.batched_solo_edges);

  // The prebuilt indexes are real cache entries: a second pass is all hits
  // with no further batched builds.
  const BatchResult again = engine_on.CountBatch(queries);
  EXPECT_EQ(again.batched_builds, 0u);
  EXPECT_EQ(again.cache.index_misses, 0u);
}

TEST(BuildBatchTest, HopCapZeroMemberYieldsEmptyCompleteIndex) {
  // An oracle-certified-unsatisfiable member rides the fused sweeps at
  // depth 0: it must come back EMPTY but COMPLETE (not an interrupted
  // stub — unsatisfiability means empty IS the full answer), and must not
  // perturb its co-members.
  const Graph g = ErdosRenyi(200, 1600, 9);
  QueryGenOptions qopts;
  qopts.count = 4;
  qopts.hops = 4;
  qopts.seed = 9;
  const std::vector<Query> queries = GenerateQueries(g, qopts);
  ASSERT_GE(queries.size(), 2u);

  std::vector<BatchBuildRequest> reqs;
  reqs.push_back({queries[0]});
  reqs.push_back({.query = queries[1], .hop_cap = 0});
  IndexBuilder builder;
  const auto built = builder.BuildBatch(g, reqs);

  EXPECT_EQ(built[1].num_vertices(), 0u);
  EXPECT_EQ(built[1].num_edges(), 0u);
  EXPECT_FALSE(built[1].build_stats().interrupted);
  EXPECT_TRUE(PathsVia(g, built[1]).empty());
  const LightweightIndex solo = builder.Build(g, queries[0]);
  ASSERT_FALSE(built[0].build_stats().interrupted);
  EXPECT_EQ(PathsVia(g, built[0]), PathsVia(g, solo));
}

TEST(EngineBatchedPrebuildTest, OracleCappedBuildsRideTheSweepForFree) {
  // A batch mixing satisfiable and oracle-certified-unsatisfiable queries:
  // the unsatisfiable groups join the fused prebuild with hop_cap = 0
  // (counted in oracle_capped_builds) instead of paying full-depth BFS,
  // finish as kUnsatisfiable, and the satisfiable co-members are exact.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 19; ++v) edges.push_back({v, v + 1});
  for (VertexId v = 20; v < 39; ++v) edges.push_back({v, v + 1});
  const Graph g = Graph::FromEdges(40, edges);
  const PrunedLandmarkIndex labels = PrunedLandmarkIndex::Build(g);

  std::vector<Query> queries;
  for (VertexId s = 0; s < 4; ++s) {
    queries.push_back(Query{s, static_cast<VertexId>(s + 5), 6});   // sat
    queries.push_back(Query{s, static_cast<VertexId>(s + 25), 6});  // unsat
  }
  EngineOptions opts;
  opts.num_workers = 2;
  opts.enable_cache = true;
  opts.batch_build_min = 2;
  QueryEngine engine(g, opts, &labels);
  const BatchResult r = engine.CountBatch(queries);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.batched_builds, 0u);
  EXPECT_EQ(r.oracle_capped_builds, 4u);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(r.states[i], QueryState::kOk) << "query " << i;
      EXPECT_EQ(r.stats[i].counters.num_results, 1u) << "query " << i;
    } else {
      EXPECT_EQ(r.states[i], QueryState::kUnsatisfiable) << "query " << i;
      EXPECT_EQ(r.stats[i].counters.num_results, 0u) << "query " << i;
    }
  }
}

}  // namespace
}  // namespace pathenum
