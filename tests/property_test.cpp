// Cross-cutting property tests tying the paper's analysis to the
// implementation: the search-tree bounds of §5.2, the index-vs-baseline
// edge-access claim behind Fig. 6, failure-injection for the join memory
// cap, and dynamic-update consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <span>

#include "baselines/algorithm.h"
#include "core/dfs_enumerator.h"
#include "core/estimator.h"
#include "core/index.h"
#include "core/join_enumerator.h"
#include "core/parallel_dfs.h"
#include "core/path_enum.h"
#include "core/reference.h"
#include "engine/query_engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

class SearchTreeBoundTest : public ::testing::TestWithParam<uint64_t> {};

// Equation 4: the IDX-DFS running time (measured as partials) is bounded
// by k * delta_W + 1, because each partial result of the relaxed search
// appears in some walk.
TEST_P(SearchTreeBoundTest, PartialsBoundedByKTimesWalks) {
  const uint64_t seed = GetParam();
  const Graph g = ErdosRenyi(40, 240, seed);
  for (uint32_t k = 2; k <= 6; ++k) {
    const Query q{static_cast<VertexId>(seed % 40),
                  static_cast<VertexId>((seed * 23 + 1) % 40), k};
    if (q.source == q.target) continue;
    IndexBuilder builder;
    const LightweightIndex idx = builder.Build(g, q);
    DfsEnumerator dfs(idx);
    CountingSink sink;
    const EnumCounters c = dfs.Run(sink, {});
    const double walks = CountWalksDp(g, q);
    EXPECT_LE(static_cast<double>(c.partials),
              static_cast<double>(k) * walks + 1.0)
        << "seed=" << seed << " k=" << k;
    // Edges accessed are bounded the same way (each partial's fan-out sums
    // to the next level's relaxed size).
    EXPECT_LE(static_cast<double>(c.edges_accessed),
              static_cast<double>(k) * walks + 1.0);
    // And results can never exceed walks.
    EXPECT_LE(static_cast<double>(c.num_results), walks);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchTreeBoundTest,
                         ::testing::Range<uint64_t>(1, 11));

class EdgeAccessTest : public ::testing::TestWithParam<uint64_t> {};

// The Fig. 6 claim, as an invariant: IDX-DFS never accesses more edges
// than GenericDFS (Alg. 1) on the same completed query — the index serves
// exactly the neighbors the generic framework would have to filter.
TEST_P(EdgeAccessTest, IndexNeverAccessesMoreEdgesThanGenericDfs) {
  const uint64_t seed = GetParam();
  const Graph g = RMat(6, 300, seed * 97);
  for (uint32_t k = 3; k <= 6; ++k) {
    const Query q{static_cast<VertexId>(seed % 64),
                  static_cast<VertexId>((seed * 29 + 17) % 64), k};
    if (q.source == q.target) continue;
    const auto generic = MakeAlgorithm("GenericDFS", g);
    const auto idx = MakeAlgorithm("IDX-DFS", g);
    CountingSink s1, s2;
    const QueryStats gs = generic->Run(q, s1, EnumOptions{});
    const QueryStats is = idx->Run(q, s2, EnumOptions{});
    ASSERT_EQ(s1.count(), s2.count());
    EXPECT_LE(is.counters.edges_accessed, gs.counters.edges_accessed)
        << "seed=" << seed << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeAccessTest,
                         ::testing::Range<uint64_t>(1, 9));

// --- Failure injection -------------------------------------------------------

TEST(JoinMemoryCapTest, TinyBudgetReportsOutOfMemory) {
  const Graph g = CompleteDigraph(16);
  const Query q{0, 15, 5};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  JoinEnumerator join(idx);
  CountingSink sink;
  EnumOptions opts;
  opts.partial_memory_limit_bytes = 256;  // absurdly small
  const EnumCounters c = join.Run(2, sink, opts);
  EXPECT_TRUE(c.out_of_memory);
  EXPECT_FALSE(c.completed());
}

TEST(JoinMemoryCapTest, BcJoinHonorsTheCapToo) {
  const Graph g = CompleteDigraph(16);
  const auto bc = MakeAlgorithm("BC-JOIN", g);
  CountingSink sink;
  EnumOptions opts;
  opts.partial_memory_limit_bytes = 256;
  const QueryStats s = bc->Run({0, 15, 5}, sink, opts);
  EXPECT_TRUE(s.counters.out_of_memory);
}

TEST(JoinMemoryCapTest, DefaultBudgetIsAmple) {
  const Graph g = CompleteDigraph(10);
  const Query q{0, 9, 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  JoinEnumerator join(idx);
  CountingSink sink;
  const EnumCounters c = join.Run(2, sink, {});
  EXPECT_FALSE(c.out_of_memory);
  EXPECT_TRUE(c.completed());
}

// --- Dynamic updates ---------------------------------------------------------

TEST(DynamicUpdateTest, InsertionGrowsResultSetMonotonically) {
  // Adding edges can only add paths (for fixed q): verify along a random
  // insertion sequence.
  const Graph full = ErdosRenyi(30, 180, 77);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < full.num_vertices(); ++u) {
    for (const VertexId v : full.OutNeighbors(u)) edges.push_back({u, v});
  }
  const Query q{1, 2, 4};
  uint64_t prev = 0;
  for (size_t keep = edges.size() / 2; keep <= edges.size();
       keep += edges.size() / 6) {
    GraphBuilder b(full.num_vertices());
    for (size_t i = 0; i < keep && i < edges.size(); ++i) {
      b.AddEdge(edges[i].first, edges[i].second);
    }
    const Graph g = b.Build();
    PathEnumerator pe(g);
    CountingSink sink;
    pe.Run(q, sink);
    EXPECT_GE(sink.count(), prev) << "insertions lost paths";
    EXPECT_EQ(sink.count(), CountPathsBruteForce(g, q));
    prev = sink.count();
  }
}

TEST(DynamicUpdateTest, DeletionInvalidatesExactlyTheAffectedPaths) {
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  // Remove v2 -> t: exactly the two paths through that edge disappear.
  GraphBuilder b(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.OutNeighbors(u)) {
      if (!(u == testing::kV2 && v == testing::kT)) b.AddEdge(u, v);
    }
  }
  const Graph g2 = b.Build();
  PathEnumerator pe(g2);
  CollectingSink sink;
  pe.Run(q, sink);
  // Of the five original paths, exactly the two traversing (v2, t) vanish;
  // (s, v1, v2, v0, t) leaves v2 through v0 and survives.
  const PathSet expected = {
      {testing::kS, testing::kV0, testing::kT},
      {testing::kS, testing::kV1, testing::kV2, testing::kV0, testing::kT},
      {testing::kS, testing::kV3, testing::kV4, testing::kV5, testing::kT},
  };
  EXPECT_EQ(ToSet(sink.paths()), expected);
}

// --- Intra-query splitting differentials (DESIGN.md §8) ----------------------

/// Runs q through RunBatch with the given split setting and returns the
/// collected paths plus stats.
QueryStats RunOne(QueryEngine& engine, const Query& q, bool split,
                  const EnumOptions& query_opts, CollectingSink& sink) {
  PathSink* sinks[] = {&sink};
  BatchOptions opts;
  opts.split_branches = split;
  opts.query = query_opts;
  const BatchResult result =
      engine.RunBatch(std::span<const Query>{&q, 1}, sinks, opts);
  EXPECT_TRUE(result.ok()) << result.errors[0];
  return result.stats[0];
}

TEST(SplitDifferentialTest, RunBatchSplitOnOffAgreeOnRandomGraphs) {
  // The split/serial differential: identical path sets (unordered) and
  // identical num_results on randomized graphs, across the methods the
  // planner can pick.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = RMat(6, 320, seed * 13);
    QueryEngine engine(g, {.num_workers = 4});
    for (uint32_t k = 4; k <= 6; ++k) {
      const Query q{static_cast<VertexId>((seed * 11) % 64),
                    static_cast<VertexId>((seed * 31 + 7) % 64), k};
      if (q.source == q.target) continue;
      CollectingSink serial, split;
      const QueryStats serial_stats = RunOne(engine, q, false, {}, serial);
      const QueryStats split_stats = RunOne(engine, q, true, {}, split);
      EXPECT_EQ(ToSet(split.paths()), ToSet(serial.paths()))
          << "seed=" << seed << " k=" << k;
      EXPECT_EQ(split_stats.counters.num_results,
                serial_stats.counters.num_results);
      EXPECT_EQ(split_stats.method, serial_stats.method)
          << "split must plan like the serial pipeline";
    }
  }
}

TEST(SplitDifferentialTest, TruncationFlagsAgreeAtTightLimits) {
  // At limits right at / under the full result count the split path must
  // report exactly the serial truncation outcome: delivered == limit (the
  // merge-barrier regression — never limit + 1), hit_result_limit and
  // stopped_by_sink bit-identical.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = ErdosRenyi(48, 430, seed * 7 + 1);
    QueryEngine engine(g, {.num_workers = 4});
    const Query q{static_cast<VertexId>(seed % 48),
                  static_cast<VertexId>((seed * 19 + 3) % 48), 5};
    if (q.source == q.target) continue;
    CollectingSink full;
    RunOne(engine, q, false, {}, full);
    const uint64_t count = full.paths().size();
    if (count < 2) continue;
    for (const uint64_t limit :
         {count, count - 1, (count + 1) / 2, uint64_t{1}}) {
      EnumOptions opts;
      opts.result_limit = limit;
      CollectingSink serial, split;
      const QueryStats serial_stats = RunOne(engine, q, false, opts, serial);
      const QueryStats split_stats = RunOne(engine, q, true, opts, split);
      ASSERT_EQ(split.paths().size(), limit)
          << "seed=" << seed << " limit=" << limit << " (never limit + 1)";
      EXPECT_EQ(split_stats.counters.num_results,
                serial_stats.counters.num_results);
      EXPECT_EQ(split_stats.counters.hit_result_limit,
                serial_stats.counters.hit_result_limit)
          << "seed=" << seed << " limit=" << limit;
      EXPECT_EQ(split_stats.counters.stopped_by_sink,
                serial_stats.counters.stopped_by_sink)
          << "seed=" << seed << " limit=" << limit;
      // Whatever subset the nondeterministic interleaving delivered, it is
      // a subset of the true result set.
      const PathSet full_set = ToSet(full.paths());
      for (const auto& p : split.paths()) {
        EXPECT_TRUE(full_set.count(p) > 0);
      }
    }
  }
}

TEST(SplitDifferentialTest, ParallelDfsMatchesSequentialOnRandomGraphs) {
  // Post-migration guarantee for the standalone parallel enumerator:
  // identical path sets without limits, identical counts and truncation
  // flags at tight limits.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = RMat(6, 300, seed * 29 + 5);
    const Query q{static_cast<VertexId>(seed % 64),
                  static_cast<VertexId>((seed * 41 + 3) % 64), 5};
    if (q.source == q.target) continue;
    IndexBuilder builder;
    const LightweightIndex idx = builder.Build(g, q);
    DfsEnumerator sequential(idx);
    CollectingSink seq_sink;
    const EnumCounters seq_full = sequential.Run(seq_sink, {});

    ParallelDfsEnumerator parallel(idx, 4);
    std::vector<std::vector<VertexId>> merged;
    std::mutex mutex;
    const ParallelEnumResult par_full = parallel.Run([&] {
      return std::make_unique<CallbackSink>(
          [&](std::span<const VertexId> p) {
            const std::lock_guard<std::mutex> lock(mutex);
            merged.emplace_back(p.begin(), p.end());
            return true;
          });
    });
    EXPECT_EQ(ToSet(merged), ToSet(seq_sink.paths())) << "seed=" << seed;
    EXPECT_EQ(par_full.counters.num_results, seq_full.num_results);

    const uint64_t count = seq_full.num_results;
    if (count < 2) continue;
    for (const uint64_t limit : {count, count - 1, uint64_t{1}}) {
      EnumOptions opts;
      opts.result_limit = limit;
      CountingSink seq_ltd;
      const EnumCounters seq = sequential.Run(seq_ltd, opts);
      const ParallelEnumResult par = parallel.CountAll(opts);
      EXPECT_EQ(par.counters.num_results, seq.num_results)
          << "seed=" << seed << " limit=" << limit;
      EXPECT_EQ(par.counters.hit_result_limit, seq.hit_result_limit);
      EXPECT_EQ(par.counters.stopped_by_sink, seq.stopped_by_sink);
    }
  }
}

// --- Determinism -------------------------------------------------------------

TEST(DeterminismTest, IdxDfsEmissionOrderIsStable) {
  const Graph g = RMat(6, 260, 5);
  const Query q{1, 3, 5};
  auto run = [&] {
    IndexBuilder builder;
    const LightweightIndex idx = builder.Build(g, q);
    DfsEnumerator dfs(idx);
    std::vector<std::vector<VertexId>> order;
    CallbackSink sink([&](std::span<const VertexId> p) {
      order.emplace_back(p.begin(), p.end());
      return true;
    });
    dfs.Run(sink, {});
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismTest, IdxDfsEmitsShorterDetoursFirstPerBranch) {
  // Neighbor lists are sorted by distance-to-target, so the first emitted
  // path is always a shortest path.
  const Graph g = testing::PaperExampleGraph();
  IndexBuilder builder;
  const LightweightIndex idx =
      builder.Build(g, testing::PaperExampleQuery());
  DfsEnumerator dfs(idx);
  std::vector<size_t> lengths;
  CallbackSink sink([&](std::span<const VertexId> p) {
    lengths.push_back(p.size() - 1);
    return true;
  });
  dfs.Run(sink, {});
  ASSERT_FALSE(lengths.empty());
  EXPECT_EQ(lengths.front(), 2u) << "first result must be a shortest path";
}

}  // namespace
}  // namespace pathenum
