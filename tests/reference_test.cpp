// Tests for the brute-force reference oracles themselves, against
// closed-form counts on structured graphs — the oracles anchor every other
// correctness test, so they get their own scrutiny.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

/// Paths s->t of length <= k in the complete digraph K_n:
/// sum over l=1..k of (n-2)(n-3)...(n-l) ordered arrangements.
uint64_t CompletePathCount(uint64_t n, uint32_t k) {
  uint64_t total = 0;
  for (uint32_t l = 1; l <= k; ++l) {
    uint64_t ways = 1;
    for (uint32_t i = 0; i + 1 < l; ++i) ways *= n - 2 - i;
    total += ways;
  }
  return total;
}

/// Walks s->t of length <= k in K_n (internal vertices avoid {s,t};
/// consecutive vertices differ because K_n has no self-loops):
/// 1 for l = 1, then (n-2)(n-3)^(l-2) for each l >= 2.
uint64_t CompleteWalkCount(uint64_t n, uint32_t k) {
  uint64_t total = k >= 1 ? 1 : 0;
  for (uint32_t l = 2; l <= k; ++l) {
    uint64_t ways = n - 2;
    for (uint32_t i = 0; i + 2 < l; ++i) ways *= n - 3;
    total += ways;
  }
  return total;
}

TEST(ReferenceTest, CompleteDigraphClosedForm) {
  for (const VertexId n : {5u, 7u, 9u}) {
    const Graph g = CompleteDigraph(n);
    for (uint32_t k = 1; k <= 4; ++k) {
      const Query q{0, static_cast<VertexId>(n - 1), k};
      EXPECT_EQ(CountPathsBruteForce(g, q), CompletePathCount(n, k))
          << "n=" << n << " k=" << k;
      EXPECT_DOUBLE_EQ(CountWalksDp(g, q),
                       static_cast<double>(CompleteWalkCount(n, k)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(ReferenceTest, GridBinomialCount) {
  // Monotone corner-to-corner paths in a w x h grid: C(w+h-2, w-1), all of
  // length exactly (w-1) + (h-1).
  const Graph g = GridGraph(4, 4);
  const Query q{0, 15, 6};
  EXPECT_EQ(CountPathsBruteForce(g, q), 20u);  // C(6,3)
  // Grids are DAGs: walks == paths.
  EXPECT_DOUBLE_EQ(CountWalksDp(g, q), 20.0);
  EXPECT_EQ(BruteForceWalks(g, q).size(), 20u);
}

TEST(ReferenceTest, WalkEnumerationMatchesDpOnCycles) {
  // A graph with a tight cycle produces walks beyond the paths; the
  // explicit enumeration and the DP must agree exactly.
  const Graph g = testing::Figure5G1();
  for (uint32_t k = 2; k <= 8; ++k) {
    const Query q{0, 7, k};
    EXPECT_DOUBLE_EQ(static_cast<double>(BruteForceWalks(g, q).size()),
                     CountWalksDp(g, q))
        << "k=" << k;
  }
}

TEST(ReferenceTest, WalksNeverReenterEndpoints) {
  const Graph g = testing::PaperExampleGraph();
  for (const auto& w : BruteForceWalks(g, testing::PaperExampleQuery())) {
    EXPECT_EQ(w.front(), testing::kS);
    EXPECT_EQ(w.back(), testing::kT);
    for (size_t i = 1; i + 1 < w.size(); ++i) {
      EXPECT_NE(w[i], testing::kS);
      EXPECT_NE(w[i], testing::kT);
    }
  }
}

TEST(ReferenceTest, LimitTruncatesEnumeration) {
  const Graph g = CompleteDigraph(8);
  const Query q{0, 7, 4};
  EXPECT_EQ(BruteForcePaths(g, q, 10).size(), 10u);
  EXPECT_EQ(BruteForceWalks(g, q, 25).size(), 25u);
}

TEST(ReferenceTest, SelfLoopNeighborhoodsAreImpossible) {
  // Builders drop self-loops, so the direct query on a two-vertex cycle
  // sees exactly the two directed edges.
  const Graph g = Graph::FromEdges(2, {{0, 1}, {1, 0}, {0, 0}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(CountPathsBruteForce(g, {0, 1, 5}), 1u);
  EXPECT_DOUBLE_EQ(CountWalksDp(g, {0, 1, 5}), 1.0);
}

TEST(ReferenceTest, HopZeroNeverAllowed) {
  const Graph g = PathGraph(3);
  EXPECT_THROW(CountPathsBruteForce(g, {0, 2, 0}), std::logic_error);
}

TEST(ReferenceTest, DpHandlesLargeCountsAsDoubles) {
  // K12 with k = 8 overflows 32-bit counts comfortably; the DP must keep
  // counting (exactly, since everything stays below 2^53).
  const Graph g = CompleteDigraph(12);
  const Query q{0, 11, 8};
  EXPECT_DOUBLE_EQ(CountWalksDp(g, q),
                   static_cast<double>(CompleteWalkCount(12, 8)));
}

TEST(ReferenceTest, DisconnectedIsZero) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(CountPathsBruteForce(g, {0, 3, 8}), 0u);
  EXPECT_DOUBLE_EQ(CountWalksDp(g, {0, 3, 8}), 0.0);
  EXPECT_TRUE(BruteForceWalks(g, {0, 3, 8}).empty());
}

}  // namespace
}  // namespace pathenum
