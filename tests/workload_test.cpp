// Tests for the dataset catalog and the query workload generator (§7.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/bfs.h"
#include "workload/datasets.h"
#include "workload/query_gen.h"

namespace pathenum {
namespace {

TEST(DatasetCatalogTest, HasTheFifteenPaperGraphs) {
  const auto& catalog = PaperCatalog();
  ASSERT_EQ(catalog.size(), 15u);
  const std::set<std::string> expected = {"up", "db", "gg", "st", "tw",
                                          "bk", "tr", "ep", "uk", "wt",
                                          "sl", "lj", "da", "ye", "tm"};
  std::set<std::string> actual;
  for (const auto& spec : catalog) actual.insert(spec.name);
  EXPECT_EQ(actual, expected);
}

TEST(DatasetCatalogTest, FindByName) {
  EXPECT_EQ(FindDataset("ep").description, "Soc-Epinsion1");
  EXPECT_EQ(FindDataset("tm").paper_edges, 1960000000u);
  EXPECT_THROW(FindDataset("nope"), std::invalid_argument);
}

TEST(DatasetCatalogTest, YeastIsKeptAtFullPaperScale) {
  const DatasetSpec& ye = FindDataset("ye");
  EXPECT_EQ(ye.vertices, ye.paper_vertices);
  EXPECT_EQ(ye.edges, ye.paper_edges);
}

TEST(DatasetCatalogTest, InstantiationMatchesSpecApproximately) {
  const Graph g = MakeDataset("ep", 0.2);
  // R-MAT dedups edges, so the edge count is a tight upper bound; the
  // vertex count matches the scaled spec exactly (truncated vertex space).
  EXPECT_EQ(g.num_vertices(), 15000u);
  EXPECT_GT(g.num_edges(), 60000u);
  EXPECT_LE(g.num_edges(), static_cast<uint64_t>(508000 * 0.2) + 1);
}

TEST(DatasetCatalogTest, DeterministicInstantiation) {
  const Graph a = MakeDataset("tw", 0.1);
  const Graph b = MakeDataset("tw", 0.1);
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(DatasetCatalogTest, ScaleChangesSize) {
  const Graph small = MakeDataset("tw", 0.05);
  const Graph larger = MakeDataset("tw", 0.2);
  EXPECT_LT(small.num_edges(), larger.num_edges());
}

// --- Degree partition --------------------------------------------------------

TEST(DegreePartitionTest, SplitsTopTenPercent) {
  const Graph g = MakeDataset("tw", 0.1);
  const auto [high, low] = DegreePartition(g);
  EXPECT_EQ(high.size() + low.size(), g.num_vertices());
  EXPECT_NEAR(static_cast<double>(high.size()),
              0.1 * static_cast<double>(g.num_vertices()), 2.0);
  // Every high vertex has degree >= every low vertex's degree.
  uint32_t min_high = UINT32_MAX;
  for (const VertexId v : high) min_high = std::min(min_high, g.Degree(v));
  for (const VertexId v : low) {
    EXPECT_LE(g.Degree(v), min_high);
  }
}

TEST(DegreePartitionTest, TinyGraphStillSplits) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}, {1, 0}});
  const auto [high, low] = DegreePartition(g);
  EXPECT_GE(high.size(), 1u);
  EXPECT_GE(low.size(), 1u);
}

TEST(DegreePartitionTest, RejectsDegenerateFraction) {
  const Graph g = Graph::FromEdges(3, {{0, 1}});
  EXPECT_THROW(DegreePartition(g, 0.0), std::logic_error);
  EXPECT_THROW(DegreePartition(g, 1.0), std::logic_error);
}

// --- Query generation --------------------------------------------------------

TEST(QueryGenTest, RespectsDistanceConstraintAndPartition) {
  const Graph g = MakeDataset("ep", 0.15);
  QueryGenOptions opts;
  opts.count = 30;
  opts.hops = 6;
  opts.seed = 42;
  const auto queries = GenerateQueries(g, opts);
  ASSERT_GT(queries.size(), 0u);
  const auto [high, low] = DegreePartition(g);
  const std::set<VertexId> high_set(high.begin(), high.end());
  for (const Query& q : queries) {
    EXPECT_NE(q.source, q.target);
    EXPECT_EQ(q.hops, 6u);
    EXPECT_TRUE(WithinDistance(g, q.source, q.target, 3));
    EXPECT_TRUE(high_set.count(q.source)) << "source must be in V'";
    EXPECT_TRUE(high_set.count(q.target)) << "target must be in V'";
  }
}

TEST(QueryGenTest, LowDegreeSetting) {
  const Graph g = MakeDataset("ep", 0.15);
  QueryGenOptions opts;
  opts.source_class = DegreeClass::kLow;
  opts.target_class = DegreeClass::kLow;
  opts.count = 10;
  opts.seed = 7;
  const auto queries = GenerateQueries(g, opts);
  const auto [high, low] = DegreePartition(g);
  const std::set<VertexId> low_set(low.begin(), low.end());
  for (const Query& q : queries) {
    EXPECT_TRUE(low_set.count(q.source));
    EXPECT_TRUE(low_set.count(q.target));
  }
}

TEST(QueryGenTest, DeterministicPerSeed) {
  const Graph g = MakeDataset("tw", 0.1);
  QueryGenOptions opts;
  opts.count = 10;
  opts.seed = 99;
  const auto a = GenerateQueries(g, opts);
  const auto b = GenerateQueries(g, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].target, b[i].target);
  }
  opts.seed = 100;
  const auto c = GenerateQueries(g, opts);
  bool differs = a.size() != c.size();
  for (size_t i = 0; i < std::min(a.size(), c.size()) && !differs; ++i) {
    differs = a[i].source != c[i].source || a[i].target != c[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST(QueryGenTest, ImpossibleSettingReturnsEmpty) {
  // Two disconnected cliques: no high-high pair within distance 3 across
  // them; but within a clique there are — so instead test a graph with no
  // edges at all.
  const Graph g = Graph::FromEdges(10, {});
  QueryGenOptions opts;
  opts.count = 5;
  opts.max_attempts_per_query = 50;
  const auto queries = GenerateQueries(g, opts);
  EXPECT_TRUE(queries.empty());
}

TEST(QueryGenTest, AllFourSettingsProduceQueries) {
  const Graph g = MakeDataset("ep", 0.15);
  for (const DegreeClass sc : {DegreeClass::kHigh, DegreeClass::kLow}) {
    for (const DegreeClass tc : {DegreeClass::kHigh, DegreeClass::kLow}) {
      QueryGenOptions opts;
      opts.source_class = sc;
      opts.target_class = tc;
      opts.count = 5;
      opts.seed = 11;
      EXPECT_GT(GenerateQueries(g, opts).size(), 0u)
          << "setting " << static_cast<int>(sc) << "/"
          << static_cast<int>(tc);
    }
  }
}

}  // namespace
}  // namespace pathenum
