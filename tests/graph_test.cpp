// Unit tests for the Graph/GraphBuilder CSR substrate and edge-list I/O.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "test_util.h"

namespace pathenum {
namespace {

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, FromEdgesBasic) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
}

TEST(GraphTest, NeighborsSortedAscending) {
  const Graph g = Graph::FromEdges(5, {{0, 4}, {0, 1}, {0, 3}, {2, 0}, {1, 0}});
  const auto out = g.OutNeighbors(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  const auto in = g.InNeighbors(0);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
}

TEST(GraphTest, HasEdgeAndFindEdge) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_NE(g.FindEdge(1, 2), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(2, 1), kInvalidEdge);
}

TEST(GraphTest, EdgeIdsAlignWithNeighbors) {
  const Graph g = Graph::FromEdges(4, {{1, 0}, {1, 2}, {1, 3}});
  const auto nbrs = g.OutNeighbors(1);
  for (size_t j = 0; j < nbrs.size(); ++j) {
    EXPECT_EQ(g.FindEdge(1, nbrs[j]), g.OutEdgeId(1, j));
  }
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b(3);
  EXPECT_FALSE(b.AddEdge(1, 1));
  EXPECT_TRUE(b.AddEdge(0, 1));
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, DeduplicatesKeepingFirstAttributes) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 2.5, 7);
  b.AddEdge(0, 1, 9.0, 8);  // duplicate; attributes must be ignored
  const Graph g = b.Build();
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0), 2.5);
  EXPECT_EQ(g.EdgeLabel(0), 7u);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(0, 2), std::logic_error);
}

TEST(GraphBuilderTest, InOutConsistency) {
  const Graph g = testing::PaperExampleGraph();
  uint64_t out_sum = 0, in_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_sum += g.OutDegree(v);
    in_sum += g.InDegree(v);
    for (const VertexId w : g.OutNeighbors(v)) {
      const auto in = g.InNeighbors(w);
      EXPECT_TRUE(std::find(in.begin(), in.end(), v) != in.end())
          << v << "->" << w << " missing from in-adjacency";
    }
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

TEST(GraphBuilderTest, AddGraphCopiesAttributes) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 3.0, 2);
  b.AddEdge(1, 2, 4.0, 1);
  const Graph g = b.Build();
  GraphBuilder b2(3);
  b2.AddGraph(g);
  b2.AddEdge(2, 0, 5.0, 0);
  const Graph g2 = b2.Build();
  EXPECT_EQ(g2.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g2.EdgeWeight(g2.FindEdge(0, 1)), 3.0);
  EXPECT_EQ(g2.EdgeLabel(g2.FindEdge(1, 2)), 1u);
}

TEST(GraphBuilderTest, UnattributedGraphHasNoWeightArrays) {
  const Graph g = Graph::FromEdges(2, {{0, 1}});
  EXPECT_FALSE(g.has_weights());
  EXPECT_FALSE(g.has_labels());
  EXPECT_EQ(g.num_labels(), 0u);
}

TEST(GraphBuilderTest, LabelCountIsMaxPlusOne) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0, 4);
  b.AddEdge(1, 2, 1.0, 2);
  const Graph g = b.Build();
  EXPECT_TRUE(g.has_labels());
  EXPECT_EQ(g.num_labels(), 5u);
}

TEST(GraphTest, MemoryBytesIsPositive) {
  const Graph g = testing::PaperExampleGraph();
  EXPECT_GT(g.MemoryBytes(), 0u);
}

// --- I/O -------------------------------------------------------------------

TEST(GraphIoTest, ParsesSnapStyleInput) {
  std::istringstream in(
      "# comment line\n"
      "0 1\n"
      "1 2\n"
      "\n"
      "% another comment\n"
      "2 0\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(GraphIoTest, SparseIdsKeepMaxPlusOneVertices) {
  std::istringstream in("0 10\n10 5\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.num_vertices(), 11u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIoTest, MalformedLineThrows) {
  std::istringstream in("0 1\nbroken\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(GraphIoTest, WeightedRoundTrip) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.5, 0);
  b.AddEdge(1, 2, 0.5, 0);
  const Graph g = b.Build();
  std::ostringstream out;
  WriteEdgeList(g, out);
  std::istringstream in(out.str());
  const Graph g2 = ReadEdgeList(in, EdgeListFormat::kWeighted);
  ASSERT_EQ(g2.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g2.EdgeWeight(g2.FindEdge(0, 1)), 2.5);
}

TEST(GraphIoTest, WeightedLabeledRoundTrip) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.5, 3);
  b.AddEdge(1, 2, 2.0, 1);
  const Graph g = b.Build();
  std::ostringstream out;
  WriteEdgeList(g, out);
  std::istringstream in(out.str());
  const Graph g2 = ReadEdgeList(in, EdgeListFormat::kWeightedLabeled);
  ASSERT_EQ(g2.num_edges(), 2u);
  EXPECT_EQ(g2.EdgeLabel(g2.FindEdge(0, 1)), 3u);
  EXPECT_EQ(g2.EdgeLabel(g2.FindEdge(1, 2)), 1u);
}

TEST(GraphIoTest, PlainRoundTripPreservesStructure) {
  const Graph g = testing::PaperExampleGraph();
  std::ostringstream out;
  WriteEdgeList(g, out);
  std::istringstream in(out.str());
  const Graph g2 = ReadEdgeList(in);
  ASSERT_EQ(g2.num_vertices(), g.num_vertices());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.OutNeighbors(v);
    const auto b = g2.OutNeighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(GraphIoTest, BinaryRoundTripPlain) {
  const Graph g = testing::PaperExampleGraph();
  const std::string path = ::testing::TempDir() + "pathenum_bin_plain.bin";
  SaveBinary(g, path);
  const Graph g2 = LoadBinary(path);
  ASSERT_EQ(g2.num_vertices(), g.num_vertices());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.OutNeighbors(v);
    const auto b = g2.OutNeighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(GraphIoTest, BinaryRoundTripAttributed) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.25, 3);
  b.AddEdge(1, 2, -1.5, 1);
  const Graph g = b.Build();
  const std::string path = ::testing::TempDir() + "pathenum_bin_attr.bin";
  SaveBinary(g, path);
  const Graph g2 = LoadBinary(path);
  ASSERT_EQ(g2.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g2.EdgeWeight(g2.FindEdge(0, 1)), 2.25);
  EXPECT_EQ(g2.EdgeLabel(g2.FindEdge(1, 2)), 1u);
  EXPECT_EQ(g2.num_labels(), 4u);
}

TEST(GraphIoTest, BinaryRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "pathenum_bin_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a graph";
  }
  EXPECT_THROW(LoadBinary(path), std::runtime_error);
  EXPECT_THROW(LoadBinary("/nonexistent/graph.bin"), std::runtime_error);
}

TEST(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadEdgeList("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(GraphIoTest, MissingWeightColumnThrows) {
  std::istringstream in("0 1\n");
  EXPECT_THROW(ReadEdgeList(in, EdgeListFormat::kWeighted),
               std::runtime_error);
}

}  // namespace
}  // namespace pathenum
