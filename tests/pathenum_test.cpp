// Tests for the PathEnum driver (Fig. 2): strategy selection, the τ
// threshold, stats bookkeeping, validation and calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/path_enum.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"
#include "workload/datasets.h"
#include "workload/query_gen.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

TEST(PathEnumeratorTest, ValidatesQueries) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CountingSink sink;
  EXPECT_THROW(pe.Run({0, 0, 4}, sink), std::logic_error);   // s == t
  EXPECT_THROW(pe.Run({0, 99, 4}, sink), std::logic_error);  // out of range
  EXPECT_THROW(pe.Run({0, 9, 0}, sink), std::logic_error);   // k == 0
  EXPECT_THROW(pe.Run({0, 9, kMaxHops + 1}, sink), std::logic_error);
}

TEST(PathEnumeratorTest, AutoMatchesForcedStrategies) {
  const Graph g = ErdosRenyi(60, 600, 4);
  PathEnumerator pe(g);
  const Query q{0, 1, 5};
  CollectingSink a, b, c;
  EnumOptions dfs_opts;
  dfs_opts.method = Method::kDfs;
  pe.Run(q, a, dfs_opts);
  EnumOptions join_opts;
  join_opts.method = Method::kJoin;
  pe.Run(q, b, join_opts);
  pe.Run(q, c, {});
  EXPECT_EQ(ToSet(a.paths()), ToSet(b.paths()));
  EXPECT_EQ(ToSet(a.paths()), ToSet(c.paths()));
  EXPECT_EQ(ToSet(a.paths()), ToSet(BruteForcePaths(g, q)));
}

TEST(PathEnumeratorTest, SmallSearchSpaceUsesDfsWithoutOptimizing) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CountingSink sink;
  const QueryStats stats = pe.Run(testing::PaperExampleQuery(), sink);
  EXPECT_EQ(stats.method, Method::kDfs);
  EXPECT_GT(stats.preliminary_estimate, 0.0);
  EXPECT_LE(stats.preliminary_estimate, 1e5);
  EXPECT_EQ(stats.optimize_ms, 0.0) << "optimizer must be skipped below tau";
  EXPECT_EQ(sink.count(), 5u);
}

TEST(PathEnumeratorTest, TinyTauForcesFullOptimizer) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CountingSink sink;
  EnumOptions opts;
  opts.tau = 0.0;  // everything exceeds the threshold
  const QueryStats stats = pe.Run(testing::PaperExampleQuery(), sink, opts);
  EXPECT_GT(stats.t_dfs_cost, 0.0);
  EXPECT_GT(stats.t_join_cost, 0.0);
  EXPECT_EQ(sink.count(), 5u);
}

TEST(PathEnumeratorTest, DisablingPreliminaryAlwaysOptimizes) {
  const Graph g = testing::PaperExampleGraph();
  PathEnumerator pe(g);
  CountingSink sink;
  EnumOptions opts;
  opts.use_preliminary_estimator = false;
  const QueryStats stats = pe.Run(testing::PaperExampleQuery(), sink, opts);
  EXPECT_GT(stats.t_dfs_cost, 0.0);
}

TEST(PathEnumeratorTest, CostModelDecidesJoinOnJoinFriendlyTopology) {
  // Wide bipartite middle: |Q[0:1]| and |Q[2:3]|... a bowtie where cutting
  // in the middle is far cheaper than left-deep expansion. Left fan,
  // bottleneck, right fan: s -> a_i -> m -> b_j -> t.
  GraphBuilder b(24);
  const VertexId s = 0, m = 11, t = 23;
  for (VertexId a = 1; a <= 10; ++a) {
    b.AddEdge(s, a);
    b.AddEdge(a, m);
  }
  for (VertexId w = 12; w <= 22; ++w) {
    b.AddEdge(m, w);
    b.AddEdge(w, t);
  }
  const Graph g = b.Build();
  PathEnumerator pe(g);
  CountingSink sink;
  EnumOptions opts;
  opts.tau = 0.0;
  const QueryStats stats = pe.Run({s, t, 4}, sink, opts);
  EXPECT_EQ(sink.count(), 110u);  // 10 * 11 paths
  EXPECT_GT(stats.t_dfs_cost, 0.0);
  EXPECT_GT(stats.t_join_cost, 0.0);
  if (stats.method == Method::kJoin) {
    EXPECT_GE(stats.cut_position, 1u);
    EXPECT_LT(stats.cut_position, 4u);
  }
}

TEST(PathEnumeratorTest, KEqualsOneNeverJoins) {
  const Graph g = Graph::FromEdges(3, {{0, 2}, {0, 1}, {1, 2}});
  PathEnumerator pe(g);
  CollectingSink sink;
  EnumOptions opts;
  opts.method = Method::kJoin;  // must silently degrade to DFS
  const QueryStats stats = pe.Run({0, 2, 1}, sink, opts);
  EXPECT_EQ(stats.method, Method::kDfs);
  EXPECT_EQ(ToSet(sink.paths()), (PathSet{{0, 2}}));
}

TEST(PathEnumeratorTest, StatsBreakdownIsCoherent) {
  const Graph g = MakeDataset("tw", 0.1);
  PathEnumerator pe(g);
  QueryGenOptions qopts;
  qopts.count = 5;
  qopts.hops = 6;
  qopts.seed = 3;
  for (const Query& q : GenerateQueries(g, qopts)) {
    CountingSink sink;
    const QueryStats stats = pe.Run(q, sink);
    EXPECT_GE(stats.index_ms, stats.bfs_ms);
    EXPECT_GE(stats.total_ms,
              stats.index_ms + stats.optimize_ms + stats.enumerate_ms - 1.0);
    EXPECT_EQ(stats.counters.num_results, sink.count());
    EXPECT_GT(stats.index_vertices, 0u);
    EXPECT_GT(stats.index_bytes, 0u);
    EXPECT_LE(stats.response_ms, stats.total_ms + 1e-9);
  }
}

TEST(PathEnumeratorTest, ResponseTimeUsesPreprocessingOffset) {
  const Graph g = LayeredGraph(3, 5);  // 125 paths
  PathEnumerator pe(g);
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  CountingSink sink;
  EnumOptions opts;
  opts.response_target = 50;
  const QueryStats stats = pe.Run(q, sink, opts);
  EXPECT_EQ(sink.count(), 125u);
  // Target reached: response time is below total query time but includes
  // the preprocessing phases.
  EXPECT_GT(stats.response_ms, 0.0);
  EXPECT_LE(stats.response_ms, stats.total_ms + 1e-9);
  EXPECT_GE(stats.response_ms, stats.index_ms - 1e-9);
}

TEST(PathEnumeratorTest, UnreachableQueryReportsEmptyIndex) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  PathEnumerator pe(g);
  CountingSink sink;
  const QueryStats stats = pe.Run({0, 3, 6}, sink);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(stats.index_vertices, 0u);
  EXPECT_EQ(stats.counters.num_results, 0u);
  EXPECT_TRUE(stats.counters.completed());
}

TEST(PathEnumeratorTest, TimeLimitIsReported) {
  const Graph g = CompleteDigraph(32);
  PathEnumerator pe(g);
  CountingSink sink;
  EnumOptions opts;
  opts.time_limit_ms = 1.0;
  const QueryStats stats = pe.Run({0, 31, 8}, sink, opts);
  EXPECT_TRUE(stats.counters.timed_out);
  EXPECT_LT(stats.total_ms, 1000.0) << "must stop well before a second";
}

TEST(CalibrateTauTest, ReturnsPowerOfTenInRange) {
  const Graph g = MakeDataset("tw", 0.1);
  QueryGenOptions qopts;
  qopts.count = 8;
  qopts.hops = 5;
  qopts.seed = 17;
  const auto queries = GenerateQueries(g, qopts);
  const double tau = CalibrateTau(g, queries);
  EXPECT_GE(tau, 10.0);
  EXPECT_LE(tau, 1e8);
  const double log10tau = std::log10(tau);
  EXPECT_NEAR(log10tau, std::round(log10tau), 1e-9);
}

TEST(CalibrateTauTest, EmptySampleFallsBackToPaperDefault) {
  const Graph g = testing::PaperExampleGraph();
  EXPECT_DOUBLE_EQ(CalibrateTau(g, {}), 1e5);
}

}  // namespace
}  // namespace pathenum
