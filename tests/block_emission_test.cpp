// Differential tests for the block-emission hot path (DESIGN.md §9):
// block delivery must be observably identical to per-path delivery —
// identical path sets, identical truncation flags, `delivered == limit`
// exactly at fan-out merge barriers, throwing-sink recovery — plus the
// delta-encoding/PathBlock unit contracts and the fused-slab memory
// accounting of the arena index layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/dfs_enumerator.h"
#include "core/index.h"
#include "core/join_enumerator.h"
#include "core/parallel_dfs.h"
#include "core/reference.h"
#include "engine/query_engine.h"
#include "graph/builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace pathenum {
namespace {

using testing::PaperExampleGraph;
using testing::PaperExampleQuery;
using testing::PathSet;
using testing::ToSet;

/// Collects through OnPath only — PathSink's default OnBlock decodes back
/// to per-path calls, so this observes exactly the pre-block protocol.
class PerPathCollector : public PathSink {
 public:
  explicit PerPathCollector(
      size_t max_paths = std::numeric_limits<size_t>::max())
      : inner_(max_paths) {}
  bool OnPath(std::span<const VertexId> path) override {
    return inner_.OnPath(path);
  }
  const CollectingSink& inner() const { return inner_; }

 private:
  CollectingSink inner_;
};

Graph RandomGraph(VertexId n, uint32_t out_degree, uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t d = 0; d < out_degree; ++d) {
      b.AddEdge(u, static_cast<VertexId>(rng.NextBounded(n)));
    }
  }
  return b.Build();
}

// --- Block emission ≡ per-path emission (complete runs) --------------------

TEST(BlockEmissionTest, DfsBlockAndPerPathProduceIdenticalResults) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    const Graph g = RandomGraph(40, 4, seed);
    const Query q{0, 39, 5};
    IndexBuilder builder;
    const LightweightIndex idx = builder.Build(g, q);
    DfsEnumerator dfs;

    CollectingSink block_sink;
    const EnumCounters block_c = dfs.Run(idx, block_sink, {});
    PerPathCollector per_path;
    const EnumCounters path_c = dfs.Run(idx, per_path, {});

    EXPECT_EQ(ToSet(block_sink.paths()), ToSet(per_path.inner().paths()));
    EXPECT_EQ(ToSet(block_sink.paths()), ToSet(BruteForcePaths(g, q)));
    // On complete (non-stopped) runs every counter matches exactly.
    EXPECT_EQ(block_c.num_results, path_c.num_results);
    EXPECT_EQ(block_c.partials, path_c.partials);
    EXPECT_EQ(block_c.edges_accessed, path_c.edges_accessed);
    EXPECT_EQ(block_c.invalid_partials, path_c.invalid_partials);
    EXPECT_EQ(block_c.completed(), path_c.completed());
  }
}

TEST(BlockEmissionTest, JoinBlockAndPerPathProduceIdenticalResults) {
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  JoinEnumerator join;
  for (uint32_t cut = 1; cut < q.hops; ++cut) {
    CollectingSink block_sink;
    const EnumCounters block_c = join.Run(idx, cut, block_sink, {});
    PerPathCollector per_path;
    const EnumCounters path_c = join.Run(idx, cut, per_path, {});
    EXPECT_EQ(ToSet(block_sink.paths()), ToSet(per_path.inner().paths()));
    EXPECT_EQ(ToSet(block_sink.paths()), ToSet(BruteForcePaths(g, q)));
    EXPECT_EQ(block_c.num_results, path_c.num_results);
    EXPECT_EQ(block_c.partials, path_c.partials);
  }
}

TEST(BlockEmissionTest, ManyPathsSpanManyBlocks) {
  // 3 layers x 8 wide = 512 paths: several PathBlock flushes per run.
  GraphBuilder b(2 + 3 * 8);
  for (uint32_t i = 0; i < 8; ++i) b.AddEdge(0, 1 + i);
  for (uint32_t l = 0; l < 2; ++l) {
    for (uint32_t i = 0; i < 8; ++i) {
      for (uint32_t j = 0; j < 8; ++j) {
        b.AddEdge(1 + l * 8 + i, 1 + (l + 1) * 8 + j);
      }
    }
  }
  for (uint32_t i = 0; i < 8; ++i) b.AddEdge(1 + 2 * 8 + i, 25);
  const Graph g = b.Build();
  const Query q{0, 25, 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  DfsEnumerator dfs;
  CollectingSink block_sink;
  dfs.Run(idx, block_sink, {});
  PerPathCollector per_path;
  dfs.Run(idx, per_path, {});
  EXPECT_EQ(block_sink.paths().size(), 512u);
  EXPECT_EQ(ToSet(block_sink.paths()), ToSet(per_path.inner().paths()));
}

// --- Truncation flags ------------------------------------------------------

TEST(BlockEmissionTest, ResultLimitFlagsMatchPerPath) {
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  const uint64_t total = CountPathsBruteForce(g, q);
  ASSERT_GT(total, 2u);
  DfsEnumerator dfs;
  for (const uint64_t limit : {uint64_t{1}, total - 1, total, total + 1}) {
    EnumOptions opts;
    opts.result_limit = limit;
    CollectingSink block_sink;
    const EnumCounters block_c = dfs.Run(idx, block_sink, opts);
    PerPathCollector per_path;
    const EnumCounters path_c = dfs.Run(idx, per_path, opts);
    EXPECT_EQ(block_c.num_results, path_c.num_results) << "limit " << limit;
    EXPECT_EQ(block_c.num_results, std::min(limit, total));
    EXPECT_EQ(block_c.hit_result_limit, path_c.hit_result_limit);
    EXPECT_EQ(block_c.stopped_by_sink, path_c.stopped_by_sink);
    EXPECT_EQ(ToSet(block_sink.paths()).size(), std::min(limit, total));
  }
}

TEST(BlockEmissionTest, SinkStopFlagsMatchPerPath) {
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  const uint64_t total = CountPathsBruteForce(g, q);
  DfsEnumerator dfs;
  for (uint64_t cap = 1; cap <= total; ++cap) {
    CollectingSink block_sink(cap);
    const EnumCounters block_c = dfs.Run(idx, block_sink, {});
    PerPathCollector per_path(cap);
    const EnumCounters path_c = dfs.Run(idx, per_path, {});
    // A sink refusal (capacity) must surface as stopped_by_sink in both
    // protocols, with the same delivered count; at cap == total the run
    // completes in both.
    EXPECT_EQ(block_c.stopped_by_sink, path_c.stopped_by_sink)
        << "cap " << cap;
    EXPECT_EQ(block_c.num_results, path_c.num_results) << "cap " << cap;
    EXPECT_EQ(block_sink.paths().size(), per_path.inner().paths().size());
    EXPECT_EQ(block_sink.truncated(), per_path.inner().truncated());
  }
}

// --- delivered == limit at merge barriers ----------------------------------

TEST(BlockEmissionTest, SplitEngineDeliversExactlyTheLimit) {
  const Graph g = RandomGraph(60, 5, 11);
  QueryEngine engine(g, {.num_workers = 4});
  const Query q{0, 59, 5};
  CountingSink probe;
  BatchOptions probe_opts;
  probe_opts.split_branches = true;
  PathSink* probe_sink = &probe;
  engine.RunBatch({&q, 1}, {&probe_sink, 1}, probe_opts);
  const uint64_t total = probe.count();
  ASSERT_GT(total, 8u) << "need enough paths to make the limit binding";

  for (const uint64_t limit : {total / 2, total - 1, total}) {
    CountingSink sink;
    PathSink* sink_ptr = &sink;
    BatchOptions opts;
    opts.split_branches = true;
    opts.query.result_limit = limit;
    const BatchResult r = engine.RunBatch({&q, 1}, {&sink_ptr, 1}, opts);
    ASSERT_TRUE(r.ok());
    // The gate pins delivery to the limit exactly — never limit + 1, even
    // when a branch block crosses the limit right at the merge barrier.
    EXPECT_EQ(sink.count(), limit);
    EXPECT_EQ(r.stats[0].counters.num_results, limit);
    EXPECT_TRUE(r.stats[0].counters.hit_result_limit);
    EXPECT_FALSE(r.stats[0].counters.stopped_by_sink);
  }
}

TEST(BlockEmissionTest, ParallelDfsBlockDeliveryMatchesSequential) {
  const Graph g = RandomGraph(50, 5, 23);
  const Query q{0, 49, 5};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  DfsEnumerator seq;
  CollectingSink seq_sink;
  const EnumCounters seq_c = seq.Run(idx, seq_sink, {});

  ParallelDfsEnumerator par(idx, 4);
  std::vector<std::unique_ptr<CollectingSink>> workers;
  std::mutex mu;
  const ParallelEnumResult r = par.Run([&] {
    auto sink = std::make_unique<CollectingSink>();
    CollectingSink* raw = sink.get();
    const std::lock_guard<std::mutex> lock(mu);
    workers.emplace_back(std::move(sink));
    return std::unique_ptr<PathSink>(
        std::make_unique<CallbackSink>([raw](std::span<const VertexId> p) {
          return raw->OnPath(p);
        }));
  });
  PathSet merged;
  for (const auto& w : workers) {
    for (const auto& p : w->paths()) merged.insert(p);
  }
  EXPECT_EQ(merged, ToSet(seq_sink.paths()));
  EXPECT_EQ(r.counters.num_results, seq_c.num_results);
  EXPECT_EQ(r.counters.partials, seq_c.partials);
  EXPECT_EQ(r.counters.edges_accessed, seq_c.edges_accessed);
}

// --- Throwing-sink recovery ------------------------------------------------

class ThrowingSink : public PathSink {
 public:
  explicit ThrowingSink(uint64_t after, bool throw_in_block)
      : after_(after), throw_in_block_(throw_in_block) {}
  bool OnPath(std::span<const VertexId>) override {
    if (++seen_ > after_) throw std::runtime_error("sink exploded");
    return true;
  }
  BlockResult OnBlock(const PathBlockView& block) override {
    if (throw_in_block_) {
      seen_ += block.count;
      if (seen_ > after_) throw std::runtime_error("sink exploded in block");
      return {block.count, false};
    }
    return PathSink::OnBlock(block);  // decodes; OnPath throws mid-block
  }

 private:
  uint64_t after_;
  bool throw_in_block_;
  uint64_t seen_ = 0;
};

TEST(BlockEmissionTest, ThrowingSinkLeavesEnumeratorReusable) {
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  const uint64_t total = CountPathsBruteForce(g, q);
  DfsEnumerator dfs;
  JoinEnumerator join;
  for (const bool in_block : {false, true}) {
    ThrowingSink bomb(1, in_block);
    EXPECT_THROW(dfs.Run(idx, bomb, {}), std::runtime_error);
    CountingSink ok;
    const EnumCounters c = dfs.Run(idx, ok, {});
    EXPECT_EQ(ok.count(), total) << "per-run state must fully re-arm";
    EXPECT_TRUE(c.completed());

    ThrowingSink join_bomb(1, in_block);
    EXPECT_THROW(join.Run(idx, 2, join_bomb, {}), std::runtime_error);
    CountingSink join_ok;
    join.Run(idx, 2, join_ok, {});
    EXPECT_EQ(join_ok.count(), total);
  }
}

// --- RunBranch counter contract --------------------------------------------

TEST(BlockEmissionTest, RunBranchCountsBothStartingPartials) {
  // s -> a -> t: the branch subtree holds the chain (s), (s,a) plus the
  // extension (s,a,t).
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, {0, 2, 2});
  const uint32_t a_slot = idx.OutSlotsWithin(idx.source_slot(), 1)[0];
  DfsEnumerator dfs;
  CountingSink sink;
  const EnumCounters c = dfs.RunBranch(idx, a_slot, sink, {});
  EXPECT_EQ(c.num_results, 1u);
  EXPECT_EQ(c.partials, 3u) << "(s), (s,a), (s,a,t)";
}

// --- PathBlock / BranchSink unit contracts ---------------------------------

TEST(PathBlockTest, DeltaEncodingRoundTrips) {
  PathBlock block;
  const std::vector<std::vector<uint32_t>> paths = {
      {0, 1, 2, 9}, {0, 1, 3, 9}, {0, 1, 3, 5, 9}, {0, 9}, {0, 9}};
  for (const auto& p : paths) block.Append({p.data(), p.size()});
  EXPECT_EQ(block.size(), paths.size());
  uint64_t total_verts = 0;
  for (const auto& p : paths) total_verts += p.size();
  EXPECT_EQ(block.total_path_vertices(), total_verts);

  std::vector<std::vector<VertexId>> decoded;
  const auto r =
      ForEachPathInBlock(PathBlockView(block), [&](std::span<const VertexId> p) {
        decoded.emplace_back(p.begin(), p.end());
        return true;
      });
  EXPECT_EQ(r.consumed, paths.size());
  EXPECT_FALSE(r.stop);
  ASSERT_EQ(decoded.size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(std::vector<uint32_t>(decoded[i].begin(), decoded[i].end()),
              paths[i]);
  }
}

TEST(PathBlockTest, TranslationAppliesToSuffixesOnly) {
  // Translate slots to 100 + slot; shared prefixes must decode translated
  // too (they were translated when first stored).
  std::vector<VertexId> map(16);
  for (VertexId i = 0; i < 16; ++i) map[i] = 100 + i;
  PathBlock block;
  block.AppendDelta(0, std::vector<uint32_t>{0, 1, 2}.data(), 3, map.data());
  const uint32_t suffix[] = {3};
  block.AppendDelta(2, suffix, 1, map.data());
  std::vector<std::vector<VertexId>> decoded;
  ForEachPathInBlock(PathBlockView(block), [&](std::span<const VertexId> p) {
    decoded.emplace_back(p.begin(), p.end());
    return true;
  });
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], (std::vector<VertexId>{100, 101, 102}));
  EXPECT_EQ(decoded[1], (std::vector<VertexId>{100, 101, 103}));
}

TEST(PathBlockTest, PrefixViewTruncates) {
  PathBlock block;
  for (uint32_t i = 0; i < 10; ++i) {
    const uint32_t path[] = {0, i + 1, 99};
    block.Append({path, 3});
  }
  const PathBlockView half = PathBlockView(block).Prefix(4);
  EXPECT_EQ(half.count, 4u);
  EXPECT_EQ(half.total_path_vertices, 12u);
  uint32_t seen = 0;
  ForEachPathInBlock(half, [&](std::span<const VertexId> p) {
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p[1], ++seen);
    return true;
  });
  EXPECT_EQ(seen, 4u);
}

TEST(BranchSinkBlockTest, BlockReservationPinsDeliveredToLimit) {
  Timer timer;
  BranchGate gate(/*result_limit=*/5, /*response_target=*/3, timer);
  CountingSink inner;
  BranchSink sink(gate, inner, BranchSink::Mode::kSerialized);
  PathBlock block;
  for (uint32_t i = 0; i < 8; ++i) {
    const uint32_t path[] = {0, i + 1, 9};
    block.Append({path, 3});
  }
  const auto r = sink.OnBlock(PathBlockView(block));
  EXPECT_EQ(r.consumed, 5u) << "the granted share of an 8-path block";
  EXPECT_TRUE(r.stop) << "limit reached";
  EXPECT_EQ(gate.delivered(), 5u);
  EXPECT_EQ(inner.count(), 5u);
  EXPECT_GE(gate.response_ms(), 0.0) << "target 3 crossed by the block";
  const auto r2 = sink.OnBlock(PathBlockView(block));
  EXPECT_EQ(r2.consumed, 0u);
  EXPECT_TRUE(r2.stop);
  EXPECT_EQ(gate.delivered(), 5u) << "never limit + 1";
}

TEST(BranchSinkBlockTest, SerializedLatchStopsBlockDelivery) {
  Timer timer;
  BranchGate gate(100, 0, timer);
  CollectingSink inner(3);
  BranchSink sink(gate, inner, BranchSink::Mode::kSerialized);
  PathBlock block;
  for (uint32_t i = 0; i < 8; ++i) {
    const uint32_t path[] = {0, i + 1, 9};
    block.Append({path, 3});
  }
  const auto r = sink.OnBlock(PathBlockView(block));
  EXPECT_EQ(r.consumed, 3u);
  EXPECT_TRUE(r.stop);
  EXPECT_TRUE(gate.stopped());
  EXPECT_EQ(sink.OnBlock(PathBlockView(block)).consumed, 0u)
      << "the latch keeps the inner sink from ever being touched again";
  EXPECT_EQ(inner.paths().size(), 3u);
}

// --- Fused-slab memory accounting ------------------------------------------

TEST(FusedIndexTest, MemoryBytesIsExactlyObjectPlusSlab) {
  const Graph g = PaperExampleGraph();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, PaperExampleQuery());
  EXPECT_GT(idx.slab_bytes(), 0u);
  EXPECT_EQ(idx.MemoryBytes(), sizeof(LightweightIndex) + idx.slab_bytes());
  // Rebuilding the same query must cost exactly the same slab.
  const LightweightIndex again = builder.Build(g, PaperExampleQuery());
  EXPECT_EQ(idx.MemoryBytes(), again.MemoryBytes());
  EXPECT_TRUE(idx.out_ends_narrow()) << "tiny degrees fit u16 counts";
}

TEST(FusedIndexTest, SlabAccountsForEveryArray) {
  const Graph g = PaperExampleGraph();
  const Query q = PaperExampleQuery();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  const uint32_t n = idx.num_vertices();
  const uint32_t k = q.hops;
  // Lower bound from the always-present parts (vertices, lookup, cells,
  // begins, adjacency, u16 ends, distance bytes).
  const size_t lower =
      n * sizeof(VertexId)                         // x_vertices
      + g.num_vertices() * sizeof(uint32_t)        // slot_lookup
      + ((k + 1) * (k + 1) + 1) * sizeof(uint32_t) // cell_offsets
      + (n + 1) * sizeof(uint64_t)                 // out_begin
      + static_cast<size_t>(n) * (k + 1) * sizeof(uint16_t)  // out_ends16
      + 2 * n;                                     // slot_ds + slot_dt
  EXPECT_GE(idx.slab_bytes(), lower);
  // An IDX-DFS-only build (no in-direction, no level stats) must be
  // strictly smaller.
  IndexBuildOptions dfs_only;
  dfs_only.build_in_direction = false;
  dfs_only.collect_level_stats = false;
  const LightweightIndex small = builder.Build(g, q, dfs_only);
  EXPECT_LT(small.slab_bytes(), idx.slab_bytes());
  EXPECT_FALSE(small.has_in_direction());
}

TEST(FusedIndexTest, WideDegreeFallsBackToU32Ends) {
  // One hub with > 65535 out-neighbors that all reach t: the cumulative
  // counts overflow u16, forcing the u32 ends table.
  constexpr uint32_t kFan = 70000;
  GraphBuilder b(kFan + 2);
  for (uint32_t i = 0; i < kFan; ++i) {
    b.AddEdge(0, 1 + i);
    b.AddEdge(1 + i, kFan + 1);
  }
  const Graph g = b.Build();
  const Query q{0, kFan + 1, 2};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  EXPECT_FALSE(idx.out_ends_narrow());
  EXPECT_EQ(idx.OutSlotsWithin(idx.source_slot(), 1).size(), kFan);
  DfsEnumerator dfs;
  CountingSink sink;
  const EnumCounters c = dfs.Run(idx, sink, {});
  EXPECT_EQ(sink.count(), kFan) << "u32-ends hot path enumerates correctly";
  EXPECT_TRUE(c.completed());
}

}  // namespace
}  // namespace pathenum
