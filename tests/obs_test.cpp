// Tests for the observability layer (DESIGN.md §12): sharded counters and
// histograms under real concurrency, registry exposition, query-span stage
// accounting end to end through the AsyncEngine, and the Chrome
// trace-event export (validated with a minimal JSON reader).
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "live/async_engine.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace pathenum {
namespace {

// ---------------------------------------------------------------------------
// ShardedCounter / Histogram under concurrency
// ---------------------------------------------------------------------------

TEST(ShardedCounterTest, ConcurrentIncrementsAreExact) {
  obs::ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPer = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPer; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPer);
}

TEST(ShardedCounterTest, WeightedIncrements) {
  obs::ShardedCounter c;
  c.Inc(5);
  c.Inc(0);
  c.Inc(37);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(HistogramTest, ConcurrentObservationsMergeExactly) {
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kPer; ++i) {
        // 1us .. 100us: all observations land in buckets 1..7.
        h.Observe(0.001 * static_cast<double>(i % 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, kThreads * kPer);
  uint64_t bucket_sum = 0;
  for (const uint64_t b : s.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, s.count);
  EXPECT_GT(s.sum_ms, 0.0);
  EXPECT_LE(s.Quantile(0.5), s.Quantile(0.99));
  // 100us falls in the bucket with upper edge 128us = 2^7us.
  EXPECT_LE(s.Quantile(1.0), obs::Histogram::BucketUpperMs(7));
}

TEST(HistogramTest, BucketEdges) {
  obs::Histogram h;
  h.Observe(0.0);        // < 1us -> bucket 0
  h.Observe(0.0005);     // 0.5us -> bucket 0
  h.Observe(1.0);        // 1000us -> bucket 10 (1024us edge)
  const obs::Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[10], 1u);
}

// ---------------------------------------------------------------------------
// MetricRegistry exposition
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, BorrowedCountersAndGaugesDumpAndUnregister) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PATHENUM_OBS=0";
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::ShardedCounter c;
  c.Inc(7);
  int owner = 0;
  reg.RegisterCounter(&owner, "pathenum_test_borrowed_total",
                      "case=\"dump\"", &c);
  reg.RegisterGauge(&owner, "pathenum_test_gauge", "case=\"dump\"",
                    [] { return 3.0; });
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("pathenum_test_borrowed_total{case=\"dump\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pathenum_test_gauge{case=\"dump\"} 3"),
            std::string::npos)
      << text;
  reg.UnregisterOwner(&owner);
  EXPECT_EQ(reg.DumpText().find("pathenum_test_borrowed_total"),
            std::string::npos);
}

TEST(MetricRegistryTest, OwnedHistogramDumpsPrometheusTriplets) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PATHENUM_OBS=0";
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::RegHistogram* h =
      reg.GetHistogram("pathenum_test_ms", "case=\"triplet\"");
  h->Observe(0.5);
  h->Observe(2.0);
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("pathenum_test_ms_bucket{case=\"triplet\",le=\"+Inf\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pathenum_test_ms_sum{case=\"triplet\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pathenum_test_ms_count{case=\"triplet\"} 2"),
            std::string::npos);
  // The JSON exposition carries the same histogram.
  const std::string json = obs::DumpMetricsJson();
  EXPECT_NE(json.find("\"pathenum_test_ms{case=\\\"triplet\\\"}\""),
            std::string::npos)
      << json;
}

TEST(MetricRegistryTest, GetCounterIsStablePerKey) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::RegCounter* a = reg.GetCounter("pathenum_test_stable_total");
  obs::RegCounter* b = reg.GetCounter("pathenum_test_stable_total");
  EXPECT_EQ(a, b);
  a->Inc();
  EXPECT_EQ(b->Value(), obs::kEnabled ? 1u : 0u);
}

// ---------------------------------------------------------------------------
// QuerySpan stage accounting
// ---------------------------------------------------------------------------

TEST(QuerySpanTest, SegmentsAreContiguousAndSumToTotal) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PATHENUM_OBS=0";
  obs::QuerySpan span;
  span.Begin(1, 2, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  span.Mark(obs::SpanStage::kIndexAcquire);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  span.Mark(obs::SpanStage::kEnumerate);
  span.Finish(QueryState::kOk);
  const obs::QuerySpanData& d = span.data();
  EXPECT_EQ(d.source, 1u);
  EXPECT_EQ(d.state, QueryState::kOk);
  ASSERT_GE(d.num_segments, 3u);  // index_acquire, enumerate, sink_complete
  EXPECT_GT(d.StageMs(obs::SpanStage::kIndexAcquire), 0.0);
  EXPECT_GT(d.StageMs(obs::SpanStage::kEnumerate), 0.0);
  // Contiguous segments: the stage sum IS the wall total.
  EXPECT_NEAR(d.SegmentSumMs(), d.total_ms, 0.05 * d.total_ms + 1e-6);
}

TEST(QuerySpanTest, OverflowFoldsIntoLastSegment) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PATHENUM_OBS=0";
  obs::QuerySpan span;
  span.Begin(0, 1, 2);
  for (uint32_t i = 0; i < 3 * obs::QuerySpanData::kMaxSegments; ++i) {
    span.Mark(obs::SpanStage::kEnumerate);
  }
  span.Finish(QueryState::kOk);
  const obs::QuerySpanData& d = span.data();
  EXPECT_LE(d.num_segments, obs::QuerySpanData::kMaxSegments);
  EXPECT_NEAR(d.SegmentSumMs(), d.total_ms, 0.05 * d.total_ms + 1e-6);
}

// The ISSUE acceptance check: an AsyncEngine query's span stage durations
// sum to within 5% of the measured wall time around Submit/Wait. The query
// enumerates a few hundred thousand paths so scheduling wake-ups are noise
// against the enumeration itself.
TEST(QuerySpanTest, AsyncEngineSpanMatchesMeasuredWall) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PATHENUM_OBS=0";
  AsyncEngineOptions opts;
  opts.num_workers = 2;
  AsyncEngine engine(LayeredGraph(7, 6), opts);  // 6^7 = 279936 paths
  CountingSink sink;
  Timer wall;
  QueryTicket ticket =
      engine.Submit({0, static_cast<VertexId>(7 * 6 + 1), 8}, sink);
  const QueryStats& stats = ticket.Wait();
  const double wall_ms = wall.ElapsedMs();
  ASSERT_TRUE(ticket.ok()) << ticket.error();
  EXPECT_GT(stats.counters.num_results, 0u);

  const obs::QuerySpanData span = ticket.span();
  EXPECT_EQ(span.state, QueryState::kOk);
  EXPECT_GT(span.num_segments, 0u);
  EXPECT_GT(span.StageMs(obs::SpanStage::kEnumerate), 0.0);
  // Stage sum == span total (contiguity), and the span covers the measured
  // wall to within 5% (submit/wake overhead is all that may differ).
  EXPECT_NEAR(span.SegmentSumMs(), span.total_ms,
              0.05 * span.total_ms + 1e-6);
  EXPECT_LE(span.total_ms, wall_ms + 1e-3);
  EXPECT_NEAR(span.total_ms, wall_ms, 0.05 * wall_ms + 1.0);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

// A deliberately tiny JSON reader — just enough structure to prove the
// export is well-formed and to walk traceEvents. Throws-free: parse
// failures surface as nullopt and fail the test.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json* Get(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : s_(std::move(text)) {}

  std::optional<Json> Parse() {
    std::optional<Json> v = Value();
    Ws();
    if (!v.has_value() || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void Ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    Ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Lit(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<std::string> String() {
    if (!Eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;  // \" \\ \/ and friends
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return std::nullopt;
    ++pos_;  // closing quote
    return out;
  }

  std::optional<Json> Value() {
    Ws();
    if (pos_ >= s_.size()) return std::nullopt;
    Json v;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      v.kind = Json::Kind::kObject;
      Ws();
      if (Eat('}')) return v;
      do {
        Ws();
        std::optional<std::string> key = String();
        if (!key.has_value() || !Eat(':')) return std::nullopt;
        std::optional<Json> member = Value();
        if (!member.has_value()) return std::nullopt;
        v.fields.emplace(std::move(*key), std::move(*member));
      } while (Eat(','));
      if (!Eat('}')) return std::nullopt;
      return v;
    }
    if (c == '[') {
      ++pos_;
      v.kind = Json::Kind::kArray;
      Ws();
      if (Eat(']')) return v;
      do {
        std::optional<Json> item = Value();
        if (!item.has_value()) return std::nullopt;
        v.items.push_back(std::move(*item));
      } while (Eat(','));
      if (!Eat(']')) return std::nullopt;
      return v;
    }
    if (c == '"') {
      std::optional<std::string> str = String();
      if (!str.has_value()) return std::nullopt;
      v.kind = Json::Kind::kString;
      v.str = std::move(*str);
      return v;
    }
    if (Lit("true")) {
      v.kind = Json::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (Lit("false")) {
      v.kind = Json::Kind::kBool;
      return v;
    }
    if (Lit("null")) return v;
    // Number.
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    v.kind = Json::Kind::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string s_;
  size_t pos_ = 0;
};

TEST(TraceExportTest, ChromeJsonParsesAndNestsStages) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PATHENUM_OBS=0";
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  obs::TraceRecorder::SetSampleEvery(1);  // trace every query

  {
    AsyncEngineOptions opts;
    opts.num_workers = 2;
    AsyncEngine engine(GridGraph(4, 4), opts);
    CountingSink sinks[3];
    std::vector<QueryTicket> tickets;
    for (int i = 0; i < 3; ++i) {
      tickets.push_back(engine.Submit({0, 15, 6}, sinks[i]));
    }
    for (const QueryTicket& t : tickets) t.Wait();
  }
  obs::TraceRecorder::SetSampleEvery(0);

  const std::string json = rec.ExportChromeJson();
  std::optional<Json> root = JsonReader(json).Parse();
  ASSERT_TRUE(root.has_value()) << json;
  ASSERT_EQ(root->kind, Json::Kind::kObject);
  const Json* events = root->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);
  ASSERT_GE(events->items.size(), 3u);

  // Index the enclosing "query" slices by qid, then check every stage
  // slice nests inside its query's [ts, ts+dur] window and that per query
  // the stage durations exactly cover [query ts, last stage end] — the
  // contiguous-tiling guarantee, checked order-insensitively because the
  // export's (ts asc, dur desc) sort may reorder zero-duration slices.
  struct Window {
    double ts = 0.0, end = 0.0;
    double stage_dur_sum = 0.0;
    double min_ts = 0.0, max_end = 0.0;
    size_t stages = 0;
  };
  std::map<uint64_t, Window> windows;
  for (const Json& e : events->items) {
    ASSERT_EQ(e.kind, Json::Kind::kObject);
    ASSERT_NE(e.Get("ph"), nullptr);
    EXPECT_EQ(e.Get("ph")->str, "X");
    ASSERT_NE(e.Get("cat"), nullptr);
    ASSERT_NE(e.Get("ts"), nullptr);
    ASSERT_NE(e.Get("dur"), nullptr);
    const Json* args = e.Get("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->Get("qid"), nullptr);
    if (e.Get("cat")->str != "query") continue;
    const uint64_t qid = static_cast<uint64_t>(args->Get("qid")->number);
    Window w;
    w.ts = e.Get("ts")->number;
    w.end = w.ts + e.Get("dur")->number;
    windows[qid] = w;
    // Query slices carry the terminal state and cache-outcome booleans.
    EXPECT_NE(args->Get("state"), nullptr);
    EXPECT_NE(args->Get("index_cache_hit"), nullptr);
  }
  EXPECT_EQ(windows.size(), 3u);

  for (const Json& e : events->items) {
    if (e.Get("cat")->str != "stage") continue;
    const uint64_t qid =
        static_cast<uint64_t>(e.Get("args")->Get("qid")->number);
    ASSERT_TRUE(windows.count(qid)) << "stage with no enclosing query";
    Window& w = windows[qid];
    const double ts = e.Get("ts")->number;
    const double end = ts + e.Get("dur")->number;
    EXPECT_GE(ts, w.ts) << "stage starts before its query slice";
    EXPECT_LE(end, w.end + 1e-9) << "stage escapes its query slice";
    if (w.stages == 0 || ts < w.min_ts) w.min_ts = ts;
    if (w.stages == 0 || end > w.max_end) w.max_end = end;
    w.stage_dur_sum += end - ts;
    ++w.stages;
  }
  for (const auto& [qid, w] : windows) {
    ASSERT_GE(w.stages, 1u) << "traced query " << qid << " has no stages";
    // Stages begin exactly at the query's admit timestamp and tile the
    // window gaplessly: their durations sum to the span they cover.
    EXPECT_DOUBLE_EQ(w.min_ts, w.ts);
    EXPECT_DOUBLE_EQ(w.stage_dur_sum, w.max_end - w.ts);
  }
  rec.Clear();
}

TEST(TraceExportTest, UnsampledQueriesEmitNothing) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PATHENUM_OBS=0";
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  obs::TraceRecorder::SetSampleEvery(0);  // sampling off (the default)
  {
    AsyncEngineOptions opts;
    opts.num_workers = 1;
    AsyncEngine engine(PathGraph(6), opts);
    CountingSink sink;
    engine.Submit({0, 5, 5}, sink).Wait();
  }
  std::optional<Json> root = JsonReader(rec.ExportChromeJson()).Parse();
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->Get("traceEvents")->items.empty());
}

}  // namespace
}  // namespace pathenum
