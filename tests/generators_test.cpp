// Unit tests for the synthetic graph generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/query.h"
#include "core/reference.h"
#include "graph/generators.h"

namespace pathenum {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  const Graph g = ErdosRenyi(100, 500, 42);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  const Graph a = ErdosRenyi(50, 200, 7);
  const Graph b = ErdosRenyi(50, 200, 7);
  const Graph c = ErdosRenyi(50, 200, 8);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  bool identical = true;
  for (VertexId v = 0; v < a.num_vertices() && identical; ++v) {
    const auto na = a.OutNeighbors(v);
    const auto nb = b.OutNeighbors(v);
    identical = std::equal(na.begin(), na.end(), nb.begin(), nb.end());
  }
  EXPECT_TRUE(identical);
  bool differs = false;
  for (VertexId v = 0; v < a.num_vertices() && !differs; ++v) {
    const auto na = a.OutNeighbors(v);
    const auto nc = c.OutNeighbors(v);
    differs = !std::equal(na.begin(), na.end(), nc.begin(), nc.end());
  }
  EXPECT_TRUE(differs);
}

TEST(ErdosRenyiTest, NoSelfLoopsOrDuplicates) {
  const Graph g = ErdosRenyi(40, 400, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], v);
      if (i > 0) EXPECT_LT(nbrs[i - 1], nbrs[i]);  // strictly sorted = unique
    }
  }
}

TEST(ErdosRenyiTest, RejectsImpossibleDensity) {
  EXPECT_THROW(ErdosRenyi(3, 10, 1), std::logic_error);
}

TEST(ErdosRenyiTest, CompleteGraphPossible) {
  const Graph g = ErdosRenyi(5, 20, 9);  // 5*4 = 20: the full digraph
  EXPECT_EQ(g.num_edges(), 20u);
}

TEST(BarabasiAlbertTest, SizeAndSkew) {
  const Graph g = BarabasiAlbert(2000, 3, 11);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_GT(g.num_edges(), 4000u);
  // Preferential attachment must produce a hub far above the average.
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  const double avg = 2.0 * static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_GT(max_deg, 10 * avg);
}

TEST(RMatTest, ApproximateEdgeCountAndSkew) {
  const Graph g = RMat(12, 40000, 5);
  EXPECT_EQ(g.num_vertices(), 4096u);
  EXPECT_GT(g.num_edges(), 30000u);
  EXPECT_LE(g.num_edges(), 40000u);
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / 4096.0;
  EXPECT_GT(max_deg, 5 * avg) << "R-MAT degree distribution should be skewed";
}

TEST(RMatTest, Deterministic) {
  const Graph a = RMat(8, 1000, 77);
  const Graph b = RMat(8, 1000, 77);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(RMatTest, ExactVertexCountTruncation) {
  // Non-power-of-two vertex spaces: samples beyond n are rejected.
  const Graph g = RMat(10, 3000, 4, 0.57, 0.19, 0.19, /*num_vertices=*/700);
  EXPECT_EQ(g.num_vertices(), 700u);
  EXPECT_GT(g.num_edges(), 2000u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId w : g.OutNeighbors(v)) EXPECT_LT(w, 700u);
  }
}

TEST(RMatTest, RejectsVertexCountBeyondGrid) {
  EXPECT_THROW(RMat(4, 10, 1, 0.57, 0.19, 0.19, /*num_vertices=*/17),
               std::logic_error);
}

TEST(GridGraphTest, StructureAndPathCount) {
  const Graph g = GridGraph(3, 3);
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_edges(), 12u);  // 2*3*(3-1)
  // Corner-to-corner monotone paths in a 3x3 grid: C(4,2) = 6, length 4.
  EXPECT_EQ(CountPathsBruteForce(g, {0, 8, 4}), 6u);
  // With a tighter hop bound than the Manhattan distance: none.
  EXPECT_EQ(CountPathsBruteForce(g, {0, 8, 3}), 0u);
}

TEST(LayeredGraphTest, ExactPathCounts) {
  // width^layers paths, all of length layers + 1.
  const Graph g = LayeredGraph(3, 2);
  const VertexId sink = g.num_vertices() - 1;
  EXPECT_EQ(CountPathsBruteForce(g, {0, sink, 4}), 8u);
  EXPECT_EQ(CountPathsBruteForce(g, {0, sink, 3}), 0u);
  const Graph wide = LayeredGraph(2, 5);
  EXPECT_EQ(CountPathsBruteForce(wide, {0, wide.num_vertices() - 1, 3}), 25u);
}

TEST(LayeredGraphTest, ZeroLayersIsSingleEdge)
{
  const Graph g = LayeredGraph(0, 3);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, g.num_vertices() - 1));
}

TEST(CompleteDigraphTest, AllOrderedPairs) {
  const Graph g = CompleteDigraph(6);
  EXPECT_EQ(g.num_edges(), 30u);
  // Paths s->t with <= 2 hops in K6: direct + 4 through intermediates.
  EXPECT_EQ(CountPathsBruteForce(g, {0, 5, 2}), 5u);
}

TEST(CycleGraphTest, SinglePathAroundTheRing) {
  const Graph g = CycleGraph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(CountPathsBruteForce(g, {0, 3, 6}), 1u);
  EXPECT_EQ(CountPathsBruteForce(g, {0, 3, 2}), 0u);
}

TEST(StarGraphTest, HubRouting) {
  const Graph g = StarGraph(5);
  // Spoke to spoke must go through the hub: one path of length 2.
  EXPECT_EQ(CountPathsBruteForce(g, {1, 2, 6}), 1u);
}

TEST(PathGraphTest, OnlyTheLinePath) {
  const Graph g = PathGraph(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(CountPathsBruteForce(g, {0, 4, 4}), 1u);
  EXPECT_EQ(CountPathsBruteForce(g, {0, 4, 3}), 0u);
}

}  // namespace
}  // namespace pathenum
