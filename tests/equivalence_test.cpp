// Cross-algorithm equivalence property tests: on a grid of random graphs
// and queries, every algorithm in the repository must produce exactly the
// same result set as the brute-force oracle — and therefore as each other.
// Also checks the paper's walk/path propositions on the same grid.
#include <gtest/gtest.h>

#include <set>

#include "baselines/algorithm.h"
#include "core/estimator.h"
#include "core/index.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::CollectPaths;
using testing::PathSet;
using testing::ToSet;

struct GraphCase {
  std::string name;
  Graph graph;
  Query query;
};

std::vector<GraphCase> MakeCases() {
  std::vector<GraphCase> cases;
  // Deterministic topologies with known structure.
  cases.push_back({"paper_example", testing::PaperExampleGraph(),
                   testing::PaperExampleQuery()});
  cases.push_back({"figure5_g1", testing::Figure5G1(), {0, 7, 4}});
  {
    Graph g = LayeredGraph(3, 3);
    const VertexId t = g.num_vertices() - 1;
    cases.push_back({"layered", std::move(g), {0, t, 5}});
  }
  {
    Graph g = GridGraph(4, 3);
    cases.push_back({"grid", std::move(g), {0, 11, 6}});
  }
  cases.push_back({"complete_k8", CompleteDigraph(8), {0, 7, 4}});
  cases.push_back({"cycle", CycleGraph(7), {0, 4, 6}});
  cases.push_back({"star", StarGraph(8), {1, 5, 4}});
  // Random families.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = ErdosRenyi(30, 160, seed);
    cases.push_back({"er_" + std::to_string(seed), std::move(g),
                     {static_cast<VertexId>(seed % 30),
                      static_cast<VertexId>((seed * 13 + 7) % 30),
                      3 + static_cast<uint32_t>(seed % 3)}});
  }
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = RMat(5, 150, seed * 53);
    cases.push_back({"rmat_" + std::to_string(seed), std::move(g),
                     {static_cast<VertexId>((seed * 3) % 32),
                      static_cast<VertexId>((seed * 11 + 5) % 32),
                      3 + static_cast<uint32_t>(seed % 4)}});
  }
  // Drop degenerate queries.
  std::vector<GraphCase> valid;
  for (auto& c : cases) {
    if (c.query.source != c.query.target) valid.push_back(std::move(c));
  }
  return valid;
}

class EquivalenceTest : public ::testing::TestWithParam<size_t> {
 public:
  static const std::vector<GraphCase>& Cases() {
    static const std::vector<GraphCase>* cases =
        new std::vector<GraphCase>(MakeCases());
    return *cases;
  }
};

TEST_P(EquivalenceTest, AllAlgorithmsAgreeWithBruteForce) {
  const GraphCase& c = Cases()[GetParam()];
  const PathSet expected = ToSet(BruteForcePaths(c.graph, c.query));
  for (const std::string& name : AllAlgorithmNames()) {
    const auto algo = MakeAlgorithm(name, c.graph);
    EXPECT_EQ(CollectPaths(*algo, c.query), expected)
        << name << " disagrees on " << c.name;
  }
}

TEST_P(EquivalenceTest, WalksDominatePathsAndEstimatorIsExact) {
  const GraphCase& c = Cases()[GetParam()];
  const uint64_t paths = CountPathsBruteForce(c.graph, c.query);
  const double walks_dp = CountWalksDp(c.graph, c.query);
  const auto walks = BruteForceWalks(c.graph, c.query);
  EXPECT_EQ(static_cast<double>(walks.size()), walks_dp) << c.name;
  EXPECT_LE(static_cast<double>(paths), walks_dp) << c.name;
  // Proposition 5.1 + Theorem 3.1: the full-fledged DP over the index
  // counts exactly the walks.
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(c.graph, c.query);
  const JoinPlan plan = OptimizeJoinOrder(idx);
  EXPECT_DOUBLE_EQ(plan.TotalWalks(), walks_dp) << c.name;
}

TEST_P(EquivalenceTest, EveryWalkContainsEveryPathPrefix) {
  // Proposition 5.1 second half, spot-checked: each path is a walk, and
  // each walk's proper prefixes never contain t.
  const GraphCase& c = Cases()[GetParam()];
  const auto walks = BruteForceWalks(c.graph, c.query);
  const PathSet paths = ToSet(BruteForcePaths(c.graph, c.query));
  const PathSet walk_set = ToSet(walks);
  for (const auto& p : paths) {
    EXPECT_TRUE(walk_set.count(p)) << c.name;
  }
  for (const auto& w : walks) {
    for (size_t i = 0; i + 1 < w.size(); ++i) {
      EXPECT_NE(w[i], c.query.target) << c.name;
      if (i > 0) {
        EXPECT_NE(w[i], c.query.source) << c.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EquivalenceTest,
    ::testing::Range<size_t>(0, EquivalenceTest::Cases().size()),
    [](const auto& info) {
      return EquivalenceTest::Cases()[info.param].name;
    });

// Cross-check the cycle-enumeration reduction used by the fraud example:
// cycles through edge (v, v') of length <= k are exactly the paths
// q(v', v, k-1) plus the closing edge.
TEST(CycleReductionTest, MatchesDirectCycleSearch) {
  const Graph g = RMat(5, 120, 9);
  uint32_t checked = 0;
  for (VertexId v = 0; v < g.num_vertices() && checked < 5; ++v) {
    for (const VertexId w : g.OutNeighbors(v)) {
      if (v == w) continue;
      const Query q{w, v, 5};
      const auto cycles_via_paths = BruteForcePaths(g, q);
      for (const auto& p : cycles_via_paths) {
        // Closing edge must exist by construction.
        EXPECT_TRUE(g.HasEdge(v, w));
        EXPECT_EQ(p.front(), w);
        EXPECT_EQ(p.back(), v);
      }
      ++checked;
      break;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace pathenum
