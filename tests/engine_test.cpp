// Tests for the batch QueryEngine subsystem: the thread pool, batch-vs-
// sequential result equivalence (both scheduling modes), context reuse
// across hundreds of queries, per-query limit isolation, and the
// zero-allocation steady state of the pooled scratch.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "core/path_enum.h"
#include "engine/query_engine.h"
#include "core/thread_pool.h"
#include "graph/generators.h"
#include "live/live_oracle.h"
#include "live/snapshot.h"
#include "test_util.h"
#include "util/memory.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace pathenum {
namespace {

using testing::PathSet;
using testing::ToSet;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_workers(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.RunOnAllWorkers([&](uint32_t w) { hits[w]++; });
  pool.RunOnAllWorkers([&](uint32_t w) { hits[w]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1u);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.RunOnAllWorkers([](uint32_t w) {
    if (w == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> sum{0};
  pool.RunOnAllWorkers([&](uint32_t) { sum++; });
  EXPECT_EQ(sum.load(), 3);
}

// ---------------------------------------------------------------------------
// BumpArena
// ---------------------------------------------------------------------------

TEST(BumpArenaTest, AllocationsAreAlignedAndDisjoint) {
  BumpArena arena;
  auto a = arena.AllocateSpan<uint8_t>(3);
  auto b = arena.AllocateSpan<uint64_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % alignof(uint64_t), 0u);
  std::fill(a.begin(), a.end(), uint8_t{0xaa});
  std::fill(b.begin(), b.end(), uint64_t{42});
  EXPECT_EQ(a[2], 0xaa);
  EXPECT_EQ(b[0], 42u);
}

TEST(BumpArenaTest, SteadyStateStopsAllocating) {
  BumpArena arena;
  auto workload = [&] {
    arena.Reset();
    arena.AllocateSpan<uint32_t>(1000);
    arena.AllocateSpan<uint8_t>(5000);
    arena.AllocateSpan<uint64_t>(300);
  };
  workload();
  workload();  // consolidation may allocate once more
  const uint64_t warm = arena.chunk_allocations();
  const size_t capacity = arena.capacity_bytes();
  for (int i = 0; i < 50; ++i) workload();
  EXPECT_EQ(arena.chunk_allocations(), warm)
      << "arena kept allocating in steady state";
  EXPECT_EQ(arena.capacity_bytes(), capacity);
}

TEST(BumpArenaTest, GrowthKeepsEarlierAllocationsValid) {
  BumpArena arena;
  auto first = arena.AllocateSpan<uint32_t>(100);
  std::iota(first.begin(), first.end(), 0u);
  arena.AllocateSpan<uint32_t>(1 << 20);  // forces a new chunk
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(first[i], i);
}

// ---------------------------------------------------------------------------
// QueryEngine result equivalence
// ---------------------------------------------------------------------------

std::vector<Query> MixedQueries(const Graph& g) {
  // A deterministic spread of endpoints and hop counts, endpoints valid for
  // any graph with >= 40 vertices.
  std::vector<Query> queries;
  for (VertexId s = 0; s < 8; ++s) {
    for (uint32_t k = 2; k <= 5; ++k) {
      const VertexId t = (s + 17 + k) % g.num_vertices();
      if (s == t) continue;
      queries.push_back({s, t, k});
    }
  }
  return queries;
}

TEST(QueryEngineTest, BatchMatchesSequentialPathSets) {
  const Graph g = ErdosRenyi(60, 600, 4);
  const std::vector<Query> queries = MixedQueries(g);

  PathEnumerator sequential(g);
  std::vector<PathSet> expected;
  for (const Query& q : queries) {
    CollectingSink sink;
    sequential.Run(q, sink);
    expected.push_back(ToSet(sink.paths()));
  }

  for (const uint32_t workers : {1u, 2u, 4u}) {
    QueryEngine engine(g, {.num_workers = workers});
    std::vector<CollectingSink> collected(queries.size());
    std::vector<PathSink*> sinks;
    for (auto& c : collected) sinks.push_back(&c);
    const BatchResult result = engine.RunBatch(queries, sinks);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.stats.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(ToSet(collected[i].paths()), expected[i])
          << "query " << i << " at " << workers << " workers";
    }
  }
}

TEST(QueryEngineTest, SplitBranchesMatchesSequentialPathSets) {
  const Graph g = ErdosRenyi(50, 500, 11);
  const std::vector<Query> queries = {{0, 20, 5}, {3, 40, 4}, {7, 13, 6}};

  PathEnumerator sequential(g);
  QueryEngine engine(g, {.num_workers = 3});
  std::vector<CollectingSink> collected(queries.size());
  std::vector<PathSink*> sinks;
  for (auto& c : collected) sinks.push_back(&c);
  BatchOptions opts;
  opts.split_branches = true;
  const BatchResult result = engine.RunBatch(queries, sinks, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    CollectingSink expected;
    sequential.Run(queries[i], expected);
    EXPECT_EQ(ToSet(collected[i].paths()), ToSet(expected.paths()))
        << "split query " << i;
    EXPECT_EQ(result.stats[i].counters.num_results, expected.paths().size());
  }
}

TEST(QueryEngineTest, SplitJoinMatchesSequentialPathSets) {
  // Forced IDX-JOIN through split mode: the two halves materialize as
  // independent units, meet at the merge barrier, and the parallel probe
  // must produce exactly the serial join's path set.
  const Graph g = ErdosRenyi(50, 500, 11);
  const std::vector<Query> queries = {{0, 20, 5}, {3, 40, 4}, {7, 13, 6}};

  PathEnumerator sequential(g);
  for (const uint32_t workers : {1u, 3u}) {
    QueryEngine engine(g, {.num_workers = workers});
    std::vector<CollectingSink> collected(queries.size());
    std::vector<PathSink*> sinks;
    for (auto& c : collected) sinks.push_back(&c);
    BatchOptions opts;
    opts.split_branches = true;
    opts.query.method = Method::kJoin;
    const BatchResult result = engine.RunBatch(queries, sinks, opts);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      CollectingSink expected;
      EnumOptions seq_opts;
      seq_opts.method = Method::kJoin;
      sequential.Run(queries[i], expected, seq_opts);
      EXPECT_EQ(ToSet(collected[i].paths()), ToSet(expected.paths()))
          << "split join query " << i << " at " << workers << " workers";
      EXPECT_EQ(result.stats[i].counters.num_results,
                expected.paths().size());
      EXPECT_EQ(result.stats[i].method, Method::kJoin);
    }
  }
}

TEST(QueryEngineTest, SplitModePlansLikeTheSerialPipeline) {
  // kAuto through split mode must pick the same method the serial pipeline
  // picks (the shared PlanExecution path) and return the same answers.
  const Graph g = ErdosRenyi(60, 700, 5);
  const std::vector<Query> queries = {{0, 30, 6}, {1, 45, 5}, {9, 50, 4}};

  PathEnumerator sequential(g);
  QueryEngine engine(g, {.num_workers = 3});
  std::vector<CollectingSink> collected(queries.size());
  std::vector<PathSink*> sinks;
  for (auto& c : collected) sinks.push_back(&c);
  BatchOptions opts;
  opts.split_branches = true;
  const BatchResult result = engine.RunBatch(queries, sinks, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    CollectingSink expected;
    const QueryStats seq = sequential.Run(queries[i], expected);
    EXPECT_EQ(result.stats[i].method, seq.method) << "query " << i;
    EXPECT_EQ(ToSet(collected[i].paths()), ToSet(expected.paths()))
        << "query " << i;
  }
}

TEST(QueryEngineTest, SplitModeExactLimitNeverDeliversLimitPlusOne) {
  // The merge-barrier double-count regression, end to end: with the result
  // limit exactly at / one under the full count, the caller's sink must
  // see exactly `limit` paths — never limit + 1 — for both the DFS branch
  // fan-out and the split join's barrier, and the truncation flags must
  // match the serial run's.
  const Graph g = ErdosRenyi(50, 500, 11);
  const Query q{0, 20, 5};
  PathEnumerator sequential(g);
  CountingSink full;
  sequential.Run(q, full);
  ASSERT_GT(full.count(), 3u);

  for (const Method method : {Method::kDfs, Method::kJoin}) {
    for (uint64_t limit : {full.count(), full.count() - 1, uint64_t{1}}) {
      QueryEngine engine(g, {.num_workers = 4});
      CountingSink sink;
      PathSink* sinks[] = {&sink};
      BatchOptions opts;
      opts.split_branches = true;
      opts.query.method = method;
      opts.query.result_limit = limit;
      const BatchResult result =
          engine.RunBatch(std::span<const Query>{&q, 1}, sinks, opts);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(sink.count(), limit)
          << MethodName(method) << " limit=" << limit;
      EXPECT_EQ(result.stats[0].counters.num_results, limit);
      CountingSink seq_sink;
      EnumOptions seq_opts;
      seq_opts.method = method;
      seq_opts.result_limit = limit;
      const QueryStats seq = sequential.Run(q, seq_sink, seq_opts);
      EXPECT_EQ(result.stats[0].counters.hit_result_limit,
                seq.counters.hit_result_limit)
          << MethodName(method) << " limit=" << limit;
      EXPECT_EQ(result.stats[0].counters.stopped_by_sink,
                seq.counters.stopped_by_sink)
          << MethodName(method) << " limit=" << limit;
    }
  }
}

TEST(QueryEngineTest, CountBatchMatchesReference) {
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  QueryEngine engine(g, {.num_workers = 2});
  const BatchResult result = engine.CountBatch(std::vector<Query>{q, q, q});
  ASSERT_TRUE(result.ok());
  CountingSink reference;
  PathEnumerator(g).Run(q, reference);
  for (const QueryStats& s : result.stats) {
    EXPECT_EQ(s.counters.num_results, reference.count());
  }
}

// ---------------------------------------------------------------------------
// Context reuse and isolation
// ---------------------------------------------------------------------------

TEST(QueryEngineTest, ContextsSurviveHundredsOfQueries) {
  const Graph g = BarabasiAlbert(120, 4, 9);
  std::vector<Query> queries;
  for (int rep = 0; rep < 10; ++rep) {
    for (const Query& q : MixedQueries(g)) queries.push_back(q);
  }
  ASSERT_GE(queries.size(), 100u);

  QueryEngine engine(g, {.num_workers = 2});
  const BatchResult batched = engine.CountBatch(queries);
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(engine.Stats().queries_run, queries.size());

  PathEnumerator sequential(g);
  for (size_t i = 0; i < queries.size(); ++i) {
    CountingSink sink;
    sequential.Run(queries[i], sink);
    ASSERT_EQ(batched.stats[i].counters.num_results, sink.count())
        << "query " << i << " diverged after context reuse";
  }
}

/// A sink that gives up after `stop_after` paths — simulates a client
/// cancelling mid-query.
class QuittingSink : public PathSink {
 public:
  explicit QuittingSink(uint64_t stop_after) : remaining_(stop_after) {}
  bool OnPath(std::span<const VertexId>) override {
    return remaining_-- > 1;
  }

 private:
  uint64_t remaining_;
};

/// Fails the test if OnPath is ever invoked again after it returned false
/// (the documented PathSink stop contract; a real sink may tear down its
/// state on that signal).
class StopContractSink : public PathSink {
 public:
  bool OnPath(std::span<const VertexId>) override {
    EXPECT_FALSE(stopped_) << "OnPath called after it returned false";
    if (++count_ >= 3) {
      stopped_ = true;
      return false;
    }
    return true;
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
  bool stopped_ = false;
};

TEST(QueryEngineTest, SplitModeHonorsSinkStopContract) {
  const Graph g = ErdosRenyi(60, 700, 33);
  const Query heavy{0, 30, 6};
  QueryEngine engine(g, {.num_workers = 4});
  StopContractSink sink;
  PathSink* sinks[] = {&sink};
  BatchOptions opts;
  opts.split_branches = true;
  const BatchResult result =
      engine.RunBatch(std::span<const Query>{&heavy, 1}, sinks, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_TRUE(result.stats[0].counters.stopped_by_sink);
}

TEST(QueryEngineTest, LimitHitDoesNotPoisonLaterQueries) {
  const Graph g = ErdosRenyi(60, 700, 21);
  const Query heavy{0, 30, 6};
  const Query light{5, 25, 4};

  // Reference counts from a fresh sequential enumerator.
  CountingSink heavy_ref, light_ref;
  PathEnumerator(g).Run(heavy, heavy_ref);
  PathEnumerator(g).Run(light, light_ref);
  ASSERT_GT(heavy_ref.count(), 10u);
  ASSERT_GT(light_ref.count(), 0u);

  // One worker forces every query through the same context, in order:
  // result-limited, sink-stopped, then an unconstrained one.
  QueryEngine engine(g, {.num_workers = 1});

  std::vector<Query> queries = {heavy, heavy, light};
  CountingSink limited_sink, after_sink;
  QuittingSink quitting(3);
  std::vector<PathSink*> sinks = {&limited_sink, &quitting, &after_sink};
  BatchOptions opts;
  opts.query.result_limit = 5;
  BatchResult result = engine.RunBatch(queries, sinks, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.stats[0].counters.hit_result_limit);
  EXPECT_EQ(result.stats[0].counters.num_results, 5u);
  EXPECT_TRUE(result.stats[1].counters.stopped_by_sink);
  EXPECT_EQ(result.stats[2].counters.num_results,
            std::min<uint64_t>(light_ref.count(), 5u));
  EXPECT_FALSE(result.stats[2].counters.stopped_by_sink);

  // A later batch on the same (reused) contexts with no limits is exact.
  const BatchResult clean =
      engine.CountBatch(std::vector<Query>{heavy, light});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.stats[0].counters.num_results, heavy_ref.count());
  EXPECT_EQ(clean.stats[1].counters.num_results, light_ref.count());
  EXPECT_FALSE(clean.stats[0].counters.hit_result_limit);
}

TEST(QueryEngineTest, InvalidQueryReportsErrorWithoutPoisoningBatch) {
  const Graph g = ErdosRenyi(40, 300, 5);
  const std::vector<Query> queries = {{0, 10, 4},
                                      {2, 2, 4},    // s == t: invalid
                                      {1, 20, 3}};
  QueryEngine engine(g, {.num_workers = 2});
  const BatchResult result = engine.CountBatch(queries);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.errors[0].empty());
  EXPECT_FALSE(result.errors[1].empty());
  EXPECT_TRUE(result.errors[2].empty());

  CountingSink ref;
  PathEnumerator(g).Run(queries[2], ref);
  EXPECT_EQ(result.stats[2].counters.num_results, ref.count());
  // The rejected query never executed and must not be counted as served.
  EXPECT_EQ(engine.Stats().queries_run, 2u);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

TEST(QueryEngineTest, ScratchStopsGrowingAcrossRepeatedBatches) {
  const Graph g = ErdosRenyi(80, 900, 13);
  const std::vector<Query> queries = MixedQueries(g);
  // One worker makes the query->context assignment deterministic, so the
  // scratch footprint must be bit-stable once warmed (with stealing, which
  // context saw which query — and hence per-context capacity — can vary
  // run to run even though each context individually stops growing).
  QueryEngine engine(g, {.num_workers = 1});

  // Warm-up: two passes let every buffer reach workload size and the
  // arenas consolidate.
  engine.CountBatch(queries);
  engine.CountBatch(queries);
  const size_t warm = engine.Stats().scratch_bytes;
  ASSERT_GT(warm, 0u);

  for (int rep = 0; rep < 5; ++rep) engine.CountBatch(queries);
  EXPECT_EQ(engine.Stats().scratch_bytes, warm)
      << "per-query scratch kept growing after warm-up";
}

TEST(PathEnumeratorTest, SequentialScratchStableAcrossRepeats) {
  const Graph g = BarabasiAlbert(100, 5, 3);
  PathEnumerator pe(g);
  const std::vector<Query> queries = MixedQueries(g);

  std::vector<uint64_t> first_counts;
  for (int rep = 0; rep < 2; ++rep) {
    for (const Query& q : queries) {
      CountingSink sink;
      pe.Run(q, sink);
      if (rep == 0) first_counts.push_back(sink.count());
    }
  }
  const size_t warm = pe.ScratchBytes();
  size_t i = 0;
  for (const Query& q : queries) {
    CountingSink sink;
    pe.Run(q, sink);
    EXPECT_EQ(sink.count(), first_counts[i++]);
  }
  EXPECT_EQ(pe.ScratchBytes(), warm);
}

// ---------------------------------------------------------------------------
// Oracle rejection in the sync engine: terminal-state reporting and
// graph-identity (uid) keying across rebinds.
// ---------------------------------------------------------------------------

// Two disconnected path components: 0..9 and 10..19.
Graph TwoComponentGraph() {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 9; ++v) edges.push_back({v, v + 1});
  for (VertexId v = 10; v < 19; ++v) edges.push_back({v, v + 1});
  return Graph::FromEdges(20, edges);
}

TEST(EngineOracleTest, UnsatisfiableQueriesReportTerminalStateInAllModes) {
  const Graph g = TwoComponentGraph();
  const PrunedLandmarkIndex labels = PrunedLandmarkIndex::Build(g);
  const Query unsat{0, 15, 6};   // cross-component
  const Query unsat_dup = unsat; // dedup group member
  const Query sat{0, 5, 6};
  for (const bool split : {false, true}) {
    QueryEngine engine(g, {.num_workers = 2}, &labels);
    const std::vector<Query> queries{unsat, sat, unsat_dup};
    std::vector<CountingSink> sinks(queries.size());
    std::vector<PathSink*> sink_ptrs;
    for (auto& s : sinks) sink_ptrs.push_back(&s);
    BatchOptions opts;
    opts.split_branches = split;
    const BatchResult r = engine.RunBatch(queries, sink_ptrs, opts);
    ASSERT_TRUE(r.ok());
    // The observability contract for a shed query: a distinct terminal
    // state, the oracle_rejected flag, and an empty-but-delivered result.
    EXPECT_EQ(r.states[0], QueryState::kUnsatisfiable) << "split=" << split;
    EXPECT_EQ(r.states[2], QueryState::kUnsatisfiable) << "split=" << split;
    EXPECT_TRUE(r.stats[0].counters.oracle_rejected);
    EXPECT_TRUE(DeliveredResults(r.states[0]));
    EXPECT_EQ(r.stats[0].counters.num_results, 0u);
    EXPECT_EQ(sinks[0].count(), 0u);
    EXPECT_EQ(r.states[1], QueryState::kOk);
    EXPECT_EQ(sinks[1].count(), 1u);  // the one 6-hop-bounded 0..5 path
    EXPECT_EQ(engine.Stats().oracle_rejects, 2u) << "split=" << split;
  }
}

TEST(EngineOracleTest, OracleRearmIsKeyedOnGraphIdentityNotAddress) {
  // Regression: the engine used to re-arm its bound oracle by comparing
  // raw base-graph addresses across RunBatch(view) rebinds. Identity must
  // follow Graph::uid — a copied Graph (same topology lineage, different
  // address) keeps the oracle; an unrelated Graph (same shape, same
  // version, possibly a recycled address) must not.
  const Graph g = TwoComponentGraph();
  const PrunedLandmarkIndex labels = PrunedLandmarkIndex::Build(g);
  QueryEngine engine(g, {.num_workers = 1}, &labels);
  const std::vector<Query> queries{Query{0, 15, 6}};
  const auto run = [&](const GraphView& view) {
    std::vector<CountingSink> sinks(1);
    std::vector<PathSink*> sink_ptrs{&sinks[0]};
    return engine.RunBatch(view, queries, sink_ptrs, {});
  };

  // Same-uid copy: the oracle stays armed and keeps rejecting.
  const Graph copy = g;
  ASSERT_EQ(copy.uid(), g.uid());
  const BatchResult on_copy = run(GraphView(copy));
  ASSERT_TRUE(on_copy.ok());
  EXPECT_EQ(on_copy.states[0], QueryState::kUnsatisfiable);
  EXPECT_EQ(engine.Stats().oracle_rejects, 1u);

  // A freshly built graph with identical shape at the same version: a
  // different identity, so the oracle must stay disarmed — the query runs
  // the full pipeline (and correctly finds nothing).
  const Graph unrelated = TwoComponentGraph();
  ASSERT_NE(unrelated.uid(), g.uid());
  const BatchResult on_unrelated = run(GraphView(unrelated));
  ASSERT_TRUE(on_unrelated.ok());
  EXPECT_EQ(on_unrelated.states[0], QueryState::kOk);
  EXPECT_EQ(on_unrelated.stats[0].counters.num_results, 0u);
  EXPECT_EQ(engine.Stats().oracle_rejects, 1u);  // unchanged

  // An overlay over the original base invalidates the labels: disarmed for
  // that batch (the inserted bridge must not be wrongly rejected) ...
  const GraphView bridged =
      GraphView(g).Apply(GraphDelta{}.Insert(5, 15), 1);
  const BatchResult on_overlay = run(bridged);
  ASSERT_TRUE(on_overlay.ok());
  EXPECT_EQ(on_overlay.states[0], QueryState::kOk);
  EXPECT_EQ(on_overlay.stats[0].counters.num_results, 1u);
  // ... and re-armed the moment the engine returns to the overlay-free
  // base snapshot.
  const BatchResult back = run(GraphView(g));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.states[0], QueryState::kUnsatisfiable);
  EXPECT_EQ(engine.Stats().oracle_rejects, 2u);
}

TEST(EngineOracleTest, LiveOracleRejectionsMatchOracleOffUnderRebinds) {
  // Differential: one engine consults a LiveDistanceOracle across a churn
  // of overlay rebinds, the other runs bare. Same per-query answers,
  // always; the oracle only changes *how* unsatisfiable queries finish.
  Rng rng(321);
  const VertexId n = 20;
  const Graph base = ErdosRenyi(n, 30, /*seed=*/17);
  SnapshotManager mgr(base);
  LiveOracleOptions oracle_opts;
  oracle_opts.background_relabel = false;
  oracle_opts.relabel_budget = 6;
  LiveDistanceOracle oracle(mgr.Current()->base(), oracle_opts);
  mgr.AttachOracle(&oracle);

  QueryEngine with_oracle(*mgr.Current(), {.num_workers = 2});
  with_oracle.SetLiveOracle(&oracle);
  QueryEngine without(*mgr.Current(), {.num_workers = 2});

  std::vector<Query> queries;
  for (VertexId s = 0; s < n; s += 3) {
    queries.push_back(Query{s, static_cast<VertexId>(n - 1 - s), 4});
  }
  for (uint64_t epoch = 1; epoch <= 8; ++epoch) {
    GraphDelta delta;
    for (int i = 0; i < 4; ++i) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (rng.NextBounded(3) == 0) {
        delta.Delete(u, v);
      } else {
        delta.Insert(u, v);
      }
    }
    mgr.Apply(delta);
    const SnapshotManager::Published pub = mgr.CurrentPublished();
    std::vector<CountingSink> sinks_on(queries.size());
    std::vector<CountingSink> sinks_off(queries.size());
    std::vector<PathSink*> ptrs_on, ptrs_off;
    for (size_t i = 0; i < queries.size(); ++i) {
      ptrs_on.push_back(&sinks_on[i]);
      ptrs_off.push_back(&sinks_off[i]);
    }
    const BatchResult r_on =
        with_oracle.RunBatch(*pub.snapshot, queries, ptrs_on, {});
    const BatchResult r_off =
        without.RunBatch(*pub.snapshot, queries, ptrs_off, {});
    ASSERT_TRUE(r_on.ok());
    ASSERT_TRUE(r_off.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(r_on.stats[i].counters.num_results,
                r_off.stats[i].counters.num_results)
          << "epoch " << epoch << " query " << i;
      if (r_on.states[i] == QueryState::kUnsatisfiable) {
        ASSERT_EQ(r_off.stats[i].counters.num_results, 0u)
            << "epoch " << epoch << " query " << i << " wrongly rejected";
      }
    }
  }
  EXPECT_GT(with_oracle.Stats().oracle_rejects, 0u);
  EXPECT_EQ(without.Stats().oracle_rejects, 0u);
}

}  // namespace
}  // namespace pathenum
