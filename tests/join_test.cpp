// Tests for IDX-JOIN (paper Algorithm 6): equivalence with IDX-DFS and
// brute force at every cut position, padding behaviour, limits, memory
// accounting.
#include <gtest/gtest.h>

#include "core/dfs_enumerator.h"
#include "core/index.h"
#include "core/join_enumerator.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pathenum {
namespace {

using testing::kS;
using testing::kT;
using testing::PathSet;
using testing::ToSet;

PathSet RunJoin(const Graph& g, const Query& q, uint32_t cut,
                EnumCounters* counters = nullptr,
                const EnumOptions& opts = {}) {
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  JoinEnumerator join(idx);
  CollectingSink sink;
  const EnumCounters c = join.Run(cut, sink, opts);
  if (counters != nullptr) *counters = c;
  return ToSet(sink.paths());
}

TEST(JoinEnumeratorTest, PaperExampleAtEveryCut) {
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  const PathSet expected = ToSet(BruteForcePaths(g, q));
  for (uint32_t cut = 1; cut < q.hops; ++cut) {
    EXPECT_EQ(RunJoin(g, q, cut), expected) << "cut=" << cut;
  }
}

TEST(JoinEnumeratorTest, ShortPathsSurviveViaPadding) {
  // The length-2 path (s, v0, t) must appear regardless of the cut, thanks
  // to the (t,t) padding tuples.
  const Graph g = testing::PaperExampleGraph();
  const Query q = testing::PaperExampleQuery();
  for (uint32_t cut = 1; cut < 4; ++cut) {
    const PathSet paths = RunJoin(g, q, cut);
    EXPECT_TRUE(paths.count({kS, 1, kT})) << "cut=" << cut;  // v0 == 1
  }
}

TEST(JoinEnumeratorTest, RejectsInvalidCut) {
  const Graph g = testing::PaperExampleGraph();
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, testing::PaperExampleQuery());
  JoinEnumerator join(idx);
  CollectingSink sink;
  EXPECT_THROW(join.Run(0, sink, {}), std::logic_error);
  EXPECT_THROW(join.Run(4, sink, {}), std::logic_error);
}

TEST(JoinEnumeratorTest, UnreachableTargetYieldsNothing) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  EnumCounters c;
  EXPECT_TRUE(RunJoin(g, {0, 3, 4}, 2, &c).empty());
  EXPECT_EQ(c.num_results, 0u);
}

TEST(JoinEnumeratorTest, CrossHalfDuplicatesAreFiltered) {
  // Cycle 0 -> 1 -> 2 -> 3 -> 0 plus chord 2 -> 1: the sequence
  // (0,1,2,1,...) must never survive the join validity check.
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {2, 1}});
  const Query q{0, 3, 4};
  EnumCounters c;
  const PathSet paths = RunJoin(g, q, 2, &c);
  EXPECT_EQ(paths, (PathSet{{0, 1, 2, 3}}));
}

TEST(JoinEnumeratorTest, InvalidJoinCandidatesAreCounted) {
  // Two diamonds sharing their middle vertex create half-walks that join
  // into non-simple sequences.
  const Graph g = Graph::FromEdges(
      6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 1}, {1, 5}, {4, 5}});
  const Query q{0, 5, 5};
  EnumCounters c;
  const PathSet paths = RunJoin(g, q, 2, &c);
  EXPECT_EQ(paths, ToSet(BruteForcePaths(g, q)));
  EXPECT_GT(c.invalid_partials, 0u)
      << "expected at least one rejected join candidate";
}

TEST(JoinEnumeratorTest, PartialMemoryAccounted) {
  const Graph g = LayeredGraph(3, 4);
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  EnumCounters c;
  RunJoin(g, q, 2, &c);
  EXPECT_GT(c.peak_partial_bytes, 0u);
  EXPECT_GT(c.partials, 0u);
}

TEST(JoinEnumeratorTest, ResultLimitStops) {
  const Graph g = LayeredGraph(3, 4);  // 64 paths
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  EnumOptions opts;
  opts.result_limit = 7;
  EnumCounters c;
  const PathSet paths = RunJoin(g, q, 2, &c, opts);
  EXPECT_EQ(paths.size(), 7u);
  EXPECT_TRUE(c.hit_result_limit);
}

TEST(JoinEnumeratorTest, ZeroTimeBudgetTimesOut) {
  const Graph g = CompleteDigraph(24);
  EnumOptions opts;
  opts.time_limit_ms = 0.0;
  EnumCounters c;
  RunJoin(g, {0, 23, 6}, 3, &c, opts);
  EXPECT_TRUE(c.timed_out);
}

TEST(JoinEnumeratorTest, ResponseTimeRecorded) {
  const Graph g = LayeredGraph(3, 4);
  const Query q{0, static_cast<VertexId>(g.num_vertices() - 1), 4};
  EnumOptions opts;
  opts.response_target = 10;
  EnumCounters c;
  RunJoin(g, q, 2, &c, opts);
  EXPECT_GE(c.response_ms, 0.0);
}

TEST(JoinEnumeratorTest, AgreesWithDfsOnDenseGraph) {
  const Graph g = CompleteDigraph(9);
  const Query q{0, 8, 4};
  IndexBuilder builder;
  const LightweightIndex idx = builder.Build(g, q);
  DfsEnumerator dfs(idx);
  CollectingSink dfs_sink;
  dfs.Run(dfs_sink, {});
  const PathSet expected = ToSet(dfs_sink.paths());
  // K9 with k=4: 1 + 7 + 7*6 + 7*6*5 = 260 paths.
  EXPECT_EQ(expected.size(), 260u);
  for (uint32_t cut = 1; cut < 4; ++cut) {
    EXPECT_EQ(RunJoin(g, q, cut), expected) << "cut=" << cut;
  }
}

class JoinRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinRandomTest, EveryCutMatchesBruteForce) {
  const uint64_t seed = GetParam();
  const Graph g = ErdosRenyi(36, 250, seed);
  for (uint32_t k = 3; k <= 6; ++k) {
    const Query q{static_cast<VertexId>((seed * 5) % 36),
                  static_cast<VertexId>((seed * 17 + 11) % 36), k};
    if (q.source == q.target) continue;
    const PathSet expected = ToSet(BruteForcePaths(g, q));
    for (uint32_t cut = 1; cut < k; ++cut) {
      EXPECT_EQ(RunJoin(g, q, cut), expected)
          << "seed=" << seed << " k=" << k << " cut=" << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinRandomTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace pathenum
