// MVCC snapshot publication for the live-graph subsystem (DESIGN.md §7).
//
// A SnapshotManager owns the version counter and the chain of published
// `GraphView`s over one base graph. Each update epoch produces a new
// immutable snapshot (base + composed overlay) at version v+1; in-flight
// queries keep the shared_ptr of the snapshot they started on and are never
// disturbed. When the overlay outgrows its budget the epoch *compacts*:
// the view is folded into a fresh standalone CSR base, so overlay lookups
// stay O(1)-with-small-constants and memory stays proportional to one graph
// plus the recent churn.
//
// `Prepare` computes an epoch without publishing it, so a caller can
// invalidate caches for the new version *before* any query can observe it
// (IndexCache::BeginEpoch), then `Publish`. `Apply` fuses both for callers
// without caches. Epoch preparation must be serialized by the caller (one
// updater at a time); `Current` is safe from any thread.
#ifndef PATHENUM_LIVE_SNAPSHOT_H_
#define PATHENUM_LIVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "graph/view.h"
#include "live/impact.h"
#include "live/live_oracle.h"
#include "obs/metrics.h"

namespace pathenum {

struct SnapshotOptions {
  /// Compact when the overlay's touched-vertex tables exceed this fraction
  /// of |V| ...
  double compact_touched_fraction = 1.0 / 16;
  /// ... but never below this absolute count (small graphs would otherwise
  /// compact on every epoch).
  size_t compact_min_touched = 1024;
  /// Hop-constraint ceiling the per-epoch impact analysis certifies
  /// (queries with larger k are conservatively treated as affected — see
  /// live/impact.h). The paper's workloads use k in [3, 8].
  uint32_t max_hops = 8;
};

class SnapshotManager {
 public:
  /// Takes ownership of `base` as the version-0 snapshot.
  explicit SnapshotManager(Graph base, const SnapshotOptions& opts = {});
  explicit SnapshotManager(std::shared_ptr<const Graph> base,
                           const SnapshotOptions& opts = {});
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// The latest published snapshot. Callers hold the shared_ptr for as long
  /// as they enumerate it (MVCC: later epochs never disturb it).
  std::shared_ptr<const GraphView> Current() const;

  uint64_t version() const;

  /// Stamps a live distance oracle onto this manager: every epoch from now
  /// on carries an oracle epoch prepared in Prepare and installed in
  /// Publish, so snapshot and oracle claims advance atomically. Must be
  /// called before the first Prepare, with an oracle whose current epoch
  /// describes exactly the version-0 snapshot (build it from the same base
  /// graph). `oracle` is borrowed and must outlive the manager's updates.
  void AttachOracle(LiveDistanceOracle* oracle);

  /// The latest published {snapshot, oracle epoch} pair, consistent under
  /// one lock — the oracle ref (empty when no oracle is attached) is valid
  /// for exactly that snapshot. Query front-ends consult this instead of
  /// Current() when they want pre-run rejection.
  struct Published {
    std::shared_ptr<const GraphView> snapshot;
    LiveDistanceOracle::EpochRef oracle;
  };
  Published CurrentPublished() const;

  /// One prepared-but-unpublished update epoch.
  struct Epoch {
    std::shared_ptr<const GraphView> snapshot;  // the version v+1 view
    UpdateImpact impact;  // eviction predicate vs. the previous snapshot
    /// The matching oracle epoch (empty when no oracle is attached).
    LiveDistanceOracle::EpochRef oracle;
    bool compacted = false;
  };

  /// Computes the epoch for `delta` on top of Current() without publishing:
  /// Current() still returns the old snapshot. The caller invalidates its
  /// caches with `epoch.impact` and then calls Publish. Prepare/Publish
  /// pairs must not interleave across threads.
  Epoch Prepare(const GraphDelta& delta);

  /// Makes `epoch.snapshot` the current snapshot.
  void Publish(const Epoch& epoch);

  /// Prepare + Publish, for callers without caches to invalidate.
  Epoch Apply(const GraphDelta& delta);

  struct Stats {
    uint64_t updates = 0;
    uint64_t compactions = 0;
    size_t overlay_bytes = 0;  // current snapshot's overlay footprint
  };
  Stats stats() const;

  const SnapshotOptions& options() const { return opts_; }

 private:
  SnapshotOptions opts_;
  mutable std::mutex mutex_;  // guards current_, oracle_, current_oracle_
  std::shared_ptr<const GraphView> current_;
  LiveDistanceOracle* oracle_ = nullptr;  // borrowed; see AttachOracle
  LiveDistanceOracle::EpochRef current_oracle_;
  /// Only written under mutex_; ShardedCounter storage keeps them
  /// registry-readable without it (pathenum_snapshot_* metrics).
  obs::ShardedCounter updates_;
  obs::ShardedCounter compactions_;
};

}  // namespace pathenum

#endif  // PATHENUM_LIVE_SNAPSHOT_H_
