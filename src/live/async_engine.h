// Asynchronous streaming front-end over the live-graph subsystem
// (DESIGN.md §7): Submit(query, sink) -> QueryTicket enqueues work onto the
// persistent ThreadPool and returns immediately; paths stream into the
// caller's PathSink from a worker thread as they are found (the standard
// sink contract — return false to stop early). SubmitUpdate(delta) applies
// an update epoch: it prepares the next snapshot, incrementally invalidates
// the shared cache for the new version (IndexCache::BeginEpoch with the
// epoch's UpdateImpact), and only then publishes — so every query observes
// exactly the snapshot that was current when it was submitted, updates
// never corrupt in-flight enumerations, and unaffected hot keys keep their
// cached indexes across updates.
//
// Threading contract: Submit/TrySubmit and SubmitUpdate may be called from
// any thread (updates serialize internally). A plain query's sink is
// invoked from exactly one worker thread for the duration of that query; a
// split query's sink (SubmitOptions::split_branches) may be invoked from
// several workers but calls are serialized through the shared BranchSink
// with its per-ticket stop latch (DESIGN.md §8), so plain sinks stay safe.
// Paths stream as delta-encoded blocks (DESIGN.md §9): a sink overriding
// OnBlock consumes whole blocks — one serialized delivery per ~256 paths
// on a split ticket — while OnPath-only sinks transparently receive the
// decoded per-path sequence.
// The ticket's Wait() synchronizes with the query's completion. Shutdown
// drains the admission queue before stopping the workers; the destructor
// shuts down.
#ifndef PATHENUM_LIVE_ASYNC_ENGINE_H_
#define PATHENUM_LIVE_ASYNC_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "core/query.h"
#include "core/sink.h"
#include "engine/index_cache.h"
#include "engine/query_context.h"
#include "core/thread_pool.h"
#include "live/live_oracle.h"
#include "live/snapshot.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pathenum {

struct AsyncEngineOptions {
  /// What happens when a submission finds the admission queue full.
  enum class ShedPolicy : uint8_t {
    /// Newest loses: Submit blocks until space frees; TrySubmit returns an
    /// invalid ticket (counted in queue_rejects) with a retry-after hint.
    kRejectNewest,
    /// Oldest loses: the oldest *queued* (never an in-flight) submission
    /// is completed as QueryState::kCancelled and the new one is admitted
    /// immediately — Submit never blocks under this policy. Right for
    /// freshness-sensitive traffic where a stale queued query has already
    /// missed its purpose.
    kCancelOldest,
  };

  /// Worker threads. 0 picks hardware_concurrency().
  uint32_t num_workers = 0;
  /// Bounded admission: Submit blocks (TrySubmit fails) when this many
  /// queries are already queued.
  size_t max_queue = 1024;
  /// Overload behavior at the admission boundary.
  ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
  /// Shared cross-query cache (incrementally invalidated across updates).
  bool enable_cache = true;
  IndexCacheOptions cache;
  /// Snapshot lifecycle knobs (compaction budget, impact radius).
  SnapshotOptions snapshot;
  /// Standing live distance oracle (DESIGN.md §13): when on, the engine
  /// keeps a LiveDistanceOracle in lockstep with the snapshot stream and
  /// rejects oracle-certified-unsatisfiable submissions at admission — the
  /// ticket completes as QueryState::kUnsatisfiable without ever queueing.
  bool enable_oracle = false;
  LiveOracleOptions oracle;
  /// Opportunistic batched index builds (DESIGN.md §11): a worker claiming
  /// a cache-missing submission peeks at the co-pending queue and, when at
  /// least this many same-snapshot same-fingerprint cache-missing queries
  /// (its own included) are waiting, fuses their index builds into one
  /// multi-source BFS sweep and publishes every slab through the cache —
  /// the queued tickets then hit the cache when claimed. 0 disables.
  /// Effective only with enable_cache and admission_min_uses == 1.
  uint32_t batch_build_min = 4;
};

/// Per-submission knobs.
struct SubmitOptions {
  /// Applied to the query's enumeration.
  EnumOptions query;

  /// Heavy-ticket mode (DESIGN.md §8): the claiming worker builds the
  /// index on the submission's snapshot, then fans the first-level DFS
  /// branches out as units that *idle* workers cooperatively drain between
  /// queue pops — one straggler query no longer serializes behind the
  /// update stream, and every branch unit observes exactly the ticket's
  /// snapshot (the units run on the immutable per-query index). Limit and
  /// truncation semantics are identical to the serial path via the shared
  /// BranchGate's per-ticket stop latch. Forces IDX-DFS.
  bool split_branches = false;
};

/// Completion handle for one submitted query. Cheap to copy; all copies
/// share the completion state.
class QueryTicket {
 public:
  QueryTicket() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the query finished (or was rejected); returns its stats.
  /// A rejected/failed query returns default stats — check ok()/error().
  const QueryStats& Wait() const;

  /// Non-blocking completion probe.
  bool Done() const;

  /// After Wait: empty on success, else the rejection/failure message.
  const std::string& error() const;
  bool ok() const { return error().empty(); }

  /// The query's terminal state (DESIGN.md §10). kOk until Done(); after
  /// completion: kOk / kTruncated / kDeadlineExceeded / kCancelled for runs
  /// that delivered a (possibly empty) well-formed result, kRejected /
  /// kError when nothing ran / the run failed.
  QueryState state() const;

  /// Requests cooperative cancellation of this query: a queued submission
  /// completes as kCancelled without running; a running one winds down at
  /// its next cancellation checkpoint, keeping everything delivered so far.
  /// Idempotent; safe from any thread. When the submission carried a
  /// caller-provided cancel token, this fires that token (cancelling
  /// whatever else shares it).
  void Cancel() const;

  /// The snapshot version this query observes (assigned at Submit).
  uint64_t snapshot_version() const;

  /// The query's lifecycle span record (DESIGN.md §12): stage durations
  /// from admission to completion. Meaningful after Done(); zeroed under
  /// PATHENUM_OBS=0.
  obs::QuerySpanData span() const;

 private:
  friend class AsyncEngine;

  struct State {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    bool done = false;
    QueryStats stats;
    std::string error;
    QueryState query_state = QueryState::kOk;
    CancelToken cancel;  // always cancellable; set at Submit
    uint64_t snapshot_version = 0;
    obs::QuerySpanData span_data;  // copied from the finished span
  };

  explicit QueryTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class AsyncEngine {
 public:
  /// Takes ownership of `base` as the version-0 snapshot.
  explicit AsyncEngine(Graph base, const AsyncEngineOptions& opts = {});
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Enqueues `q` against the current snapshot; `sink` receives the paths
  /// from a worker thread and must outlive the query (use the ticket).
  /// Blocks while the admission queue is full; returns an errored ticket
  /// after Shutdown.
  QueryTicket Submit(const Query& q, PathSink& sink,
                     const EnumOptions& opts = {});
  QueryTicket Submit(const Query& q, PathSink& sink,
                     const SubmitOptions& opts);

  /// Non-blocking Submit. Under kRejectNewest a full queue (or a shut-down
  /// engine) yields an invalid ticket, counts a reject, and — when
  /// `retry_after_ms` is non-null — writes a backlog-derived hint for when
  /// to retry. Under kCancelOldest a full queue sheds the oldest queued
  /// ticket instead and this submission is admitted.
  QueryTicket TrySubmit(const Query& q, PathSink& sink,
                        const EnumOptions& opts = {});
  QueryTicket TrySubmit(const Query& q, PathSink& sink,
                        const SubmitOptions& opts,
                        double* retry_after_ms = nullptr);

  /// Applies one update epoch and returns the new snapshot version.
  /// Queries submitted before this call observe the old snapshot; queries
  /// submitted after it observe the new one (or a newer). The delta must be
  /// valid (endpoints inside the base vertex space) — Apply throws
  /// otherwise; untrusted update streams go through TrySubmitUpdate.
  uint64_t SubmitUpdate(const GraphDelta& delta);

  /// Status-returning SubmitUpdate for untrusted deltas: validates the
  /// endpoints up front (kInvalidArgument, nothing applied) and refuses
  /// after Shutdown (kUnavailable). On success writes the new snapshot
  /// version to `new_version` (if non-null).
  Status TrySubmitUpdate(const GraphDelta& delta,
                         uint64_t* new_version = nullptr);

  /// The snapshot new submissions would observe right now.
  std::shared_ptr<const GraphView> Snapshot() const {
    return snapshots_.Current();
  }

  uint64_t version() const { return snapshots_.version(); }
  uint32_t num_workers() const { return pool_.num_workers(); }

  /// Blocks until every already-submitted query has completed.
  void Drain();

  /// Stops the workers. By default the queue drains first (every queued
  /// ticket runs to completion); with `cancel_pending` the queued tickets
  /// are instead completed immediately as kCancelled without running —
  /// bounded-time teardown under load. In-flight queries always finish
  /// (cancel them through their tickets for a faster exit). Further
  /// Submits return errored tickets. Idempotent.
  void Shutdown(bool cancel_pending = false);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t updates = 0;
    uint64_t compactions = 0;
    uint64_t queue_rejects = 0;   // TrySubmit refusals (kRejectNewest)
    uint64_t sheds = 0;           // queued tickets shed by kCancelOldest
    /// Tickets whose cancel fired while still queued: completed as
    /// kCancelled at claim time without running.
    uint64_t cancelled_before_run = 0;
    /// Submissions the live oracle certified unsatisfiable at admission:
    /// completed as kUnsatisfiable without queueing (enable_oracle only).
    uint64_t oracle_rejects = 0;
    uint64_t version = 0;
    size_t queue_depth = 0;       // queued, not yet claimed
    IndexCacheStats cache;        // zeros when the cache is disabled
    /// Batched-build activity (DESIGN.md §11): indexes published from
    /// fused multi-source sweeps, the shared sweeps' actual edge scans,
    /// and the solo-equivalent sum those builds would have cost.
    uint64_t batched_builds = 0;
    uint64_t batched_edges_scanned = 0;
    uint64_t batched_solo_edges = 0;
  };
  Stats stats() const;

  /// The shared cache, or null when disabled.
  IndexCache* cache() { return cache_.get(); }

  /// The standing live oracle, or null unless enable_oracle. Exposed for
  /// stats inspection and for tests to WaitForRelabel.
  LiveDistanceOracle* oracle() { return oracle_.get(); }

 private:
  struct Submission {
    Query query;
    PathSink* sink = nullptr;
    EnumOptions opts;
    bool split = false;
    std::shared_ptr<const GraphView> snapshot;
    std::shared_ptr<QueryTicket::State> state;
    /// Lifecycle span: begun at admission (queue_wait runs until a worker
    /// claims the task) and finished on every completion path — run,
    /// shed, pre-run cancel, or shutdown orphan.
    obs::QuerySpan span;
  };

  /// One split ticket's shared fan-out state (DESIGN.md §8). The leader —
  /// the worker that claimed the submission — owns the job's lifetime: it
  /// publishes the job, drains units itself, retires the job from the
  /// registry, and waits for the helpers that joined before merging. The
  /// index shared_ptr keeps the enumeration's snapshot-consistent input
  /// alive however long helpers run.
  struct SplitJob {
    SplitJob(std::shared_ptr<const LightweightIndex> idx,
             std::span<const uint32_t> branch_units, PathSink& inner,
             const EnumOptions& query_opts)
        : index(std::move(idx)),
          branches(branch_units),
          opts(query_opts),
          deadline(Deadline::AfterMs(query_opts.time_limit_ms)),
          gate(query_opts.result_limit, query_opts.response_target, timer),
          sink(gate, inner, BranchSink::Mode::kSerialized) {}

    std::shared_ptr<const LightweightIndex> index;
    std::span<const uint32_t> branches;  // into *index, kept alive above
    const EnumOptions opts;
    Timer timer;  // enumeration stopwatch (feeds enumerate_ms)
    /// One absolute deadline for the whole fan-out; every unit derives its
    /// remaining budget from it (DrainBranches/BranchOptions).
    const Deadline deadline;
    BranchGate gate;
    BranchSink sink;
    std::atomic<uint32_t> cursor{0};
    std::atomic<bool> stop_claims{false};

    std::mutex mutex;  // guards the fields below
    std::condition_variable helpers_done;
    uint32_t active_helpers = 0;
    std::vector<EnumCounters> worker_counters;
    /// First participant failure (a throwing sink, typically). Set with
    /// stop_claims + gate.Stop() so the other participants wind down; the
    /// leader turns it into the ticket's error after the merge barrier.
    std::string error;
  };

  void WorkerLoop(uint32_t worker);
  void Execute(QueryContext& ctx, Submission& task);
  void ExecuteSplit(QueryContext& ctx, Submission& task);

  /// Opportunistic batched prebuild (DESIGN.md §11): when `task`'s index
  /// is a cache miss, drains co-pending same-snapshot same-fingerprint
  /// cache-missing submissions from the queue *by key only* (they stay
  /// queued) into one fused BuildBatch and publishes every member's slab
  /// through the cache's single-flight latch. Per-member cancel/deadline
  /// come from each ticket; a tripped member is skipped (it will build
  /// solo at claim time and report its own terminal state). One batch at
  /// a time engine-wide (batch_mutex_) bounds the K-wide field memory; a
  /// busy builder or any failure just falls back to solo builds.
  void MaybeBatchPrebuild(Submission& task);

  /// True when some registered split job still has unclaimed units —
  /// part of the worker wait predicate; queue_mutex_ must be held.
  bool HasSplitWorkLocked() const;
  /// Registers this worker as a helper on a job with remaining units, or
  /// returns null; queue_mutex_ must be held.
  std::shared_ptr<SplitJob> ClaimSplitWorkLocked();
  /// Drains units of `job` on this worker's context and folds the
  /// counters in (leader and helpers share this path).
  static void DrainSplitUnits(SplitJob& job, QueryContext& ctx);

  /// Finishes `span` with `query_state` (recording metrics / trace), copies
  /// its record into the ticket state, and signals the waiters.
  static void Complete(QueryTicket::State& state, const QueryStats& stats,
                       std::string error, QueryState query_state,
                       obs::QuerySpan* span = nullptr);

  /// Finishes an admission-time oracle rejection: terminal kUnsatisfiable
  /// span + ticket completion. Called outside queue_mutex_.
  static void CompleteUnsatisfiable(Submission& task);

  /// Completes the oldest queued submission as kCancelled (the
  /// kCancelOldest shed); queue_mutex_ must be held and queue_ non-empty.
  void ShedOldestLocked();

  /// Backlog-derived retry hint for a rejected TrySubmit; queue_mutex_
  /// must be held.
  double RetryAfterLockedMs() const;

  AsyncEngineOptions opts_;
  SnapshotManager snapshots_;
  /// Standing oracle, advanced inside SnapshotManager::Prepare/Publish via
  /// AttachOracle; null unless enable_oracle. The manager only dereferences
  /// its borrowed pointer from Prepare/Publish, which cannot be in flight
  /// once ~AsyncEngine has shut the engine down.
  std::unique_ptr<LiveDistanceOracle> oracle_;
  std::unique_ptr<IndexCache> cache_;  // null unless enable_cache
  ThreadPool pool_;
  std::vector<std::unique_ptr<QueryContext>> contexts_;  // one per worker

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable idle_;
  std::deque<Submission> queue_;
  /// Split jobs idle workers may help with (guarded by queue_mutex_; the
  /// jobs' own state is synchronized by their atomics/mutex).
  std::deque<std::shared_ptr<SplitJob>> split_jobs_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  /// Lifecycle counters, registered as pathenum_async_* metrics. The first
  /// four are only ever written under queue_mutex_; ShardedCounter storage
  /// keeps them registry-readable without the lock.
  obs::ShardedCounter submitted_;
  obs::ShardedCounter executed_;
  obs::ShardedCounter queue_rejects_;
  obs::ShardedCounter sheds_;
  /// EWMA of per-query wall time, feeding the retry-after hint.
  double avg_exec_ms_ = 0.0;
  obs::ShardedCounter cancelled_before_run_;
  /// Admission-time oracle rejections (written under queue_mutex_).
  obs::ShardedCounter oracle_rejects_;

  /// Batched-prebuild state (MaybeBatchPrebuild): one builder guarded by a
  /// try_lock mutex — concurrent claimers skip batching rather than queue.
  std::mutex batch_mutex_;
  IndexBuilder batch_builder_;
  obs::ShardedCounter batched_builds_;
  obs::ShardedCounter batched_edges_scanned_;
  obs::ShardedCounter batched_solo_edges_;

  std::mutex update_mutex_;  // serializes Prepare..BeginEpoch..Publish
  std::mutex shutdown_mutex_;  // serializes the runner join

  std::thread runner_;  // drives pool_.RunOnAllWorkers(WorkerLoop)
};

}  // namespace pathenum

#endif  // PATHENUM_LIVE_ASYNC_ENGINE_H_
