#include "live/live_oracle.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "live/impact.h"

namespace pathenum {

namespace {

constexpr size_t kRecentEpochs = 8;

uint32_t SatAdd(uint32_t a, uint32_t b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  const uint64_t sum = uint64_t{a} + b;
  return sum >= kInfDistance ? kInfDistance : static_cast<uint32_t>(sum);
}

/// Dense weak-component ids of `g` (direction ignored). The id array is
/// shared by every epoch whose labels came from the same folded graph;
/// `*num_comps` is the number of components (ids are in [0, *num_comps)).
std::shared_ptr<const std::vector<VertexId>> WeakComponents(
    const Graph& g, VertexId* num_comps) {
  const VertexId n = g.num_vertices();
  auto comp = std::make_shared<std::vector<VertexId>>(n, n);  // n = unseen
  VertexId next = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if ((*comp)[s] != n) continue;
    (*comp)[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const VertexId u : g.OutNeighbors(v)) {
        if ((*comp)[u] == n) {
          (*comp)[u] = next;
          stack.push_back(u);
        }
      }
      for (const VertexId u : g.InNeighbors(v)) {
        if ((*comp)[u] == n) {
          (*comp)[u] = next;
          stack.push_back(u);
        }
      }
    }
    ++next;
  }
  *num_comps = next;
  return comp;
}

}  // namespace

/// Consultation counters shared by every epoch (and thus valid on EpochRefs
/// that outlive the oracle).
struct LiveDistanceOracle::Metrics {
  obs::ShardedCounter consults;
  obs::ShardedCounter rejects;
  obs::ShardedCounter ub_no_claims;
};

struct LiveDistanceOracle::EpochState {
  /// One recorded inserted edge. `version` is the latest epoch that
  /// (re-)inserted it — a re-insert after a delete bumps it, so a fold
  /// whose labels predate the re-insert cannot prune the record away.
  struct Correction {
    VertexId tail = 0;
    VertexId head = 0;
    uint64_t version = 0;
  };

  /// The deletion-impact balls of one deletion-bearing epoch, for the
  /// upper-bound degradation check only (rejection never needs deletions).
  struct DeleteRegion {
    UpdateImpact impact;
    uint64_t version = 0;
  };

  uint64_t version = 0;
  uint64_t base_uid = 0;
  /// The view this epoch describes; kept so a triggered re-label can
  /// materialize it. Null only for the version-0 epoch.
  std::shared_ptr<const GraphView> snapshot;
  std::shared_ptr<const PrunedLandmarkIndex> labels;
  uint64_t label_version = 0;
  /// Every edge inserted in (label_version, version], deduplicated by
  /// endpoints. Complete unless last_dropped_version > label_version.
  std::vector<Correction> inserts;
  /// cross[i * inserts.size() + j] = labels-graph dist(inserts[i].head ->
  /// inserts[j].tail): the relaxation matrix of the correction Dijkstra.
  std::vector<uint32_t> cross;
  std::vector<DeleteRegion> delete_regions;
  /// Version of the newest insert the correction set could NOT absorb
  /// (capacity overflow / out-of-range endpoint). While it exceeds
  /// label_version the set is incomplete and no rejection is claimed.
  uint64_t last_dropped_version = 0;
  /// Version at which the delete-region set last overflowed and was
  /// cleared. While it exceeds label_version every UpperBound degrades.
  uint64_t ub_degraded_since = 0;
  /// Weak-connectivity fast path. `comp` maps each vertex to its dense
  /// weak-component id in the labels graph (computed once per label
  /// build); `comp_link` folds the recorded inserts in by unioning their
  /// endpoints' components (flattened at epoch prep, so readers take one
  /// hop). Different roots ⇒ no s-t walk exists in the LB graph at all ⇒
  /// LbDistance is +inf without touching a label — the O(1) answer an
  /// unsatisfiable-query flood lives on. Deletions never split it, which
  /// is exactly the sound direction (the LB graph keeps deleted edges).
  std::shared_ptr<const std::vector<VertexId>> comp;
  std::vector<VertexId> comp_link;
  std::shared_ptr<Metrics> metrics;

  VertexId CompRoot(VertexId c) const {
    while (comp_link[c] != c) c = comp_link[c];
    return c;
  }

  bool RejectionDegraded() const {
    return last_dropped_version > label_version;
  }

  /// Exact distance over the LB graph (labels graph ∪ inserts), except
  /// that any return value > `prune` only certifies "LB distance >
  /// prune" (states costlier than `prune` may be cut). Pass kInfDistance
  /// for the exact value.
  uint32_t LbDistance(VertexId s, VertexId t, uint32_t prune) const;
};

uint32_t LiveDistanceOracle::EpochState::LbDistance(VertexId s, VertexId t,
                                                    uint32_t prune) const {
  if (comp != nullptr && CompRoot((*comp)[s]) != CompRoot((*comp)[t])) {
    return kInfDistance;
  }
  uint32_t best = labels->Distance(s, t);
  const size_t n = inserts.size();
  // Inserts can never improve on a direct hit of 0 (s == t) or 1.
  if (n == 0 || best <= 1) return best;
  if (prune != kInfDistance && best <= prune) return best;

  // Dijkstra over the correction heads: cost[i] = shortest s -> head_i
  // walk in the LB graph whose last step is inserted edge i. n is budget-
  // bounded (LiveOracleOptions::max_corrections), so linear min-extraction
  // beats a heap.
  std::vector<uint32_t> cost(n);
  std::vector<char> done(n, 0);
  for (size_t i = 0; i < n; ++i) {
    cost[i] = SatAdd(labels->Distance(s, inserts[i].tail), 1);
  }
  for (size_t round = 0; round < n; ++round) {
    uint32_t mc = kInfDistance;
    size_t mi = n;
    for (size_t i = 0; i < n; ++i) {
      if (!done[i] && cost[i] < mc) {
        mc = cost[i];
        mi = i;
      }
    }
    // Every remaining completion costs >= mc: stop once nothing can
    // improve the answer (mc >= best) or the predicate is decided
    // (mc > prune, and then best > prune too or we'd have stopped).
    if (mi == n || mc >= best || mc > prune) break;
    done[mi] = 1;
    best = std::min(best, SatAdd(mc, labels->Distance(inserts[mi].head, t)));
    for (size_t j = 0; j < n; ++j) {
      if (!done[j]) {
        cost[j] = std::min(cost[j], SatAdd(SatAdd(mc, cross[mi * n + j]), 1));
      }
    }
  }
  return best;
}

uint64_t LiveDistanceOracle::EpochRef::version() const {
  return state_ != nullptr ? state_->version : 0;
}

uint64_t LiveDistanceOracle::EpochRef::base_uid() const {
  return state_ != nullptr ? state_->base_uid : 0;
}

bool LiveDistanceOracle::EpochRef::ValidFor(const GraphView& view) const {
  return state_ != nullptr && state_->version == view.version() &&
         state_->base_uid == view.base().uid();
}

bool LiveDistanceOracle::EpochRef::Rejects(VertexId s, VertexId t,
                                           uint32_t k) const {
  if (state_ == nullptr) return false;
  const EpochState& st = *state_;
  st.metrics->consults.Inc();
  if (st.RejectionDegraded()) return false;
  if (s >= st.labels->num_vertices() || t >= st.labels->num_vertices()) {
    return false;
  }
  const bool reject = st.LbDistance(s, t, k) > k;
  if (reject) st.metrics->rejects.Inc();
  return reject;
}

uint32_t LiveDistanceOracle::EpochRef::LowerBound(VertexId s, VertexId t) const {
  if (state_ == nullptr) return 0;
  const EpochState& st = *state_;
  if (st.RejectionDegraded() || s >= st.labels->num_vertices() ||
      t >= st.labels->num_vertices()) {
    return 0;
  }
  return st.LbDistance(s, t, kInfDistance);
}

uint32_t LiveDistanceOracle::EpochRef::UpperBound(VertexId s, VertexId t) const {
  if (state_ == nullptr) return kInfDistance;
  const EpochState& st = *state_;
  if (s >= st.labels->num_vertices() || t >= st.labels->num_vertices()) {
    return kInfDistance;
  }
  if (st.ub_degraded_since > st.label_version) {
    st.metrics->ub_no_claims.Inc();
    return kInfDistance;
  }
  if (st.delete_regions.empty()) {
    // No deletion since label_version: the LB graph EQUALS the true graph
    // and its distance is exact (labels-only when the correction set
    // overflowed — still a valid, merely looser, witness).
    return st.RejectionDegraded() ? st.labels->Distance(s, t)
                                  : st.LbDistance(s, t, kInfDistance);
  }
  // With deletions in play only the labels-graph witness path is checkable:
  // every edge on it existed at label_version, so by induction over the
  // regions (in version order) the path survives iff no region's ball
  // touches an s-t path of its length. Insert-bearing witnesses are NOT
  // checkable this way (their prefixes need not exist in a region's
  // pre-delete snapshot), so they claim nothing here.
  const uint32_t ub = st.labels->Distance(s, t);
  if (ub == kInfDistance) return kInfDistance;
  for (const EpochState::DeleteRegion& region : st.delete_regions) {
    if (region.impact.AffectsQuery(s, t, ub)) {
      st.metrics->ub_no_claims.Inc();
      return kInfDistance;
    }
  }
  return ub;
}

LiveDistanceOracle::LiveDistanceOracle(const Graph& base,
                                       const LiveOracleOptions& opts)
    : opts_(opts), metrics_(std::make_shared<Metrics>()) {
  auto st = std::make_shared<EpochState>();
  st->version = 0;
  st->base_uid = base.uid();
  st->labels = std::make_shared<const PrunedLandmarkIndex>(
      PrunedLandmarkIndex::Build(base));
  st->label_version = 0;
  VertexId num_comps = 0;
  st->comp = WeakComponents(base, &num_comps);
  st->comp_link.resize(num_comps);
  std::iota(st->comp_link.begin(), st->comp_link.end(), VertexId{0});
  st->metrics = metrics_;
  recent_.push_back(std::move(st));
#if PATHENUM_OBS
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  const std::string label =
      "oracle=\"" + std::to_string(reg.NextInstanceId()) + "\"";
  reg.RegisterCounter(this, "pathenum_live_oracle_consults_total", label,
                      &metrics_->consults);
  reg.RegisterCounter(this, "pathenum_live_oracle_rejects_total", label,
                      &metrics_->rejects);
  reg.RegisterCounter(this, "pathenum_live_oracle_ub_no_claims_total", label,
                      &metrics_->ub_no_claims);
  reg.RegisterCounter(this, "pathenum_live_oracle_epochs_total", label,
                      &epochs_);
  reg.RegisterCounter(this, "pathenum_live_oracle_relabels_total", label,
                      &relabels_);
  reg.RegisterGauge(this, "pathenum_live_oracle_corrections", label, [this] {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<double>(recent_.front()->inserts.size());
  });
  reg.RegisterGauge(this, "pathenum_live_oracle_label_version", label, [this] {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<double>(recent_.front()->label_version);
  });
#endif
}

LiveDistanceOracle::~LiveDistanceOracle() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    relabel_done_.wait(lock, [this] { return !relabel_running_; });
  }
  if (relabel_thread_.joinable()) relabel_thread_.join();
  obs::MetricRegistry::Global().UnregisterOwner(this);
}

LiveDistanceOracle::EpochRef LiveDistanceOracle::PrepareEpoch(
    const GraphDelta& delta, uint64_t version, const GraphView& before,
    std::shared_ptr<const GraphView> next) {
  std::shared_ptr<const EpochState> prev;
  std::shared_ptr<const PrunedLandmarkIndex> staged;
  std::shared_ptr<const std::vector<VertexId>> staged_comp;
  VertexId staged_comps = 0;
  uint64_t staged_version = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    prev = recent_.front();
    if (staged_labels_ != nullptr) {
      staged = staged_labels_;
      staged_comp = staged_comp_;
      staged_comps = staged_num_comps_;
      staged_version = staged_label_version_;
    }
  }
  PATHENUM_CHECK_MSG(version == prev->version + 1,
                     "oracle epochs must be prepared in publish order");

  auto st = std::make_shared<EpochState>();
  st->version = version;
  st->base_uid = next->base().uid();
  st->snapshot = std::move(next);
  st->metrics = metrics_;
  if (staged != nullptr && staged_version > prev->label_version) {
    st->labels = std::move(staged);
    st->label_version = staged_version;
    st->comp = std::move(staged_comp);
    st->comp_link.resize(staged_comps);
  } else {
    st->labels = prev->labels;
    st->label_version = prev->label_version;
    st->comp = prev->comp;
    st->comp_link.resize(prev->comp_link.size());
  }
  std::iota(st->comp_link.begin(), st->comp_link.end(), VertexId{0});
  st->last_dropped_version = prev->last_dropped_version;
  st->ub_degraded_since = prev->ub_degraded_since;

  // Carry forward every record the new labels do not subsume.
  for (const EpochState::Correction& c : prev->inserts) {
    if (c.version > st->label_version) st->inserts.push_back(c);
  }
  for (const EpochState::DeleteRegion& r : prev->delete_regions) {
    if (r.version > st->label_version) st->delete_regions.push_back(r);
  }

  const size_t cap =
      std::max<size_t>(opts_.relabel_budget, opts_.max_corrections);
  const VertexId num_vertices = st->labels->num_vertices();
  for (const auto& [u, v] : delta.insertions) {
    if (u >= num_vertices || v >= num_vertices) {
      // Unrepresentable in the label space: the set is incomplete.
      st->last_dropped_version = version;
      continue;
    }
    auto it = std::find_if(st->inserts.begin(), st->inserts.end(),
                           [u = u, v = v](const EpochState::Correction& c) {
                             return c.tail == u && c.head == v;
                           });
    if (it != st->inserts.end()) {
      // Re-insert (possibly after an intervening delete): bump the tag so
      // a fold whose labels predate this epoch cannot prune the record.
      it->version = version;
    } else if (st->inserts.size() < cap) {
      st->inserts.push_back({u, v, version});
    } else {
      st->last_dropped_version = version;
    }
  }

  // Fold the recorded inserts into the weak-component union (a dropped
  // insert already degraded rejection, and degraded epochs never reach the
  // fast path). Flattened so concurrent readers take at most one hop.
  for (const EpochState::Correction& c : st->inserts) {
    const VertexId a = st->CompRoot((*st->comp)[c.tail]);
    const VertexId b = st->CompRoot((*st->comp)[c.head]);
    if (a != b) st->comp_link[b] = a;
  }
  for (VertexId& link : st->comp_link) link = st->CompRoot(link);

  if (!delta.deletions.empty()) {
    GraphDelta deletions_only;
    deletions_only.deletions = delta.deletions;
    EpochState::DeleteRegion region;
    region.version = version;
    // Only `before` is traversed (see live/impact.h); the delta's
    // insertions are irrelevant to the upper-bound side.
    region.impact =
        UpdateImpact::Compute(before, before, deletions_only, opts_.max_hops);
    st->delete_regions.push_back(std::move(region));
    if (st->delete_regions.size() > opts_.max_delete_regions) {
      st->delete_regions.clear();
      st->ub_degraded_since = version;
    }
  }

  // (Re)build the relaxation matrix. When the labels survived from `prev`,
  // only rows/columns of fresh corrections need label queries.
  const size_t n = st->inserts.size();
  st->cross.assign(n * n, kInfDistance);
  const bool same_labels = st->labels == prev->labels;
  const size_t prev_n = prev->inserts.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      // Carried-forward corrections keep prev's order as a prefix, so the
      // old matrix maps over directly.
      if (same_labels && i < prev_n && j < prev_n &&
          st->inserts[i].tail == prev->inserts[i].tail &&
          st->inserts[i].head == prev->inserts[i].head &&
          st->inserts[j].tail == prev->inserts[j].tail) {
        st->cross[i * n + j] = prev->cross[i * prev_n + j];
      } else {
        st->cross[i * n + j] =
            st->labels->Distance(st->inserts[i].head, st->inserts[j].tail);
      }
    }
  }

  return EpochRef(std::move(st));
}

void LiveDistanceOracle::PublishEpoch(const EpochRef& epoch) {
  PATHENUM_CHECK_MSG(epoch.valid(), "cannot publish an empty oracle epoch");
  std::shared_ptr<const EpochState> st = epoch.state_;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    PATHENUM_CHECK_MSG(st->version == recent_.front()->version + 1,
                       "oracle epochs must publish in order");
    recent_.insert(recent_.begin(), st);
    if (recent_.size() > kRecentEpochs) recent_.pop_back();
    if (staged_labels_ != nullptr &&
        st->label_version >= staged_label_version_) {
      staged_labels_ = nullptr;  // folded into this epoch
      staged_comp_ = nullptr;
    }
  }
  epochs_.Inc();
  MaybeStartRelabel(st);
}

LiveDistanceOracle::EpochRef LiveDistanceOracle::Current() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return EpochRef(recent_.front());
}

LiveDistanceOracle::EpochRef LiveDistanceOracle::ForVersion(
    uint64_t version) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<const EpochState>& st : recent_) {
    if (st->version == version) return EpochRef(st);
  }
  return EpochRef();
}

void LiveDistanceOracle::WaitForRelabel() {
  std::unique_lock<std::mutex> lock(mutex_);
  relabel_done_.wait(lock, [this] { return !relabel_running_; });
}

void LiveDistanceOracle::MaybeStartRelabel(
    const std::shared_ptr<const EpochState>& epoch) {
  const bool over_budget = epoch->inserts.size() > opts_.relabel_budget;
  const bool degraded = epoch->RejectionDegraded() ||
                        epoch->ub_degraded_since > epoch->label_version;
  if ((!over_budget && !degraded) || epoch->snapshot == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // One rebuild in flight, and never stack a second behind unfolded
    // staged labels — the next published epoch folds them first.
    if (relabel_running_ || staged_labels_ != nullptr) return;
    relabel_running_ = true;
  }
  if (!opts_.background_relabel) {
    Relabel(epoch->version, epoch->snapshot);
    return;
  }
  // The predecessor thread (if any) has already cleared relabel_running_,
  // so this join only reaps an exiting thread.
  if (relabel_thread_.joinable()) relabel_thread_.join();
  relabel_thread_ = std::thread(&LiveDistanceOracle::Relabel, this,
                                epoch->version, epoch->snapshot);
}

void LiveDistanceOracle::Relabel(uint64_t version,
                                 std::shared_ptr<const GraphView> snapshot) {
  const Graph materialized = snapshot->Materialize();
  auto labels = std::make_shared<const PrunedLandmarkIndex>(
      PrunedLandmarkIndex::Build(materialized));
  VertexId num_comps = 0;
  auto comp = WeakComponents(materialized, &num_comps);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    staged_labels_ = std::move(labels);
    staged_comp_ = std::move(comp);
    staged_num_comps_ = num_comps;
    staged_label_version_ = version;
    relabel_running_ = false;
  }
  relabels_.Inc();
  relabel_done_.notify_all();
}

LiveDistanceOracle::Stats LiveDistanceOracle::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const EpochState& front = *recent_.front();
  Stats s;
  s.epochs = epochs_.Value();
  s.relabels = relabels_.Value();
  s.rejects = metrics_->rejects.Value();
  s.consults = metrics_->consults.Value();
  s.ub_no_claims = metrics_->ub_no_claims.Value();
  s.label_version = front.label_version;
  s.corrections = front.inserts.size();
  s.delete_regions = front.delete_regions.size();
  s.rejection_degraded = front.RejectionDegraded();
  return s;
}

}  // namespace pathenum
