#include "live/async_engine.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "core/parallel_dfs.h"
#include "util/fault_injection.h"

namespace pathenum {

// ---------------------------------------------------------------------------
// QueryTicket
// ---------------------------------------------------------------------------

const QueryStats& QueryTicket::Wait() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "waiting on an invalid ticket");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->stats;
}

bool QueryTicket::Done() const {
  if (state_ == nullptr) return false;
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

const std::string& QueryTicket::error() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "querying an invalid ticket");
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->error;
}

QueryState QueryTicket::state() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "querying an invalid ticket");
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->query_state;
}

void QueryTicket::Cancel() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "cancelling an invalid ticket");
  state_->cancel.Cancel();
}

uint64_t QueryTicket::snapshot_version() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "querying an invalid ticket");
  return state_->snapshot_version;
}

obs::QuerySpanData QueryTicket::span() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "querying an invalid ticket");
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->span_data;
}

// ---------------------------------------------------------------------------
// AsyncEngine
// ---------------------------------------------------------------------------

AsyncEngine::AsyncEngine(Graph base, const AsyncEngineOptions& opts)
    : opts_(opts),
      snapshots_(std::move(base), opts.snapshot),
      pool_(opts.num_workers) {
  if (opts_.max_queue == 0) opts_.max_queue = 1;
  if (opts_.enable_oracle) {
    // The oracle labels the version-0 base and then rides every update
    // epoch inside SnapshotManager::Prepare/Publish, so its claims stay in
    // lockstep with whatever snapshot a submission captures.
    oracle_ = std::make_unique<LiveDistanceOracle>(
        snapshots_.Current()->base(), opts_.oracle);
    snapshots_.AttachOracle(oracle_.get());
  }
  if (opts_.enable_cache) {
    cache_ = std::make_unique<IndexCache>(opts_.cache);
  }
  const std::shared_ptr<const GraphView> snapshot = snapshots_.Current();
  contexts_.reserve(pool_.num_workers());
  for (uint32_t w = 0; w < pool_.num_workers(); ++w) {
    contexts_.push_back(std::make_unique<QueryContext>(*snapshot));
  }
  // One long-running parallel region hosts every worker loop; the runner
  // thread exists only to own the blocking RunOnAllWorkers call.
  runner_ = std::thread(
      [this] { pool_.RunOnAllWorkers([this](uint32_t w) { WorkerLoop(w); }); });

#if PATHENUM_OBS
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  const std::string label =
      "engine=\"" + std::to_string(reg.NextInstanceId()) + "\"";
  const auto counter = [&](const char* name, obs::ShardedCounter* c) {
    reg.RegisterCounter(this, name, label, c);
  };
  counter("pathenum_async_submitted_total", &submitted_);
  counter("pathenum_async_executed_total", &executed_);
  counter("pathenum_async_queue_rejects_total", &queue_rejects_);
  counter("pathenum_async_sheds_total", &sheds_);
  counter("pathenum_async_cancelled_before_run_total", &cancelled_before_run_);
  counter("pathenum_async_oracle_rejects_total", &oracle_rejects_);
  counter("pathenum_async_batched_builds_total", &batched_builds_);
  counter("pathenum_async_batched_edges_scanned_total",
          &batched_edges_scanned_);
  counter("pathenum_async_batched_solo_edges_total", &batched_solo_edges_);
  reg.RegisterGauge(this, "pathenum_async_queue_depth", label, [this] {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    return static_cast<uint64_t>(queue_.size());
  });
  reg.RegisterGauge(this, "pathenum_async_snapshot_version", label,
                    [this] { return snapshots_.version(); });
  reg.RegisterGauge(this, "pathenum_async_workers", label, [this] {
    return static_cast<uint64_t>(pool_.num_workers());
  });
#endif
}

AsyncEngine::~AsyncEngine() {
  Shutdown();
  obs::MetricRegistry::Global().UnregisterOwner(this);
}

QueryTicket AsyncEngine::Submit(const Query& q, PathSink& sink,
                                const EnumOptions& opts) {
  return Submit(q, sink, SubmitOptions{.query = opts});
}

QueryTicket AsyncEngine::TrySubmit(const Query& q, PathSink& sink,
                                   const EnumOptions& opts) {
  return TrySubmit(q, sink, SubmitOptions{.query = opts});
}

namespace {

/// Wires a ticket's cancel token into its submission: the caller's token is
/// shared when one was provided (ticket.Cancel() fires it), otherwise the
/// ticket gets a private token the enumeration observes through opts.
void WireCancel(CancelToken& ticket_cancel, EnumOptions& opts) {
  if (opts.cancel.can_cancel()) {
    ticket_cancel = opts.cancel;
  } else {
    ticket_cancel = CancelToken::Cancellable();
    opts.cancel = ticket_cancel;
  }
}

}  // namespace

QueryTicket AsyncEngine::Submit(const Query& q, PathSink& sink,
                                const SubmitOptions& opts) {
  auto state = std::make_shared<QueryTicket::State>();
  Submission task;
  task.query = q;
  task.sink = &sink;
  task.opts = opts.query;
  task.split = opts.split_branches;
  task.state = state;
  WireCancel(state->cancel, task.opts);
  task.span.Begin(q.source, q.target, q.hops);
  bool unsat = false;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (opts_.shed_policy == AsyncEngineOptions::ShedPolicy::kCancelOldest) {
      if (!shutdown_ && queue_.size() >= opts_.max_queue) ShedOldestLocked();
    } else {
      queue_not_full_.wait(lock, [&] {
        return shutdown_ || queue_.size() < opts_.max_queue;
      });
    }
    if (shutdown_) {
      Complete(*state, QueryStats{}, "engine is shut down",
               QueryState::kRejected);
      return QueryTicket(std::move(state));
    }
    // The snapshot (and its oracle epoch) is captured while holding the
    // queue lock so ticket version order is consistent with admission
    // order; SubmitUpdate publishes outside this lock, so a submission
    // observes either the old or the new snapshot — never a half-published
    // one, and never an oracle epoch from a different version.
    const SnapshotManager::Published pub = snapshots_.CurrentPublished();
    task.snapshot = pub.snapshot;
    state->snapshot_version = task.snapshot->version();
    submitted_.Inc();
    if (pub.oracle.Rejects(q.source, q.target, q.hops)) {
      oracle_rejects_.Inc();
      unsat = true;
    } else {
      queue_.push_back(std::move(task));
    }
  }
  if (unsat) {
    CompleteUnsatisfiable(task);
    return QueryTicket(std::move(state));
  }
  queue_not_empty_.notify_one();
  return QueryTicket(std::move(state));
}

QueryTicket AsyncEngine::TrySubmit(const Query& q, PathSink& sink,
                                   const SubmitOptions& opts,
                                   double* retry_after_ms) {
  auto state = std::make_shared<QueryTicket::State>();
  Submission task;
  task.query = q;
  task.sink = &sink;
  task.opts = opts.query;
  task.split = opts.split_branches;
  task.state = state;
  WireCancel(state->cancel, task.opts);
  task.span.Begin(q.source, q.target, q.hops);
  bool unsat = false;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutdown_) {
      queue_rejects_.Inc();
      return QueryTicket();
    }
    // Oracle-certified-unsatisfiable submissions never occupy a queue slot,
    // so they are checked before the full-queue shed/reject logic: an unsat
    // flood cannot evict useful queued work under kCancelOldest.
    const SnapshotManager::Published pub = snapshots_.CurrentPublished();
    if (pub.oracle.Rejects(q.source, q.target, q.hops)) {
      task.snapshot = pub.snapshot;
      state->snapshot_version = task.snapshot->version();
      submitted_.Inc();
      oracle_rejects_.Inc();
      unsat = true;
    } else {
      if (queue_.size() >= opts_.max_queue) {
        if (opts_.shed_policy ==
            AsyncEngineOptions::ShedPolicy::kCancelOldest) {
          ShedOldestLocked();  // make room; this submission is admitted
        } else {
          queue_rejects_.Inc();
          if (retry_after_ms != nullptr) {
            *retry_after_ms = RetryAfterLockedMs();
          }
          return QueryTicket();
        }
      }
      task.snapshot = pub.snapshot;
      state->snapshot_version = task.snapshot->version();
      queue_.push_back(std::move(task));
      submitted_.Inc();
    }
  }
  if (unsat) {
    CompleteUnsatisfiable(task);
    return QueryTicket(std::move(state));
  }
  queue_not_empty_.notify_one();
  return QueryTicket(std::move(state));
}

void AsyncEngine::CompleteUnsatisfiable(Submission& task) {
  // Oracle-rejected at admission, completed outside the queue lock with the
  // full observability contract: zero-width queue_wait / index_acquire
  // stages, a terminal kUnsatisfiable span, and the oracle_rejected counter
  // flag (TerminalState round-trips it for batch-shaped consumers).
  task.span.Mark(obs::SpanStage::kQueueWait);
  task.span.Mark(obs::SpanStage::kIndexAcquire);
  QueryStats stats;
  stats.counters.oracle_rejected = true;
  Complete(*task.state, stats, "", QueryState::kUnsatisfiable, &task.span);
}

void AsyncEngine::ShedOldestLocked() {
  Submission victim = std::move(queue_.front());
  queue_.pop_front();
  sheds_.Inc();
  QueryStats stats;
  stats.counters.cancelled = true;
  // The victim's whole life was queue wait; its span records that.
  victim.span.Mark(obs::SpanStage::kQueueWait);
  Complete(*victim.state, stats, "", QueryState::kCancelled, &victim.span);
}

double AsyncEngine::RetryAfterLockedMs() const {
  // Backlog clears at roughly (queued + running) / workers times the
  // typical query; before any query completed the hint is a nominal 1ms.
  const double per_query = avg_exec_ms_ > 0.0 ? avg_exec_ms_ : 1.0;
  const double backlog = static_cast<double>(queue_.size() + in_flight_);
  const double est_ms = per_query * (backlog + 1.0) /
                        static_cast<double>(std::max(1u, pool_.num_workers()));
  // Round-trip through an absolute Deadline: the hint the caller receives
  // is exactly what a Deadline armed now for the backlog would report.
  return Deadline::AfterMs(est_ms).RemainingMs();
}

uint64_t AsyncEngine::SubmitUpdate(const GraphDelta& delta) {
  // One epoch at a time: prepare the next snapshot, advance the cache to
  // its version (evicting exactly the affected keys) and only then publish.
  // A query admitted mid-epoch therefore either observes the old snapshot
  // (its cache interactions stay valid for the old version) or the fully
  // invalidated new one — never a snapshot the cache has not caught up to.
  const std::lock_guard<std::mutex> lock(update_mutex_);
  const SnapshotManager::Epoch epoch = snapshots_.Prepare(delta);
  if (cache_ != nullptr) {
    const UpdateImpact& impact = epoch.impact;
    cache_->BeginEpoch(epoch.snapshot->version(),
                       [&impact](VertexId s, VertexId t, uint32_t k) {
                         return impact.AffectsQuery(s, t, k);
                       });
  }
  snapshots_.Publish(epoch);
  return epoch.snapshot->version();
}

Status AsyncEngine::TrySubmitUpdate(const GraphDelta& delta,
                                    uint64_t* new_version) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutdown_) return Status::Unavailable("engine is shut down");
  }
  // Validate against the base vertex space before anything is applied: a
  // malformed wire delta is rejected whole, the snapshot stream unharmed.
  const Status st = CheckDelta(delta, snapshots_.Current()->num_vertices());
  if (!st.ok()) return st;
  const uint64_t v = SubmitUpdate(delta);
  if (new_version != nullptr) *new_version = v;
  return Status::Ok();
}

void AsyncEngine::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void AsyncEngine::Shutdown(bool cancel_pending) {
  std::deque<Submission> orphans;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    shutdown_ = true;
    // With cancel_pending the queued tickets never run: complete them as
    // kCancelled (outside the lock) so no waiter hangs on a dead queue.
    if (cancel_pending) orphans.swap(queue_);
  }
  for (Submission& task : orphans) {
    QueryStats stats;
    stats.counters.cancelled = true;
    task.span.Mark(obs::SpanStage::kQueueWait);
    Complete(*task.state, stats, "", QueryState::kCancelled, &task.span);
  }
  // Workers drain whatever remains queued (every ticket completes), then
  // exit.
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  idle_.notify_all();
  const std::lock_guard<std::mutex> join_lock(shutdown_mutex_);
  if (runner_.joinable()) runner_.join();
}

void AsyncEngine::WorkerLoop(uint32_t worker) {
  QueryContext& ctx = *contexts_[worker];
  for (;;) {
    Submission task;
    std::shared_ptr<SplitJob> help;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock, [&] {
        return shutdown_ || !queue_.empty() || HasSplitWorkLocked();
      });
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      } else if ((help = ClaimSplitWorkLocked()) != nullptr) {
        // Idle with queued split units: help the heavy ticket instead of
        // parking. New submissions take priority again on the next loop.
      } else if (shutdown_) {
        break;  // shutdown with a drained queue and no split work
      } else {
        // The split work that woke us evaporated between the predicate and
        // the claim (cursor/stop_claims advance lock-free under the
        // draining participants) — go back to sleep, don't die.
        continue;
      }
    }
    if (help != nullptr) {
      DrainSplitUnits(*help, ctx);
      {
        const std::lock_guard<std::mutex> lock(help->mutex);
        --help->active_helpers;
      }
      help->helpers_done.notify_all();
      continue;
    }
    queue_not_full_.notify_one();
    Timer exec_timer;
    Execute(ctx, task);
    const double exec_ms = exec_timer.ElapsedMs();
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
      executed_.Inc();
      // EWMA of query wall time, feeding the TrySubmit retry-after hint.
      avg_exec_ms_ = avg_exec_ms_ == 0.0 ? exec_ms
                                         : 0.8 * avg_exec_ms_ + 0.2 * exec_ms;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

bool AsyncEngine::HasSplitWorkLocked() const {
  for (const auto& job : split_jobs_) {
    if (!job->stop_claims.load(std::memory_order_relaxed) &&
        job->cursor.load(std::memory_order_relaxed) < job->branches.size()) {
      return true;
    }
  }
  return false;
}

std::shared_ptr<AsyncEngine::SplitJob> AsyncEngine::ClaimSplitWorkLocked() {
  for (const auto& job : split_jobs_) {
    if (!job->stop_claims.load(std::memory_order_relaxed) &&
        job->cursor.load(std::memory_order_relaxed) < job->branches.size()) {
      // Registered under queue_mutex_, so the leader retiring the job
      // cannot miss this helper: retirement happens under the same lock,
      // and the leader's wait counts active_helpers afterwards.
      const std::lock_guard<std::mutex> lock(job->mutex);
      ++job->active_helpers;
      return job;
    }
  }
  return nullptr;
}

void AsyncEngine::DrainSplitUnits(SplitJob& job, QueryContext& ctx) {
  // Never lets an exception escape: a helper throwing would kill its pool
  // worker for the engine's lifetime and strand the leader's barrier.
  EnumCounters mine;
  try {
    mine = internal::DrainBranches(ctx.split_dfs(), *job.index, job.branches,
                                   job.cursor, job.sink, job.opts,
                                   job.deadline, &job.stop_claims);
  } catch (const std::exception& e) {
    // A failing participant (a throwing sink, typically) fails the whole
    // ticket: stop the claiming loops and trip the per-ticket stop latch
    // so no other participant delivers into the broken sink.
    job.stop_claims.store(true, std::memory_order_relaxed);
    job.gate.Stop();
    const std::lock_guard<std::mutex> lock(job.mutex);
    if (job.error.empty()) job.error = e.what();
    return;
  }
  const std::lock_guard<std::mutex> lock(job.mutex);
  job.worker_counters.push_back(mine);
}

void AsyncEngine::MaybeBatchPrebuild(Submission& task) {
  if (cache_ == nullptr || opts_.batch_build_min == 0 || task.split ||
      cache_->options().admission_min_uses > 1) {
    return;
  }
  const IndexBuilder::Options lead_opts =
      PathEnumerator::BuildOptionsFor(task.query, task.opts);
  if (lead_opts.filter != nullptr) return;
  const uint64_t fp = IndexOptionsFingerprint(lead_opts);
  const uint64_t version = task.snapshot->version();
  const CacheKey lead_key{task.query.source, task.query.target,
                          task.query.hops, fp};
  if (cache_->PeekIndex(lead_key, version) != nullptr) return;

  // One batch at a time engine-wide: a second claimer finding the builder
  // busy just builds solo — no waiting, bounded K-wide field memory.
  std::unique_lock<std::mutex> batch_lock(batch_mutex_, std::try_to_lock);
  if (!batch_lock.owns_lock()) return;

  std::vector<BatchBuildRequest> reqs;
  // Keep every co-member's ticket state alive past the queue lock: each
  // request aliases its ticket's cancel flag.
  std::vector<std::shared_ptr<QueryTicket::State>> holds;
  reqs.push_back(
      {task.query, task.state->cancel.flag(), lead_opts.deadline});
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const Submission& sub : queue_) {
      if (reqs.size() >= BatchedDistanceField::kMaxBatch) break;
      if (sub.split || sub.snapshot->version() != version) continue;
      if (sub.state->cancel.cancelled()) continue;
      if (!CheckQuery(*sub.snapshot, sub.query).ok()) continue;
      const IndexBuilder::Options sub_opts =
          PathEnumerator::BuildOptionsFor(sub.query, sub.opts);
      if (sub_opts.filter != nullptr ||
          IndexOptionsFingerprint(sub_opts) != fp) {
        continue;
      }
      bool dup = false;
      for (const BatchBuildRequest& r : reqs) {
        dup |= r.query.source == sub.query.source &&
               r.query.target == sub.query.target &&
               r.query.hops == sub.query.hops;
      }
      if (dup) continue;
      const CacheKey key{sub.query.source, sub.query.target, sub.query.hops,
                         fp};
      if (cache_->PeekIndex(key, version) != nullptr) continue;
      reqs.push_back(
          {sub.query, sub.state->cancel.flag(), sub_opts.deadline});
      holds.push_back(sub.state);
    }
  }
  if (reqs.size() < opts_.batch_build_min) return;

  try {
    // Controls are strictly per-member (each ticket's own cancel token and
    // deadline); the shared options carry only the build shape.
    IndexBuilder::Options shared = lead_opts;
    shared.cancel = nullptr;
    shared.deadline = Deadline::Unlimited();
    std::vector<LightweightIndex> built =
        batch_builder_.BuildBatch(*task.snapshot, reqs, shared);
    bool counted_shared = false;
    for (size_t i = 0; i < built.size(); ++i) {
      // A tripped member builds solo at claim time (reporting its own
      // terminal state); interrupted stubs are never published.
      if (built[i].build_stats().interrupted) continue;
      const Query& q = built[i].query();
      batched_builds_.Inc();
      batched_solo_edges_.Inc(built[i].build_stats().edges_scanned);
      if (!counted_shared) {
        batched_edges_scanned_.Inc(built[i].build_stats().batch_edges_scanned);
        counted_shared = true;
      }
      const CacheKey key{q.source, q.target, q.hops, fp};
      // Single-flight publish: concurrent waiters on any member key are
      // satisfied by this slab; version/generation guards apply as usual.
      cache_->GetOrBuild(
          key, [&built, i]() { return std::move(built[i]); },
          /*was_hit=*/nullptr, version);
    }
  } catch (...) {
    // Any batch failure (including injected faults) falls back to solo
    // builds, where per-query fault isolation applies.
  }
}

void AsyncEngine::Execute(QueryContext& ctx, Submission& task) {
  fault::Hit(fault::Site::kAsyncClaim);
  // The worker's claim ends the queue-wait stage on every path below.
  task.span.Mark(obs::SpanStage::kQueueWait);
  if (task.state->cancel.cancelled()) {
    // Cancelled while queued: complete without touching the sink at all.
    QueryStats stats;
    stats.counters.cancelled = true;
    // Count before Complete: a waiter woken by the completion must already
    // see this shed in stats().
    cancelled_before_run_.Inc();
    Complete(*task.state, stats, "", QueryState::kCancelled, &task.span);
    return;
  }
  if (task.split) {
    ExecuteSplit(ctx, task);
    return;
  }
  MaybeBatchPrebuild(task);
  try {
    // The context runs on exactly the submission's snapshot; the rebind is
    // a view copy (scratch survives), free when the snapshot is unchanged.
    ctx.Rebind(*task.snapshot);
    const QueryStats stats = ctx.RunCached(task.query, *task.sink, task.opts,
                                           cache_.get(), &task.span);
    Complete(*task.state, stats, "", stats.counters.TerminalState(),
             &task.span);
  } catch (const std::logic_error& e) {
    Complete(*task.state, QueryStats{}, e.what(), QueryState::kRejected,
             &task.span);
  } catch (const std::exception& e) {
    Complete(*task.state, QueryStats{}, e.what(), QueryState::kError,
             &task.span);
  }
}

void AsyncEngine::ExecuteSplit(QueryContext& ctx, Submission& task) {
  task.span.SetSplit();
  try {
    ctx.Rebind(*task.snapshot);
    ValidateQuery(*task.snapshot, task.query);
    QueryStats stats;
    stats.method = Method::kDfs;  // async splitting fans out DFS branches
    Timer total;

    // The index is built once on the submission's snapshot (through the
    // shared cache when possible) and is immutable from here on — every
    // branch unit, whichever worker runs it and however many updates
    // publish meanwhile, observes exactly this snapshot.
    EnumOptions build_shape = task.opts;
    build_shape.method = Method::kDfs;
    const std::shared_ptr<const LightweightIndex> index = ctx.AcquireIndex(
        task.query, PathEnumerator::BuildOptionsFor(task.query, build_shape),
        cache_.get(), stats);
    task.span.SetIndexOutcome(stats.index_cache_hit, false,
                              index->build_stats().batched);
    task.span.Mark(obs::SpanStage::kIndexAcquire);

    if (index->build_stats().interrupted) {
      // The ticket's deadline/cancel tripped the build: no fan-out, zero
      // paths, the matching terminal state.
      if (index->build_stats().interrupted_by_cancel) {
        stats.counters.cancelled = true;
      } else {
        stats.counters.timed_out = true;
      }
      stats.total_ms = total.ElapsedMs();
      stats.response_ms = stats.total_ms;
      Complete(*task.state, stats, "", stats.counters.TerminalState(),
               &task.span);
      return;
    }

    EnumCounters counters;
    double enumerate_ms = 0.0;
    const uint32_t s_slot = index->source_slot();
    if (s_slot != kInvalidSlot) {
      const auto branches =
          index->OutSlotsWithin(s_slot, index->hops() - 1);
      auto job = std::make_shared<SplitJob>(index, branches, *task.sink,
                                            task.opts);
      // Publish, then wake parked workers: any worker idle between queue
      // pops joins the fan-out until the units run dry.
      {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        split_jobs_.push_back(job);
      }
      queue_not_empty_.notify_all();

      // The leader is participant zero.
      DrainSplitUnits(*job, ctx);

      // Retire the job so no further helper registers, then wait out the
      // ones already inside — the merge barrier of this ticket.
      {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        for (auto it = split_jobs_.begin(); it != split_jobs_.end(); ++it) {
          if (it->get() == job.get()) {
            split_jobs_.erase(it);
            break;
          }
        }
      }
      std::string split_error;
      {
        std::unique_lock<std::mutex> lock(job->mutex);
        job->helpers_done.wait(lock, [&] { return job->active_helpers == 0; });
        // Every participant has left: enumeration is over, the fold below
        // is this ticket's merge work.
        task.span.Mark(obs::SpanStage::kEnumerate);
        split_error = job->error;
        internal::FinishFanout(counters, job->worker_counters,
                               /*root_partials=*/1,
                               /*root_edges=*/job->branches.size(),
                               job->gate.delivered(), job->gate.response_ms(),
                               task.opts);
      }
      task.span.Mark(obs::SpanStage::kMerge);
      if (!split_error.empty()) {
        // A participant failed: the job was retired and every helper has
        // left (the barrier above), so the caller's sink is safe to
        // abandon — fail the ticket like the plain path would.
        Complete(*task.state, QueryStats{}, std::move(split_error),
                 QueryState::kError, &task.span);
        return;
      }
      enumerate_ms = job->timer.ElapsedMs();
    }

    stats.counters = counters;
    stats.enumerate_ms = enumerate_ms;
    stats.total_ms = total.ElapsedMs();
    const double preprocessing = stats.total_ms - stats.enumerate_ms;
    stats.response_ms = counters.response_ms >= 0.0
                            ? preprocessing + counters.response_ms
                            : stats.total_ms;
    Complete(*task.state, stats, "", stats.counters.TerminalState(),
             &task.span);
  } catch (const std::logic_error& e) {
    Complete(*task.state, QueryStats{}, e.what(), QueryState::kRejected,
             &task.span);
  } catch (const std::exception& e) {
    Complete(*task.state, QueryStats{}, e.what(), QueryState::kError,
             &task.span);
  }
}

void AsyncEngine::Complete(QueryTicket::State& state, const QueryStats& stats,
                           std::string error, QueryState query_state,
                           obs::QuerySpan* span) {
  if (span != nullptr) span->Finish(query_state);
  {
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.stats = stats;
    state.error = std::move(error);
    state.query_state = query_state;
    if (span != nullptr) state.span_data = span->data();
    state.done = true;
  }
  state.cv.notify_all();
}

AsyncEngine::Stats AsyncEngine::stats() const {
  Stats s;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    s.submitted = submitted_.Value();
    s.executed = executed_.Value();
    s.queue_rejects = queue_rejects_.Value();
    s.sheds = sheds_.Value();
    s.oracle_rejects = oracle_rejects_.Value();
    s.queue_depth = queue_.size();
  }
  s.cancelled_before_run = cancelled_before_run_.Value();
  s.batched_builds = batched_builds_.Value();
  s.batched_edges_scanned = batched_edges_scanned_.Value();
  s.batched_solo_edges = batched_solo_edges_.Value();
  const SnapshotManager::Stats snap = snapshots_.stats();
  s.updates = snap.updates;
  s.compactions = snap.compactions;
  s.version = snapshots_.version();
  if (cache_ != nullptr) s.cache = cache_->Stats();
  return s;
}

}  // namespace pathenum
