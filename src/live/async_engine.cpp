#include "live/async_engine.h"

#include <exception>
#include <utility>

namespace pathenum {

// ---------------------------------------------------------------------------
// QueryTicket
// ---------------------------------------------------------------------------

const QueryStats& QueryTicket::Wait() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "waiting on an invalid ticket");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->stats;
}

bool QueryTicket::Done() const {
  if (state_ == nullptr) return false;
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

const std::string& QueryTicket::error() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "querying an invalid ticket");
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->error;
}

uint64_t QueryTicket::snapshot_version() const {
  PATHENUM_CHECK_MSG(state_ != nullptr, "querying an invalid ticket");
  return state_->snapshot_version;
}

// ---------------------------------------------------------------------------
// AsyncEngine
// ---------------------------------------------------------------------------

AsyncEngine::AsyncEngine(Graph base, const AsyncEngineOptions& opts)
    : opts_(opts),
      snapshots_(std::move(base), opts.snapshot),
      pool_(opts.num_workers) {
  if (opts_.max_queue == 0) opts_.max_queue = 1;
  if (opts_.enable_cache) {
    cache_ = std::make_unique<IndexCache>(opts_.cache);
  }
  const std::shared_ptr<const GraphView> snapshot = snapshots_.Current();
  contexts_.reserve(pool_.num_workers());
  for (uint32_t w = 0; w < pool_.num_workers(); ++w) {
    contexts_.push_back(std::make_unique<QueryContext>(*snapshot));
  }
  // One long-running parallel region hosts every worker loop; the runner
  // thread exists only to own the blocking RunOnAllWorkers call.
  runner_ = std::thread(
      [this] { pool_.RunOnAllWorkers([this](uint32_t w) { WorkerLoop(w); }); });
}

AsyncEngine::~AsyncEngine() { Shutdown(); }

QueryTicket AsyncEngine::Submit(const Query& q, PathSink& sink,
                                const EnumOptions& opts) {
  auto state = std::make_shared<QueryTicket::State>();
  Submission task;
  task.query = q;
  task.sink = &sink;
  task.opts = opts;
  task.state = state;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_not_full_.wait(lock, [&] {
      return shutdown_ || queue_.size() < opts_.max_queue;
    });
    if (shutdown_) {
      Complete(*state, QueryStats{}, "engine is shut down");
      return QueryTicket(std::move(state));
    }
    // The snapshot is captured while holding the queue lock so ticket
    // version order is consistent with admission order; SubmitUpdate
    // publishes outside this lock, so a submission observes either the old
    // or the new snapshot — never a half-published one.
    task.snapshot = snapshots_.Current();
    state->snapshot_version = task.snapshot->version();
    queue_.push_back(std::move(task));
    ++submitted_;
  }
  queue_not_empty_.notify_one();
  return QueryTicket(std::move(state));
}

QueryTicket AsyncEngine::TrySubmit(const Query& q, PathSink& sink,
                                   const EnumOptions& opts) {
  auto state = std::make_shared<QueryTicket::State>();
  Submission task;
  task.query = q;
  task.sink = &sink;
  task.opts = opts;
  task.state = state;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutdown_ || queue_.size() >= opts_.max_queue) {
      ++queue_rejects_;
      return QueryTicket();
    }
    task.snapshot = snapshots_.Current();
    state->snapshot_version = task.snapshot->version();
    queue_.push_back(std::move(task));
    ++submitted_;
  }
  queue_not_empty_.notify_one();
  return QueryTicket(std::move(state));
}

uint64_t AsyncEngine::SubmitUpdate(const GraphDelta& delta) {
  // One epoch at a time: prepare the next snapshot, advance the cache to
  // its version (evicting exactly the affected keys) and only then publish.
  // A query admitted mid-epoch therefore either observes the old snapshot
  // (its cache interactions stay valid for the old version) or the fully
  // invalidated new one — never a snapshot the cache has not caught up to.
  const std::lock_guard<std::mutex> lock(update_mutex_);
  const SnapshotManager::Epoch epoch = snapshots_.Prepare(delta);
  if (cache_ != nullptr) {
    const UpdateImpact& impact = epoch.impact;
    cache_->BeginEpoch(epoch.snapshot->version(),
                       [&impact](VertexId s, VertexId t, uint32_t k) {
                         return impact.AffectsQuery(s, t, k);
                       });
  }
  snapshots_.Publish(epoch);
  return epoch.snapshot->version();
}

void AsyncEngine::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void AsyncEngine::Shutdown() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    shutdown_ = true;
  }
  // Workers drain the remaining queue (every ticket completes), then exit.
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  const std::lock_guard<std::mutex> join_lock(shutdown_mutex_);
  if (runner_.joinable()) runner_.join();
}

void AsyncEngine::WorkerLoop(uint32_t worker) {
  QueryContext& ctx = *contexts_[worker];
  for (;;) {
    Submission task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock,
                            [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) break;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    queue_not_full_.notify_one();
    Execute(ctx, task);
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
      ++executed_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void AsyncEngine::Execute(QueryContext& ctx, Submission& task) {
  try {
    // The context runs on exactly the submission's snapshot; the rebind is
    // a view copy (scratch survives), free when the snapshot is unchanged.
    ctx.Rebind(*task.snapshot);
    const QueryStats stats =
        ctx.RunCached(task.query, *task.sink, task.opts, cache_.get());
    Complete(*task.state, stats, "");
  } catch (const std::exception& e) {
    Complete(*task.state, QueryStats{}, e.what());
  }
}

void AsyncEngine::Complete(QueryTicket::State& state, const QueryStats& stats,
                           std::string error) {
  {
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.stats = stats;
    state.error = std::move(error);
    state.done = true;
  }
  state.cv.notify_all();
}

AsyncEngine::Stats AsyncEngine::stats() const {
  Stats s;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    s.submitted = submitted_;
    s.executed = executed_;
    s.queue_rejects = queue_rejects_;
    s.queue_depth = queue_.size();
  }
  const SnapshotManager::Stats snap = snapshots_.stats();
  s.updates = snap.updates;
  s.compactions = snap.compactions;
  s.version = snapshots_.version();
  if (cache_ != nullptr) s.cache = cache_->Stats();
  return s;
}

}  // namespace pathenum
