// Standing live distance oracle (DESIGN.md §13): keeps the O(|label|)
// unsatisfiable-query rejection of PrunedLandmarkIndex sound and active
// while the graph mutates under the update stream, without re-labeling per
// epoch.
//
// A query q(s, t, k) is *unsatisfiable* when dist(s, t) > k — the complete
// result set is empty and nothing needs to be built or enumerated.
// Rejecting on a distance claim is only sound against a LOWER bound: the
// oracle may wrongly ACCEPT (the query then runs the exact pipeline and
// finds nothing — a wasted index build), but must never wrongly REJECT.
//
// The construction, per published epoch:
//
//  * Exact 2-hop labels over the *labels graph* — the snapshot the last
//    (re-)labeling ran on, at `label_version`.
//
//  * An insert-correction set C: every edge inserted after label_version,
//    version-tagged, NEVER removed by later deletions. The "LB graph" =
//    labels graph ∪ C is a SUPERGRAPH of the true graph at the epoch's
//    version (each true edge either existed at label_version or is in C;
//    stale extra edges only shorten distances), so its exact distance
//    lower-bounds the true distance and LB > k certifies rejection.
//    Deletions need no tracking for rejection. A single-edge 2-hop fixup
//    is NOT enough — corrections chain (s →labels u1 →ins v1 →labels u2
//    →ins v2 → … → t) — so the epoch precomputes the |C|×|C| matrix of
//    labels-graph distances between correction endpoints and each query
//    runs a bounded Dijkstra over the ≤|C| correction heads (O(|C|²)
//    scans, |C| is budget-bounded and tiny).
//
//  * Deletion impacts, for the UPPER-bound side only: UpperBound() answers
//    with the LB-graph distance unless an accumulated deletion-only
//    UpdateImpact ball could touch an s-t path of that length, in which
//    case it degrades per-region to "no claim" (kInfDistance). Overflowing
//    the region budget degrades every upper-bound claim until re-label.
//
//  * Version gating: an epoch's claims are valid ONLY for the exact
//    snapshot version (and base-graph identity) it was prepared for.
//    ForVersion() returns an empty ref on any mismatch, so every
//    publish / re-label / rebind race degrades to a sound "no claim".
//
//  * Background re-labeling: when |C| outgrows `relabel_budget` the oracle
//    rebuilds exact labels from a materialized snapshot on a dedicated
//    thread and folds them in at the next published epoch, pruning every
//    correction and deletion region at or below the re-labeled version.
//
// Epoch preparation/publication piggybacks on SnapshotManager's
// Prepare/Publish (see AttachOracle); consultation (EpochRef) is lock-free
// shared-state reads, safe from any thread, and EpochRefs stay valid after
// the oracle is destroyed.
#ifndef PATHENUM_LIVE_LIVE_ORACLE_H_
#define PATHENUM_LIVE_LIVE_ORACLE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/distance_oracle.h"
#include "graph/view.h"
#include "obs/metrics.h"

namespace pathenum {

struct LiveOracleOptions {
  /// Re-label once the insert-correction set exceeds this many edges.
  uint32_t relabel_budget = 32;
  /// Hard cap on tracked corrections: past it the epoch stops claiming
  /// rejections entirely (sound: every answer becomes "no claim") until a
  /// re-label folds. Effective cap is max(relabel_budget, max_corrections).
  uint32_t max_corrections = 64;
  /// Deletion regions tracked before UpperBound() degrades globally.
  uint32_t max_delete_regions = 16;
  /// Hop ceiling certified by the per-region deletion-impact balls
  /// (mirrors SnapshotOptions::max_hops).
  uint32_t max_hops = 8;
  /// Re-label on a dedicated background thread. Disable for deterministic
  /// tests/benches: the budget overflow then re-labels synchronously
  /// inside PublishEpoch.
  bool background_relabel = true;
};

class LiveDistanceOracle {
 public:
  struct EpochState;  // defined in live_oracle.cpp

  /// A consultable claim set for exactly one published snapshot version.
  /// Value type over shared immutable state: copy freely, consult from any
  /// thread, outlives the oracle. The default-constructed ref is empty and
  /// claims nothing.
  class EpochRef {
   public:
    EpochRef() = default;

    bool valid() const { return state_ != nullptr; }
    /// The snapshot version this epoch's claims describe (0 if empty).
    uint64_t version() const;
    /// Graph::uid of that snapshot's base graph (0 if empty).
    uint64_t base_uid() const;

    /// True iff this ref may answer for `view`: same version AND same base
    /// topology. Callers must gate every consultation on this (or obtain
    /// the ref through SnapshotManager::CurrentPublished, which guarantees
    /// the pairing).
    bool ValidFor(const GraphView& view) const;

    /// Sound rejection claim: true ⇒ dist(s, t) > k in the graph at
    /// exactly version(), i.e. q(s, t, k) has a complete, empty result
    /// set. False means "no claim", never "satisfiable". Empty refs and
    /// out-of-range endpoints answer false. O(|label| + |C|²).
    bool Rejects(VertexId s, VertexId t, uint32_t k) const;

    /// Exact distance over the LB graph: a lower bound on the true
    /// distance at version(). kInfDistance when even the LB graph
    /// disconnects the pair; 0 (no information) on an empty ref, overflow,
    /// or out-of-range endpoints.
    uint32_t LowerBound(VertexId s, VertexId t) const;

    /// Upper-bound claim on the true distance at version(), or
    /// kInfDistance for "no claim" — the LB-graph distance, degraded
    /// whenever an accumulated deletion region could shorten-proof the
    /// witness path (see file comment). Not consulted on the rejection hot
    /// path; consumers use it to seed search bounds.
    uint32_t UpperBound(VertexId s, VertexId t) const;

   private:
    friend class LiveDistanceOracle;
    explicit EpochRef(std::shared_ptr<const EpochState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<const EpochState> state_;
  };

  /// Builds exact labels for `base` (the version-0 snapshot) synchronously.
  explicit LiveDistanceOracle(const Graph& base,
                              const LiveOracleOptions& opts = {});
  ~LiveDistanceOracle();

  LiveDistanceOracle(const LiveDistanceOracle&) = delete;
  LiveDistanceOracle& operator=(const LiveDistanceOracle&) = delete;

  /// Computes the epoch for `delta` applied at `version` (= published
  /// version + 1) on top of the current epoch, WITHOUT publishing it: pure
  /// function of the current state, safe to drop. `before` is the snapshot
  /// the delta applies to; `next` the resulting view (kept alive by the
  /// epoch for a potential re-label). SnapshotManager::Prepare drives this.
  EpochRef PrepareEpoch(const GraphDelta& delta, uint64_t version,
                        const GraphView& before,
                        std::shared_ptr<const GraphView> next);

  /// Installs a prepared epoch as current (versions must be contiguous —
  /// serialize with the snapshot updater) and triggers re-labeling when the
  /// correction set outgrew the budget. SnapshotManager::Publish drives
  /// this under its own mutex; keep it cheap.
  void PublishEpoch(const EpochRef& epoch);

  /// The newest published epoch.
  EpochRef Current() const;

  /// The epoch for exactly `version`, or an empty ref if it is not the
  /// current epoch nor in the small ring of recent ones. Engines pin the
  /// ref for the snapshot they run on; the version gate makes a miss
  /// harmless (no claims).
  EpochRef ForVersion(uint64_t version) const;

  /// Blocks until no background re-label is in flight. The rebuilt labels
  /// fold in at the NEXT published epoch; tests publish one more (possibly
  /// empty) delta after this to observe the fold.
  void WaitForRelabel();

  struct Stats {
    uint64_t epochs = 0;        // published epochs (excluding version 0)
    uint64_t relabels = 0;      // completed label rebuilds
    uint64_t rejects = 0;       // Rejects() == true answers
    uint64_t consults = 0;      // Rejects() calls
    uint64_t ub_no_claims = 0;  // UpperBound() deletion degradations
    uint64_t label_version = 0;     // current epoch's labels-graph version
    size_t corrections = 0;         // current epoch's |C|
    size_t delete_regions = 0;      // current epoch's tracked regions
    bool rejection_degraded = false;  // |C| overflowed max_corrections
  };
  Stats stats() const;

  const LiveOracleOptions& options() const { return opts_; }

 private:
  struct Metrics;

  /// Rebuild labels from `snapshot` (at `version`) and stage them for the
  /// next Advance to fold. Runs on relabel_thread_ (or inline when
  /// background_relabel is off).
  void Relabel(uint64_t version, std::shared_ptr<const GraphView> snapshot);
  void MaybeStartRelabel(const std::shared_ptr<const EpochState>& epoch);

  const LiveOracleOptions opts_;
  const std::shared_ptr<Metrics> metrics_;

  mutable std::mutex mutex_;
  std::condition_variable relabel_done_;
  /// Newest first; front() is the current epoch. Bounded ring so queries
  /// pinned a few versions back still get claims.
  std::vector<std::shared_ptr<const EpochState>> recent_;
  /// A completed re-label waiting to fold into the next prepared epoch
  /// (labels plus the weak-component map of the same folded graph).
  std::shared_ptr<const PrunedLandmarkIndex> staged_labels_;
  std::shared_ptr<const std::vector<VertexId>> staged_comp_;
  VertexId staged_num_comps_ = 0;
  uint64_t staged_label_version_ = 0;
  bool relabel_running_ = false;
  std::thread relabel_thread_;  // joined lazily; managed under mutex_ flags

  obs::ShardedCounter epochs_;
  obs::ShardedCounter relabels_;
};

}  // namespace pathenum

#endif  // PATHENUM_LIVE_LIVE_ORACLE_H_
