#include "live/snapshot.h"

#include <algorithm>
#include <string>
#include <utility>

namespace pathenum {

SnapshotManager::SnapshotManager(Graph base, const SnapshotOptions& opts)
    : SnapshotManager(std::make_shared<const Graph>(std::move(base)), opts) {}

SnapshotManager::SnapshotManager(std::shared_ptr<const Graph> base,
                                 const SnapshotOptions& opts)
    : opts_(opts) {
  PATHENUM_CHECK(base != nullptr);
  current_ = std::make_shared<const GraphView>(std::move(base), nullptr,
                                               /*version=*/0);
#if PATHENUM_OBS
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  const std::string label =
      "snapshot=\"" + std::to_string(reg.NextInstanceId()) + "\"";
  reg.RegisterCounter(this, "pathenum_snapshot_updates_total", label,
                      &updates_);
  reg.RegisterCounter(this, "pathenum_snapshot_compactions_total", label,
                      &compactions_);
  reg.RegisterGauge(this, "pathenum_snapshot_version", label,
                    [this] { return static_cast<double>(version()); });
  reg.RegisterGauge(this, "pathenum_snapshot_overlay_bytes", label, [this] {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<double>(current_->OverlayBytes());
  });
#endif
}

SnapshotManager::~SnapshotManager() {
  obs::MetricRegistry::Global().UnregisterOwner(this);
}

std::shared_ptr<const GraphView> SnapshotManager::Current() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

uint64_t SnapshotManager::version() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_->version();
}

void SnapshotManager::AttachOracle(LiveDistanceOracle* oracle) {
  PATHENUM_CHECK(oracle != nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  const LiveDistanceOracle::EpochRef current = oracle->Current();
  // The oracle's claims must line up with the snapshot stream from this
  // exact point: any version gap would let an epoch claim rejections it
  // never saw the deltas for.
  PATHENUM_CHECK_MSG(current.ValidFor(*current_),
                     "oracle must describe the manager's current snapshot");
  oracle_ = oracle;
  current_oracle_ = current;
}

SnapshotManager::Published SnapshotManager::CurrentPublished() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {current_, current_oracle_};
}

SnapshotManager::Epoch SnapshotManager::Prepare(const GraphDelta& delta) {
  std::shared_ptr<const GraphView> before;
  LiveDistanceOracle* oracle = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    before = current_;
    oracle = oracle_;
  }
  Epoch epoch;
  const uint64_t next_version = before->version() + 1;
  GraphView next = before->Apply(delta, next_version);
  epoch.impact =
      UpdateImpact::Compute(*before, next, delta, opts_.max_hops);

  const size_t touched_budget = std::max<size_t>(
      opts_.compact_min_touched,
      static_cast<size_t>(opts_.compact_touched_fraction *
                          static_cast<double>(next.num_vertices())));
  if (next.has_overlay() && next.overlay()->num_touched() > touched_budget) {
    // Fold base + overlay into a fresh standalone base. Same topology, same
    // version — only the representation changes; older snapshots keep their
    // own shared base alive.
    epoch.snapshot = std::make_shared<const GraphView>(
        std::make_shared<const Graph>(next.Materialize()), nullptr,
        next_version);
    epoch.compacted = true;
  } else {
    epoch.snapshot = std::make_shared<const GraphView>(std::move(next));
  }
  if (oracle != nullptr) {
    epoch.oracle =
        oracle->PrepareEpoch(delta, next_version, *before, epoch.snapshot);
  }
  return epoch;
}

void SnapshotManager::Publish(const Epoch& epoch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PATHENUM_CHECK_MSG(epoch.snapshot->version() == current_->version() + 1,
                     "epochs must publish in order (serialize the updater)");
  // An epoch prepared before AttachOracle must not publish after it: the
  // oracle would silently fall behind the version stream.
  PATHENUM_CHECK_MSG(oracle_ == nullptr || epoch.oracle.valid(),
                     "attach the oracle before preparing epochs");
  if (oracle_ != nullptr) {
    oracle_->PublishEpoch(epoch.oracle);
    current_oracle_ = epoch.oracle;
  }
  current_ = epoch.snapshot;
  updates_.Inc();
  if (epoch.compacted) compactions_.Inc();
}

SnapshotManager::Epoch SnapshotManager::Apply(const GraphDelta& delta) {
  Epoch epoch = Prepare(delta);
  Publish(epoch);
  return epoch;
}

SnapshotManager::Stats SnapshotManager::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.updates = updates_.Value();
  s.compactions = compactions_.Value();
  s.overlay_bytes = current_->OverlayBytes();
  return s;
}

}  // namespace pathenum
