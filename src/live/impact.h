// Affected-query analysis for one update epoch (DESIGN.md §7).
//
// A cached index or result set for q(s, t, k) is stale after an update iff
// some changed edge (u, v) lies on an s-t path of at most k hops — in the
// *old* snapshot for deletions (the path existed and is gone) or the *new*
// one for insertions (the path is new). Testing that exactly per entry
// would cost an index build per entry; instead `UpdateImpact` precomputes
// two bounded distance balls once per epoch and answers each entry in O(1):
//
//   For any such path, s --a--> u -> v --b--> t with a + 1 + b <= k, so
//   min(a, b) <= floor((k-1)/2). Hence either s reaches some changed-edge
//   tail u within floor((k-1)/2) hops, or some changed-edge head v reaches
//   t within floor((k-1)/2) hops.
//
// `Compute` grows a backward ball from every changed-edge tail and a
// forward ball from every changed-edge head, to radius floor((max_hops-1)/2),
// over the *pre-update* snapshot. That alone covers insertions too, by
// decomposition: on an affected new path, the prefix strictly before the
// FIRST inserted edge uses only edges that already existed (inserted edges
// are not on it by choice, deleted edges are absent from the new snapshot
// entirely), and it ends at an inserted-edge tail — itself a ball root —
// so the old-snapshot distance from s to some root is <= the prefix
// length; symmetrically for the suffix after the LAST changed edge on the
// target side. `AffectsQuery(s, t, k)` is then sound for every
// k <= max_hops and conservatively answers "affected" beyond that radius.
// The balls use plain shortest distances, which lower-bound the index's
// endpoint-avoiding distances — conservative in the safe direction.
#ifndef PATHENUM_LIVE_IMPACT_H_
#define PATHENUM_LIVE_IMPACT_H_

#include <cstdint>
#include <unordered_map>

#include "graph/view.h"

namespace pathenum {

class UpdateImpact {
 public:
  /// An empty impact affects nothing (the identity epoch).
  UpdateImpact() = default;

  /// Analyzes `delta` applied `before` -> `after` (both snapshots must
  /// describe exactly that transition; only `before` is traversed — see
  /// the decomposition argument above). `max_hops` bounds the hop
  /// constraints the analysis certifies; queries with larger k report
  /// affected. Cost: two bounded multi-source BFS of radius
  /// floor((max_hops-1)/2).
  static UpdateImpact Compute(const GraphView& before, const GraphView& after,
                              const GraphDelta& delta, uint32_t max_hops);

  /// True when the epoch could change the result set of q(s, t, hops) —
  /// sound (never false for an actually affected query), conservative
  /// (may be true for an unaffected one). Matches the eviction predicate
  /// IndexCache::BeginEpoch expects.
  bool AffectsQuery(VertexId source, VertexId target, uint32_t hops) const {
    if (!any_change_) return false;
    const uint32_t rk = hops == 0 ? 0 : (hops - 1) / 2;
    if (rk > radius_) return true;  // beyond the certified radius
    const auto s = source_ball_.find(source);
    if (s != source_ball_.end() && s->second <= rk) return true;
    const auto t = target_ball_.find(target);
    return t != target_ball_.end() && t->second <= rk;
  }

  bool empty() const { return !any_change_; }
  uint32_t radius() const { return radius_; }
  size_t source_ball_size() const { return source_ball_.size(); }
  size_t target_ball_size() const { return target_ball_.size(); }

 private:
  /// Min over changed-edge tails u of dist(x -> u), capped at radius_.
  std::unordered_map<VertexId, uint32_t> source_ball_;
  /// Min over changed-edge heads v of dist(v -> x), capped at radius_.
  std::unordered_map<VertexId, uint32_t> target_ball_;
  uint32_t radius_ = 0;
  bool any_change_ = false;
};

}  // namespace pathenum

#endif  // PATHENUM_LIVE_IMPACT_H_
