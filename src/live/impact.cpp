#include "live/impact.h"

#include <deque>
#include <utility>
#include <vector>

#include "graph/bfs.h"

namespace pathenum {

namespace {

/// Multi-source bounded BFS into the (empty) `ball` map. Plain BFS: every
/// root enters at distance 0 and first-touch distances are already
/// minimal, so no re-relaxation is ever needed.
void GrowBall(const GraphView& view, Direction dir,
              const std::vector<VertexId>& roots, uint32_t radius,
              std::unordered_map<VertexId, uint32_t>& ball) {
  std::deque<VertexId> queue;
  for (const VertexId r : roots) {
    if (ball.try_emplace(r, 0).second) queue.push_back(r);
  }
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    const uint32_t du = ball[u];
    if (du >= radius) continue;
    const auto nbrs = dir == Direction::kForward ? view.OutNeighbors(u)
                                                 : view.InNeighbors(u);
    for (const VertexId v : nbrs) {
      if (ball.try_emplace(v, du + 1).second) queue.push_back(v);
    }
  }
}

}  // namespace

UpdateImpact UpdateImpact::Compute(const GraphView& before,
                                   const GraphView& after,
                                   const GraphDelta& delta,
                                   uint32_t max_hops) {
  UpdateImpact impact;
  if (delta.empty()) return impact;
  impact.any_change_ = true;
  impact.radius_ = max_hops == 0 ? 0 : (max_hops - 1) / 2;

  std::vector<VertexId> tails, heads;
  tails.reserve(delta.size());
  heads.reserve(delta.size());
  for (const auto& [u, v] : delta.insertions) {
    if (u == v) continue;
    tails.push_back(u);
    heads.push_back(v);
  }
  for (const auto& [u, v] : delta.deletions) {
    if (u == v) continue;
    tails.push_back(u);
    heads.push_back(v);
  }
  if (tails.empty()) {
    impact.any_change_ = false;  // the delta was all self-loops: a no-op
    return impact;
  }

  // Backward ball: vertices that can reach a changed-edge tail (their role
  // as a query *source* may be affected). Forward ball: vertices reachable
  // from a changed-edge head (their role as a *target*). Growing over the
  // *before* snapshot alone suffices — see the header's decomposition
  // argument — so `after` is only consulted for sanity here.
  (void)after;
  GrowBall(before, Direction::kBackward, tails, impact.radius_,
           impact.source_ball_);
  GrowBall(before, Direction::kForward, heads, impact.radius_,
           impact.target_ball_);
  return impact;
}

}  // namespace pathenum
