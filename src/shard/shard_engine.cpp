#include "shard/shard_engine.h"

#include <string>

namespace pathenum {

namespace {

EngineOptions WithSalt(EngineOptions opts, uint32_t shard_id,
                       uint64_t generation) {
  if (opts.cache.key_salt == 0) {
    opts.cache.key_salt = ShardCacheSalt(shard_id, generation);
  }
  return opts;
}

}  // namespace

ShardEngine::ShardEngine(uint32_t shard_id, uint64_t partition_generation,
                         Graph shard_graph, const ShardEngineOptions& opts)
    : shard_id_(shard_id),
      cache_key_salt_(opts.engine.cache.key_salt != 0
                          ? opts.engine.cache.key_salt
                          : ShardCacheSalt(shard_id, partition_generation)),
      snapshots_(std::move(shard_graph), opts.snapshot),
      engine_(*snapshots_.Current(),
              WithSalt(opts.engine, shard_id, partition_generation)) {
  auto& reg = obs::MetricRegistry::Global();
  const std::string label = "shard=\"" + std::to_string(shard_id_) +
                            "\",gen=\"" +
                            std::to_string(partition_generation) + "\"";
  reg.RegisterCounter(this, "pathenum_shard_updates_total", label, &updates_);
  reg.RegisterCounter(this, "pathenum_shard_local_queries_total", label,
                      &local_queries_);
  reg.RegisterCounter(this, "pathenum_shard_frames_total", label,
                      &frames_processed_);
  reg.RegisterCounter(this, "pathenum_shard_continuations_total", label,
                      &continuations_out_);
  reg.RegisterCounter(this, "pathenum_shard_paths_emitted_total", label,
                      &paths_emitted_);
}

ShardEngine::~ShardEngine() {
  obs::MetricRegistry::Global().UnregisterOwner(this);
}

Status ShardEngine::SubmitLocalDelta(const GraphDelta& delta) {
  const Status st =
      CheckDelta(delta, snapshots_.Current()->num_vertices());
  if (!st.ok()) return st;
  // The live discipline (DESIGN.md §7): epoch the cache onto the new
  // version before any query can observe it, then publish.
  SnapshotManager::Epoch epoch = snapshots_.Prepare(delta);
  if (IndexCache* cache = engine_.cache()) {
    cache->BeginEpoch(epoch.snapshot->version(),
                      [&epoch](VertexId s, VertexId t, uint32_t k) {
                        return epoch.impact.AffectsQuery(s, t, k);
                      });
  }
  snapshots_.Publish(epoch);
  updates_.Inc();
  return Status::Ok();
}

}  // namespace pathenum
