#include "shard/transport.h"

#include <cstring>

namespace pathenum {

std::vector<uint8_t> EncodeFrame(uint64_t query_id, uint32_t src_shard,
                                 const PathBlockView& block) {
  uint64_t num_verts = 0;
  for (uint32_t i = 0; i < block.count; ++i) {
    num_verts += block.entries[i].suffix_len;
  }
  FrameHeader h;
  h.query_id = query_id;
  h.total_path_verts = block.total_path_vertices;
  h.src_shard = src_shard;
  h.num_paths = block.count;
  h.num_verts = static_cast<uint32_t>(num_verts);
  const size_t entries_bytes = sizeof(PathBlock::Entry) * h.num_paths;
  const size_t verts_bytes = sizeof(VertexId) * h.num_verts;
  std::vector<uint8_t> frame(sizeof(FrameHeader) + entries_bytes + verts_bytes);
  uint8_t* out = frame.data();
  std::memcpy(out, &h, sizeof(h));
  out += sizeof(h);
  std::memcpy(out, block.entries, entries_bytes);
  out += entries_bytes;
  std::memcpy(out, block.verts, verts_bytes);
  return frame;
}

bool DecodeFrame(std::span<const uint8_t> frame, FrameHeader& header,
                 std::vector<PathBlock::Entry>& entries,
                 std::vector<VertexId>& verts) {
  if (frame.size() < sizeof(FrameHeader)) return false;
  std::memcpy(&header, frame.data(), sizeof(FrameHeader));
  const size_t entries_bytes = sizeof(PathBlock::Entry) * header.num_paths;
  const size_t verts_bytes = sizeof(VertexId) * header.num_verts;
  if (frame.size() != sizeof(FrameHeader) + entries_bytes + verts_bytes) {
    return false;
  }
  entries.resize(header.num_paths);
  verts.resize(header.num_verts);
  std::memcpy(entries.data(), frame.data() + sizeof(FrameHeader),
              entries_bytes);
  std::memcpy(verts.data(), frame.data() + sizeof(FrameHeader) + entries_bytes,
              verts_bytes);
  return true;
}

// ---------------------------------------------------------------------------
// InProcessTransport
// ---------------------------------------------------------------------------

InProcessTransport::~InProcessTransport() { Stop(); }

void InProcessTransport::Start(uint32_t num_shards, FrameHandler handler) {
  PATHENUM_CHECK_MSG(endpoints_.empty(), "transport already started");
  PATHENUM_CHECK(num_shards >= 1);
  handler_ = std::move(handler);
  endpoints_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    endpoints_.push_back(std::make_unique<Endpoint>());
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    endpoints_[s]->service = std::thread([this, s] { ServiceLoop(s); });
  }
}

bool InProcessTransport::Send(uint32_t dst_shard, std::vector<uint8_t> frame) {
  if (stopping_.load(std::memory_order_acquire)) return false;
  PATHENUM_CHECK(dst_shard < endpoints_.size());
  Endpoint& ep = *endpoints_[dst_shard];
  {
    std::lock_guard<std::mutex> lock(ep.mutex);
    ep.queue.push_back(std::move(frame));
  }
  ep.cv.notify_one();
  return true;
}

void InProcessTransport::Stop() {
  if (endpoints_.empty()) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& ep : endpoints_) {
    ep->cv.notify_all();
  }
  for (auto& ep : endpoints_) {
    if (ep->service.joinable()) ep->service.join();
  }
}

void InProcessTransport::ServiceLoop(uint32_t shard) {
  Endpoint& ep = *endpoints_[shard];
  for (;;) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(ep.mutex);
      ep.cv.wait(lock, [&] {
        return !ep.queue.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (ep.queue.empty()) return;  // stopping and drained
      frame = std::move(ep.queue.front());
      ep.queue.pop_front();
    }
    handler_(shard, std::move(frame));
  }
}

}  // namespace pathenum
