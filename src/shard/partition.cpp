#include "shard/partition.h"

#include <algorithm>
#include <numeric>

#include "graph/builder.h"

namespace pathenum {

GraphPartition GraphPartitioner::Partition(const Graph& g,
                                           const PartitionOptions& opts) {
  PATHENUM_CHECK_MSG(opts.num_shards >= 1, "num_shards must be >= 1");
  const uint32_t num_shards = opts.num_shards;
  const VertexId n = g.num_vertices();

  GraphPartition p;
  p.shard_map_.assign(n, 0);
  p.shard_edges_.assign(num_shards, 0);
  p.shard_vertices_.assign(num_shards, 0);

  if (num_shards > 1 && n > 0) {
    // Degree-descending placement order: hubs pick their shard first, so
    // the affinity score below can gather their neighborhoods around them.
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), VertexId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&g](VertexId a, VertexId b) {
                       return g.Degree(a) > g.Degree(b);
                     });

    const VertexId capacity = static_cast<VertexId>(std::max<double>(
        1.0, opts.balance_slack * static_cast<double>(n) / num_shards + 1.0));
    std::vector<uint8_t> placed(n, 0);
    std::vector<uint64_t> affinity(num_shards, 0);
    std::vector<uint64_t> edge_load(num_shards, 0);

    for (const VertexId v : order) {
      std::fill(affinity.begin(), affinity.end(), 0);
      for (const VertexId u : g.OutNeighbors(v)) {
        if (placed[u]) ++affinity[p.shard_map_[u]];
      }
      for (const VertexId u : g.InNeighbors(v)) {
        if (placed[u]) ++affinity[p.shard_map_[u]];
      }
      uint32_t best = num_shards;  // sentinel: none admissible yet
      for (uint32_t s = 0; s < num_shards; ++s) {
        if (p.shard_vertices_[s] >= capacity) continue;
        if (best == num_shards || affinity[s] > affinity[best] ||
            (affinity[s] == affinity[best] &&
             edge_load[s] < edge_load[best])) {
          best = s;
        }
      }
      // The capacity formula always leaves at least one shard open while
      // unplaced vertices remain; fall back to the lightest shard anyway.
      if (best == num_shards) {
        best = static_cast<uint32_t>(std::min_element(p.shard_vertices_.begin(),
                                                      p.shard_vertices_.end()) -
                                     p.shard_vertices_.begin());
      }
      p.shard_map_[v] = best;
      placed[v] = 1;
      ++p.shard_vertices_[best];
      edge_load[best] += g.Degree(v);
    }
  } else {
    p.shard_vertices_.assign(num_shards, 0);
    if (num_shards >= 1) p.shard_vertices_[0] = n;
  }

  // Tail-owned shard subgraphs over the full vertex space + the cut list.
  std::vector<GraphBuilder> builders;
  builders.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) builders.emplace_back(n);
  std::vector<uint8_t> boundary(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    const uint32_t su = p.shard_map_[u];
    for (const VertexId v : g.OutNeighbors(u)) {
      builders[su].AddEdge(u, v);
      ++p.shard_edges_[su];
      const uint32_t sv = p.shard_map_[v];
      if (sv != su) {
        p.cut_edges_.push_back({u, v, su, sv});
        boundary[u] = 1;
        boundary[v] = 1;
      }
    }
  }
  p.num_boundary_ = static_cast<VertexId>(
      std::count(boundary.begin(), boundary.end(), uint8_t{1}));
  // Out-neighbor iteration over ascending u already yields (tail, head)
  // sorted order; keep the invariant explicit for future builders.
  std::sort(p.cut_edges_.begin(), p.cut_edges_.end(),
            [](const CutEdge& a, const CutEdge& b) {
              return a.tail != b.tail ? a.tail < b.tail : a.head < b.head;
            });
  p.shard_graphs_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    p.shard_graphs_.push_back(builders[s].Build());
  }
  return p;
}

}  // namespace pathenum
