// The cross-shard query front-end (DESIGN.md §14). A ShardRouter owns a
// GraphPartition's shard engines plus a ShardTransport and serves
// hop-constrained (s, t, k) queries over the union graph:
//
//  1. *Plan*: two k-bounded BFS over the pinned per-shard snapshots compute
//     exact global distance fields — backward from t (each shard
//     contributes exactly the in-edges it owns) and forward from s. If
//     dist(s, t) > k the query is kUnsatisfiable before any per-shard work
//     (the same soundness argument as the live oracle's lower-bound
//     rejection, §13, but with an exact distance).
//  2. *Delegate or stitch*: a cut edge (u, w) is feasible iff
//     dist_s(u) + 1 + dist_t(w) <= k. When NO cut edge is feasible, every
//     feasible path provably stays inside owner(s)'s tail-owned subgraph,
//     and the whole query is delegated to that shard's QueryEngine — full
//     index/result-cache reuse, identical semantics to the unsharded
//     engine. Otherwise the query runs *stitched*: partial paths expand as
//     segment DFS inside the shard owning their current endpoint, pruned
//     by depth + dist_t(frontier) > k, and cross shards as delta-encoded
//     PathBlocks over the transport.
//  3. *Merge*: all shards deliver through ONE BranchGate/BranchSink pair
//     (the §8 reservation-based accounting, reused, not duplicated), so
//     `delivered() == limit` holds at the router's merge barrier exactly
//     as it does for split joins; per-shard counters fold together with
//     internal::FinishFanout.
//
// Updates route through the partition map: SubmitUpdate splits a
// GraphDelta by the owner of each edge's tail, every touched shard
// publishes its own snapshot epoch (ShardEngine::SubmitLocalDelta), and
// the router's cut-edge list is swapped copy-on-write under the same lock
// queries pin their snapshots under — a query always observes one
// consistent {per-shard views, cut list} frontier.
//
// Threading: Run and SubmitUpdate may each be called from one thread at a
// time (they serialize against each other internally). During a stitched
// query the caller's sink is invoked from transport service threads,
// serialized by the gate's mutex — the same contract as
// BatchOptions::split_branches.
#ifndef PATHENUM_SHARD_ROUTER_H_
#define PATHENUM_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/options.h"
#include "core/query.h"
#include "core/sink.h"
#include "graph/graph.h"
#include "graph/view.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "shard/partition.h"
#include "shard/shard_engine.h"
#include "shard/transport.h"
#include "util/status.h"

namespace pathenum {

struct RouterOptions {
  PartitionOptions partition;
  /// Applied to every shard engine (cache salts are derived per shard).
  ShardEngineOptions shard;
};

/// Outcome of one routed query. `stats.counters.num_results` equals the
/// merge gate's delivered() for stitched runs — structurally capped at the
/// result limit.
struct RouterResult {
  QueryStats stats;
  QueryState state = QueryState::kOk;
  std::string error;
  /// True when the query ran wholly on one shard's QueryEngine (no
  /// feasible cut edge); false for stitched cross-shard execution.
  bool delegated = false;
  uint32_t delegate_shard = 0;
  /// Cut edges feasible for this query at plan time (0 when delegated).
  uint64_t feasible_cut_edges = 0;
};

class ShardRouter {
 public:
  /// Partitions `g` and stands up one ShardEngine per shard plus the
  /// transport (in-process queues when `transport` is null).
  explicit ShardRouter(const Graph& g, const RouterOptions& opts = {},
                       std::unique_ptr<ShardTransport> transport = nullptr);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t ShardOf(VertexId v) const { return shard_map_[v]; }
  VertexId num_vertices() const {
    return static_cast<VertexId>(shard_map_.size());
  }
  ShardEngine& shard(uint32_t s) { return *shards_[s]; }
  uint64_t generation() const { return generation_; }

  /// Current cross-shard edge count (the live cut, not the epoch-0 one).
  size_t cut_size() const;

  /// Serves one query. One caller thread at a time; see the header comment
  /// for the sink threading contract.
  RouterResult Run(const Query& q, PathSink& sink,
                   const EnumOptions& opts = {});

  /// Routes `delta` through the partition map: each op lands in the shard
  /// owning its edge's tail, every touched shard publishes its own
  /// snapshot epoch, and the cut list advances atomically with them.
  /// Rejects (without side effects) endpoints outside the vertex space.
  Status SubmitUpdate(const GraphDelta& delta);

  struct Stats {
    uint64_t queries = 0;
    uint64_t delegated = 0;
    uint64_t stitched = 0;
    uint64_t unsatisfiable = 0;
    uint64_t rejected = 0;
    uint64_t updates = 0;
    uint64_t frames_sent = 0;         // cross-shard PathBlock frames
    uint64_t continuations_sent = 0;  // partial paths inside those frames
  };
  Stats stats() const;

 private:
  struct Pinned {
    std::vector<std::shared_ptr<const GraphView>> views;
    std::shared_ptr<const std::vector<CutEdge>> cut;
  };

  /// Per-shard stitched-execution state; each instance is touched only by
  /// its shard's transport service thread during one query.
  struct ShardWork;
  /// Whole-query stitched state shared by the router thread and the
  /// transport service threads.
  struct StitchState;

  Pinned Pin() const;
  void HandleFrame(uint32_t dst_shard, std::vector<uint8_t> frame);
  void ExpandPartial(StitchState& st, ShardWork& w, uint32_t dst_shard,
                     VertexId* path, uint32_t len);
  void FlushOutgoing(StitchState& st, ShardWork& w, uint32_t target_shard);
  bool PollControl(StitchState& st, ShardWork& w);

  RouterResult RunDelegated(const Query& q, PathSink& sink,
                            const EnumOptions& opts, const Pinned& pin,
                            uint32_t shard);
  RouterResult RunStitched(const Query& q, PathSink& sink,
                           const EnumOptions& opts, Pinned pin,
                           uint64_t feasible_cut, double plan_ms,
                           obs::QuerySpan& span);

  /// k-bounded exact global BFS over the pinned per-shard snapshots.
  void ComputeBackwardDistances(const Pinned& pin, VertexId t, uint32_t k);
  void ComputeForwardDistances(const Pinned& pin, VertexId s, uint32_t k);

  uint64_t generation_;
  std::vector<uint32_t> shard_map_;
  std::vector<std::unique_ptr<ShardEngine>> shards_;
  std::unique_ptr<ShardTransport> transport_;

  /// Guards {per-shard published snapshots, cut list} consistency between
  /// Pin() and SubmitUpdate.
  mutable std::mutex state_mutex_;
  std::unordered_set<uint64_t> cut_set_;  // packed (tail << 32 | head)
  std::shared_ptr<const std::vector<CutEdge>> cut_list_;

  /// The active stitched query (null between queries). Written by Run
  /// under active_mutex_; transport handlers take a shared_ptr copy.
  std::mutex active_mutex_;
  std::shared_ptr<StitchState> active_;
  uint64_t next_query_id_ = 1;

  /// Planning buffers, reused across Run calls (Run is serialized).
  std::vector<uint32_t> dist_to_t_;
  std::vector<uint32_t> dist_from_s_;
  std::vector<VertexId> frontier_;
  std::vector<VertexId> next_frontier_;

  obs::ShardedCounter queries_;
  obs::ShardedCounter delegated_;
  obs::ShardedCounter stitched_;
  obs::ShardedCounter unsat_;
  obs::ShardedCounter rejected_;
  obs::ShardedCounter updates_;
  obs::ShardedCounter frames_sent_;
  obs::ShardedCounter continuations_sent_;
  obs::RegHistogram* plan_ms_hist_ = nullptr;
  obs::RegHistogram* stitch_merge_ms_hist_ = nullptr;
  std::string metric_label_;
};

}  // namespace pathenum

#endif  // PATHENUM_SHARD_ROUTER_H_
