// One shard of the sharded serving tier (DESIGN.md §14): the unchanged
// single-process stack — SnapshotManager MVCC over the shard's tail-owned
// subgraph, a pooled QueryEngine with its own IndexCache — wrapped behind a
// shard id. The wrapper adds exactly two things:
//
//  * the live-update discipline for shard-local deltas (Prepare →
//    IndexCache::BeginEpoch with the epoch's impact predicate → Publish),
//    so each shard publishes its own snapshot epoch stream; and
//
//  * an IndexCache key salt derived from (shard id, partition generation),
//    so two shards sharing a process — or the same shard id across
//    repartitions — can never alias (s, t, k, options) cache keys.
//
// Queries whose feasible paths provably stay inside this shard are served
// by the wrapped engine directly (full index/result-cache reuse); the
// router's stitched execution traverses the shard's pinned snapshot views
// without going through the engine.
#ifndef PATHENUM_SHARD_SHARD_ENGINE_H_
#define PATHENUM_SHARD_SHARD_ENGINE_H_

#include <cstdint>
#include <memory>

#include "engine/query_engine.h"
#include "graph/view.h"
#include "live/snapshot.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace pathenum {

/// The cache-key salt for shard `shard_id` under partition generation
/// `generation`: non-zero and injective over (generation < 2^48,
/// shard_id < 2^16 - 1), so no two live shard caches in one process ever
/// share a salt.
inline uint64_t ShardCacheSalt(uint32_t shard_id, uint64_t generation) {
  return (generation << 16) | (static_cast<uint64_t>(shard_id & 0xffff) + 1);
}

struct ShardEngineOptions {
  /// Per-shard engine knobs. enable_cache defaults on here (the sharded
  /// tier exists to serve repeated traffic); cache.key_salt, when left 0,
  /// is derived via ShardCacheSalt.
  EngineOptions engine = [] {
    EngineOptions e;
    e.enable_cache = true;
    return e;
  }();
  SnapshotOptions snapshot;
};

class ShardEngine {
 public:
  /// Takes ownership of the shard's tail-owned subgraph (full global
  /// vertex space — see shard/partition.h).
  ShardEngine(uint32_t shard_id, uint64_t partition_generation,
              Graph shard_graph, const ShardEngineOptions& opts = {});
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  uint32_t shard_id() const { return shard_id_; }
  uint64_t cache_key_salt() const { return cache_key_salt_; }

  /// The shard's latest published snapshot (MVCC: callers pin it for the
  /// duration of a query; later epochs never disturb it).
  std::shared_ptr<const GraphView> CurrentView() const {
    return snapshots_.Current();
  }
  uint64_t version() const { return snapshots_.version(); }

  /// Applies a shard-local delta (every op's tail must be owned by this
  /// shard — the router's partition map guarantees it) under the live
  /// epoch discipline: the new version's cache epoch begins before the
  /// snapshot publishes, so no query can observe the new version against
  /// stale cache entries. Serialized by the caller (the router's update
  /// path). Returns InvalidArgument on endpoints outside the vertex space.
  Status SubmitLocalDelta(const GraphDelta& delta);

  QueryEngine& engine() { return engine_; }
  const SnapshotManager& snapshots() const { return snapshots_; }

  /// Stitched-execution accounting, folded in by the router at each query
  /// merge barrier (the counters back the registry's per-shard
  /// `pathenum_shard_*` metrics).
  void RecordStitchWork(uint64_t frames, uint64_t continuations_out,
                        uint64_t paths_emitted) {
    frames_processed_.Inc(frames);
    continuations_out_.Inc(continuations_out);
    paths_emitted_.Inc(paths_emitted);
  }
  void RecordLocalQuery() { local_queries_.Inc(); }

  struct Stats {
    uint64_t updates = 0;            // shard-local epochs published
    uint64_t local_queries = 0;      // queries delegated wholly to this shard
    uint64_t frames_processed = 0;   // cross-shard frames expanded here
    uint64_t continuations_out = 0;  // partial paths shipped to other shards
    uint64_t paths_emitted = 0;      // full paths this shard completed
  };
  Stats stats() const {
    return {updates_.Value(), local_queries_.Value(),
            frames_processed_.Value(), continuations_out_.Value(),
            paths_emitted_.Value()};
  }

 private:
  uint32_t shard_id_;
  uint64_t cache_key_salt_;
  SnapshotManager snapshots_;
  QueryEngine engine_;
  obs::ShardedCounter updates_;
  obs::ShardedCounter local_queries_;
  obs::ShardedCounter frames_processed_;
  obs::ShardedCounter continuations_out_;
  obs::ShardedCounter paths_emitted_;
};

}  // namespace pathenum

#endif  // PATHENUM_SHARD_SHARD_ENGINE_H_
