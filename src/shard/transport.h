// The cross-shard message plane (DESIGN.md §14). Partial paths travel
// between shards as delta-encoded PathBlocks serialized into self-contained
// byte frames, so the interface is *socket-shaped* from day one: a frame is
// an opaque byte vector with an explicit header, `Send` is fire-and-forget
// toward a shard id, and delivery happens on the receiving shard's service
// context via a handler callback. The first implementation is an in-process
// queue (one MPSC queue + service thread per shard); a TCP backend can
// replace it without touching the router, which never looks inside the
// transport.
//
// Frame layout (little-endian, 4-byte alignable):
//   FrameHeader { query_id u64, total_path_verts u64,
//                 src_shard u32, num_paths u32, num_verts u32, reserved u32 }
//   PathBlock::Entry[num_paths]   (u16 prefix_len, u16 suffix_len)
//   VertexId[num_verts]           (the concatenated delta suffixes)
#ifndef PATHENUM_SHARD_TRANSPORT_H_
#define PATHENUM_SHARD_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/sink.h"
#include "util/common.h"

namespace pathenum {

struct FrameHeader {
  uint64_t query_id = 0;
  uint64_t total_path_verts = 0;
  uint32_t src_shard = 0;
  uint32_t num_paths = 0;
  uint32_t num_verts = 0;
  uint32_t reserved = 0;
};

/// Serializes `block` (as a view) into a self-contained frame.
std::vector<uint8_t> EncodeFrame(uint64_t query_id, uint32_t src_shard,
                                 const PathBlockView& block);

/// Parses a frame into `header` plus a PathBlockView over the reusable
/// decode buffers (memcpy'd out of the frame: the view stays valid after
/// the frame bytes are released, and the copy keeps the hot path free of
/// alignment/aliasing hazards). Returns false on a malformed frame.
bool DecodeFrame(std::span<const uint8_t> frame, FrameHeader& header,
                 std::vector<PathBlock::Entry>& entries,
                 std::vector<VertexId>& verts);

/// Abstract shard-to-shard frame carrier. Implementations deliver each
/// frame exactly once, in per-(src, dst) send order, by invoking the
/// handler on a thread dedicated to (or serialized per) the destination
/// shard — the router's per-shard stitch state relies on that
/// serialization. `Send` may be called from any handler thread (shards
/// forward continuations to each other mid-query).
class ShardTransport {
 public:
  /// Called on the destination shard's service context.
  using FrameHandler =
      std::function<void(uint32_t dst_shard, std::vector<uint8_t> frame)>;

  virtual ~ShardTransport() = default;

  /// Brings up `num_shards` endpoints. Must be called once, before Send.
  virtual void Start(uint32_t num_shards, FrameHandler handler) = 0;

  /// Enqueues `frame` toward `dst_shard`. Returns false when the transport
  /// is stopped (the frame is dropped).
  virtual bool Send(uint32_t dst_shard, std::vector<uint8_t> frame) = 0;

  /// Drains and joins the service contexts. Idempotent.
  virtual void Stop() = 0;
};

/// The in-process transport: one FIFO queue and one service thread per
/// shard. Delivery order per (src, dst) pair follows send order; handler
/// invocations for one shard are serialized on its thread.
class InProcessTransport : public ShardTransport {
 public:
  InProcessTransport() = default;
  ~InProcessTransport() override;

  void Start(uint32_t num_shards, FrameHandler handler) override;
  bool Send(uint32_t dst_shard, std::vector<uint8_t> frame) override;
  void Stop() override;

 private:
  struct Endpoint {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> queue;
    std::thread service;
  };

  void ServiceLoop(uint32_t shard);

  FrameHandler handler_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> stopping_{false};
};

}  // namespace pathenum

#endif  // PATHENUM_SHARD_TRANSPORT_H_
