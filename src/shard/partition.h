// Edge-cut graph partitioning for the sharded serving tier (DESIGN.md §14).
//
// A `GraphPartition` is a stable vertex→shard map plus one tail-owned
// subgraph per shard: the directed edge (u, v) lives in exactly the shard
// that owns u. Every shard graph spans the FULL global vertex-id space, so
// no id translation exists anywhere in the system — a cut edge's head is
// simply a vertex the owning shard has no out-edges for (a replicated
// boundary "ghost"), and partial paths cross shards as plain global vertex
// sequences. Two structural consequences the router builds on:
//
//  * Out-adjacency of v is complete in shard ShardOf(v) and empty
//    everywhere else, so forward expansion of v happens in exactly one
//    shard.
//  * In-adjacency of v in shard p is exactly the in-edges of v whose tail
//    p owns, so a backward BFS wave unions the per-shard in-neighbor scans
//    without any shard discovering another shard's predecessors.
//
// Assignment is greedy min-cut over degree-descending vertices: each vertex
// goes to the (capacity-respecting) shard holding most of its already-placed
// neighbors, ties broken toward the lightest edge load — deterministic for
// a given graph, so the map is stable across identically-built processes.
#ifndef PATHENUM_SHARD_PARTITION_H_
#define PATHENUM_SHARD_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace pathenum {

struct PartitionOptions {
  /// Number of shards (>= 1). One shard degenerates to the unsharded
  /// engine: every edge is local and the cut is empty.
  uint32_t num_shards = 2;

  /// Per-shard vertex capacity slack over the perfectly balanced
  /// |V| / num_shards: a shard stops accepting vertices once it holds
  /// ceil(slack * |V| / num_shards), which bounds skew even when the
  /// greedy affinity score keeps pulling toward one shard.
  double balance_slack = 1.05;
};

/// One edge of the cut: (tail, head) with ShardOf(tail) != ShardOf(head).
/// The edge itself is stored in `tail_shard`'s subgraph (tail ownership);
/// the router's feasibility scan and fan-out planning read this list.
struct CutEdge {
  VertexId tail = 0;
  VertexId head = 0;
  uint32_t tail_shard = 0;
  uint32_t head_shard = 0;
};

/// The partitioning result. Immutable once built; shard graphs are meant to
/// be moved out into per-shard engines (TakeShardGraph), after which the
/// map, cut list and stats remain valid.
class GraphPartition {
 public:
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shard_edges_.size());
  }
  VertexId num_vertices() const {
    return static_cast<VertexId>(shard_map_.size());
  }

  uint32_t ShardOf(VertexId v) const { return shard_map_[v]; }
  const std::vector<uint32_t>& shard_map() const { return shard_map_; }

  /// Edges of the initial graph owned by shard `s` (tail ownership).
  uint64_t EdgesInShard(uint32_t s) const { return shard_edges_[s]; }
  VertexId VerticesInShard(uint32_t s) const { return shard_vertices_[s]; }

  /// Initial cut edges, sorted by (tail, head). The live cut list is
  /// maintained by the router as updates stream in; this is epoch 0.
  std::span<const CutEdge> cut_edges() const { return cut_edges_; }

  /// Distinct vertices incident to a cut edge — the replicated boundary.
  VertexId num_boundary_vertices() const { return num_boundary_; }

  /// The tail-owned subgraph of shard `s` over the full vertex space.
  const Graph& ShardGraph(uint32_t s) const { return shard_graphs_[s]; }

  /// Moves shard `s`'s subgraph out (call at most once per shard).
  Graph TakeShardGraph(uint32_t s) { return std::move(shard_graphs_[s]); }

 private:
  friend class GraphPartitioner;

  std::vector<uint32_t> shard_map_;
  std::vector<Graph> shard_graphs_;
  std::vector<uint64_t> shard_edges_;
  std::vector<VertexId> shard_vertices_;
  std::vector<CutEdge> cut_edges_;
  VertexId num_boundary_ = 0;
};

class GraphPartitioner {
 public:
  /// Partitions `g` into opts.num_shards tail-owned subgraphs. Greedy
  /// min-cut over degree-descending vertices; deterministic. Throws on
  /// num_shards == 0.
  static GraphPartition Partition(const Graph& g, const PartitionOptions& opts);
};

}  // namespace pathenum

#endif  // PATHENUM_SHARD_PARTITION_H_
