#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/parallel_dfs.h"
#include "util/timer.h"

namespace pathenum {

namespace {

constexpr uint32_t kUnreachedDist = 0xffffffffu;

/// Edges between stitch-control polls (cancel/deadline/work budget) — the
/// same granularity the enumerators use, so a trip stops every shard's
/// expansion within a bounded amount of work.
constexpr uint32_t kPollIntervalEdges = 4096;

uint64_t PackEdge(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

/// Per-shard stitched-execution state. Owned by StitchState; each instance
/// is only ever touched by its shard's transport service thread (the
/// transport serializes handler invocations per destination shard).
struct ShardRouter::ShardWork {
  uint32_t self = 0;  // this shard's id (the frame-handler dst)
  EnumCounters counters;
  BlockEmitter emitter;  // full paths ending at t, through the shared gate
  /// Outgoing continuation blocks, one per destination shard.
  std::vector<PathBlock> outgoing;
  /// Reusable frame-decode buffers.
  std::vector<PathBlock::Entry> entries;
  std::vector<VertexId> verts;
  /// The partial path being extended (global vertex ids; <= k + 1 long).
  VertexId path[kMaxHops + 2] = {};
  uint64_t frames = 0;        // frames expanded on this shard
  uint64_t continuations = 0; // partial paths shipped to other shards
  uint64_t last_folded_edges = 0;
  uint32_t poll = 0;
};

/// Whole-query stitched state. The router thread creates it, publishes it
/// as `active_`, seeds the transport and waits for quiescence; transport
/// service threads expand frames against it. `outstanding` counts frames
/// in flight (queued or being processed, the seed included) — Dijkstra
/// style, incremented BEFORE each Send — so outstanding == 0 is exact
/// quiescence and no frame of this query survives past Run.
struct ShardRouter::StitchState {
  StitchState(const Query& q_in, const EnumOptions& opts_in, Pinned pin_in,
              const uint32_t* dist, const uint32_t* smap, uint32_t num_shards,
              PathSink& sink)
      : q(q_in),
        opts(opts_in),
        pin(std::move(pin_in)),
        dist_to_t(dist),
        shard_map(smap),
        gate(opts_in.result_limit, opts_in.response_target, enum_timer),
        shared(gate, sink, BranchSink::Mode::kSerialized),
        deadline(Deadline::AfterMs(opts_in.time_limit_ms)),
        work(num_shards) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      work[s].self = s;
      work[s].outgoing.resize(num_shards);
      work[s].emitter.Arm(&shared, &work[s].counters, &enum_timer,
                          opts.result_limit, opts.response_target);
    }
  }

  /// True once further expansion is pointless: a control trip (abort), the
  /// result limit / a sink stop (drain), or the gate's own stop latch.
  /// Handlers keep draining frames (and decrementing `outstanding`) after
  /// this flips — they just discard the work — so quiescence still arrives.
  bool StopExpansion() const {
    return abort.load(std::memory_order_relaxed) ||
           drain.load(std::memory_order_relaxed) || gate.stopped();
  }

  uint64_t query_id = 0;
  const Query q;
  const EnumOptions opts;
  const Pinned pin;
  const uint32_t* dist_to_t;
  const uint32_t* shard_map;
  Timer enum_timer;
  BranchGate gate;
  BranchSink shared;
  const Deadline deadline;
  std::atomic<uint64_t> outstanding{0};
  std::atomic<uint64_t> work_done{0};  // folded edges_accessed, all shards
  std::atomic<bool> abort{false};      // control trip: discard quickly
  std::atomic<bool> drain{false};      // limit reached / sink stop
  std::atomic<bool> trip_cancelled{false};
  std::atomic<bool> trip_deadline{false};
  std::atomic<bool> trip_work{false};
  std::vector<ShardWork> work;
  std::mutex done_mutex;
  std::condition_variable done_cv;
};

ShardRouter::ShardRouter(const Graph& g, const RouterOptions& opts,
                         std::unique_ptr<ShardTransport> transport) {
  // Process-wide partition generation: distinct for every router ever
  // built, so ShardCacheSalt never collides across repartitions.
  static std::atomic<uint64_t> g_generation{0};
  generation_ = g_generation.fetch_add(1, std::memory_order_relaxed) + 1;

  GraphPartition part = GraphPartitioner::Partition(g, opts.partition);
  shard_map_ = part.shard_map();
  const uint32_t n_shards = part.num_shards();
  shards_.reserve(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    shards_.push_back(std::make_unique<ShardEngine>(
        s, generation_, part.TakeShardGraph(s), opts.shard));
  }

  auto cut = std::make_shared<std::vector<CutEdge>>(part.cut_edges().begin(),
                                                    part.cut_edges().end());
  cut_set_.reserve(cut->size() * 2);
  for (const CutEdge& e : *cut) cut_set_.insert(PackEdge(e.tail, e.head));
  cut_list_ = std::move(cut);

  transport_ = transport != nullptr ? std::move(transport)
                                    : std::make_unique<InProcessTransport>();
  transport_->Start(n_shards,
                    [this](uint32_t dst, std::vector<uint8_t> frame) {
                      HandleFrame(dst, std::move(frame));
                    });

  auto& reg = obs::MetricRegistry::Global();
  metric_label_ = "router=\"" + std::to_string(reg.NextInstanceId()) +
                  "\",gen=\"" + std::to_string(generation_) + "\"";
  reg.RegisterCounter(this, "pathenum_router_queries_total", metric_label_,
                      &queries_);
  reg.RegisterCounter(this, "pathenum_router_delegated_total", metric_label_,
                      &delegated_);
  reg.RegisterCounter(this, "pathenum_router_stitched_total", metric_label_,
                      &stitched_);
  reg.RegisterCounter(this, "pathenum_router_unsatisfiable_total",
                      metric_label_, &unsat_);
  reg.RegisterCounter(this, "pathenum_router_rejected_total", metric_label_,
                      &rejected_);
  reg.RegisterCounter(this, "pathenum_router_updates_total", metric_label_,
                      &updates_);
  reg.RegisterCounter(this, "pathenum_router_frames_sent_total",
                      metric_label_, &frames_sent_);
  reg.RegisterCounter(this, "pathenum_router_continuations_sent_total",
                      metric_label_, &continuations_sent_);
  reg.RegisterGauge(this, "pathenum_router_cut_edges", metric_label_,
                    [this] { return static_cast<double>(cut_size()); });
  plan_ms_hist_ = reg.GetHistogram("pathenum_router_plan_ms", metric_label_);
  stitch_merge_ms_hist_ =
      reg.GetHistogram("pathenum_router_stitch_merge_ms", metric_label_);
}

ShardRouter::~ShardRouter() {
  // Quiesce the service threads before any member they touch dies. No
  // stitched query can be in flight here (Run waits for quiescence), so
  // this only drains stale empty queues.
  transport_->Stop();
  obs::MetricRegistry::Global().UnregisterOwner(this);
}

size_t ShardRouter::cut_size() const {
  std::lock_guard<std::mutex> lk(state_mutex_);
  return cut_list_->size();
}

ShardRouter::Stats ShardRouter::stats() const {
  return {queries_.Value(),     delegated_.Value(),
          stitched_.Value(),    unsat_.Value(),
          rejected_.Value(),    updates_.Value(),
          frames_sent_.Value(), continuations_sent_.Value()};
}

ShardRouter::Pinned ShardRouter::Pin() const {
  std::lock_guard<std::mutex> lk(state_mutex_);
  Pinned p;
  p.views.reserve(shards_.size());
  for (const auto& s : shards_) p.views.push_back(s->CurrentView());
  p.cut = cut_list_;
  return p;
}

Status ShardRouter::SubmitUpdate(const GraphDelta& delta) {
  const Status chk = CheckDelta(delta, num_vertices());
  if (!chk.ok()) return chk;

  std::lock_guard<std::mutex> lk(state_mutex_);
  std::vector<GraphDelta> per_shard(shards_.size());
  for (const auto& [u, v] : delta.insertions) per_shard[ShardOf(u)].Insert(u, v);
  for (const auto& [u, v] : delta.deletions) per_shard[ShardOf(u)].Delete(u, v);
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    const Status st = shards_[s]->SubmitLocalDelta(per_shard[s]);
    if (!st.ok()) return st;  // unreachable after CheckDelta
  }

  // Maintain the live cut under the delta's set semantics: all insertions,
  // then all deletions (deletions win), self-loops never cross shards.
  for (const auto& [u, v] : delta.insertions) {
    if (u != v && ShardOf(u) != ShardOf(v)) cut_set_.insert(PackEdge(u, v));
  }
  for (const auto& [u, v] : delta.deletions) cut_set_.erase(PackEdge(u, v));

  auto next = std::make_shared<std::vector<CutEdge>>();
  next->reserve(cut_set_.size());
  for (const uint64_t packed : cut_set_) {
    const VertexId tail = static_cast<VertexId>(packed >> 32);
    const VertexId head = static_cast<VertexId>(packed & 0xffffffffu);
    next->push_back({tail, head, ShardOf(tail), ShardOf(head)});
  }
  std::sort(next->begin(), next->end(),
            [](const CutEdge& a, const CutEdge& b) {
              return a.tail != b.tail ? a.tail < b.tail : a.head < b.head;
            });
  cut_list_ = std::move(next);
  updates_.Inc();
  return Status::Ok();
}

void ShardRouter::ComputeBackwardDistances(const Pinned& pin, VertexId t,
                                           uint32_t k) {
  dist_to_t_.assign(shard_map_.size(), kUnreachedDist);
  frontier_.clear();
  dist_to_t_[t] = 0;
  frontier_.push_back(t);
  for (uint32_t d = 0; d < k && !frontier_.empty(); ++d) {
    next_frontier_.clear();
    for (const VertexId x : frontier_) {
      // In-adjacency of x in shard p is exactly the in-edges whose tail p
      // owns (see shard/partition.h), so the per-shard scans union
      // disjointly into the global in-neighborhood.
      for (const auto& view : pin.views) {
        for (const VertexId y : view->InNeighbors(x)) {
          if (dist_to_t_[y] == kUnreachedDist) {
            dist_to_t_[y] = d + 1;
            next_frontier_.push_back(y);
          }
        }
      }
    }
    std::swap(frontier_, next_frontier_);
  }
}

void ShardRouter::ComputeForwardDistances(const Pinned& pin, VertexId s,
                                          uint32_t k) {
  dist_from_s_.assign(shard_map_.size(), kUnreachedDist);
  frontier_.clear();
  dist_from_s_[s] = 0;
  frontier_.push_back(s);
  for (uint32_t d = 0; d < k && !frontier_.empty(); ++d) {
    next_frontier_.clear();
    for (const VertexId x : frontier_) {
      // Out-adjacency of x is complete in its owning shard and empty
      // everywhere else — one shard scan per vertex.
      for (const VertexId y : pin.views[shard_map_[x]]->OutNeighbors(x)) {
        if (dist_from_s_[y] == kUnreachedDist) {
          dist_from_s_[y] = d + 1;
          next_frontier_.push_back(y);
        }
      }
    }
    std::swap(frontier_, next_frontier_);
  }
}

RouterResult ShardRouter::Run(const Query& q, PathSink& sink,
                              const EnumOptions& opts) {
  queries_.Inc();
  RouterResult r;
  {
    const Status chk = CheckQuery(*shards_[0]->CurrentView(), q);
    if (!chk.ok()) {
      rejected_.Inc();
      r.state = QueryState::kRejected;
      r.error = chk.message();
      return r;
    }
  }

  const Timer total;
  Pinned pin = Pin();
  const Timer plan_timer;
  ComputeBackwardDistances(pin, q.target, q.hops);

  if (dist_to_t_[q.source] > q.hops) {
    // Exact global distance certifies dist(s, t) > k: the complete (empty)
    // result set, no shard ever touched.
    plan_ms_hist_->Observe(plan_timer.ElapsedMs());
    unsat_.Inc();
    obs::QuerySpan span;
    span.Begin(q.source, q.target, q.hops);
    r.state = QueryState::kUnsatisfiable;
    r.stats.counters.oracle_rejected = true;
    r.stats.total_ms = total.ElapsedMs();
    r.stats.response_ms = r.stats.total_ms;
    span.Finish(r.state);
    return r;
  }

  ComputeForwardDistances(pin, q.source, q.hops);
  uint64_t feasible = 0;
  for (const CutEdge& e : *pin.cut) {
    const uint32_t ds = dist_from_s_[e.tail];
    const uint32_t dt = dist_to_t_[e.head];
    if (ds != kUnreachedDist && dt != kUnreachedDist && ds + 1 + dt <= q.hops) {
      ++feasible;
    }
  }
  const double plan_ms = plan_timer.ElapsedMs();
  plan_ms_hist_->Observe(plan_ms);

  if (feasible == 0) {
    // No cut edge fits inside the hop budget, so every feasible path lies
    // wholly in owner(s)'s tail-owned subgraph (a cross-shard path must
    // traverse a feasible cut edge): delegate to that shard's engine.
    return RunDelegated(q, sink, opts, pin, ShardOf(q.source));
  }

  obs::QuerySpan span;
  span.Begin(q.source, q.target, q.hops);
  r = RunStitched(q, sink, opts, std::move(pin), feasible, plan_ms, span);
  r.stats.total_ms = total.ElapsedMs();
  if (r.stats.counters.response_ms < 0.0) {
    r.stats.response_ms = r.stats.total_ms;
  }
  return r;
}

RouterResult ShardRouter::RunDelegated(const Query& q, PathSink& sink,
                                       const EnumOptions& opts,
                                       const Pinned& pin, uint32_t shard) {
  delegated_.Inc();
  shards_[shard]->RecordLocalQuery();
  BatchOptions batch;
  batch.query = opts;
  const Query queries[1] = {q};
  PathSink* sinks[1] = {&sink};
  BatchResult br =
      shards_[shard]->engine().RunBatch(*pin.views[shard], queries, sinks,
                                        batch);
  RouterResult r;
  r.delegated = true;
  r.delegate_shard = shard;
  r.stats = std::move(br.stats[0]);
  r.state = br.states[0];
  r.error = std::move(br.errors[0]);
  return r;
}

RouterResult ShardRouter::RunStitched(const Query& q, PathSink& sink,
                                      const EnumOptions& opts, Pinned pin,
                                      uint64_t feasible_cut, double plan_ms,
                                      obs::QuerySpan& span) {
  stitched_.Inc();
  span.SetSplit();
  auto st = std::make_shared<StitchState>(q, opts, std::move(pin),
                                          dist_to_t_.data(), shard_map_.data(),
                                          num_shards(), sink);
  {
    std::lock_guard<std::mutex> lk(active_mutex_);
    st->query_id = next_query_id_++;
    active_ = st;
  }

  st->enum_timer.Reset();
  // A control trip that fired before the query starts must be observed
  // even when the run would finish under the workers' poll interval.
  if (opts.cancel.cancelled()) {
    st->trip_cancelled.store(true, std::memory_order_relaxed);
    st->abort.store(true, std::memory_order_relaxed);
  } else if (st->deadline.Expired()) {
    st->trip_deadline.store(true, std::memory_order_relaxed);
    st->abort.store(true, std::memory_order_relaxed);
  }
  if (!st->abort.load(std::memory_order_relaxed)) {
    // Seed: the single partial path [s], expanded first in owner(s).
    PathBlock seed;
    const uint32_t sv = q.source;
    seed.Append(std::span<const uint32_t>(&sv, 1));
    st->outstanding.store(1, std::memory_order_release);
    frames_sent_.Inc();
    if (!transport_->Send(ShardOf(q.source),
                          EncodeFrame(st->query_id, num_shards(),
                                      PathBlockView(seed)))) {
      st->outstanding.store(0, std::memory_order_release);
      st->abort.store(true, std::memory_order_relaxed);
    }
  }

  {
    std::unique_lock<std::mutex> lk(st->done_mutex);
    while (st->outstanding.load(std::memory_order_acquire) != 0) {
      st->done_cv.wait_for(lk, std::chrono::milliseconds(5));
      // Router-side control poll: catches trips no worker observes (all
      // frames parked in transport queues). Only meaningful while work is
      // outstanding; a trip racing the final decrement conservatively
      // reports the trip — the delivered prefix is still well-formed.
      if (!st->abort.load(std::memory_order_relaxed) &&
          st->outstanding.load(std::memory_order_acquire) != 0) {
        if (st->opts.cancel.cancelled()) {
          st->trip_cancelled.store(true, std::memory_order_relaxed);
          st->abort.store(true, std::memory_order_relaxed);
        } else if (st->deadline.Expired()) {
          st->trip_deadline.store(true, std::memory_order_relaxed);
          st->abort.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  const double enumerate_ms = st->enum_timer.ElapsedMs();
  span.Mark(obs::SpanStage::kEnumerate);
  {
    std::lock_guard<std::mutex> lk(active_mutex_);
    active_.reset();
  }

  // Merge barrier: fold the per-shard counters with the shared fan-out
  // accounting; the gate's delivered() is structurally capped at the limit.
  const Timer merge_timer;
  std::vector<EnumCounters> per_shard(st->work.size());
  for (size_t s = 0; s < st->work.size(); ++s) {
    per_shard[s] = st->work[s].counters;
    shards_[s]->RecordStitchWork(st->work[s].frames,
                                 st->work[s].continuations,
                                 st->work[s].counters.num_results);
  }
  EnumCounters merged;
  internal::FinishFanout(merged, per_shard, /*root_partials=*/1,
                         /*root_edges=*/0, st->gate.delivered(),
                         st->gate.response_ms(), opts);
  if (st->trip_cancelled.load(std::memory_order_relaxed)) {
    merged.cancelled = true;
  }
  if (st->trip_deadline.load(std::memory_order_relaxed)) {
    merged.timed_out = true;
  }
  if (st->trip_work.load(std::memory_order_relaxed)) {
    merged.work_exceeded = true;
  }

  RouterResult r;
  r.feasible_cut_edges = feasible_cut;
  r.state = merged.TerminalState();
  r.stats.counters = merged;
  r.stats.method = Method::kDfs;
  r.stats.enumerate_ms = enumerate_ms;
  r.stats.response_ms =
      merged.response_ms >= 0.0 ? plan_ms + merged.response_ms : -1.0;
  stitch_merge_ms_hist_->Observe(merge_timer.ElapsedMs());
  span.Mark(obs::SpanStage::kMerge);
  span.Finish(r.state);
  return r;
}

void ShardRouter::HandleFrame(uint32_t dst_shard, std::vector<uint8_t> frame) {
  std::shared_ptr<StitchState> st;
  {
    std::lock_guard<std::mutex> lk(active_mutex_);
    st = active_;
  }
  if (st == nullptr) return;

  ShardWork& w = st->work[dst_shard];
  FrameHeader header;
  if (!DecodeFrame(frame, header, w.entries, w.verts) ||
      header.query_id != st->query_id) {
    // Malformed or stale — not a frame of the active query, so it carries
    // no stake in the active query's outstanding count.
    return;
  }

  ++w.frames;
  if (!st->StopExpansion()) {
    const PathBlockView block(w.entries.data(), w.verts.data(),
                              header.num_paths, header.total_path_verts);
    ForEachPathInBlock(block, [&](std::span<const VertexId> p) {
      std::copy(p.begin(), p.end(), w.path);
      ExpandPartial(*st, w, dst_shard, w.path,
                    static_cast<uint32_t>(p.size()));
      return !st->StopExpansion();
    });
  }

  if (!st->StopExpansion()) {
    for (uint32_t p = 0; p < st->work.size(); ++p) {
      if (p != dst_shard) FlushOutgoing(*st, w, p);
    }
    if (!w.emitter.Flush()) st->drain.store(true, std::memory_order_relaxed);
  } else {
    // Stopped: pending paths are discardable (the gate already delivered
    // everything the limit allows, or a trip made the set partial anyway).
    for (PathBlock& b : w.outgoing) b.Clear();
    w.emitter.block().Clear();
  }

  if (st->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(st->done_mutex);
    st->done_cv.notify_all();
  }
}

void ShardRouter::ExpandPartial(StitchState& st, ShardWork& w,
                                uint32_t dst_shard, VertexId* path,
                                uint32_t len) {
  const VertexId x = path[len - 1];
  const uint32_t edges = len - 1;
  const uint32_t k = st.q.hops;
  for (const VertexId y : st.pin.views[dst_shard]->OutNeighbors(x)) {
    ++w.counters.edges_accessed;
    if (++w.poll >= kPollIntervalEdges && !PollControl(st, w)) return;
    if (st.StopExpansion()) return;
    const uint32_t rem = st.dist_to_t[y];
    if (rem == kUnreachedDist || edges + 1 + rem > k) continue;
    if (y == st.q.target) {
      // A simple s-t path contains t exactly once, at its end: emit, never
      // recurse through t.
      ++w.counters.partials;
      path[len] = y;
      if (!w.emitter.block().HasRoomFor(len + 1) && !w.emitter.Flush()) {
        st.drain.store(true, std::memory_order_relaxed);
        return;
      }
      w.emitter.block().Append(std::span<const uint32_t>(path, len + 1));
      if (w.emitter.AtResultLimit() && !w.emitter.Flush()) {
        st.drain.store(true, std::memory_order_relaxed);
        return;
      }
      continue;
    }
    bool on_path = false;
    for (uint32_t i = 0; i < len; ++i) {
      if (path[i] == y) {
        on_path = true;
        break;
      }
    }
    if (on_path) continue;
    ++w.counters.partials;
    path[len] = y;
    const uint32_t owner = st.shard_map[y];
    if (owner != dst_shard) {
      PathBlock& out = w.outgoing[owner];
      if (!out.HasRoomFor(len + 1)) FlushOutgoing(st, w, owner);
      out.Append(std::span<const uint32_t>(path, len + 1));
    } else {
      ExpandPartial(st, w, dst_shard, path, len + 1);
    }
  }
}

void ShardRouter::FlushOutgoing(StitchState& st, ShardWork& w,
                                uint32_t target_shard) {
  PathBlock& out = w.outgoing[target_shard];
  if (out.empty()) return;
  w.continuations += out.size();
  continuations_sent_.Inc(out.size());
  frames_sent_.Inc();
  // Count the frame outstanding BEFORE it can be processed, so the counter
  // can never dip to zero while work exists (Dijkstra-style termination).
  st.outstanding.fetch_add(1, std::memory_order_acq_rel);
  if (!transport_->Send(target_shard,
                        EncodeFrame(st.query_id, w.self,
                                    PathBlockView(out)))) {
    st.abort.store(true, std::memory_order_relaxed);
    if (st.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(st.done_mutex);
      st.done_cv.notify_all();
    }
  }
  out.Clear();
}

bool ShardRouter::PollControl(StitchState& st, ShardWork& w) {
  w.poll = 0;
  const uint64_t delta = w.counters.edges_accessed - w.last_folded_edges;
  w.last_folded_edges = w.counters.edges_accessed;
  const uint64_t total =
      st.work_done.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (st.abort.load(std::memory_order_relaxed)) return false;
  // Trip precedence matches QueryControl::Check / TerminalState.
  if (st.opts.cancel.cancelled()) {
    st.trip_cancelled.store(true, std::memory_order_relaxed);
    st.abort.store(true, std::memory_order_relaxed);
  } else if (st.deadline.Expired()) {
    st.trip_deadline.store(true, std::memory_order_relaxed);
    st.abort.store(true, std::memory_order_relaxed);
  } else if (total >= st.opts.work_budget_edges) {
    st.trip_work.store(true, std::memory_order_relaxed);
    st.abort.store(true, std::memory_order_relaxed);
  }
  return !st.abort.load(std::memory_order_relaxed);
}

}  // namespace pathenum
