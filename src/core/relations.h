// The join-model relations R_1..R_k of paper §3.1 and the full-reducer
// dangling-tuple elimination of Algorithm 2. The light-weight index
// supersedes this in the PathEnum pipeline (it prunes equally well at a
// fraction of the cost — Appendix B); the module exists to validate that
// claim (tests, ablation bench) and as a faithful reference implementation.
#ifndef PATHENUM_CORE_RELATIONS_H_
#define PATHENUM_CORE_RELATIONS_H_

#include <vector>

#include "core/query.h"
#include "graph/graph.h"

namespace pathenum {

/// One binary relation: a list of (u, v) tuples.
using Relation = std::vector<std::pair<VertexId, VertexId>>;

/// The chain-join relations of Q for a query q(s, t, k):
///   R_1 = out-edges of s;
///   R_i (1<i<k) = edges of G-{s} with source != t, plus (t,t);
///   R_k = in-edges of t with source != s, plus (t,t).
struct RelationSet {
  Query query;
  /// Vertex-id bound (the graph's vertex count); sizes the full reducer's
  /// flat semijoin scratch. 0 means "derive from the tuples".
  VertexId num_vertices = 0;
  std::vector<Relation> relations;  // relations[i] is R_{i+1}

  /// Total tuples across all relations (the Alg. 2 footprint).
  uint64_t TotalTuples() const;
};

/// Reusable scratch for FullReduce's semijoin membership tests: a flat
/// epoch-stamped array (the same trick the IndexBuilder uses for its BFS
/// fields) replacing the original per-call hash set. `stamp[v] == epoch`
/// means v is in the current sweep's key set; bumping `epoch` clears the
/// set in O(1).
struct SemijoinScratch {
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;
};

/// Builds the initial (un-reduced) relations — Alg. 2 lines 1-4. Vectors
/// are reserved from the known degree/edge-count bounds.
RelationSet BuildRelations(const Graph& g, const Query& q);

/// Runs the full reducer in place — Alg. 2 lines 5-12: a forward semijoin
/// sweep (prune R_{i+1} sources absent from R_i's destinations) followed by
/// a backward sweep. Pass a `scratch` to amortize the membership array
/// across calls (a worker context reducing many queries); nullptr uses a
/// call-local one.
void FullReduce(RelationSet& rs, SemijoinScratch* scratch = nullptr);

/// Convenience: BuildRelations + FullReduce.
RelationSet BuildReducedRelations(const Graph& g, const Query& q);

}  // namespace pathenum

#endif  // PATHENUM_CORE_RELATIONS_H_
