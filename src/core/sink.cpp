#include "core/sink.h"

namespace pathenum {

bool CountingSink::OnPath(std::span<const VertexId> path) {
  ++count_;
  total_length_ += path.size() - 1;
  return true;
}

bool CollectingSink::OnPath(std::span<const VertexId> path) {
  if (paths_.size() >= max_paths_) {
    truncated_ = true;
    return false;
  }
  paths_.emplace_back(path.begin(), path.end());
  return paths_.size() < max_paths_;
}

}  // namespace pathenum
