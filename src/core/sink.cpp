#include "core/sink.h"

#include <algorithm>

#include "util/fault_injection.h"

namespace pathenum {

PathSink::BlockResult PathSink::OnBlock(const PathBlockView& block) {
  // Per-path fallback: OnPath-only sinks observe exactly the sequence (and
  // stop point) a per-path enumerator would have produced.
  return ForEachPathInBlock(
      block, [this](std::span<const VertexId> path) { return OnPath(path); });
}

bool CountingSink::OnPath(std::span<const VertexId> path) {
  ++count_;
  total_length_ += path.size() - 1;
  return true;
}

PathSink::BlockResult CountingSink::OnBlock(const PathBlockView& block) {
  count_ += block.count;
  // Per path, edges = vertices - 1; summed over the block in O(1).
  total_length_ += block.total_path_vertices - block.count;
  return {block.count, false};
}

bool CollectingSink::OnPath(std::span<const VertexId> path) {
  if (paths_.size() >= max_paths_) {
    truncated_ = true;
    return false;
  }
  paths_.emplace_back(path.begin(), path.end());
  return paths_.size() < max_paths_;
}

PathSink::BlockResult CollectingSink::OnBlock(const PathBlockView& block) {
  // Decode through the per-path logic (non-virtually) so capacity/
  // truncation semantics stay identical to per-path emission.
  return ForEachPathInBlock(block, [this](std::span<const VertexId> path) {
    return CollectingSink::OnPath(path);
  });
}

bool BlockEmitter::Flush() {
  if (block_.empty()) return true;
  fault::Hit(fault::Site::kBlockFlush);
  const PathBlockView view(block_);
  const uint64_t before = counters_->num_results;
  const PathSink::BlockResult r = sink_->OnBlock(view);
  counters_->num_results += r.consumed;
  if (response_target_ > before &&
      response_target_ <= counters_->num_results) {
    counters_->response_ms = timer_->ElapsedMs();
  }
  block_.Clear();
  // Sink stop beats a simultaneous limit hit — the per-path precedence.
  if (r.stop || r.consumed < view.count) {
    counters_->stopped_by_sink = true;
    return false;
  }
  if (counters_->num_results >= result_limit_) {
    counters_->hit_result_limit = true;
    return false;
  }
  return true;
}

bool BranchSink::OnPath(std::span<const VertexId> path) {
  BranchGate& g = gate_;
  if (g.stopped_.load(std::memory_order_relaxed)) return false;
  const uint64_t n = g.emitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n > g.limit_) return false;  // reservation failed: stop this worker
  if (n == g.response_target_ &&
      !g.response_recorded_.exchange(true, std::memory_order_relaxed)) {
    g.response_ms_.store(g.timer_.ElapsedMs(), std::memory_order_relaxed);
  }
  if (mode_ == Mode::kSerialized) {
    bool keep_going;
    {
      const std::lock_guard<std::mutex> lock(g.mutex_);
      // The latch is re-checked under the serialization mutex: once the
      // inner sink returns false it must never be called again (it may
      // have torn down its state on that contract).
      if (g.stopped_.load(std::memory_order_relaxed)) return false;
      g.delivered_.fetch_add(1, std::memory_order_relaxed);
      keep_going = inner_.OnPath(path);
      if (!keep_going) g.stopped_.store(true, std::memory_order_relaxed);
    }
    if (!keep_going) return false;
  } else {
    g.delivered_.fetch_add(1, std::memory_order_relaxed);
    // A private sink refusing stops only this worker; the other workers'
    // sinks keep receiving their disjoint shares.
    if (!inner_.OnPath(path)) return false;
  }
  return n < g.limit_;
}

PathSink::BlockResult BranchSink::OnBlock(const PathBlockView& block) {
  BranchGate& g = gate_;
  if (block.count == 0) {
    return {0, g.stopped_.load(std::memory_order_relaxed)};
  }
  if (g.stopped_.load(std::memory_order_relaxed)) return {0, true};
  // One reservation per block: claim [old, old + count), keep the share
  // below the limit. The refused remainder (and any over-reservation) only
  // inflates `emitted_`, which is attempts — delivered() stays capped.
  const uint64_t old = g.emitted_.fetch_add(block.count,
                                            std::memory_order_relaxed);
  if (old >= g.limit_) return {0, true};
  const uint64_t grant = std::min<uint64_t>(block.count, g.limit_ - old);
  if (g.response_target_ > old && g.response_target_ <= old + grant &&
      !g.response_recorded_.exchange(true, std::memory_order_relaxed)) {
    g.response_ms_.store(g.timer_.ElapsedMs(), std::memory_order_relaxed);
  }
  const PathBlockView granted =
      block.Prefix(static_cast<uint32_t>(grant));
  BlockResult inner;
  if (mode_ == Mode::kSerialized) {
    const std::lock_guard<std::mutex> lock(g.mutex_);
    if (g.stopped_.load(std::memory_order_relaxed)) return {0, true};
    inner = inner_.OnBlock(granted);
    g.delivered_.fetch_add(inner.consumed, std::memory_order_relaxed);
    if (inner.stop || inner.consumed < granted.count) {
      g.stopped_.store(true, std::memory_order_relaxed);
    }
  } else {
    inner = inner_.OnBlock(granted);
    g.delivered_.fetch_add(inner.consumed, std::memory_order_relaxed);
  }
  const bool inner_stopped = inner.stop || inner.consumed < granted.count;
  const bool limit_reached = old + grant >= g.limit_;
  return {inner.consumed, inner_stopped || limit_reached};
}

}  // namespace pathenum
