#include "core/sink.h"

namespace pathenum {

bool CountingSink::OnPath(std::span<const VertexId> path) {
  ++count_;
  total_length_ += path.size() - 1;
  return true;
}

bool CollectingSink::OnPath(std::span<const VertexId> path) {
  if (paths_.size() >= max_paths_) {
    truncated_ = true;
    return false;
  }
  paths_.emplace_back(path.begin(), path.end());
  return paths_.size() < max_paths_;
}

bool BranchSink::OnPath(std::span<const VertexId> path) {
  BranchGate& g = gate_;
  if (g.stopped_.load(std::memory_order_relaxed)) return false;
  const uint64_t n = g.emitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n > g.limit_) return false;  // reservation failed: stop this worker
  if (n == g.response_target_ &&
      !g.response_recorded_.exchange(true, std::memory_order_relaxed)) {
    g.response_ms_.store(g.timer_.ElapsedMs(), std::memory_order_relaxed);
  }
  if (mode_ == Mode::kSerialized) {
    bool keep_going;
    {
      const std::lock_guard<std::mutex> lock(g.mutex_);
      // The latch is re-checked under the serialization mutex: once the
      // inner sink returns false it must never be called again (it may
      // have torn down its state on that contract).
      if (g.stopped_.load(std::memory_order_relaxed)) return false;
      g.delivered_.fetch_add(1, std::memory_order_relaxed);
      keep_going = inner_.OnPath(path);
      if (!keep_going) g.stopped_.store(true, std::memory_order_relaxed);
    }
    if (!keep_going) return false;
  } else {
    g.delivered_.fetch_add(1, std::memory_order_relaxed);
    // A private sink refusing stops only this worker; the other workers'
    // sinks keep receiving their disjoint shares.
    if (!inner_.OnPath(path)) return false;
  }
  return n < g.limit_;
}

}  // namespace pathenum
