// The HcPE query type: q(s, t, k).
#ifndef PATHENUM_CORE_QUERY_H_
#define PATHENUM_CORE_QUERY_H_

#include "graph/graph.h"
#include "util/common.h"

namespace pathenum {

/// A hop-constrained s-t path enumeration query: find every simple path from
/// `source` to `target` with at most `hops` edges.
struct Query {
  VertexId source = 0;
  VertexId target = 0;
  uint32_t hops = 2;
};

/// Validates a query against a graph (or live GraphView snapshot):
/// endpoints in range and distinct, 1 <= hops <= kMaxHops. Throws
/// std::logic_error on violation.
template <typename GraphT>
inline void ValidateQuery(const GraphT& g, const Query& q) {
  PATHENUM_CHECK_MSG(q.source < g.num_vertices(), "source out of range");
  PATHENUM_CHECK_MSG(q.target < g.num_vertices(), "target out of range");
  PATHENUM_CHECK_MSG(q.source != q.target, "source and target must differ");
  PATHENUM_CHECK_MSG(q.hops >= 1, "hop constraint must be at least 1");
  PATHENUM_CHECK_MSG(q.hops <= kMaxHops, "hop constraint too large");
}

}  // namespace pathenum

#endif  // PATHENUM_CORE_QUERY_H_
