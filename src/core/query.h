// The HcPE query type: q(s, t, k).
#ifndef PATHENUM_CORE_QUERY_H_
#define PATHENUM_CORE_QUERY_H_

#include <string>

#include "graph/graph.h"
#include "util/common.h"
#include "util/status.h"

namespace pathenum {

/// A hop-constrained s-t path enumeration query: find every simple path from
/// `source` to `target` with at most `hops` edges.
struct Query {
  VertexId source = 0;
  VertexId target = 0;
  uint32_t hops = 2;
};

/// Validates a query against a graph (or live GraphView snapshot):
/// endpoints in range and distinct, 1 <= hops <= kMaxHops. Queries are
/// untrusted input, so the engines use this non-throwing form and map a
/// failure to QueryState::kRejected.
template <typename GraphT>
inline Status CheckQuery(const GraphT& g, const Query& q) {
  if (q.source >= g.num_vertices()) {
    return Status::InvalidArgument("source vertex " +
                                   std::to_string(q.source) +
                                   " out of range");
  }
  if (q.target >= g.num_vertices()) {
    return Status::InvalidArgument("target vertex " +
                                   std::to_string(q.target) +
                                   " out of range");
  }
  if (q.source == q.target) {
    return Status::InvalidArgument("source and target must differ");
  }
  if (q.hops < 1) {
    return Status::InvalidArgument("hop constraint must be at least 1");
  }
  if (q.hops > kMaxHops) {
    return Status::InvalidArgument("hop constraint " +
                                   std::to_string(q.hops) + " exceeds " +
                                   std::to_string(kMaxHops));
  }
  return Status::Ok();
}

/// Throwing wrapper (std::logic_error) for call sites whose contract says
/// "the query must be valid" — API misuse, not untrusted input.
template <typename GraphT>
inline void ValidateQuery(const GraphT& g, const Query& q) {
  const Status st = CheckQuery(g, q);
  PATHENUM_CHECK_MSG(st.ok(), st.message());
}

}  // namespace pathenum

#endif  // PATHENUM_CORE_QUERY_H_
