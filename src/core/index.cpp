#include "core/index.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "graph/view.h"
#include "obs/metrics.h"
#include "util/memory.h"
#include "util/timer.h"

namespace pathenum {

std::vector<VertexId> LightweightIndex::OutVerticesWithin(VertexId v,
                                                          uint32_t b) const {
  std::vector<VertexId> out;
  const uint32_t slot = SlotOf(v);
  if (slot == kInvalidSlot) return out;
  for (uint32_t s : OutSlotsWithin(slot, b)) out.push_back(VertexAt(s));
  return out;
}

std::vector<VertexId> LightweightIndex::InVerticesWithin(VertexId v,
                                                         uint32_t b) const {
  std::vector<VertexId> out;
  const uint32_t slot = SlotOf(v);
  if (slot == kInvalidSlot) return out;
  for (uint32_t s : InSlotsWithin(slot, b)) out.push_back(VertexAt(s));
  return out;
}

uint64_t LightweightIndex::LevelSize(uint32_t i) const {
  const uint32_t k = query_.hops;
  uint64_t total = 0;
  for (uint32_t a = 0; a <= std::min(i, k); ++a) {
    for (uint32_t b = 0; b + i <= k; ++b) {
      const auto [first, last] = CellSlots(a, b);
      total += last - first;
    }
  }
  return total;
}

namespace {

/// Copies `src` into the slab at `offset` (which must be suitably aligned
/// — the layout orders arrays by descending alignment) and returns the
/// aliasing span.
template <typename T>
std::span<const T> PlacePart(std::byte* slab, size_t& offset,
                             const std::vector<T>& src) {
  T* dst = reinterpret_cast<T*>(slab + offset);
  if (!src.empty()) std::memcpy(dst, src.data(), src.size() * sizeof(T));
  offset += src.size() * sizeof(T);
  return {dst, src.size()};
}

/// Narrowing u32 -> u16 variant for the ends tables.
std::span<const uint16_t> PlacePart16(std::byte* slab, size_t& offset,
                                      const std::vector<uint32_t>& src) {
  uint16_t* dst = reinterpret_cast<uint16_t*>(slab + offset);
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<uint16_t>(src[i]);
  }
  offset += src.size() * sizeof(uint16_t);
  return {dst, src.size()};
}

bool FitsU16(const std::vector<uint32_t>& v) {
  for (const uint32_t x : v) {
    if (x > 0xffffu) return false;
  }
  return true;
}

/// Global build-stream metrics (DESIGN.md §12): every finished index
/// build — solo or batched-member, interrupted or not — feeds one counted
/// observation. The registry-owned handles resolve once; under
/// PATHENUM_OBS=0 they are no-op stubs and the whole call melts away.
void RecordBuildMetrics(const LightweightIndex::BuildStats& bs) {
  struct Handles {
    obs::MetricRegistry& reg = obs::MetricRegistry::Global();
    obs::RegCounter* solo = reg.GetCounter("pathenum_build_total",
                                           "kind=\"solo\"");
    obs::RegCounter* batched = reg.GetCounter("pathenum_build_total",
                                              "kind=\"batched\"");
    obs::RegCounter* interrupted =
        reg.GetCounter("pathenum_build_interrupted_total");
    obs::RegCounter* edges = reg.GetCounter("pathenum_build_edges_total");
    obs::RegHistogram* solo_ms = reg.GetHistogram("pathenum_build_ms",
                                                  "kind=\"solo\"");
    obs::RegHistogram* batched_ms = reg.GetHistogram("pathenum_build_ms",
                                                     "kind=\"batched\"");
  };
  static Handles h;
  (bs.batched ? h.batched : h.solo)->Inc();
  if (bs.interrupted) h.interrupted->Inc();
  h.edges->Inc(bs.edges_scanned);
  (bs.batched ? h.batched_ms : h.solo_ms)->Observe(bs.total_ms);
}

}  // namespace

void IndexBuilder::Fuse(LightweightIndex& idx, bool edge_ids,
                        bool in_direction, bool level_stats) {
  // The cumulative ends are bounded by the slot's (index) degree; narrow
  // the whole table to u16 when every count fits.
  const bool out_narrow = FitsU16(out_ends_);
  const bool in_narrow = in_direction && FitsU16(in_ends_);

  // Element sizes come from the staged vectors' own types (sizeof, exactly
  // what PlacePart copies), so the budget and the copy cannot diverge.
  // Arrays are laid out in descending alignment order (8 -> 4 -> 2 -> 1),
  // so no padding is ever needed between them.
  const auto bytes_of = [](const auto& v) {
    return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  size_t total = 0;
  total += bytes_of(out_begin_);
  if (in_direction) total += bytes_of(in_begin_);
  if (edge_ids) total += bytes_of(out_edge_ids_);
  if (level_stats) {
    total += bytes_of(level_it_sum_);
    total += bytes_of(level_count_);
  }
  total += bytes_of(x_vertices_);
  total += bytes_of(cell_offsets_);
  total += bytes_of(slot_lookup_);
  total += bytes_of(out_slots_);
  if (in_direction) total += bytes_of(in_slots_);
  total += out_ends_.size() * (out_narrow ? sizeof(uint16_t) : sizeof(uint32_t));
  if (in_direction) {
    total += in_ends_.size() * (in_narrow ? sizeof(uint16_t) : sizeof(uint32_t));
  }
  total += bytes_of(slot_ds_);
  total += bytes_of(slot_dt_);

  idx.slab_ = std::make_unique<std::byte[]>(total);
  idx.slab_bytes_ = total;
  std::byte* slab = idx.slab_.get();
  size_t off = 0;

  // 8-byte-aligned parts.
  idx.out_begin_ = PlacePart(slab, off, out_begin_);
  if (in_direction) idx.in_begin_ = PlacePart(slab, off, in_begin_);
  idx.edge_ids_built_ = edge_ids;
  if (edge_ids) idx.out_edge_ids_ = PlacePart(slab, off, out_edge_ids_);
  if (level_stats) {
    idx.level_it_sum_ = PlacePart(slab, off, level_it_sum_);
    idx.level_count_ = PlacePart(slab, off, level_count_);
  }
  // 4-byte.
  idx.x_vertices_ = PlacePart(slab, off, x_vertices_);
  idx.cell_offsets_ = PlacePart(slab, off, cell_offsets_);
  idx.slot_lookup_ = PlacePart(slab, off, slot_lookup_);
  idx.out_slots_ = PlacePart(slab, off, out_slots_);
  if (in_direction) idx.in_slots_ = PlacePart(slab, off, in_slots_);
  if (!out_narrow) idx.out_ends32_ = PlacePart(slab, off, out_ends_);
  if (in_direction && !in_narrow) {
    idx.in_ends32_ = PlacePart(slab, off, in_ends_);
  }
  // 2-byte.
  if (out_narrow) idx.out_ends16_ = PlacePart16(slab, off, out_ends_);
  if (in_direction && in_narrow) {
    idx.in_ends16_ = PlacePart16(slab, off, in_ends_);
  }
  // 1-byte.
  idx.slot_ds_ = PlacePart(slab, off, slot_ds_);
  idx.slot_dt_ = PlacePart(slab, off, slot_dt_);
  PATHENUM_CHECK_MSG(off == total, "slab layout mismatch");
}

void IndexBuilder::FinishInterrupted(LightweightIndex& idx, const Query& q,
                                     const Options& opts, bool by_cancel) {
  const uint32_t k = q.hops;
  const size_t num_cells = static_cast<size_t>(k + 1) * (k + 1);
  cell_offsets_.assign(num_cells + 1, 0);
  x_vertices_.clear();
  slot_ds_.clear();
  slot_dt_.clear();
  slot_lookup_.clear();  // SlotOf falls through to kInvalidSlot
  out_begin_.assign(1, 0);
  out_ends_.clear();
  out_slots_.clear();
  out_edge_ids_.clear();
  in_slots_.clear();
  if (opts.build_in_direction) {
    in_begin_.assign(1, 0);
    in_ends_.clear();
  }
  if (opts.collect_level_stats) {
    level_it_sum_.assign(k, 0.0);
    level_count_.assign(k, 0);
  }
  idx.source_slot_ = kInvalidSlot;
  idx.target_slot_ = kInvalidSlot;
  idx.num_out_edges_ = 0;
  Fuse(idx, opts.build_edge_ids, opts.build_in_direction,
       opts.collect_level_stats);
  idx.build_stats_.interrupted = true;
  idx.build_stats_.interrupted_by_cancel = by_cancel;
}

template <typename GraphT>
LightweightIndex IndexBuilder::Build(const GraphT& g, const Query& q,
                                     const Options& opts) {
  ValidateQuery(g, q);
  LightweightIndex idx;
  idx.query_ = q;
  const uint32_t k = q.hops;
  Timer total_timer;

  // --- Line 1 of Alg. 3: the two bounded BFS. ---------------------------
  // The backward pass runs first; the forward pass then admits only
  // vertices with v.s + v.t <= k. The pruning is exact (every vertex on a
  // shortest s->v path inherits the bound by the triangle inequality), so
  // the forward pass visits exactly X instead of the whole k-ball of s.
  {
    DistanceField::Options bwd;
    bwd.blocked = q.source;  // internal vertices avoid s
    bwd.max_depth = k;
    bwd.cancel = opts.cancel;
    bwd.deadline = opts.deadline;
    DistanceField::Options fwd;
    fwd.blocked = q.target;  // internal vertices avoid t
    fwd.max_depth = k;
    fwd.cancel = opts.cancel;
    fwd.deadline = opts.deadline;
    // The X-set admission check, inlined into the forward relaxation loop.
    const auto admit_x = [this, k](VertexId v, uint32_t dist) {
      const uint32_t dt = field_t_.Distance(v);
      return dt != kInfDistance && dist + dt <= k;
    };
    if (opts.filter == nullptr) {
      // Devirtualized hot path (the overwhelmingly common case): concrete
      // callables, zero std::function calls in either inner loop.
      field_t_.ComputeWith(g, Direction::kBackward, q.target, bwd,
                           AcceptAllEdges{}, AdmitAllVertices{});
      if (field_t_.interrupted() == DistanceField::Interrupt::kNone) {
        if (opts.prune_forward_bfs) {
          field_s_.ComputeWith(g, Direction::kForward, q.source, fwd,
                               AcceptAllEdges{}, admit_x);
        } else {
          field_s_.ComputeWith(g, Direction::kForward, q.source, fwd,
                               AcceptAllEdges{}, AdmitAllVertices{});
        }
      }
    } else {
      bwd.filter = opts.filter;
      field_t_.Compute(g, Direction::kBackward, q.target, bwd);
      if (field_t_.interrupted() == DistanceField::Interrupt::kNone) {
        const VertexAdmission admit = admit_x;
        fwd.filter = opts.filter;
        if (opts.prune_forward_bfs) fwd.admit = &admit;
        field_s_.Compute(g, Direction::kForward, q.source, fwd);
      }
    }
  }
  idx.build_stats_.bfs_ms = total_timer.ElapsedMs();
  idx.build_stats_.edges_scanned =
      field_t_.edges_scanned() + field_s_.edges_scanned();
  idx.build_stats_.batch_edges_scanned = idx.build_stats_.edges_scanned;
  idx.build_stats_.waves = field_t_.waves() + field_s_.waves();
  {
    // An interrupted pass left incomplete distances — discard them and
    // hand back the empty well-formed index.
    const DistanceField::Interrupt trip =
        field_t_.interrupted() != DistanceField::Interrupt::kNone
            ? field_t_.interrupted()
            : field_s_.interrupted();
    if (trip != DistanceField::Interrupt::kNone) {
      FinishInterrupted(idx, q, opts,
                        trip == DistanceField::Interrupt::kCancelled);
      idx.build_stats_.total_ms = total_timer.ElapsedMs();
      RecordBuildMetrics(idx.build_stats_);
      return idx;
    }
  }

  // With pruning, the forward pass reached exactly the X candidates;
  // without (ablation), scan the smaller of the two k-balls.
  const std::vector<VertexId>& cand =
      (opts.prune_forward_bfs ||
       field_s_.Reached().size() <= field_t_.Reached().size())
          ? field_s_.Reached()
          : field_t_.Reached();
  AssembleFrom(
      g, q, opts, cand,
      [this](VertexId v) { return field_s_.Distance(v); },
      [this](VertexId v) { return field_t_.Distance(v); }, idx, total_timer);
  RecordBuildMetrics(idx.build_stats_);
  return idx;
}

/// Everything below Alg. 3 line 1: partition, adjacency, level stats,
/// fuse. Shared verbatim between the solo Build and each BuildBatch
/// member — only the distance accessors differ.
template <typename GraphT, typename DistS, typename DistT>
void IndexBuilder::AssembleFrom(const GraphT& g, const Query& q,
                                const Options& opts,
                                const std::vector<VertexId>& cand,
                                const DistS& dist_s, const DistT& dist_t,
                                LightweightIndex& idx, Timer& total_timer) {
  const uint32_t k = q.hops;

  // Cooperative control poll (0 = none, 1 = cancel, 2 = deadline) for the
  // stretches between the BFS passes' own per-wave polls.
  const auto control_trip = [&opts]() -> int {
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_relaxed)) {
      return 1;
    }
    if (opts.deadline.Expired()) return 2;
    return 0;
  };

  // --- Lines 2-4: partition X by (v.s, v.t), v.s + v.t <= k. ------------
  const size_t num_cells = static_cast<size_t>(k + 1) * (k + 1);
  cell_offsets_.assign(num_cells + 1, 0);
  for (const VertexId v : cand) {
    const uint32_t ds = dist_s(v);
    const uint32_t dt = dist_t(v);
    if (ds == kInfDistance || dt == kInfDistance || ds + dt > k) continue;
    cell_offsets_[static_cast<size_t>(ds) * (k + 1) + dt + 1]++;
  }
  for (size_t c = 0; c < num_cells; ++c) {
    cell_offsets_[c + 1] += cell_offsets_[c];
  }
  const uint32_t num_x = cell_offsets_[num_cells];
  x_vertices_.resize(num_x);
  slot_ds_.resize(num_x);
  slot_dt_.resize(num_x);
  {
    cell_cursor_.assign(cell_offsets_.begin(), cell_offsets_.end() - 1);
    for (const VertexId v : cand) {
      const uint32_t ds = dist_s(v);
      const uint32_t dt = dist_t(v);
      if (ds == kInfDistance || dt == kInfDistance || ds + dt > k) continue;
      const uint32_t slot =
          cell_cursor_[static_cast<size_t>(ds) * (k + 1) + dt]++;
      x_vertices_[slot] = v;
      slot_ds_[slot] = static_cast<uint8_t>(ds);
      slot_dt_[slot] = static_cast<uint8_t>(dt);
    }
  }
  slot_lookup_.assign(g.num_vertices(), kInvalidSlot);
  for (uint32_t slot = 0; slot < num_x; ++slot) {
    slot_lookup_[x_vertices_[slot]] = slot;
  }
  const auto slot_of = [&](VertexId v) { return slot_lookup_[v]; };
  idx.source_slot_ =
      q.source < slot_lookup_.size() ? slot_lookup_[q.source] : kInvalidSlot;
  idx.target_slot_ =
      q.target < slot_lookup_.size() ? slot_lookup_[q.target] : kInvalidSlot;

  // If s (equivalently t) fell out of X there is no result within k hops;
  // leave the adjacency empty but well-formed.
  out_begin_.assign(num_x + 1, 0);
  out_ends_.assign(static_cast<size_t>(num_x) * (k + 1), 0);
  out_slots_.clear();
  out_edge_ids_.clear();
  in_slots_.clear();
  if (opts.build_in_direction) {
    in_begin_.assign(num_x + 1, 0);
    in_ends_.assign(static_cast<size_t>(num_x) * (k + 1), 0);
  }
  if (opts.collect_level_stats) {
    level_it_sum_.assign(k, 0.0);
    level_count_.assign(k, 0);
  }

  // --- Lines 5-11: out-direction adjacency H_t, sorted by v'.t. ---------
  uint32_t key_counts[kMaxHops + 2];
  for (uint32_t slot = 0; slot < num_x; ++slot) {
    if ((slot & 4095u) == 0) {
      fault::Hit(fault::Site::kIndexAdjacency);
      if (const int trip = control_trip()) {
        FinishInterrupted(idx, q, opts, trip == 1);
        idx.build_stats_.total_ms = total_timer.ElapsedMs();
        return;
      }
    }
    const VertexId v = x_vertices_[slot];
    const uint32_t ds = slot_ds_[slot];
    scratch_.clear();
    if (slot == idx.target_slot_) {
      // The (t,t) padding self-entry: H[t] = {t} with distance key 0.
      scratch_.push_back({0, slot, kInvalidEdge});
    } else {
      const auto nbrs = g.OutNeighbors(v);
      for (size_t j = 0; j < nbrs.size(); ++j) {
        const VertexId w = nbrs[j];
        if (w == q.source) continue;  // s is never a tuple destination
        const uint32_t dt_w = dist_t(w);
        if (dt_w == kInfDistance || ds + dt_w + 1 > k) continue;
        // Edge ids feed only the constraint extensions, which require a
        // plain Graph (overlay views have no stable ids and constrained
        // runs are gated on overlay-free snapshots) — skip the per-edge id
        // lookup for view builds and for edge-id-free builds (unless the
        // push-down filter needs the id to evaluate).
        EdgeId e = kInvalidEdge;
        if constexpr (std::is_same_v<GraphT, Graph>) {
          if (opts.build_edge_ids || opts.filter != nullptr) {
            e = g.OutEdgeId(v, j);
          }
        }
        if (opts.filter != nullptr && !(*opts.filter)(v, w, e)) continue;
        // Reachability arithmetic guarantees w is in X (see DESIGN.md).
        scratch_.push_back({dt_w, slot_of(w), e});
      }
    }
    // Counting sort by distance key (stable: preserves adjacency order).
    std::fill(key_counts, key_counts + k + 2, 0u);
    for (const ScratchEntry& e : scratch_) key_counts[e.key + 1]++;
    for (uint32_t b = 0; b <= k; ++b) key_counts[b + 1] += key_counts[b];
    const uint64_t begin = out_slots_.size();
    out_slots_.resize(begin + scratch_.size());
    if (opts.build_edge_ids) out_edge_ids_.resize(begin + scratch_.size());
    {
      uint32_t place[kMaxHops + 2];
      std::copy(key_counts, key_counts + k + 2, place);
      for (const ScratchEntry& e : scratch_) {
        const uint32_t pos = place[e.key]++;
        out_slots_[begin + pos] = e.slot;
        if (opts.build_edge_ids) out_edge_ids_[begin + pos] = e.edge;
      }
    }
    out_begin_[slot + 1] = out_slots_.size();
    // ends[b] = #neighbors with key <= b = key_counts[b + 1].
    uint32_t* ends = &out_ends_[static_cast<size_t>(slot) * (k + 1)];
    for (uint32_t b = 0; b <= k; ++b) ends[b] = key_counts[b + 1];
    if (slot != idx.target_slot_) {
      idx.num_out_edges_ += scratch_.size();
    }
  }

  // --- Symmetric in-direction adjacency H_s, sorted by v'.s. ------------
  if (opts.build_in_direction) {
    for (uint32_t slot = 0; slot < num_x; ++slot) {
      if ((slot & 4095u) == 0) {
        if (const int trip = control_trip()) {
          FinishInterrupted(idx, q, opts, trip == 1);
          idx.build_stats_.total_ms = total_timer.ElapsedMs();
          return;
        }
      }
      const VertexId v = x_vertices_[slot];
      const uint32_t dt = slot_dt_[slot];
      scratch_.clear();
      if (slot != idx.source_slot_) {  // H_s[s] is empty
        const auto nbrs = g.InNeighbors(v);
        for (size_t j = 0; j < nbrs.size(); ++j) {
          const VertexId w = nbrs[j];
          if (w == q.target) continue;  // t is never a tuple source...
          const uint32_t ds_w = dist_s(w);
          if (ds_w == kInfDistance || ds_w + dt + 1 > k) continue;
          if (opts.filter != nullptr) {
            const EdgeId e = g.FindEdge(w, v);
            if (!(*opts.filter)(w, v, e)) continue;
          }
          scratch_.push_back({ds_w, slot_of(w), kInvalidEdge});
        }
        if (slot == idx.target_slot_) {
          // ... except the (t,t) padding self-entry, keyed by t.s.
          scratch_.push_back({slot_ds_[slot], slot, kInvalidEdge});
        }
      }
      std::fill(key_counts, key_counts + k + 2, 0u);
      for (const ScratchEntry& e : scratch_) key_counts[e.key + 1]++;
      for (uint32_t b = 0; b <= k; ++b) key_counts[b + 1] += key_counts[b];
      const uint64_t begin = in_slots_.size();
      in_slots_.resize(begin + scratch_.size());
      {
        uint32_t place[kMaxHops + 2];
        std::copy(key_counts, key_counts + k + 2, place);
        for (const ScratchEntry& e : scratch_) {
          in_slots_[begin + place[e.key]++] = e.slot;
        }
      }
      in_begin_[slot + 1] = in_slots_.size();
      uint32_t* ends = &in_ends_[static_cast<size_t>(slot) * (k + 1)];
      for (uint32_t b = 0; b <= k; ++b) ends[b] = key_counts[b + 1];
    }
  }

  // --- Preliminary-estimator statistics (paper §6.2). -------------------
  if (opts.collect_level_stats) {
    for (uint32_t slot = 0; slot < num_x; ++slot) {
      const uint32_t ds = slot_ds_[slot];
      const uint32_t dt = slot_dt_[slot];
      const uint32_t j_hi = std::min(k - 1, k - dt);
      const uint32_t* ends = &out_ends_[static_cast<size_t>(slot) * (k + 1)];
      for (uint32_t j = ds; j <= j_hi; ++j) {
        level_count_[j]++;
        level_it_sum_[j] += ends[k - j - 1];
      }
    }
  }

  // --- Fuse the staged parts into the one-allocation slab (§9). ---------
  Fuse(idx, opts.build_edge_ids, opts.build_in_direction,
       opts.collect_level_stats);

  idx.build_stats_.total_ms = total_timer.ElapsedMs();
}

template <typename GraphT>
std::vector<LightweightIndex> IndexBuilder::BuildBatch(
    const GraphT& g, const std::vector<BatchBuildRequest>& reqs,
    const Options& opts) {
  const size_t n = reqs.size();
  PATHENUM_CHECK(n >= 1 && n <= BatchedDistanceField::kMaxBatch);
  // Batched builds only serve cacheable queries, and predicate builds are
  // never cacheable (IndexOptionsFingerprint enforces the same upstream).
  PATHENUM_CHECK_MSG(opts.filter == nullptr,
                     "BuildBatch does not support edge filters");
  for (const BatchBuildRequest& r : reqs) ValidateQuery(g, r.query);

  Timer total_timer;

  // Per-member effective controls: the member's own cancel (falling back
  // to the shared one) and the earlier of the two deadlines.
  const auto member_cancel = [&](size_t m) {
    return reqs[m].cancel != nullptr ? reqs[m].cancel : opts.cancel;
  };
  const auto member_deadline = [&](size_t m) {
    return reqs[m].deadline.ExpiresBefore(opts.deadline) ? reqs[m].deadline
                                                         : opts.deadline;
  };

  // --- Backward fused sweep: sources are the targets, s blocked. --------
  batch_members_.clear();
  for (size_t m = 0; m < n; ++m) {
    BatchedDistanceField::Member mem;
    mem.source = reqs[m].query.target;
    mem.blocked = reqs[m].query.source;
    mem.max_depth = std::min(reqs[m].query.hops, reqs[m].hop_cap);
    mem.cancel = member_cancel(m);
    mem.deadline = member_deadline(m);
    batch_members_.push_back(mem);
  }
  batch_t_.Compute(g, Direction::kBackward, batch_members_);

  // --- Forward fused sweep: sources are the sources, t blocked, each
  // member admitted against its own backward field (v.s + v.t <= k). A
  // member already interrupted backward gets max_depth 0: its source is
  // seeded but nothing is expanded for it.
  batch_members_.clear();
  for (size_t m = 0; m < n; ++m) {
    BatchedDistanceField::Member mem;
    mem.source = reqs[m].query.source;
    mem.blocked = reqs[m].query.target;
    mem.max_depth =
        batch_t_.interrupted(static_cast<uint32_t>(m)) !=
                BatchedDistanceField::Interrupt::kNone
            ? 0
            : std::min(reqs[m].query.hops, reqs[m].hop_cap);
    mem.cancel = member_cancel(m);
    mem.deadline = member_deadline(m);
    batch_members_.push_back(mem);
  }
  if (opts.prune_forward_bfs) {
    const auto admit_x = [this, &reqs](uint32_t m, VertexId v,
                                       uint32_t dist) {
      const uint32_t dt = batch_t_.Distance(m, v);
      return dt != kInfDistance && dist + dt <= reqs[m].query.hops;
    };
    batch_s_.ComputeWith(g, Direction::kForward, batch_members_, admit_x);
  } else {
    batch_s_.Compute(g, Direction::kForward, batch_members_);
  }
  const double bfs_ms = total_timer.ElapsedMs();
  const uint64_t shared_edges =
      batch_t_.edges_scanned() + batch_s_.edges_scanned();
  const uint32_t shared_waves = batch_t_.waves() + batch_s_.waves();

  // --- Per-member assembly: identical to the solo path, reading the
  // member's rows of the fused fields. ----------------------------------
  std::vector<LightweightIndex> out(n);
  for (size_t m = 0; m < n; ++m) {
    const uint32_t mi = static_cast<uint32_t>(m);
    const Query& q = reqs[m].query;
    LightweightIndex& idx = out[m];
    idx.query_ = q;
    // The shared sweep time is attributed to every member (it is the wall
    // time any one of them waited for); the fusion win is measured by the
    // edge counters, not by dividing wall time.
    idx.build_stats_.bfs_ms = bfs_ms;
    idx.build_stats_.edges_scanned =
        batch_t_.covered_edges(mi) + batch_s_.covered_edges(mi);
    idx.build_stats_.batch_edges_scanned = shared_edges;
    idx.build_stats_.waves = shared_waves;
    idx.build_stats_.batched = true;

    Options mopts = opts;
    mopts.cancel = member_cancel(m);
    mopts.deadline = member_deadline(m);

    const auto trip = batch_t_.interrupted(mi) !=
                              BatchedDistanceField::Interrupt::kNone
                          ? batch_t_.interrupted(mi)
                          : batch_s_.interrupted(mi);
    if (trip != BatchedDistanceField::Interrupt::kNone) {
      FinishInterrupted(idx, q, mopts,
                        trip == BatchedDistanceField::Interrupt::kCancelled);
      idx.build_stats_.total_ms = total_timer.ElapsedMs();
      RecordBuildMetrics(idx.build_stats_);
      continue;
    }

    // Export the member's distances into dense L1-resident arrays
    // (sequential pass over the wave-ordered reached lists — no strided
    // K-wide matrix reads), so the assembly's many per-candidate-edge
    // lookups are a single unconditional load each, with 0xFFFF as the
    // unreached sentinel instead of the solo field's stamp check.
    constexpr uint16_t kUnreached16 = 0xFFFFu;
    const size_t nv = g.num_vertices();
    batch_dist_s_.assign(nv, kUnreached16);
    batch_dist_t_.assign(nv, kUnreached16);
    batch_s_.ExportDistances(mi, batch_dist_s_.data());
    batch_t_.ExportDistances(mi, batch_dist_t_.data());
    const uint16_t* const ds_arr = batch_dist_s_.data();
    const uint16_t* const dt_arr = batch_dist_t_.data();
    const std::vector<VertexId>& cand =
        (opts.prune_forward_bfs ||
         batch_s_.Reached(mi).size() <= batch_t_.Reached(mi).size())
            ? batch_s_.Reached(mi)
            : batch_t_.Reached(mi);
    AssembleFrom(
        g, q, mopts, cand,
        [ds_arr](VertexId v) {
          const uint16_t d = ds_arr[v];
          return d == kUnreached16 ? kInfDistance : uint32_t{d};
        },
        [dt_arr](VertexId v) {
          const uint16_t d = dt_arr[v];
          return d == kUnreached16 ? kInfDistance : uint32_t{d};
        },
        idx, total_timer);
    RecordBuildMetrics(idx.build_stats_);
  }
  return out;
}

// The two graph types an index is ever built over: the immutable CSR Graph
// and the live subsystem's versioned overlay snapshot. Each instantiation
// inlines its own adjacency access into the BFS and adjacency-scan loops.
template LightweightIndex IndexBuilder::Build<Graph>(const Graph&,
                                                     const Query&,
                                                     const Options&);
template LightweightIndex IndexBuilder::Build<GraphView>(const GraphView&,
                                                         const Query&,
                                                         const Options&);
template std::vector<LightweightIndex> IndexBuilder::BuildBatch<Graph>(
    const Graph&, const std::vector<BatchBuildRequest>&, const Options&);
template std::vector<LightweightIndex> IndexBuilder::BuildBatch<GraphView>(
    const GraphView&, const std::vector<BatchBuildRequest>&, const Options&);

}  // namespace pathenum
