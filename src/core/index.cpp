#include "core/index.h"

#include <algorithm>
#include <type_traits>

#include "graph/view.h"
#include "util/memory.h"
#include "util/timer.h"

namespace pathenum {

std::vector<VertexId> LightweightIndex::OutVerticesWithin(VertexId v,
                                                          uint32_t b) const {
  std::vector<VertexId> out;
  const uint32_t slot = SlotOf(v);
  if (slot == kInvalidSlot) return out;
  for (uint32_t s : OutSlotsWithin(slot, b)) out.push_back(VertexAt(s));
  return out;
}

std::vector<VertexId> LightweightIndex::InVerticesWithin(VertexId v,
                                                         uint32_t b) const {
  std::vector<VertexId> out;
  const uint32_t slot = SlotOf(v);
  if (slot == kInvalidSlot) return out;
  for (uint32_t s : InSlotsWithin(slot, b)) out.push_back(VertexAt(s));
  return out;
}

uint64_t LightweightIndex::LevelSize(uint32_t i) const {
  const uint32_t k = query_.hops;
  uint64_t total = 0;
  for (uint32_t a = 0; a <= std::min(i, k); ++a) {
    for (uint32_t b = 0; b + i <= k; ++b) {
      const auto [first, last] = CellSlots(a, b);
      total += last - first;
    }
  }
  return total;
}

size_t LightweightIndex::MemoryBytes() const {
  return VectorBytes(x_vertices_) + VectorBytes(cell_offsets_) +
         VectorBytes(slot_ds_) + VectorBytes(slot_dt_) +
         VectorBytes(out_begin_) + VectorBytes(out_slots_) +
         VectorBytes(out_edge_ids_) + VectorBytes(out_ends_) +
         VectorBytes(in_begin_) + VectorBytes(in_slots_) +
         VectorBytes(in_ends_) + VectorBytes(level_it_sum_) +
         VectorBytes(level_count_) + VectorBytes(slot_lookup_);
}

template <typename GraphT>
LightweightIndex IndexBuilder::Build(const GraphT& g, const Query& q,
                                     const Options& opts) {
  ValidateQuery(g, q);
  LightweightIndex idx;
  idx.query_ = q;
  const uint32_t k = q.hops;
  Timer total_timer;

  // --- Line 1 of Alg. 3: the two bounded BFS. ---------------------------
  // The backward pass runs first; the forward pass then admits only
  // vertices with v.s + v.t <= k. The pruning is exact (every vertex on a
  // shortest s->v path inherits the bound by the triangle inequality), so
  // the forward pass visits exactly X instead of the whole k-ball of s.
  {
    DistanceField::Options bwd;
    bwd.blocked = q.source;  // internal vertices avoid s
    bwd.max_depth = k;
    DistanceField::Options fwd;
    fwd.blocked = q.target;  // internal vertices avoid t
    fwd.max_depth = k;
    // The X-set admission check, inlined into the forward relaxation loop.
    const auto admit_x = [this, k](VertexId v, uint32_t dist) {
      const uint32_t dt = field_t_.Distance(v);
      return dt != kInfDistance && dist + dt <= k;
    };
    if (opts.filter == nullptr) {
      // Devirtualized hot path (the overwhelmingly common case): concrete
      // callables, zero std::function calls in either inner loop.
      field_t_.ComputeWith(g, Direction::kBackward, q.target, bwd,
                           AcceptAllEdges{}, AdmitAllVertices{});
      if (opts.prune_forward_bfs) {
        field_s_.ComputeWith(g, Direction::kForward, q.source, fwd,
                             AcceptAllEdges{}, admit_x);
      } else {
        field_s_.ComputeWith(g, Direction::kForward, q.source, fwd,
                             AcceptAllEdges{}, AdmitAllVertices{});
      }
    } else {
      bwd.filter = opts.filter;
      field_t_.Compute(g, Direction::kBackward, q.target, bwd);
      const VertexAdmission admit = admit_x;
      fwd.filter = opts.filter;
      if (opts.prune_forward_bfs) fwd.admit = &admit;
      field_s_.Compute(g, Direction::kForward, q.source, fwd);
    }
  }
  idx.build_stats_.bfs_ms = total_timer.ElapsedMs();

  // --- Lines 2-4: partition X by (v.s, v.t), v.s + v.t <= k. ------------
  // With pruning, the forward pass reached exactly the X candidates;
  // without (ablation), scan the smaller of the two k-balls.
  const std::vector<VertexId>& cand =
      (opts.prune_forward_bfs ||
       field_s_.Reached().size() <= field_t_.Reached().size())
          ? field_s_.Reached()
          : field_t_.Reached();

  const size_t num_cells = static_cast<size_t>(k + 1) * (k + 1);
  idx.cell_offsets_.assign(num_cells + 1, 0);
  for (const VertexId v : cand) {
    const uint32_t ds = field_s_.Distance(v);
    const uint32_t dt = field_t_.Distance(v);
    if (ds == kInfDistance || dt == kInfDistance || ds + dt > k) continue;
    idx.cell_offsets_[static_cast<size_t>(ds) * (k + 1) + dt + 1]++;
  }
  for (size_t c = 0; c < num_cells; ++c) {
    idx.cell_offsets_[c + 1] += idx.cell_offsets_[c];
  }
  const uint32_t num_x = idx.cell_offsets_[num_cells];
  idx.x_vertices_.resize(num_x);
  idx.slot_ds_.resize(num_x);
  idx.slot_dt_.resize(num_x);
  {
    std::vector<uint32_t> cursor(idx.cell_offsets_.begin(),
                                 idx.cell_offsets_.end() - 1);
    for (const VertexId v : cand) {
      const uint32_t ds = field_s_.Distance(v);
      const uint32_t dt = field_t_.Distance(v);
      if (ds == kInfDistance || dt == kInfDistance || ds + dt > k) continue;
      const uint32_t slot =
          cursor[static_cast<size_t>(ds) * (k + 1) + dt]++;
      idx.x_vertices_[slot] = v;
      idx.slot_ds_[slot] = static_cast<uint8_t>(ds);
      idx.slot_dt_[slot] = static_cast<uint8_t>(dt);
    }
  }
  idx.slot_lookup_.assign(g.num_vertices(), kInvalidSlot);
  for (uint32_t slot = 0; slot < num_x; ++slot) {
    idx.slot_lookup_[idx.x_vertices_[slot]] = slot;
  }
  idx.source_slot_ = idx.SlotOf(q.source);
  idx.target_slot_ = idx.SlotOf(q.target);

  // If s (equivalently t) fell out of X there is no result within k hops;
  // leave the adjacency empty but well-formed.
  idx.out_begin_.assign(num_x + 1, 0);
  idx.out_ends_.assign(static_cast<size_t>(num_x) * (k + 1), 0);
  if (opts.build_in_direction) {
    idx.in_begin_.assign(num_x + 1, 0);
    idx.in_ends_.assign(static_cast<size_t>(num_x) * (k + 1), 0);
  }
  if (opts.collect_level_stats) {
    idx.level_it_sum_.assign(k, 0.0);
    idx.level_count_.assign(k, 0);
  }

  // --- Lines 5-11: out-direction adjacency H_t, sorted by v'.t. ---------
  uint32_t key_counts[kMaxHops + 2];
  for (uint32_t slot = 0; slot < num_x; ++slot) {
    const VertexId v = idx.x_vertices_[slot];
    const uint32_t ds = idx.slot_ds_[slot];
    scratch_.clear();
    if (slot == idx.target_slot_) {
      // The (t,t) padding self-entry: H[t] = {t} with distance key 0.
      scratch_.push_back({0, slot, kInvalidEdge});
    } else {
      const auto nbrs = g.OutNeighbors(v);
      for (size_t j = 0; j < nbrs.size(); ++j) {
        const VertexId w = nbrs[j];
        if (w == q.source) continue;  // s is never a tuple destination
        const uint32_t dt_w = field_t_.Distance(w);
        if (dt_w == kInfDistance || ds + dt_w + 1 > k) continue;
        // Edge ids feed only the constraint extensions, which require a
        // plain Graph (overlay views have no stable ids and constrained
        // runs are gated on overlay-free snapshots) — skip the per-edge id
        // lookup for view builds.
        EdgeId e = kInvalidEdge;
        if constexpr (std::is_same_v<GraphT, Graph>) {
          e = g.OutEdgeId(v, j);
        }
        if (opts.filter != nullptr && !(*opts.filter)(v, w, e)) continue;
        const uint32_t w_slot = idx.SlotOf(w);
        // Reachability arithmetic guarantees w is in X (see DESIGN.md).
        scratch_.push_back({dt_w, w_slot, e});
      }
    }
    // Counting sort by distance key (stable: preserves adjacency order).
    std::fill(key_counts, key_counts + k + 2, 0u);
    for (const ScratchEntry& e : scratch_) key_counts[e.key + 1]++;
    for (uint32_t b = 0; b <= k; ++b) key_counts[b + 1] += key_counts[b];
    const uint64_t begin = idx.out_slots_.size();
    idx.out_slots_.resize(begin + scratch_.size());
    idx.out_edge_ids_.resize(begin + scratch_.size());
    {
      uint32_t place[kMaxHops + 2];
      std::copy(key_counts, key_counts + k + 2, place);
      for (const ScratchEntry& e : scratch_) {
        const uint32_t pos = place[e.key]++;
        idx.out_slots_[begin + pos] = e.slot;
        idx.out_edge_ids_[begin + pos] = e.edge;
      }
    }
    idx.out_begin_[slot + 1] = idx.out_slots_.size();
    // ends[b] = #neighbors with key <= b = key_counts[b + 1].
    uint32_t* ends = &idx.out_ends_[static_cast<size_t>(slot) * (k + 1)];
    for (uint32_t b = 0; b <= k; ++b) ends[b] = key_counts[b + 1];
    if (slot != idx.target_slot_) {
      idx.num_out_edges_ += scratch_.size();
    }
  }

  // --- Symmetric in-direction adjacency H_s, sorted by v'.s. ------------
  if (opts.build_in_direction) {
    for (uint32_t slot = 0; slot < num_x; ++slot) {
      const VertexId v = idx.x_vertices_[slot];
      const uint32_t dt = idx.slot_dt_[slot];
      scratch_.clear();
      if (slot != idx.source_slot_) {  // H_s[s] is empty
        const auto nbrs = g.InNeighbors(v);
        for (size_t j = 0; j < nbrs.size(); ++j) {
          const VertexId w = nbrs[j];
          if (w == q.target) continue;  // t is never a tuple source...
          const uint32_t ds_w = field_s_.Distance(w);
          if (ds_w == kInfDistance || ds_w + dt + 1 > k) continue;
          if (opts.filter != nullptr) {
            const EdgeId e = g.FindEdge(w, v);
            if (!(*opts.filter)(w, v, e)) continue;
          }
          scratch_.push_back({ds_w, idx.SlotOf(w), kInvalidEdge});
        }
        if (slot == idx.target_slot_) {
          // ... except the (t,t) padding self-entry, keyed by t.s.
          scratch_.push_back(
              {idx.slot_ds_[slot], slot, kInvalidEdge});
        }
      }
      std::fill(key_counts, key_counts + k + 2, 0u);
      for (const ScratchEntry& e : scratch_) key_counts[e.key + 1]++;
      for (uint32_t b = 0; b <= k; ++b) key_counts[b + 1] += key_counts[b];
      const uint64_t begin = idx.in_slots_.size();
      idx.in_slots_.resize(begin + scratch_.size());
      {
        uint32_t place[kMaxHops + 2];
        std::copy(key_counts, key_counts + k + 2, place);
        for (const ScratchEntry& e : scratch_) {
          idx.in_slots_[begin + place[e.key]++] = e.slot;
        }
      }
      idx.in_begin_[slot + 1] = idx.in_slots_.size();
      uint32_t* ends = &idx.in_ends_[static_cast<size_t>(slot) * (k + 1)];
      for (uint32_t b = 0; b <= k; ++b) ends[b] = key_counts[b + 1];
    }
  }

  // --- Preliminary-estimator statistics (paper §6.2). -------------------
  if (opts.collect_level_stats) {
    for (uint32_t slot = 0; slot < num_x; ++slot) {
      const uint32_t ds = idx.slot_ds_[slot];
      const uint32_t dt = idx.slot_dt_[slot];
      const uint32_t j_hi = std::min(k - 1, k - dt);
      const uint32_t* ends =
          &idx.out_ends_[static_cast<size_t>(slot) * (k + 1)];
      for (uint32_t j = ds; j <= j_hi; ++j) {
        idx.level_count_[j]++;
        idx.level_it_sum_[j] += ends[k - j - 1];
      }
    }
  }

  idx.build_stats_.total_ms = total_timer.ElapsedMs();
  return idx;
}

// The two graph types an index is ever built over: the immutable CSR Graph
// and the live subsystem's versioned overlay snapshot. Each instantiation
// inlines its own adjacency access into the BFS and adjacency-scan loops.
template LightweightIndex IndexBuilder::Build<Graph>(const Graph&,
                                                     const Query&,
                                                     const Options&);
template LightweightIndex IndexBuilder::Build<GraphView>(const GraphView&,
                                                         const Query&,
                                                         const Options&);

}  // namespace pathenum
