// Hop-constrained cycle enumeration triggered by an edge — the paper's
// e-commerce fraud reduction (§1, after Qiu et al.): the cycles of length
// at most k through a new edge e(u, v) are exactly the paths v -> u with
// at most k-1 hops, each closed by e.
#ifndef PATHENUM_CORE_CYCLES_H_
#define PATHENUM_CORE_CYCLES_H_

#include "core/options.h"
#include "core/path_enum.h"
#include "core/sink.h"

namespace pathenum {

/// Enumerates every simple cycle with at most `max_hops` edges that the
/// edge (u, v) participates in (the edge itself need not be present in the
/// enumerator's graph — the fraud use case queries *before* applying the
/// update). Each cycle is emitted as the vertex sequence
/// (u, v, ..., u) — first and last vertex repeated, every other distinct.
/// Returns the underlying query's stats. `u == v` yields nothing.
QueryStats EnumerateTriggeredCycles(PathEnumerator& enumerator, VertexId u,
                                    VertexId v, uint32_t max_hops,
                                    PathSink& sink,
                                    const EnumOptions& opts = {});

}  // namespace pathenum

#endif  // PATHENUM_CORE_CYCLES_H_
