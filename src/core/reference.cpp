#include "core/reference.h"

#include <algorithm>

namespace pathenum {

namespace {

/// Shared backtracking skeleton; `require_simple` distinguishes paths from
/// Definition-2.1 walks.
void Enumerate(const Graph& g, const Query& q, bool require_simple,
               uint64_t limit, std::vector<std::vector<VertexId>>& out) {
  std::vector<VertexId> walk{q.source};
  auto step = [&](auto&& self, VertexId v) -> bool {
    if (v == q.target) {
      out.push_back(walk);
      return out.size() < limit;
    }
    if (walk.size() > q.hops) return true;  // no room for another edge
    for (const VertexId w : g.OutNeighbors(v)) {
      if (w == q.source) continue;  // internal vertices avoid s
      if (require_simple &&
          std::find(walk.begin(), walk.end(), w) != walk.end()) {
        continue;
      }
      walk.push_back(w);
      const bool keep_going = self(self, w);
      walk.pop_back();
      if (!keep_going) return false;
    }
    return true;
  };
  step(step, q.source);
}

}  // namespace

std::vector<std::vector<VertexId>> BruteForcePaths(const Graph& g,
                                                   const Query& q,
                                                   uint64_t limit) {
  ValidateQuery(g, q);
  std::vector<std::vector<VertexId>> out;
  Enumerate(g, q, /*require_simple=*/true, limit, out);
  return out;
}

uint64_t CountPathsBruteForce(const Graph& g, const Query& q) {
  return BruteForcePaths(g, q).size();
}

std::vector<std::vector<VertexId>> BruteForceWalks(const Graph& g,
                                                   const Query& q,
                                                   uint64_t limit) {
  ValidateQuery(g, q);
  std::vector<std::vector<VertexId>> out;
  Enumerate(g, q, /*require_simple=*/false, limit, out);
  return out;
}

double CountWalksDp(const Graph& g, const Query& q) {
  ValidateQuery(g, q);
  const VertexId n = g.num_vertices();
  // walks[v] = number of walks s -> v of length exactly d with internal
  // vertices avoiding {s, t}.
  std::vector<double> cur(n, 0.0), nxt(n, 0.0);
  cur[q.source] = 1.0;
  double total = 0.0;
  for (uint32_t d = 1; d <= q.hops; ++d) {
    std::fill(nxt.begin(), nxt.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      if (cur[u] == 0.0) continue;
      if (u == q.target) continue;  // walks end at t
      for (const VertexId v : g.OutNeighbors(u)) {
        if (v == q.source) continue;  // walks never re-enter s
        nxt[v] += cur[u];
      }
    }
    total += nxt[q.target];
    std::swap(cur, nxt);
  }
  return total;
}

}  // namespace pathenum
