// Cardinality estimation and join-order optimization (paper §6).
//
// * `EstimateSearchSpace` is the preliminary estimator of Eq. 5: a product
//   of per-level average fan-outs collected during index construction, O(k^2).
// * `OptimizeJoinOrder` is Alg. 5: an exact dynamic program over the index
//   that computes |Q[0:i]| (walks-with-padding from s, forward via I_s) and
//   |Q[i:k]| (suffixes to t, backward via I_t), picks the cut position i*
//   minimizing |Q[0:i]| + |Q[i:k]|, and prices the left-deep plan (T_DFS)
//   against the bushy plan (T_JOIN) with the Eq. 1 cost model.
//
// Counts are kept as doubles: delta_W can exceed 2^64 on dense graphs, and
// the optimizer only needs relative magnitudes. Two paper typos are fixed
// here (see DESIGN.md): the forward DP uses I_s(v, i-1), and T_JOIN's third
// term sums the suffix sizes |Q[i:k]| for i in [i*, k].
#ifndef PATHENUM_CORE_ESTIMATOR_H_
#define PATHENUM_CORE_ESTIMATOR_H_

#include <vector>

#include "core/index.h"

namespace pathenum {

/// Preliminary estimate T̂ of the search-space size (Eq. 5). O(k) given the
/// statistics the index collected at build time.
double EstimateSearchSpace(const LightweightIndex& idx);

/// Result of the full-fledged optimizer (Alg. 5).
struct JoinPlan {
  /// Cut position i* in [1, k-1]; 0 when the query is degenerate (k < 2 or
  /// the index is empty).
  uint32_t cut = 0;
  /// Cost-model price of the left-deep (IDX-DFS) plan: sum_i |Q[0:i]|.
  double t_dfs = 0.0;
  /// Cost-model price of the bushy plan:
  /// |Q| + sum_{i<=i*} |Q[0:i]| + sum_{i>=i*} |Q[i:k]|.
  double t_join = 0.0;
  /// |Q[0:i]| for i = 0..k (forward DP; index i).
  std::vector<double> forward_sizes;
  /// |Q[i:k]| for i = 0..k (backward DP; index i).
  std::vector<double> backward_sizes;

  /// |Q| — the exact number of hop-constrained s-t *walks* (delta_W), since
  /// padded tuples of Q biject with walks (paper Lemmas A.1/A.2).
  double TotalWalks() const {
    return backward_sizes.empty() ? 0.0 : backward_sizes.front();
  }

  bool PreferJoin() const { return cut != 0 && t_join < t_dfs; }
};

/// Runs the Alg. 5 dynamic program. Requires an index built with the
/// in-direction enabled.
JoinPlan OptimizeJoinOrder(const LightweightIndex& idx);

}  // namespace pathenum

#endif  // PATHENUM_CORE_ESTIMATOR_H_
