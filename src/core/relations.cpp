#include "core/relations.h"

#include <algorithm>
#include <unordered_set>

namespace pathenum {

uint64_t RelationSet::TotalTuples() const {
  uint64_t total = 0;
  for (const Relation& r : relations) total += r.size();
  return total;
}

RelationSet BuildRelations(const Graph& g, const Query& q) {
  ValidateQuery(g, q);
  RelationSet rs;
  rs.query = q;
  const uint32_t k = q.hops;
  rs.relations.resize(k);

  // R_1: out-edges of s (including (s,t) — length-1 paths enter here).
  for (const VertexId v : g.OutNeighbors(q.source)) {
    rs.relations[0].push_back({q.source, v});
  }

  // Middle relations: edges of G - {s} with source != t, plus (t,t).
  if (k >= 3) {
    Relation middle;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (u == q.source || u == q.target) continue;
      for (const VertexId v : g.OutNeighbors(u)) {
        if (v == q.source) continue;  // edges into s are also outside G-{s}
        middle.push_back({u, v});
      }
    }
    middle.push_back({q.target, q.target});
    for (uint32_t i = 1; i + 1 < k; ++i) rs.relations[i] = middle;
  }

  // R_k: in-edges of t with source != s, plus (t,t). (For k == 1 the whole
  // query is R_1 and no padding relation exists.)
  if (k >= 2) {
    Relation& last = rs.relations[k - 1];
    for (const VertexId u : g.InNeighbors(q.target)) {
      if (u == q.source) continue;
      last.push_back({u, q.target});
    }
    last.push_back({q.target, q.target});
  }
  return rs;
}

void FullReduce(RelationSet& rs) {
  const size_t k = rs.relations.size();
  if (k <= 1) return;
  std::unordered_set<VertexId> keep;

  // Forward sweep (lines 5-8): R_{i+1} keeps tuples whose source appears as
  // a destination of R_i.
  for (size_t i = 0; i + 1 < k; ++i) {
    keep.clear();
    for (const auto& [u, v] : rs.relations[i]) keep.insert(v);
    Relation& next = rs.relations[i + 1];
    std::erase_if(next, [&](const auto& t) { return !keep.count(t.first); });
  }

  // Backward sweep (lines 9-12): R_i keeps tuples whose destination appears
  // as a source of R_{i+1}.
  for (size_t i = k - 1; i-- > 0;) {
    keep.clear();
    for (const auto& [u, v] : rs.relations[i + 1]) keep.insert(u);
    Relation& prev = rs.relations[i];
    std::erase_if(prev, [&](const auto& t) { return !keep.count(t.second); });
  }
}

RelationSet BuildReducedRelations(const Graph& g, const Query& q) {
  RelationSet rs = BuildRelations(g, q);
  FullReduce(rs);
  return rs;
}

}  // namespace pathenum
