#include "core/relations.h"

#include <algorithm>

namespace pathenum {

namespace {

/// Starts a new semijoin key set: grows the stamp array to cover `bound`
/// vertex ids and bumps the epoch (wipes on epoch wrap).
uint32_t NextEpoch(SemijoinScratch& scratch, VertexId bound) {
  if (scratch.stamp.size() < bound) scratch.stamp.resize(bound, 0);
  if (++scratch.epoch == 0) {
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0);
    scratch.epoch = 1;
  }
  return scratch.epoch;
}

/// Largest vertex id + 1 across all tuples (fallback when the set's
/// num_vertices bound was not recorded).
VertexId TupleBound(const RelationSet& rs) {
  VertexId bound = 0;
  for (const Relation& r : rs.relations) {
    for (const auto& [u, v] : r) bound = std::max({bound, u + 1, v + 1});
  }
  return bound;
}

}  // namespace

uint64_t RelationSet::TotalTuples() const {
  uint64_t total = 0;
  for (const Relation& r : relations) total += r.size();
  return total;
}

RelationSet BuildRelations(const Graph& g, const Query& q) {
  ValidateQuery(g, q);
  RelationSet rs;
  rs.query = q;
  rs.num_vertices = g.num_vertices();
  const uint32_t k = q.hops;
  rs.relations.resize(k);

  // R_1: out-edges of s (including (s,t) — length-1 paths enter here).
  rs.relations[0].reserve(g.OutDegree(q.source));
  for (const VertexId v : g.OutNeighbors(q.source)) {
    rs.relations[0].push_back({q.source, v});
  }

  // Middle relations: edges of G - {s} with source != t, plus (t,t).
  if (k >= 3) {
    Relation middle;
    // Upper bound: every graph edge plus the padding tuple; at most
    // OutDegree(s) + OutDegree(t) + InDegree(s) of the reservation go
    // unused.
    middle.reserve(g.num_edges() + 1);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (u == q.source || u == q.target) continue;
      for (const VertexId v : g.OutNeighbors(u)) {
        if (v == q.source) continue;  // edges into s are also outside G-{s}
        middle.push_back({u, v});
      }
    }
    middle.push_back({q.target, q.target});
    for (uint32_t i = 1; i + 1 < k; ++i) rs.relations[i] = middle;
  }

  // R_k: in-edges of t with source != s, plus (t,t). (For k == 1 the whole
  // query is R_1 and no padding relation exists.)
  if (k >= 2) {
    Relation& last = rs.relations[k - 1];
    last.reserve(last.size() + g.InDegree(q.target) + 1);
    for (const VertexId u : g.InNeighbors(q.target)) {
      if (u == q.source) continue;
      last.push_back({u, q.target});
    }
    last.push_back({q.target, q.target});
  }
  return rs;
}

void FullReduce(RelationSet& rs, SemijoinScratch* scratch) {
  const size_t k = rs.relations.size();
  if (k <= 1) return;
  SemijoinScratch local;
  SemijoinScratch& sj = scratch != nullptr ? *scratch : local;
  const VertexId bound =
      rs.num_vertices != 0 ? rs.num_vertices : TupleBound(rs);

  // Forward sweep (lines 5-8): R_{i+1} keeps tuples whose source appears as
  // a destination of R_i.
  for (size_t i = 0; i + 1 < k; ++i) {
    const uint32_t epoch = NextEpoch(sj, bound);
    for (const auto& [u, v] : rs.relations[i]) sj.stamp[v] = epoch;
    Relation& next = rs.relations[i + 1];
    std::erase_if(next,
                  [&](const auto& t) { return sj.stamp[t.first] != epoch; });
  }

  // Backward sweep (lines 9-12): R_i keeps tuples whose destination appears
  // as a source of R_{i+1}.
  for (size_t i = k - 1; i-- > 0;) {
    const uint32_t epoch = NextEpoch(sj, bound);
    for (const auto& [u, v] : rs.relations[i + 1]) sj.stamp[u] = epoch;
    Relation& prev = rs.relations[i];
    std::erase_if(prev,
                  [&](const auto& t) { return sj.stamp[t.second] != epoch; });
  }
}

RelationSet BuildReducedRelations(const Graph& g, const Query& q) {
  RelationSet rs = BuildRelations(g, q);
  FullReduce(rs);
  return rs;
}

}  // namespace pathenum
