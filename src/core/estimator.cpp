#include "core/estimator.h"

#include <algorithm>

namespace pathenum {

double EstimateSearchSpace(const LightweightIndex& idx) {
  const uint32_t k = idx.hops();
  // T̂ = sum_{i=0}^{k-1} prod_{j=0}^{i} gamma_j, with gamma_j the average
  // |I_t(v, k-j-1)| over v in C_j (Eq. 5).
  double total = 0.0;
  double product = 1.0;
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t count = idx.LevelCount(j);
    if (count == 0) return total;  // dead level: nothing deeper survives
    const double gamma = idx.LevelItSum(j) / static_cast<double>(count);
    product *= gamma;
    total += product;
    if (product == 0.0) break;
  }
  return total;
}

JoinPlan OptimizeJoinOrder(const LightweightIndex& idx) {
  JoinPlan plan;
  const uint32_t k = idx.hops();
  const uint32_t n = idx.num_vertices();
  plan.forward_sizes.assign(k + 1, 0.0);
  plan.backward_sizes.assign(k + 1, 0.0);
  if (n == 0 || idx.source_slot() == kInvalidSlot) return plan;

  // Backward DP (Alg. 5 lines 1-5): c_i^k(v) = number of tuples of Q[i:k]
  // starting at v; c_k^k(v) = 1 on C_k; level i reads level i+1 through
  // I_t(v, k-i-1).
  std::vector<double> cur(n, 0.0);
  std::vector<double> nxt(n, 0.0);
  idx.ForEachSlotInLevel(k, [&](uint32_t slot) {
    nxt[slot] = 1.0;
    plan.backward_sizes[k] += 1.0;
  });
  for (uint32_t i = k; i-- > 0;) {
    double level_sum = 0.0;
    idx.ForEachSlotInLevel(i, [&](uint32_t slot) {
      double c = 0.0;
      for (uint32_t w : idx.OutSlotsWithin(slot, k - i - 1)) c += nxt[w];
      cur[slot] = c;
      level_sum += c;
    });
    plan.backward_sizes[i] = level_sum;
    std::swap(cur, nxt);
  }

  // Forward DP (Alg. 5 lines 6-10, with the I_s(v, i-1) budget fix):
  // c_0^i(v) = number of tuples of Q[0:i] ending at v; c_0^0(s) = 1.
  std::fill(nxt.begin(), nxt.end(), 0.0);
  idx.ForEachSlotInLevel(0, [&](uint32_t slot) {
    nxt[slot] = 1.0;
    plan.forward_sizes[0] += 1.0;
  });
  for (uint32_t i = 1; i <= k; ++i) {
    double level_sum = 0.0;
    idx.ForEachSlotInLevel(i, [&](uint32_t slot) {
      double c = 0.0;
      for (uint32_t w : idx.InSlotsWithin(slot, i - 1)) c += nxt[w];
      cur[slot] = c;
      level_sum += c;
    });
    plan.forward_sizes[i] = level_sum;
    std::swap(cur, nxt);
  }

  // Cut position (line 11): argmin over i of |Q[0:i]| + |Q[i:k]|, restricted
  // to proper cuts 1 <= i <= k-1 so Alg. 6 has two non-trivial halves.
  plan.t_dfs = 0.0;
  for (uint32_t i = 1; i <= k; ++i) plan.t_dfs += plan.forward_sizes[i];
  if (k >= 2) {
    uint32_t best = 1;
    double best_cost = plan.forward_sizes[1] + plan.backward_sizes[1];
    for (uint32_t i = 2; i < k; ++i) {
      const double cost = plan.forward_sizes[i] + plan.backward_sizes[i];
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    plan.cut = best;
    plan.t_join = plan.backward_sizes[0];  // |Q|
    for (uint32_t i = 1; i <= plan.cut; ++i) {
      plan.t_join += plan.forward_sizes[i];
    }
    for (uint32_t i = plan.cut; i <= k; ++i) {
      plan.t_join += plan.backward_sizes[i];
    }
  }
  return plan;
}

}  // namespace pathenum
