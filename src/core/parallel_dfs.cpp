#include "core/parallel_dfs.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/dfs_enumerator.h"
#include "util/timer.h"

namespace pathenum {

namespace internal {

EnumOptions BranchOptions(const EnumOptions& opts, const Deadline& deadline) {
  EnumOptions branch_opts = opts;
  branch_opts.result_limit =
      std::numeric_limits<uint64_t>::max();  // delegated to the sink
  branch_opts.response_target = 0;           // delegated to the sink
  branch_opts.time_limit_ms = deadline.RemainingMs();
  return branch_opts;
}

bool AccumulateBranch(EnumCounters& total, const EnumCounters& branch) {
  total.num_results += branch.num_results;
  total.edges_accessed += branch.edges_accessed;
  total.partials += branch.partials;
  total.invalid_partials += branch.invalid_partials;
  total.timed_out |= branch.timed_out;
  total.stopped_by_sink |= branch.stopped_by_sink;
  total.out_of_memory |= branch.out_of_memory;
  total.cancelled |= branch.cancelled;
  total.work_exceeded |= branch.work_exceeded;
  return !branch.stopped_by_sink && !branch.timed_out &&
         !branch.out_of_memory && !branch.cancelled && !branch.work_exceeded;
}

void FinishFanout(EnumCounters& out, std::span<const EnumCounters> workers,
                  uint64_t root_partials, uint64_t root_edges,
                  uint64_t delivered, double response_ms,
                  const EnumOptions& opts) {
  for (const EnumCounters& c : workers) {
    out.edges_accessed += c.edges_accessed;
    out.partials += c.partials;
    out.invalid_partials += c.invalid_partials;
    out.timed_out |= c.timed_out;
    out.stopped_by_sink |= c.stopped_by_sink;
    out.out_of_memory |= c.out_of_memory;
    out.cancelled |= c.cancelled;
    out.work_exceeded |= c.work_exceeded;
  }
  // The driver's own work (e.g. the root partial (s) and the per-branch
  // edge scan of the DFS fan-out) is accounted exactly once.
  out.partials += root_partials;
  out.edges_accessed += root_edges;
  // `delivered` is the gate's count of paths actually handed to inner
  // sinks; the gate caps it at the limit structurally, the min() below is
  // only a belt against future drivers feeding raw reservation counts.
  out.num_results = std::min(delivered, opts.result_limit);
  if (out.num_results >= opts.result_limit) {
    out.hit_result_limit = true;
    out.stopped_by_sink = false;
  }
  out.response_ms = response_ms;
}

EnumCounters DrainBranches(DfsEnumerator& dfs, const LightweightIndex& index,
                           std::span<const uint32_t> branches,
                           std::atomic<uint32_t>& cursor, PathSink& sink,
                           const EnumOptions& opts, const Deadline& deadline,
                           std::atomic<bool>* stop_claims) {
  EnumCounters total;
  // Per-branch options: the shared gate handles the cross-thread result
  // limit; the deadline is absolute, so re-deriving each branch's budget
  // from its remaining wall time keeps it globally correct.
  while (stop_claims == nullptr ||
         !stop_claims->load(std::memory_order_relaxed)) {
    const uint32_t b = cursor.fetch_add(1, std::memory_order_relaxed);
    if (b >= branches.size()) break;
    // The immediate target-arrival and the duplicate check for s are the
    // root frame's job in the sequential code; handled by RunBranch.
    EnumCounters c = dfs.RunBranch(index, branches[b], sink,
                                   BranchOptions(opts, deadline));
    // RunBranch charges both partials of its chain — (s) and (s, branch) —
    // so a standalone call is self-consistent. Within a fan-out the root
    // (s) is shared by every branch and charged exactly once via
    // FinishFanout's root_partials; deduct the per-branch copy here so the
    // merged totals equal the sequential enumeration's.
    c.partials -= 1;
    // Stop claiming work once the limit was reached or time ran out — and
    // tell the other participants, whose remaining units can only discover
    // the same.
    if (!AccumulateBranch(total, c)) {
      if (stop_claims != nullptr) {
        stop_claims->store(true, std::memory_order_relaxed);
      }
      break;
    }
  }
  return total;
}

}  // namespace internal

ParallelDfsEnumerator::ParallelDfsEnumerator(const LightweightIndex& index,
                                             uint32_t num_threads)
    : index_(index),
      owned_pool_(std::make_unique<ThreadPool>(num_threads)),
      pool_(owned_pool_.get()) {}

ParallelDfsEnumerator::ParallelDfsEnumerator(const LightweightIndex& index,
                                             ThreadPool& pool)
    : index_(index), pool_(&pool) {}

ParallelEnumResult ParallelDfsEnumerator::Run(
    const std::function<std::unique_ptr<PathSink>()>& sink_factory,
    const EnumOptions& opts) {
  ParallelEnumResult result;
  Timer wall;
  const Deadline deadline = Deadline::AfterMs(opts.time_limit_ms);
  const uint32_t s_slot = index_.source_slot();
  if (s_slot == kInvalidSlot) return result;

  const uint32_t k = index_.hops();
  const auto branches = index_.OutSlotsWithin(s_slot, k - 1);
  const uint32_t workers = static_cast<uint32_t>(std::min<size_t>(
      pool_->num_workers(), std::max<size_t>(branches.size(), 1)));
  result.threads_used = workers;

  BranchGate gate(opts.result_limit, opts.response_target, wall);
  std::atomic<uint32_t> cursor{0};
  std::vector<EnumCounters> worker_counters(workers);

  pool_->RunOnWorkers(workers, [&](uint32_t worker) {
    std::unique_ptr<PathSink> sink = sink_factory();
    BranchSink limited(gate, *sink, BranchSink::Mode::kPerWorker);
    DfsEnumerator dfs;
    // No shared stop flag here: in per-worker mode an inner sink refusing
    // stops only its own worker (the class contract) — the other workers
    // must keep draining their branches.
    worker_counters[worker] = internal::DrainBranches(
        dfs, index_, branches, cursor, limited, opts, deadline,
        /*stop_claims=*/nullptr);
  });

  internal::FinishFanout(result.counters, worker_counters,
                         /*root_partials=*/1,
                         /*root_edges=*/branches.size(), gate.delivered(),
                         gate.response_ms(), opts);
  result.wall_ms = wall.ElapsedMs();
  return result;
}

ParallelEnumResult ParallelDfsEnumerator::CountAll(const EnumOptions& opts) {
  return Run([] { return std::make_unique<CountingSink>(); }, opts);
}

}  // namespace pathenum
