#include "core/parallel_dfs.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "core/dfs_enumerator.h"
#include "util/timer.h"

namespace pathenum {

namespace {

/// Per-worker sink adapter enforcing the cross-thread result limit and
/// response-time target with a shared atomic counter.
class SharedLimitSink : public PathSink {
 public:
  SharedLimitSink(PathSink& inner, std::atomic<uint64_t>& emitted,
                  uint64_t limit, uint64_t response_target,
                  const Timer& timer, std::atomic<bool>& response_recorded,
                  double& response_ms, std::mutex& response_mutex)
      : inner_(inner),
        emitted_(emitted),
        limit_(limit),
        response_target_(response_target),
        timer_(timer),
        response_recorded_(response_recorded),
        response_ms_(response_ms),
        response_mutex_(response_mutex) {}

  bool OnPath(std::span<const VertexId> path) override {
    const uint64_t n = emitted_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n > limit_) return false;  // reservation failed: stop this worker
    if (n == response_target_ &&
        !response_recorded_.exchange(true, std::memory_order_relaxed)) {
      const std::lock_guard<std::mutex> lock(response_mutex_);
      response_ms_ = timer_.ElapsedMs();
    }
    if (!inner_.OnPath(path)) return false;
    return n < limit_;
  }

 private:
  PathSink& inner_;
  std::atomic<uint64_t>& emitted_;
  const uint64_t limit_;
  const uint64_t response_target_;
  const Timer& timer_;
  std::atomic<bool>& response_recorded_;
  double& response_ms_;
  std::mutex& response_mutex_;
};

}  // namespace

namespace internal {

EnumOptions BranchOptions(const EnumOptions& opts, const Timer& since_start) {
  EnumOptions branch_opts = opts;
  branch_opts.result_limit =
      std::numeric_limits<uint64_t>::max();  // delegated to the sink
  branch_opts.response_target = 0;           // delegated to the sink
  if (opts.time_limit_ms != std::numeric_limits<double>::infinity()) {
    branch_opts.time_limit_ms =
        std::max(0.0, opts.time_limit_ms - since_start.ElapsedMs());
  }
  return branch_opts;
}

bool AccumulateBranch(EnumCounters& total, const EnumCounters& branch) {
  total.num_results += branch.num_results;
  total.edges_accessed += branch.edges_accessed;
  total.partials += branch.partials;
  total.invalid_partials += branch.invalid_partials;
  total.timed_out |= branch.timed_out;
  total.stopped_by_sink |= branch.stopped_by_sink;
  return !branch.stopped_by_sink && !branch.timed_out;
}

void FinishFanout(EnumCounters& out, std::span<const EnumCounters> workers,
                  size_t num_branches, uint64_t delivered, double response_ms,
                  const EnumOptions& opts) {
  for (const EnumCounters& c : workers) {
    out.edges_accessed += c.edges_accessed;
    out.partials += c.partials;
    out.invalid_partials += c.invalid_partials;
    out.timed_out |= c.timed_out;
    out.stopped_by_sink |= c.stopped_by_sink;
  }
  // The root partial (s) and the per-branch edge scan are accounted once.
  out.partials += 1;
  out.edges_accessed += num_branches;
  out.num_results = std::min(delivered, opts.result_limit);
  if (out.num_results >= opts.result_limit) {
    out.hit_result_limit = true;
    out.stopped_by_sink = false;
  }
  out.response_ms = response_ms;
}

}  // namespace internal

ParallelDfsEnumerator::ParallelDfsEnumerator(const LightweightIndex& index,
                                             uint32_t num_threads)
    : index_(index),
      num_threads_(num_threads != 0 ? num_threads
                                    : std::max(1u,
                                               std::thread::
                                                   hardware_concurrency())) {
}

ParallelEnumResult ParallelDfsEnumerator::Run(
    const std::function<std::unique_ptr<PathSink>()>& sink_factory,
    const EnumOptions& opts) {
  ParallelEnumResult result;
  Timer wall;
  const uint32_t s_slot = index_.source_slot();
  if (s_slot == kInvalidSlot) return result;

  const uint32_t k = index_.hops();
  const auto branches = index_.OutSlotsWithin(s_slot, k - 1);
  const uint32_t workers = static_cast<uint32_t>(std::min<size_t>(
      num_threads_, std::max<size_t>(branches.size(), 1)));
  result.threads_used = workers;

  std::atomic<uint64_t> emitted{0};
  std::atomic<bool> response_recorded{false};
  std::atomic<uint32_t> cursor{0};
  double response_ms = -1.0;
  std::mutex response_mutex;
  std::vector<EnumCounters> worker_counters(workers);

  auto worker_fn = [&](uint32_t worker_id) {
    std::unique_ptr<PathSink> sink = sink_factory();
    SharedLimitSink limited(*sink, emitted, opts.result_limit,
                            opts.response_target, wall, response_recorded,
                            response_ms, response_mutex);
    DfsEnumerator dfs(index_);
    EnumCounters& total = worker_counters[worker_id];
    // Per-branch options: the shared sink handles the cross-thread result
    // limit; the deadline is absolute, so re-deriving it per branch from
    // the remaining wall budget keeps it globally correct.
    while (true) {
      const uint32_t b =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (b >= branches.size()) break;
      const uint32_t branch = branches[b];
      // The immediate target-arrival and the duplicate check for s are the
      // root frame's job in the sequential code; handled by RunBranch.
      const EnumCounters c = dfs.RunBranch(
          branch, limited, internal::BranchOptions(opts, wall));
      // Stop claiming work once the limit was reached or time ran out.
      if (!internal::AccumulateBranch(total, c)) break;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  // Delivered results: the shared counter, capped by the limit (attempts
  // beyond the reservation were dropped by the adapter).
  internal::FinishFanout(result.counters, worker_counters, branches.size(),
                         emitted.load(std::memory_order_relaxed), response_ms,
                         opts);
  result.wall_ms = wall.ElapsedMs();
  return result;
}

ParallelEnumResult ParallelDfsEnumerator::CountAll(const EnumOptions& opts) {
  return Run([] { return std::make_unique<CountingSink>(); }, opts);
}

}  // namespace pathenum
