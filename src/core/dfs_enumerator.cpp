#include "core/dfs_enumerator.h"

#include <algorithm>

#include "util/memory.h"

namespace pathenum {

namespace {
/// How many search steps between deadline checks; keeps clock reads off the
/// hot path.
constexpr uint64_t kCheckInterval = 8192;
}  // namespace

void DfsEnumerator::Prepare(const LightweightIndex& index,
                            const EnumOptions& opts) {
  index_ = &index;
  counters_ = EnumCounters{};
  timer_.Reset();
  deadline_ = Deadline::AfterMs(opts.time_limit_ms);
  result_limit_ = opts.result_limit;
  response_target_ = opts.response_target;
  check_countdown_ = kCheckInterval;
  stop_ = false;

  if (on_path_.size() < index.num_vertices()) {
    on_path_.resize(index.num_vertices(), 0);
  }
  if (++epoch_ == 0) {  // wrap: stale stamps could collide, wipe them
    std::fill(on_path_.begin(), on_path_.end(), 0);
    epoch_ = 1;
  }
}

EnumCounters DfsEnumerator::Run(PathSink& sink, const EnumOptions& opts) {
  PATHENUM_CHECK_MSG(index_ != nullptr, "enumerator not bound to an index");
  return Run(*index_, sink, opts);
}

EnumCounters DfsEnumerator::Run(const LightweightIndex& index, PathSink& sink,
                                const EnumOptions& opts) {
  Prepare(index, opts);
  sink_ = &sink;

  const uint32_t s_slot = index.source_slot();
  if (s_slot == kInvalidSlot) return counters_;  // no result within k hops

  stack_[0] = s_slot;
  on_path_[s_slot] = epoch_;
  counters_.partials = 1;  // M = (s)
  const uint64_t found = Search(s_slot, 0);
  if (found == 0) counters_.invalid_partials += 1;  // the root itself
  return counters_;
}

EnumCounters DfsEnumerator::RunBranch(uint32_t branch, PathSink& sink,
                                      const EnumOptions& opts) {
  PATHENUM_CHECK_MSG(index_ != nullptr, "enumerator not bound to an index");
  return RunBranch(*index_, branch, sink, opts);
}

EnumCounters DfsEnumerator::RunBranch(const LightweightIndex& index,
                                      uint32_t branch, PathSink& sink,
                                      const EnumOptions& opts) {
  Prepare(index, opts);
  sink_ = &sink;

  const uint32_t s_slot = index.source_slot();
  PATHENUM_CHECK_MSG(s_slot != kInvalidSlot, "empty index");
  stack_[0] = s_slot;
  stack_[1] = branch;
  on_path_[s_slot] = epoch_;
  on_path_[branch] = epoch_;
  counters_.partials = 1;  // M = (s, branch)
  const uint64_t found = Search(branch, 1);
  if (found == 0) counters_.invalid_partials += 1;
  return counters_;
}

size_t DfsEnumerator::ScratchBytes() const { return VectorBytes(on_path_); }

bool DfsEnumerator::ShouldStop() {
  if (stop_) return true;
  if (check_countdown_-- == 0) {
    check_countdown_ = kCheckInterval;
    if (deadline_.Expired()) {
      counters_.timed_out = true;
      stop_ = true;
    }
  }
  return stop_;
}

void DfsEnumerator::Emit(uint32_t depth) {
  for (uint32_t i = 0; i <= depth; ++i) {
    path_buf_[i] = index_->VertexAt(stack_[i]);
  }
  counters_.num_results++;
  if (counters_.num_results == response_target_) {
    counters_.response_ms = timer_.ElapsedMs();
  }
  if (!sink_->OnPath({path_buf_, depth + 1})) {
    counters_.stopped_by_sink = true;
    stop_ = true;
  } else if (counters_.num_results >= result_limit_) {
    counters_.hit_result_limit = true;
    stop_ = true;
  }
}

uint64_t DfsEnumerator::Search(uint32_t slot, uint32_t depth) {
  // Lines 4-5 of Alg. 4: emit when the partial result reached t.
  if (slot == index_->target_slot()) {
    Emit(depth);
    return 1;
  }
  const uint32_t k = index_->hops();
  uint64_t found = 0;
  // Lines 6-7: extend with I_t(v, k - L(M) - 1); the O(1) on-path mark is
  // the only per-neighbor work left.
  const auto nbrs = index_->OutSlotsWithin(slot, k - depth - 1);
  counters_.edges_accessed += nbrs.size();
  for (const uint32_t next : nbrs) {
    if (ShouldStop()) break;
    if (on_path_[next] == epoch_) continue;  // already on the partial result
    stack_[depth + 1] = next;
    on_path_[next] = epoch_;
    counters_.partials++;
    const uint64_t sub = Search(next, depth + 1);
    on_path_[next] = 0;
    if (sub == 0) counters_.invalid_partials++;
    found += sub;
  }
  return found;
}

}  // namespace pathenum
