#include "core/dfs_enumerator.h"

#include <algorithm>
#include <cassert>

#include "util/memory.h"

namespace pathenum {

namespace {
/// How many search steps between deadline checks; keeps clock reads off the
/// hot path.
constexpr uint64_t kCheckInterval = 8192;
}  // namespace

void DfsEnumerator::Prepare(const LightweightIndex& index,
                            const EnumOptions& opts) {
  // stack_/frames_ hold one entry per path vertex: a k-hop path has k + 1
  // vertices and the deepest stack index is exactly k.
  static_assert(sizeof(stack_) / sizeof(stack_[0]) == kMaxHops + 1);
  assert(index.hops() <= kMaxHops);

  index_ = &index;
  adj_ = index.out_adjacency();
  translate_ = index.slot_to_vertex();
  counters_ = EnumCounters{};
  timer_.Reset();
  deadline_ = Deadline::AfterMs(opts.time_limit_ms);
  cancel_ = opts.cancel.flag();
  work_budget_ = opts.work_budget_edges;
  check_countdown_ = kCheckInterval;
  stop_ = false;
  found_ = 0;
  divergence_ = 0;

  if (on_path_.size() < index.num_vertices()) {
    on_path_.resize(index.num_vertices(), 0);
  }
  if (++epoch_ == 0) {  // wrap: stale stamps could collide, wipe them
    std::fill(on_path_.begin(), on_path_.end(), 0);
    epoch_ = 1;
  }
}

EnumCounters DfsEnumerator::Run(PathSink& sink, const EnumOptions& opts) {
  PATHENUM_CHECK_MSG(index_ != nullptr, "enumerator not bound to an index");
  return Run(*index_, sink, opts);
}

EnumCounters DfsEnumerator::Run(const LightweightIndex& index, PathSink& sink,
                                const EnumOptions& opts) {
  Prepare(index, opts);
  emitter_.Arm(&sink, &counters_, &timer_, opts.result_limit,
               opts.response_target);

  const uint32_t s_slot = index.source_slot();
  if (s_slot == kInvalidSlot) return counters_;  // no result within k hops

  stack_[0] = s_slot;
  on_path_[s_slot] = epoch_;
  counters_.partials = 1;  // M = (s)
  if (s_slot == index.target_slot()) {
    AppendPath(0);
  } else {
    SearchFrom(0);
  }
  return FinishRun();
}

EnumCounters DfsEnumerator::RunBranch(uint32_t branch, PathSink& sink,
                                      const EnumOptions& opts) {
  PATHENUM_CHECK_MSG(index_ != nullptr, "enumerator not bound to an index");
  return RunBranch(*index_, branch, sink, opts);
}

EnumCounters DfsEnumerator::RunBranch(const LightweightIndex& index,
                                      uint32_t branch, PathSink& sink,
                                      const EnumOptions& opts) {
  Prepare(index, opts);
  emitter_.Arm(&sink, &counters_, &timer_, opts.result_limit,
               opts.response_target);

  const uint32_t s_slot = index.source_slot();
  PATHENUM_CHECK_MSG(s_slot != kInvalidSlot, "empty index");
  stack_[0] = s_slot;
  stack_[1] = branch;
  on_path_[s_slot] = epoch_;
  on_path_[branch] = epoch_;
  // Both partial results of the starting chain are on the books: (s) and
  // (s, branch). Fan-out drivers deduct the shared (s) copy per branch
  // (internal::DrainBranches) and charge it once via root_partials.
  counters_.partials = 2;
  if (branch == index.target_slot()) {
    AppendPath(1);
  } else {
    SearchFrom(1);
  }
  return FinishRun();
}

size_t DfsEnumerator::ScratchBytes() const { return VectorBytes(on_path_); }

bool DfsEnumerator::ShouldStop() {
  if (stop_) return true;
  if (check_countdown_-- == 0) {
    check_countdown_ = kCheckInterval;
    CheckControl();
  }
  return stop_;
}

void DfsEnumerator::CheckControl(uint64_t pending_edges) {
  // Precedence mirrors EnumCounters::TerminalState: an explicit cancel
  // wins over a deadline racing it, and both win over the work budget.
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    counters_.cancelled = true;
    stop_ = true;
  } else if (deadline_.Expired()) {
    counters_.timed_out = true;
    stop_ = true;
  } else if (counters_.edges_accessed + pending_edges >= work_budget_) {
    counters_.work_exceeded = true;
    stop_ = true;
  }
}

void DfsEnumerator::AppendPath(uint32_t depth) {
  const uint32_t len = depth + 1;
  PathBlock& block = emitter_.block();
  if (!block.HasRoomFor(len)) {
    if (!emitter_.Flush()) {
      // The sink (or the limit, at block granularity) stopped the run:
      // this just-found path is dropped, exactly as a per-path emitter
      // would have stopped searching before finding it.
      stop_ = true;
      return;
    }
    divergence_ = 0;  // blocks are self-contained: restart the delta chain
    // Block-emission-granularity cancellation poll: a cancel lands within
    // one block (~256 paths) of firing even when the countdown-gated
    // ShouldStop poll is far away.
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      counters_.cancelled = true;
      stop_ = true;
      return;
    }
  }
  const uint32_t prefix = divergence_;
  block.AppendDelta(prefix, stack_ + prefix, len - prefix, translate_);
  divergence_ = len;
  ++found_;
  if (emitter_.AtResultLimit()) {
    // Flush the exactly-limit-sized tail; Flush sets hit_result_limit (or
    // stopped_by_sink if the sink refuses first — the per-path precedence).
    emitter_.Flush();
    divergence_ = 0;
    stop_ = true;
  }
}

EnumCounters DfsEnumerator::FinishRun() {
  // Deliver whatever is pending: on a timeout (or normal exhaustion) every
  // found path still reaches the sink, exactly like per-path emission
  // delivered each path the moment it was found. No-op after a limit/sink
  // stop (those flush inside AppendPath).
  emitter_.Flush();
  if (found_ == 0) counters_.invalid_partials += 1;  // the root itself
  return counters_;
}

void DfsEnumerator::SearchFrom(uint32_t start_depth) {
  // Devirtualize the ends-table width for the whole run: one branch here
  // instead of one per frame in the loop.
  if (adj_.ends16 != nullptr) {
    SearchFromImpl<uint16_t>(start_depth, adj_.ends16);
  } else {
    SearchFromImpl<uint32_t>(start_depth, adj_.ends32);
  }
}

template <typename EndT>
void DfsEnumerator::SearchFromImpl(uint32_t start_depth, const EndT* ends) {
  const uint32_t k = index_->hops();
  const uint32_t t_slot = index_->target_slot();
  const uint32_t stride = adj_.stride;
  const uint64_t* const begin = adj_.begin;
  const uint32_t* const slots = adj_.slots;
  const auto frame_for = [&](uint32_t slot, uint32_t b) {
    return Frame{slots + begin[slot],
                 ends[static_cast<size_t>(slot) * stride + b], 0};
  };
  uint32_t depth = start_depth;

  // Lines 6-7 of Alg. 4, iteratively: each level holds an O(1) span
  // I_t(v, k - depth - 1) from the index plus a resume cursor. The budget
  // b = k - depth - 1 is always in [0, k - 1] here (a non-target vertex at
  // depth k cannot exist: its budget-0 span could only contain t), so the
  // public API's min(b, k) clamp is hoisted out of the loop entirely.
  frames_[depth] = frame_for(stack_[depth], k - depth - 1);
  counters_.edges_accessed += frames_[depth].size;
  results_at_entry_[depth] = found_;

  for (;;) {
    Frame& f = frames_[depth];
    if (stop_ || f.next >= f.size) {
      // Subtree exhausted (or the run stopped): close the level, charging
      // its invalid mark iff nothing was found below it.
      if (depth == start_depth) return;
      on_path_[stack_[depth]] = 0;
      if (found_ == results_at_entry_[depth]) counters_.invalid_partials++;
      --depth;
      continue;
    }
    if (depth + 2 == k) {
      // Penultimate-level drain: every child of this frame is leaf-fusable
      // (budget 0 — see below), so the whole sibling span runs in one tight
      // loop with the per-claim counters held in registers and flushed
      // once. This level claims the overwhelming majority of partials at
      // paper-scale limits.
      const uint32_t* const nbrs = f.nbrs;
      const uint32_t size = f.size;
      const uint32_t* const marks = on_path_.data();
      const uint32_t epoch = epoch_;
      uint32_t i = f.next;
      uint64_t partials = 0, edges = 0, invalid = 0;
      uint64_t countdown = check_countdown_;
      while (i < size) {
        if (countdown-- == 0) {
          countdown = kCheckInterval;
          CheckControl(edges);
          if (stop_) break;
        }
        const uint32_t nx = nbrs[i++];
        if (marks[nx] == epoch) continue;
        stack_[depth + 1] = nx;
        if (divergence_ > depth + 1) divergence_ = depth + 1;
        ++partials;
        if (nx == t_slot) {
          AppendPath(depth + 1);
          if (stop_) break;
          continue;
        }
        const uint32_t cnt = ends[static_cast<size_t>(nx) * stride];  // b=0
        edges += cnt;
        if (cnt == 0) {
          ++invalid;  // dead end: (.., nx) extends nowhere
          continue;
        }
        stack_[depth + 2] = t_slot;
        ++partials;
        AppendPath(depth + 2);
        if (stop_) break;
      }
      check_countdown_ = countdown;
      f.next = i;
      counters_.partials += partials;
      counters_.edges_accessed += edges;
      counters_.invalid_partials += invalid;
      continue;  // span drained (or stopped): the loop head pops the frame
    }
    if (ShouldStop()) continue;
    const uint32_t next = f.nbrs[f.next++];
#if defined(__GNUC__) || defined(__clang__)
    if (f.next < f.size) {
      // Hide the dependent loads of the *sibling* claimed after `next`'s
      // subtree: its on-path mark and its neighbor-span metadata.
      const uint32_t sibling = f.nbrs[f.next];
      __builtin_prefetch(&on_path_[sibling]);
      __builtin_prefetch(&begin[sibling]);
    }
#endif
    if (on_path_[next] == epoch_) continue;  // already on the partial result
    stack_[depth + 1] = next;
    if (divergence_ > depth + 1) divergence_ = depth + 1;
    counters_.partials++;
    if (next == t_slot) {
      // Lines 4-5: the partial result reached t — a result.
      AppendPath(depth + 1);
      continue;
    }
    // Every depth-(k-2) frame is handled by the drain above, so this
    // generic push only ever creates frames with budget >= 1.
    assert(depth + 1 < k);  // see the budget-range argument above
    assert(depth + 2 < k);
    on_path_[next] = epoch_;
    ++depth;
    frames_[depth] = frame_for(next, k - depth - 1);
    counters_.edges_accessed += frames_[depth].size;
    results_at_entry_[depth] = found_;
  }
}

}  // namespace pathenum
