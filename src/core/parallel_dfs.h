// Multi-threaded IDX-DFS. The search tree under s fans out into the
// independent subtrees rooted at each first-level extension I_t(s, k-1);
// a worker pool claims subtrees dynamically (atomic cursor) and runs the
// sequential enumerator inside each. An extension of the paper's system:
// the per-query index is immutable after construction, so the enumeration
// parallelizes without any synchronization beyond result accounting.
#ifndef PATHENUM_CORE_PARALLEL_DFS_H_
#define PATHENUM_CORE_PARALLEL_DFS_H_

#include <functional>
#include <memory>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"

namespace pathenum {

/// Outcome of a parallel enumeration.
struct ParallelEnumResult {
  /// Merged counters across all workers (times are wall-clock).
  EnumCounters counters;
  double wall_ms = 0.0;
  uint32_t threads_used = 0;
};

/// Parallel index-based DFS enumerator.
///
/// Sinks are created per worker thread through `sink_factory`, so user
/// code needs no locking: each worker owns its sink exclusively, and
/// cross-thread limits (result_limit, response_target) are enforced by the
/// enumerator with atomics. Results are exact: the union of the per-sink
/// path sets equals the sequential result set.
class ParallelDfsEnumerator {
 public:
  /// `num_threads` 0 picks std::thread::hardware_concurrency().
  explicit ParallelDfsEnumerator(const LightweightIndex& index,
                                 uint32_t num_threads = 0);

  /// Runs the enumeration. `sink_factory` is invoked once per worker (from
  /// that worker's thread); the returned sinks receive disjoint subsets of
  /// the result set.
  ParallelEnumResult Run(
      const std::function<std::unique_ptr<PathSink>()>& sink_factory,
      const EnumOptions& opts = {});

  /// Convenience: counts all paths with per-thread counting sinks.
  ParallelEnumResult CountAll(const EnumOptions& opts = {});

 private:
  const LightweightIndex& index_;
  uint32_t num_threads_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_PARALLEL_DFS_H_
