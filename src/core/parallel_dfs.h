// Multi-threaded IDX-DFS. The search tree under s fans out into the
// independent subtrees rooted at each first-level extension I_t(s, k-1);
// a worker pool claims subtrees dynamically (atomic cursor) and runs the
// sequential enumerator inside each. An extension of the paper's system:
// the per-query index is immutable after construction, so the enumeration
// parallelizes without any synchronization beyond result accounting.
//
// Since the pool migration (DESIGN.md §8) the enumerator spawns no threads
// of its own: branch units run on a ThreadPool — an external one shared
// with the caller, or a private pool spawned once per enumerator and
// reused across Run calls — and deliveries flow through the unified
// BranchGate/BranchSink fan-out adapter of core/sink.h.
#ifndef PATHENUM_CORE_PARALLEL_DFS_H_
#define PATHENUM_CORE_PARALLEL_DFS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <span>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "core/thread_pool.h"
#include "util/timer.h"

namespace pathenum {

class DfsEnumerator;

namespace internal {

// Accounting helpers shared by every branch-parallel DFS driver (the
// pooled ParallelDfsEnumerator below, QueryEngine::RunSplit and the
// AsyncEngine's cooperative split tickets). Branch-level limit bookkeeping
// is subtle enough that it must live in exactly one place.

/// Options for one branch of a fanned-out enumeration: result limit and
/// response target are delegated to the shared sink; the time budget is
/// re-derived from the query's one absolute deadline
/// (Deadline::RemainingMs), so every unit — whenever and on whichever
/// worker it starts — observes the same end instant.
EnumOptions BranchOptions(const EnumOptions& opts, const Deadline& deadline);

/// Folds one finished branch's counters into a worker's running total.
/// Returns false when the worker should stop claiming branches (sink stop
/// or timeout).
bool AccumulateBranch(EnumCounters& total, const EnumCounters& branch);

/// Merges per-worker totals into `out` and applies the shared accounting:
/// `root_partials`/`root_edges` charge the fan-out driver's own work once
/// (the DFS drivers pass the root partial (s) and the per-branch edge scan;
/// the split join passes zeros — its units carry all of its work), and
/// `delivered` results against `opts.result_limit` decide hit_result_limit
/// vs stopped_by_sink. `delivered` must come from the fan-out's BranchGate,
/// which structurally caps it at the limit — never limit + 1, even when a
/// branch hits the limit exactly at a merge barrier.
void FinishFanout(EnumCounters& out, std::span<const EnumCounters> workers,
                  uint64_t root_partials, uint64_t root_edges,
                  uint64_t delivered, double response_ms,
                  const EnumOptions& opts);

/// The one branch-claiming loop every split driver runs (per participating
/// worker): claims first-level branch units off the shared `cursor`, runs
/// them through `dfs` into `sink` (a BranchSink, normally), and accumulates
/// their counters until the units are drained or this participant's
/// accumulated counters say stop. When a participant stops early it trips
/// `stop_claims` (if given) so the other participants stop claiming new
/// units too — the query-wide limit makes their remaining work moot.
EnumCounters DrainBranches(DfsEnumerator& dfs, const LightweightIndex& index,
                           std::span<const uint32_t> branches,
                           std::atomic<uint32_t>& cursor, PathSink& sink,
                           const EnumOptions& opts, const Deadline& deadline,
                           std::atomic<bool>* stop_claims = nullptr);

}  // namespace internal

/// Outcome of a parallel enumeration.
struct ParallelEnumResult {
  /// Merged counters across all workers (times are wall-clock).
  EnumCounters counters;
  double wall_ms = 0.0;
  uint32_t threads_used = 0;
};

/// Parallel index-based DFS enumerator.
///
/// Sinks are created per worker through `sink_factory`, so user code needs
/// no locking: each worker owns its sink exclusively (BranchSink's
/// kPerWorker mode), and cross-thread limits (result_limit,
/// response_target) are enforced by the shared BranchGate. Results are
/// exact: the union of the per-sink path sets equals the sequential result
/// set.
class ParallelDfsEnumerator {
 public:
  /// Private-pool form: spawns a pool of `num_threads` workers once (0
  /// picks std::thread::hardware_concurrency()) and reuses it across Run
  /// calls.
  explicit ParallelDfsEnumerator(const LightweightIndex& index,
                                 uint32_t num_threads = 0);

  /// Shared-pool form: fans out over `pool` (not owned; must outlive the
  /// enumerator, and the caller owns its one-job-at-a-time contract).
  ParallelDfsEnumerator(const LightweightIndex& index, ThreadPool& pool);

  /// Runs the enumeration. `sink_factory` is invoked once per worker (from
  /// that worker's thread); the returned sinks receive disjoint subsets of
  /// the result set.
  ParallelEnumResult Run(
      const std::function<std::unique_ptr<PathSink>()>& sink_factory,
      const EnumOptions& opts = {});

  /// Convenience: counts all paths with per-thread counting sinks.
  ParallelEnumResult CountAll(const EnumOptions& opts = {});

 private:
  const LightweightIndex& index_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null in the shared-pool form
  ThreadPool* pool_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_PARALLEL_DFS_H_
