// Multi-threaded IDX-DFS. The search tree under s fans out into the
// independent subtrees rooted at each first-level extension I_t(s, k-1);
// a worker pool claims subtrees dynamically (atomic cursor) and runs the
// sequential enumerator inside each. An extension of the paper's system:
// the per-query index is immutable after construction, so the enumeration
// parallelizes without any synchronization beyond result accounting.
#ifndef PATHENUM_CORE_PARALLEL_DFS_H_
#define PATHENUM_CORE_PARALLEL_DFS_H_

#include <functional>
#include <memory>
#include <span>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "util/timer.h"

namespace pathenum {

namespace internal {

// Accounting helpers shared by every branch-parallel DFS driver (the
// thread-spawning ParallelDfsEnumerator below and the pooled
// QueryEngine::RunSplit). Branch-level limit bookkeeping is subtle enough
// that it must live in exactly one place.

/// Options for one branch of a fanned-out enumeration: result limit and
/// response target are delegated to the shared sink; the absolute deadline
/// is re-derived from the budget remaining since `since_start`.
EnumOptions BranchOptions(const EnumOptions& opts, const Timer& since_start);

/// Folds one finished branch's counters into a worker's running total.
/// Returns false when the worker should stop claiming branches (sink stop
/// or timeout).
bool AccumulateBranch(EnumCounters& total, const EnumCounters& branch);

/// Merges per-worker totals into `out` and applies the shared accounting:
/// the root partial and the per-branch edge scan are charged once, and
/// `delivered` results against `opts.result_limit` decide hit_result_limit
/// vs stopped_by_sink.
void FinishFanout(EnumCounters& out, std::span<const EnumCounters> workers,
                  size_t num_branches, uint64_t delivered, double response_ms,
                  const EnumOptions& opts);

}  // namespace internal

/// Outcome of a parallel enumeration.
struct ParallelEnumResult {
  /// Merged counters across all workers (times are wall-clock).
  EnumCounters counters;
  double wall_ms = 0.0;
  uint32_t threads_used = 0;
};

/// Parallel index-based DFS enumerator.
///
/// Sinks are created per worker thread through `sink_factory`, so user
/// code needs no locking: each worker owns its sink exclusively, and
/// cross-thread limits (result_limit, response_target) are enforced by the
/// enumerator with atomics. Results are exact: the union of the per-sink
/// path sets equals the sequential result set.
class ParallelDfsEnumerator {
 public:
  /// `num_threads` 0 picks std::thread::hardware_concurrency().
  explicit ParallelDfsEnumerator(const LightweightIndex& index,
                                 uint32_t num_threads = 0);

  /// Runs the enumeration. `sink_factory` is invoked once per worker (from
  /// that worker's thread); the returned sinks receive disjoint subsets of
  /// the result set.
  ParallelEnumResult Run(
      const std::function<std::unique_ptr<PathSink>()>& sink_factory,
      const EnumOptions& opts = {});

  /// Convenience: counts all paths with per-thread counting sinks.
  ParallelEnumResult CountAll(const EnumOptions& opts = {});

 private:
  const LightweightIndex& index_;
  uint32_t num_threads_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_PARALLEL_DFS_H_
