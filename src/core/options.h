// Enumeration options and the query-time statistics every algorithm reports.
#ifndef PATHENUM_CORE_OPTIONS_H_
#define PATHENUM_CORE_OPTIONS_H_

#include <cstdint>
#include <limits>
#include <string_view>

#include "core/control.h"

namespace pathenum {

/// Which enumeration strategy the PathEnum driver uses.
enum class Method {
  kAuto,  // cost-based selection (the full PathEnum pipeline, Fig. 2)
  kDfs,   // force IDX-DFS (paper Alg. 4)
  kJoin,  // force IDX-JOIN (paper Alg. 5 + 6)
};

inline std::string_view MethodName(Method m) {
  switch (m) {
    case Method::kAuto: return "Auto";
    case Method::kDfs: return "IDX-DFS";
    case Method::kJoin: return "IDX-JOIN";
  }
  return "?";
}

/// Per-query knobs shared by PathEnum and every baseline.
struct EnumOptions {
  /// Stop after this many results (the paper never limits; benches may).
  uint64_t result_limit = std::numeric_limits<uint64_t>::max();

  /// Wall-clock budget in milliseconds; infinity means unlimited. The
  /// paper's harness uses 120000 ms.
  double time_limit_ms = std::numeric_limits<double>::infinity();

  /// The paper's "response time" is the elapsed time until this many
  /// results have been found (1000 in §7.1).
  uint64_t response_target = 1000;

  /// Cap on materialized intermediate tuples (join-based methods). When a
  /// half-query's materialization would exceed it, the run stops and
  /// reports out_of_memory — the paper's BC-JOIN hits exactly this on ep
  /// at k = 8.
  size_t partial_memory_limit_bytes = size_t{1} << 30;  // 1 GiB

  /// Cooperative cancellation (core/control.h). The default token is null
  /// and can never fire. Enumerators poll it at block-emission and
  /// cursor-refill granularity; the index builder polls once per BFS wave.
  CancelToken cancel;

  /// Cap on neighbor entries examined (edges_accessed) — a deterministic,
  /// clock-free work budget. Exceeding it truncates the run
  /// (counters.work_exceeded, QueryState::kTruncated).
  uint64_t work_budget_edges = std::numeric_limits<uint64_t>::max();

  /// Preliminary-estimator threshold τ (paper §6.2; 1e5 in their setup).
  double tau = 1e5;

  /// Strategy selection; kAuto runs the full two-phase optimizer.
  Method method = Method::kAuto;

  /// Ablation knob: when false, kAuto skips the preliminary estimator and
  /// always runs the full-fledged one.
  bool use_preliminary_estimator = true;
};

/// Low-level counters produced by a single enumeration run.
struct EnumCounters {
  uint64_t num_results = 0;
  /// Neighbor entries examined during the search — the paper's "#Edges".
  uint64_t edges_accessed = 0;
  /// Partial results generated — search-tree nodes / materialized tuples.
  uint64_t partials = 0;
  /// Partial results that do not appear in any emitted path ("#Invalid").
  uint64_t invalid_partials = 0;
  /// Milliseconds (relative to enumeration start) when the
  /// `response_target`-th result appeared; negative if never reached.
  double response_ms = -1.0;
  /// Peak bytes of materialized intermediate tuples (join methods only).
  size_t peak_partial_bytes = 0;
  bool timed_out = false;
  bool hit_result_limit = false;
  bool stopped_by_sink = false;
  bool out_of_memory = false;  // partial_memory_limit_bytes exceeded
  bool cancelled = false;      // EnumOptions::cancel tripped
  bool work_exceeded = false;  // EnumOptions::work_budget_edges exceeded
  /// An oracle certified dist(s,t) > k: the run never started and the
  /// (empty) result set is complete. Exclusive with every flag above.
  bool oracle_rejected = false;

  bool completed() const {
    return !timed_out && !hit_result_limit && !stopped_by_sink &&
           !out_of_memory && !cancelled && !work_exceeded;
  }

  /// The terminal state this run reports (DESIGN.md §10). Precedence when
  /// several flags are set (a cancel can race a deadline): cancelled >
  /// timed_out > the truncation flags. kRejected/kError never originate
  /// here — they are assigned by the front-ends for runs that never
  /// started or died in a sink.
  QueryState TerminalState() const {
    if (oracle_rejected) return QueryState::kUnsatisfiable;
    if (cancelled) return QueryState::kCancelled;
    if (timed_out) return QueryState::kDeadlineExceeded;
    if (hit_result_limit || stopped_by_sink || out_of_memory ||
        work_exceeded) {
      return QueryState::kTruncated;
    }
    return QueryState::kOk;
  }
};

/// Full per-query report (paper metrics: query time, throughput, response
/// time, plus the breakdowns of Figs. 7/12/17).
struct QueryStats {
  double bfs_ms = 0.0;        // the two BFS inside index construction
  double index_ms = 0.0;      // total index construction (includes bfs_ms)
  double optimize_ms = 0.0;   // Alg. 5 join-order optimization
  double enumerate_ms = 0.0;  // the chosen enumerator
  double total_ms = 0.0;      // end-to-end query time
  double response_ms = 0.0;   // time to the first `response_target` results

  double preliminary_estimate = 0.0;  // Eq. 5's T̂ (0 when skipped)
  double t_dfs_cost = 0.0;            // cost-model T_DFS (when optimized)
  double t_join_cost = 0.0;           // cost-model T_JOIN (when optimized)
  Method method = Method::kDfs;       // what actually ran
  uint32_t cut_position = 0;          // i* (join only)

  uint64_t index_vertices = 0;
  uint64_t index_edges = 0;
  size_t index_bytes = 0;

  /// Set by the engine's cross-query cache (DESIGN.md §6): the per-query
  /// index was reused from a previous query / the whole result set was
  /// replayed without enumerating.
  bool index_cache_hit = false;
  bool result_cache_hit = false;

  EnumCounters counters;

  /// Results per second over the whole query (paper's throughput metric;
  /// counts results found even when the query was cut off).
  double ThroughputPerSec() const {
    return total_ms > 0.0
               ? static_cast<double>(counters.num_results) / (total_ms / 1e3)
               : 0.0;
  }
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_OPTIONS_H_
