// Reference (brute-force) implementations used as ground truth by tests and
// by the estimation-accuracy experiment (Fig. 18). Deliberately simple:
// plain backtracking over raw adjacency, no pruning beyond the definition.
#ifndef PATHENUM_CORE_REFERENCE_H_
#define PATHENUM_CORE_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "graph/graph.h"

namespace pathenum {

/// All simple paths from s to t with at most k edges, as vertex sequences.
/// Stops after `limit` results. Exponential time — small inputs only.
std::vector<std::vector<VertexId>> BruteForcePaths(
    const Graph& g, const Query& q, uint64_t limit = UINT64_MAX);

/// delta_P = |P(s,t,k,G)|.
uint64_t CountPathsBruteForce(const Graph& g, const Query& q);

/// All walks from s to t with at most k edges whose *internal* vertices
/// avoid {s, t} (paper Definition 2.1). Exponential — small inputs only.
std::vector<std::vector<VertexId>> BruteForceWalks(
    const Graph& g, const Query& q, uint64_t limit = UINT64_MAX);

/// delta_W = |W(s,t,k,G)| via dynamic programming over walk lengths;
/// O(k * |E|). Returned as double (delta_W overflows uint64 on dense
/// graphs), exact while below 2^53.
double CountWalksDp(const Graph& g, const Query& q);

}  // namespace pathenum

#endif  // PATHENUM_CORE_REFERENCE_H_
