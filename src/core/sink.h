// Result consumers. Enumerators push each discovered path into a PathSink;
// the sink can stop the enumeration early by returning false.
#ifndef PATHENUM_CORE_SINK_H_
#define PATHENUM_CORE_SINK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "util/common.h"
#include "util/timer.h"

namespace pathenum {

/// Consumer interface for enumerated paths. `path` is the full vertex
/// sequence (source first, target last) and is only valid during the call.
class PathSink {
 public:
  virtual ~PathSink() = default;

  /// Returns false to stop the enumeration.
  virtual bool OnPath(std::span<const VertexId> path) = 0;
};

/// Counts results; never stops the enumeration.
class CountingSink : public PathSink {
 public:
  bool OnPath(std::span<const VertexId> path) override;

  uint64_t count() const { return count_; }
  /// Sum of path lengths (edges), handy for cheap result checksums.
  uint64_t total_length() const { return total_length_; }

 private:
  uint64_t count_ = 0;
  uint64_t total_length_ = 0;
};

/// Stores every result (up to `max_paths`); stops when full.
class CollectingSink : public PathSink {
 public:
  explicit CollectingSink(
      size_t max_paths = std::numeric_limits<size_t>::max())
      : max_paths_(max_paths) {}

  bool OnPath(std::span<const VertexId> path) override;

  const std::vector<std::vector<VertexId>>& paths() const { return paths_; }
  bool truncated() const { return truncated_; }

 private:
  size_t max_paths_;
  bool truncated_ = false;
  std::vector<std::vector<VertexId>> paths_;
};

/// Adapts a callable `bool(std::span<const VertexId>)` or
/// `void(std::span<const VertexId>)` into a sink.
class CallbackSink : public PathSink {
 public:
  explicit CallbackSink(std::function<bool(std::span<const VertexId>)> fn)
      : fn_(std::move(fn)) {}

  bool OnPath(std::span<const VertexId> path) override { return fn_(path); }

 private:
  std::function<bool(std::span<const VertexId>)> fn_;
};

/// Cross-thread accounting shared by every branch unit of one fanned-out
/// enumeration (DESIGN.md §8). The gate owns the query-wide state the
/// branch drivers must agree on: the result-limit reservation counter, the
/// response-target record, the count of paths actually handed to inner
/// sinks, and the stop latch. Exactly one gate exists per fanned-out query;
/// the BranchSink adapters below share it.
///
/// Delivery is reservation-based, so `delivered()` is structurally capped
/// at `result_limit`: a path is only handed to an inner sink after winning
/// a reservation `n <= result_limit`, and each reservation is delivered at
/// most once. A caller merging several fan-out phases (e.g. the split
/// IDX-JOIN's halves meeting at their barrier) therefore can never observe
/// limit + 1 — the double-count regression pinned by sink_test.
class BranchGate {
 public:
  /// `timer` is the enumeration stopwatch response_ms is measured against;
  /// it must outlive the gate.
  BranchGate(uint64_t result_limit, uint64_t response_target,
             const Timer& timer)
      : limit_(result_limit),
        response_target_(response_target),
        timer_(timer) {}

  BranchGate(const BranchGate&) = delete;
  BranchGate& operator=(const BranchGate&) = delete;

  /// Paths handed to inner sinks so far (never exceeds result_limit).
  uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Elapsed ms at the response_target-th reservation; negative if the
  /// target was never reached.
  double response_ms() const {
    return response_ms_.load(std::memory_order_relaxed);
  }

  /// True once the latch tripped: a serialized inner sink refused a path,
  /// or Stop() was called.
  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }

  /// External cancel (the per-ticket stop latch of the async engine): no
  /// further path passes through any adapter on this gate.
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

 private:
  friend class BranchSink;

  const uint64_t limit_;
  const uint64_t response_target_;
  const Timer& timer_;
  std::mutex mutex_;  // serializes a kSerialized inner sink
  std::atomic<uint64_t> emitted_{0};    // reservations attempted
  std::atomic<uint64_t> delivered_{0};  // inner OnPath calls
  std::atomic<bool> stopped_{false};
  std::atomic<bool> response_recorded_{false};
  std::atomic<double> response_ms_{-1.0};
};

/// The single branch fan-out sink adapter (DESIGN.md §8) — every
/// branch-parallel driver funnels its deliveries through one of its two
/// modes:
///
///  - kPerWorker: each worker wraps its *own* private inner sink
///    (ParallelDfsEnumerator's per-worker fan-in contract). Deliveries are
///    lock-free; an inner sink returning false stops only that worker, and
///    the union of the per-sink path sets is the result.
///  - kSerialized: every worker shares *one* adapter over one caller-owned
///    sink (the engines' contract). Deliveries serialize under the gate's
///    mutex, and the stop latch guarantees the inner sink is never called
///    again after it returns false (it may tear down on that signal).
///
/// In both modes OnPath returns false once the shared result limit is
/// reached, which the enumerators report as a sink stop; the fan-out
/// drivers rebuild the exact hit_result_limit/stopped_by_sink flags from
/// the gate in internal::FinishFanout.
class BranchSink : public PathSink {
 public:
  enum class Mode { kPerWorker, kSerialized };

  BranchSink(BranchGate& gate, PathSink& inner, Mode mode)
      : gate_(gate), inner_(inner), mode_(mode) {}

  bool OnPath(std::span<const VertexId> path) override;

 private:
  BranchGate& gate_;
  PathSink& inner_;
  const Mode mode_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_SINK_H_
