// Result consumers. Enumerators push each discovered path into a PathSink;
// the sink can stop the enumeration early by returning false.
#ifndef PATHENUM_CORE_SINK_H_
#define PATHENUM_CORE_SINK_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/common.h"

namespace pathenum {

/// Consumer interface for enumerated paths. `path` is the full vertex
/// sequence (source first, target last) and is only valid during the call.
class PathSink {
 public:
  virtual ~PathSink() = default;

  /// Returns false to stop the enumeration.
  virtual bool OnPath(std::span<const VertexId> path) = 0;
};

/// Counts results; never stops the enumeration.
class CountingSink : public PathSink {
 public:
  bool OnPath(std::span<const VertexId> path) override;

  uint64_t count() const { return count_; }
  /// Sum of path lengths (edges), handy for cheap result checksums.
  uint64_t total_length() const { return total_length_; }

 private:
  uint64_t count_ = 0;
  uint64_t total_length_ = 0;
};

/// Stores every result (up to `max_paths`); stops when full.
class CollectingSink : public PathSink {
 public:
  explicit CollectingSink(
      size_t max_paths = std::numeric_limits<size_t>::max())
      : max_paths_(max_paths) {}

  bool OnPath(std::span<const VertexId> path) override;

  const std::vector<std::vector<VertexId>>& paths() const { return paths_; }
  bool truncated() const { return truncated_; }

 private:
  size_t max_paths_;
  bool truncated_ = false;
  std::vector<std::vector<VertexId>> paths_;
};

/// Adapts a callable `bool(std::span<const VertexId>)` or
/// `void(std::span<const VertexId>)` into a sink.
class CallbackSink : public PathSink {
 public:
  explicit CallbackSink(std::function<bool(std::span<const VertexId>)> fn)
      : fn_(std::move(fn)) {}

  bool OnPath(std::span<const VertexId> path) override { return fn_(path); }

 private:
  std::function<bool(std::span<const VertexId>)> fn_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_SINK_H_
