// Result consumers. Enumerators push discovered paths into a PathSink —
// either one at a time (OnPath) or, on the hot paths, as delta-encoded
// blocks of hundreds of paths (OnBlock; DESIGN.md §9) so the virtual call
// and the consumer's bookkeeping amortize over the whole block. The sink
// can stop the enumeration early by returning false / signalling stop.
#ifndef PATHENUM_CORE_SINK_H_
#define PATHENUM_CORE_SINK_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/options.h"
#include "util/common.h"
#include "util/timer.h"

namespace pathenum {

/// A batch of enumerated paths with shared-prefix delta encoding
/// (DESIGN.md §9). Consecutive DFS paths share long prefixes, so each path
/// is stored as (common_prefix_len, suffix): the first path of a block is
/// all suffix, and every later entry only stores the vertices past its
/// common prefix with the path immediately before it. Storage is a fixed
/// inline arena — appending never allocates, and a block-emitting
/// enumerator reaches a zero-allocation steady state by construction.
///
/// Appending is either `AppendDelta` (the caller already knows the shared
/// prefix — the DFS tracks it as its stack diverges) or `Append` (the block
/// compares against the previous path itself — the join's emit path). The
/// two must not be mixed within one block: Append relies on the previous
/// path retained by Append alone. An optional `translate` array maps the
/// appended ids (index slots) to vertex ids as the suffix is copied in, so
/// each emitted vertex is translated exactly once per block instead of once
/// per path it appears on.
class PathBlock {
 public:
  struct Entry {
    uint16_t prefix_len;  // vertices shared with the previous path
    uint16_t suffix_len;  // vertices stored in the suffix buffer
  };

  /// Capacity: blocks flush at 256 paths (or earlier when the suffix
  /// buffer cannot fit another worst-case path), which amortizes the
  /// virtual dispatch ~256x while keeping the inline arena ~32 KiB.
  static constexpr uint32_t kMaxPaths = 256;
  static constexpr uint32_t kMaxVerts = kMaxPaths * (kMaxHops + 1);

  uint32_t size() const { return num_paths_; }
  bool empty() const { return num_paths_ == 0; }

  /// Sum of the lengths (in vertices) of the paths currently held; lets
  /// counting consumers do O(1) per-block work.
  uint64_t total_path_vertices() const { return total_path_verts_; }

  bool HasRoomFor(uint32_t path_len) const {
    return num_paths_ < kMaxPaths && num_verts_ + path_len <= kMaxVerts;
  }

  /// Appends a path of `prefix_len + suffix_len` vertices whose first
  /// `prefix_len` vertices equal the previously appended path's. The first
  /// append of a block must pass prefix_len 0. With `translate` non-null,
  /// suffix ids are mapped through it (slot -> vertex id) as they are
  /// copied.
  void AppendDelta(uint32_t prefix_len, const uint32_t* suffix,
                   uint32_t suffix_len, const VertexId* translate = nullptr) {
    assert(prefix_len + suffix_len <= kMaxHops + 1);
    assert(prefix_len <= last_len_);
    assert(HasRoomFor(prefix_len + suffix_len));
    VertexId* dst = verts_ + num_verts_;
    if (translate != nullptr) {
      for (uint32_t i = 0; i < suffix_len; ++i) dst[i] = translate[suffix[i]];
    } else {
      for (uint32_t i = 0; i < suffix_len; ++i) dst[i] = suffix[i];
    }
    entries_[num_paths_++] = {static_cast<uint16_t>(prefix_len),
                              static_cast<uint16_t>(suffix_len)};
    num_verts_ += suffix_len;
    total_path_verts_ += prefix_len + suffix_len;
    last_len_ = prefix_len + suffix_len;
  }

  /// Appends a full path, computing the shared prefix against the
  /// previously Append-ed path itself.
  void Append(std::span<const uint32_t> path,
              const VertexId* translate = nullptr) {
    const uint32_t len = static_cast<uint32_t>(path.size());
    uint32_t prefix = 0;
    const uint32_t bound = len < last_len_ ? len : last_len_;
    while (prefix < bound && last_path_[prefix] == path[prefix]) ++prefix;
    AppendDelta(prefix, path.data() + prefix, len - prefix, translate);
    // Retain the raw (untranslated) path: the next Append compares in the
    // caller's id space.
    for (uint32_t i = prefix; i < len; ++i) last_path_[i] = path[i];
  }

  void Clear() {
    num_paths_ = 0;
    num_verts_ = 0;
    last_len_ = 0;
    total_path_verts_ = 0;
  }

 private:
  friend struct PathBlockView;

  uint32_t num_paths_ = 0;
  uint32_t num_verts_ = 0;
  uint32_t last_len_ = 0;  // length of the previously appended path
  uint64_t total_path_verts_ = 0;
  Entry entries_[kMaxPaths];
  VertexId verts_[kMaxVerts];
  uint32_t last_path_[kMaxHops + 1];  // previous Append()-ed path, raw ids
};

/// Read-only view of a PathBlock handed to sinks. `Prefix(n)` narrows the
/// view to the first n paths (delta entries are cumulative, so a prefix of
/// the entries plus the shared suffix buffer is always self-contained).
struct PathBlockView {
  const PathBlock::Entry* entries = nullptr;
  const VertexId* verts = nullptr;
  uint32_t count = 0;
  uint64_t total_path_vertices = 0;

  explicit PathBlockView(const PathBlock& b)
      : entries(b.entries_),
        verts(b.verts_),
        count(b.num_paths_),
        total_path_vertices(b.total_path_verts_) {}

  PathBlockView(const PathBlock::Entry* e, const VertexId* v, uint32_t n,
                uint64_t total)
      : entries(e), verts(v), count(n), total_path_vertices(total) {}

  PathBlockView Prefix(uint32_t n) const {
    if (n >= count) return *this;
    uint64_t total = 0;
    for (uint32_t i = 0; i < n; ++i) {
      total += entries[i].prefix_len + entries[i].suffix_len;
    }
    return {entries, verts, n, total};
  }
};

/// Consumer interface for enumerated paths. `path` spans handed to OnPath
/// (and the decoded paths of a block) are the full vertex sequence (source
/// first, target last) and are only valid during the call.
class PathSink {
 public:
  /// Outcome of one block delivery: how many of the block's paths were
  /// consumed (including the path the sink refused on, mirroring the
  /// OnPath contract where a refused path was still delivered), and
  /// whether the producer must stop. `consumed < block.count` implies
  /// stop.
  struct BlockResult {
    uint64_t consumed = 0;
    bool stop = false;
  };

  virtual ~PathSink() = default;

  /// Returns false to stop the enumeration. Once a sink returns false it
  /// is never called again for that enumeration.
  virtual bool OnPath(std::span<const VertexId> path) = 0;

  /// Block protocol (DESIGN.md §9): the hot-path enumerators deliver paths
  /// in delta-encoded blocks. The default decodes the block and forwards
  /// per-path through OnPath, so OnPath-only sinks keep exact per-path
  /// semantics; override to amortize the work over the whole block.
  virtual BlockResult OnBlock(const PathBlockView& block);
};

/// Decodes `block` path by path into an inline buffer and calls
/// `fn(std::span<const VertexId>)` for each; `fn` returns false to stop.
/// Returns the delivered count / stop flag under the BlockResult contract.
template <typename Fn>
PathSink::BlockResult ForEachPathInBlock(const PathBlockView& block, Fn&& fn) {
  VertexId buf[kMaxHops + 1];
  const VertexId* suffix = block.verts;
  for (uint32_t i = 0; i < block.count; ++i) {
    const PathBlock::Entry e = block.entries[i];
    for (uint32_t j = 0; j < e.suffix_len; ++j) {
      buf[e.prefix_len + j] = suffix[j];
    }
    suffix += e.suffix_len;
    if (!fn(std::span<const VertexId>(
            buf, static_cast<size_t>(e.prefix_len) + e.suffix_len))) {
      return {i + 1, true};
    }
  }
  return {block.count, false};
}

/// Counts results; never stops the enumeration.
class CountingSink : public PathSink {
 public:
  bool OnPath(std::span<const VertexId> path) override;
  /// O(1) per block: the block carries its path count and vertex total.
  BlockResult OnBlock(const PathBlockView& block) override;

  uint64_t count() const { return count_; }
  /// Sum of path lengths (edges), handy for cheap result checksums.
  uint64_t total_length() const { return total_length_; }

 private:
  uint64_t count_ = 0;
  uint64_t total_length_ = 0;
};

/// Stores every result (up to `max_paths`); stops when full.
class CollectingSink : public PathSink {
 public:
  explicit CollectingSink(
      size_t max_paths = std::numeric_limits<size_t>::max())
      : max_paths_(max_paths) {}

  bool OnPath(std::span<const VertexId> path) override;
  BlockResult OnBlock(const PathBlockView& block) override;

  const std::vector<std::vector<VertexId>>& paths() const { return paths_; }
  bool truncated() const { return truncated_; }

 private:
  size_t max_paths_;
  bool truncated_ = false;
  std::vector<std::vector<VertexId>> paths_;
};

/// Adapts a callable `bool(std::span<const VertexId>)` or
/// `void(std::span<const VertexId>)` into a sink.
class CallbackSink : public PathSink {
 public:
  explicit CallbackSink(std::function<bool(std::span<const VertexId>)> fn)
      : fn_(std::move(fn)) {}

  bool OnPath(std::span<const VertexId> path) override { return fn_(path); }

 private:
  std::function<bool(std::span<const VertexId>)> fn_;
};

/// The shared flush engine of the block-emitting enumerators (DFS and
/// join): owns the pending PathBlock, hands it to the sink, and folds the
/// delivery outcome into the run's counters — delivered results, the
/// response-target timestamp (recorded at block granularity), and the
/// stopped_by_sink / hit_result_limit flags with exactly the per-path
/// precedence (a sink stop beats a simultaneous limit hit).
class BlockEmitter {
 public:
  /// Re-arms for a new run. `counters` and `timer` must outlive the run.
  void Arm(PathSink* sink, EnumCounters* counters, const Timer* timer,
           uint64_t result_limit, uint64_t response_target) {
    sink_ = sink;
    counters_ = counters;
    timer_ = timer;
    result_limit_ = result_limit;
    response_target_ = response_target;
    block_.Clear();
  }

  PathBlock& block() { return block_; }

  /// Results found so far: delivered plus pending in the block.
  uint64_t found() const { return counters_->num_results + block_.size(); }

  bool AtResultLimit() const { return found() >= result_limit_; }

  /// Delivers the pending block (no-op when empty). Returns false when the
  /// enumeration must stop — the sink refused, or the result limit is
  /// reached — with the matching counter flag set.
  bool Flush();

 private:
  PathBlock block_;
  PathSink* sink_ = nullptr;
  EnumCounters* counters_ = nullptr;
  const Timer* timer_ = nullptr;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
};

/// Cross-thread accounting shared by every branch unit of one fanned-out
/// enumeration (DESIGN.md §8). The gate owns the query-wide state the
/// branch drivers must agree on: the result-limit reservation counter, the
/// response-target record, the count of paths actually handed to inner
/// sinks, and the stop latch. Exactly one gate exists per fanned-out query;
/// the BranchSink adapters below share it.
///
/// Delivery is reservation-based, so `delivered()` is structurally capped
/// at `result_limit`: paths are only handed to an inner sink after winning
/// a reservation, and each reservation is delivered at most once. With
/// block emission a whole block reserves at once (`n..n+count`), is
/// truncated to the granted share, and the grant is delivered in one inner
/// OnBlock call — limit accounting at block granularity. A caller merging
/// several fan-out phases (e.g. the split IDX-JOIN's halves meeting at
/// their barrier) therefore can never observe limit + 1 — the double-count
/// regression pinned by sink_test.
class BranchGate {
 public:
  /// `timer` is the enumeration stopwatch response_ms is measured against;
  /// it must outlive the gate.
  BranchGate(uint64_t result_limit, uint64_t response_target,
             const Timer& timer)
      : limit_(result_limit),
        response_target_(response_target),
        timer_(timer) {}

  BranchGate(const BranchGate&) = delete;
  BranchGate& operator=(const BranchGate&) = delete;

  /// Paths handed to inner sinks so far (never exceeds result_limit).
  uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Elapsed ms at the reservation that crossed response_target; negative
  /// if the target was never reached.
  double response_ms() const {
    return response_ms_.load(std::memory_order_relaxed);
  }

  /// True once the latch tripped: a serialized inner sink refused a path,
  /// or Stop() was called.
  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }

  /// External cancel (the per-ticket stop latch of the async engine): no
  /// further path passes through any adapter on this gate.
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

 private:
  friend class BranchSink;

  const uint64_t limit_;
  const uint64_t response_target_;
  const Timer& timer_;
  std::mutex mutex_;  // serializes a kSerialized inner sink
  std::atomic<uint64_t> emitted_{0};    // reservations attempted
  std::atomic<uint64_t> delivered_{0};  // inner OnPath/OnBlock deliveries
  std::atomic<bool> stopped_{false};
  std::atomic<bool> response_recorded_{false};
  std::atomic<double> response_ms_{-1.0};
};

/// The single branch fan-out sink adapter (DESIGN.md §8) — every
/// branch-parallel driver funnels its deliveries through one of its two
/// modes:
///
///  - kPerWorker: each worker wraps its *own* private inner sink
///    (ParallelDfsEnumerator's per-worker fan-in contract). Deliveries are
///    lock-free; an inner sink returning false stops only that worker, and
///    the union of the per-sink path sets is the result.
///  - kSerialized: every worker shares *one* adapter over one caller-owned
///    sink (the engines' contract). Deliveries serialize under the gate's
///    mutex, and the stop latch guarantees the inner sink is never called
///    again after it returns false (it may tear down on that signal).
///
/// In both modes the adapter signals stop once the shared result limit is
/// reached, which the enumerators report as a sink stop; the fan-out
/// drivers rebuild the exact hit_result_limit/stopped_by_sink flags from
/// the gate in internal::FinishFanout. Blocks reserve, truncate to the
/// granted share, and deliver in one inner OnBlock call.
class BranchSink : public PathSink {
 public:
  enum class Mode { kPerWorker, kSerialized };

  BranchSink(BranchGate& gate, PathSink& inner, Mode mode)
      : gate_(gate), inner_(inner), mode_(mode) {}

  bool OnPath(std::span<const VertexId> path) override;
  BlockResult OnBlock(const PathBlockView& block) override;

 private:
  BranchGate& gate_;
  PathSink& inner_;
  const Mode mode_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_SINK_H_
