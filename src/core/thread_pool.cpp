#include "core/thread_pool.h"

#include <algorithm>
#include <string>

#include "util/common.h"

namespace pathenum {

ThreadPool::ThreadPool(uint32_t num_threads) {
  const uint32_t n =
      num_threads != 0 ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  // A mistyped worker count (e.g. a negative number pushed through a
  // uint32 cast) must fail with a diagnosable error, not an attempt to
  // spawn billions of threads.
  PATHENUM_CHECK_MSG(n <= kMaxWorkers, "implausible worker count");
  threads_.reserve(n);
  try {
    for (uint32_t w = 0; w < n; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  } catch (...) {
    // Spawn failed partway (resource exhaustion): join what started, or
    // their joinable destructors would terminate the process.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    throw;
  }
#if PATHENUM_OBS
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  const std::string label =
      "pool=\"" + std::to_string(reg.NextInstanceId()) + "\"";
  reg.RegisterCounter(this, "pathenum_pool_jobs_total", label, &jobs_run_);
  reg.RegisterGauge(this, "pathenum_pool_workers", label,
                    [this] { return static_cast<double>(num_workers()); });
#endif
}

ThreadPool::~ThreadPool() {
  Shutdown();
  obs::MetricRegistry::Global().UnregisterOwner(this);
}

void ThreadPool::Shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::RunOnAllWorkers(const std::function<void(uint32_t)>& job) {
  RunOnWorkers(num_workers(), job);
}

void ThreadPool::RunOnWorkers(uint32_t active,
                              const std::function<void(uint32_t)>& job) {
  jobs_run_.Inc();
  std::unique_lock<std::mutex> lock(mutex_);
  PATHENUM_CHECK_MSG(active_ == 0 && job_ == nullptr,
                     "ThreadPool::RunOnWorkers is not reentrant");
  job_ = &job;
  job_limit_ = active;
  first_error_ = nullptr;
  active_ = num_workers();
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return active_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::WorkerLoop(uint32_t worker_id) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    start_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    // A posted generation is honored even when shutdown raced in behind
    // it: skipping it here would leave active_ undecremented and deadlock
    // the RunOnWorkers caller. Shutdown only takes effect once no
    // generation is pending for this worker.
    if (generation_ == seen_generation) return;  // woken by shutdown alone
    seen_generation = generation_;
    const auto* job = job_;
    const bool participates = worker_id < job_limit_;
    lock.unlock();
    if (participates) {
      try {
        (*job)(worker_id);
      } catch (...) {
        lock.lock();
        if (!first_error_) first_error_ = std::current_exception();
        lock.unlock();
      }
    }
    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

}  // namespace pathenum
