#include "core/constraints.h"

namespace pathenum {

namespace {
constexpr uint64_t kCheckInterval = 8192;
}  // namespace

LabelAutomaton::LabelAutomaton(uint32_t num_states, uint32_t num_labels,
                               uint32_t start_state)
    : num_states_(num_states),
      num_labels_(num_labels),
      start_(start_state),
      delta_(static_cast<size_t>(num_states) * num_labels, kDead),
      accepting_(num_states, 0) {
  PATHENUM_CHECK(start_state < num_states);
}

void LabelAutomaton::AddTransition(uint32_t from, uint32_t label,
                                   uint32_t to) {
  PATHENUM_CHECK(from < num_states_ && to < num_states_ &&
                 label < num_labels_);
  delta_[from * num_labels_ + label] = to;
}

void LabelAutomaton::SetAccepting(uint32_t state, bool accepting) {
  PATHENUM_CHECK(state < num_states_);
  accepting_[state] = accepting ? 1 : 0;
}

LabelAutomaton LabelAutomaton::ExactSequence(std::span<const uint32_t> labels,
                                             uint32_t num_labels) {
  PATHENUM_CHECK(!labels.empty());
  LabelAutomaton a(static_cast<uint32_t>(labels.size()) + 1, num_labels, 0);
  for (uint32_t i = 0; i < labels.size(); ++i) {
    a.AddTransition(i, labels[i], i + 1);
  }
  a.SetAccepting(static_cast<uint32_t>(labels.size()));
  return a;
}

LabelAutomaton LabelAutomaton::AtLeastCount(uint32_t label,
                                            uint32_t min_count,
                                            uint32_t num_labels) {
  // States 0..min_count count occurrences of `label`, saturating at the
  // accepting state min_count; every other label self-loops.
  LabelAutomaton a(min_count + 1, num_labels, 0);
  for (uint32_t s = 0; s <= min_count; ++s) {
    for (uint32_t l = 0; l < num_labels; ++l) {
      const uint32_t to =
          (l == label && s < min_count) ? s + 1 : s;
      a.AddTransition(s, l, to);
    }
  }
  a.SetAccepting(min_count);
  return a;
}

ConstrainedJoinEnumerator::ConstrainedJoinEnumerator(
    const Graph& g, const LightweightIndex& index,
    const PathConstraints& constraints)
    : graph_(g), index_(index), constraints_(constraints) {
  PATHENUM_CHECK_MSG(index.has_edge_ids(),
                     "constrained enumeration needs an edge-id index build");
  if (constraints_.accumulative != nullptr) {
    PATHENUM_CHECK_MSG(g.has_weights(),
                       "accumulative constraint needs edge weights");
  }
  if (constraints_.automaton != nullptr) {
    PATHENUM_CHECK_MSG(g.has_labels(), "label automaton needs edge labels");
  }
}

EnumCounters ConstrainedJoinEnumerator::Run(uint32_t cut, PathSink& sink,
                                            const EnumOptions& opts) {
  const uint32_t k = index_.hops();
  PATHENUM_CHECK_MSG(cut >= 1 && cut < k, "cut position out of range");
  sink_ = &sink;
  counters_ = EnumCounters{};
  timer_.Reset();
  deadline_ = Deadline::AfterMs(opts.time_limit_ms);
  result_limit_ = opts.result_limit;
  response_target_ = opts.response_target;
  tuple_limit_ = opts.partial_memory_limit_bytes / (2 * sizeof(uint32_t));
  check_countdown_ = kCheckInterval;
  stop_ = false;

  const uint32_t s_slot = index_.source_slot();
  const uint32_t t_slot = index_.target_slot();
  if (s_slot == kInvalidSlot) return counters_;
  const AccumulativeConstraint* acc = constraints_.accumulative;

  const uint32_t left_width = cut + 1;
  std::vector<uint32_t> left;
  std::vector<double> left_values;
  Materialize(s_slot, 0, left_width, left, left_values);
  counters_.partials += left.size() / left_width;
  if (stop_) return counters_;

  const uint32_t n = index_.num_vertices();
  std::vector<uint8_t> is_key(n, 0);
  for (size_t off = cut; off < left.size(); off += left_width) {
    is_key[left[off]] = 1;
  }

  const uint32_t right_width = k - cut + 1;
  std::vector<uint32_t> right;
  std::vector<double> right_values;
  std::vector<std::pair<uint64_t, uint64_t>> group(n, {0, 0});
  for (uint32_t v = 0; v < n && !stop_; ++v) {
    if (!is_key[v]) continue;
    const uint64_t begin = right.size() / right_width;
    Materialize(v, cut, right_width, right, right_values);
    group[v] = {begin, right.size() / right_width};
  }
  counters_.partials += right.size() / right_width;
  if (stop_) return counters_;

  uint32_t joined[kMaxHops + 1];
  for (size_t l = 0; l < left.size() && !stop_; l += left_width) {
    const uint32_t key = left[l + cut];
    const auto [gb, ge] = group[key];
    for (uint64_t r = gb; r < ge; ++r) {
      if (ShouldStop()) break;
      const uint32_t* rt = right.data() + r * right_width;
      for (uint32_t i = 0; i <= cut; ++i) joined[i] = left[l + i];
      for (uint32_t i = 1; i < right_width; ++i) joined[cut + i] = rt[i];
      uint32_t end = 0;
      while (joined[end] != t_slot) ++end;
      bool valid = true;
      for (uint32_t i = 1; i <= end && valid; ++i) {
        for (uint32_t j = 0; j < i; ++j) {
          if (joined[i] == joined[j]) {
            valid = false;
            break;
          }
        }
      }
      if (!valid) {
        counters_.invalid_partials++;
        continue;
      }
      // Combine the halves' accumulated values (init is an identity, so
      // the combined fold equals the whole-path fold — commutativity and
      // associativity per the paper's requirement).
      if (acc != nullptr) {
        const double value = acc->combine(left_values[l / left_width],
                                          right_values[r]);
        if (!acc->accept(value)) {
          counters_.invalid_partials++;
          continue;
        }
      }
      for (uint32_t i = 0; i <= end; ++i) {
        path_buf_[i] = index_.VertexAt(joined[i]);
      }
      if (constraints_.automaton != nullptr &&
          !AutomatonAccepts(path_buf_, end + 1)) {
        counters_.invalid_partials++;
        continue;
      }
      counters_.num_results++;
      if (counters_.num_results == response_target_) {
        counters_.response_ms = timer_.ElapsedMs();
      }
      if (!sink_->OnPath({path_buf_, end + 1})) {
        counters_.stopped_by_sink = true;
        stop_ = true;
      } else if (counters_.num_results >= result_limit_) {
        counters_.hit_result_limit = true;
        stop_ = true;
      }
    }
  }
  return counters_;
}

bool ConstrainedJoinEnumerator::ShouldStop() {
  if (stop_) return true;
  if (check_countdown_-- == 0) {
    check_countdown_ = kCheckInterval;
    if (deadline_.Expired()) {
      counters_.timed_out = true;
      stop_ = true;
    }
  }
  return stop_;
}

bool ConstrainedJoinEnumerator::AutomatonAccepts(const VertexId* path,
                                                 uint32_t length) const {
  const LabelAutomaton& a = *constraints_.automaton;
  uint32_t state = a.start_state();
  for (uint32_t i = 1; i < length; ++i) {
    const EdgeId e = graph_.FindEdge(path[i - 1], path[i]);
    state = a.Next(state, graph_.EdgeLabel(e));
    if (state == LabelAutomaton::kDead) return false;
  }
  return a.IsAccepting(state);
}

void ConstrainedJoinEnumerator::Materialize(uint32_t start, uint32_t base,
                                            uint32_t len,
                                            std::vector<uint32_t>& out,
                                            std::vector<double>& values) {
  stack_[0] = start;
  const double init = constraints_.accumulative != nullptr
                          ? constraints_.accumulative->init
                          : 0.0;
  MaterializeStep(0, base, len, init, out, values);
}

void ConstrainedJoinEnumerator::MaterializeStep(uint32_t depth, uint32_t base,
                                                uint32_t len, double value,
                                                std::vector<uint32_t>& out,
                                                std::vector<double>& values) {
  if (depth + 1 == len) {
    if (out.size() >= tuple_limit_) {
      counters_.out_of_memory = true;
      stop_ = true;
      return;
    }
    out.insert(out.end(), stack_, stack_ + len);
    values.push_back(value);
    return;
  }
  const uint32_t k = index_.hops();
  const uint32_t t_slot = index_.target_slot();
  const auto nbrs =
      index_.OutSlotsWithin(stack_[depth], k - base - depth - 1);
  const auto edges =
      index_.OutEdgeIdsWithin(stack_[depth], k - base - depth - 1);
  counters_.edges_accessed += nbrs.size();
  for (size_t j = 0; j < nbrs.size(); ++j) {
    if (ShouldStop()) return;
    const uint32_t next = nbrs[j];
    if (next != t_slot) {
      bool in_path = false;
      for (uint32_t i = 0; i <= depth; ++i) {
        if (stack_[i] == next) {
          in_path = true;
          break;
        }
      }
      if (in_path) continue;
    }
    double next_value = value;
    if (constraints_.accumulative != nullptr &&
        edges[j] != kInvalidEdge) {  // padding edges contribute nothing
      next_value = constraints_.accumulative->combine(
          value, graph_.EdgeWeight(edges[j]));
      if (constraints_.accumulative->prune &&
          constraints_.accumulative->prune(next_value)) {
        continue;
      }
    }
    stack_[depth + 1] = next;
    MaterializeStep(depth + 1, base, len, next_value, out, values);
  }
}

ConstrainedDfsEnumerator::ConstrainedDfsEnumerator(
    const Graph& g, const LightweightIndex& index,
    const PathConstraints& constraints)
    : graph_(g), index_(index), constraints_(constraints) {
  PATHENUM_CHECK_MSG(index.has_edge_ids(),
                     "constrained enumeration needs an edge-id index build");
  if (constraints_.accumulative != nullptr) {
    PATHENUM_CHECK_MSG(g.has_weights(),
                       "accumulative constraint needs edge weights");
  }
  if (constraints_.automaton != nullptr) {
    PATHENUM_CHECK_MSG(g.has_labels(),
                       "label automaton needs edge labels");
  }
}

EnumCounters ConstrainedDfsEnumerator::Run(PathSink& sink,
                                           const EnumOptions& opts) {
  sink_ = &sink;
  counters_ = EnumCounters{};
  timer_.Reset();
  deadline_ = Deadline::AfterMs(opts.time_limit_ms);
  result_limit_ = opts.result_limit;
  response_target_ = opts.response_target;
  check_countdown_ = kCheckInterval;
  stop_ = false;

  const uint32_t s_slot = index_.source_slot();
  if (s_slot == kInvalidSlot) return counters_;
  stack_[0] = s_slot;
  counters_.partials = 1;
  const double init_value = constraints_.accumulative != nullptr
                                ? constraints_.accumulative->init
                                : 0.0;
  const uint32_t init_state = constraints_.automaton != nullptr
                                  ? constraints_.automaton->start_state()
                                  : 0;
  const uint64_t found = Search(s_slot, 0, init_value, init_state);
  if (found == 0) counters_.invalid_partials += 1;
  return counters_;
}

bool ConstrainedDfsEnumerator::ShouldStop() {
  if (stop_) return true;
  if (check_countdown_-- == 0) {
    check_countdown_ = kCheckInterval;
    if (deadline_.Expired()) {
      counters_.timed_out = true;
      stop_ = true;
    }
  }
  return stop_;
}

uint64_t ConstrainedDfsEnumerator::Search(uint32_t slot, uint32_t depth,
                                          double value, uint32_t state) {
  if (slot == index_.target_slot()) {
    // Alg. 7 line 6 / Alg. 8 line 6: accept only if the accumulated value
    // and the automaton state pass.
    if (constraints_.accumulative != nullptr &&
        !constraints_.accumulative->accept(value)) {
      return 0;
    }
    if (constraints_.automaton != nullptr &&
        !constraints_.automaton->IsAccepting(state)) {
      return 0;
    }
    for (uint32_t i = 0; i <= depth; ++i) {
      path_buf_[i] = index_.VertexAt(stack_[i]);
    }
    counters_.num_results++;
    if (counters_.num_results == response_target_) {
      counters_.response_ms = timer_.ElapsedMs();
    }
    if (!sink_->OnPath({path_buf_, depth + 1})) {
      counters_.stopped_by_sink = true;
      stop_ = true;
    } else if (counters_.num_results >= result_limit_) {
      counters_.hit_result_limit = true;
      stop_ = true;
    }
    return 1;
  }
  const uint32_t k = index_.hops();
  const auto nbrs = index_.OutSlotsWithin(slot, k - depth - 1);
  const auto edges = index_.OutEdgeIdsWithin(slot, k - depth - 1);
  counters_.edges_accessed += nbrs.size();
  uint64_t found = 0;
  for (size_t j = 0; j < nbrs.size(); ++j) {
    if (ShouldStop()) break;
    const uint32_t next = nbrs[j];
    bool in_path = false;
    for (uint32_t i = 0; i <= depth; ++i) {
      if (stack_[i] == next) {
        in_path = true;
        break;
      }
    }
    if (in_path) continue;

    const EdgeId e = edges[j];
    double next_value = value;
    if (constraints_.accumulative != nullptr) {
      next_value = constraints_.accumulative->combine(
          value, graph_.EdgeWeight(e));
      // Alg. 7's optional monotone pruning.
      if (constraints_.accumulative->prune &&
          constraints_.accumulative->prune(next_value)) {
        continue;
      }
    }
    uint32_t next_state = state;
    if (constraints_.automaton != nullptr) {
      next_state = constraints_.automaton->Next(state, graph_.EdgeLabel(e));
      if (next_state == LabelAutomaton::kDead) continue;  // Alg. 8 line 9
    }
    stack_[depth + 1] = next;
    counters_.partials++;
    const uint64_t sub = Search(next, depth + 1, next_value, next_state);
    if (sub == 0) counters_.invalid_partials++;
    found += sub;
  }
  return found;
}

}  // namespace pathenum
