#include "core/join_enumerator.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/fault_injection.h"

namespace pathenum {

namespace {
constexpr uint64_t kCheckInterval = 8192;
/// Control poll cadence at full-tuple granularity (one tuple is far more
/// work than one search step): a deadline or cancel lands within this many
/// materialized tuples. One clock read per 64 tuples is noise.
constexpr uint64_t kTupleCheckInterval = 64;
}  // namespace

EnumCounters JoinEnumerator::Run(uint32_t cut, PathSink& sink,
                                 const EnumOptions& opts) {
  PATHENUM_CHECK_MSG(index_ != nullptr, "enumerator not bound to an index");
  return Run(*index_, cut, sink, opts);
}

void JoinEnumerator::Prepare(const LightweightIndex& index,
                             const EnumOptions& opts) {
  // stack_ holds one slot per tuple position; a full-width tuple has at
  // most k + 1 of them.
  static_assert(sizeof(stack_) / sizeof(stack_[0]) == kMaxHops + 1);
  assert(index.hops() <= kMaxHops);
  index_ = &index;
  counters_ = EnumCounters{};
  timer_.Reset();
  deadline_ = Deadline::AfterMs(opts.time_limit_ms);
  cancel_ = opts.cancel.flag();
  work_budget_ = opts.work_budget_edges;
  // Each half may use half the budget (tuples are uint32 slots).
  tuple_limit_ = opts.partial_memory_limit_bytes / (2 * sizeof(uint32_t));
  shared_used_ = nullptr;
  shared_cap_ = 0;
  check_countdown_ = kCheckInterval;
  tuple_check_countdown_ = kTupleCheckInterval;
  stop_ = false;
  if (on_path_.size() < index.num_vertices()) {
    on_path_.resize(index.num_vertices(), 0);
  }
}

EnumCounters JoinEnumerator::Run(const LightweightIndex& index, uint32_t cut,
                                 PathSink& sink, const EnumOptions& opts) {
  const uint32_t k = index.hops();
  PATHENUM_CHECK_MSG(cut >= 1 && cut < k, "cut position out of range");
  Prepare(index, opts);
  emitter_.Arm(&sink, &counters_, &timer_, opts.result_limit,
               opts.response_target);

  const uint32_t n = index.num_vertices();
  left_.clear();
  right_.clear();
  if (arena_ != nullptr) {
    is_key_ = arena_->AllocateSpan<uint8_t>(n);
    group_ = arena_->AllocateSpan<GroupRange>(n);
  } else {
    if (is_key_store_.size() < n) is_key_store_.resize(n);
    if (group_store_.size() < n) group_store_.resize(n);
    is_key_ = {is_key_store_.data(), n};
    group_ = {group_store_.data(), n};
  }
  std::memset(is_key_.data(), 0, is_key_.size());
  std::fill(group_.begin(), group_.end(), GroupRange{});

  const uint32_t s_slot = index.source_slot();
  if (s_slot == kInvalidSlot) return counters_;

  // --- Evaluate Q[0:cut]: tuples of cut+1 slots starting at s (line 2). --
  const uint32_t left_width = cut + 1;
  Materialize(s_slot, /*base=*/0, left_width, left_);
  counters_.partials += left_.size() / left_width;
  if (stop_) {
    // This query's footprint is the materialized sizes, not the pooled
    // buffers' retained capacity (which carries the heaviest query this
    // enumerator ever served).
    counters_.peak_partial_bytes = left_.size() * sizeof(uint32_t);
    return counters_;
  }

  // --- Collect the join keys C = { r[cut] : r in R_a } (line 3). ---------
  for (size_t off = cut; off < left_.size(); off += left_width) {
    is_key_[left_[off]] = 1;
  }

  // --- Evaluate Q[cut:k] grouped by starting vertex (lines 4-5). ---------
  const uint32_t right_width = k - cut + 1;
  for (uint32_t v = 0; v < n && !stop_; ++v) {
    if (!is_key_[v]) continue;
    const uint64_t begin = right_.size() / right_width;
    Materialize(v, /*base=*/cut, right_width, right_);
    group_[v] = {begin, right_.size() / right_width};
  }
  counters_.partials += right_.size() / right_width;
  counters_.peak_partial_bytes = (left_.size() + right_.size()) *
                                     sizeof(uint32_t) +
                                 is_key_.size_bytes() + group_.size_bytes();
  if (stop_) return counters_;

  // --- Hash join R_a ⋈ R_b and validate (lines 6-8). ---------------------
  for (size_t l = 0; l < left_.size() && !stop_; l += left_width) {
    const uint32_t key = left_[l + cut];
    const auto [gb, ge] = group_[key];
    for (uint64_t r = gb; r < ge; ++r) {
      if (ShouldStop()) break;
      JoinPair(left_.data() + l, cut, right_.data() + r * right_width,
               right_width);
    }
  }
  // Deliver the pending tail block (covers the timeout path, too: every
  // joined path found before the deadline still reaches the sink).
  emitter_.Flush();
  return counters_;
}

void JoinEnumerator::JoinPair(const uint32_t* left_tuple, uint32_t cut,
                              const uint32_t* right_tuple,
                              uint32_t right_width) {
  const uint32_t t_slot = index_->target_slot();
  uint32_t joined[kMaxHops + 1];
  // Compose the padded walk: left tuple + right tuple minus join key.
  for (uint32_t i = 0; i <= cut; ++i) joined[i] = left_tuple[i];
  for (uint32_t i = 1; i < right_width; ++i) joined[cut + i] = right_tuple[i];
  // De-pad: everything after the first t is padding by construction.
  uint32_t end = 0;
  while (joined[end] != t_slot) ++end;
  // Validity: a simple path has pairwise-distinct vertices.
  for (uint32_t i = 1; i <= end; ++i) {
    for (uint32_t j = 0; j < i; ++j) {
      if (joined[i] == joined[j]) {
        counters_.invalid_partials++;
        return;
      }
    }
  }
  Emit({joined, end + 1});
}

EnumCounters JoinEnumerator::MaterializeUnit(const LightweightIndex& index,
                                             uint32_t start, uint32_t base,
                                             uint32_t len,
                                             std::vector<uint32_t>& out,
                                             const EnumOptions& opts,
                                             std::atomic<size_t>* shared_used,
                                             size_t shared_cap) {
  Prepare(index, opts);  // materialization never emits (emitter stays unarmed)
  shared_used_ = shared_used;
  shared_cap_ = shared_cap;
  const size_t before = out.size();
  Materialize(start, base, len, out);
  shared_used_ = nullptr;
  counters_.partials += (out.size() - before) / len;
  counters_.peak_partial_bytes = (out.size() - before) * sizeof(uint32_t);
  return counters_;
}

EnumCounters JoinEnumerator::ProbeUnit(const LightweightIndex& index,
                                       uint32_t cut,
                                       std::span<const uint32_t> left,
                                       size_t tuple_begin, size_t tuple_end,
                                       std::span<const JoinGroup> groups,
                                       PathSink& sink,
                                       const EnumOptions& opts) {
  const uint32_t k = index.hops();
  PATHENUM_CHECK_MSG(cut >= 1 && cut < k, "cut position out of range");
  Prepare(index, opts);
  emitter_.Arm(&sink, &counters_, &timer_, opts.result_limit,
               opts.response_target);
  const uint32_t left_width = cut + 1;
  const uint32_t right_width = k - cut + 1;
  for (size_t l = tuple_begin; l < tuple_end && !stop_; ++l) {
    const uint32_t* lt = left.data() + l * left_width;
    const JoinGroup& group = groups[lt[cut]];
    for (uint64_t r = 0; r < group.count; ++r) {
      if (ShouldStop()) break;
      JoinPair(lt, cut, group.tuples + r * right_width, right_width);
    }
  }
  emitter_.Flush();
  return counters_;
}

size_t JoinEnumerator::ScratchBytes() const {
  return VectorBytes(left_) + VectorBytes(right_) + VectorBytes(is_key_store_) +
         VectorBytes(group_store_) + VectorBytes(on_path_);
}

bool JoinEnumerator::ShouldStop() {
  if (stop_) return true;
  if (check_countdown_-- == 0) {
    check_countdown_ = kCheckInterval;
    CheckControl();
  }
  return stop_;
}

void JoinEnumerator::CheckControl() {
  // Precedence mirrors EnumCounters::TerminalState (cancel > deadline >
  // work budget).
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    counters_.cancelled = true;
    stop_ = true;
  } else if (deadline_.Expired()) {
    counters_.timed_out = true;
    stop_ = true;
  } else if (counters_.edges_accessed >= work_budget_) {
    counters_.work_exceeded = true;
    stop_ = true;
  }
}

void JoinEnumerator::Emit(std::span<const uint32_t> slot_path) {
  PathBlock& block = emitter_.block();
  if (!block.HasRoomFor(static_cast<uint32_t>(slot_path.size()))) {
    if (!emitter_.Flush()) {
      stop_ = true;  // sink stop / limit at block granularity: drop & stop
      return;
    }
    // Block-emission-granularity cancellation poll (see DfsEnumerator).
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      counters_.cancelled = true;
      stop_ = true;
      return;
    }
  }
  block.Append(slot_path, index_->slot_to_vertex());
  if (emitter_.AtResultLimit()) {
    emitter_.Flush();  // sets hit_result_limit (or stopped_by_sink first)
    stop_ = true;
  }
}

void JoinEnumerator::Materialize(uint32_t start, uint32_t base, uint32_t len,
                                 std::vector<uint32_t>& out) {
  // One epoch per half-query DFS: clears every on-path mark in O(1). The
  // padding vertex t is never marked (its self-loop must repeat freely).
  if (++epoch_ == 0) {
    std::fill(on_path_.begin(), on_path_.end(), 0);
    epoch_ = 1;
  }
  if (start != index_->target_slot()) on_path_[start] = epoch_;
  stack_[0] = start;
  MaterializeStep(0, base, len, out);
}

void JoinEnumerator::MaterializeStep(uint32_t depth, uint32_t base,
                                     uint32_t len,
                                     std::vector<uint32_t>& out) {
  // Line 10 of Alg. 6: a full-width tuple is materialized.
  if (depth + 1 == len) {
    fault::Hit(fault::Site::kJoinMaterialize);
    if (--tuple_check_countdown_ == 0) {
      tuple_check_countdown_ = kTupleCheckInterval;
      CheckControl();
      if (stop_) return;
    }
    if (out.size() >= tuple_limit_ ||
        (shared_used_ != nullptr &&
         shared_used_->fetch_add(len, std::memory_order_relaxed) + len >
             shared_cap_)) {
      counters_.out_of_memory = true;
      stop_ = true;
      return;
    }
    out.insert(out.end(), stack_, stack_ + len);
    return;
  }
  const uint32_t k = index_->hops();
  const uint32_t t_slot = index_->target_slot();
  // Lines 11-13: extend with I_t(v, k - base - L(M) - 1); `base` shifts the
  // budget for the right half, which starts at query position i*.
  const auto nbrs =
      index_->OutSlotsWithin(stack_[depth], k - base - depth - 1);
  counters_.edges_accessed += nbrs.size();
  for (const uint32_t next : nbrs) {
    if (ShouldStop()) return;
    if (next != t_slot) {
      // Duplicate non-t vertices can never survive the validity check;
      // reject them inside the half via the O(1) epoch mark (the t
      // self-entry is the padding and may repeat).
      if (on_path_[next] == epoch_) continue;
      on_path_[next] = epoch_;
    }
    stack_[depth + 1] = next;
    MaterializeStep(depth + 1, base, len, out);
    if (next != t_slot) on_path_[next] = 0;
  }
}

}  // namespace pathenum
