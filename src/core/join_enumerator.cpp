#include "core/join_enumerator.h"

#include <algorithm>

#include "util/memory.h"

namespace pathenum {

namespace {
constexpr uint64_t kCheckInterval = 8192;
}  // namespace

EnumCounters JoinEnumerator::Run(uint32_t cut, PathSink& sink,
                                 const EnumOptions& opts) {
  const uint32_t k = index_.hops();
  PATHENUM_CHECK_MSG(cut >= 1 && cut < k, "cut position out of range");
  sink_ = &sink;
  counters_ = EnumCounters{};
  timer_.Reset();
  deadline_ = Deadline::AfterMs(opts.time_limit_ms);
  result_limit_ = opts.result_limit;
  response_target_ = opts.response_target;
  // Each half may use half the budget (tuples are uint32 slots).
  tuple_limit_ = opts.partial_memory_limit_bytes / (2 * sizeof(uint32_t));
  check_countdown_ = kCheckInterval;
  stop_ = false;

  const uint32_t s_slot = index_.source_slot();
  const uint32_t t_slot = index_.target_slot();
  if (s_slot == kInvalidSlot) return counters_;

  // --- Evaluate Q[0:cut]: tuples of cut+1 slots starting at s (line 2). --
  const uint32_t left_width = cut + 1;
  std::vector<uint32_t> left;
  Materialize(s_slot, /*base=*/0, left_width, left);
  counters_.partials += left.size() / left_width;
  if (stop_) {
    counters_.peak_partial_bytes = VectorBytes(left);
    return counters_;
  }

  // --- Collect the join keys C = { r[cut] : r in R_a } (line 3). ---------
  const uint32_t n = index_.num_vertices();
  std::vector<uint8_t> is_key(n, 0);
  for (size_t off = cut; off < left.size(); off += left_width) {
    is_key[left[off]] = 1;
  }

  // --- Evaluate Q[cut:k] grouped by starting vertex (lines 4-5). ---------
  const uint32_t right_width = k - cut + 1;
  std::vector<uint32_t> right;
  // Group ranges over `right`, in tuple units, indexed by starting slot.
  std::vector<std::pair<uint64_t, uint64_t>> group(n, {0, 0});
  for (uint32_t v = 0; v < n && !stop_; ++v) {
    if (!is_key[v]) continue;
    const uint64_t begin = right.size() / right_width;
    Materialize(v, /*base=*/cut, right_width, right);
    group[v] = {begin, right.size() / right_width};
  }
  counters_.partials += right.size() / right_width;
  counters_.peak_partial_bytes = VectorBytes(left) + VectorBytes(right) +
                                 VectorBytes(is_key) + VectorBytes(group);
  if (stop_) return counters_;

  // --- Hash join R_a ⋈ R_b and validate (lines 6-8). ---------------------
  uint32_t joined[kMaxHops + 1];
  for (size_t l = 0; l < left.size() && !stop_; l += left_width) {
    const uint32_t key = left[l + cut];
    const auto [gb, ge] = group[key];
    for (uint64_t r = gb; r < ge; ++r) {
      if (ShouldStop()) break;
      const uint32_t* rt = right.data() + r * right_width;
      // Compose the padded walk: left tuple + right tuple minus join key.
      for (uint32_t i = 0; i <= cut; ++i) joined[i] = left[l + i];
      for (uint32_t i = 1; i < right_width; ++i) joined[cut + i] = rt[i];
      // De-pad: everything after the first t is padding by construction.
      uint32_t end = 0;
      while (joined[end] != t_slot) ++end;
      // Validity: a simple path has pairwise-distinct vertices.
      bool valid = true;
      for (uint32_t i = 1; i <= end && valid; ++i) {
        for (uint32_t j = 0; j < i; ++j) {
          if (joined[i] == joined[j]) {
            valid = false;
            break;
          }
        }
      }
      if (!valid) {
        counters_.invalid_partials++;
        continue;
      }
      for (uint32_t i = 0; i <= end; ++i) {
        path_buf_[i] = index_.VertexAt(joined[i]);
      }
      Emit({path_buf_, end + 1});
    }
  }
  return counters_;
}

bool JoinEnumerator::ShouldStop() {
  if (stop_) return true;
  if (check_countdown_-- == 0) {
    check_countdown_ = kCheckInterval;
    if (deadline_.Expired()) {
      counters_.timed_out = true;
      stop_ = true;
    }
  }
  return stop_;
}

void JoinEnumerator::Emit(std::span<const VertexId> path) {
  counters_.num_results++;
  if (counters_.num_results == response_target_) {
    counters_.response_ms = timer_.ElapsedMs();
  }
  if (!sink_->OnPath(path)) {
    counters_.stopped_by_sink = true;
    stop_ = true;
  } else if (counters_.num_results >= result_limit_) {
    counters_.hit_result_limit = true;
    stop_ = true;
  }
}

void JoinEnumerator::Materialize(uint32_t start, uint32_t base, uint32_t len,
                                 std::vector<uint32_t>& out) {
  stack_[0] = start;
  MaterializeStep(0, base, len, out);
}

void JoinEnumerator::MaterializeStep(uint32_t depth, uint32_t base,
                                     uint32_t len,
                                     std::vector<uint32_t>& out) {
  // Line 10 of Alg. 6: a full-width tuple is materialized.
  if (depth + 1 == len) {
    if (out.size() >= tuple_limit_) {
      counters_.out_of_memory = true;
      stop_ = true;
      return;
    }
    out.insert(out.end(), stack_, stack_ + len);
    return;
  }
  const uint32_t k = index_.hops();
  const uint32_t t_slot = index_.target_slot();
  // Lines 11-13: extend with I_t(v, k - base - L(M) - 1); `base` shifts the
  // budget for the right half, which starts at query position i*.
  const auto nbrs =
      index_.OutSlotsWithin(stack_[depth], k - base - depth - 1);
  counters_.edges_accessed += nbrs.size();
  for (const uint32_t next : nbrs) {
    if (ShouldStop()) return;
    if (next != t_slot) {
      // Duplicate non-t vertices can never survive the validity check;
      // reject them inside the half (the t self-entry is the padding).
      bool in_path = false;
      for (uint32_t i = 0; i <= depth; ++i) {
        if (stack_[i] == next) {
          in_path = true;
          break;
        }
      }
      if (in_path) continue;
    }
    stack_[depth + 1] = next;
    MaterializeStep(depth + 1, base, len, out);
  }
}

}  // namespace pathenum
