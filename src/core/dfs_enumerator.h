// IDX-DFS (paper Algorithm 4): depth-first enumeration on the light-weight
// index. At a partial result M ending at v with L(M) edges, the only
// neighbors considered are I_t(v, k - L(M) - 1) — an O(1) span from the
// index — so each step needs neither a distance check nor dynamic pruning.
#ifndef PATHENUM_CORE_DFS_ENUMERATOR_H_
#define PATHENUM_CORE_DFS_ENUMERATOR_H_

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "util/timer.h"

namespace pathenum {

/// Index-based DFS enumerator. Stateless between runs; reuse freely.
class DfsEnumerator {
 public:
  explicit DfsEnumerator(const LightweightIndex& index) : index_(index) {}

  /// Enumerates all paths into `sink` honoring limits in `opts`.
  /// `counters.response_ms` is relative to this call's start.
  EnumCounters Run(PathSink& sink, const EnumOptions& opts = {});

  /// Enumerates only the paths whose first edge is s -> VertexAt(branch);
  /// `branch` must be a slot from I_t(s, k-1). The parallel enumerator
  /// fans these subtrees out across worker threads.
  EnumCounters RunBranch(uint32_t branch, PathSink& sink,
                         const EnumOptions& opts = {});

 private:
  /// Returns the number of results emitted below the frame.
  uint64_t Search(uint32_t slot, uint32_t depth);

  bool ShouldStop();
  void Emit(uint32_t depth);

  const LightweightIndex& index_;

  // Per-run state.
  PathSink* sink_ = nullptr;
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  uint32_t stack_[kMaxHops + 1];     // slots of the partial result M
  VertexId path_buf_[kMaxHops + 1];  // vertex ids for emission
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_DFS_ENUMERATOR_H_
