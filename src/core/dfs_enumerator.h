// IDX-DFS (paper Algorithm 4): depth-first enumeration on the light-weight
// index. At a partial result M ending at v with L(M) edges, the only
// neighbors considered are I_t(v, k - L(M) - 1) — an O(1) span from the
// index — so each step needs neither a distance check nor dynamic pruning.
// The on-path duplicate test is an O(1) epoch-stamped mark per slot (see
// DESIGN.md) rather than a scan of the partial result.
#ifndef PATHENUM_CORE_DFS_ENUMERATOR_H_
#define PATHENUM_CORE_DFS_ENUMERATOR_H_

#include <vector>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "util/timer.h"

namespace pathenum {

/// Index-based DFS enumerator. Holds only reusable scratch between runs:
/// rebind it to a new index per query (the `Run(index, ...)` overloads) and
/// the scratch is reused with no steady-state allocation. Not thread-safe;
/// use one instance per worker.
class DfsEnumerator {
 public:
  /// Unbound enumerator; pass the index to Run/RunBranch.
  DfsEnumerator() = default;

  /// Bound to a fixed index (convenience for single-query use).
  explicit DfsEnumerator(const LightweightIndex& index) : index_(&index) {}

  /// Enumerates all paths into `sink` honoring limits in `opts`.
  /// `counters.response_ms` is relative to this call's start.
  EnumCounters Run(PathSink& sink, const EnumOptions& opts = {});
  EnumCounters Run(const LightweightIndex& index, PathSink& sink,
                   const EnumOptions& opts = {});

  /// Enumerates only the paths whose first edge is s -> VertexAt(branch);
  /// `branch` must be a slot from I_t(s, k-1). The parallel enumerators
  /// fan these subtrees out across worker threads.
  EnumCounters RunBranch(uint32_t branch, PathSink& sink,
                         const EnumOptions& opts = {});
  EnumCounters RunBranch(const LightweightIndex& index, uint32_t branch,
                         PathSink& sink, const EnumOptions& opts = {});

  /// Bytes of reusable scratch currently held (steady-state stability is
  /// asserted by the engine tests).
  size_t ScratchBytes() const;

 private:
  /// Rebinds the index and resets all per-run state.
  void Prepare(const LightweightIndex& index, const EnumOptions& opts);

  /// Returns the number of results emitted below the frame.
  uint64_t Search(uint32_t slot, uint32_t depth);

  bool ShouldStop();
  void Emit(uint32_t depth);

  const LightweightIndex* index_ = nullptr;

  // Reusable scratch: epoch-stamped "slot is on the current partial result"
  // marks. A slot is on the path iff on_path_[slot] == epoch_; bumping
  // epoch_ clears all marks in O(1).
  std::vector<uint32_t> on_path_;
  uint32_t epoch_ = 0;

  // Per-run state.
  PathSink* sink_ = nullptr;
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  uint32_t stack_[kMaxHops + 1];     // slots of the partial result M
  VertexId path_buf_[kMaxHops + 1];  // vertex ids for emission
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_DFS_ENUMERATOR_H_
