// IDX-DFS (paper Algorithm 4): depth-first enumeration on the light-weight
// index. At a partial result M ending at v with L(M) edges, the only
// neighbors considered are I_t(v, k - L(M) - 1) — an O(1) span from the
// index — so each step needs neither a distance check nor dynamic pruning.
// The on-path duplicate test is an O(1) epoch-stamped mark per slot (see
// DESIGN.md) rather than a scan of the partial result.
//
// The enumeration hot path is iterative (an explicit cursor-stack loop over
// the raw index adjacency, with the span budget b = k - depth - 1 never
// needing the public API's min(b, k) clamp) and emits delta-encoded
// PathBlocks (DESIGN.md §9): paths accumulate as (shared_prefix, suffix)
// entries — slot ids translated to vertex ids exactly once each — and the
// sink's virtual dispatch amortizes over hundreds of paths per flush.
#ifndef PATHENUM_CORE_DFS_ENUMERATOR_H_
#define PATHENUM_CORE_DFS_ENUMERATOR_H_

#include <atomic>
#include <vector>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "util/timer.h"

namespace pathenum {

/// Index-based DFS enumerator. Holds only reusable scratch between runs:
/// rebind it to a new index per query (the `Run(index, ...)` overloads) and
/// the scratch is reused with no steady-state allocation (the path block's
/// storage is a fixed inline arena). Not thread-safe; use one instance per
/// worker.
class DfsEnumerator {
 public:
  /// Unbound enumerator; pass the index to Run/RunBranch.
  DfsEnumerator() = default;

  /// Bound to a fixed index (convenience for single-query use).
  explicit DfsEnumerator(const LightweightIndex& index) : index_(&index) {}

  /// Enumerates all paths into `sink` honoring limits in `opts`.
  /// `counters.response_ms` is relative to this call's start (recorded at
  /// block granularity).
  EnumCounters Run(PathSink& sink, const EnumOptions& opts = {});
  EnumCounters Run(const LightweightIndex& index, PathSink& sink,
                   const EnumOptions& opts = {});

  /// Enumerates only the paths whose first edge is s -> VertexAt(branch);
  /// `branch` must be a slot from I_t(s, k-1). The parallel enumerators
  /// fan these subtrees out across worker threads. Counts *both* partial
  /// results of its starting chain — (s) and (s, branch) — so a standalone
  /// call is self-consistent; the fan-out drivers deduct the shared (s)
  /// copy per branch and charge it exactly once (see
  /// internal::DrainBranches).
  EnumCounters RunBranch(uint32_t branch, PathSink& sink,
                         const EnumOptions& opts = {});
  EnumCounters RunBranch(const LightweightIndex& index, uint32_t branch,
                         PathSink& sink, const EnumOptions& opts = {});

  /// Bytes of reusable scratch currently held (steady-state stability is
  /// asserted by the engine tests).
  size_t ScratchBytes() const;

 private:
  /// One level of the explicit DFS stack: the slot's neighbor span and the
  /// resume cursor into it.
  struct Frame {
    const uint32_t* nbrs;
    uint32_t size;
    uint32_t next;
  };

  /// Rebinds the index and resets all per-run state.
  void Prepare(const LightweightIndex& index, const EnumOptions& opts);

  /// The iterative DFS: expands stack_[start_depth] (already marked, not
  /// the target) until its subtree is exhausted or stop_ trips. The impl
  /// is templated over the index's ends-table width (u16/u32) so the whole
  /// run pays that branch once.
  void SearchFrom(uint32_t start_depth);
  template <typename EndT>
  void SearchFromImpl(uint32_t start_depth, const EndT* ends);

  /// Appends the path stack_[0..depth] to the pending block (flushing as
  /// needed); sets stop_ on sink stop / result limit.
  void AppendPath(uint32_t depth);

  /// Flushes the pending tail block and applies the root's invalid mark.
  EnumCounters FinishRun();

  bool ShouldStop();

  /// Cold path of ShouldStop: polls cancel/deadline/work budget (in that
  /// precedence), setting the matching counter flag and stop_ on a trip.
  /// `pending_edges` is work accrued in the caller's registers but not yet
  /// folded into counters_.edges_accessed.
  void CheckControl(uint64_t pending_edges = 0);

  const LightweightIndex* index_ = nullptr;

  // Reusable scratch: epoch-stamped "slot is on the current partial result"
  // marks. A slot is on the path iff on_path_[slot] == epoch_; bumping
  // epoch_ clears all marks in O(1).
  std::vector<uint32_t> on_path_;
  uint32_t epoch_ = 0;

  // Per-run state.
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  const std::atomic<bool>* cancel_ = nullptr;  // null: never cancels
  uint64_t work_budget_ = 0;
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  uint64_t found_ = 0;       // paths appended this run (delivered + pending)
  uint32_t divergence_ = 0;  // leading stack entries unchanged since the
                             // last append — the next path's shared prefix
  BlockEmitter emitter_;
  LightweightIndex::OutAdjacency adj_;
  const VertexId* translate_ = nullptr;  // slot -> vertex id, per run
  uint32_t stack_[kMaxHops + 1];   // slots of the partial result M
  Frame frames_[kMaxHops + 1];     // cursor per level of the explicit DFS
  uint64_t results_at_entry_[kMaxHops + 1];  // found_ when the level opened
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_DFS_ENUMERATOR_H_
