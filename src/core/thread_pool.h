// A fixed pool of persistent worker threads. Workers are spawned once and
// parked on a condition variable between jobs, so issuing a batch costs a
// wake-up instead of thread creation — the per-query thread spawn of the
// original ParallelDfsEnumerator is exactly what this amortizes away.
// Lives in core/ (not engine/) because every branch-parallel driver —
// ParallelDfsEnumerator included — fans out through it (DESIGN.md §8).
#ifndef PATHENUM_CORE_THREAD_POOL_H_
#define PATHENUM_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pathenum {

/// Parallel-region thread pool: RunOnAllWorkers(job) executes job(worker_id)
/// once on every worker concurrently and blocks until all invocations
/// return. Work distribution (queues, cursors, stealing) lives in the
/// caller's job closure, which keeps this class scheduling-agnostic.
class ThreadPool {
 public:
  /// Upper bound on `num_threads`; requests beyond it are configuration
  /// errors (PATHENUM_CHECK), not capacity planning.
  static constexpr uint32_t kMaxWorkers = 4096;

  /// `num_threads` 0 picks std::thread::hardware_concurrency(). Throws
  /// std::logic_error above kMaxWorkers.
  explicit ThreadPool(uint32_t num_threads = 0);

  /// Joins all workers. Outstanding RunOnAllWorkers calls must have
  /// returned.
  ~ThreadPool();

  /// Deterministic teardown, idempotent: a job generation posted before
  /// (or racing) the shutdown still runs to completion — its RunOnWorkers
  /// caller unblocks normally — and the workers exit only once no
  /// generation is pending. After Shutdown, RunOnWorkers must not be
  /// called again. The destructor calls this.
  void Shutdown();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Parallel regions issued through RunOnWorkers/RunOnAllWorkers.
  uint64_t jobs_run() const { return jobs_run_.Value(); }

  /// Runs `job(worker_id)` on every worker and waits for completion. If any
  /// invocation throws, the first exception is rethrown here (the remaining
  /// workers still finish). Not reentrant: must not be called from inside a
  /// job, and only one caller thread may use the pool at a time.
  void RunOnAllWorkers(const std::function<void(uint32_t)>& job);

  /// Like RunOnAllWorkers, but only workers with id < `active` execute the
  /// job; the rest wake, skip it, and park again. The engine uses this to
  /// clamp a batch to min(workers, queries, hardware cores) — parking the
  /// surplus instead of oversubscribing the host (the 8-worker-on-1-core
  /// warm regression in BENCH_throughput.json).
  void RunOnWorkers(uint32_t active, const std::function<void(uint32_t)>& job);

 private:
  void WorkerLoop(uint32_t worker_id);

  std::vector<std::thread> threads_;
  obs::ShardedCounter jobs_run_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* job_ = nullptr;  // valid while active
  uint32_t job_limit_ = 0;   // workers with id >= limit skip the job
  uint64_t generation_ = 0;  // bumped per job; workers latch the last seen
  uint32_t active_ = 0;      // workers still inside the current job
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_THREAD_POOL_H_
