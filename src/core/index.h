// The query-dependent light-weight index I(X, H) of paper Algorithm 3.
//
// For a query q(s, t, k) the index stores exactly the vertices that can lie
// on some hop-constrained walk from s to t:
//     X = { v : v.s + v.t <= k },   v.s = S(s,v | G-{t}), v.t = S(v,t | G-{s})
// bucketed into the (k+1) x (k+1) partition matrix of Figure 4a, plus two
// sorted adjacency structures:
//   * out-direction H_t: for v in X, the out-neighbors v' with
//     v.s + v'.t + 1 <= k, sorted ascending by v'.t, with per-vertex offset
//     slots so that I_t(v, b) — "neighbors within distance b of t" — is an
//     O(1) span lookup (Figure 4b);
//   * in-direction H_s: symmetric over in-neighbors keyed by v'.s, serving
//     I_s(v, b) for the join-order optimizer's forward DP.
// The join model's (t,t) padding tuple appears as a self-entry of t in both
// directions. s never appears as an out-destination and t never as an
// in-source (no relation of Q contains such tuples; see DESIGN.md).
//
// Internally vertices are remapped to dense *slots* (positions in the
// bucketed X order); all enumerators and the estimator work in slot space
// and only translate back to vertex ids when emitting results.
//
// Storage is arena-fused (DESIGN.md §9): every per-index array lives in one
// contiguous slab — a single allocation per build, a one-shot free, an
// exact O(1) MemoryBytes() for the engine cache's byte accounting, and the
// enumeration hot loop's arrays packed together. The per-slot cumulative
// neighbor counts (`ends`) narrow to u16 whenever every slot degree fits,
// halving the largest offset table.
#ifndef PATHENUM_CORE_INDEX_H_
#define PATHENUM_CORE_INDEX_H_

#include <memory>
#include <span>
#include <vector>

#include "core/query.h"
#include "graph/bfs.h"
#include "graph/graph.h"

namespace pathenum {

/// Sentinel slot for "vertex not in the index".
inline constexpr uint32_t kInvalidSlot = 0xffffffffu;

class IndexBuilder;

/// Immutable per-query index. Build via IndexBuilder. Move-only: the spans
/// below alias the owned slab.
class LightweightIndex {
 public:
  struct BuildStats {
    double bfs_ms = 0.0;    // the two bounded BFS (Alg. 3 line 1)
    double total_ms = 0.0;  // whole construction
    /// The build was stopped by IndexBuildOptions::cancel/deadline. The
    /// index is empty but well-formed (enumerating it yields zero paths);
    /// callers map the trip to the query's terminal state, and the
    /// IndexCache never publishes such an index.
    bool interrupted = false;
    bool interrupted_by_cancel = false;  // the trip was the cancel token
    /// Adjacency entries this query's two BFS passes examined — for a
    /// batched member this is the *solo-equivalent* count (what its own
    /// ComputeWith would have touched), so summing it across a batch and
    /// comparing against batch_edges_scanned measures the fusion win.
    uint64_t edges_scanned = 0;
    /// BFS waves across the two passes.
    uint32_t waves = 0;
    /// Adjacency entries the shared sweeps *actually* examined. Equal to
    /// edges_scanned for a solo build; for a batched member it is the
    /// batch-wide shared total (same value on every member), strictly
    /// below the summed per-member edges_scanned whenever frontiers
    /// overlap.
    uint64_t batch_edges_scanned = 0;
    /// Built by IndexBuilder::BuildBatch (a fused multi-source sweep).
    bool batched = false;
  };

  LightweightIndex() = default;
  LightweightIndex(LightweightIndex&&) = default;
  LightweightIndex& operator=(LightweightIndex&&) = default;

  const Query& query() const { return query_; }
  uint32_t hops() const { return query_.hops; }

  /// Number of vertices in X.
  uint32_t num_vertices() const {
    return static_cast<uint32_t>(x_vertices_.size());
  }

  /// Edges stored in the out-direction, excluding t's padding self-entry —
  /// the paper's "index size" metric (Figs. 10, 12; Table 7).
  uint64_t num_edges() const { return num_out_edges_; }

  bool Contains(VertexId v) const { return SlotOf(v) != kInvalidSlot; }

  /// Slot of `v`, or kInvalidSlot. (The paper describes a hash table; a
  /// dense vertex->slot array is used instead — same O(1) contract, far
  /// cheaper to build, and its footprint is charged to MemoryBytes().)
  uint32_t SlotOf(VertexId v) const {
    return v < slot_lookup_.size() ? slot_lookup_[v] : kInvalidSlot;
  }

  VertexId VertexAt(uint32_t slot) const { return x_vertices_[slot]; }

  /// Raw slot -> vertex-id translation array (size num_vertices()); the
  /// block-emitting enumerators translate suffixes through it directly.
  const VertexId* slot_to_vertex() const { return x_vertices_.data(); }

  /// v.s of the slot's vertex.
  uint32_t DistFromSource(uint32_t slot) const { return slot_ds_[slot]; }

  /// v.t of the slot's vertex.
  uint32_t DistToTarget(uint32_t slot) const { return slot_dt_[slot]; }

  uint32_t source_slot() const { return source_slot_; }
  uint32_t target_slot() const { return target_slot_; }

  /// I_t(v, b) in slot space: out-neighbor slots whose distance to t is at
  /// most b, sorted ascending by that distance. O(1).
  std::span<const uint32_t> OutSlotsWithin(uint32_t slot, uint32_t b) const {
    return {out_slots_.data() + out_begin_[slot], OutEnd(slot, b)};
  }

  /// Graph edge ids aligned with OutSlotsWithin (kInvalidEdge for the
  /// padding entry). Used by the constraint extensions; requires a build
  /// with `build_edge_ids` (see has_edge_ids()).
  std::span<const EdgeId> OutEdgeIdsWithin(uint32_t slot, uint32_t b) const {
    return {out_edge_ids_.data() + out_begin_[slot], OutEnd(slot, b)};
  }

  /// True when the edge-id adjacency was built (IndexBuildOptions::
  /// build_edge_ids) — a precondition of the constrained enumerators.
  bool has_edge_ids() const { return edge_ids_built_; }

  /// I_s(v, b) in slot space: in-neighbor slots whose distance from s is at
  /// most b, sorted ascending by that distance. O(1).
  std::span<const uint32_t> InSlotsWithin(uint32_t slot, uint32_t b) const {
    const uint32_t k = query_.hops;
    const size_t i = static_cast<size_t>(slot) * (k + 1) + std::min(b, k);
    const uint32_t count = in_ends16_.empty() ? in_ends32_[i] : in_ends16_[i];
    return {in_slots_.data() + in_begin_[slot], count};
  }

  /// Raw out-adjacency arrays for the iterative DFS hot loop: `begin[slot]`
  /// indexes `slots`; neighbor counts live in a `stride`-strided cumulative
  /// ends table — u16 when every slot degree fits, u32 otherwise (exactly
  /// one pointer is set). The budget argument b = k - depth - 1 of the DFS
  /// is always < stride, so hot-loop callers index the ends unclamped.
  struct OutAdjacency {
    const uint64_t* begin = nullptr;
    const uint32_t* slots = nullptr;
    const uint16_t* ends16 = nullptr;
    const uint32_t* ends32 = nullptr;
    uint32_t stride = 0;  // k + 1
  };
  OutAdjacency out_adjacency() const {
    OutAdjacency a;
    a.begin = out_begin_.data();
    a.slots = out_slots_.data();
    a.ends16 = out_ends16_.empty() ? nullptr : out_ends16_.data();
    a.ends32 = out_ends32_.empty() ? nullptr : out_ends32_.data();
    a.stride = query_.hops + 1;
    return a;
  }

  /// Vertex-id convenience wrappers (allocate; meant for tests/tools).
  std::vector<VertexId> OutVerticesWithin(VertexId v, uint32_t b) const;
  std::vector<VertexId> InVerticesWithin(VertexId v, uint32_t b) const;

  /// Vertices of partition cell X[a][b] (v.s == a, v.t == b) as a contiguous
  /// slot range [first, last).
  std::pair<uint32_t, uint32_t> CellSlots(uint32_t a, uint32_t b) const {
    const uint32_t k = query_.hops;
    const size_t c = static_cast<size_t>(a) * (k + 1) + b;
    return {cell_offsets_[c], cell_offsets_[c + 1]};
  }

  /// Calls fn(slot) for every vertex of C_i = I(i): v.s <= i and v.t <= k-i.
  template <typename Fn>
  void ForEachSlotInLevel(uint32_t i, Fn&& fn) const {
    const uint32_t k = query_.hops;
    for (uint32_t a = 0; a <= std::min(i, k); ++a) {
      for (uint32_t b = 0; b + i <= k; ++b) {
        const auto [first, last] = CellSlots(a, b);
        for (uint32_t slot = first; slot < last; ++slot) fn(slot);
      }
    }
  }

  /// |C_i|. O(k) cell-range arithmetic.
  uint64_t LevelSize(uint32_t i) const;

  /// Preliminary-estimator statistics (collected during construction):
  /// sum over v in C_j of |I_t(v, k-j-1)|, and |C_j|, for 0 <= j < k.
  double LevelItSum(uint32_t j) const { return level_it_sum_[j]; }
  uint64_t LevelCount(uint32_t j) const { return level_count_[j]; }

  /// True when the in-direction adjacency (H_s) was built — required by the
  /// join-order optimizer (and hence by any non-kDfs execution).
  bool has_in_direction() const { return !in_begin_.empty(); }

  /// True when the preliminary-estimator level statistics were collected —
  /// required by kAuto execution.
  bool has_level_stats() const { return !level_count_.empty(); }

  /// True when the cumulative neighbor-count tables narrowed to u16 (every
  /// slot degree fit); exposed for the memory-accounting tests.
  bool out_ends_narrow() const { return !out_ends16_.empty(); }

  /// Exact heap footprint (Table 7's "Index" row): the object plus its one
  /// slab. O(1) — the engine cache charges/evicts by this number.
  size_t MemoryBytes() const { return sizeof(*this) + slab_bytes_; }

  /// Bytes of the fused slab alone (the single allocation behind every
  /// array above).
  size_t slab_bytes() const { return slab_bytes_; }

  const BuildStats& build_stats() const { return build_stats_; }

 private:
  friend class IndexBuilder;

  uint32_t OutEnd(uint32_t slot, uint32_t b) const {
    const uint32_t k = query_.hops;
    const size_t i = static_cast<size_t>(slot) * (k + 1) + std::min(b, k);
    return out_ends16_.empty() ? out_ends32_[i] : out_ends16_[i];
  }

  Query query_;
  BuildStats build_stats_;

  // One contiguous allocation backing every span below (DESIGN.md §9).
  std::unique_ptr<std::byte[]> slab_;
  size_t slab_bytes_ = 0;

  std::span<const VertexId> x_vertices_;   // bucketed by (v.s, v.t) cell
  std::span<const uint32_t> cell_offsets_; // (k+1)^2 + 1 entries
  std::span<const uint32_t> slot_lookup_;  // vertex -> slot, kInvalidSlot
  std::span<const uint8_t> slot_ds_;       // v.s per slot
  std::span<const uint8_t> slot_dt_;       // v.t per slot
  uint32_t source_slot_ = kInvalidSlot;
  uint32_t target_slot_ = kInvalidSlot;

  bool edge_ids_built_ = false;
  std::span<const uint64_t> out_begin_;    // per slot, into out_slots_
  std::span<const uint32_t> out_slots_;    // neighbors, ascending by v'.t
  std::span<const EdgeId> out_edge_ids_;   // aligned with out_slots_
  std::span<const uint16_t> out_ends16_;   // (k+1) cumulative counts per
  std::span<const uint32_t> out_ends32_;   //   slot; exactly one is set
  uint64_t num_out_edges_ = 0;             // excludes t's padding entry

  std::span<const uint64_t> in_begin_;
  std::span<const uint32_t> in_slots_;     // neighbors, ascending by v'.s
  std::span<const uint16_t> in_ends16_;
  std::span<const uint32_t> in_ends32_;

  std::span<const double> level_it_sum_;   // size k (levels 0..k-1)
  std::span<const uint64_t> level_count_;
};

/// Options for IndexBuilder::Build.
struct IndexBuildOptions {
  /// Predicate push-down (Appendix E): edges failing the filter are
  /// invisible to the BFS and to the index adjacency.
  const EdgeFilter* filter = nullptr;
  /// Graph edge ids aligned with the out-adjacency — the slab's largest
  /// array (8 bytes/edge), consumed only by the Appendix-E constraint
  /// extensions. The unconstrained pipeline builds without them
  /// (PathEnumerator::BuildOptionsFor); defaults to true so a bare Build
  /// keeps the full documented surface.
  bool build_edge_ids = true;
  /// The in-direction (H_s) is only needed by the join-order optimizer;
  /// IDX-DFS-only users can skip it.
  bool build_in_direction = true;
  /// Level statistics feed the preliminary estimator.
  bool collect_level_stats = true;
  /// Confine the forward BFS to vertices with v.s + v.t <= k using the
  /// backward pass's distances (exact; see DESIGN.md). Off only for the
  /// ablation benchmark measuring what the optimization is worth.
  bool prune_forward_bfs = true;
  /// Cooperative build control (DESIGN.md §10): polled once per BFS wave
  /// and periodically during the adjacency scan. A tripped build returns
  /// an empty-but-well-formed index with build_stats().interrupted set
  /// instead of running to completion.
  const std::atomic<bool>* cancel = nullptr;
  Deadline deadline = Deadline::Unlimited();
};

/// One member of an IndexBuilder::BuildBatch call: a query plus its own
/// cooperative controls. A member whose control trips mid-batch gets the
/// usual empty-but-well-formed interrupted index without disturbing the
/// other members' builds.
struct BatchBuildRequest {
  Query query;
  /// Per-member cancel; falls back to the shared Options::cancel when
  /// null. The effective deadline is the earlier of this and the shared
  /// Options::deadline.
  const std::atomic<bool>* cancel = nullptr;
  Deadline deadline = Deadline::Unlimited();
  /// Depth ceiling on both of the member's sweeps, min'ed with the query's
  /// hop bound. The useful setting is 0, for a query an oracle lower bound
  /// certified unsatisfiable (dist(s,t) > k): the member rides the fused
  /// sweeps for free and yields the empty-but-COMPLETE index such a query
  /// truly has (not an interrupted stub), so it caches and replays like
  /// any finished build.
  uint32_t hop_cap = kInfDistance;
};

/// Builds LightweightIndex instances. Owns the epoch-stamped BFS buffers
/// and the staging arrays the index parts are assembled in before being
/// fused into the slab, so that thousands of per-query builds avoid both
/// the O(|V|) re-initialisation and all staging allocations — keep one
/// builder per graph/session; the steady-state build allocates exactly the
/// result slab.
class IndexBuilder {
 public:
  using Options = IndexBuildOptions;

  IndexBuilder() = default;

  /// Builds the index for `q` over `g`. The query must be valid. Templated
  /// over the graph type (the immutable `Graph` or the live subsystem's
  /// `GraphView`); the definition lives in index.cpp with explicit
  /// instantiations for both.
  template <typename GraphT>
  LightweightIndex Build(const GraphT& g, const Query& q,
                         const Options& opts = {});

  /// Builds the indexes for up to BatchedDistanceField::kMaxBatch queries
  /// from TWO fused multi-source sweeps (one backward, one forward) instead
  /// of 2·K solo ones — each adjacency list is scanned once per wave
  /// however many members expand it. Emits the same arena-fused slab per
  /// member as Build (layout unchanged); per-member fusion counters land in
  /// each index's build_stats(). `opts.filter` must be null (batched builds
  /// serve only cacheable, filter-free queries); per-member controls come
  /// from the requests. Result i corresponds to reqs[i].
  template <typename GraphT>
  std::vector<LightweightIndex> BuildBatch(
      const GraphT& g, const std::vector<BatchBuildRequest>& reqs,
      const Options& opts = {});

 private:
  /// Copies the staged parts into one exactly-sized slab and points the
  /// index's spans at it, narrowing the ends tables to u16 when the counts
  /// permit.
  void Fuse(LightweightIndex& idx, bool edge_ids, bool in_direction,
            bool level_stats);

  /// Everything after the BFS passes — partition X, build H_t/H_s, level
  /// stats, Fuse — parameterized over the distance accessors
  /// `dist_s(v)`/`dist_t(v)` so the solo and batched paths share one
  /// assembly. `cand` is the X candidate list (the pruned forward pass's
  /// reached set, or the smaller unpruned ball). Stamps total_ms.
  template <typename GraphT, typename DistS, typename DistT>
  void AssembleFrom(const GraphT& g, const Query& q, const Options& opts,
                    const std::vector<VertexId>& cand, const DistS& dist_s,
                    const DistT& dist_t, LightweightIndex& idx,
                    Timer& total_timer);

  /// Replaces the staged parts with an empty-but-well-formed index (zero
  /// slots, zero paths on enumeration) and stamps the interruption into
  /// its build stats — the terminal path of a control-tripped Build.
  void FinishInterrupted(LightweightIndex& idx, const Query& q,
                         const Options& opts, bool by_cancel);

  DistanceField field_s_;  // forward from s, t blocked
  DistanceField field_t_;  // backward from t, s blocked
  BatchedDistanceField batch_s_;  // fused forward fields (BuildBatch)
  BatchedDistanceField batch_t_;  // fused backward fields
  std::vector<BatchedDistanceField::Member> batch_members_;
  // Dense per-member distance exports (0xFFFF = unreached): one
  // L1-resident array per direction, refilled per member so assembly's
  // per-candidate-edge lookups are a single unconditional load.
  std::vector<uint16_t> batch_dist_s_;
  std::vector<uint16_t> batch_dist_t_;
  struct ScratchEntry {
    uint32_t key;   // v'.t (out) or v'.s (in)
    uint32_t slot;
    EdgeId edge;
  };
  std::vector<ScratchEntry> scratch_;

  // Staging arrays (reused across builds; Fuse copies them into the slab).
  std::vector<VertexId> x_vertices_;
  std::vector<uint32_t> cell_offsets_;
  std::vector<uint32_t> slot_lookup_;
  std::vector<uint8_t> slot_ds_;
  std::vector<uint8_t> slot_dt_;
  std::vector<uint64_t> out_begin_;
  std::vector<uint32_t> out_slots_;
  std::vector<EdgeId> out_edge_ids_;
  std::vector<uint32_t> out_ends_;
  std::vector<uint64_t> in_begin_;
  std::vector<uint32_t> in_slots_;
  std::vector<uint32_t> in_ends_;
  std::vector<double> level_it_sum_;
  std::vector<uint64_t> level_count_;
  std::vector<uint32_t> cell_cursor_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_INDEX_H_
