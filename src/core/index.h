// The query-dependent light-weight index I(X, H) of paper Algorithm 3.
//
// For a query q(s, t, k) the index stores exactly the vertices that can lie
// on some hop-constrained walk from s to t:
//     X = { v : v.s + v.t <= k },   v.s = S(s,v | G-{t}), v.t = S(v,t | G-{s})
// bucketed into the (k+1) x (k+1) partition matrix of Figure 4a, plus two
// sorted adjacency structures:
//   * out-direction H_t: for v in X, the out-neighbors v' with
//     v.s + v'.t + 1 <= k, sorted ascending by v'.t, with per-vertex offset
//     slots so that I_t(v, b) — "neighbors within distance b of t" — is an
//     O(1) span lookup (Figure 4b);
//   * in-direction H_s: symmetric over in-neighbors keyed by v'.s, serving
//     I_s(v, b) for the join-order optimizer's forward DP.
// The join model's (t,t) padding tuple appears as a self-entry of t in both
// directions. s never appears as an out-destination and t never as an
// in-source (no relation of Q contains such tuples; see DESIGN.md).
//
// Internally vertices are remapped to dense *slots* (positions in the
// bucketed X order); all enumerators and the estimator work in slot space
// and only translate back to vertex ids when emitting results.
#ifndef PATHENUM_CORE_INDEX_H_
#define PATHENUM_CORE_INDEX_H_

#include <span>
#include <vector>

#include "core/query.h"
#include "graph/bfs.h"
#include "graph/graph.h"

namespace pathenum {

/// Sentinel slot for "vertex not in the index".
inline constexpr uint32_t kInvalidSlot = 0xffffffffu;

class IndexBuilder;

/// Immutable per-query index. Build via IndexBuilder.
class LightweightIndex {
 public:
  struct BuildStats {
    double bfs_ms = 0.0;    // the two bounded BFS (Alg. 3 line 1)
    double total_ms = 0.0;  // whole construction
  };

  LightweightIndex() = default;

  const Query& query() const { return query_; }
  uint32_t hops() const { return query_.hops; }

  /// Number of vertices in X.
  uint32_t num_vertices() const {
    return static_cast<uint32_t>(x_vertices_.size());
  }

  /// Edges stored in the out-direction, excluding t's padding self-entry —
  /// the paper's "index size" metric (Figs. 10, 12; Table 7).
  uint64_t num_edges() const { return num_out_edges_; }

  bool Contains(VertexId v) const { return SlotOf(v) != kInvalidSlot; }

  /// Slot of `v`, or kInvalidSlot. (The paper describes a hash table; a
  /// dense vertex->slot array is used instead — same O(1) contract, far
  /// cheaper to build, and its footprint is charged to MemoryBytes().)
  uint32_t SlotOf(VertexId v) const {
    return v < slot_lookup_.size() ? slot_lookup_[v] : kInvalidSlot;
  }

  VertexId VertexAt(uint32_t slot) const { return x_vertices_[slot]; }

  /// v.s of the slot's vertex.
  uint32_t DistFromSource(uint32_t slot) const { return slot_ds_[slot]; }

  /// v.t of the slot's vertex.
  uint32_t DistToTarget(uint32_t slot) const { return slot_dt_[slot]; }

  uint32_t source_slot() const { return source_slot_; }
  uint32_t target_slot() const { return target_slot_; }

  /// I_t(v, b) in slot space: out-neighbor slots whose distance to t is at
  /// most b, sorted ascending by that distance. O(1).
  std::span<const uint32_t> OutSlotsWithin(uint32_t slot, uint32_t b) const {
    const uint32_t k = query_.hops;
    const uint64_t begin = out_begin_[slot];
    const uint32_t count = out_ends_[slot * (k + 1) + std::min(b, k)];
    return {out_slots_.data() + begin, count};
  }

  /// Graph edge ids aligned with OutSlotsWithin (kInvalidEdge for the
  /// padding entry). Used by the constraint extensions.
  std::span<const EdgeId> OutEdgeIdsWithin(uint32_t slot, uint32_t b) const {
    const uint32_t k = query_.hops;
    const uint64_t begin = out_begin_[slot];
    const uint32_t count = out_ends_[slot * (k + 1) + std::min(b, k)];
    return {out_edge_ids_.data() + begin, count};
  }

  /// I_s(v, b) in slot space: in-neighbor slots whose distance from s is at
  /// most b, sorted ascending by that distance. O(1).
  std::span<const uint32_t> InSlotsWithin(uint32_t slot, uint32_t b) const {
    const uint32_t k = query_.hops;
    const uint64_t begin = in_begin_[slot];
    const uint32_t count = in_ends_[slot * (k + 1) + std::min(b, k)];
    return {in_slots_.data() + begin, count};
  }

  /// Vertex-id convenience wrappers (allocate; meant for tests/tools).
  std::vector<VertexId> OutVerticesWithin(VertexId v, uint32_t b) const;
  std::vector<VertexId> InVerticesWithin(VertexId v, uint32_t b) const;

  /// Vertices of partition cell X[a][b] (v.s == a, v.t == b) as a contiguous
  /// slot range [first, last).
  std::pair<uint32_t, uint32_t> CellSlots(uint32_t a, uint32_t b) const {
    const uint32_t k = query_.hops;
    const size_t c = static_cast<size_t>(a) * (k + 1) + b;
    return {cell_offsets_[c], cell_offsets_[c + 1]};
  }

  /// Calls fn(slot) for every vertex of C_i = I(i): v.s <= i and v.t <= k-i.
  template <typename Fn>
  void ForEachSlotInLevel(uint32_t i, Fn&& fn) const {
    const uint32_t k = query_.hops;
    for (uint32_t a = 0; a <= std::min(i, k); ++a) {
      for (uint32_t b = 0; b + i <= k; ++b) {
        const auto [first, last] = CellSlots(a, b);
        for (uint32_t slot = first; slot < last; ++slot) fn(slot);
      }
    }
  }

  /// |C_i|. O(k) cell-range arithmetic.
  uint64_t LevelSize(uint32_t i) const;

  /// Preliminary-estimator statistics (collected during construction):
  /// sum over v in C_j of |I_t(v, k-j-1)|, and |C_j|, for 0 <= j < k.
  double LevelItSum(uint32_t j) const { return level_it_sum_[j]; }
  uint64_t LevelCount(uint32_t j) const { return level_count_[j]; }

  /// True when the in-direction adjacency (H_s) was built — required by the
  /// join-order optimizer (and hence by any non-kDfs execution).
  bool has_in_direction() const { return !in_begin_.empty(); }

  /// True when the preliminary-estimator level statistics were collected —
  /// required by kAuto execution.
  bool has_level_stats() const { return !level_count_.empty(); }

  /// Approximate heap footprint (Table 7's "Index" row).
  size_t MemoryBytes() const;

  const BuildStats& build_stats() const { return build_stats_; }

 private:
  friend class IndexBuilder;

  Query query_;
  BuildStats build_stats_;

  std::vector<VertexId> x_vertices_;      // bucketed by (v.s, v.t) cell
  std::vector<uint32_t> cell_offsets_;    // (k+1)^2 + 1 entries
  std::vector<uint32_t> slot_lookup_;     // vertex -> slot, kInvalidSlot
  std::vector<uint8_t> slot_ds_;          // v.s per slot
  std::vector<uint8_t> slot_dt_;          // v.t per slot
  uint32_t source_slot_ = kInvalidSlot;
  uint32_t target_slot_ = kInvalidSlot;

  std::vector<uint64_t> out_begin_;       // per slot, into out_slots_
  std::vector<uint32_t> out_slots_;       // neighbors, ascending by v'.t
  std::vector<EdgeId> out_edge_ids_;      // aligned with out_slots_
  std::vector<uint32_t> out_ends_;        // (k+1) cumulative counts per slot
  uint64_t num_out_edges_ = 0;            // excludes t's padding entry

  std::vector<uint64_t> in_begin_;
  std::vector<uint32_t> in_slots_;        // neighbors, ascending by v'.s
  std::vector<uint32_t> in_ends_;

  std::vector<double> level_it_sum_;      // size k (levels 0..k-1)
  std::vector<uint64_t> level_count_;
};

/// Options for IndexBuilder::Build.
struct IndexBuildOptions {
  /// Predicate push-down (Appendix E): edges failing the filter are
  /// invisible to the BFS and to the index adjacency.
  const EdgeFilter* filter = nullptr;
  /// The in-direction (H_s) is only needed by the join-order optimizer;
  /// IDX-DFS-only users can skip it.
  bool build_in_direction = true;
  /// Level statistics feed the preliminary estimator.
  bool collect_level_stats = true;
  /// Confine the forward BFS to vertices with v.s + v.t <= k using the
  /// backward pass's distances (exact; see DESIGN.md). Off only for the
  /// ablation benchmark measuring what the optimization is worth.
  bool prune_forward_bfs = true;
};

/// Builds LightweightIndex instances. Owns the epoch-stamped BFS buffers so
/// that thousands of per-query builds avoid O(|V|) re-initialisation — keep
/// one builder per graph/session.
class IndexBuilder {
 public:
  using Options = IndexBuildOptions;

  IndexBuilder() = default;

  /// Builds the index for `q` over `g`. The query must be valid. Templated
  /// over the graph type (the immutable `Graph` or the live subsystem's
  /// `GraphView`); the definition lives in index.cpp with explicit
  /// instantiations for both.
  template <typename GraphT>
  LightweightIndex Build(const GraphT& g, const Query& q,
                         const Options& opts = {});

 private:
  DistanceField field_s_;  // forward from s, t blocked
  DistanceField field_t_;  // backward from t, s blocked
  struct ScratchEntry {
    uint32_t key;   // v'.t (out) or v'.s (in)
    uint32_t slot;
    EdgeId edge;
  };
  std::vector<ScratchEntry> scratch_;
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_INDEX_H_
