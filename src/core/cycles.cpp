#include "core/cycles.h"

#include <vector>

namespace pathenum {

namespace {

/// Rewrites each path (v, ..., u) into the cycle (u, v, ..., u).
class CycleSink : public PathSink {
 public:
  CycleSink(PathSink& inner, VertexId closing_source)
      : inner_(inner), closing_source_(closing_source) {}

  bool OnPath(std::span<const VertexId> path) override {
    buffer_.clear();
    buffer_.reserve(path.size() + 2);
    buffer_.push_back(closing_source_);
    buffer_.insert(buffer_.end(), path.begin(), path.end());
    buffer_.push_back(closing_source_);
    return inner_.OnPath(buffer_);
  }

 private:
  PathSink& inner_;
  VertexId closing_source_;
  std::vector<VertexId> buffer_;
};

}  // namespace

QueryStats EnumerateTriggeredCycles(PathEnumerator& enumerator, VertexId u,
                                    VertexId v, uint32_t max_hops,
                                    PathSink& sink, const EnumOptions& opts) {
  PATHENUM_CHECK_MSG(max_hops >= 2, "a cycle needs at least 2 edges");
  QueryStats stats;
  if (u == v) return stats;  // self-loops are not simple cycles
  CycleSink cycle_sink(sink, u);
  return enumerator.Run({v, u, max_hops - 1}, cycle_sink, opts);
}

}  // namespace pathenum
