#include "core/path_enum.h"

#include <algorithm>

#include "graph/distance_oracle.h"
#include "obs/metrics.h"
#include "util/stats.h"
#include "util/timer.h"

namespace pathenum {

namespace internal {

void NoteOracleDropped() {
  static obs::RegCounter* dropped =
      obs::MetricRegistry::Global().GetCounter("pathenum_oracle_dropped_total");
  dropped->Inc();
}

}  // namespace internal

namespace {

/// Folds enumeration counters and phase timings into the query report.
void Finalize(QueryStats& stats, const EnumCounters& counters,
              double enumerate_ms, double total_ms) {
  stats.counters = counters;
  stats.enumerate_ms = enumerate_ms;
  stats.total_ms = total_ms;
  // Response time = time from query start to the response_target-th result;
  // if the target was never reached the whole query time is reported.
  const double preprocessing = total_ms - enumerate_ms;
  stats.response_ms = counters.response_ms >= 0.0
                          ? preprocessing + counters.response_ms
                          : total_ms;
}

}  // namespace

bool PathEnumerator::OracleRejects(const Query& q) const {
  // Safe in one direction only: the oracle's unconstrained distance lower-
  // bounds every constrained variant, so "too far" implies no result.
  return oracle_ != nullptr && !oracle_->Within(q.source, q.target, q.hops);
}

IndexBuilder::Options PathEnumerator::BuildOptionsFor(const Query& q,
                                                      const EnumOptions& opts) {
  IndexBuilder::Options build_opts;
  // IDX-DFS never consults the in-direction; skip it when forced to DFS.
  build_opts.build_in_direction = opts.method != Method::kDfs && q.hops >= 2;
  build_opts.collect_level_stats = opts.method == Method::kAuto;
  // Only the constraint extensions read edge ids; dropping the slab's
  // largest array keeps the unconstrained build lean (DESIGN.md §9).
  build_opts.build_edge_ids = false;
  // Thread the query's control into the build: each phase gets the query's
  // wall-clock budget from its own start (DESIGN.md §10), and the cancel
  // token covers the build exactly like the enumeration.
  build_opts.cancel = opts.cancel.flag();
  build_opts.deadline = Deadline::AfterMs(opts.time_limit_ms);
  return build_opts;
}

namespace {

/// Fills `stats` for a query whose index build was control-tripped: no
/// enumeration ran, zero results, the matching terminal flag set.
void FinalizeInterruptedBuild(QueryStats& stats,
                              const LightweightIndex& index, Timer& total) {
  EnumCounters counters;
  if (index.build_stats().interrupted_by_cancel) {
    counters.cancelled = true;
  } else {
    counters.timed_out = true;
  }
  Finalize(stats, counters, 0.0, total.ElapsedMs());
}

}  // namespace

QueryStats PathEnumerator::Run(const Query& q, PathSink& sink,
                               const EnumOptions& opts) {
  ValidateQuery(view_, q);
  arena_.Reset();  // previous query's arena tables die here
  QueryStats stats;
  Timer total;
  if (OracleRejects(q)) {
    stats.counters.oracle_rejected = true;
    stats.total_ms = total.ElapsedMs();
    stats.response_ms = stats.total_ms;
    return stats;
  }

  LightweightIndex index = BuildIndex(q, BuildOptionsFor(q, opts));
  stats.bfs_ms = index.build_stats().bfs_ms;
  stats.index_ms = index.build_stats().total_ms;
  if (index.build_stats().interrupted) {
    FinalizeInterruptedBuild(stats, index, total);
    return stats;
  }
  ExecuteOnIndex(index, stats, sink, opts, total);
  return stats;
}

QueryStats PathEnumerator::RunWithIndex(const LightweightIndex& index,
                                        PathSink& sink,
                                        const EnumOptions& opts) {
  const Query& q = index.query();
  ValidateQuery(view_, q);
  const IndexBuilder::Options need = BuildOptionsFor(q, opts);
  PATHENUM_CHECK_MSG(!need.build_in_direction || index.has_in_direction(),
                     "cached index lacks the in-direction this method needs");
  PATHENUM_CHECK_MSG(!need.collect_level_stats || index.has_level_stats(),
                     "cached index lacks level stats required by kAuto");
  arena_.Reset();
  QueryStats stats;
  Timer total;
  ExecuteOnIndex(index, stats, sink, opts, total);
  return stats;
}

PathEnumerator::ExecutionPlan PathEnumerator::PlanExecution(
    const LightweightIndex& index, const EnumOptions& opts,
    QueryStats& stats) {
  const Query& q = index.query();
  ExecutionPlan plan;
  Method chosen = opts.method;
  if (q.hops < 2) chosen = Method::kDfs;  // no proper cut exists

  if (chosen == Method::kAuto) {
    // Step 2 of Fig. 2: the O(k) preliminary estimate decides whether the
    // full optimizer is worth running at all.
    stats.preliminary_estimate = EstimateSearchSpace(index);
    if (opts.use_preliminary_estimator &&
        stats.preliminary_estimate <= opts.tau) {
      chosen = Method::kDfs;
    } else {
      Timer opt_timer;
      const JoinPlan join_plan = OptimizeJoinOrder(index);
      stats.optimize_ms = opt_timer.ElapsedMs();
      stats.t_dfs_cost = join_plan.t_dfs;
      stats.t_join_cost = join_plan.t_join;
      if (join_plan.PreferJoin()) {
        chosen = Method::kJoin;
        plan.cut = join_plan.cut;
      } else {
        chosen = Method::kDfs;
      }
    }
  } else if (chosen == Method::kJoin) {
    // Forced IDX-JOIN still needs Alg. 5 for the cut position.
    Timer opt_timer;
    const JoinPlan join_plan = OptimizeJoinOrder(index);
    stats.optimize_ms = opt_timer.ElapsedMs();
    stats.t_dfs_cost = join_plan.t_dfs;
    stats.t_join_cost = join_plan.t_join;
    plan.cut =
        join_plan.cut == 0 ? std::max<uint32_t>(1, q.hops / 2) : join_plan.cut;
  }
  plan.method = chosen;
  return plan;
}

void PathEnumerator::ExecuteOnIndex(const LightweightIndex& index,
                                    QueryStats& stats, PathSink& sink,
                                    const EnumOptions& opts, Timer& total) {
  stats.index_vertices = index.num_vertices();
  stats.index_edges = index.num_edges();
  stats.index_bytes = index.MemoryBytes();

  const ExecutionPlan plan = PlanExecution(index, opts, stats);
  stats.method = plan.method;
  stats.cut_position = plan.cut;

  Timer enum_timer;
  EnumCounters counters;
  if (plan.method == Method::kJoin) {
    counters = join_.Run(index, plan.cut, sink, opts);
  } else {
    counters = dfs_.Run(index, sink, opts);
  }
  Finalize(stats, counters, enum_timer.ElapsedMs(), total.ElapsedMs());
}

QueryStats PathEnumerator::RunConstrained(const Query& q,
                                          const PathConstraints& constraints,
                                          PathSink& sink,
                                          const EnumOptions& opts) {
  ValidateQuery(view_, q);
  // Constraints read edge weights/labels through stable edge ids, which an
  // overlay view cannot provide — constrained traffic needs a compacted
  // snapshot (see graph/view.h).
  PATHENUM_CHECK_MSG(!view_.has_overlay(),
                     "constrained queries require an overlay-free snapshot");
  arena_.Reset();
  QueryStats stats;
  Timer total;
  if (OracleRejects(q)) {
    stats.counters.oracle_rejected = true;
    stats.total_ms = total.ElapsedMs();
    stats.response_ms = stats.total_ms;
    return stats;
  }

  // Constrained queries default to the DFS enumerator (the cost model does
  // not see constraint selectivity); a forced kJoin runs the Appendix-E
  // join-side extension, which requires `init` to be an identity of
  // `combine`.
  const bool use_join = opts.method == Method::kJoin && q.hops >= 2;

  IndexBuilder::Options build_opts;
  build_opts.filter = constraints.edge_filter;
  build_opts.build_in_direction = use_join;
  build_opts.collect_level_stats = false;
  build_opts.build_edge_ids = true;  // the constrained enumerators read them
  build_opts.cancel = opts.cancel.flag();
  build_opts.deadline = Deadline::AfterMs(opts.time_limit_ms);
  // Overlay-free is asserted above, so this is always Build<Graph>.
  LightweightIndex index = BuildIndex(q, build_opts);
  stats.bfs_ms = index.build_stats().bfs_ms;
  stats.index_ms = index.build_stats().total_ms;
  if (index.build_stats().interrupted) {
    FinalizeInterruptedBuild(stats, index, total);
    return stats;
  }
  stats.index_vertices = index.num_vertices();
  stats.index_edges = index.num_edges();
  stats.index_bytes = index.MemoryBytes();
  stats.method = use_join ? Method::kJoin : Method::kDfs;

  Timer enum_timer;
  EnumCounters counters;
  if (use_join) {
    Timer opt_timer;
    const JoinPlan plan = OptimizeJoinOrder(index);
    stats.optimize_ms = opt_timer.ElapsedMs();
    stats.t_dfs_cost = plan.t_dfs;
    stats.t_join_cost = plan.t_join;
    stats.cut_position =
        plan.cut == 0 ? std::max<uint32_t>(1, q.hops / 2) : plan.cut;
    enum_timer.Reset();
    ConstrainedJoinEnumerator join(view_.base(), index, constraints);
    counters = join.Run(stats.cut_position, sink, opts);
  } else if (constraints.HasSearchState()) {
    ConstrainedDfsEnumerator dfs(view_.base(), index, constraints);
    counters = dfs.Run(sink, opts);
  } else {
    // Predicate-only: plain DFS on the filtered index, pooled scratch.
    counters = dfs_.Run(index, sink, opts);
  }
  Finalize(stats, counters, enum_timer.ElapsedMs(), total.ElapsedMs());
  return stats;
}

double CalibrateTau(const Graph& g, const std::vector<Query>& sample_queries,
                    double max_tau) {
  PathEnumerator enumerator(g);
  std::vector<double> optimize_times;
  std::vector<double> rates;  // results per millisecond
  for (const Query& q : sample_queries) {
    IndexBuilder builder;
    IndexBuilder::Options opts;
    LightweightIndex index = builder.Build(g, q, opts);

    Timer opt_timer;
    const JoinPlan plan = OptimizeJoinOrder(index);
    (void)plan;
    optimize_times.push_back(opt_timer.ElapsedMs());

    CountingSink sink;
    EnumOptions run_opts;
    run_opts.result_limit = 100000;
    run_opts.time_limit_ms = 1000.0;
    DfsEnumerator dfs(index);
    Timer run_timer;
    const EnumCounters counters = dfs.Run(sink, run_opts);
    const double ms = std::max(run_timer.ElapsedMs(), 1e-3);
    if (counters.num_results > 0) {
      rates.push_back(static_cast<double>(counters.num_results) / ms);
    }
  }
  if (optimize_times.empty() || rates.empty()) return 1e5;
  const double median_opt = PercentileInPlace(optimize_times, 50.0);
  const double median_rate = PercentileInPlace(rates, 50.0);
  // Smallest power of ten whose enumeration time exceeds the optimization
  // time for the typical query (§6.2's procedure).
  for (double tau = 10.0; tau <= max_tau; tau *= 10.0) {
    if (tau / median_rate > median_opt) return tau;
  }
  return max_tau;
}

}  // namespace pathenum
