// IDX-JOIN (paper Algorithm 6): cut the chain query Q at position i*,
// materialize the two halves with index-based DFS (walks with (t,t)
// padding, so paths of every length <= k are covered), hash-join them on
// the cut vertex, and emit the joined tuples that form valid simple paths.
#ifndef PATHENUM_CORE_JOIN_ENUMERATOR_H_
#define PATHENUM_CORE_JOIN_ENUMERATOR_H_

#include <vector>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "util/timer.h"

namespace pathenum {

/// Index-based join enumerator.
class JoinEnumerator {
 public:
  explicit JoinEnumerator(const LightweightIndex& index) : index_(index) {}

  /// Enumerates all paths using cut position `cut` (1 <= cut <= k-1).
  /// `counters.peak_partial_bytes` reports the materialized tuple memory
  /// (the paper's Table 7 "Partial Results" row).
  EnumCounters Run(uint32_t cut, PathSink& sink, const EnumOptions& opts = {});

 private:
  /// Generates the padded-walk tuples of Q[base : base+len-1]... i.e. all
  /// sequences of `len` slots starting at `start`, where position p of the
  /// tuple sits at query position base+p. Appends flat tuples to `out`.
  void Materialize(uint32_t start, uint32_t base, uint32_t len,
                   std::vector<uint32_t>& out);

  void MaterializeStep(uint32_t depth, uint32_t base, uint32_t len,
                       std::vector<uint32_t>& out);

  bool ShouldStop();
  void Emit(std::span<const VertexId> path);

  const LightweightIndex& index_;

  // Per-run state.
  EnumCounters counters_;
  PathSink* sink_ = nullptr;
  Timer timer_;
  Deadline deadline_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  size_t tuple_limit_ = 0;  // per half, in uint32 units
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  uint32_t stack_[kMaxHops + 1];
  VertexId path_buf_[kMaxHops + 1];
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_JOIN_ENUMERATOR_H_
