// IDX-JOIN (paper Algorithm 6): cut the chain query Q at position i*,
// materialize the two halves with index-based DFS (walks with (t,t)
// padding, so paths of every length <= k are covered), hash-join them on
// the cut vertex, and emit the joined tuples that form valid simple paths.
//
// All intermediate storage (half-query tuple tables, the join key set, the
// per-key group ranges, the materialization on-path marks) is reusable
// scratch: rebind the enumerator to a new index per query and the steady
// state allocates nothing (see DESIGN.md). The key/group tables, whose size
// follows the per-query index vertex count, can optionally be served from a
// caller-owned BumpArena.
#ifndef PATHENUM_CORE_JOIN_ENUMERATOR_H_
#define PATHENUM_CORE_JOIN_ENUMERATOR_H_

#include <span>
#include <vector>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "util/memory.h"
#include "util/timer.h"

namespace pathenum {

/// Index-based join enumerator. Not thread-safe; one instance per worker.
class JoinEnumerator {
 public:
  /// Unbound enumerator; pass the index to Run.
  JoinEnumerator() = default;

  /// Bound to a fixed index (convenience for single-query use).
  explicit JoinEnumerator(const LightweightIndex& index) : index_(&index) {}

  /// Serves the per-query-sized tables (join keys, group ranges) from
  /// `arena` instead of member vectors. The caller owns the arena's Reset
  /// cadence: reset it between queries, never during a Run. Pass nullptr
  /// to return to member storage.
  void SetArena(BumpArena* arena) { arena_ = arena; }

  /// Enumerates all paths using cut position `cut` (1 <= cut <= k-1).
  /// `counters.peak_partial_bytes` reports the materialized tuple memory
  /// (the paper's Table 7 "Partial Results" row).
  EnumCounters Run(uint32_t cut, PathSink& sink, const EnumOptions& opts = {});
  EnumCounters Run(const LightweightIndex& index, uint32_t cut, PathSink& sink,
                   const EnumOptions& opts = {});

  /// Bytes of reusable scratch currently held in member storage (excludes
  /// arena-served tables; those are charged to the arena).
  size_t ScratchBytes() const;

 private:
  /// [begin, end) tuple range of one join key's group in `right_`.
  struct GroupRange {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// Generates the padded-walk tuples of Q[base : base+len-1]... i.e. all
  /// sequences of `len` slots starting at `start`, where position p of the
  /// tuple sits at query position base+p. Appends flat tuples to `out`.
  void Materialize(uint32_t start, uint32_t base, uint32_t len,
                   std::vector<uint32_t>& out);

  void MaterializeStep(uint32_t depth, uint32_t base, uint32_t len,
                       std::vector<uint32_t>& out);

  bool ShouldStop();
  void Emit(std::span<const VertexId> path);

  const LightweightIndex* index_ = nullptr;
  BumpArena* arena_ = nullptr;

  // Reusable scratch. left_/right_ hold the materialized half-query tuple
  // tables; is_key_/group_ are the join key set and per-key group ranges
  // (spans over the arena when one is set, over the _store vectors
  // otherwise); on_path_ carries the epoch-stamped duplicate marks for
  // Materialize (epoch bumps once per Materialize call).
  std::vector<uint32_t> left_;
  std::vector<uint32_t> right_;
  std::vector<uint8_t> is_key_store_;
  std::vector<GroupRange> group_store_;
  std::span<uint8_t> is_key_;
  std::span<GroupRange> group_;
  std::vector<uint32_t> on_path_;
  uint32_t epoch_ = 0;

  // Per-run state.
  EnumCounters counters_;
  PathSink* sink_ = nullptr;
  Timer timer_;
  Deadline deadline_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  size_t tuple_limit_ = 0;  // per half, in uint32 units
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  uint32_t stack_[kMaxHops + 1];
  VertexId path_buf_[kMaxHops + 1];
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_JOIN_ENUMERATOR_H_
