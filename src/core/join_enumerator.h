// IDX-JOIN (paper Algorithm 6): cut the chain query Q at position i*,
// materialize the two halves with index-based DFS (walks with (t,t)
// padding, so paths of every length <= k are covered), hash-join them on
// the cut vertex, and emit the joined tuples that form valid simple paths.
//
// All intermediate storage (half-query tuple tables, the join key set, the
// per-key group ranges, the materialization on-path marks) is reusable
// scratch: rebind the enumerator to a new index per query and the steady
// state allocates nothing (see DESIGN.md). The key/group tables, whose size
// follows the per-query index vertex count, can optionally be served from a
// caller-owned BumpArena.
#ifndef PATHENUM_CORE_JOIN_ENUMERATOR_H_
#define PATHENUM_CORE_JOIN_ENUMERATOR_H_

#include <atomic>
#include <span>
#include <vector>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "util/memory.h"
#include "util/timer.h"

namespace pathenum {

/// Right-half group table of a split IDX-JOIN probe (DESIGN.md §8): per
/// index slot, the materialized right-half tuples rooted at that slot
/// (contiguous within the buffer of the worker that ran the slot's unit).
/// Slots that are not join keys keep count 0.
struct JoinGroup {
  const uint32_t* tuples = nullptr;
  uint64_t count = 0;
};

/// Index-based join enumerator. Not thread-safe; one instance per worker.
class JoinEnumerator {
 public:
  /// Unbound enumerator; pass the index to Run.
  JoinEnumerator() = default;

  /// Bound to a fixed index (convenience for single-query use).
  explicit JoinEnumerator(const LightweightIndex& index) : index_(&index) {}

  /// Serves the per-query-sized tables (join keys, group ranges) from
  /// `arena` instead of member vectors. The caller owns the arena's Reset
  /// cadence: reset it between queries, never during a Run. Pass nullptr
  /// to return to member storage.
  void SetArena(BumpArena* arena) { arena_ = arena; }

  /// Enumerates all paths using cut position `cut` (1 <= cut <= k-1).
  /// `counters.peak_partial_bytes` reports the materialized tuple memory
  /// (the paper's Table 7 "Partial Results" row).
  EnumCounters Run(uint32_t cut, PathSink& sink, const EnumOptions& opts = {});
  EnumCounters Run(const LightweightIndex& index, uint32_t cut, PathSink& sink,
                   const EnumOptions& opts = {});

  /// One independent materialization unit of a split IDX-JOIN (the
  /// engine's intra-query mode, DESIGN.md §8): appends the padded-walk
  /// tuples of the half query [base, base + len - 1] rooted at `start` to
  /// `out`, re-arming every per-run limit from `opts` and using this
  /// enumerator's scratch — one enumerator per worker, like Run. When
  /// `shared_used` is given, the unit additionally meters its tuples
  /// (uint32 units) against the cross-worker half budget `shared_cap`;
  /// exceeding either budget stops with out_of_memory, exactly like the
  /// serial half it replaces.
  EnumCounters MaterializeUnit(const LightweightIndex& index, uint32_t start,
                               uint32_t base, uint32_t len,
                               std::vector<uint32_t>& out,
                               const EnumOptions& opts,
                               std::atomic<size_t>* shared_used = nullptr,
                               size_t shared_cap = 0);

  /// One probe unit of a split IDX-JOIN: joins the left tuples
  /// [tuple_begin, tuple_end) of `left` against the grouped right half and
  /// emits the valid joined paths into `sink` (a serialized BranchSink in
  /// the engine; cross-worker limits are delegated to it via
  /// internal::BranchOptions). `groups` is indexed by slot.
  EnumCounters ProbeUnit(const LightweightIndex& index, uint32_t cut,
                         std::span<const uint32_t> left, size_t tuple_begin,
                         size_t tuple_end, std::span<const JoinGroup> groups,
                         PathSink& sink, const EnumOptions& opts);

  /// Bytes of reusable scratch currently held in member storage (excludes
  /// arena-served tables; those are charged to the arena).
  size_t ScratchBytes() const;

 private:
  /// [begin, end) tuple range of one join key's group in `right_`.
  struct GroupRange {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// Generates the padded-walk tuples of Q[base : base+len-1]... i.e. all
  /// sequences of `len` slots starting at `start`, where position p of the
  /// tuple sits at query position base+p. Appends flat tuples to `out`.
  void Materialize(uint32_t start, uint32_t base, uint32_t len,
                   std::vector<uint32_t>& out);

  void MaterializeStep(uint32_t depth, uint32_t base, uint32_t len,
                       std::vector<uint32_t>& out);

  /// Re-arms every per-run limit from `opts` (shared by Run and the split
  /// units, so a limit hit by one run can never leak into the next).
  void Prepare(const LightweightIndex& index, const EnumOptions& opts);

  /// Joins one left tuple with one right tuple: compose, de-pad, validate,
  /// and emit — the single implementation behind the serial probe loop and
  /// ProbeUnit.
  void JoinPair(const uint32_t* left_tuple, uint32_t cut,
                const uint32_t* right_tuple, uint32_t right_width);

  bool ShouldStop();

  /// Cold path of ShouldStop: polls cancel/deadline/work budget, setting
  /// the matching counter flag and stop_ on a trip.
  void CheckControl();

  /// Appends the validated slot path to the pending block (DESIGN.md §9) —
  /// the block computes the shared prefix against the previous joined path
  /// and translates slots to vertex ids as the suffix is copied — flushing
  /// to the sink as blocks fill; sets stop_ on sink stop / result limit.
  void Emit(std::span<const uint32_t> slot_path);

  const LightweightIndex* index_ = nullptr;
  BumpArena* arena_ = nullptr;

  // Reusable scratch. left_/right_ hold the materialized half-query tuple
  // tables; is_key_/group_ are the join key set and per-key group ranges
  // (spans over the arena when one is set, over the _store vectors
  // otherwise); on_path_ carries the epoch-stamped duplicate marks for
  // Materialize (epoch bumps once per Materialize call).
  std::vector<uint32_t> left_;
  std::vector<uint32_t> right_;
  std::vector<uint8_t> is_key_store_;
  std::vector<GroupRange> group_store_;
  std::span<uint8_t> is_key_;
  std::span<GroupRange> group_;
  std::vector<uint32_t> on_path_;
  uint32_t epoch_ = 0;

  // Per-run state.
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  const std::atomic<bool>* cancel_ = nullptr;  // null: never cancels
  uint64_t work_budget_ = 0;
  size_t tuple_limit_ = 0;  // per half, in uint32 units
  std::atomic<size_t>* shared_used_ = nullptr;  // split units only
  size_t shared_cap_ = 0;
  uint64_t check_countdown_ = 0;
  /// Separate, tighter countdown at full-tuple granularity: one materialized
  /// tuple is far more work than one search step, so deadlines/cancels must
  /// land within a bounded number of tuples, not 8192 steps (DESIGN.md §10).
  uint64_t tuple_check_countdown_ = 0;
  bool stop_ = false;
  BlockEmitter emitter_;
  uint32_t stack_[kMaxHops + 1];
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_JOIN_ENUMERATOR_H_
