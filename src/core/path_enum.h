// The PathEnum driver — the full pipeline of paper Figure 2:
//   1. build the light-weight index for q(s, t, k);
//   2. preliminary cardinality estimate T̂ (Eq. 5);
//   3. if T̂ <= τ, run IDX-DFS directly;
//   4. otherwise run the full-fledged optimizer (Alg. 5) and execute the
//      cheaper of IDX-DFS and IDX-JOIN.
// Keep one PathEnumerator per graph/session: it owns the reusable BFS
// buffers, so repeated queries avoid O(|V|) re-initialisation.
#ifndef PATHENUM_CORE_PATH_ENUM_H_
#define PATHENUM_CORE_PATH_ENUM_H_

#include <vector>

#include "core/constraints.h"
#include "core/dfs_enumerator.h"
#include "core/estimator.h"
#include "core/index.h"
#include "core/join_enumerator.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/view.h"
#include "util/memory.h"

namespace pathenum {

class PrunedLandmarkIndex;

namespace internal {
/// Bumps the `pathenum_oracle_dropped_total` metric: an oracle was handed
/// in alongside an overlay view (or failed a rebind) and was discarded
/// instead of consulted. Defined in path_enum.cpp.
void NoteOracleDropped();
}  // namespace internal

/// Facade over index construction, the optimizer and both enumerators.
///
/// Owns every piece of per-query scratch (BFS fields, enumerator stacks and
/// mark arrays, join tuple tables, the bump arena for per-query-sized
/// tables), so repeated queries through one instance reach a zero-allocation
/// steady state. One instance serves one thread; the engine keeps one per
/// worker (see src/engine/).
class PathEnumerator {
 public:
  /// `oracle` (optional, not owned) is the §7.5-style offline global
  /// index: when provided, queries with d(s,t) > k are rejected in
  /// O(|label|) before any per-query work. It must describe the same graph
  /// snapshot (a stale oracle may wrongly reject; never wrongly accept
  /// results — acceptance still runs the exact pipeline). Accepts a plain
  /// `Graph` (implicit borrowing view, version 0) or a live `GraphView`
  /// snapshot. An oracle can only describe an overlay-free view; pairing
  /// one with an overlay view degrades gracefully — the oracle is dropped
  /// (every query then runs the exact pipeline) and the
  /// `pathenum_oracle_dropped_total` metric records the mismatch.
  explicit PathEnumerator(const GraphView& view,
                          const PrunedLandmarkIndex* oracle = nullptr)
      : view_(view), oracle_(oracle) {
    if (oracle_ != nullptr && view.has_overlay()) {
      oracle_ = nullptr;
      internal::NoteOracleDropped();
    }
    join_.SetArena(&arena_);
  }

  /// True when an oracle valid for `bound` still describes `next`: the
  /// same base topology (by Graph::uid, not object address — a recycled
  /// allocation must not resurrect a retired oracle) with no overlay on
  /// top. The single source of the stale-oracle rule — every rebind path
  /// (here and in the engine) must use it, or a stale oracle could wrongly
  /// reject newly connected pairs.
  static bool OracleSurvivesRebind(const GraphView& bound,
                                   const GraphView& next) {
    return next.base().uid() == bound.base().uid() && !next.has_overlay();
  }

  /// Points the enumerator at a different snapshot. Cheap: the epoch-stamped
  /// scratch survives (buffers resize lazily if |V| changed). The oracle is
  /// dropped unless it survives per OracleSurvivesRebind.
  void Rebind(const GraphView& view) {
    if (oracle_ != nullptr && !OracleSurvivesRebind(view_, view)) {
      oracle_ = nullptr;
    }
    view_ = view;
  }

  /// Rebind with an explicit oracle decision — the engine uses this to
  /// restore an oracle when a later batch returns to the base graph the
  /// oracle describes. `oracle` must describe exactly `view`'s topology
  /// (hence: overlay-free), or be null; an oracle paired with an overlay
  /// view is dropped (and counted), never consulted.
  void Rebind(const GraphView& view, const PrunedLandmarkIndex* oracle) {
    if (oracle != nullptr && view.has_overlay()) {
      oracle = nullptr;
      internal::NoteOracleDropped();
    }
    view_ = view;
    oracle_ = oracle;
  }

  /// Runs q and streams every hop-constrained s-t path into `sink`.
  /// `opts.method` selects IDX-DFS / IDX-JOIN / cost-based auto.
  QueryStats Run(const Query& q, PathSink& sink, const EnumOptions& opts = {});

  /// The index-construction options Run would use for `q` under `opts` —
  /// exposed so the engine's cross-query cache keys (DESIGN.md §6) match
  /// exactly what Run builds.
  static IndexBuilder::Options BuildOptionsFor(const Query& q,
                                               const EnumOptions& opts);

  /// The method/cut decision of the Figure-2 pipeline for an already-built
  /// index. The single planning path shared by Run/RunWithIndex and the
  /// engine's intra-query split mode (DESIGN.md §8) — split and serial
  /// executions of one query must agree on the method, or the split/serial
  /// differential guarantees break. Fills the estimator/optimizer fields
  /// of `stats`. The index must satisfy BuildOptionsFor(query, opts).
  struct ExecutionPlan {
    Method method = Method::kDfs;
    uint32_t cut = 0;  // i* (join only)
  };
  static ExecutionPlan PlanExecution(const LightweightIndex& index,
                                     const EnumOptions& opts,
                                     QueryStats& stats);

  /// Runs the post-construction pipeline (estimate, optimize, enumerate) on
  /// an externally provided index for `index.query()`, skipping the build —
  /// the engine's index cache executes hits through this. `index` must have
  /// been built over graph() with options at least as complete as
  /// BuildOptionsFor(index.query(), opts); it may be shared read-only with
  /// other threads. `stats.bfs_ms`/`index_ms` are 0 (nothing was built).
  QueryStats RunWithIndex(const LightweightIndex& index, PathSink& sink,
                          const EnumOptions& opts = {});

  /// True iff the oracle certifies d(s,t) > k (query has no result).
  bool OracleRejects(const Query& q) const;

  /// Runs q under the Appendix-E constraint extensions. Constrained queries
  /// always use the (constrained) DFS enumerator; the edge predicate is
  /// pushed down into index construction.
  QueryStats RunConstrained(const Query& q, const PathConstraints& constraints,
                            PathSink& sink, const EnumOptions& opts = {});

  /// The base graph of the bound snapshot (identical to the full topology
  /// only when the view is overlay-free).
  const Graph& graph() const { return view_.base(); }

  /// The bound snapshot.
  const GraphView& view() const { return view_; }

  /// Builds and returns just the index (tooling/benchmark hook). Overlay-
  /// free views dispatch to the Build<Graph> instantiation so the static
  /// hot path keeps its branch-free adjacency loops (overlay views pay one
  /// predictable overlay check per access).
  LightweightIndex BuildIndex(const Query& q,
                              const IndexBuilder::Options& opts = {}) {
    return view_.has_overlay() ? builder_.Build(view_, q, opts)
                               : builder_.Build(view_.base(), q, opts);
  }

  /// Bytes of reusable scratch currently held (enumerator marks/buffers plus
  /// the arena's capacity). Stable across repeated identical queries — the
  /// engine's no-allocation-in-steady-state tests assert exactly this.
  size_t ScratchBytes() const {
    return dfs_.ScratchBytes() + join_.ScratchBytes() + arena_.capacity_bytes();
  }

  const BumpArena& arena() const { return arena_; }

 private:
  // Intra-query splitting (DESIGN.md §8) reuses dfs_/join_ per worker
  // through QueryContext's split accessors.
  friend class QueryContext;

  /// Shared tail of Run/RunWithIndex: method choice and enumeration.
  void ExecuteOnIndex(const LightweightIndex& index, QueryStats& stats,
                      PathSink& sink, const EnumOptions& opts, Timer& total);

  GraphView view_;
  const PrunedLandmarkIndex* oracle_;
  IndexBuilder builder_;
  DfsEnumerator dfs_;
  JoinEnumerator join_;
  BumpArena arena_;
};

/// Calibrates the preliminary-estimator threshold τ for a graph following
/// §6.2: grow τ through powers of ten until the time IDX-DFS needs to find
/// τ results exceeds the median join-order-optimization time of the sample
/// queries. Returns the chosen τ.
double CalibrateTau(const Graph& g, const std::vector<Query>& sample_queries,
                    double max_tau = 1e8);

}  // namespace pathenum

#endif  // PATHENUM_CORE_PATH_ENUM_H_
