// HcPE constraint extensions (paper Appendix E):
//  * edge predicates — pushed down into the BFS and index construction, so
//    filtered edges never enter the search (Appendix E.1);
//  * accumulative-value constraints — a commutative/associative binary
//    operation folded over edge weights, accepted by a user predicate, with
//    optional monotone pruning (Algorithm 7);
//  * label-sequence constraints — a finite automaton over edge labels that
//    each result path must drive from the start state to an accepting state
//    (Algorithm 8).
#ifndef PATHENUM_CORE_CONSTRAINTS_H_
#define PATHENUM_CORE_CONSTRAINTS_H_

#include <functional>
#include <span>
#include <vector>

#include "core/index.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/bfs.h"
#include "util/timer.h"

namespace pathenum {

/// Accumulative-value constraint (Alg. 7). The fold starts at `init` and
/// combines the weight of each traversed edge; a path is emitted only when
/// `accept(value)` holds at t.
struct AccumulativeConstraint {
  double init = 0.0;

  /// Must be commutative and associative (paper requirement): e.g. +, *,
  /// min, max.
  std::function<double(double, double)> combine;

  /// Final acceptance test at t.
  std::function<bool(double)> accept;

  /// Optional monotone pruning: returns true if a partial value can already
  /// never be accepted (valid only when `combine` is monotone in the fold,
  /// e.g. nonnegative sums against an upper bound — Alg. 7's discussion).
  std::function<bool(double)> prune;
};

/// Deterministic finite automaton over edge labels (Alg. 8).
class LabelAutomaton {
 public:
  /// Sentinel returned by Next() for an invalid transition.
  static constexpr uint32_t kDead = 0xffffffffu;

  LabelAutomaton(uint32_t num_states, uint32_t num_labels,
                 uint32_t start_state);

  void AddTransition(uint32_t from, uint32_t label, uint32_t to);
  void SetAccepting(uint32_t state, bool accepting = true);

  uint32_t start_state() const { return start_; }
  uint32_t num_states() const { return num_states_; }
  uint32_t num_labels() const { return num_labels_; }

  uint32_t Next(uint32_t state, uint32_t label) const {
    return label < num_labels_ ? delta_[state * num_labels_ + label] : kDead;
  }

  bool IsAccepting(uint32_t state) const { return accepting_[state]; }

  /// Automaton accepting exactly the label sequence `labels` (the paper's
  /// "write -> mention" example shape).
  static LabelAutomaton ExactSequence(std::span<const uint32_t> labels,
                                      uint32_t num_labels);

  /// Automaton accepting paths that traverse at least `min_count` edges
  /// with label `label` (the "at least two high-risk countries" example).
  static LabelAutomaton AtLeastCount(uint32_t label, uint32_t min_count,
                                     uint32_t num_labels);

 private:
  uint32_t num_states_;
  uint32_t num_labels_;
  uint32_t start_;
  std::vector<uint32_t> delta_;
  std::vector<uint8_t> accepting_;
};

/// Bundle of optional constraints applied to one query.
struct PathConstraints {
  /// Pushed down into index construction; see IndexBuilder::Options.
  const EdgeFilter* edge_filter = nullptr;
  const AccumulativeConstraint* accumulative = nullptr;
  const LabelAutomaton* automaton = nullptr;

  bool HasSearchState() const {
    return accumulative != nullptr || automaton != nullptr;
  }
};

/// Index-based JOIN under constraints — the extension Appendix E sketches
/// and omits "for brevity": each half-tuple carries its accumulated value
/// (folded from `init`, which must therefore be an identity of `combine` —
/// e.g. 0 for +, 1 for *); the join combines the halves' values, applies
/// `accept`, and replays the automaton over the joined path's labels.
/// Monotone pruning applies inside each half exactly as in the DFS.
class ConstrainedJoinEnumerator {
 public:
  ConstrainedJoinEnumerator(const Graph& g, const LightweightIndex& index,
                            const PathConstraints& constraints);

  /// Enumerates all constraint-satisfying paths using cut position `cut`.
  EnumCounters Run(uint32_t cut, PathSink& sink,
                   const EnumOptions& opts = {});

 private:
  void Materialize(uint32_t start, uint32_t base, uint32_t len,
                   std::vector<uint32_t>& out, std::vector<double>& values);
  void MaterializeStep(uint32_t depth, uint32_t base, uint32_t len,
                       double value, std::vector<uint32_t>& out,
                       std::vector<double>& values);
  bool ShouldStop();
  /// Automaton replay over the de-padded joined path; true iff accepted.
  bool AutomatonAccepts(const VertexId* path, uint32_t length) const;

  const Graph& graph_;
  const LightweightIndex& index_;
  const PathConstraints& constraints_;

  PathSink* sink_ = nullptr;
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  size_t tuple_limit_ = 0;
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  uint32_t stack_[kMaxHops + 1];
  VertexId path_buf_[kMaxHops + 1];
};

/// Index-based DFS carrying constraint state (Algorithms 7 and 8 fused).
/// Requires the index to have been built with the same edge filter. The
/// graph supplies edge weights/labels via the index's stored edge ids.
class ConstrainedDfsEnumerator {
 public:
  ConstrainedDfsEnumerator(const Graph& g, const LightweightIndex& index,
                           const PathConstraints& constraints);

  EnumCounters Run(PathSink& sink, const EnumOptions& opts = {});

 private:
  uint64_t Search(uint32_t slot, uint32_t depth, double value,
                  uint32_t state);
  bool ShouldStop();

  const Graph& graph_;
  const LightweightIndex& index_;
  const PathConstraints& constraints_;

  PathSink* sink_ = nullptr;
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  uint32_t stack_[kMaxHops + 1];
  VertexId path_buf_[kMaxHops + 1];
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_CONSTRAINTS_H_
