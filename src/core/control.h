// Query-lifecycle control primitives (DESIGN.md §10): the cooperative
// CancelToken, the QueryControl bundle (deadline + cancellation + work
// budget) threaded from submission to sink, and the terminal states every
// front-end reports per query.
//
// Cancellation is cooperative: enumerators poll the token at block-emission
// and cursor-refill granularity (every ~256 emitted paths / ~8192 search
// steps), the index builder's BFS polls once per wave, and split/async
// fan-outs poll per drained unit — so a trip stops every in-flight unit of
// a query within a bounded amount of work, with whatever was already found
// delivered as a well-formed partial result. A null (default) token costs
// one pointer test per poll.
#ifndef PATHENUM_CORE_CONTROL_H_
#define PATHENUM_CORE_CONTROL_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>

#include "util/timer.h"

namespace pathenum {

/// Terminal state of one query's lifecycle, as reported by BatchResult /
/// QueryTicket. Everything except kRejected/kError delivers a well-formed
/// (possibly empty, possibly partial) result set to the sink.
enum class QueryState : uint8_t {
  kOk = 0,            // ran to exhaustion: the result set is complete
  kTruncated,         // stopped by result limit / sink / memory or work budget
  kDeadlineExceeded,  // wall-clock deadline tripped mid-run (or mid-build)
  kCancelled,         // CancelToken tripped mid-run (or mid-build)
  kRejected,          // never ran: validation failure or admission shed
  kError,             // internal failure (throwing sink, ...); see the message
  kUnsatisfiable,     // oracle-certified dist(s,t) > k: complete empty result
};

/// Number of QueryState values (metric arrays index by state).
inline constexpr size_t kNumQueryStates = 7;

inline std::string_view QueryStateName(QueryState s) {
  switch (s) {
    case QueryState::kOk: return "Ok";
    case QueryState::kTruncated: return "Truncated";
    case QueryState::kDeadlineExceeded: return "DeadlineExceeded";
    case QueryState::kCancelled: return "Cancelled";
    case QueryState::kRejected: return "Rejected";
    case QueryState::kError: return "Error";
    case QueryState::kUnsatisfiable: return "Unsatisfiable";
  }
  return "?";
}

/// True when the state guarantees the sink saw a well-formed result stream
/// (every path delivered before the stop is a real path; no partial blocks).
/// An unsatisfiable query delivered the complete (empty) result set without
/// touching the sink.
inline bool DeliveredResults(QueryState s) {
  return s == QueryState::kOk || s == QueryState::kTruncated ||
         s == QueryState::kDeadlineExceeded || s == QueryState::kCancelled ||
         s == QueryState::kUnsatisfiable;
}

/// Cooperative cancellation latch. Cheap to copy; all copies share the
/// flag. The default-constructed token is *null*: it can never fire and
/// checking it is a single pointer test, so unconcerned callers pay
/// nothing. Cancel() is sticky and idempotent; it may race the query
/// arbitrarily (including firing before the query starts, which rejects
/// the run at the first poll).
class CancelToken {
 public:
  CancelToken() = default;

  /// A token that can actually fire. Hand copies to the query (via
  /// EnumOptions::cancel) and keep one to Cancel() from any thread.
  static CancelToken Cancellable() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// False for the null token (Cancel would be a no-op).
  bool can_cancel() const { return flag_ != nullptr; }

  /// Signals every copy of this token. Thread-safe, idempotent.
  void Cancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  /// The raw flag for hot loops (null for the null token): holders poll
  /// with one relaxed load, no shared_ptr traffic. Valid while any copy of
  /// the token is alive.
  const std::atomic<bool>* flag() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The per-query control bundle: one of these (conceptually) travels with
/// the query from submission to sink. EnumOptions carries the ingredients
/// (time_limit_ms, cancel, work_budget_edges); enumerators materialize the
/// deadline at Run start and poll all three together.
struct QueryControl {
  Deadline deadline = Deadline::Unlimited();
  CancelToken cancel;
  /// Cap on neighbor entries examined (edges_accessed). A deterministic,
  /// clock-free budget — the same query tripping it always stops at the
  /// same point. Exceeding it truncates the run (QueryState::kTruncated).
  uint64_t work_budget_edges = std::numeric_limits<uint64_t>::max();

  /// What tripped, checked in precedence order (cancel beats deadline
  /// beats work budget, matching EnumCounters::TerminalState).
  enum class Trip : uint8_t { kNone, kCancelled, kDeadline, kWorkBudget };

  Trip Check(uint64_t work_done) const {
    if (cancel.cancelled()) return Trip::kCancelled;
    if (deadline.Expired()) return Trip::kDeadline;
    if (work_done >= work_budget_edges) return Trip::kWorkBudget;
    return Trip::kNone;
  }
};

}  // namespace pathenum

#endif  // PATHENUM_CORE_CONTROL_H_
