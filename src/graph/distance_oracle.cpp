#include "graph/distance_oracle.h"

#include <algorithm>
#include <numeric>

#include "util/memory.h"
#include "util/timer.h"

namespace pathenum {

namespace {

/// Working labels during construction: per-vertex growable entry lists in
/// rank space (hubs are processed in rank order, so lists stay sorted).
struct WorkingLabels {
  std::vector<std::vector<PrunedLandmarkIndex::Entry>> out_labels;
  std::vector<std::vector<PrunedLandmarkIndex::Entry>> in_labels;
};

/// Query over working labels (both sorted by hub rank): linear merge.
uint32_t QueryWorking(const std::vector<PrunedLandmarkIndex::Entry>& out,
                      const std::vector<PrunedLandmarkIndex::Entry>& in) {
  uint32_t best = kInfDistance;
  size_t i = 0, j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i].hub == in[j].hub) {
      best = std::min(best, out[i].dist + in[j].dist);
      ++i;
      ++j;
    } else if (out[i].hub < in[j].hub) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

}  // namespace

PrunedLandmarkIndex PrunedLandmarkIndex::Build(const Graph& g) {
  Timer timer;
  const VertexId n = g.num_vertices();
  PrunedLandmarkIndex index;

  // Hub order: descending total degree (the standard heuristic). `rank[v]`
  // is v's position; labels store hubs in rank space.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.Degree(a) > g.Degree(b);
  });

  WorkingLabels labels;
  labels.out_labels.resize(n);
  labels.in_labels.resize(n);

  std::vector<uint32_t> dist(n, kInfDistance);
  std::vector<VertexId> queue;
  queue.reserve(n);

  // One pruned BFS per direction per hub.
  for (uint32_t rank = 0; rank < n; ++rank) {
    const VertexId h = order[rank];
    for (const int direction : {0, 1}) {  // 0: forward from h, 1: backward
      queue.clear();
      dist[h] = 0;
      queue.push_back(h);
      for (size_t head = 0; head < queue.size(); ++head) {
        const VertexId u = queue[head];
        const uint32_t du = dist[u];
        // Prune: if some higher-ranked hub pair already certifies a
        // distance <= du, u's subtree gains nothing from hub h.
        const uint32_t certified =
            direction == 0 ? QueryWorking(labels.out_labels[h],
                                          labels.in_labels[u])
                           : QueryWorking(labels.out_labels[u],
                                          labels.in_labels[h]);
        if (certified <= du) continue;
        // Label u with hub h (rank space).
        if (direction == 0) {
          labels.in_labels[u].push_back({rank, du});
        } else {
          labels.out_labels[u].push_back({rank, du});
        }
        const auto nbrs = direction == 0 ? g.OutNeighbors(u)
                                         : g.InNeighbors(u);
        for (const VertexId w : nbrs) {
          if (dist[w] != kInfDistance) continue;
          dist[w] = du + 1;
          queue.push_back(w);
        }
      }
      for (const VertexId v : queue) dist[v] = kInfDistance;
    }
  }

  // Pack into CSR form.
  auto pack = [n](const std::vector<std::vector<Entry>>& src,
                  std::vector<uint64_t>& offsets,
                  std::vector<Entry>& entries) {
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] = src[v].size();
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    entries.reserve(offsets[n]);
    for (VertexId v = 0; v < n; ++v) {
      entries.insert(entries.end(), src[v].begin(), src[v].end());
    }
  };
  pack(labels.out_labels, index.out_offsets_, index.out_entries_);
  pack(labels.in_labels, index.in_offsets_, index.in_entries_);

  index.stats_.build_ms = timer.ElapsedMs();
  index.stats_.avg_label_entries =
      n == 0 ? 0.0
             : static_cast<double>(index.out_entries_.size() +
                                   index.in_entries_.size()) /
                   (2.0 * static_cast<double>(n));
  index.stats_.memory_bytes = index.MemoryBytes();
  return index;
}

uint32_t PrunedLandmarkIndex::Distance(VertexId s, VertexId t) const {
  PATHENUM_CHECK(s < num_vertices() && t < num_vertices());
  if (s == t) return 0;
  const auto out = OutLabel(s);
  const auto in = InLabel(t);
  uint32_t best = kInfDistance;
  size_t i = 0, j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i].hub == in[j].hub) {
      best = std::min(best, out[i].dist + in[j].dist);
      ++i;
      ++j;
    } else if (out[i].hub < in[j].hub) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

bool PrunedLandmarkIndex::Within(VertexId s, VertexId t,
                                 uint32_t bound) const {
  const uint32_t d = Distance(s, t);
  return d != kInfDistance && d <= bound;
}

size_t PrunedLandmarkIndex::MemoryBytes() const {
  return VectorBytes(out_offsets_) + VectorBytes(out_entries_) +
         VectorBytes(in_offsets_) + VectorBytes(in_entries_);
}

}  // namespace pathenum
