// Bounded breadth-first-search distance fields.
//
// The light-weight index (paper Alg. 3, line 1) needs, per query,
//   v.s = S(s, v | G - {t})   and   v.t = S(v, t | G - {s}),
// i.e. shortest-walk distances whose *internal* vertices avoid the other
// query endpoint. `DistanceField` implements this with a "blocked" vertex
// that is assigned a distance when reached but never expanded.
//
// Buffers are epoch-stamped so a field can be reused across thousands of
// queries with O(frontier) cost instead of O(|V|) re-initialisation.
#ifndef PATHENUM_GRAPH_BFS_H_
#define PATHENUM_GRAPH_BFS_H_

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace pathenum {

/// Which adjacency to follow.
enum class Direction {
  kForward,   // follow out-edges: distances *from* the source
  kBackward,  // follow in-edges: distances *to* the source
};

/// Optional edge filter for predicate-constrained queries (Appendix E).
/// Receives the edge in graph orientation (u -> v) and its edge id; returns
/// false to make the edge invisible to the traversal.
using EdgeFilter = std::function<bool(VertexId u, VertexId v, EdgeId e)>;

/// Optional vertex admission filter: a discovered vertex failing the filter
/// is neither stamped nor expanded (the source is always admitted). The
/// index builder uses it to confine the second BFS to the X set — exact
/// because every vertex on a shortest path to an admitted vertex is itself
/// admitted (triangle inequality; see DESIGN.md).
using VertexAdmission = std::function<bool(VertexId v, uint32_t dist)>;

/// Traversal options for DistanceField::Compute.
struct BfsOptions {
  /// Vertex assigned a distance when reached but never expanded
  /// (kInvalidVertex: none). Models "internal vertices avoid this vertex".
  VertexId blocked = kInvalidVertex;
  /// Depth cap; vertices farther than this stay unreached.
  uint32_t max_depth = kInfDistance;
  /// Stop the traversal as soon as this vertex is assigned a distance
  /// (kInvalidVertex: run to exhaustion). Used by reachability probes.
  VertexId stop_at = kInvalidVertex;
  /// Optional edge filter; null means all edges are visible.
  const EdgeFilter* filter = nullptr;
  /// Optional vertex admission filter; null admits everything.
  const VertexAdmission* admit = nullptr;
};

/// Reusable BFS distance field.
class DistanceField {
 public:
  using Options = BfsOptions;

  DistanceField() = default;

  /// Runs a BFS from `source` over `g` in direction `dir`. Invalidates the
  /// result of any previous Compute on this object.
  void Compute(const Graph& g, Direction dir, VertexId source,
               const Options& opts = {});

  /// Distance of `v` from/to the source, or kInfDistance if unreached.
  uint32_t Distance(VertexId v) const {
    return (v < stamp_.size() && stamp_[v] == epoch_) ? dist_[v]
                                                      : kInfDistance;
  }

  /// Vertices reached by the last Compute, in BFS order (source first).
  const std::vector<VertexId>& Reached() const { return reached_; }

 private:
  void EnsureSize(size_t n);

  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> dist_;
  std::vector<VertexId> reached_;  // doubles as the BFS queue
  uint32_t epoch_ = 0;
};

/// True iff a path from `from` to `to` of length <= `max_depth` exists.
/// Convenience wrapper used by the workload generator (dist(s,t) <= 3).
bool WithinDistance(const Graph& g, VertexId from, VertexId to,
                    uint32_t max_depth);

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_BFS_H_
