// Bounded breadth-first-search distance fields.
//
// The light-weight index (paper Alg. 3, line 1) needs, per query,
//   v.s = S(s, v | G - {t})   and   v.t = S(v, t | G - {s}),
// i.e. shortest-walk distances whose *internal* vertices avoid the other
// query endpoint. `DistanceField` implements this with a "blocked" vertex
// that is assigned a distance when reached but never expanded.
//
// Buffers are epoch-stamped so a field can be reused across thousands of
// queries with O(frontier) cost instead of O(|V|) re-initialisation.
//
// Two entry points: `Compute` takes the std::function-based BfsOptions
// filters (stable public API), while the templated `ComputeWith` accepts
// concrete callables that inline into the relaxation loop — the index-build
// hot path uses it so the unfiltered case performs zero indirect calls per
// edge.
#ifndef PATHENUM_GRAPH_BFS_H_
#define PATHENUM_GRAPH_BFS_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <type_traits>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace pathenum {

/// Which adjacency to follow.
enum class Direction {
  kForward,   // follow out-edges: distances *from* the source
  kBackward,  // follow in-edges: distances *to* the source
};

/// Optional edge filter for predicate-constrained queries (Appendix E).
/// Receives the edge in graph orientation (u -> v) and its edge id; returns
/// false to make the edge invisible to the traversal.
using EdgeFilter = std::function<bool(VertexId u, VertexId v, EdgeId e)>;

/// Optional vertex admission filter: a discovered vertex failing the filter
/// is neither stamped nor expanded (the source is always admitted). The
/// index builder uses it to confine the second BFS to the X set — exact
/// because every vertex on a shortest path to an admitted vertex is itself
/// admitted (triangle inequality; see DESIGN.md).
using VertexAdmission = std::function<bool(VertexId v, uint32_t dist)>;

/// Sentinel callables for ComputeWith: the compiler folds the always-true
/// branches away, so the unfiltered traversal never computes edge ids and
/// performs no per-edge calls at all.
struct AcceptAllEdges {
  constexpr bool operator()(VertexId, VertexId, EdgeId) const { return true; }
};
struct AdmitAllVertices {
  constexpr bool operator()(VertexId, uint32_t) const { return true; }
};

/// Traversal options for DistanceField::Compute.
struct BfsOptions {
  /// Vertex assigned a distance when reached but never expanded
  /// (kInvalidVertex: none). Models "internal vertices avoid this vertex".
  VertexId blocked = kInvalidVertex;
  /// Depth cap; vertices farther than this stay unreached.
  uint32_t max_depth = kInfDistance;
  /// Stop the traversal as soon as this vertex is assigned a distance
  /// (kInvalidVertex: run to exhaustion). Used by reachability probes.
  VertexId stop_at = kInvalidVertex;
  /// Optional edge filter; null means all edges are visible.
  const EdgeFilter* filter = nullptr;
  /// Optional vertex admission filter; null admits everything.
  const VertexAdmission* admit = nullptr;
  /// Cooperative controls, polled once per BFS wave (frontier depth): the
  /// raw flag of a CancelToken (core/control.h) and a wall-clock deadline.
  /// On a trip the traversal stops mid-wave and `interrupted()` reports
  /// which control fired — distances computed so far are incomplete and
  /// must not be used (the index builder discards them).
  const std::atomic<bool>* cancel = nullptr;
  Deadline deadline = Deadline::Unlimited();
};

/// Reusable BFS distance field.
///
/// Traversals are templated over the graph type: anything exposing the
/// Graph accessor contract (`num_vertices`, sorted `OutNeighbors` /
/// `InNeighbors` spans, `OutEdgeId`, `FindEdge`) works — in practice the
/// immutable `Graph` and the live subsystem's `GraphView` overlay snapshots
/// (graph/view.h), each instantiating its own inlined relaxation loop.
class DistanceField {
 public:
  using Options = BfsOptions;

  /// Which BfsOptions control stopped the last Compute early (kNone: it
  /// ran to exhaustion).
  enum class Interrupt : uint8_t { kNone, kCancelled, kDeadline };

  DistanceField() = default;

  /// Runs a BFS from `source` over `g` in direction `dir`. Invalidates the
  /// result of any previous Compute on this object. Dispatches once on the
  /// presence of `opts.filter`/`opts.admit`, so the std::function cost is
  /// only paid when a filter is actually installed.
  template <typename GraphT>
  void Compute(const GraphT& g, Direction dir, VertexId source,
               const Options& opts = {}) {
    const EdgeFilter* filter = opts.filter;
    const VertexAdmission* admit = opts.admit;
    const auto call_filter = [filter](VertexId u, VertexId v, EdgeId e) {
      return (*filter)(u, v, e);
    };
    const auto call_admit = [admit](VertexId v, uint32_t dist) {
      return (*admit)(v, dist);
    };
    if (filter != nullptr && admit != nullptr) {
      ComputeWith(g, dir, source, opts, call_filter, call_admit);
    } else if (filter != nullptr) {
      ComputeWith(g, dir, source, opts, call_filter, AdmitAllVertices{});
    } else if (admit != nullptr) {
      ComputeWith(g, dir, source, opts, AcceptAllEdges{}, call_admit);
    } else {
      ComputeWith(g, dir, source, opts, AcceptAllEdges{}, AdmitAllVertices{});
    }
  }

  /// Devirtualized traversal: `filter` and `admit` are concrete callables
  /// (same signatures as EdgeFilter/VertexAdmission) inlined into the
  /// relaxation loop. `opts.filter`/`opts.admit` are ignored here — the
  /// parameters replace them; pass AcceptAllEdges/AdmitAllVertices for the
  /// unrestricted branch-free path.
  template <typename GraphT, typename FilterFn, typename AdmitFn>
  void ComputeWith(const GraphT& g, Direction dir, VertexId source,
                   const Options& opts, FilterFn&& filter, AdmitFn&& admit) {
    PATHENUM_CHECK(source < g.num_vertices());
    EnsureSize(g.num_vertices());
    if (++epoch_ == 0) {  // stamp wrap-around: reset and restart epochs
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    reached_.clear();
    interrupted_ = Interrupt::kNone;

    stamp_[source] = epoch_;
    dist_[source] = 0;
    reached_.push_back(source);
    if (source == opts.stop_at) return;

    constexpr bool kHasFilter =
        !std::is_same_v<std::decay_t<FilterFn>, AcceptAllEdges>;
    constexpr bool kHasAdmit =
        !std::is_same_v<std::decay_t<AdmitFn>, AdmitAllVertices>;

    // `reached_` doubles as the FIFO queue: BFS order is non-decreasing in
    // distance, so scanning it front-to-back visits each frontier in turn.
    uint32_t polled_depth = 0;
    for (size_t head = 0; head < reached_.size(); ++head) {
      const VertexId u = reached_[head];
      const uint32_t du = dist_[u];
      if (du != polled_depth) {
        // Per-wave control poll: distances are non-decreasing along
        // `reached_`, so this fires exactly once per frontier.
        polled_depth = du;
        fault::Hit(fault::Site::kIndexBuildWave);
        if (opts.cancel != nullptr &&
            opts.cancel->load(std::memory_order_relaxed)) {
          interrupted_ = Interrupt::kCancelled;
          return;
        }
        if (opts.deadline.Expired()) {
          interrupted_ = Interrupt::kDeadline;
          return;
        }
      }
      if (du >= opts.max_depth) continue;  // children would exceed the cap
      if (u == opts.blocked && u != source) continue;  // reached, unexpanded
      const auto nbrs =
          dir == Direction::kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
      for (size_t j = 0; j < nbrs.size(); ++j) {
        const VertexId v = nbrs[j];
        if (stamp_[v] == epoch_) continue;
        if constexpr (kHasFilter) {
          // Present the edge in graph orientation regardless of direction.
          const VertexId from = dir == Direction::kForward ? u : v;
          const VertexId to = dir == Direction::kForward ? v : u;
          const EdgeId e = dir == Direction::kForward ? g.OutEdgeId(u, j)
                                                      : g.FindEdge(v, u);
          if (!filter(from, to, e)) continue;
        }
        if constexpr (kHasAdmit) {
          if (!admit(v, du + 1)) continue;
        }
        stamp_[v] = epoch_;
        dist_[v] = du + 1;
        reached_.push_back(v);
        if (v == opts.stop_at) return;
      }
    }
  }

  /// Distance of `v` from/to the source, or kInfDistance if unreached.
  uint32_t Distance(VertexId v) const {
    return (v < stamp_.size() && stamp_[v] == epoch_) ? dist_[v]
                                                      : kInfDistance;
  }

  /// Vertices reached by the last Compute, in BFS order (source first).
  const std::vector<VertexId>& Reached() const { return reached_; }

  Interrupt interrupted() const { return interrupted_; }

 private:
  void EnsureSize(size_t n);

  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> dist_;
  std::vector<VertexId> reached_;  // doubles as the BFS queue
  uint32_t epoch_ = 0;
  Interrupt interrupted_ = Interrupt::kNone;
};

/// True iff a path from `from` to `to` of length <= `max_depth` exists.
/// Convenience wrapper used by the workload generator (dist(s,t) <= 3).
bool WithinDistance(const Graph& g, VertexId from, VertexId to,
                    uint32_t max_depth);

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_BFS_H_
