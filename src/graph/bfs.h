// Bounded breadth-first-search distance fields.
//
// The light-weight index (paper Alg. 3, line 1) needs, per query,
//   v.s = S(s, v | G - {t})   and   v.t = S(v, t | G - {s}),
// i.e. shortest-walk distances whose *internal* vertices avoid the other
// query endpoint. `DistanceField` implements this with a "blocked" vertex
// that is assigned a distance when reached but never expanded.
//
// Buffers are epoch-stamped so a field can be reused across thousands of
// queries with O(frontier) cost instead of O(|V|) re-initialisation.
//
// Two entry points: `Compute` takes the std::function-based BfsOptions
// filters (stable public API), while the templated `ComputeWith` accepts
// concrete callables that inline into the relaxation loop — the index-build
// hot path uses it so the unfiltered case performs zero indirect calls per
// edge.
#ifndef PATHENUM_GRAPH_BFS_H_
#define PATHENUM_GRAPH_BFS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace pathenum {

/// Which adjacency to follow.
enum class Direction {
  kForward,   // follow out-edges: distances *from* the source
  kBackward,  // follow in-edges: distances *to* the source
};

/// Optional edge filter for predicate-constrained queries (Appendix E).
/// Receives the edge in graph orientation (u -> v) and its edge id; returns
/// false to make the edge invisible to the traversal.
using EdgeFilter = std::function<bool(VertexId u, VertexId v, EdgeId e)>;

/// Optional vertex admission filter: a discovered vertex failing the filter
/// is neither stamped nor expanded (the source is always admitted). The
/// index builder uses it to confine the second BFS to the X set — exact
/// because every vertex on a shortest path to an admitted vertex is itself
/// admitted (triangle inequality; see DESIGN.md).
using VertexAdmission = std::function<bool(VertexId v, uint32_t dist)>;

/// Sentinel callables for ComputeWith: the compiler folds the always-true
/// branches away, so the unfiltered traversal never computes edge ids and
/// performs no per-edge calls at all.
struct AcceptAllEdges {
  constexpr bool operator()(VertexId, VertexId, EdgeId) const { return true; }
};
struct AdmitAllVertices {
  constexpr bool operator()(VertexId, uint32_t) const { return true; }
};

/// Traversal options for DistanceField::Compute.
struct BfsOptions {
  /// Vertex assigned a distance when reached but never expanded
  /// (kInvalidVertex: none). Models "internal vertices avoid this vertex".
  VertexId blocked = kInvalidVertex;
  /// Depth cap; vertices farther than this stay unreached.
  uint32_t max_depth = kInfDistance;
  /// Stop the traversal as soon as this vertex is assigned a distance
  /// (kInvalidVertex: run to exhaustion). Used by reachability probes.
  VertexId stop_at = kInvalidVertex;
  /// Optional edge filter; null means all edges are visible.
  const EdgeFilter* filter = nullptr;
  /// Optional vertex admission filter; null admits everything.
  const VertexAdmission* admit = nullptr;
  /// Cooperative controls, polled once per BFS wave (frontier depth): the
  /// raw flag of a CancelToken (core/control.h) and a wall-clock deadline.
  /// On a trip the traversal stops mid-wave and `interrupted()` reports
  /// which control fired — distances computed so far are incomplete and
  /// must not be used (the index builder discards them).
  const std::atomic<bool>* cancel = nullptr;
  Deadline deadline = Deadline::Unlimited();
};

/// Reusable BFS distance field.
///
/// Traversals are templated over the graph type: anything exposing the
/// Graph accessor contract (`num_vertices`, sorted `OutNeighbors` /
/// `InNeighbors` spans, `OutEdgeId`, `FindEdge`) works — in practice the
/// immutable `Graph` and the live subsystem's `GraphView` overlay snapshots
/// (graph/view.h), each instantiating its own inlined relaxation loop.
class DistanceField {
 public:
  using Options = BfsOptions;

  /// Which BfsOptions control stopped the last Compute early (kNone: it
  /// ran to exhaustion).
  enum class Interrupt : uint8_t { kNone, kCancelled, kDeadline };

  DistanceField() = default;

  /// Runs a BFS from `source` over `g` in direction `dir`. Invalidates the
  /// result of any previous Compute on this object. Dispatches once on the
  /// presence of `opts.filter`/`opts.admit`, so the std::function cost is
  /// only paid when a filter is actually installed.
  template <typename GraphT>
  void Compute(const GraphT& g, Direction dir, VertexId source,
               const Options& opts = {}) {
    const EdgeFilter* filter = opts.filter;
    const VertexAdmission* admit = opts.admit;
    const auto call_filter = [filter](VertexId u, VertexId v, EdgeId e) {
      return (*filter)(u, v, e);
    };
    const auto call_admit = [admit](VertexId v, uint32_t dist) {
      return (*admit)(v, dist);
    };
    if (filter != nullptr && admit != nullptr) {
      ComputeWith(g, dir, source, opts, call_filter, call_admit);
    } else if (filter != nullptr) {
      ComputeWith(g, dir, source, opts, call_filter, AdmitAllVertices{});
    } else if (admit != nullptr) {
      ComputeWith(g, dir, source, opts, AcceptAllEdges{}, call_admit);
    } else {
      ComputeWith(g, dir, source, opts, AcceptAllEdges{}, AdmitAllVertices{});
    }
  }

  /// Devirtualized traversal: `filter` and `admit` are concrete callables
  /// (same signatures as EdgeFilter/VertexAdmission) inlined into the
  /// relaxation loop. `opts.filter`/`opts.admit` are ignored here — the
  /// parameters replace them; pass AcceptAllEdges/AdmitAllVertices for the
  /// unrestricted branch-free path.
  template <typename GraphT, typename FilterFn, typename AdmitFn>
  void ComputeWith(const GraphT& g, Direction dir, VertexId source,
                   const Options& opts, FilterFn&& filter, AdmitFn&& admit) {
    PATHENUM_CHECK(source < g.num_vertices());
    EnsureSize(g.num_vertices());
    if (++epoch_ == 0) {  // stamp wrap-around: reset and restart epochs
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    reached_.clear();
    interrupted_ = Interrupt::kNone;
    edges_scanned_ = 0;
    waves_ = 0;

    stamp_[source] = epoch_;
    dist_[source] = 0;
    reached_.push_back(source);
    waves_ = 1;
    if (source == opts.stop_at) return;

    constexpr bool kHasFilter =
        !std::is_same_v<std::decay_t<FilterFn>, AcceptAllEdges>;
    constexpr bool kHasAdmit =
        !std::is_same_v<std::decay_t<AdmitFn>, AdmitAllVertices>;

    // `reached_` doubles as the FIFO queue: BFS order is non-decreasing in
    // distance, so scanning it front-to-back visits each frontier in turn.
    uint32_t polled_depth = 0;
    for (size_t head = 0; head < reached_.size(); ++head) {
      const VertexId u = reached_[head];
      const uint32_t du = dist_[u];
      if (du != polled_depth) {
        // Per-wave control poll: distances are non-decreasing along
        // `reached_`, so this fires exactly once per frontier.
        polled_depth = du;
        ++waves_;
        fault::Hit(fault::Site::kIndexBuildWave);
        if (opts.cancel != nullptr &&
            opts.cancel->load(std::memory_order_relaxed)) {
          interrupted_ = Interrupt::kCancelled;
          return;
        }
        if (opts.deadline.Expired()) {
          interrupted_ = Interrupt::kDeadline;
          return;
        }
      }
      if (du >= opts.max_depth) continue;  // children would exceed the cap
      if (u == opts.blocked && u != source) continue;  // reached, unexpanded
      const auto nbrs =
          dir == Direction::kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
      edges_scanned_ += nbrs.size();
      for (size_t j = 0; j < nbrs.size(); ++j) {
        const VertexId v = nbrs[j];
        if (stamp_[v] == epoch_) continue;
        if constexpr (kHasFilter) {
          // Present the edge in graph orientation regardless of direction.
          const VertexId from = dir == Direction::kForward ? u : v;
          const VertexId to = dir == Direction::kForward ? v : u;
          const EdgeId e = dir == Direction::kForward ? g.OutEdgeId(u, j)
                                                      : g.FindEdge(v, u);
          if (!filter(from, to, e)) continue;
        }
        if constexpr (kHasAdmit) {
          if (!admit(v, du + 1)) continue;
        }
        stamp_[v] = epoch_;
        dist_[v] = du + 1;
        reached_.push_back(v);
        if (v == opts.stop_at) return;
      }
    }
  }

  /// Distance of `v` from/to the source, or kInfDistance if unreached.
  uint32_t Distance(VertexId v) const {
    return (v < stamp_.size() && stamp_[v] == epoch_) ? dist_[v]
                                                      : kInfDistance;
  }

  /// Vertices reached by the last Compute, in BFS order (source first).
  const std::vector<VertexId>& Reached() const { return reached_; }

  Interrupt interrupted() const { return interrupted_; }

  /// Adjacency entries examined by the last Compute (each expanded vertex
  /// contributes its full neighbor-span length, filtered or not).
  uint64_t edges_scanned() const { return edges_scanned_; }

  /// Distinct BFS depths reached by the last Compute (source wave included).
  uint32_t waves() const { return waves_; }

 private:
  void EnsureSize(size_t n);

  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> dist_;
  std::vector<VertexId> reached_;  // doubles as the BFS queue
  uint32_t epoch_ = 0;
  Interrupt interrupted_ = Interrupt::kNone;
  uint64_t edges_scanned_ = 0;
  uint32_t waves_ = 0;
};

/// Sentinel per-member admission for BatchedDistanceField::ComputeWith.
struct BatchAdmitAll {
  constexpr bool operator()(uint32_t, VertexId, uint32_t) const {
    return true;
  }
};

/// Multi-source BFS: up to kMaxBatch independent distance fields of the
/// same Direction computed as ONE shared frontier sweep. Per-vertex state
/// is a K-wide bit-packed word (bit m = member m has reached / is
/// expanding the vertex), so each adjacency list is scanned once per wave
/// instead of once per member — the fused equivalent of K solo
/// `DistanceField::ComputeWith` runs (AutoMI-style multi-instance
/// conversion; see DESIGN.md §11).
///
/// Semantics match the solo field member-by-member: per-member `blocked`
/// vertex (reached but never expanded, unless it is that member's own
/// source), per-member `max_depth` cap, and per-member cancel/deadline
/// polling once per wave — a tripped member drops out of the expansion
/// masks without aborting the rest of the batch (its distances are
/// incomplete and must be discarded, exactly like a solo interrupt).
/// Edge filters are not supported: batched builds only serve cacheable
/// (filter-free) queries, which `IndexOptionsFingerprint` already
/// enforces upstream.
///
/// Buffers are epoch-stamped like DistanceField: re-init is O(frontier)
/// per Compute, not O(|V|). Distances are stored as one uint16 row per
/// vertex (stride = batch size), valid only under the member's reached
/// bit, so the rows are never cleared.
class BatchedDistanceField {
 public:
  static constexpr uint32_t kMaxBatch = 64;

  using Interrupt = DistanceField::Interrupt;

  /// One source of the fused sweep. Mirrors the solo BfsOptions fields
  /// that the index builder uses (no stop_at / filter: neither is
  /// meaningful for a batched build).
  struct Member {
    VertexId source = kInvalidVertex;
    VertexId blocked = kInvalidVertex;
    uint32_t max_depth = kInfDistance;
    const std::atomic<bool>* cancel = nullptr;
    Deadline deadline = Deadline::Unlimited();
  };

  BatchedDistanceField() = default;

  /// Runs the fused sweep for `members` (1..kMaxBatch sources) over `g`.
  /// Invalidates any previous Compute on this object.
  template <typename GraphT>
  void Compute(const GraphT& g, Direction dir,
               const std::vector<Member>& members) {
    ComputeWith(g, dir, members, BatchAdmitAll{});
  }

  /// As Compute, with a per-member vertex admission callable
  /// `admit(member_index, v, dist) -> bool` inlined into the relaxation
  /// loop (a rejected vertex is neither stamped nor expanded for that
  /// member; sources are always admitted). The index builder's pruned
  /// forward sweep uses it with the member's own backward field.
  template <typename GraphT, typename AdmitFn>
  void ComputeWith(const GraphT& g, Direction dir,
                   const std::vector<Member>& members, AdmitFn&& admit) {
    const size_t k = members.size();
    PATHENUM_CHECK(k >= 1 && k <= kMaxBatch);
    const size_t n = g.num_vertices();
    EnsureSize(n, k);
    if (++epoch_ == 0) {  // stamp wrap-around: reset and restart epochs
      std::fill(stamp_.begin(), stamp_.end(), 0);
      std::fill(blocked_stamp_.begin(), blocked_stamp_.end(), 0);
      epoch_ = 1;
    }
    size_ = static_cast<uint32_t>(k);
    edges_scanned_ = 0;
    waves_ = 0;
    uint64_t active = k == 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
    for (size_t m = 0; m < k; ++m) {
      interrupted_[m] = Interrupt::kNone;
      covered_edges_[m] = 0;
      reached_lists_[m].clear();
      wave_offsets_[m].clear();
      wave_offsets_[m].push_back(0);
    }

    // Register blocked vertices (<= K stamped slots per Compute). A
    // member's own source is never blocked for itself — matching the
    // solo `u == blocked && u != source` expansion rule.
    for (size_t m = 0; m < k; ++m) {
      const VertexId b = members[m].blocked;
      if (b == kInvalidVertex || b == members[m].source || b >= n) continue;
      if (blocked_stamp_[b] != epoch_) {
        blocked_stamp_[b] = epoch_;
        blocked_word_[b] = 0;
      }
      blocked_word_[b] |= uint64_t{1} << m;
    }

    // Seed wave 0: each member's source (duplicates across members fine).
    BumpToken();
    cur_list_.clear();
    for (size_t m = 0; m < k; ++m) {
      const VertexId s = members[m].source;
      PATHENUM_CHECK(s < n);
      const uint64_t bit = uint64_t{1} << m;
      if (stamp_[s] != epoch_) {
        stamp_[s] = epoch_;
        reached_word_[s] = 0;
      }
      if ((reached_word_[s] & bit) != 0) continue;  // duplicate source
      reached_word_[s] |= bit;
      dist_[s * k + m] = 0;
      reached_lists_[m].push_back(s);
      if (cur_stamp_[s] != token_) {
        cur_stamp_[s] = token_;
        cur_word_[s] = 0;
        cur_list_.push_back(s);
      }
      cur_word_[s] |= bit;
    }
    // Wave-boundary offsets into the reached lists: entries in
    // [offsets[i], offsets[i+1]) sit at distance i. They make member
    // distances recoverable sequentially (ExportDistances) without
    // touching the strided K-wide matrix.
    for (size_t m = 0; m < k; ++m) {
      wave_offsets_[m].push_back(
          static_cast<uint32_t>(reached_lists_[m].size()));
    }

    constexpr bool kHasAdmit =
        !std::is_same_v<std::decay_t<AdmitFn>, BatchAdmitAll>;
    constexpr uint32_t kDepthCap = 0xFFFEu;  // uint16 distance rows

    uint32_t d = 0;
    while (!cur_list_.empty() && active != 0) {
      if (d >= 1) {
        // Per-wave control poll, one check per still-active member —
        // the batched analogue of the solo per-frontier poll. A tripped
        // member leaves the masks; the sweep continues for the rest.
        fault::Hit(fault::Site::kIndexBuildWave);
        uint64_t live = active;
        while (live != 0) {
          const uint32_t m = Ctz(live);
          live &= live - 1;
          const Member& mm = members[m];
          if (mm.cancel != nullptr &&
              mm.cancel->load(std::memory_order_relaxed)) {
            interrupted_[m] = Interrupt::kCancelled;
            active &= ~(uint64_t{1} << m);
          } else if (mm.deadline.Expired()) {
            interrupted_[m] = Interrupt::kDeadline;
            active &= ~(uint64_t{1} << m);
          }
        }
      }
      // Members whose depth cap forbids expanding distance-d vertices
      // stay reached-but-frozen, exactly like the solo max_depth rule.
      uint64_t expand_base = 0;
      {
        uint64_t live = active;
        while (live != 0) {
          const uint32_t m = Ctz(live);
          live &= live - 1;
          if (members[m].max_depth > d && d < kDepthCap)
            expand_base |= uint64_t{1} << m;
        }
      }
      if (expand_base == 0) break;
      ++waves_;
      BumpToken();
      next_list_.clear();
      for (const VertexId u : cur_list_) {
        uint64_t w = cur_word_[u] & expand_base;
        if (blocked_stamp_[u] == epoch_) w &= ~blocked_word_[u];
        if (w == 0) continue;
        const auto nbrs = dir == Direction::kForward ? g.OutNeighbors(u)
                                                     : g.InNeighbors(u);
        edges_scanned_ += nbrs.size();  // shared: list walked once
        {
          uint64_t t = w;  // solo-equivalent per-member touch counts
          while (t != 0) {
            covered_edges_[Ctz(t)] += nbrs.size();
            t &= t - 1;
          }
        }
        for (size_t j = 0; j < nbrs.size(); ++j) {
          const VertexId v = nbrs[j];
          if (stamp_[v] != epoch_) {
            stamp_[v] = epoch_;
            reached_word_[v] = 0;
          }
          uint64_t nw = w & ~reached_word_[v];
          if (nw == 0) continue;
          if constexpr (kHasAdmit) {
            uint64_t t = nw;
            uint64_t admitted = 0;
            while (t != 0) {
              const uint32_t m = Ctz(t);
              t &= t - 1;
              if (admit(m, v, d + 1)) admitted |= uint64_t{1} << m;
            }
            nw = admitted;
            if (nw == 0) continue;
          }
          reached_word_[v] |= nw;
          {
            uint64_t t = nw;
            while (t != 0) {
              const uint32_t m = Ctz(t);
              t &= t - 1;
              dist_[size_t{v} * k + m] = static_cast<uint16_t>(d + 1);
              reached_lists_[m].push_back(v);
            }
          }
          if (next_stamp_[v] != token_) {
            next_stamp_[v] = token_;
            next_word_[v] = 0;
            next_list_.push_back(v);
          }
          next_word_[v] |= nw;
        }
      }
      for (size_t m = 0; m < k; ++m) {
        wave_offsets_[m].push_back(
            static_cast<uint32_t>(reached_lists_[m].size()));
      }
      // Distinct cur/next arrays (swapped as pairs) keep the invariant
      // that every bit in an expanded word shares distance d; the stamp
      // tokens make stale slots self-invalidating, so nothing is cleared.
      std::swap(cur_list_, next_list_);
      cur_word_.swap(next_word_);
      cur_stamp_.swap(next_stamp_);
      ++d;
    }
  }

  /// Distance of `v` for member `m`, or kInfDistance if unreached.
  uint32_t Distance(uint32_t m, VertexId v) const {
    if (v >= stamp_.size() || stamp_[v] != epoch_) return kInfDistance;
    if (((reached_word_[v] >> m) & 1) == 0) return kInfDistance;
    return dist_[size_t{v} * size_ + m];
  }

  /// Vertices reached for member `m`, in non-decreasing distance order
  /// (its source first) — the batched analogue of solo Reached().
  const std::vector<VertexId>& Reached(uint32_t m) const {
    return reached_lists_[m];
  }

  /// Writes member `m`'s distance to every vertex it reached into
  /// `out[v]` (unreached entries are left untouched — pre-fill with a
  /// sentinel). Distances come from the wave boundaries of the reached
  /// list, so the export is one sequential pass with no reads of the
  /// strided K-wide matrix; the dense array then answers the index
  /// assembly's per-candidate-edge lookups in a single L1-resident load.
  void ExportDistances(uint32_t m, uint16_t* out) const {
    const std::vector<VertexId>& reached = reached_lists_[m];
    const std::vector<uint32_t>& offs = wave_offsets_[m];
    for (size_t i = 0; i + 1 < offs.size(); ++i) {
      const uint16_t d = static_cast<uint16_t>(i);
      for (uint32_t j = offs[i]; j < offs[i + 1]; ++j) out[reached[j]] = d;
    }
  }

  /// Which control (if any) dropped member `m` out of the sweep. A
  /// non-kNone member's distances are incomplete and must be discarded.
  Interrupt interrupted(uint32_t m) const { return interrupted_[m]; }

  /// Members in the last Compute.
  uint32_t size() const { return size_; }

  /// Vertex-space bound of the per-vertex arrays (grow-only; >= the last
  /// Compute's graph size). Sizes the dense ExportDistances target.
  VertexId num_vertices() const {
    return static_cast<VertexId>(stamp_.size());
  }

  /// Adjacency entries actually examined by the shared sweep (each
  /// expanded vertex counts its neighbor span once, however many members
  /// expand it).
  uint64_t edges_scanned() const { return edges_scanned_; }

  /// Adjacency entries member `m` would have examined running solo —
  /// sum(covered_edges) / edges_scanned is the fusion win.
  uint64_t covered_edges(uint32_t m) const { return covered_edges_[m]; }

  /// Expansion waves executed by the last Compute.
  uint32_t waves() const { return waves_; }

 private:
  static uint32_t Ctz(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<uint32_t>(__builtin_ctzll(x));
#else
    uint32_t c = 0;
    while ((x & 1) == 0) {
      x >>= 1;
      ++c;
    }
    return c;
#endif
  }

  void BumpToken() {
    if (++token_ == 0) {  // token wrap: reset both frontier stamp arrays
      std::fill(cur_stamp_.begin(), cur_stamp_.end(), 0);
      std::fill(next_stamp_.begin(), next_stamp_.end(), 0);
      token_ = 1;
    }
  }

  void EnsureSize(size_t n, size_t k);

  // Reached state: valid iff stamp_[v] == epoch_; dist rows valid only
  // under the member's reached bit, so they are never cleared.
  std::vector<uint32_t> stamp_;
  std::vector<uint64_t> reached_word_;
  std::vector<uint16_t> dist_;  // n * size_ row-major, stride = size_

  // Blocked registration: <= K stamped entries per Compute.
  std::vector<uint32_t> blocked_stamp_;
  std::vector<uint64_t> blocked_word_;

  // Double-buffered frontiers. Separate arrays (not one shared buffer)
  // so pushing v into `next` never aliases a `cur` slot still pending
  // expansion this wave.
  std::vector<uint32_t> cur_stamp_, next_stamp_;
  std::vector<uint64_t> cur_word_, next_word_;
  std::vector<VertexId> cur_list_, next_list_;

  std::vector<std::vector<VertexId>> reached_lists_;
  std::vector<std::vector<uint32_t>> wave_offsets_;  // per-member, see above
  std::array<Interrupt, kMaxBatch> interrupted_{};
  std::array<uint64_t, kMaxBatch> covered_edges_{};

  uint32_t epoch_ = 0;
  uint32_t token_ = 0;
  uint32_t size_ = 0;
  uint64_t edges_scanned_ = 0;
  uint32_t waves_ = 0;
};

/// True iff a path from `from` to `to` of length <= `max_depth` exists.
/// Convenience wrapper used by the workload generator (dist(s,t) <= 3).
bool WithinDistance(const Graph& g, VertexId from, VertexId to,
                    uint32_t max_depth);

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_BFS_H_
