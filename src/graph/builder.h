// Mutable edge accumulator that produces immutable CSR `Graph`s. Also the
// supported way to apply dynamic updates: accumulate edges, call Build()
// (the paper's index is per-query, so graph updates need no index upkeep).
#ifndef PATHENUM_GRAPH_BUILDER_H_
#define PATHENUM_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace pathenum {

/// Accumulates directed edges and builds a `Graph`.
///
/// Self-loops are dropped (a simple s-t path never uses one; the join
/// model's (t,t) padding tuple is synthesized by the index, not stored in
/// the graph). Duplicate edges are deduplicated keeping the first
/// occurrence's weight/label.
class GraphBuilder {
 public:
  /// Creates a builder over `num_vertices` vertices; ids must stay below it.
  explicit GraphBuilder(VertexId num_vertices);

  VertexId num_vertices() const { return num_vertices_; }

  /// Number of edges accumulated so far (before dedup).
  size_t pending_edges() const { return edges_.size(); }

  /// Adds edge (u, v). Self-loops are ignored. Returns true if accepted.
  bool AddEdge(VertexId u, VertexId v);

  /// Adds a weighted and/or labeled edge. Mixing plain and attributed edges
  /// is allowed: missing weights default to 1.0, missing labels to 0.
  bool AddEdge(VertexId u, VertexId v, double weight, uint32_t label = 0);

  /// Copies every edge (with attributes) of `g` into the builder. Useful for
  /// dynamic-graph workloads that extend an existing snapshot.
  void AddGraph(const Graph& g);

  /// Builds the CSR graph. The builder may be reused afterwards (its edge
  /// list is preserved).
  Graph Build() const;

 private:
  struct PendingEdge {
    VertexId u;
    VertexId v;
    double weight;
    uint32_t label;
  };

  VertexId num_vertices_;
  std::vector<PendingEdge> edges_;
  bool any_weight_ = false;
  bool any_label_ = false;
};

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_BUILDER_H_
