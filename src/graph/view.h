// Versioned copy-on-write views over an immutable base Graph — the storage
// half of the live-graph subsystem (DESIGN.md §7).
//
// A `GraphView` is (base Graph, optional EdgeOverlay, version). The overlay
// holds fully materialized sorted adjacency for exactly the vertices an
// update batch touched; every other vertex resolves to the base CSR spans,
// so a view preserves the Graph accessor contract (sorted ascending
// neighbor spans, O(log deg) HasEdge) that BFS and the index builder are
// templated over. Applying a `GraphDelta` produces a *new* view at a higher
// version — existing views are never mutated, so in-flight queries keep
// enumerating their own snapshot while updates land (MVCC). Overlays
// compose: each Apply copies the previous overlay's touched-vertex tables
// (cost proportional to the touched set, not |V|), and `Materialize` folds
// base + overlay back into a standalone CSR Graph when the overlay
// outgrows its budget (see live/SnapshotManager::Compact).
//
// Limitations, by design: the vertex id space is fixed by the base graph,
// and edge ids are only stable for vertices untouched by the overlay
// (OutEdgeId/FindEdge return kInvalidEdge for touched vertices) — so
// weight/label-constrained queries require an overlay-free (compacted)
// snapshot.
#ifndef PATHENUM_GRAPH_VIEW_H_
#define PATHENUM_GRAPH_VIEW_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"
#include "util/status.h"

namespace pathenum {

/// One batch of edge updates. A delta is a *set* of changes, not a
/// sequence: all insertions apply, then all deletions, regardless of call
/// order — so an edge both inserted and deleted in the same delta ends up
/// absent (deletions win). An order-dependent update stream must split
/// conflicting operations across deltas (one epoch each). Duplicate
/// insertions, insertions of edges already present, and deletions of
/// absent edges are no-ops; self-loops are dropped (matching
/// GraphBuilder). Endpoints must be inside the base graph's vertex space.
struct GraphDelta {
  std::vector<std::pair<VertexId, VertexId>> insertions;
  std::vector<std::pair<VertexId, VertexId>> deletions;

  GraphDelta& Insert(VertexId u, VertexId v) {
    insertions.emplace_back(u, v);
    return *this;
  }
  GraphDelta& Delete(VertexId u, VertexId v) {
    deletions.emplace_back(u, v);
    return *this;
  }
  bool empty() const { return insertions.empty() && deletions.empty(); }
  size_t size() const { return insertions.size() + deletions.size(); }
};

/// Validates a delta against the base vertex space without applying it.
/// Deltas arriving over the wire are untrusted input: the live engines call
/// this up front and map a failure to a rejected update instead of letting
/// GraphView::Apply throw mid-epoch.
inline Status CheckDelta(const GraphDelta& delta, VertexId num_vertices) {
  const auto check = [num_vertices](
                         const std::vector<std::pair<VertexId, VertexId>>& ops,
                         const char* kind) {
    for (const auto& [u, v] : ops) {
      if (u >= num_vertices || v >= num_vertices) {
        return Status::InvalidArgument(
            std::string(kind) + " (" + std::to_string(u) + ", " +
            std::to_string(v) + ") outside the base vertex space of " +
            std::to_string(num_vertices));
      }
    }
    return Status::Ok();
  };
  const Status ins = check(delta.insertions, "insertion");
  if (!ins.ok()) return ins;
  return check(delta.deletions, "deletion");
}

/// Immutable per-view overlay: fully materialized sorted adjacency for the
/// vertices any delta folded into this view touched. Built via
/// GraphView::Apply; never mutated afterwards, so views sharing it across
/// threads need no synchronization.
class EdgeOverlay {
 public:
  /// Overlay out-adjacency of `v`, or nullptr when `v` falls through to the
  /// base graph. Sorted ascending.
  const std::vector<VertexId>* OutOf(VertexId v) const {
    const auto it = out_.find(v);
    return it != out_.end() ? &it->second : nullptr;
  }

  const std::vector<VertexId>* InOf(VertexId v) const {
    const auto it = in_.find(v);
    return it != in_.end() ? &it->second : nullptr;
  }

  /// Signed edge-count difference vs. the base graph.
  int64_t edge_delta() const { return edge_delta_; }

  /// Number of vertices with an overlay adjacency (out or in) — the
  /// compaction budget's currency.
  size_t num_touched() const { return out_.size() + in_.size(); }

  size_t MemoryBytes() const;

 private:
  friend class GraphView;

  std::unordered_map<VertexId, std::vector<VertexId>> out_;
  std::unordered_map<VertexId, std::vector<VertexId>> in_;
  int64_t edge_delta_ = 0;
};

/// An immutable snapshot of a (possibly updated) graph. Cheap to copy; keeps
/// its base and overlay alive via shared_ptr when constructed through the
/// owning factories, or borrows the caller's Graph for the static case
/// (implicit conversion, version 0) — which is why every pre-live call site
/// passing `const Graph&` still compiles unchanged.
class GraphView {
 public:
  GraphView() = default;

  /// Borrowing view of a static graph at version 0. Intentionally implicit:
  /// a plain Graph *is* a view of itself. `g` must outlive the view.
  GraphView(const Graph& g) : base_(&g) {}  // NOLINT(google-explicit-*)

  /// Owning view. `overlay` may be null (a compacted snapshot).
  GraphView(std::shared_ptr<const Graph> base,
            std::shared_ptr<const EdgeOverlay> overlay, uint64_t version)
      : base_(base.get()),
        base_owner_(std::move(base)),
        overlay_(std::move(overlay)),
        version_(version) {
    PATHENUM_CHECK(base_ != nullptr);
    if (overlay_ != nullptr) {
      num_edges_ = static_cast<uint64_t>(
          static_cast<int64_t>(base_->num_edges()) + overlay_->edge_delta());
    }
  }

  VertexId num_vertices() const {
    return base_ != nullptr ? base_->num_vertices() : 0;
  }

  uint64_t num_edges() const {
    return overlay_ != nullptr ? num_edges_
                               : (base_ != nullptr ? base_->num_edges() : 0);
  }

  /// Out-neighbors of `v`, sorted ascending — same contract as Graph.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    if (overlay_ != nullptr) {
      if (const std::vector<VertexId>* adj = overlay_->OutOf(v)) {
        return {adj->data(), adj->size()};
      }
    }
    return base_->OutNeighbors(v);
  }

  std::span<const VertexId> InNeighbors(VertexId v) const {
    if (overlay_ != nullptr) {
      if (const std::vector<VertexId>* adj = overlay_->InOf(v)) {
        return {adj->data(), adj->size()};
      }
    }
    return base_->InNeighbors(v);
  }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(OutNeighbors(v).size());
  }
  uint32_t InDegree(VertexId v) const {
    return static_cast<uint32_t>(InNeighbors(v).size());
  }
  uint32_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// True iff the directed edge (u, v) exists in this snapshot.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Edge id of the j-th out-edge of `v` into the *base* id space, or
  /// kInvalidEdge when `v`'s adjacency comes from the overlay (overlay
  /// edges have no stable id — see the header comment).
  EdgeId OutEdgeId(VertexId v, size_t j) const {
    if (overlay_ != nullptr && overlay_->OutOf(v) != nullptr) {
      return kInvalidEdge;
    }
    return base_->OutEdgeId(v, j);
  }

  /// Base edge id of (u, v), or kInvalidEdge if absent or overlay-touched.
  EdgeId FindEdge(VertexId u, VertexId v) const {
    if (overlay_ != nullptr && overlay_->OutOf(u) != nullptr) {
      return kInvalidEdge;
    }
    return base_->FindEdge(u, v);
  }

  /// Edge attributes are only meaningful on overlay-free views (stable ids).
  bool has_weights() const {
    return overlay_ == nullptr && base_ != nullptr && base_->has_weights();
  }
  bool has_labels() const {
    return overlay_ == nullptr && base_ != nullptr && base_->has_labels();
  }
  double EdgeWeight(EdgeId e) const { return base_->EdgeWeight(e); }
  uint32_t EdgeLabel(EdgeId e) const { return base_->EdgeLabel(e); }

  uint64_t version() const { return version_; }
  bool has_overlay() const { return overlay_ != nullptr; }
  const Graph& base() const { return *base_; }
  const EdgeOverlay* overlay() const { return overlay_.get(); }

  /// True when both views are backed by the same base + overlay objects
  /// (i.e. guaranteed to describe the same topology).
  bool SameSnapshotAs(const GraphView& o) const {
    return base_ == o.base_ && overlay_.get() == o.overlay_.get();
  }

  /// Applies `delta`, returning a new view stamped `new_version`. This view
  /// is untouched. The result shares this view's base; when this view
  /// borrows its base (static-graph conversion), the caller's Graph must
  /// outlive the returned view too. Endpoints out of range throw.
  GraphView Apply(const GraphDelta& delta, uint64_t new_version) const;

  /// Folds base + overlay into a standalone CSR Graph. Surviving base
  /// edges keep their weights/labels; overlay-inserted edges get the
  /// defaults (weight 1.0, label 0). O(V + E).
  Graph Materialize() const;

  /// Approximate heap bytes attributable to the overlay (0 when absent).
  size_t OverlayBytes() const {
    return overlay_ != nullptr ? overlay_->MemoryBytes() : 0;
  }

 private:
  const Graph* base_ = nullptr;
  std::shared_ptr<const Graph> base_owner_;  // null for borrowing views
  std::shared_ptr<const EdgeOverlay> overlay_;
  uint64_t version_ = 0;
  uint64_t num_edges_ = 0;  // cached base + delta (only with overlay)
};

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_VIEW_H_
