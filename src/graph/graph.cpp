#include "graph/graph.h"

#include <algorithm>
#include <atomic>

#include "graph/builder.h"
#include "util/memory.h"

namespace pathenum {

uint64_t Graph::NextUid() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Graph Graph::FromEdges(
    VertexId num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder(num_vertices);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  return FindEdge(u, v) != kInvalidEdge;
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  const auto nbrs = OutNeighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return out_offsets_[u] + static_cast<uint64_t>(it - nbrs.begin());
}

size_t Graph::MemoryBytes() const {
  return VectorBytes(out_offsets_) + VectorBytes(out_adj_) +
         VectorBytes(in_offsets_) + VectorBytes(in_adj_) +
         VectorBytes(weights_) + VectorBytes(labels_);
}

}  // namespace pathenum
