#include "graph/builder.h"

#include <algorithm>

namespace pathenum {

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices) {}

bool GraphBuilder::AddEdge(VertexId u, VertexId v) {
  return AddEdge(u, v, 1.0, 0);
}

bool GraphBuilder::AddEdge(VertexId u, VertexId v, double weight,
                           uint32_t label) {
  PATHENUM_CHECK_MSG(u < num_vertices_ && v < num_vertices_,
                     "edge endpoint out of range");
  if (u == v) return false;  // self-loop
  if (weight != 1.0) any_weight_ = true;
  if (label != 0) any_label_ = true;
  edges_.push_back({u, v, weight, label});
  return true;
}

void GraphBuilder::AddGraph(const Graph& g) {
  PATHENUM_CHECK(g.num_vertices() <= num_vertices_);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const EdgeId e = g.OutEdgeId(u, j);
      AddEdge(u, nbrs[j], g.has_weights() ? g.EdgeWeight(e) : 1.0,
              g.has_labels() ? g.EdgeLabel(e) : 0);
    }
  }
}

Graph GraphBuilder::Build() const {
  // Sort by (u, v); stable so dedup keeps the first-inserted attributes.
  std::vector<uint32_t> order(edges_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (edges_[a].u != edges_[b].u) return edges_[a].u < edges_[b].u;
    return edges_[a].v < edges_[b].v;
  });

  Graph g;
  g.out_offsets_.assign(static_cast<size_t>(num_vertices_) + 1, 0);
  g.out_adj_.reserve(edges_.size());
  if (any_weight_) g.weights_.reserve(edges_.size());
  if (any_label_) g.labels_.reserve(edges_.size());

  VertexId prev_u = kInvalidVertex;
  VertexId prev_v = kInvalidVertex;
  uint32_t max_label = 0;
  for (uint32_t idx : order) {
    const PendingEdge& e = edges_[idx];
    if (e.u == prev_u && e.v == prev_v) continue;  // duplicate
    prev_u = e.u;
    prev_v = e.v;
    g.out_adj_.push_back(e.v);
    g.out_offsets_[e.u + 1]++;
    if (any_weight_) g.weights_.push_back(e.weight);
    if (any_label_) {
      g.labels_.push_back(e.label);
      max_label = std::max(max_label, e.label);
    }
  }
  for (VertexId v = 0; v < num_vertices_; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  g.num_labels_ = any_label_ ? max_label + 1 : 0;

  // Build the in-CSR from the deduplicated out-CSR.
  g.in_offsets_.assign(static_cast<size_t>(num_vertices_) + 1, 0);
  for (VertexId v : g.out_adj_) g.in_offsets_[v + 1]++;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_adj_.resize(g.out_adj_.size());
  std::vector<uint64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (VertexId u = 0; u < num_vertices_; ++u) {
    for (uint64_t i = g.out_offsets_[u]; i < g.out_offsets_[u + 1]; ++i) {
      g.in_adj_[cursor[g.out_adj_[i]]++] = u;
    }
  }
  // Out-CSR is emitted in (u, v) order, so each in-adjacency list is filled
  // by ascending u: in-neighbors end up sorted without an extra pass.
  return g;
}

}  // namespace pathenum
