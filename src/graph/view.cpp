#include "graph/view.h"

#include <algorithm>

#include "graph/builder.h"

namespace pathenum {

namespace {

/// Sorted-vector insert; returns true if the edge was actually added.
bool SortedInsert(std::vector<VertexId>& adj, VertexId v) {
  const auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it != adj.end() && *it == v) return false;
  adj.insert(it, v);
  return true;
}

/// Sorted-vector erase; returns true if the edge was actually removed.
bool SortedErase(std::vector<VertexId>& adj, VertexId v) {
  const auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return false;
  adj.erase(it);
  return true;
}

}  // namespace

size_t EdgeOverlay::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  constexpr size_t kMapEntryOverhead =
      sizeof(void*) * 2 + sizeof(VertexId) + sizeof(std::vector<VertexId>);
  for (const auto& [v, adj] : out_) {
    bytes += kMapEntryOverhead + adj.capacity() * sizeof(VertexId);
  }
  for (const auto& [v, adj] : in_) {
    bytes += kMapEntryOverhead + adj.capacity() * sizeof(VertexId);
  }
  return bytes;
}

bool GraphView::HasEdge(VertexId u, VertexId v) const {
  if (overlay_ != nullptr) {
    if (const std::vector<VertexId>* adj = overlay_->OutOf(u)) {
      return std::binary_search(adj->begin(), adj->end(), v);
    }
  }
  return base_->HasEdge(u, v);
}

GraphView GraphView::Apply(const GraphDelta& delta,
                           uint64_t new_version) const {
  PATHENUM_CHECK_MSG(base_ != nullptr, "cannot apply a delta to an empty view");
  const VertexId n = num_vertices();
  auto overlay = std::make_shared<EdgeOverlay>();
  if (overlay_ != nullptr) {
    // Overlays compose by copying the previous touched-vertex tables: cost
    // proportional to the touched set, bounded by the compaction budget.
    overlay->out_ = overlay_->out_;
    overlay->in_ = overlay_->in_;
    overlay->edge_delta_ = overlay_->edge_delta_;
  }

  // Copy-on-write per vertex: the first time a delta touches a vertex, its
  // full adjacency is materialized from this view (base or prior overlay).
  const auto out_of = [&](VertexId v) -> std::vector<VertexId>& {
    const auto [it, inserted] = overlay->out_.try_emplace(v);
    if (inserted) {
      const auto span = OutNeighbors(v);
      it->second.assign(span.begin(), span.end());
    }
    return it->second;
  };
  const auto in_of = [&](VertexId v) -> std::vector<VertexId>& {
    const auto [it, inserted] = overlay->in_.try_emplace(v);
    if (inserted) {
      const auto span = InNeighbors(v);
      it->second.assign(span.begin(), span.end());
    }
    return it->second;
  };

  for (const auto& [u, v] : delta.insertions) {
    PATHENUM_CHECK_MSG(u < n && v < n, "delta endpoint out of range");
    if (u == v) continue;  // self-loops are dropped, like GraphBuilder
    if (SortedInsert(out_of(u), v)) {
      SortedInsert(in_of(v), u);
      ++overlay->edge_delta_;
    }
  }
  for (const auto& [u, v] : delta.deletions) {
    PATHENUM_CHECK_MSG(u < n && v < n, "delta endpoint out of range");
    if (u == v) continue;
    if (SortedErase(out_of(u), v)) {
      SortedErase(in_of(v), u);
      --overlay->edge_delta_;
    }
  }

  GraphView next;
  next.base_ = base_;
  next.base_owner_ = base_owner_;
  next.overlay_ = std::move(overlay);
  next.version_ = new_version;
  next.num_edges_ = static_cast<uint64_t>(
      static_cast<int64_t>(base_->num_edges()) + next.overlay_->edge_delta());
  return next;
}

Graph GraphView::Materialize() const {
  PATHENUM_CHECK_MSG(base_ != nullptr, "cannot materialize an empty view");
  if (overlay_ == nullptr) return *base_;  // copy of the CSR arrays
  const VertexId n = num_vertices();
  GraphBuilder b(n);
  const bool attributed = base_->has_weights() || base_->has_labels();
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = OutNeighbors(v);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId w = nbrs[j];
      if (!attributed) {
        b.AddEdge(v, w);
        continue;
      }
      // Surviving base edges keep their weight/label (found by id for
      // untouched vertices, by lookup for overlay ones); edges the overlay
      // inserted get the defaults (weight 1.0, label 0).
      const EdgeId e = overlay_->OutOf(v) != nullptr ? base_->FindEdge(v, w)
                                                     : base_->OutEdgeId(v, j);
      if (e == kInvalidEdge) {
        b.AddEdge(v, w, 1.0, 0);
      } else {
        b.AddEdge(v, w, base_->has_weights() ? base_->EdgeWeight(e) : 1.0,
                  base_->has_labels() ? base_->EdgeLabel(e) : 0);
      }
    }
  }
  return b.Build();
}

}  // namespace pathenum
