#include "graph/generators.h"

#include <unordered_set>

#include "graph/builder.h"
#include "util/rng.h"

namespace pathenum {

namespace {

/// Packs a directed edge into one 64-bit key for dedup sets.
uint64_t EdgeKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph ErdosRenyi(VertexId num_vertices, uint64_t num_edges, uint64_t seed) {
  PATHENUM_CHECK(num_vertices > 1 || num_edges == 0);
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1);
  PATHENUM_CHECK_MSG(num_edges <= max_edges, "too many edges requested");
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph BarabasiAlbert(VertexId num_vertices, uint32_t edges_per_vertex,
                     uint64_t seed, double back_prob) {
  PATHENUM_CHECK(edges_per_vertex >= 1);
  PATHENUM_CHECK(num_vertices > edges_per_vertex);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  // `endpoints` holds one entry per (half-)edge endpoint; sampling a uniform
  // entry samples vertices proportionally to their degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<size_t>(num_vertices) * edges_per_vertex * 2);
  // Seed clique over the first m+1 vertices so early targets exist.
  for (VertexId u = 0; u <= edges_per_vertex; ++u) {
    for (VertexId v = 0; v <= edges_per_vertex; ++v) {
      if (u == v) continue;
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId u = edges_per_vertex + 1; u < num_vertices; ++u) {
    for (uint32_t j = 0; j < edges_per_vertex; ++j) {
      const VertexId target =
          endpoints[rng.NextBounded(endpoints.size())];
      if (target == u) continue;
      builder.AddEdge(u, target);
      endpoints.push_back(u);
      endpoints.push_back(target);
      if (back_prob > 0.0 && rng.NextBool(back_prob)) {
        builder.AddEdge(target, u);
        endpoints.push_back(target);
        endpoints.push_back(u);
      }
    }
  }
  return builder.Build();
}

Graph RMat(uint32_t scale, uint64_t num_edges, uint64_t seed, double a,
           double b, double c, VertexId num_vertices) {
  PATHENUM_CHECK(scale >= 1 && scale <= 31);
  PATHENUM_CHECK(a + b + c <= 1.0);
  const VertexId grid = static_cast<VertexId>(1) << scale;
  const VertexId n = num_vertices == 0 ? grid : num_vertices;
  PATHENUM_CHECK_MSG(n <= grid, "num_vertices exceeds 2^scale");
  Rng rng(seed);
  GraphBuilder builder(n);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  // Cap attempts so pathological parameters terminate; dedup makes the edge
  // count approximate, which is fine for workload graphs.
  const uint64_t max_attempts = num_edges * 16 + 1024;
  uint64_t attempts = 0;
  while (seen.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    VertexId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      // Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1). A small
      // per-level noise keeps the degree distribution from being too
      // regular, the standard Graph500 "smoothing" trick.
      const double noise = 0.95 + 0.1 * rng.NextDouble();
      const double aa = a * noise, bb = b * noise, cc = c * noise;
      u <<= 1;
      v <<= 1;
      if (r < aa) {
        // top-left
      } else if (r < aa + bb) {
        v |= 1;
      } else if (r < aa + bb + cc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || u >= n || v >= n) continue;
    if (seen.insert(EdgeKey(u, v)).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph GridGraph(uint32_t width, uint32_t height) {
  PATHENUM_CHECK(width >= 1 && height >= 1);
  GraphBuilder builder(width * height);
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      const VertexId v = y * width + x;
      if (x + 1 < width) builder.AddEdge(v, v + 1);
      if (y + 1 < height) builder.AddEdge(v, v + width);
    }
  }
  return builder.Build();
}

Graph LayeredGraph(uint32_t layers, uint32_t width) {
  PATHENUM_CHECK(width >= 1);
  const VertexId n = 2 + layers * width;
  GraphBuilder builder(n);
  const VertexId source = 0;
  const VertexId sink = n - 1;
  auto layer_vertex = [&](uint32_t layer, uint32_t i) -> VertexId {
    return 1 + layer * width + i;
  };
  if (layers == 0) {
    builder.AddEdge(source, sink);
  } else {
    for (uint32_t i = 0; i < width; ++i) {
      builder.AddEdge(source, layer_vertex(0, i));
      builder.AddEdge(layer_vertex(layers - 1, i), sink);
    }
    for (uint32_t l = 0; l + 1 < layers; ++l) {
      for (uint32_t i = 0; i < width; ++i) {
        for (uint32_t j = 0; j < width; ++j) {
          builder.AddEdge(layer_vertex(l, i), layer_vertex(l + 1, j));
        }
      }
    }
  }
  return builder.Build();
}

Graph CompleteDigraph(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph CycleGraph(VertexId n) {
  PATHENUM_CHECK(n >= 2);
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  return builder.Build();
}

Graph StarGraph(VertexId n) {
  PATHENUM_CHECK(n >= 2);
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) {
    builder.AddEdge(0, v);
    builder.AddEdge(v, 0);
  }
  return builder.Build();
}

Graph PathGraph(VertexId n) {
  PATHENUM_CHECK(n >= 1);
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

}  // namespace pathenum
