// Immutable directed graph in CSR (compressed sparse row) form with both
// out- and in-adjacency, plus optional per-edge weights and labels used by
// the constraint extensions (paper Appendix E).
#ifndef PATHENUM_GRAPH_GRAPH_H_
#define PATHENUM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace pathenum {

class GraphBuilder;

/// An immutable simple directed graph.
///
/// Vertices are dense `VertexId`s in `[0, num_vertices())`. Out-neighbors of
/// each vertex are stored sorted ascending, so `HasEdge` is a binary search
/// and iteration order is deterministic. The edge id of edge `(u, v)` is its
/// position in the flat out-adjacency array; weights/labels are parallel
/// arrays indexed by edge id.
///
/// Construction goes through `GraphBuilder` (which deduplicates edges and
/// removes self-loops) or `Graph::FromEdges` for convenience in tests.
class Graph {
 public:
  Graph() = default;

  /// Convenience factory: builds a graph over `num_vertices` vertices from an
  /// edge list. Duplicate edges and self-loops are dropped.
  static Graph FromEdges(VertexId num_vertices,
                         const std::vector<std::pair<VertexId, VertexId>>& edges);

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_offsets_.empty() ? 0
                                                      : out_offsets_.size() - 1);
  }

  uint64_t num_edges() const { return out_adj_.size(); }

  /// Out-neighbors of `v`, sorted ascending by vertex id.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_adj_.data() + out_offsets_[v],
            out_adj_.data() + out_offsets_[v + 1]};
  }

  /// In-neighbors of `v`, sorted ascending by vertex id.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_adj_.data() + in_offsets_[v],
            in_adj_.data() + in_offsets_[v + 1]};
  }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  uint32_t InDegree(VertexId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Total degree (in + out), the paper's criterion for the V'/V'' query
  /// partitions.
  uint32_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// True iff the directed edge (u, v) exists. O(log OutDegree(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Edge id of (u, v), or kInvalidEdge if absent. O(log OutDegree(u)).
  EdgeId FindEdge(VertexId u, VertexId v) const;

  /// Edge id of the j-th out-edge of `v` (aligned with OutNeighbors(v)[j]).
  EdgeId OutEdgeId(VertexId v, size_t j) const { return out_offsets_[v] + j; }

  bool has_weights() const { return !weights_.empty(); }
  bool has_labels() const { return !labels_.empty(); }

  /// Weight of edge `e`. Requires has_weights().
  double EdgeWeight(EdgeId e) const { return weights_[e]; }

  /// Label of edge `e`. Requires has_labels().
  uint32_t EdgeLabel(EdgeId e) const { return labels_[e]; }

  /// Number of distinct labels (max label + 1), 0 if unlabeled.
  uint32_t num_labels() const { return num_labels_; }

  /// Approximate heap footprint of the CSR arrays, in bytes.
  size_t MemoryBytes() const;

  /// Process-unique identity of this graph's topology: a fresh value per
  /// constructed graph, carried along by copies and moves (they describe
  /// the same topology). Consumers that cache topology-derived structures
  /// (a distance oracle, a query engine's bound snapshot) key their
  /// validity on this rather than the object address — a recycled
  /// allocation at the same address never aliases a retired graph's
  /// identity.
  uint64_t uid() const { return uid_; }

 private:
  friend class GraphBuilder;

  /// Next value of the process-wide uid counter (atomic; never 0).
  static uint64_t NextUid();

  std::vector<uint64_t> out_offsets_;  // size num_vertices + 1
  std::vector<VertexId> out_adj_;      // size num_edges
  std::vector<uint64_t> in_offsets_;   // size num_vertices + 1
  std::vector<VertexId> in_adj_;       // size num_edges
  std::vector<double> weights_;        // empty or size num_edges
  std::vector<uint32_t> labels_;       // empty or size num_edges
  uint32_t num_labels_ = 0;
  uint64_t uid_ = NextUid();  // copied/moved with the topology it names
};

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_GRAPH_H_
