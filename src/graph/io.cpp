#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.h"

namespace pathenum {

namespace {

struct ParsedEdge {
  VertexId u;
  VertexId v;
  double weight;
  uint32_t label;
};

}  // namespace

Graph ReadEdgeList(std::istream& in, EdgeListFormat format) {
  std::vector<ParsedEdge> edges;
  VertexId max_vertex = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    ParsedEdge e{0, 0, 1.0, 0};
    uint64_t u64 = 0, v64 = 0;
    if (!(ls >> u64 >> v64)) {
      throw std::runtime_error("malformed edge list at line " +
                               std::to_string(line_no));
    }
    if (format == EdgeListFormat::kWeighted ||
        format == EdgeListFormat::kWeightedLabeled) {
      if (!(ls >> e.weight)) {
        throw std::runtime_error("missing weight at line " +
                                 std::to_string(line_no));
      }
    }
    if (format == EdgeListFormat::kWeightedLabeled) {
      if (!(ls >> e.label)) {
        throw std::runtime_error("missing label at line " +
                                 std::to_string(line_no));
      }
    }
    if (u64 >= kInvalidVertex || v64 >= kInvalidVertex) {
      throw std::runtime_error("vertex id out of range at line " +
                               std::to_string(line_no));
    }
    e.u = static_cast<VertexId>(u64);
    e.v = static_cast<VertexId>(v64);
    max_vertex = std::max({max_vertex, e.u, e.v});
    edges.push_back(e);
  }
  GraphBuilder builder(edges.empty() ? 0 : max_vertex + 1);
  for (const ParsedEdge& e : edges) {
    builder.AddEdge(e.u, e.v, e.weight, e.label);
  }
  return builder.Build();
}

Graph LoadEdgeList(const std::string& path, EdgeListFormat format) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return ReadEdgeList(in, format);
}

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << "# pathenum edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      out << u << ' ' << nbrs[j];
      if (g.has_weights() || g.has_labels()) {
        const EdgeId e = g.OutEdgeId(u, j);
        out << ' ' << (g.has_weights() ? g.EdgeWeight(e) : 1.0);
        if (g.has_labels()) out << ' ' << g.EdgeLabel(e);
      }
      out << '\n';
    }
  }
}

void SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  WriteEdgeList(g, out);
  if (!out) throw std::runtime_error("I/O error writing: " + path);
}

namespace {

constexpr uint64_t kBinaryMagic = 0x50454e554d475231ULL;  // "PENUMGR1"

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  WriteRaw(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T ReadRaw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated binary graph");
  return value;
}

template <typename T>
std::vector<T> ReadVec(std::istream& in) {
  const uint64_t n = ReadRaw<uint64_t>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("truncated binary graph");
  return v;
}

}  // namespace

void SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  WriteRaw(out, kBinaryMagic);
  WriteRaw(out, static_cast<uint64_t>(g.num_vertices()));
  // Rebuild-from-edge-list keeps the writer independent of Graph's private
  // layout: dump (u, v, weight, label) runs.
  const uint8_t flags = static_cast<uint8_t>((g.has_weights() ? 1 : 0) |
                                             (g.has_labels() ? 2 : 0));
  WriteRaw(out, flags);
  std::vector<VertexId> sources, targets;
  std::vector<double> weights;
  std::vector<uint32_t> labels;
  sources.reserve(g.num_edges());
  targets.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      sources.push_back(u);
      targets.push_back(nbrs[j]);
      const EdgeId e = g.OutEdgeId(u, j);
      if (g.has_weights()) weights.push_back(g.EdgeWeight(e));
      if (g.has_labels()) labels.push_back(g.EdgeLabel(e));
    }
  }
  WriteVec(out, sources);
  WriteVec(out, targets);
  if (g.has_weights()) WriteVec(out, weights);
  if (g.has_labels()) WriteVec(out, labels);
  if (!out) throw std::runtime_error("I/O error writing: " + path);
}

Graph LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  if (ReadRaw<uint64_t>(in) != kBinaryMagic) {
    throw std::runtime_error("not a pathenum binary graph: " + path);
  }
  const uint64_t num_vertices = ReadRaw<uint64_t>(in);
  const uint8_t flags = ReadRaw<uint8_t>(in);
  const auto sources = ReadVec<VertexId>(in);
  const auto targets = ReadVec<VertexId>(in);
  if (sources.size() != targets.size()) {
    throw std::runtime_error("corrupt binary graph: " + path);
  }
  std::vector<double> weights;
  std::vector<uint32_t> labels;
  if (flags & 1) weights = ReadVec<double>(in);
  if (flags & 2) labels = ReadVec<uint32_t>(in);
  GraphBuilder builder(static_cast<VertexId>(num_vertices));
  for (size_t i = 0; i < sources.size(); ++i) {
    builder.AddEdge(sources[i], targets[i],
                    (flags & 1) ? weights[i] : 1.0,
                    (flags & 2) ? labels[i] : 0);
  }
  return builder.Build();
}

}  // namespace pathenum
