#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"
#include "util/fault_injection.h"

namespace pathenum {

namespace {

struct ParsedEdge {
  VertexId u;
  VertexId v;
  double weight;
  uint32_t label;
};

}  // namespace

StatusOr<Graph> TryReadEdgeList(std::istream& in,
                                const EdgeListOptions& opts) {
  fault::Hit(fault::Site::kIoRead);
  std::vector<ParsedEdge> edges;
  std::unordered_set<uint64_t> seen;  // (u, v) packed; strict mode only
  VertexId max_vertex = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    ParsedEdge e{0, 0, 1.0, 0};
    uint64_t u64 = 0, v64 = 0;
    if (!(ls >> u64 >> v64)) {
      return Status::InvalidArgument("malformed edge list at line " +
                                     std::to_string(line_no));
    }
    if (opts.format == EdgeListFormat::kWeighted ||
        opts.format == EdgeListFormat::kWeightedLabeled) {
      if (!(ls >> e.weight)) {
        return Status::InvalidArgument("missing weight at line " +
                                       std::to_string(line_no));
      }
    }
    if (opts.format == EdgeListFormat::kWeightedLabeled) {
      if (!(ls >> e.label)) {
        return Status::InvalidArgument("missing label at line " +
                                       std::to_string(line_no));
      }
    }
    if (u64 >= kInvalidVertex || v64 >= kInvalidVertex) {
      return Status::InvalidArgument("vertex id out of range at line " +
                                     std::to_string(line_no));
    }
    e.u = static_cast<VertexId>(u64);
    e.v = static_cast<VertexId>(v64);
    if (opts.strict) {
      if (e.u == e.v) {
        return Status::InvalidArgument("self-loop at line " +
                                       std::to_string(line_no));
      }
      const uint64_t key = (u64 << 32) | v64;
      if (!seen.insert(key).second) {
        return Status::InvalidArgument("duplicate edge (" +
                                       std::to_string(u64) + ", " +
                                       std::to_string(v64) + ") at line " +
                                       std::to_string(line_no));
      }
    }
    max_vertex = std::max({max_vertex, e.u, e.v});
    edges.push_back(e);
  }
  if (in.bad()) {
    return Status::DataLoss("read error after line " +
                            std::to_string(line_no));
  }
  GraphBuilder builder(edges.empty() ? 0 : max_vertex + 1);
  for (const ParsedEdge& e : edges) {
    builder.AddEdge(e.u, e.v, e.weight, e.label);
  }
  return builder.Build();
}

StatusOr<Graph> TryLoadEdgeList(const std::string& path,
                                const EdgeListOptions& opts) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open graph file: " + path);
  return TryReadEdgeList(in, opts);
}

Graph ReadEdgeList(std::istream& in, EdgeListFormat format) {
  StatusOr<Graph> g = TryReadEdgeList(in, {.format = format});
  if (!g.ok()) throw std::runtime_error(g.status().message());
  return std::move(g).value();
}

Graph LoadEdgeList(const std::string& path, EdgeListFormat format) {
  StatusOr<Graph> g = TryLoadEdgeList(path, {.format = format});
  if (!g.ok()) throw std::runtime_error(g.status().message());
  return std::move(g).value();
}

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << "# pathenum edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      out << u << ' ' << nbrs[j];
      if (g.has_weights() || g.has_labels()) {
        const EdgeId e = g.OutEdgeId(u, j);
        out << ' ' << (g.has_weights() ? g.EdgeWeight(e) : 1.0);
        if (g.has_labels()) out << ' ' << g.EdgeLabel(e);
      }
      out << '\n';
    }
  }
}

void SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  WriteEdgeList(g, out);
  if (!out) throw std::runtime_error("I/O error writing: " + path);
}

namespace {

constexpr uint64_t kBinaryMagic = 0x50454e554d475231ULL;  // "PENUMGR1"

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  WriteRaw(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadRawInto(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

/// Reads a length-prefixed array. `bytes_left` is the remaining file size:
/// a corrupt length field must fail cleanly (kDataLoss), not drive a
/// multi-gigabyte allocation off a 40-byte file.
template <typename T>
bool ReadVecInto(std::istream& in, uint64_t bytes_left, std::vector<T>& v) {
  uint64_t n = 0;
  if (!ReadRawInto(in, n)) return false;
  if (bytes_left < sizeof(uint64_t) ||
      n > (bytes_left - sizeof(uint64_t)) / sizeof(T)) {
    return false;  // claims more elements than the file holds
  }
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

void SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  WriteRaw(out, kBinaryMagic);
  WriteRaw(out, static_cast<uint64_t>(g.num_vertices()));
  // Rebuild-from-edge-list keeps the writer independent of Graph's private
  // layout: dump (u, v, weight, label) runs.
  const uint8_t flags = static_cast<uint8_t>((g.has_weights() ? 1 : 0) |
                                             (g.has_labels() ? 2 : 0));
  WriteRaw(out, flags);
  std::vector<VertexId> sources, targets;
  std::vector<double> weights;
  std::vector<uint32_t> labels;
  sources.reserve(g.num_edges());
  targets.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      sources.push_back(u);
      targets.push_back(nbrs[j]);
      const EdgeId e = g.OutEdgeId(u, j);
      if (g.has_weights()) weights.push_back(g.EdgeWeight(e));
      if (g.has_labels()) labels.push_back(g.EdgeLabel(e));
    }
  }
  WriteVec(out, sources);
  WriteVec(out, targets);
  if (g.has_weights()) WriteVec(out, weights);
  if (g.has_labels()) WriteVec(out, labels);
  if (!out) throw std::runtime_error("I/O error writing: " + path);
}

StatusOr<Graph> TryLoadBinary(const std::string& path) {
  fault::Hit(fault::Site::kIoRead);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open graph file: " + path);
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  const auto truncated = [&path] {
    return Status::DataLoss("truncated binary graph: " + path);
  };
  const auto bytes_left = [&in, file_size] {
    const auto pos = in.tellg();
    return pos < 0 ? uint64_t{0} : file_size - static_cast<uint64_t>(pos);
  };

  uint64_t magic = 0;
  if (!ReadRawInto(in, magic)) return truncated();
  if (magic != kBinaryMagic) {
    return Status::InvalidArgument("not a pathenum binary graph: " + path);
  }
  uint64_t num_vertices = 0;
  uint8_t flags = 0;
  if (!ReadRawInto(in, num_vertices) || !ReadRawInto(in, flags)) {
    return truncated();
  }
  if (num_vertices >= kInvalidVertex || (flags & ~uint8_t{3}) != 0) {
    return Status::DataLoss("corrupt binary graph header: " + path);
  }
  std::vector<VertexId> sources, targets;
  if (!ReadVecInto(in, bytes_left(), sources) ||
      !ReadVecInto(in, bytes_left(), targets)) {
    return truncated();
  }
  if (sources.size() != targets.size()) {
    return Status::DataLoss("corrupt binary graph: " + path);
  }
  std::vector<double> weights;
  std::vector<uint32_t> labels;
  if ((flags & 1) && !ReadVecInto(in, bytes_left(), weights)) {
    return truncated();
  }
  if ((flags & 2) && !ReadVecInto(in, bytes_left(), labels)) {
    return truncated();
  }
  if (((flags & 1) && weights.size() != sources.size()) ||
      ((flags & 2) && labels.size() != sources.size())) {
    return Status::DataLoss("corrupt binary graph: " + path);
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i] >= num_vertices || targets[i] >= num_vertices) {
      return Status::DataLoss("edge endpoint out of range in binary graph: " +
                              path);
    }
  }
  GraphBuilder builder(static_cast<VertexId>(num_vertices));
  for (size_t i = 0; i < sources.size(); ++i) {
    builder.AddEdge(sources[i], targets[i],
                    (flags & 1) ? weights[i] : 1.0,
                    (flags & 2) ? labels[i] : 0);
  }
  return builder.Build();
}

Graph LoadBinary(const std::string& path) {
  StatusOr<Graph> g = TryLoadBinary(path);
  if (!g.ok()) throw std::runtime_error(g.status().message());
  return std::move(g).value();
}

}  // namespace pathenum
