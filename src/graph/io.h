// Text I/O for graphs. The format is the SNAP edge-list convention the
// paper's datasets ship in: one `u v` pair per line, `#` comments ignored.
// Weighted (`u v w`) and labeled (`u v w l`) variants are supported for the
// constraint extensions.
#ifndef PATHENUM_GRAPH_IO_H_
#define PATHENUM_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace pathenum {

/// Columns present in an edge-list file.
enum class EdgeListFormat {
  kPlain,          // u v
  kWeighted,       // u v weight
  kWeightedLabeled // u v weight label
};

/// Ingestion knobs for the Status-returning readers.
struct EdgeListOptions {
  EdgeListFormat format = EdgeListFormat::kPlain;
  /// Strict ingestion: duplicate edges and self-loops — which GraphBuilder
  /// otherwise silently drops — fail the read with kInvalidArgument. Right
  /// for datasets whose producer promises a clean edge set; leave off for
  /// raw SNAP files, where both occur legitimately.
  bool strict = false;
};

/// Status-returning readers for untrusted files: a malformed line, an
/// out-of-range vertex id, truncation, or (under `strict`) a duplicate
/// edge/self-loop fails the read with a line-numbered message instead of
/// throwing — nothing partially constructed escapes.
StatusOr<Graph> TryReadEdgeList(std::istream& in,
                                const EdgeListOptions& opts = {});
StatusOr<Graph> TryLoadEdgeList(const std::string& path,
                                const EdgeListOptions& opts = {});

/// Parses an edge list from `in`. Vertex ids may be sparse; they are kept
/// as-is and the vertex count is max id + 1 (SNAP convention). Throws
/// std::runtime_error on malformed input. (Wrapper over TryReadEdgeList
/// for call sites that prefer exceptions.)
Graph ReadEdgeList(std::istream& in,
                   EdgeListFormat format = EdgeListFormat::kPlain);

/// Loads an edge list from `path`. Throws std::runtime_error if the file
/// cannot be opened or parsed.
Graph LoadEdgeList(const std::string& path,
                   EdgeListFormat format = EdgeListFormat::kPlain);

/// Writes `g` as an edge list (including weights/labels when present).
void WriteEdgeList(const Graph& g, std::ostream& out);

/// Saves `g` to `path`. Throws std::runtime_error on I/O failure.
void SaveEdgeList(const Graph& g, const std::string& path);

/// Compact binary serialization (magic + counts + CSR arrays + optional
/// attributes). ~100x faster than text for multi-million-edge graphs; the
/// benchmark harness caches generated datasets this way.
void SaveBinary(const Graph& g, const std::string& path);

/// Loads a graph written by SaveBinary. Throws std::runtime_error on a
/// missing file, bad magic, or truncation.
Graph LoadBinary(const std::string& path);

/// Status-returning LoadBinary: kNotFound for a missing file,
/// kInvalidArgument for a foreign magic, kDataLoss for truncation or
/// internal inconsistency.
StatusOr<Graph> TryLoadBinary(const std::string& path);

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_IO_H_
