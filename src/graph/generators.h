// Synthetic graph generators. These stand in for the paper's SNAP /
// NetworkRepository datasets (see DESIGN.md §2): R-MAT reproduces the
// heavy-tailed degree distributions of the web and social graphs, the
// Barabási–Albert model stands in for citation graphs, and Erdős–Rényi for
// the near-uniform ones. The deterministic families (grid, layered, clique,
// cycle, star, path) are used by tests, where exact path counts are known in
// closed form.
#ifndef PATHENUM_GRAPH_GENERATORS_H_
#define PATHENUM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace pathenum {

/// Directed Erdős–Rényi G(n, m): `num_edges` distinct directed non-loop
/// edges sampled uniformly. Requires m <= n*(n-1).
Graph ErdosRenyi(VertexId num_vertices, uint64_t num_edges, uint64_t seed);

/// Directed Barabási–Albert preferential attachment: each new vertex emits
/// `edges_per_vertex` out-edges to endpoints sampled proportionally to
/// degree; each attachment is reciprocated with probability `back_prob`
/// (citation-style graphs use back_prob = 0).
Graph BarabasiAlbert(VertexId num_vertices, uint32_t edges_per_vertex,
                     uint64_t seed, double back_prob = 0.0);

/// R-MAT (recursive matrix) generator over 2^scale vertices with the classic
/// (a, b, c, d) quadrant probabilities; duplicates and self-loops are
/// dropped, so the result can have slightly fewer than `num_edges` edges.
/// A non-zero `num_vertices` truncates the vertex space to exactly that
/// count (samples landing beyond it are rejected), letting workload graphs
/// match non-power-of-two dataset sizes.
Graph RMat(uint32_t scale, uint64_t num_edges, uint64_t seed,
           double a = 0.57, double b = 0.19, double c = 0.19,
           VertexId num_vertices = 0);

/// `width` x `height` grid; edges go right and down. Vertex (x, y) has id
/// y*width + x. Number of monotone paths corner-to-corner is a binomial
/// coefficient — handy for exact-count tests.
Graph GridGraph(uint32_t width, uint32_t height);

/// Layered "diamond": source -> L1 -> L2 -> ... -> sink with `layers` inner
/// layers of `width` vertices each and complete bipartite edges between
/// consecutive layers. Exactly width^layers s-t paths, all of length
/// layers+1. Vertex 0 is the source; the last vertex is the sink.
Graph LayeredGraph(uint32_t layers, uint32_t width);

/// Complete digraph on n vertices (all ordered pairs, no loops).
Graph CompleteDigraph(VertexId n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
Graph CycleGraph(VertexId n);

/// Star: hub 0 with spokes out to 1..n-1 and back in.
Graph StarGraph(VertexId n);

/// Simple directed path 0 -> 1 -> ... -> n-1.
Graph PathGraph(VertexId n);

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_GENERATORS_H_
