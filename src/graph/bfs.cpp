#include "graph/bfs.h"

#include <algorithm>

namespace pathenum {

void DistanceField::EnsureSize(size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    dist_.assign(n, 0);
    epoch_ = 0;
  }
}

void DistanceField::Compute(const Graph& g, Direction dir, VertexId source,
                            const Options& opts) {
  PATHENUM_CHECK(source < g.num_vertices());
  EnsureSize(g.num_vertices());
  if (++epoch_ == 0) {  // stamp wrap-around: reset and restart epochs
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  reached_.clear();

  stamp_[source] = epoch_;
  dist_[source] = 0;
  reached_.push_back(source);
  if (source == opts.stop_at) return;

  // `reached_` doubles as the FIFO queue: BFS order is non-decreasing in
  // distance, so scanning it front-to-back visits each frontier in turn.
  for (size_t head = 0; head < reached_.size(); ++head) {
    const VertexId u = reached_[head];
    const uint32_t du = dist_[u];
    if (du >= opts.max_depth) continue;  // children would exceed the cap
    if (u == opts.blocked && u != source) continue;  // reached, not expanded
    const auto nbrs =
        dir == Direction::kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId v = nbrs[j];
      if (stamp_[v] == epoch_) continue;
      if (opts.filter != nullptr) {
        // Present the edge in graph orientation regardless of direction.
        const VertexId from = dir == Direction::kForward ? u : v;
        const VertexId to = dir == Direction::kForward ? v : u;
        const EdgeId e = dir == Direction::kForward
                             ? g.OutEdgeId(u, j)
                             : g.FindEdge(v, u);
        if (!(*opts.filter)(from, to, e)) continue;
      }
      if (opts.admit != nullptr && !(*opts.admit)(v, du + 1)) continue;
      stamp_[v] = epoch_;
      dist_[v] = du + 1;
      reached_.push_back(v);
      if (v == opts.stop_at) return;
    }
  }
}

bool WithinDistance(const Graph& g, VertexId from, VertexId to,
                    uint32_t max_depth) {
  if (from == to) return true;
  DistanceField field;
  DistanceField::Options opts;
  opts.max_depth = max_depth;
  opts.stop_at = to;
  field.Compute(g, Direction::kForward, from, opts);
  return field.Distance(to) <= max_depth;
}

}  // namespace pathenum
