#include "graph/bfs.h"

#include <algorithm>

namespace pathenum {

void DistanceField::EnsureSize(size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    dist_.assign(n, 0);
    epoch_ = 0;
  }
}

void DistanceField::Compute(const Graph& g, Direction dir, VertexId source,
                            const Options& opts) {
  // Dispatch once per traversal: each combination instantiates ComputeWith
  // with the std::function indirection confined to the branches that need
  // it, so the common unfiltered case runs the branch-free instantiation.
  const EdgeFilter* filter = opts.filter;
  const VertexAdmission* admit = opts.admit;
  const auto call_filter = [filter](VertexId u, VertexId v, EdgeId e) {
    return (*filter)(u, v, e);
  };
  const auto call_admit = [admit](VertexId v, uint32_t dist) {
    return (*admit)(v, dist);
  };
  if (filter != nullptr && admit != nullptr) {
    ComputeWith(g, dir, source, opts, call_filter, call_admit);
  } else if (filter != nullptr) {
    ComputeWith(g, dir, source, opts, call_filter, AdmitAllVertices{});
  } else if (admit != nullptr) {
    ComputeWith(g, dir, source, opts, AcceptAllEdges{}, call_admit);
  } else {
    ComputeWith(g, dir, source, opts, AcceptAllEdges{}, AdmitAllVertices{});
  }
}

bool WithinDistance(const Graph& g, VertexId from, VertexId to,
                    uint32_t max_depth) {
  if (from == to) return true;
  DistanceField field;
  DistanceField::Options opts;
  opts.max_depth = max_depth;
  opts.stop_at = to;
  field.Compute(g, Direction::kForward, from, opts);
  return field.Distance(to) <= max_depth;
}

}  // namespace pathenum
