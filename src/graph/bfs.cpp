#include "graph/bfs.h"

#include <algorithm>

namespace pathenum {

void DistanceField::EnsureSize(size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    dist_.assign(n, 0);
    epoch_ = 0;
  }
}

bool WithinDistance(const Graph& g, VertexId from, VertexId to,
                    uint32_t max_depth) {
  if (from == to) return true;
  DistanceField field;
  DistanceField::Options opts;
  opts.max_depth = max_depth;
  opts.stop_at = to;
  field.Compute(g, Direction::kForward, from, opts);
  return field.Distance(to) <= max_depth;
}

}  // namespace pathenum
