#include "graph/bfs.h"

#include <algorithm>

namespace pathenum {

void DistanceField::EnsureSize(size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    dist_.assign(n, 0);
    epoch_ = 0;
  }
}

void BatchedDistanceField::EnsureSize(size_t n, size_t k) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    reached_word_.resize(n);
    blocked_stamp_.assign(n, 0);
    blocked_word_.resize(n);
    cur_stamp_.assign(n, 0);
    next_stamp_.assign(n, 0);
    cur_word_.resize(n);
    next_word_.resize(n);
    epoch_ = 0;
    token_ = 0;
  }
  if (dist_.size() < n * k) dist_.resize(n * k);
  if (reached_lists_.size() < k) reached_lists_.resize(k);
  if (wave_offsets_.size() < k) wave_offsets_.resize(k);
}

bool WithinDistance(const Graph& g, VertexId from, VertexId to,
                    uint32_t max_depth) {
  if (from == to) return true;
  DistanceField field;
  DistanceField::Options opts;
  opts.max_depth = max_depth;
  opts.stop_at = to;
  field.Compute(g, Direction::kForward, from, opts);
  return field.Distance(to) <= max_depth;
}

}  // namespace pathenum
