// Pruned landmark labeling (2-hop distance labels) for exact distance
// queries — the "global index built in an offline preprocessing step" the
// paper sketches as future work in §7.5, after Akiba, Iwata & Yoshida
// (SIGMOD 2013), here in its directed-graph form.
//
// Each vertex carries two label sets:
//   L_out(v) = {(h, d(v->h))}  and  L_in(v) = {(h, d(h->v))}
// over degree-ranked hub vertices h, such that
//   d(s, t) = min over common h of  d(s->h) + d(h->t).
// Construction performs one pruned forward and one pruned backward BFS per
// hub; a visit is pruned when the labels built so far already certify a
// distance no larger than the tentative one.
//
// PathEnum uses the oracle for (a) O(|label|) rejection of queries with
// d(s,t) > k before any per-query work, and (b) fast dist <= 3 checks in
// workload generation. It complements — never replaces — the per-query
// light-weight index, exactly as §7.5 envisions.
#ifndef PATHENUM_GRAPH_DISTANCE_ORACLE_H_
#define PATHENUM_GRAPH_DISTANCE_ORACLE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace pathenum {

/// Immutable 2-hop distance labeling. Build once per graph snapshot.
class PrunedLandmarkIndex {
 public:
  struct BuildStats {
    double build_ms = 0.0;
    double avg_label_entries = 0.0;  // per direction, per vertex
    size_t memory_bytes = 0;
  };

  PrunedLandmarkIndex() = default;

  /// Builds the labeling for `g`. O(sum of label sizes) space; construction
  /// cost grows with graph density — intended for graphs up to a few
  /// million edges (the catalog scale).
  static PrunedLandmarkIndex Build(const Graph& g);

  /// Exact shortest-path distance s -> t; kInfDistance when unreachable.
  uint32_t Distance(VertexId s, VertexId t) const;

  /// True iff d(s, t) <= bound. Same cost as Distance.
  bool Within(VertexId s, VertexId t, uint32_t bound) const;

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }

  const BuildStats& build_stats() const { return stats_; }

  size_t MemoryBytes() const;

  /// One label entry: (hub rank, distance). Public for the construction
  /// helpers in the implementation file; not part of the query API.
  struct Entry {
    VertexId hub;   // rank-space hub id (ranks are comparable across labels)
    uint32_t dist;
  };

 private:
  std::span<const Entry> OutLabel(VertexId v) const {
    return {out_entries_.data() + out_offsets_[v],
            out_entries_.data() + out_offsets_[v + 1]};
  }

  std::span<const Entry> InLabel(VertexId v) const {
    return {in_entries_.data() + in_offsets_[v],
            in_entries_.data() + in_offsets_[v + 1]};
  }

  // CSR-packed labels, entries sorted ascending by hub rank so queries are
  // a linear merge.
  std::vector<uint64_t> out_offsets_;
  std::vector<Entry> out_entries_;
  std::vector<uint64_t> in_offsets_;
  std::vector<Entry> in_entries_;
  BuildStats stats_;
};

}  // namespace pathenum

#endif  // PATHENUM_GRAPH_DISTANCE_ORACLE_H_
