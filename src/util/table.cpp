#include "util/table.h"

#include <cmath>
#include <cstdio>

#include "util/common.h"

namespace pathenum {

std::string FormatSci(double v) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  if (v == 0.0) return "0.00e+0";
  char buf[32];
  const int exponent =
      static_cast<int>(std::floor(std::log10(std::fabs(v))));
  const double mantissa = v / std::pow(10.0, exponent);
  std::snprintf(buf, sizeof(buf), "%.2fe%+d", mantissa, exponent);
  return buf;
}

std::string FormatFixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : columns_(header.size()) {
  PATHENUM_CHECK(columns_ > 0);
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PATHENUM_CHECK_MSG(row.size() == columns_, "row arity mismatch");
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_, 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns_; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < columns_; ++c) {
      os << rows_[r][c];
      if (c + 1 < columns_) {
        os << std::string(widths[c] - rows_[r][c].size() + 2, ' ');
      }
    }
    os << '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < columns_; ++c) total += widths[c] + 2;
      os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
  }
}

}  // namespace pathenum
