// Wall-clock timing helpers. All paper metrics are reported in milliseconds.
#ifndef PATHENUM_UTIL_TIMER_H_
#define PATHENUM_UTIL_TIMER_H_

#include <chrono>
#include <limits>

namespace pathenum {

/// Monotonic stopwatch.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// A wall-clock budget. `Deadline::Unlimited()` never expires. Enumerators
/// check the deadline every few thousand search steps so the check itself
/// does not perturb measurements.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  static Deadline Unlimited() { return Deadline(); }

  static Deadline AfterMs(double ms) {
    Deadline d;
    if (ms < std::numeric_limits<double>::infinity()) {
      d.limited_ = true;
      d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double, std::milli>(ms));
    }
    return d;
  }

  bool limited() const { return limited_; }

  bool Expired() const { return limited_ && Clock::now() >= end_; }

  /// Remaining budget in milliseconds: +infinity for an unlimited
  /// deadline, otherwise max(0, end - now). The canonical way to re-derive
  /// a child budget (split branch options, retry hints) from one deadline
  /// instead of recomputing limit-minus-elapsed at every site.
  double RemainingMs() const {
    if (!limited_) return std::numeric_limits<double>::infinity();
    const double ms =
        std::chrono::duration<double, std::milli>(end_ - Clock::now()).count();
    return ms > 0.0 ? ms : 0.0;
  }

  /// True iff this deadline fires strictly before `other` (an unlimited
  /// deadline never fires). Used to pick the tighter of two budgets.
  bool ExpiresBefore(const Deadline& other) const {
    if (!limited_) return false;
    if (!other.limited_) return true;
    return end_ < other.end_;
  }

 private:
  bool limited_ = false;
  Clock::time_point end_{};
};

}  // namespace pathenum

#endif  // PATHENUM_UTIL_TIMER_H_
