// Deterministic fault-injection hooks for robustness tests (DESIGN.md §10).
//
// A *site* is a named point on a cold path — an index-build BFS wave, a
// PathBlock delivery, the moment before a cache build runs. Tests arm a
// callback on a site (optionally skipping the first N hits so the fault
// lands at an exact, reproducible point) and the callback runs inline at
// the site on whatever thread hits it. The callback may sleep (slow
// build), throw (allocation failure), or fire a CancelToken (mid-block
// cancellation) — whatever the scenario needs.
//
// Cost: a disarmed build pays one relaxed atomic load per site hit, and
// sites sit on block/wave boundaries, never inside per-edge loops.
// Compiling with PATHENUM_FAULT_INJECTION=0 (CMake option of the same
// name) empties Hit() at compile time for exactly-zero production cost.
#ifndef PATHENUM_UTIL_FAULT_INJECTION_H_
#define PATHENUM_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>

#ifndef PATHENUM_FAULT_INJECTION
#define PATHENUM_FAULT_INJECTION 1
#endif

namespace pathenum::fault {

enum class Site : uint32_t {
  kIndexBuildWave = 0,  // once per BFS wave inside index construction
  kIndexAdjacency,      // periodically during the index adjacency scan
  kBlockFlush,          // every PathBlock delivery (BlockEmitter::Flush)
  kCacheBuild,          // IndexCache::GetOrBuild, before the build runs
  kJoinMaterialize,     // periodically during JOIN tuple materialization
  kAsyncClaim,          // AsyncEngine worker claiming a submission
  kIoRead,              // graph deserialization, per parsed section
  kCount,
};

/// Runs at the site, inline, on the hitting thread. May throw; the
/// exception propagates out of the site exactly like a real failure there.
using Hook = std::function<void()>;

/// Arms `hook` on `site`: it fires on every hit after the first
/// `skip_hits` are let through. Replaces any previous hook and resets the
/// site's hit counter. Thread-safe against concurrent Hit().
void Arm(Site site, Hook hook, uint64_t skip_hits = 0);
void Disarm(Site site);
void DisarmAll();

/// Hits observed on `site` since it was last armed (0 when disarmed).
uint64_t HitCount(Site site);

namespace internal {
extern std::atomic<int> g_armed_count;
void HitSlow(Site site);
}  // namespace internal

/// The site marker. Fast path: one relaxed load of the global armed count
/// when fault injection is compiled in; nothing at all when it is not.
inline void Hit(Site site) {
#if PATHENUM_FAULT_INJECTION
  if (internal::g_armed_count.load(std::memory_order_relaxed) != 0) {
    internal::HitSlow(site);
  }
#else
  (void)site;
#endif
}

/// RAII arm for tests: disarms the site on scope exit.
class ScopedFault {
 public:
  ScopedFault(Site site, Hook hook, uint64_t skip_hits = 0) : site_(site) {
    Arm(site_, std::move(hook), skip_hits);
  }
  ~ScopedFault() { Disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Site site_;
};

}  // namespace pathenum::fault

#endif  // PATHENUM_UTIL_FAULT_INJECTION_H_
