// Descriptive statistics used by the benchmark harnesses: means, percentiles,
// CDFs and the log-log linear regression behind the paper's Figures 10/11.
#ifndef PATHENUM_UTIL_STATS_H_
#define PATHENUM_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace pathenum {

/// Summary statistics of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/stddev/min/max of `values` (population stddev).
Summary Summarize(const std::vector<double>& values);

/// Nearest-rank percentile over `values`, sorting them IN PLACE — no copy.
/// `p` in [0, 100]; returns 0 for empty input. p=50 is the median; p=99.9
/// is the paper's tail-latency metric (Fig. 8). Callers taking several
/// percentiles of one sample leave it sorted between calls, so only the
/// first call pays the sort.
double PercentileInPlace(std::span<double> values, double p);

/// Copying convenience wrapper over PercentileInPlace for callers that
/// need their sample preserved.
double Percentile(std::vector<double> values, double p);

/// One (x, y) point of an empirical CDF.
struct CdfPoint {
  double value;
  double fraction;  // fraction of samples <= value
};

/// Empirical CDF of `values`, downsampled to at most `max_points` points.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values,
                                   size_t max_points = 64);

/// Least-squares fit y = slope * x + intercept with Pearson correlation r.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;
  size_t count = 0;
};

/// Fits a line through the (x, y) points. Requires xs.size() == ys.size().
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// log10 that saturates tiny/non-positive inputs so regressions over
/// measured times (which may be 0 at clock resolution) stay well-defined.
double SafeLog10(double v);

}  // namespace pathenum

#endif  // PATHENUM_UTIL_STATS_H_
