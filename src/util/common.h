// Common type aliases and checking macros shared by every PathEnum module.
#ifndef PATHENUM_UTIL_COMMON_H_
#define PATHENUM_UTIL_COMMON_H_

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pathenum {

/// Identifier of a vertex. Vertices are dense integers `[0, num_vertices)`.
using VertexId = uint32_t;

/// Identifier of a directed edge: its position inside the out-CSR edge array.
using EdgeId = uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Sentinel distance meaning "unreachable".
inline constexpr uint32_t kInfDistance = std::numeric_limits<uint32_t>::max();

/// Largest supported hop constraint. Keeps per-vertex offset slots small; the
/// paper's workloads use k in [3, 8].
inline constexpr uint32_t kMaxHops = 30;

namespace internal {

[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "PATHENUM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace internal

}  // namespace pathenum

/// Invariant check that stays enabled in release builds. Used for API
/// contract violations (bad queries, malformed inputs); algorithm hot loops
/// use plain assert instead.
#define PATHENUM_CHECK(expr)                                                  \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::pathenum::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__, ""); \
    }                                                                         \
  } while (0)

#define PATHENUM_CHECK_MSG(expr, msg)                                         \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::pathenum::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__,      \
                                              (msg));                         \
    }                                                                         \
  } while (0)

#endif  // PATHENUM_UTIL_COMMON_H_
