// Fixed-width text table printing for the benchmark harnesses. The paper's
// tables report values like "5.75e+0"; `FormatSci` reproduces that format.
#ifndef PATHENUM_UTIL_TABLE_H_
#define PATHENUM_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace pathenum {

/// Formats `v` in the paper's scientific style, e.g. 5.75e+0, 1.46e+3.
std::string FormatSci(double v);

/// Formats `v` with `digits` decimal places.
std::string FormatFixed(double v, int digits = 2);

/// Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Writes the table with a header separator to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
  size_t columns_;
};

}  // namespace pathenum

#endif  // PATHENUM_UTIL_TABLE_H_
