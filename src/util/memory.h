// Memory-accounting helpers (paper Table 7) and the bump arena backing the
// zero-allocation steady state of the batch engine's hot paths.
#ifndef PATHENUM_UTIL_MEMORY_H_
#define PATHENUM_UTIL_MEMORY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace pathenum {

/// Bytes held by the elements of a vector (capacity, not size, to reflect
/// actual allocation).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Converts bytes to mebibytes, the unit used in the paper's Table 7.
inline double BytesToMiB(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// A chunked bump allocator for per-query scratch whose size depends on the
/// query (e.g. join key tables sized by the index vertex count).
///
/// Contract: allocations live until the next Reset(); only trivially
/// destructible element types are supported. Reset() keeps the arena's
/// high-water capacity (consolidated into a single chunk), so a context
/// that runs the same workload repeatedly stops allocating after the first
/// few queries — `chunk_allocations()` is the observable for tests.
/// Not thread-safe; each worker context owns its own arena.
class BumpArena {
 public:
  BumpArena() = default;

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Allocates an uninitialized span of `n` elements of T.
  template <typename T>
  std::span<T> AllocateSpan(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    void* p = Allocate(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// Raw allocation of `bytes` with the given alignment.
  void* Allocate(size_t bytes, size_t alignment) {
    Chunk* c = chunks_.empty() ? nullptr : &chunks_.back();
    size_t offset = c != nullptr ? AlignUp(c->used, alignment) : 0;
    if (c == nullptr || offset + bytes > c->capacity) {
      AddChunk(bytes + alignment);
      c = &chunks_.back();
      offset = AlignUp(c->used, alignment);
    }
    c->used = offset + bytes;
    return c->data.get() + offset;
  }

  /// Invalidates every allocation; retains (and consolidates) capacity.
  void Reset() {
    size_t used = 0;
    for (const Chunk& c : chunks_) used += c.used;
    if (used > high_water_bytes_) high_water_bytes_ = used;
    if (chunks_.size() > 1) {
      // Steady state is a single chunk covering the whole workload; one
      // consolidation allocation here ends the growth phase.
      const size_t total = capacity_bytes();
      chunks_.clear();
      AddChunk(total);
    }
    for (Chunk& c : chunks_) c.used = 0;
  }

  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.capacity;
    return total;
  }

  size_t used_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.used;
    return total;
  }

  /// Largest used_bytes() observed at a Reset().
  size_t high_water_bytes() const { return high_water_bytes_; }

  /// Total chunk allocations over the arena's lifetime. Stable across
  /// repeated identical workloads once warmed up.
  uint64_t chunk_allocations() const { return chunk_allocations_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  static size_t AlignUp(size_t offset, size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  void AddChunk(size_t min_bytes) {
    // Doubling growth keeps the chunk count logarithmic in the workload's
    // eventual footprint during warm-up.
    const size_t last = chunks_.empty() ? size_t{0} : chunks_.back().capacity;
    const size_t capacity = std::max({min_bytes, 2 * last, kMinChunkBytes});
    Chunk c;
    c.data = std::make_unique<std::byte[]>(capacity);
    c.capacity = capacity;
    chunks_.push_back(std::move(c));
    ++chunk_allocations_;
  }

  static constexpr size_t kMinChunkBytes = size_t{1} << 12;

  std::vector<Chunk> chunks_;
  size_t high_water_bytes_ = 0;
  uint64_t chunk_allocations_ = 0;
};

}  // namespace pathenum

#endif  // PATHENUM_UTIL_MEMORY_H_
