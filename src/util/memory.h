// Helpers for the paper's memory-consumption accounting (Table 7).
#ifndef PATHENUM_UTIL_MEMORY_H_
#define PATHENUM_UTIL_MEMORY_H_

#include <cstddef>
#include <vector>

namespace pathenum {

/// Bytes held by the elements of a vector (capacity, not size, to reflect
/// actual allocation).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Converts bytes to mebibytes, the unit used in the paper's Table 7.
inline double BytesToMiB(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace pathenum

#endif  // PATHENUM_UTIL_MEMORY_H_
