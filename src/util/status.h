// Status/StatusOr: error reporting for untrusted inputs (graph files,
// query parameters, update deltas) where aborting or throwing is the wrong
// tool — a malformed line in a 100M-edge upload must fail the request, not
// the process. Internal invariant violations keep using PATHENUM_CHECK.
#ifndef PATHENUM_UTIL_STATUS_H_
#define PATHENUM_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace pathenum {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,    // caller-supplied data is malformed
  kNotFound,           // named resource (file, key) does not exist
  kResourceExhausted,  // a budget (memory, queue, work) is exceeded
  kFailedPrecondition, // operation illegal in the current state
  kUnavailable,        // transient: retry may succeed (overload, shutdown)
  kDataLoss,           // stored data is corrupt or truncated
  kCancelled,
  kDeadlineExceeded,
  kInternal,
};

inline std::string_view StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kDataLoss: return "DataLoss";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kInternal: return "Internal";
  }
  return "?";
}

/// A (code, message) pair; default-constructed means OK. Cheap to return
/// by value (an OK status allocates nothing).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "Ok";
    std::string s(StatusCodeName(code_));
    s += ": ";
    s += message_;
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value. Implicitly constructible from either, so parsing
/// functions can `return Status::InvalidArgument(...)` and
/// `return std::move(graph)` alike.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value)                                        // NOLINT
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace pathenum

#endif  // PATHENUM_UTIL_STATUS_H_
