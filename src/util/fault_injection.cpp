#include "util/fault_injection.h"

#include <mutex>
#include <utility>

namespace pathenum::fault {

namespace {

struct SiteState {
  std::mutex mutex;  // guards hook/armed writes; Hit copies under it
  Hook hook;
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> skip{0};
  std::atomic<uint64_t> hits{0};
};

SiteState& StateOf(Site site) {
  static SiteState states[static_cast<size_t>(Site::kCount)];
  return states[static_cast<size_t>(site)];
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_count{0};

void HitSlow(Site site) {
  SiteState& st = StateOf(site);
  if (!st.armed.load(std::memory_order_acquire)) return;
  const uint64_t n = st.hits.fetch_add(1, std::memory_order_relaxed);
  if (n < st.skip.load(std::memory_order_relaxed)) return;
  Hook hook;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.armed.load(std::memory_order_relaxed)) return;
    hook = st.hook;  // copy: the hook may Disarm (or re-Arm) its own site
  }
  if (hook) hook();
}

}  // namespace internal

void Arm(Site site, Hook hook, uint64_t skip_hits) {
  SiteState& st = StateOf(site);
  std::lock_guard<std::mutex> lock(st.mutex);
  if (!st.armed.load(std::memory_order_relaxed)) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  st.hook = std::move(hook);
  st.skip.store(skip_hits, std::memory_order_relaxed);
  st.hits.store(0, std::memory_order_relaxed);
  st.armed.store(true, std::memory_order_release);
}

void Disarm(Site site) {
  SiteState& st = StateOf(site);
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.armed.load(std::memory_order_relaxed)) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  st.armed.store(false, std::memory_order_release);
  st.hook = nullptr;
  st.hits.store(0, std::memory_order_relaxed);
}

void DisarmAll() {
  for (uint32_t i = 0; i < static_cast<uint32_t>(Site::kCount); ++i) {
    Disarm(static_cast<Site>(i));
  }
}

uint64_t HitCount(Site site) {
  return StateOf(site).hits.load(std::memory_order_relaxed);
}

}  // namespace pathenum::fault
