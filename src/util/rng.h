// Deterministic pseudo-random number generation used by graph generators and
// workload sampling. All randomness in the repository flows through this
// class so every experiment is reproducible from a single seed.
#ifndef PATHENUM_UTIL_RNG_H_
#define PATHENUM_UTIL_RNG_H_

#include <cstdint>

namespace pathenum {

/// SplitMix64: tiny, fast, high-quality seeding/stepping generator
/// (Steele, Lea, Flood 2014). Used directly and to seed derived streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: the repository's workhorse generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.Next();
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method for unbiased results.
  uint64_t NextBounded(uint64_t bound) {
    // For the graph sizes in this repository a 64x64->128 multiply is exact.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace pathenum

#endif  // PATHENUM_UTIL_RNG_H_
