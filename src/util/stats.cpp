#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace pathenum {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double PercentileInPlace(std::span<double> values, double p) {
  if (values.empty()) return 0.0;
  PATHENUM_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  // Nearest-rank: smallest value with at least p% of the sample at or below.
  // The epsilon guards against p/100*n landing a hair above an integer
  // (e.g. 99.9% of 1000 must be rank 999, not 1000).
  const size_t n = values.size();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n) - 1e-9));
  rank = std::clamp<size_t>(rank, 1, n);
  return values[rank - 1];
}

double Percentile(std::vector<double> values, double p) {
  return PercentileInPlace(values, p);
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values,
                                   size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (values.empty() || max_points == 0) return cdf;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  const size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    // Sample evenly across ranks, always including the maximum.
    const size_t rank = (i * n) / points;
    cdf.push_back({values[rank - 1],
                   static_cast<double>(rank) / static_cast<double>(n)});
  }
  return cdf;
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  PATHENUM_CHECK(xs.size() == ys.size());
  LinearFit fit;
  fit.count = xs.size();
  if (xs.size() < 2) return fit;
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    syy += ys[i] * ys[i];
    sxy += xs[i] * ys[i];
  }
  const double cov = sxy - sx * sy / n;
  const double var_x = sxx - sx * sx / n;
  const double var_y = syy - sy * sy / n;
  if (var_x <= 0.0) return fit;
  fit.slope = cov / var_x;
  fit.intercept = (sy - fit.slope * sx) / n;
  fit.r = var_y > 0.0 ? cov / std::sqrt(var_x * var_y) : 0.0;
  return fit;
}

double SafeLog10(double v) {
  constexpr double kFloor = 1e-6;
  return std::log10(std::max(v, kFloor));
}

}  // namespace pathenum
