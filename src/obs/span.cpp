#include "obs/span.h"

#include <atomic>

#include "obs/trace.h"

#if PATHENUM_OBS

namespace pathenum::obs {

namespace {

std::atomic<uint64_t> g_query_seq{0};

double DurMs(QuerySpan::Clock::time_point from, QuerySpan::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Registry-owned span metrics, resolved once: the per-stage latency
// histograms and the terminal-state counters every finished span feeds.
struct SpanMetrics {
  RegHistogram* total_ms;
  RegHistogram* stage_ms[static_cast<size_t>(SpanStage::kStageCount)];
  RegCounter* finished[kNumQueryStates];

  SpanMetrics() {
    MetricRegistry& reg = MetricRegistry::Global();
    total_ms = reg.GetHistogram("pathenum_query_total_ms");
    for (size_t s = 0; s < static_cast<size_t>(SpanStage::kStageCount); ++s) {
      std::string label = "stage=\"";
      label += SpanStageName(static_cast<SpanStage>(s));
      label += '"';
      stage_ms[s] = reg.GetHistogram("pathenum_query_stage_ms", label);
    }
    for (size_t st = 0; st < kNumQueryStates; ++st) {
      std::string label = "state=\"";
      label += QueryStateName(static_cast<QueryState>(st));
      label += '"';
      finished[st] = reg.GetCounter("pathenum_query_finished_total", label);
    }
  }
};

SpanMetrics& Metrics() {
  static SpanMetrics* m = new SpanMetrics();  // leaked: process scope
  return *m;
}

}  // namespace

void QuerySpan::Begin(uint32_t source, uint32_t target, uint32_t hops) {
  data_ = QuerySpanData{};
  data_.id = g_query_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  data_.source = source;
  data_.target = target;
  data_.hops = hops;
  const uint32_t every = TraceRecorder::SampleEvery();
  data_.sampled = every > 0 && data_.id % every == 0;
  if (data_.sampled) data_.admit_ts_us = TraceRecorder::Global().NowUs();
  admit_ = Clock::now();
  last_ = admit_;
  active_ = true;
}

void QuerySpan::Mark(SpanStage stage) {
  if (!active_) return;
  const Clock::time_point now = Clock::now();
  const double ms = DurMs(last_, now);
  if (data_.num_segments < QuerySpanData::kMaxSegments) {
    data_.segments[data_.num_segments++] = {stage, ms};
  } else {
    // Overflow folds into the last segment: the label degrades, the
    // total stays exact.
    data_.segments[QuerySpanData::kMaxSegments - 1].ms += ms;
  }
  last_ = now;
}

void QuerySpan::Finish(QueryState state) {
  if (!active_) return;
  Mark(SpanStage::kSinkComplete);
  data_.state = state;
  data_.total_ms = DurMs(admit_, last_);
  active_ = false;

  SpanMetrics& m = Metrics();
  m.total_ms->Observe(data_.total_ms);
  for (size_t s = 0; s < static_cast<size_t>(SpanStage::kStageCount); ++s) {
    bool present = false;
    for (uint32_t i = 0; i < data_.num_segments; ++i) {
      if (data_.segments[i].stage == static_cast<SpanStage>(s)) {
        present = true;
        break;
      }
    }
    if (present) m.stage_ms[s]->Observe(data_.StageMs(static_cast<SpanStage>(s)));
  }
  const size_t st = static_cast<size_t>(state);
  if (st < kNumQueryStates) m.finished[st]->Inc();

  if (data_.sampled) TraceRecorder::Global().EmitSpan(data_);
}

}  // namespace pathenum::obs

#endif  // PATHENUM_OBS
