// Unified metrics substrate (DESIGN.md §12): sharded counters, callback
// gauges and log-bucket latency histograms behind one process-wide
// MetricRegistry with Prometheus-style text and JSON exposition.
//
// Two tiers with different lifetimes and gating:
//
//  * `ShardedCounter` / `Histogram` are plain concurrency primitives and
//    are ALWAYS compiled — subsystems use ShardedCounter as the storage
//    for their own Stats() structs (IndexCacheStats, EngineStats, ...),
//    so the functional counters exist with or without the obs layer.
//    Increments touch one cacheline-padded per-thread slot (relaxed
//    atomic add, no allocation); aggregation walks the slots only on
//    read, preserving the zero-allocation steady state of DESIGN.md §9.
//
//  * The registry (naming, labels, exposition) and the registry-owned
//    counters/histograms compile out under PATHENUM_OBS=0 (CMake option
//    `PATHENUM_OBS`): Register*/Unregister become inline no-ops, Dump*
//    return empty strings, and GetCounter/GetHistogram hand back no-op
//    stubs so instrumentation sites need no #ifdefs.
//
// Naming scheme: `pathenum_<subsystem>_<metric>[_total|_bytes|_ms]` with
// Prometheus-style `{key="value"}` labels; per-instance metrics (one
// engine, one cache, ...) carry an instance label from NextInstanceId().
#ifndef PATHENUM_OBS_METRICS_H_
#define PATHENUM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#ifndef PATHENUM_OBS
#define PATHENUM_OBS 1
#endif

namespace pathenum::obs {

inline constexpr bool kEnabled = PATHENUM_OBS != 0;

namespace internal {
/// Stable per-thread shard index: round-robin assigned on a thread's first
/// use, so any worker count spreads evenly over a fixed slot array.
uint32_t ThisThreadSlot();
}  // namespace internal

/// Monotonic counter sharded over a small fixed set of cacheline-padded
/// atomic slots. Each thread hashes to one slot (round-robin assignment on
/// first use), so concurrent Inc() from the worker pool never contends on
/// one cacheline. Value() sums the slots with acquire-free relaxed loads:
/// it is exact once writers quiesce and monotonically fresh under load.
/// Members are typically declared `mutable` so const accessors can count.
class ShardedCounter {
 public:
  static constexpr uint32_t kSlots = 8;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Inc(uint64_t n = 1) {
    slots_[internal::ThisThreadSlot() % kSlots].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };

  Slot slots_[kSlots];
};

/// Fixed log2-bucket latency histogram over microseconds, sharded like
/// ShardedCounter. Bucket b counts observations with floor(log2(us)) + 1
/// == b (bucket 0 is "< 1us", the last bucket absorbs overflow), so the
/// bucket upper edge is 2^b microseconds. Observe() is two relaxed adds
/// on one shard; Snap() merges shards on read.
class Histogram {
 public:
  static constexpr uint32_t kBuckets = 32;
  static constexpr uint32_t kShards = 4;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double ms);

  /// Bucket upper edge in milliseconds (2^b microseconds).
  static double BucketUpperMs(uint32_t b) {
    return static_cast<double>(uint64_t{1} << b) / 1000.0;
  }

  struct Snapshot {
    uint64_t count = 0;
    double sum_ms = 0.0;
    uint64_t buckets[kBuckets] = {};

    /// Nearest-rank quantile (q in [0,1]) reported as the holding bucket's
    /// upper edge in ms — log2-resolution by construction, which is the
    /// trade the fixed-footprint layout makes. 0 for an empty histogram.
    double Quantile(double q) const;
  };

  Snapshot Snap() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };

  Shard shards_[kShards];
};

#if PATHENUM_OBS

using RegCounter = ShardedCounter;
using RegHistogram = Histogram;

/// Process-wide registry of named metrics. Two registration styles:
///
///  * Borrowed: a subsystem instance registers pointers to its own
///    ShardedCounter members (or a gauge callback reading its state)
///    under an `owner` token, and MUST UnregisterOwner(owner) in its
///    destructor before those members die.
///
///  * Owned: GetCounter/GetHistogram lazily create a process-lifetime
///    metric keyed by (name, labels) — for global streams with no
///    natural instance (index builds, query spans).
///
/// Registration takes a mutex (cold: construction/destruction only);
/// increments never touch the registry. Dump* snapshots under the mutex.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  /// Monotonic id for building per-instance labels (`engine="3"`).
  uint64_t NextInstanceId();

  void RegisterCounter(const void* owner, std::string name, std::string labels,
                       const ShardedCounter* counter);
  void RegisterGauge(const void* owner, std::string name, std::string labels,
                     std::function<double()> read);
  void UnregisterOwner(const void* owner);

  /// Registry-owned metrics, created on first use, never destroyed until
  /// process exit. The returned pointer is valid forever; resolve once
  /// into a static and Inc()/Observe() with zero further registry cost.
  RegCounter* GetCounter(std::string_view name, std::string_view labels = {});
  RegHistogram* GetHistogram(std::string_view name,
                             std::string_view labels = {});

  /// Prometheus-style text exposition: one `name{labels} value` line per
  /// counter/gauge, `_bucket{le=...}/_sum/_count` triplets per histogram,
  /// sorted by (name, labels) for stable diffs.
  std::string DumpText() const;
  /// The same data as one JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{...}}.
  std::string DumpJson() const;

 private:
  MetricRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

#else  // !PATHENUM_OBS

struct NoopCounter {
  void Inc(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};
struct NoopHistogram {
  void Observe(double) {}
};

using RegCounter = NoopCounter;
using RegHistogram = NoopHistogram;

class MetricRegistry {
 public:
  static MetricRegistry& Global() {
    static MetricRegistry r;
    return r;
  }
  uint64_t NextInstanceId() { return 0; }
  void RegisterCounter(const void*, std::string, std::string,
                       const ShardedCounter*) {}
  void RegisterGauge(const void*, std::string, std::string,
                     std::function<double()>) {}
  void UnregisterOwner(const void*) {}
  RegCounter* GetCounter(std::string_view, std::string_view = {}) {
    static RegCounter c;
    return &c;
  }
  RegHistogram* GetHistogram(std::string_view, std::string_view = {}) {
    static RegHistogram h;
    return &h;
  }
  std::string DumpText() const { return {}; }
  std::string DumpJson() const { return "{}"; }
};

#endif  // PATHENUM_OBS

/// Full exposition of the global registry (empty under PATHENUM_OBS=0).
/// Callable from benches/examples at any point; cheap enough for a
/// per-smoke-run dump, not meant for per-query use.
std::string DumpMetricsText();
std::string DumpMetricsJson();

}  // namespace pathenum::obs

#endif  // PATHENUM_OBS_METRICS_H_
