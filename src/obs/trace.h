// Chrome-trace recorder (DESIGN.md §12): fixed-capacity per-thread ring
// buffers of complete ("ph":"X") trace events, exported as Chrome
// trace-event JSON loadable in chrome://tracing / Perfetto.
//
// Recording is sampling-gated: QuerySpan::Finish emits a span's events
// only when the span was sampled (every Nth query; N from the
// PATHENUM_OBS_SAMPLE env var or SetSampleEvery(), 0 = off, the default).
// An emit appends a handful of fixed-size events to the calling thread's
// ring under that ring's own mutex — uncontended in steady state, and
// nothing is ever allocated after a thread's first emit. Rings overwrite
// oldest events on wrap, so the export is "the most recent window", which
// is what a tracing UI wants. Export merges all rings, sorted by
// timestamp. Compiled out entirely under PATHENUM_OBS=0.
#ifndef PATHENUM_OBS_TRACE_H_
#define PATHENUM_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "obs/span.h"

namespace pathenum::obs {

#if PATHENUM_OBS

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Microseconds since the recorder's epoch (process start, roughly):
  /// the `ts` base every emitted event uses.
  uint64_t NowUs() const;

  /// Appends the span's events to this thread's ring: one enclosing
  /// "query" slice plus one nested slice per stage segment.
  void EmitSpan(const QuerySpanData& span);

  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  std::string ExportChromeJson() const;

  /// Drops every recorded event (tests; not needed in production).
  void Clear();

  /// Sample every Nth query span (0 disables tracing). Initialized from
  /// the PATHENUM_OBS_SAMPLE env var; settable at runtime from tests and
  /// benches.
  static uint32_t SampleEvery();
  static void SetSampleEvery(uint32_t n);

 private:
  TraceRecorder();
  struct Impl;
  Impl* impl_;
};

#else  // !PATHENUM_OBS

class TraceRecorder {
 public:
  static TraceRecorder& Global() {
    static TraceRecorder r;
    return r;
  }
  uint64_t NowUs() const { return 0; }
  void EmitSpan(const QuerySpanData&) {}
  std::string ExportChromeJson() const { return "{\"traceEvents\":[]}"; }
  void Clear() {}
  static uint32_t SampleEvery() { return 0; }
  static void SetSampleEvery(uint32_t) {}
};

#endif  // PATHENUM_OBS

}  // namespace pathenum::obs

#endif  // PATHENUM_OBS_TRACE_H_
