#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace pathenum::obs {

uint32_t internal::ThisThreadSlot() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void Histogram::Observe(double ms) {
  if (!(ms >= 0.0)) ms = 0.0;  // also catches NaN
  const double us = ms * 1000.0;
  uint32_t b;
  if (us < 1.0) {
    b = 0;
  } else {
    const uint64_t whole =
        us >= 9.2e18 ? ~uint64_t{0} : static_cast<uint64_t>(us);
    b = std::min<uint32_t>(kBuckets - 1, std::bit_width(whole));
  }
  const uint64_t ns = ms >= 9.2e15
                          ? ~uint64_t{0}
                          : static_cast<uint64_t>(std::llround(ms * 1e6));
  Shard& s = shards_[internal::ThisThreadSlot() % kShards];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  uint64_t sum_ns = 0;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    sum_ns += s.sum_ns.load(std::memory_order_relaxed);
    for (uint32_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.sum_ms = static_cast<double>(sum_ns) / 1e6;
  return out;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return BucketUpperMs(b);
  }
  return BucketUpperMs(kBuckets - 1);
}

#if PATHENUM_OBS

namespace {

struct BorrowedCounter {
  const void* owner;
  std::string name;
  std::string labels;
  const ShardedCounter* counter;
};

struct BorrowedGauge {
  const void* owner;
  std::string name;
  std::string labels;
  std::function<double()> read;
};

std::string Key(std::string_view name, std::string_view labels) {
  std::string k(name);
  if (!labels.empty()) {
    k += '{';
    k += labels;
    k += '}';
  }
  return k;
}

void AppendJsonNumber(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << v;
}

// Metric keys carry `label="value"` quotes, which must be escaped inside
// a JSON string.
void AppendJsonKey(std::ostringstream& os, const std::string& key) {
  os << '"';
  for (const char c : key) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

struct MetricRegistry::Impl {
  mutable std::mutex mutex;
  std::atomic<uint64_t> next_instance{1};
  std::vector<BorrowedCounter> counters;
  std::vector<BorrowedGauge> gauges;
  // Owned metrics live forever: instrumentation sites cache the raw
  // pointers in function-local statics.
  std::map<std::string, std::unique_ptr<ShardedCounter>> owned_counters;
  std::map<std::string, std::unique_ptr<Histogram>> owned_histograms;
};

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* r = new MetricRegistry();  // leaked: process scope
  return *r;
}

MetricRegistry::Impl& MetricRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: outlives static dtor order
  return *impl;
}

uint64_t MetricRegistry::NextInstanceId() {
  return impl().next_instance.fetch_add(1, std::memory_order_relaxed);
}

void MetricRegistry::RegisterCounter(const void* owner, std::string name,
                                     std::string labels,
                                     const ShardedCounter* counter) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.counters.push_back(
      {owner, std::move(name), std::move(labels), counter});
}

void MetricRegistry::RegisterGauge(const void* owner, std::string name,
                                   std::string labels,
                                   std::function<double()> read) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.gauges.push_back({owner, std::move(name), std::move(labels),
                       std::move(read)});
}

void MetricRegistry::UnregisterOwner(const void* owner) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  std::erase_if(im.counters,
                [owner](const BorrowedCounter& c) { return c.owner == owner; });
  std::erase_if(im.gauges,
                [owner](const BorrowedGauge& g) { return g.owner == owner; });
}

RegCounter* MetricRegistry::GetCounter(std::string_view name,
                                       std::string_view labels) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto& slot = im.owned_counters[Key(name, labels)];
  if (!slot) slot = std::make_unique<ShardedCounter>();
  return slot.get();
}

RegHistogram* MetricRegistry::GetHistogram(std::string_view name,
                                           std::string_view labels) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto& slot = im.owned_histograms[Key(name, labels)];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricRegistry::DumpText() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);

  std::map<std::string, double> lines;  // sorted by full key
  for (const BorrowedCounter& c : im.counters) {
    lines[Key(c.name, c.labels)] += static_cast<double>(c.counter->Value());
  }
  for (const auto& [key, counter] : im.owned_counters) {
    lines[key] += static_cast<double>(counter->Value());
  }
  for (const BorrowedGauge& g : im.gauges) {
    lines[Key(g.name, g.labels)] += g.read();
  }

  std::ostringstream os;
  os.precision(15);
  for (const auto& [key, value] : lines) os << key << ' ' << value << '\n';

  for (const auto& [key, hist] : im.owned_histograms) {
    const Histogram::Snapshot snap = hist->Snap();
    // Split "name{labels}" so the le bucket label composes.
    const size_t brace = key.find('{');
    const std::string name = key.substr(0, brace);
    const std::string labels =
        brace == std::string::npos
            ? std::string()
            : key.substr(brace + 1, key.size() - brace - 2) + ",";
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < Histogram::kBuckets; ++b) {
      cumulative += snap.buckets[b];
      if (snap.buckets[b] == 0 && b + 1 != Histogram::kBuckets) continue;
      os << name << "_bucket{" << labels << "le=\""
         << Histogram::BucketUpperMs(b) << "\"} " << cumulative << '\n';
    }
    os << name << "_bucket{" << labels << "le=\"+Inf\"} " << snap.count
       << '\n';
    os << name << "_sum" << (brace == std::string::npos ? "" : key.substr(brace))
       << ' ' << snap.sum_ms << '\n';
    os << name << "_count"
       << (brace == std::string::npos ? "" : key.substr(brace)) << ' '
       << snap.count << '\n';
  }
  return os.str();
}

std::string MetricRegistry::DumpJson() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);

  std::map<std::string, uint64_t> counters;
  for (const BorrowedCounter& c : im.counters) {
    counters[Key(c.name, c.labels)] += c.counter->Value();
  }
  for (const auto& [key, counter] : im.owned_counters) {
    counters[key] += counter->Value();
  }
  std::map<std::string, double> gauges;
  for (const BorrowedGauge& g : im.gauges) {
    gauges[Key(g.name, g.labels)] += g.read();
  }

  std::ostringstream os;
  os.precision(15);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [key, value] : counters) {
    os << (first ? "" : ",");
    AppendJsonKey(os, key);
    os << ':' << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [key, value] : gauges) {
    os << (first ? "" : ",");
    AppendJsonKey(os, key);
    os << ':';
    AppendJsonNumber(os, value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [key, hist] : im.owned_histograms) {
    const Histogram::Snapshot snap = hist->Snap();
    os << (first ? "" : ",");
    AppendJsonKey(os, key);
    os << ":{\"count\":" << snap.count << ",\"sum_ms\":";
    AppendJsonNumber(os, snap.sum_ms);
    os << ",\"p50_ms\":";
    AppendJsonNumber(os, snap.Quantile(0.50));
    os << ",\"p99_ms\":";
    AppendJsonNumber(os, snap.Quantile(0.99));
    os << ",\"buckets\":[";
    for (uint32_t b = 0; b < Histogram::kBuckets; ++b) {
      os << (b == 0 ? "" : ",") << snap.buckets[b];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

#endif  // PATHENUM_OBS

std::string DumpMetricsText() { return MetricRegistry::Global().DumpText(); }
std::string DumpMetricsJson() { return MetricRegistry::Global().DumpJson(); }

}  // namespace pathenum::obs
