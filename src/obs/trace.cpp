#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#if PATHENUM_OBS

namespace pathenum::obs {

namespace {

// One recorded slice. Fixed-size; `name`/`state` are static literals.
struct TraceEvent {
  const char* name;
  const char* cat;  // "query" (enclosing) or "stage" (nested)
  uint64_t ts_us;
  uint64_t dur_us;
  uint64_t qid;
  uint32_t source, target, hops;  // query events only
  const char* state;              // terminal state name; null for stages
  uint8_t flags;                  // bit0 idx-hit, bit1 result-hit,
                                  // bit2 batched, bit3 split
};

size_t RingCapacity() {
  static const size_t cap = [] {
    const char* env = std::getenv("PATHENUM_OBS_TRACE_CAP");
    if (env != nullptr) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<size_t>(v);
    }
    return size_t{4096};
  }();
  return cap;
}

uint32_t EnvSampleEvery() {
  const char* env = std::getenv("PATHENUM_OBS_SAMPLE");
  if (env == nullptr) return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<uint32_t>(v) : 0;
}

std::atomic<uint32_t>& SampleSlot() {
  static std::atomic<uint32_t> v{EnvSampleEvery()};
  return v;
}

void AppendEscaped(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

}  // namespace

struct TraceRecorder::Impl {
  struct Ring {
    std::mutex mutex;
    uint32_t tid;
    std::vector<TraceEvent> events;  // sized once at registration
    size_t head = 0;                 // next write position
    size_t count = 0;                // min(pushes, capacity)

    void Push(const TraceEvent& e) {
      events[head] = e;
      head = (head + 1) % events.size();
      count = std::min(count + 1, events.size());
    }
  };

  std::mutex mutex;  // guards `rings` (registration + export walk)
  std::vector<std::shared_ptr<Ring>> rings;
  std::atomic<uint32_t> next_tid{1};
  std::chrono::steady_clock::time_point epoch;

  Ring& ThisRing() {
    thread_local std::shared_ptr<Ring> ring;
    if (ring == nullptr) {
      ring = std::make_shared<Ring>();
      ring->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      ring->events.resize(RingCapacity());
      std::lock_guard<std::mutex> lock(mutex);
      rings.push_back(ring);
    }
    return *ring;
  }
};

TraceRecorder::TraceRecorder() : impl_(new Impl()) {
  impl_->epoch = std::chrono::steady_clock::now();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* r = new TraceRecorder();  // leaked: process scope
  return *r;
}

uint64_t TraceRecorder::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

uint32_t TraceRecorder::SampleEvery() {
  return SampleSlot().load(std::memory_order_relaxed);
}

void TraceRecorder::SetSampleEvery(uint32_t n) {
  SampleSlot().store(n, std::memory_order_relaxed);
}

void TraceRecorder::EmitSpan(const QuerySpanData& span) {
  const uint64_t total_us =
      static_cast<uint64_t>(std::llround(span.total_ms * 1000.0));
  uint8_t flags = 0;
  if (span.index_cache_hit) flags |= 1;
  if (span.result_cache_hit) flags |= 2;
  if (span.batched_build) flags |= 4;
  if (span.split) flags |= 8;

  Impl::Ring& ring = impl_->ThisRing();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.Push({"query", "query", span.admit_ts_us, total_us, span.id,
             span.source, span.target, span.hops,
             QueryStateName(span.state).data(), flags});
  // Stage slices tile [admit, admit+total] left to right; durations are
  // clamped so integer rounding can never push a child past its parent.
  uint64_t ts = span.admit_ts_us;
  const uint64_t end = span.admit_ts_us + total_us;
  for (uint32_t i = 0; i < span.num_segments; ++i) {
    const uint64_t dur = std::min(
        end - ts,
        static_cast<uint64_t>(std::llround(span.segments[i].ms * 1000.0)));
    ring.Push({SpanStageName(span.segments[i].stage), "stage", ts, dur,
               span.id, 0, 0, 0, nullptr, 0});
    ts += dur;
  }
}

std::string TraceRecorder::ExportChromeJson() const {
  std::vector<std::pair<TraceEvent, uint32_t>> events;  // event + tid
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& ring : impl_->rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      for (size_t i = 0; i < ring->count; ++i) {
        // Oldest-first: when full, head is also the oldest entry.
        const size_t idx =
            ring->count == ring->events.size()
                ? (ring->head + i) % ring->events.size()
                : i;
        events.emplace_back(ring->events[idx], ring->tid);
      }
    }
  }
  // Timestamp order; parent ("query") slices before their stages at equal
  // ts so tracing UIs nest them correctly.
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first.ts_us != b.first.ts_us) {
                       return a.first.ts_us < b.first.ts_us;
                     }
                     return a.first.dur_us > b.first.dur_us;
                   });

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [e, tid] : events) {
    os << (first ? "" : ",");
    first = false;
    os << "{\"name\":\"";
    AppendEscaped(os, e.name);
    os << "\",\"cat\":\"" << e.cat << "\",\"ph\":\"X\",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"qid\":" << e.qid;
    if (e.state != nullptr) {
      os << ",\"s\":" << e.source << ",\"t\":" << e.target
         << ",\"k\":" << e.hops << ",\"state\":\"";
      AppendEscaped(os, e.state);
      os << "\",\"index_cache_hit\":" << ((e.flags & 1) ? "true" : "false")
         << ",\"result_cache_hit\":" << ((e.flags & 2) ? "true" : "false")
         << ",\"batched_build\":" << ((e.flags & 4) ? "true" : "false")
         << ",\"split\":" << ((e.flags & 8) ? "true" : "false");
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->head = 0;
    ring->count = 0;
  }
}

}  // namespace pathenum::obs

#endif  // PATHENUM_OBS
