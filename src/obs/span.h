// Per-query lifecycle spans (DESIGN.md §12). A QuerySpan travels alongside
// QueryControl from admission to sink completion and records the query's
// time as a sequence of contiguous stage segments:
//
//   admit → [queue_wait] → [index_acquire] → [enumerate] → [merge]
//         → [sink_complete] → Finish(terminal state)
//
// Mark(stage) closes the segment that started at the previous mark (or at
// Begin) and attributes it to `stage`; Finish() closes the trailing
// segment as kSinkComplete. Segments are contiguous by construction, so
// the per-stage durations always sum to the span's wall time — stage
// attribution can be wrong only in *label*, never in *total*. Stages may
// repeat and may be absent (a shed query has only queue_wait).
//
// On Finish the span feeds the per-stage latency histograms and terminal
// state counters in the global MetricRegistry, and — for the sampled
// subset (see TraceRecorder::SampleEvery) — emits Chrome trace events.
// Everything here is fixed-size and allocation-free; under PATHENUM_OBS=0
// QuerySpan is an empty no-op and only the QuerySpanData POD remains.
#ifndef PATHENUM_OBS_SPAN_H_
#define PATHENUM_OBS_SPAN_H_

#include <chrono>
#include <cstdint>

#include "core/control.h"
#include "obs/metrics.h"

namespace pathenum::obs {

enum class SpanStage : uint8_t {
  kQueueWait = 0,   // admission to worker claim (0 for sync batch reps)
  kIndexAcquire,    // cache lookup + (possibly batched) index build / replay
  kEnumerate,       // DFS/JOIN enumeration, incl. cooperative split drain
  kMerge,           // split merge barrier / batch fan-out accounting
  kSinkComplete,    // everything after the last explicit mark
  kStageCount,
};

inline const char* SpanStageName(SpanStage s) {
  switch (s) {
    case SpanStage::kQueueWait: return "queue_wait";
    case SpanStage::kIndexAcquire: return "index_acquire";
    case SpanStage::kEnumerate: return "enumerate";
    case SpanStage::kMerge: return "merge";
    case SpanStage::kSinkComplete: return "sink_complete";
    default: return "?";
  }
}

/// The finished-span record: plain data, safe to copy into ticket state
/// and read from any thread once the query completed. Defined in both
/// builds (zeroed under PATHENUM_OBS=0).
struct QuerySpanData {
  static constexpr uint32_t kMaxSegments = 10;

  struct Segment {
    SpanStage stage;
    double ms;
  };

  uint64_t id = 0;  // process-wide query sequence number (1-based)
  uint32_t source = 0;
  uint32_t target = 0;
  uint32_t hops = 0;
  QueryState state = QueryState::kOk;
  bool sampled = false;
  bool index_cache_hit = false;
  bool result_cache_hit = false;
  bool batched_build = false;
  bool split = false;
  uint32_t num_segments = 0;
  Segment segments[kMaxSegments] = {};
  double total_ms = 0.0;     // admit → Finish wall time (== segment sum)
  uint64_t admit_ts_us = 0;  // microseconds on the trace-recorder clock

  /// Sum of every segment attributed to `stage`.
  double StageMs(SpanStage stage) const {
    double ms = 0.0;
    for (uint32_t i = 0; i < num_segments; ++i) {
      if (segments[i].stage == stage) ms += segments[i].ms;
    }
    return ms;
  }

  double SegmentSumMs() const {
    double ms = 0.0;
    for (uint32_t i = 0; i < num_segments; ++i) ms += segments[i].ms;
    return ms;
  }
};

#if PATHENUM_OBS

class QuerySpan {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts the span: stamps the admit time, assigns the global query id
  /// and decides trace sampling. Re-Begin resets a used span.
  void Begin(uint32_t source, uint32_t target, uint32_t hops);

  /// Attributes everything since the previous mark (or Begin) to `stage`.
  /// No-op if the span is inactive. Overflowing kMaxSegments folds into
  /// the last segment (total time is still exact).
  void Mark(SpanStage stage);

  void SetIndexOutcome(bool index_cache_hit, bool result_cache_hit,
                       bool batched_build) {
    data_.index_cache_hit = index_cache_hit;
    data_.result_cache_hit = result_cache_hit;
    data_.batched_build = batched_build;
  }

  void SetSplit() { data_.split = true; }

  /// Ends the span: the trailing segment becomes kSinkComplete, the stage
  /// histograms / terminal-state counters are fed, and — if sampled — the
  /// span is emitted to the TraceRecorder. Idempotent.
  void Finish(QueryState state);

  bool active() const { return active_; }
  const QuerySpanData& data() const { return data_; }

 private:
  QuerySpanData data_;
  bool active_ = false;
  Clock::time_point admit_{};
  Clock::time_point last_{};
};

#else  // !PATHENUM_OBS

class QuerySpan {
 public:
  void Begin(uint32_t, uint32_t, uint32_t) {}
  void Mark(SpanStage) {}
  void SetIndexOutcome(bool, bool, bool) {}
  void SetSplit() {}
  void Finish(QueryState) {}
  bool active() const { return false; }
  const QuerySpanData& data() const {
    static const QuerySpanData empty;
    return empty;
  }
};

#endif  // PATHENUM_OBS

}  // namespace pathenum::obs

#endif  // PATHENUM_OBS_SPAN_H_
