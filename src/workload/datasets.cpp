#include "workload/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "graph/generators.h"
#include "util/common.h"

namespace pathenum {

namespace {

DatasetSpec Spec(std::string name, std::string description,
                 GeneratorKind kind, VertexId vertices, uint64_t edges,
                 uint32_t ba_degree, uint64_t seed, uint64_t paper_v,
                 uint64_t paper_e) {
  DatasetSpec s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.kind = kind;
  s.vertices = vertices;
  s.edges = edges;
  s.ba_out_degree = ba_degree;
  s.seed = seed;
  s.paper_vertices = paper_v;
  s.paper_edges = paper_e;
  return s;
}

}  // namespace

const std::vector<DatasetSpec>& PaperCatalog() {
  using GK = GeneratorKind;
  // Small and medium graphs are instantiated at the paper's exact sizes;
  // the giants (up, db, gg, wt, lj, da, tm) are scaled down ~2-20x, and
  // da/tm additionally density-capped, so the whole suite stays
  // laptop-sized (see DESIGN.md §2/§4).
  static const std::vector<DatasetSpec> catalog = {
      // name  paper dataset        kind                |V|     |E|      ba seed  paper |V| / |E|
      Spec("up", "US Patents",      GK::kBarabasiAlbert, 200000, 1600000, 8, 101, 4000000, 17000000),
      Spec("db", "DBpedia",         GK::kRMat,           400000, 1400000, 0, 102, 4000000, 14000000),
      // gg is the paper's short-query graph: the real web-google's strong
      // locality keeps hub-to-hub path counts small, which an R-MAT with
      // global hubs cannot reproduce — an ER graph of the same density
      // matches its workload character (DESIGN.md §4).
      Spec("gg", "Web-google",      GK::kErdosRenyi,     438000, 2500000, 0, 103, 876000, 5000000),
      Spec("st", "Web-standford",   GK::kRMat,           282000, 2300000, 0, 104, 282000, 2300000),
      Spec("tw", "Twitter-social",  GK::kErdosRenyi,     465000, 835000,  0, 105, 465000, 835000),
      Spec("bk", "Baidu-baike",     GK::kRMat,           416000, 3000000, 0, 106, 416000, 3000000),
      Spec("tr", "Wiki-trust",      GK::kRMat,           139000, 740000,  0, 107, 139000, 740000),
      Spec("ep", "Soc-Epinsion1",   GK::kRMat,            75000, 508000,  0, 108, 75000, 508000),
      Spec("uk", "Web-uk-2005",     GK::kRMat,           121000, 334000,  0, 109, 121000, 334000),
      Spec("wt", "WikiTalk",        GK::kRMat,           500000, 1250000, 0, 110, 2000000, 5000000),
      Spec("sl", "Soc-Slashdot0922",GK::kRMat,            82000, 948000,  0, 111, 82000, 948000),
      Spec("lj", "LiveJournal",     GK::kRMat,           500000, 6900000, 0, 112, 5000000, 69000000),
      Spec("da", "Rec-dating",      GK::kErdosRenyi,     169000, 5000000, 0, 113, 169000, 17000000),
      Spec("ye", "Bio-grid-yeast",  GK::kErdosRenyi,       6000, 314000,  0, 114, 6000, 314000),
      Spec("tm", "Twitter-mpi",     GK::kRMat,          2000000, 20000000, 0, 115, 52000000, 1960000000),
  };
  return catalog;
}

const DatasetSpec& FindDataset(std::string_view name) {
  for (const DatasetSpec& spec : PaperCatalog()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown dataset: " + std::string(name));
}

Graph MakeDataset(const DatasetSpec& spec, double scale) {
  if (scale <= 0.0) {
    const char* env = std::getenv("PATHENUM_SCALE");
    scale = env != nullptr ? std::atof(env) : 1.0;
    if (scale <= 0.0) scale = 1.0;
  }
  const auto scaled_v = static_cast<VertexId>(
      std::max(16.0, std::round(static_cast<double>(spec.vertices) * scale)));
  const auto scaled_e = static_cast<uint64_t>(
      std::max(16.0, std::round(static_cast<double>(spec.edges) * scale)));
  switch (spec.kind) {
    case GeneratorKind::kErdosRenyi:
      return ErdosRenyi(scaled_v, scaled_e, spec.seed);
    case GeneratorKind::kBarabasiAlbert:
      return BarabasiAlbert(scaled_v, std::max<uint32_t>(spec.ba_out_degree, 1),
                            spec.seed, /*back_prob=*/0.15);
    case GeneratorKind::kRMat: {
      const uint32_t rmat_scale = static_cast<uint32_t>(
          std::ceil(std::log2(static_cast<double>(scaled_v))));
      return RMat(rmat_scale, scaled_e, spec.seed, 0.57, 0.19, 0.19,
                  scaled_v);
    }
  }
  throw std::logic_error("unreachable generator kind");
}

Graph MakeDataset(std::string_view name, double scale) {
  return MakeDataset(FindDataset(name), scale);
}

}  // namespace pathenum
