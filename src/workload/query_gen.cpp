#include "workload/query_gen.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"
#include "util/rng.h"

namespace pathenum {

std::pair<std::vector<VertexId>, std::vector<VertexId>> DegreePartition(
    const Graph& g, double top_fraction) {
  PATHENUM_CHECK(top_fraction > 0.0 && top_fraction < 1.0);
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.Degree(a) > g.Degree(b);
  });
  size_t cut = static_cast<size_t>(static_cast<double>(n) * top_fraction);
  cut = std::clamp<size_t>(cut, n >= 2 ? 1 : 0, n >= 2 ? n - 1 : n);
  std::vector<VertexId> high(order.begin(), order.begin() + cut);
  std::vector<VertexId> low(order.begin() + cut, order.end());
  return {std::move(high), std::move(low)};
}

std::vector<Query> GenerateQueries(const Graph& g,
                                   const QueryGenOptions& opts) {
  QueryGenScratch scratch;
  return GenerateQueries(g, opts, scratch);
}

std::vector<Query> GenerateQueries(const Graph& g, const QueryGenOptions& opts,
                                   QueryGenScratch& scratch) {
  std::vector<Query> queries;
  if (g.num_vertices() < 2) return queries;
  const auto [high, low] = DegreePartition(g, opts.top_fraction);
  const std::vector<VertexId>& src_pool =
      opts.source_class == DegreeClass::kHigh ? high : low;
  const std::vector<VertexId>& dst_pool =
      opts.target_class == DegreeClass::kHigh ? high : low;
  if (src_pool.empty() || dst_pool.empty()) return queries;

  Rng rng(opts.seed);
  // The probe lives in the caller's scratch: its epoch-stamped arrays make
  // each Compute an O(frontier) reinit, across attempts and across calls.
  DistanceField& probe = scratch.probe;
  for (uint32_t i = 0; i < opts.count; ++i) {
    bool found = false;
    for (uint64_t attempt = 0; attempt < opts.max_attempts_per_query;
         ++attempt) {
      const VertexId s = src_pool[rng.NextBounded(src_pool.size())];
      const VertexId t = dst_pool[rng.NextBounded(dst_pool.size())];
      if (s == t) continue;
      if (opts.oracle != nullptr) {
        if (!opts.oracle->Within(s, t, opts.max_distance)) continue;
      } else {
        DistanceField::Options probe_opts;
        probe_opts.max_depth = opts.max_distance;
        probe_opts.stop_at = t;
        probe.Compute(g, Direction::kForward, s, probe_opts);
        if (probe.Distance(t) > opts.max_distance) continue;
      }
      queries.push_back({s, t, opts.hops});
      found = true;
      break;
    }
    if (!found) break;  // the graph cannot satisfy this setting any more
  }
  return queries;
}

}  // namespace pathenum
