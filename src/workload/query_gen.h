// Query workload generation following the paper's §7.1 methodology:
// vertices are split into V' (top 10% by degree) and V'' (the rest); a
// query set draws s and t uniformly from a chosen side of the partition,
// keeping only pairs with dist(s, t) <= 3 so that every query has at least
// one result and is not trivially answered by the BFS.
#ifndef PATHENUM_WORKLOAD_QUERY_GEN_H_
#define PATHENUM_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "core/query.h"
#include "graph/bfs.h"
#include "graph/distance_oracle.h"
#include "graph/graph.h"

namespace pathenum {

/// Which side of the degree partition an endpoint is drawn from.
enum class DegreeClass {
  kHigh,  // V': top 10% by total degree — the paper's hard setting
  kLow,   // V'': the remaining 90%
};

class PrunedLandmarkIndex;

struct QueryGenOptions {
  DegreeClass source_class = DegreeClass::kHigh;
  DegreeClass target_class = DegreeClass::kHigh;
  uint32_t count = 100;
  uint32_t hops = 6;
  /// Acceptance bound on dist(s, t); the paper uses 3.
  uint32_t max_distance = 3;
  uint64_t seed = 1;
  /// Rejection-sampling budget per accepted query; generation stops early
  /// (returning fewer queries) when the graph cannot satisfy the setting.
  uint64_t max_attempts_per_query = 5000;
  /// Fraction of vertices in V'.
  double top_fraction = 0.1;
  /// Optional distance oracle (not owned): when set, the dist(s,t) check
  /// uses O(|label|) oracle lookups instead of a bounded BFS per attempt.
  const PrunedLandmarkIndex* oracle = nullptr;
};

/// Splits vertices into (V', V'') by total degree: V' is the top
/// `top_fraction` slice. Both sides are non-empty for graphs with >= 2
/// vertices.
std::pair<std::vector<VertexId>, std::vector<VertexId>> DegreePartition(
    const Graph& g, double top_fraction = 0.1);

/// Reusable generation scratch: the distance probe's epoch-stamped arrays
/// persist across GenerateQueries calls, so a caller producing many query
/// sets (benchmark sweeps, per-config workloads) pays the O(n) probe
/// allocation once instead of per set.
struct QueryGenScratch {
  DistanceField probe;
};

/// Generates up to `opts.count` queries.
std::vector<Query> GenerateQueries(const Graph& g,
                                   const QueryGenOptions& opts);

/// Scratch-reusing form: identical output, reuses `scratch` across calls.
std::vector<Query> GenerateQueries(const Graph& g, const QueryGenOptions& opts,
                                   QueryGenScratch& scratch);

}  // namespace pathenum

#endif  // PATHENUM_WORKLOAD_QUERY_GEN_H_
