// The experiment dataset catalog: the paper's 15 graphs (Table 2),
// substituted by synthetic generators with matched degree structure and
// scaled sizes (DESIGN.md §2/§4). Every graph is reproducible from its spec.
#ifndef PATHENUM_WORKLOAD_DATASETS_H_
#define PATHENUM_WORKLOAD_DATASETS_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace pathenum {

enum class GeneratorKind { kErdosRenyi, kBarabasiAlbert, kRMat };

/// One catalog entry.
struct DatasetSpec {
  std::string name;         // the paper's short name, e.g. "ep"
  std::string description;  // the paper's dataset, e.g. "Soc-Epinsion1"
  GeneratorKind kind = GeneratorKind::kRMat;
  VertexId vertices = 0;    // target vertex count at scale 1.0
  uint64_t edges = 0;       // target edge count at scale 1.0
  uint32_t ba_out_degree = 0;  // Barabási–Albert only
  uint64_t seed = 0;
  uint64_t paper_vertices = 0;  // the original graph's size, for reporting
  uint64_t paper_edges = 0;
};

/// The 15 graphs of the paper's Table 2, in table order (tm last).
const std::vector<DatasetSpec>& PaperCatalog();

/// Lookup by short name; throws std::invalid_argument when unknown.
const DatasetSpec& FindDataset(std::string_view name);

/// Instantiates the dataset. `scale` multiplies vertex and edge counts
/// (R-MAT vertex counts round up to a power of two); it also honors the
/// PATHENUM_SCALE environment variable when `scale` is 0.
Graph MakeDataset(const DatasetSpec& spec, double scale = 1.0);

/// Convenience: FindDataset + MakeDataset.
Graph MakeDataset(std::string_view name, double scale = 1.0);

}  // namespace pathenum

#endif  // PATHENUM_WORKLOAD_DATASETS_H_
