// BC-JOIN: the join-oriented competitor of Peng et al. (VLDB 2019). Cuts
// the query at the fixed middle position ceil(k/2), materializes padded
// walks for both halves with distance-pruned DFS directly on the raw graph
// (pruned to the S(s,v)+S(v,t) <= k subgraph, their "barrier subgraph"),
// and hash-joins the halves. Differs from IDX-JOIN in exactly the two ways
// the paper credits for PathEnum's win: no light-weight index (each step
// re-checks distances) and no cost-based cut position.
#ifndef PATHENUM_BASELINES_BC_JOIN_H_
#define PATHENUM_BASELINES_BC_JOIN_H_

#include <unordered_map>
#include <vector>

#include "baselines/algorithm.h"
#include "graph/bfs.h"
#include "util/timer.h"

namespace pathenum {

class BcJoin : public BoundAlgorithm {
 public:
  explicit BcJoin(const Graph& g) : graph_(g) {}

  std::string_view name() const override { return "BC-JOIN"; }

  QueryStats Run(const Query& q, PathSink& sink,
                 const EnumOptions& opts) override;

 private:
  void Materialize(VertexId start, uint32_t base, uint32_t len,
                   std::vector<VertexId>& out);
  void MaterializeStep(uint32_t depth, uint32_t base, uint32_t len,
                       std::vector<VertexId>& out);
  bool ShouldStop();
  void Emit(std::span<const VertexId> path);

  const Graph& graph_;
  DistanceField dist_s_;
  DistanceField dist_t_;

  PathSink* sink_ = nullptr;
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  Query query_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  size_t tuple_limit_ = 0;  // per half, in VertexId units
  uint64_t check_countdown_ = 0;
  bool stop_ = false;
  VertexId stack_[kMaxHops + 1];
};

}  // namespace pathenum

#endif  // PATHENUM_BASELINES_BC_JOIN_H_
