// Top-K shortest loopless paths adapted to HcPE (paper §2.3's alternative):
// Yen's algorithm (1971) over unweighted BFS shortest paths, enumerating
// s-t simple paths in ascending length and stopping once the next candidate
// exceeds the hop constraint. Correct but, as the paper argues, the
// ascending-length order is wasted work for HcPE — kept as the comparison
// point that demonstrates it.
#ifndef PATHENUM_BASELINES_YEN_KSP_H_
#define PATHENUM_BASELINES_YEN_KSP_H_

#include <set>
#include <unordered_set>
#include <vector>

#include "baselines/algorithm.h"
#include "util/timer.h"

namespace pathenum {

class YenKsp : public BoundAlgorithm {
 public:
  explicit YenKsp(const Graph& g) : graph_(g) {}

  std::string_view name() const override { return "Yen"; }

  QueryStats Run(const Query& q, PathSink& sink,
                 const EnumOptions& opts) override;

 private:
  /// BFS shortest path `from -> to` avoiding banned vertices/edges, with at
  /// most `max_len` edges. Returns empty vector when none exists.
  std::vector<VertexId> ShortestPath(
      VertexId from, VertexId to, uint32_t max_len,
      const std::vector<uint8_t>& banned_vertex,
      const std::unordered_set<uint64_t>& banned_edges);

  bool Emit(const std::vector<VertexId>& path);

  const Graph& graph_;

  PathSink* sink_ = nullptr;
  EnumCounters counters_;
  Timer timer_;
  Deadline deadline_;
  uint64_t result_limit_ = 0;
  uint64_t response_target_ = 0;
  bool stop_ = false;
};

}  // namespace pathenum

#endif  // PATHENUM_BASELINES_YEN_KSP_H_
