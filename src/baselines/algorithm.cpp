#include "baselines/algorithm.h"

#include <stdexcept>

#include "baselines/bc_dfs.h"
#include "baselines/bc_join.h"
#include "baselines/generic_dfs.h"
#include "baselines/tdfs.h"
#include "baselines/yen_ksp.h"
#include "core/path_enum.h"

namespace pathenum {

namespace {

/// Wraps PathEnumerator with a fixed strategy, giving the paper's IDX-DFS /
/// IDX-JOIN / PathEnum rows a BoundAlgorithm face.
class PathEnumAlgorithm : public BoundAlgorithm {
 public:
  PathEnumAlgorithm(const Graph& g, Method method, std::string_view name)
      : enumerator_(g), method_(method), name_(name) {}

  std::string_view name() const override { return name_; }

  QueryStats Run(const Query& q, PathSink& sink,
                 const EnumOptions& opts) override {
    EnumOptions local = opts;
    local.method = method_;
    return enumerator_.Run(q, sink, local);
  }

 private:
  PathEnumerator enumerator_;
  Method method_;
  std::string_view name_;
};

}  // namespace

std::unique_ptr<BoundAlgorithm> MakeAlgorithm(std::string_view name,
                                              const Graph& g) {
  if (name == "GenericDFS") return std::make_unique<GenericDfs>(g);
  if (name == "BC-DFS") return std::make_unique<BcDfs>(g);
  if (name == "BC-JOIN") return std::make_unique<BcJoin>(g);
  if (name == "T-DFS") return std::make_unique<TDfs>(g);
  if (name == "Yen") return std::make_unique<YenKsp>(g);
  if (name == "IDX-DFS") {
    return std::make_unique<PathEnumAlgorithm>(g, Method::kDfs, "IDX-DFS");
  }
  if (name == "IDX-JOIN") {
    return std::make_unique<PathEnumAlgorithm>(g, Method::kJoin, "IDX-JOIN");
  }
  if (name == "PathEnum") {
    return std::make_unique<PathEnumAlgorithm>(g, Method::kAuto, "PathEnum");
  }
  throw std::invalid_argument("unknown algorithm: " + std::string(name));
}

const std::vector<std::string>& AllAlgorithmNames() {
  static const std::vector<std::string> names = {
      "BC-DFS", "BC-JOIN", "IDX-DFS", "IDX-JOIN",
      "PathEnum", "GenericDFS", "T-DFS", "Yen"};
  return names;
}

const std::vector<std::string>& Table3AlgorithmNames() {
  static const std::vector<std::string> names = {
      "BC-DFS", "BC-JOIN", "IDX-DFS", "IDX-JOIN", "PathEnum"};
  return names;
}

}  // namespace pathenum
